// Quickstart: stand up a single-domain G-QoSM stack in process, negotiate
// a guaranteed SLA, invoke the service, run an SLA conformance test, and
// terminate — the full Fig. 2 sequence against the public API.
package main

import (
	"fmt"
	"log"
	"time"

	"gqosm"
	"gqosm/internal/sla"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// The §5.6 partition: 26 Grid-visible processors split 15/6/5.
	start := time.Date(2003, 6, 16, 9, 0, 0, 0, time.UTC)
	stack, err := gqosm.NewStack(gqosm.StackConfig{
		Domain: "site-a",
		Clock:  gqosm.NewManualClock(start),
		Plan: gqosm.CapacityPlan{
			Guaranteed: gqosm.Capacity{CPU: 15, MemoryMB: 6144, DiskGB: 120},
			Adaptive:   gqosm.Capacity{CPU: 6, MemoryMB: 2048, DiskGB: 40},
			BestEffort: gqosm.Capacity{CPU: 5, MemoryMB: 2048, DiskGB: 40},
		},
		ConfirmWindow: 10 * time.Minute,
	})
	if err != nil {
		return err
	}
	defer stack.Close()

	// 1. Discovery + negotiation: request 10 nodes, 2 GB, 15 GB for five
	// hours.
	offer, err := stack.Broker.RequestService(gqosm.Request{
		Service: "simulation",
		Client:  "quickstart-client",
		Class:   gqosm.ClassGuaranteed,
		Spec: gqosm.NewSpec(
			gqosm.Exact(gqosm.CPU, 10),
			gqosm.Exact(gqosm.MemoryMB, 2048),
			gqosm.Exact(gqosm.DiskGB, 15),
		),
		Start: start,
		End:   start.Add(5 * time.Hour),
	})
	if err != nil {
		return fmt.Errorf("request: %w", err)
	}
	fmt.Printf("offer: %s at price %.2f (temporarily reserved until %s)\n",
		offer.SLA.ID, offer.Price, offer.Expires.Format("15:04:05"))

	// 2. SLA establishment.
	if err := stack.Broker.Accept(offer.SLA.ID); err != nil {
		return fmt.Errorf("accept: %w", err)
	}
	doc, err := stack.Broker.Session(offer.SLA.ID)
	if err != nil {
		return err
	}
	out, err := sla.MarshalIndent(sla.EncodeDocument(doc))
	if err != nil {
		return err
	}
	fmt.Printf("\nestablished SLA document:\n%s\n", out)

	// 3. Service invocation: the launched process claims the
	// reservation.
	job, err := stack.Broker.Invoke(offer.SLA.ID)
	if err != nil {
		return fmt.Errorf("invoke: %w", err)
	}
	fmt.Printf("\nservice running as %s (pid %d)\n", job.ID, job.PID)

	// 4. QoS management: explicit SLA conformance test (Table 3).
	rep, err := stack.Broker.Verify(offer.SLA.ID)
	if err != nil {
		return fmt.Errorf("verify: %w", err)
	}
	levels, err := sla.MarshalIndent(rep.XML)
	if err != nil {
		return err
	}
	fmt.Printf("\nconformance test reply:\n%s\n", levels)

	// 5. Clearing.
	if err := stack.Broker.Terminate(offer.SLA.ID, "quickstart complete"); err != nil {
		return fmt.Errorf("terminate: %w", err)
	}

	fmt.Println("\nbroker activity log:")
	for _, e := range stack.Broker.Events() {
		fmt.Println("  " + e.String())
	}
	return nil
}
