// Marketplace demonstrates the provider-economics half of the paper:
// controlled-load clients negotiate quality ranges, a guaranteed burst
// forces scenario-1 degradation of willing sessions, its completion
// triggers scenario-2 restoration, the §5.3 optimizer reallocates quality
// levels for profit, and opted-in clients receive scenario-2(c) promotion
// offers — with every charge, penalty and promotion landing in the
// provider ledger.
package main

import (
	"fmt"
	"log"
	"time"

	"gqosm"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	start := time.Date(2003, 6, 16, 9, 0, 0, 0, time.UTC)
	clock := gqosm.NewManualClock(start)
	stack, err := gqosm.NewStack(gqosm.StackConfig{
		Domain: "site-a",
		Clock:  clock,
		Plan: gqosm.CapacityPlan{
			Guaranteed: gqosm.Capacity{CPU: 15, MemoryMB: 6144},
			Adaptive:   gqosm.Capacity{CPU: 6, MemoryMB: 2048},
			BestEffort: gqosm.Capacity{CPU: 5, MemoryMB: 2048},
		},
		ConfirmWindow: time.Hour,
	})
	if err != nil {
		return err
	}
	defer stack.Close()
	b := stack.Broker

	// Three controlled-load tenants with [2, 6]-node ranges, all willing
	// to degrade and opted in to promotions.
	var tenants []gqosm.SLAID
	for i := 0; i < 3; i++ {
		offer, err := b.RequestService(gqosm.Request{
			Service:           "simulation",
			Client:            fmt.Sprintf("tenant-%d", i+1),
			Class:             gqosm.ClassControlledLoad,
			Spec:              gqosm.NewSpec(gqosm.Range(gqosm.CPU, 2, 6), gqosm.Range(gqosm.MemoryMB, 512, 2048)),
			Start:             start,
			End:               start.Add(12 * time.Hour),
			AcceptDegradation: true,
			PromotionOptIn:    true,
		})
		if err != nil {
			return err
		}
		if err := b.Accept(offer.SLA.ID); err != nil {
			return err
		}
		fmt.Printf("tenant %s admitted at %v (%.2f)\n", offer.SLA.ID, offer.SLA.Allocated, offer.Price)
		tenants = append(tenants, offer.SLA.ID)
	}
	printAllocations(b, tenants, "initial allocations")

	// A guaranteed 9-node burst arrives: with the tenants at 15 nodes it
	// only fits once scenario 1 degrades the willing tenants toward
	// their 2-node floors.
	clock.Advance(time.Hour)
	burst, err := b.RequestService(gqosm.Request{
		Service: "simulation",
		Client:  "burst-job",
		Class:   gqosm.ClassGuaranteed,
		Spec:    gqosm.NewSpec(gqosm.Exact(gqosm.CPU, 9)),
		Start:   clock.Now(),
		End:     clock.Now().Add(2 * time.Hour),
	})
	if err != nil {
		return err
	}
	if err := b.Accept(burst.SLA.ID); err != nil {
		return err
	}
	fmt.Printf("\nburst %s admitted (compensated=%v)\n", burst.SLA.ID, burst.Compensated)
	printAllocations(b, tenants, "after scenario-1 compensation")

	// The burst completes: scenario 2 restores tenants, the optimizer
	// upgrades them, and promotion offers go out for the rest.
	clock.Advance(2 * time.Hour)
	if err := b.Terminate(burst.SLA.ID, "burst complete"); err != nil {
		return err
	}
	printAllocations(b, tenants, "after scenario-2 restoration + optimizer")

	// Tenant 1 finishes early: scenario 2(b) — the optimizer spends the
	// released nodes on the tenant still below its best quality.
	clock.Advance(time.Hour)
	if err := b.Terminate(tenants[0], "tenant finished early"); err != nil {
		return err
	}
	printAllocations(b, tenants[1:], "after tenant-1 departure (optimizer upgrade)")

	promos := b.Promotions()
	fmt.Printf("\nopen promotion offers: %d\n", len(promos))
	for _, p := range promos {
		fmt.Printf("  %s: %v -> %v for %.2f (list %.2f)\n", p.SLA, p.From, p.To, p.OfferPrice, p.ListPrice)
	}
	if len(promos) > 0 {
		if err := b.AcceptPromotion(promos[0].SLA); err != nil {
			return err
		}
		fmt.Printf("tenant %s accepted its promotion\n", promos[0].SLA)
	}

	fmt.Println("\nledger:")
	for _, e := range b.Ledger().Entries() {
		fmt.Printf("  %-9s %-18s %8.2f  %s\n", e.Kind, e.SLA, e.Amount, e.Note)
	}
	fmt.Printf("net provider revenue: %.2f\n", b.Ledger().NetRevenue())
	return nil
}

func printAllocations(b *gqosm.Broker, ids []gqosm.SLAID, label string) {
	fmt.Printf("\n%s:\n", label)
	for _, id := range ids {
		doc, err := b.Session(id)
		if err != nil {
			continue
		}
		fmt.Printf("  %s: %v (state %s)\n", id, doc.Allocated, doc.State)
	}
}
