// Collabviz replays the paper's §5.6 collaborative-visualization
// experiment through the public API: scientists at site A run a simulation
// on the SGI machine, the input database lives at site B (622 Mbps link),
// a second group watches from site C (45 Mbps link). A composite SLA is
// negotiated as three sub-SLAs; at t2 three guaranteed-pool processors
// fail and the adaptive reserve keeps SLA_comp whole; at t3 they recover;
// at t4 the SLA expires and the capacity flows back to best-effort users.
package main

import (
	"fmt"
	"log"
	"time"

	"gqosm"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	start := time.Date(2003, 6, 16, 9, 0, 0, 0, time.UTC)
	hour := func(h int) time.Time { return start.Add(time.Duration(h) * time.Hour) }

	// Three sites, two provisioned links.
	topo := gqosm.NewTopology()
	for _, d := range []struct{ name, cidr string }{
		{"site-a", "192.200.168.0/24"},
		{"site-b", "135.200.50.0/24"},
		{"site-c", "10.10.0.0/16"},
	} {
		if err := topo.AddDomain(d.name, d.cidr); err != nil {
			return err
		}
	}
	if err := topo.AddLink("site-a", "site-b", 1000); err != nil {
		return err
	}
	if err := topo.AddLink("site-a", "site-c", 100); err != nil {
		return err
	}

	clock := gqosm.NewManualClock(start)
	stack, err := gqosm.NewStack(gqosm.StackConfig{
		Domain: "site-a",
		Clock:  clock,
		Plan: gqosm.CapacityPlan{ // the administrator's 15+6+5 partition
			Guaranteed: gqosm.Capacity{CPU: 15, MemoryMB: 6144, DiskGB: 120, BandwidthMbps: 700},
			Adaptive:   gqosm.Capacity{CPU: 6, MemoryMB: 2048, DiskGB: 40, BandwidthMbps: 200},
			BestEffort: gqosm.Capacity{CPU: 5, MemoryMB: 2048, DiskGB: 40, BandwidthMbps: 200},
		},
		Topology:      topo,
		ConfirmWindow: time.Hour,
	})
	if err != nil {
		return err
	}
	defer stack.Close()
	b := stack.Broker

	establish := func(req gqosm.Request) (gqosm.SLAID, error) {
		offer, err := b.RequestService(req)
		if err != nil {
			return "", err
		}
		if err := b.Accept(offer.SLA.ID); err != nil {
			return "", err
		}
		fmt.Printf("established %s for %q: %v at %.2f\n",
			offer.SLA.ID, req.Client, offer.SLA.Allocated, offer.Price)
		return offer.SLA.ID, nil
	}

	// The composite SLA's three halves (§5.6): SLA_net1, SLA_net2,
	// SLA_comp.
	net1 := gqosm.NewSpec(gqosm.Exact(gqosm.BandwidthMbps, 622))
	net1.SourceIP, net1.DestIP = "135.200.50.101", "192.200.168.33"
	if _, err := establish(gqosm.Request{
		Service: "simulation", Client: "SLA_net1 (site B -> A)", Class: gqosm.ClassGuaranteed,
		Spec: net1, Start: hour(0), End: hour(5),
	}); err != nil {
		return err
	}
	net2 := gqosm.NewSpec(gqosm.Exact(gqosm.BandwidthMbps, 45))
	net2.SourceIP, net2.DestIP = "10.10.3.4", "192.200.168.33"
	if _, err := establish(gqosm.Request{
		Service: "simulation", Client: "SLA_net2 (site C -> A)", Class: gqosm.ClassGuaranteed,
		Spec: net2, Start: hour(0), End: hour(5),
	}); err != nil {
		return err
	}
	comp, err := establish(gqosm.Request{
		Service: "simulation", Client: "SLA_comp (10 nodes at site A)", Class: gqosm.ClassGuaranteed,
		Spec: gqosm.NewSpec(
			gqosm.Exact(gqosm.CPU, 10),
			gqosm.Exact(gqosm.MemoryMB, 2048),
			gqosm.Exact(gqosm.DiskGB, 15),
		),
		Start: hour(0), End: hour(4),
	})
	if err != nil {
		return err
	}

	// Best-effort users soak up the idle capacity.
	if err := b.BestEffortRequest("local-students", gqosm.Nodes(11)); err != nil {
		return err
	}
	printPools(stack, "t0: all SLAs active, best effort borrowing 11 nodes")

	// t2: three guaranteed-pool processors become inaccessible.
	clock.Set(hour(2))
	pre := b.NotifyFailure(gqosm.Nodes(3))
	printPools(stack, fmt.Sprintf("t2: 3 processors fail (best-effort preemptions: %d)", len(pre)))
	doc, err := b.Session(comp)
	if err != nil {
		return err
	}
	fmt.Printf("     SLA_comp still holds %v — the adaptive reserve absorbed the failure\n", doc.Allocated)

	// t3: recovery.
	clock.Set(hour(3))
	b.NotifyFailure(gqosm.Capacity{})
	printPools(stack, "t3: processors recover")

	// t4: SLA_comp completes its validity period.
	clock.Set(hour(4))
	b.ExpireDue()
	if avail := b.Allocator().AvailableBestEffort(); avail.CPU > 0 {
		_ = b.BestEffortRequest("local-students-2", gqosm.Nodes(avail.CPU))
	}
	printPools(stack, "t4: SLA_comp expired; nodes returned to best effort")

	// t5: everything clears.
	clock.Set(hour(5))
	b.ExpireDue()
	printPools(stack, "t5: network sub-SLAs expired")

	fmt.Printf("\nprovider revenue: %.2f\n", b.Ledger().NetRevenue())
	return nil
}

func printPools(stack *gqosm.Stack, label string) {
	fmt.Printf("\n%s\n", label)
	for _, u := range stack.Broker.Allocator().Snapshot() {
		fmt.Printf("  pool %s: guaranteed=%-4g best-effort=%-4g free=%-4g offline=%g (CPU nodes)\n",
			u.Pool, u.Guaranteed.CPU, u.BestEffort.CPU, u.Free().CPU, u.Offline.CPU)
	}
}
