// Degradation demonstrates scenario 3 (§4): a guaranteed session's network
// QoS collapses when its link congests; the NRM notifies the broker's
// SLA-Verif hook, a violation is recorded and the session switches to its
// negotiated alternative QoS; when the congestion clears the broker
// restores the agreed quality.
package main

import (
	"fmt"
	"log"
	"time"

	"gqosm"
	"gqosm/internal/nrm"
	"gqosm/internal/sla"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	start := time.Date(2003, 6, 16, 9, 0, 0, 0, time.UTC)
	topo := gqosm.NewTopology()
	if err := topo.AddDomain("site-a", "192.200.168.0/24"); err != nil {
		return err
	}
	if err := topo.AddDomain("site-c", "10.10.0.0/16"); err != nil {
		return err
	}
	if err := topo.AddLink("site-a", "site-c", 100); err != nil {
		return err
	}

	clock := gqosm.NewManualClock(start)
	stack, err := gqosm.NewStack(gqosm.StackConfig{
		Domain: "site-a",
		Clock:  clock,
		Plan: gqosm.CapacityPlan{
			Guaranteed: gqosm.Capacity{CPU: 15, BandwidthMbps: 70},
			Adaptive:   gqosm.Capacity{CPU: 6, BandwidthMbps: 20},
			BestEffort: gqosm.Capacity{CPU: 5, BandwidthMbps: 10},
		},
		Topology:      topo,
		ConfirmWindow: time.Hour,
	})
	if err != nil {
		return err
	}
	defer stack.Close()
	b := stack.Broker

	// A guaranteed visualization stream: 45 Mbps from site C, willing to
	// fall back to a degraded alternative.
	spec := gqosm.NewSpec(gqosm.Exact(gqosm.BandwidthMbps, 45))
	spec.SourceIP, spec.DestIP = "10.10.3.4", "192.200.168.33"
	spec.MaxPacketLossPct = 10
	offer, err := b.RequestService(gqosm.Request{
		Service:           "simulation",
		Client:            "viz-stream",
		Class:             gqosm.ClassGuaranteed,
		Spec:              spec,
		Start:             start,
		End:               start.Add(5 * time.Hour),
		AcceptDegradation: true,
	})
	if err != nil {
		return err
	}
	id := offer.SLA.ID
	if err := b.Accept(id); err != nil {
		return err
	}
	if _, err := b.Invoke(id); err != nil {
		return err
	}
	fmt.Printf("session %s active at %v\n", id, offer.SLA.Allocated)

	// The C—A link congests to 40% of nominal.
	if err := topo.SetCongestion("site-a", "site-c", nrm.Congestion{
		BandwidthFactor: 0.4, ExtraDelayMS: 30, LossPct: 15,
	}); err != nil {
		return err
	}
	clock.Advance(30 * time.Minute)

	// The NRM's periodic check detects the shortfall and notifies the
	// broker (the §3.2 degradation notification).
	degraded := stack.NRM.CheckAll(clock.Now())
	fmt.Printf("\nNRM check: %d degraded flow(s)\n", len(degraded))
	for _, m := range degraded {
		fmt.Printf("  flow %s delivering %.1f Mbps (delay %.0f ms, loss %.0f%%)\n",
			m.FlowID, m.BandwidthMbps, m.DelayMS, m.LossPct)
	}

	doc, err := b.Session(id)
	if err != nil {
		return err
	}
	fmt.Printf("session state after notification: %s (violations: %d)\n",
		doc.State, b.Violations(id))

	// An explicit client-side conformance test shows the measured levels
	// (Table 3).
	rep, err := b.Verify(id)
	if err != nil {
		return err
	}
	out, err := sla.MarshalIndent(rep.XML)
	if err != nil {
		return err
	}
	fmt.Printf("\nconformance reply during congestion:\n%s\n", out)

	// Congestion clears; the broker restores the agreed QoS on its next
	// adaptation pass.
	if err := topo.SetCongestion("site-a", "site-c", nrm.Congestion{}); err != nil {
		return err
	}
	clock.Advance(30 * time.Minute)
	if rep, err := b.Verify(id); err == nil {
		fmt.Printf("after recovery: conforms=%v measured=%v\n", rep.Conforms, rep.Measured)
	}

	fmt.Println("\nbroker activity log:")
	for _, e := range b.Events() {
		fmt.Println("  " + e.String())
	}
	return nil
}
