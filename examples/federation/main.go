// Federation demonstrates the Fig. 1 multi-domain architecture: two
// administrative domains, each with its own AQoS broker, resource manager
// and registry. The client talks to its home domain; requests the home
// domain cannot serve — an unadvertised service, or more capacity than the
// local guaranteed pool holds — are forwarded to the neighboring AQoS, and
// the winning domain's offer comes back annotated with where to conclude
// the SLA.
package main

import (
	"fmt"
	"log"
	"time"

	"gqosm"
	"gqosm/internal/core"
	"gqosm/internal/registry"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	start := time.Date(2003, 6, 16, 9, 0, 0, 0, time.UTC)

	// Domain 1: a small departmental cluster advertising "solver".
	home, err := gqosm.NewStack(gqosm.StackConfig{
		Domain: "domain1",
		Clock:  gqosm.NewManualClock(start),
		Plan: gqosm.CapacityPlan{
			Guaranteed: gqosm.Nodes(12),
			Adaptive:   gqosm.Nodes(4),
			BestEffort: gqosm.Nodes(4),
		},
		Services: []registry.Service{{
			Name:       "solver",
			Provider:   "domain1",
			Properties: []registry.Property{registry.NumProp("cpu-nodes", 20)},
		}},
		ConfirmWindow: time.Hour,
	})
	if err != nil {
		return err
	}
	defer home.Close()

	// Domain 2: the big national center advertising both services.
	neighbor, err := gqosm.NewStack(gqosm.StackConfig{
		Domain: "domain2",
		Clock:  gqosm.NewManualClock(start),
		Plan: gqosm.CapacityPlan{
			Guaranteed: gqosm.Nodes(60),
			Adaptive:   gqosm.Nodes(20),
			BestEffort: gqosm.Nodes(20),
		},
		Services: []registry.Service{
			{Name: "solver", Provider: "domain2",
				Properties: []registry.Property{registry.NumProp("cpu-nodes", 100)}},
			{Name: "renderer", Provider: "domain2",
				Properties: []registry.Property{registry.NumProp("cpu-nodes", 100)}},
		},
		ConfirmWindow: time.Hour,
	})
	if err != nil {
		return err
	}
	defer neighbor.Close()

	fed := core.NewFederation(home.Broker)
	fed.AddPeer(neighbor.Broker)
	fmt.Printf("federation: home=domain1, neighbors=%v\n\n", fed.Peers())

	request := func(service string, nodes float64) {
		offer, err := fed.RequestService(gqosm.Request{
			Service: service,
			Client:  "fed-client",
			Class:   gqosm.ClassGuaranteed,
			Spec:    gqosm.NewSpec(gqosm.Exact(gqosm.CPU, nodes)),
			Start:   start,
			End:     start.Add(4 * time.Hour),
		})
		if err != nil {
			fmt.Printf("request %q x%g: DECLINED everywhere: %v\n", service, nodes, err)
			return
		}
		where := "served locally"
		if offer.Forwarded {
			where = "forwarded to neighbor"
		}
		fmt.Printf("request %q x%-3g -> %s by %q (SLA %s, price %.2f)\n",
			service, nodes, where, offer.Domain, offer.SLA.ID, offer.Price)
	}

	// Fits the home domain.
	request("solver", 8)
	// Exceeds domain1's guaranteed pool (12): forwarded to domain2.
	request("solver", 30)
	// Only domain2 advertises a renderer.
	request("renderer", 10)
	// Nobody has 500 nodes.
	request("solver", 500)

	fmt.Println("\nhome activity log:")
	for _, e := range home.Broker.Events() {
		fmt.Println("  " + e.String())
	}
	return nil
}
