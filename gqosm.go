// Package gqosm is a Go implementation of the G-QoSM Grid QoS management
// framework and its QoS adaptation scheme, reproducing "QoS Adaptation in
// Service-Oriented Grids" (Al-Ali, Hafid, Rana, Walker — Middleware 2003).
//
// The package is a thin facade over the implementation packages: it
// re-exports the types a downstream user needs to stand up an AQoS broker
// with its substrates (GARA-style reservations, a DSRT-style CPU
// scheduler, a bandwidth-broker NRM, a UDDIe-style registry, an MDS-style
// information service and a GRAM-style job manager), negotiate SLAs, and
// drive the adaptation scheme.
//
// Quickstart:
//
//	stack, err := gqosm.NewStack(gqosm.StackConfig{
//		Domain: "site-a",
//		Plan: gqosm.CapacityPlan{
//			Guaranteed: gqosm.Capacity{CPU: 15},
//			Adaptive:   gqosm.Capacity{CPU: 6},
//			BestEffort: gqosm.Capacity{CPU: 5},
//		},
//	})
//	offer, err := stack.Broker.RequestService(gqosm.Request{ ... })
//	err = stack.Broker.Accept(offer.SLA.ID)
//
// See the examples directory for complete programs and DESIGN.md for the
// paper-to-module map.
package gqosm

import (
	"fmt"
	"sync"
	"time"

	"gqosm/internal/clockx"
	"gqosm/internal/core"
	"gqosm/internal/dsrt"
	"gqosm/internal/faultx"
	"gqosm/internal/gara"
	"gqosm/internal/gram"
	"gqosm/internal/httpapi"
	"gqosm/internal/mds"
	"gqosm/internal/nrm"
	"gqosm/internal/obs"
	"gqosm/internal/pricing"
	"gqosm/internal/registry"
	"gqosm/internal/resource"
	"gqosm/internal/rsl"
	"gqosm/internal/sla"
	"gqosm/internal/soapx"
)

// Re-exported core types. The aliases keep one import path for users while
// the implementation stays in focused internal packages.
type (
	// Capacity is a multi-dimensional resource quantity.
	Capacity = resource.Capacity
	// CapacityPlan is the Algorithm-1 partition R = C_G + C_A + C_B.
	CapacityPlan = core.CapacityPlan
	// Broker is the AQoS broker.
	Broker = core.Broker
	// Request is a client service request with QoS requirements.
	Request = core.Request
	// Offer is a proposed SLA with temporarily reserved resources.
	Offer = core.Offer
	// SLA is a Service Level Agreement document.
	SLA = sla.Document
	// SLAID identifies an SLA.
	SLAID = sla.ID
	// Spec is a QoS parameter set.
	Spec = sla.Spec
	// Param is one QoS parameter (exact / range / list).
	Param = sla.Param
	// Class is the service class (guaranteed / controlled-load / best
	// effort).
	Class = sla.Class
	// Clock abstracts time for deterministic runs.
	Clock = clockx.Clock
	// ManualClock is the deterministic clock used by tests and the
	// simulator.
	ManualClock = clockx.Manual
	// PromotionOffer is a scenario-2(c) discounted upgrade offer.
	PromotionOffer = pricing.PromotionOffer
	// ConformanceReport is an SLA-Verif result (Table 3).
	ConformanceReport = core.ConformanceReport
	// RetryPolicy bounds the broker's RM-facing calls (per-attempt
	// timeout, bounded retries, jittered exponential backoff). The zero
	// value is a single direct attempt.
	RetryPolicy = core.RetryPolicy
	// FaultInjector is the deterministic fault-injection layer; install
	// one via StackConfig.Faults to chaos-test a deployment.
	FaultInjector = faultx.Injector
	// FaultPlan configures injection at one site or as the default.
	FaultPlan = faultx.Plan
	// IntakeConfig enables and sizes the broker's group-commit admission
	// intake (StackConfig.Intake): queued admissions are committed in one
	// allocator pass and one WAL fsync per batch.
	IntakeConfig = core.IntakeConfig
	// IntakeTicket is a queued admission's future (Broker.Submit);
	// Wait blocks until the batch it joined is flushed.
	IntakeTicket = core.IntakeTicket
)

// Fault kinds for FaultPlan.Kinds.
const (
	FaultError   = faultx.KindError
	FaultLatency = faultx.KindLatency
	FaultHang    = faultx.KindHang
	FaultPartial = faultx.KindPartial
	FaultCrash   = faultx.KindCrash
)

// Re-exported constants.
const (
	ClassGuaranteed     = sla.ClassGuaranteed
	ClassControlledLoad = sla.ClassControlledLoad
	ClassBestEffort     = sla.ClassBestEffort

	CPU           = resource.CPU
	MemoryMB      = resource.MemoryMB
	DiskGB        = resource.DiskGB
	BandwidthMbps = resource.BandwidthMbps
)

// Re-exported constructors for QoS parameters.
var (
	// Exact builds an exact-value parameter (guaranteed class).
	Exact = sla.Exact
	// Range builds a [min, max] parameter (controlled-load class).
	Range = sla.Range
	// List builds an explicit-values parameter.
	List = sla.List
	// NewSpec assembles a Spec from parameters.
	NewSpec = sla.NewSpec
	// Nodes is shorthand for a CPU-only capacity.
	Nodes = resource.Nodes
	// PlanForFailureRate sizes the adaptive reserve from the expected
	// failure rate.
	PlanForFailureRate = core.PlanForFailureRate
	// NewFaultInjector returns a seeded fault injector; nil clock means
	// the wall clock.
	NewFaultInjector = faultx.New
)

// StackConfig sizes a complete single-domain G-QoSM deployment.
type StackConfig struct {
	// Domain names the administrative domain (default "site-a").
	Domain string
	// Plan is the capacity partition (required).
	Plan CapacityPlan
	// Clock defaults to the wall clock; inject a ManualClock for
	// deterministic runs.
	Clock Clock
	// Services to pre-register for discovery; when empty a catch-all
	// service named "simulation" advertising the full capacity is
	// registered.
	Services []registry.Service
	// Topology optionally provides a multi-domain network; when set,
	// NetworkDomain selects the domain this stack's NRM administers.
	Topology      *nrm.Topology
	NetworkDomain string
	// ConfirmWindow bounds how long offers hold temporary reservations.
	ConfirmWindow time.Duration
	// MinOptimizerGain is the §5.5 "considerable gain" threshold for
	// applying optimizer reallocations (default 1.0).
	MinOptimizerGain float64
	// DSRTProcessors, when positive, runs service processes under a
	// DSRT soft-real-time CPU scheduler with that many processors: each
	// launched job gets a DSRT contract, and the broker tries RM-level
	// adaptation (share boosts) before AQoS-level adaptation on CPU
	// degradation (§3.2).
	DSRTProcessors int
	// RepoDir, when set, persists established SLAs as Table-4 XML files
	// in that directory (the paper's SLA repository); otherwise SLAs are
	// kept in memory.
	RepoDir string
	// MonitorInterval, when positive, starts a periodic QoS-management
	// monitor (NRM checks, session expiry, optimizer passes) at that
	// interval; Close stops it.
	MonitorInterval time.Duration
	// Shards splits the broker's capacity plan across that many
	// independently locked allocators behind a least-loaded placement
	// layer (default 1, the classic monolithic domain).
	Shards int
	// EventLogCap bounds the broker's in-memory activity log (default
	// 8192 events; oldest evicted first).
	EventLogCap int
	// Obs receives metrics and lifecycle traces from every component;
	// nil creates a private registry, reachable via Stack.Obs. Mount
	// serves it on /metrics.
	Obs *obs.Registry
	// Faults, when non-nil, is installed on every substrate (GARA
	// managers, GRAM, the NRM, the SOAP server mux) and on the broker's
	// RM-facing call sites — the chaos-testing hook. Nil (the default)
	// injects nothing.
	Faults *FaultInjector
	// RMPolicy bounds the broker's RM-facing calls; the zero value is
	// the historical single direct attempt with no timeout.
	RMPolicy RetryPolicy
	// WALDir, when set, makes the broker durable: lifecycle records
	// journal to a write-ahead log in that directory with periodic
	// snapshots, and a restart with the same WALDir recovers the dead
	// broker's sessions, allocator book and ledger, then reconciles
	// reservations against the RMs. Empty keeps the historical
	// in-memory broker.
	WALDir string
	// WALSnapshotEvery is the snapshot cadence in WAL records (0 = the
	// package default, 256). Only meaningful with WALDir.
	WALSnapshotEvery int
	// Intake enables the group-commit admission intake: concurrent
	// admissions (notably JSON-API requests, which ride SubmitWait)
	// queued behind the same flush leader share one allocator pass and
	// one WAL fsync. The zero value keeps RequestService as the only
	// admission path.
	Intake IntakeConfig
	// Policy names the broker's adaptation policy ("" = "paper", the
	// historical heuristics). See core.PolicyNames for the registry.
	Policy string
	// ShadowPolicy, when set, consults the named candidate policy in
	// shadow at every broker decision point, counting divergence without
	// affecting live decisions (qosctl policies shows both).
	ShadowPolicy string
}

// Stack is an assembled single-domain deployment: the AQoS broker wired to
// all its substrates, ready for in-process use or for mounting on an HTTP
// server via Mount.
type Stack struct {
	Broker   *core.Broker
	Pool     *resource.Pool
	Registry *registry.Registry
	MDS      *mds.Directory
	GRAM     *gram.Manager
	GARA     *gara.System
	NRM      *nrm.Manager
	Clock    Clock
	// DSRT is the soft-real-time CPU scheduler when DSRTProcessors > 0.
	DSRT *dsrt.Scheduler
	// RM is the DSRT-backed RM-level adaptation hook, when enabled.
	RM *core.DSRTAdapter
	// Monitor is the periodic QoS-management driver, when enabled.
	Monitor *core.Monitor
	// Obs is the metrics registry shared by all components; Mount
	// serves it on /metrics.
	Obs *obs.Registry
	// Faults is the injector from StackConfig, when one was installed;
	// Mount also arms it on the SOAP server mux.
	Faults *FaultInjector
	// Recovery reports what crash recovery rebuilt and reconciled, when
	// WALDir held state from a previous run; nil on a fresh start.
	Recovery *core.RecoverStats
}

// NewStack assembles a deployment.
func NewStack(cfg StackConfig) (*Stack, error) {
	if cfg.Domain == "" {
		cfg.Domain = "site-a"
	}
	clock := cfg.Clock
	if clock == nil {
		clock = clockx.Real()
	}
	total := cfg.Plan.Total()
	pool := resource.NewPool(cfg.Domain, total)

	g := gara.NewSystem()
	g.RegisterManager(gara.WrapManager(gara.NewComputeManager(pool), cfg.Faults))

	var netMgr *nrm.Manager
	if cfg.Topology != nil {
		domain := cfg.NetworkDomain
		if domain == "" {
			domain = cfg.Domain
		}
		netMgr = nrm.NewManager(domain, cfg.Topology)
		netMgr.InjectFaults(cfg.Faults)
		g.RegisterManager(gara.WrapManager(gara.NewNetworkManager(netMgr), cfg.Faults))
	}

	reg := registry.New(clock)
	services := cfg.Services
	if len(services) == 0 {
		services = []registry.Service{{
			Name:     "simulation",
			Provider: cfg.Domain,
			Properties: []registry.Property{
				registry.NumProp("cpu-nodes", total.CPU),
				registry.NumProp("memory-mb", total.MemoryMB),
				registry.NumProp("disk-gb", total.DiskGB),
				registry.NumProp("bandwidth-mbps", total.BandwidthMbps),
			},
		}}
	}
	for _, s := range services {
		if _, err := reg.Register(s); err != nil {
			return nil, fmt.Errorf("gqosm: register service: %w", err)
		}
	}

	dir := mds.NewDirectory()
	if err := dir.Register(cfg.Domain, func() mds.Attributes {
		now := clock.Now()
		return mds.Attributes{
			"cpu-total": fmt.Sprintf("%g", pool.Total().CPU),
			"cpu-free":  fmt.Sprintf("%g", pool.Available(now).CPU),
		}
	}); err != nil {
		return nil, err
	}

	gramM := gram.NewManager(clock)
	gramM.InjectFaults(cfg.Faults)

	var (
		sched   *dsrt.Scheduler
		adapter *core.DSRTAdapter
	)
	if cfg.DSRTProcessors > 0 {
		sched = dsrt.New(dsrt.Config{Processors: cfg.DSRTProcessors}, nil)
		g.RegisterManager(gara.WrapManager(gara.NewDSRTManager(sched), cfg.Faults))
		adapter = core.NewDSRTAdapter(sched)
		// Run every launched service process under a DSRT contract: the
		// job's label carries the SLA ID, so degradations can be
		// rectified at the scheduler (RM) level first.
		attachJobs(gramM, sched, adapter, cfg.DSRTProcessors)
	}

	var repo sla.Repository
	if cfg.RepoDir != "" {
		fileRepo, err := sla.NewFileRepository(cfg.RepoDir)
		if err != nil {
			gramM.Close()
			return nil, err
		}
		repo = fileRepo
	}

	brokerCfg := core.Config{
		Domain:           cfg.Domain,
		Clock:            clock,
		Plan:             cfg.Plan,
		Registry:         reg,
		GARA:             g,
		GRAM:             gramM,
		NRM:              netMgr,
		MDS:              dir,
		RM:               rmOrNil(adapter),
		Repo:             repo,
		ConfirmWindow:    cfg.ConfirmWindow,
		MinOptimizerGain: cfg.MinOptimizerGain,
		Shards:           cfg.Shards,
		EventLogCap:      cfg.EventLogCap,
		Obs:              cfg.Obs,
		Faults:           cfg.Faults,
		RMPolicy:         cfg.RMPolicy,
		Durability:       core.DurabilityConfig{Dir: cfg.WALDir, SnapshotEvery: cfg.WALSnapshotEvery},
		Intake:           cfg.Intake,
		Policy:           cfg.Policy,
		ShadowPolicy:     cfg.ShadowPolicy,
	}
	// A WAL directory that already holds state means this start is a
	// RESTART: recover the previous broker's sessions and reconcile
	// against the RMs instead of journaling over its log.
	var (
		broker   *core.Broker
		recovery *core.RecoverStats
		err      error
	)
	if cfg.WALDir != "" && core.HasWALState(cfg.WALDir) {
		broker, recovery, err = core.Recover(brokerCfg)
	} else {
		broker, err = core.NewBroker(brokerCfg)
	}
	if err != nil {
		gramM.Close()
		return nil, err
	}
	metrics := broker.Obs()
	g.Instrument(metrics)
	gramM.Instrument(metrics)
	if netMgr != nil {
		netMgr.Instrument(metrics)
	}
	if sched != nil {
		sched.Instrument(metrics)
	}
	stack := &Stack{
		Broker:   broker,
		Pool:     pool,
		Registry: reg,
		MDS:      dir,
		GRAM:     gramM,
		GARA:     g,
		NRM:      netMgr,
		Clock:    clock,
		DSRT:     sched,
		RM:       adapter,
		Obs:      metrics,
		Faults:   cfg.Faults,
		Recovery: recovery,
	}
	if cfg.MonitorInterval > 0 {
		stack.Monitor = core.NewMonitor(broker, cfg.MonitorInterval)
		stack.Monitor.Start()
	}
	return stack, nil
}

// rmOrNil avoids storing a typed-nil adapter in the interface-valued
// config field.
func rmOrNil(a *core.DSRTAdapter) core.RMAdapter {
	if a == nil {
		return nil
	}
	return a
}

// attachJobs subscribes to GRAM job transitions, giving every launched
// service process a DSRT contract and linking it to its session for
// RM-level adaptation; terminal jobs release their contracts.
func attachJobs(gramM *gram.Manager, sched *dsrt.Scheduler, adapter *core.DSRTAdapter, processors int) {
	var mu sync.Mutex
	contracts := make(map[gram.JobID]dsrt.PID)
	gramM.Subscribe(func(j gram.Job) {
		node, err := rsl.ParseCached(j.Spec)
		if err != nil {
			return
		}
		id := sla.ID(node.Str("label", ""))
		if id == "" {
			return
		}
		switch {
		case j.State == gram.StateActive:
			// A modest default share; the DSRT adapter raises it on
			// demand when degradation is detected.
			share := 0.5 / float64(processors)
			pid, err := sched.Register(dsrt.Contract{Class: dsrt.PeriodicVariable, Share: share})
			if err != nil {
				return
			}
			mu.Lock()
			contracts[j.ID] = pid
			mu.Unlock()
			adapter.Attach(id, pid)
		case j.State.Terminal():
			mu.Lock()
			pid, ok := contracts[j.ID]
			delete(contracts, j.ID)
			mu.Unlock()
			if ok {
				_ = sched.Unregister(pid)
				adapter.Detach(id)
			}
		}
	})
}

// Mount installs the broker's SOAP endpoints on a fresh mux implementing
// http.Handler (the Fig. 5 deployment), plus the compact JSON API under
// /api/v1/ (package httpapi — the lean transport; with Intake enabled
// its admissions ride the group-commit batch path) and the Prometheus
// metrics exposition on GET /metrics. One listener serves all three.
func (s *Stack) Mount() *soapx.Mux {
	mux := soapx.NewMux()
	mux.Faults = s.Faults
	s.Broker.Mount(mux)
	s.Registry.Mount(mux)
	httpapi.NewServer(s.Broker).Mount(mux)
	mux.HandleHTTP("/metrics", s.Obs.Handler())
	return mux
}

// Close shuts the stack down.
func (s *Stack) Close() {
	if s.Monitor != nil {
		s.Monitor.Stop()
	}
	s.Broker.Close()
	s.GRAM.Close()
}

// NewManualClock returns a deterministic clock starting at start.
func NewManualClock(start time.Time) *ManualClock { return clockx.NewManual(start) }

// NewTopology returns an empty multi-domain network topology.
func NewTopology() *nrm.Topology { return nrm.NewTopology() }

// NewBrokerClient returns a typed SOAP client for a remote AQoS broker.
func NewBrokerClient(endpoint string) *core.Client { return core.NewClient(endpoint) }

// NewJSONBrokerClient returns a typed client for a remote AQoS broker's
// compact JSON API (the lean transport mounted under /api/v1/). Typed
// broker errors round-trip: errors.Is against core.ErrOverBudget &c.
// works through the wire.
func NewJSONBrokerClient(endpoint string) *httpapi.Client { return httpapi.NewClient(endpoint) }
