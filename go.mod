module gqosm

go 1.22
