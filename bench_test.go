package gqosm

// This file is the benchmark harness of DESIGN.md §4: one testing.B bench
// per paper artifact (Tables 1–4, Figures 2–4, the §5.6 worked example)
// and per claim experiment (C1–C5), plus the ablation benches of DESIGN.md
// §5. Run with:
//
//	go test -bench=. -benchmem
//
// Benches report domain-specific metrics (admission rates, utilization,
// profit ratios) via b.ReportMetric alongside ns/op.

import (
	"encoding/xml"
	"fmt"
	"testing"
	"time"

	"gqosm/internal/core"
	"gqosm/internal/gara"
	"gqosm/internal/pricing"
	"gqosm/internal/resource"
	"gqosm/internal/sim"
	"gqosm/internal/sla"
)

var benchEpoch = time.Date(2003, 6, 16, 9, 0, 0, 0, time.UTC)

func benchStack(b *testing.B) *Stack {
	b.Helper()
	stack, err := NewStack(StackConfig{
		Domain: "site-a",
		Clock:  NewManualClock(benchEpoch),
		Plan: CapacityPlan{
			Guaranteed: Capacity{CPU: 15, MemoryMB: 6144, DiskGB: 120},
			Adaptive:   Capacity{CPU: 6, MemoryMB: 2048, DiskGB: 40},
			BestEffort: Capacity{CPU: 5, MemoryMB: 2048, DiskGB: 40},
		},
		ConfirmWindow: time.Hour,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(stack.Close)
	return stack
}

// BenchmarkTable1SLAEncoding round-trips the Table-1 SLA resource portion
// through its XML wire form.
func BenchmarkTable1SLAEncoding(b *testing.B) {
	spec := NewSpec(Exact(CPU, 4), Exact(MemoryMB, 64), Exact(BandwidthMbps, 10))
	spec.SourceIP, spec.DestIP = "192.200.168.33", "135.200.50.101"
	spec.MaxPacketLossPct = 10
	alloc := Capacity{CPU: 4, MemoryMB: 64, BandwidthMbps: 10}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		doc := sla.EncodeServiceSpecific(spec, alloc)
		data, err := xml.Marshal(doc)
		if err != nil {
			b.Fatal(err)
		}
		var back sla.ServiceSpecificXML
		if err := xml.Unmarshal(data, &back); err != nil {
			b.Fatal(err)
		}
		if _, _, err := sla.DecodeServiceSpecific(back); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable2GARALifecycle measures the four Table-2 primitives:
// create → bind → unbind → cancel.
func BenchmarkTable2GARALifecycle(b *testing.B) {
	pool := resource.NewPool("bench", Capacity{CPU: 1 << 20, MemoryMB: 1 << 30, DiskGB: 1 << 20})
	sys := gara.NewSystem()
	sys.RegisterManager(gara.NewComputeManager(pool))
	start, end := benchEpoch, benchEpoch.Add(time.Hour)
	const req = `&(reservation-type="compute")(count=10)(memory=2048)(disk=15)`
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h, err := sys.Create(req, start, end, "bench")
		if err != nil {
			b.Fatal(err)
		}
		if err := sys.Bind(h, gara.BindParam{PID: i + 1}); err != nil {
			b.Fatal(err)
		}
		if err := sys.Unbind(h); err != nil {
			b.Fatal(err)
		}
		if err := sys.Cancel(h); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable3ConformanceTest measures the SLA-Verif conformance test
// producing the Table-3 reply.
func BenchmarkTable3ConformanceTest(b *testing.B) {
	stack := benchStack(b)
	offer, err := stack.Broker.RequestService(Request{
		Service: "simulation", Client: "bench", Class: ClassGuaranteed,
		Spec:  NewSpec(Exact(CPU, 10), Exact(MemoryMB, 2048), Exact(DiskGB, 15)),
		Start: benchEpoch, End: benchEpoch.Add(100 * time.Hour),
	})
	if err != nil {
		b.Fatal(err)
	}
	if err := stack.Broker.Accept(offer.SLA.ID); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := stack.Broker.Verify(offer.SLA.ID)
		if err != nil || !rep.Conforms {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable4Negotiation measures a full controlled-load negotiation
// (discovery → admission → temporary reservation → offer) plus rejection.
func BenchmarkTable4Negotiation(b *testing.B) {
	stack := benchStack(b)
	req := Request{
		Service: "simulation", Client: "bench", Class: ClassControlledLoad,
		Spec:  NewSpec(Range(CPU, 2, 8), Range(MemoryMB, 512, 2048)),
		Start: benchEpoch, End: benchEpoch.Add(time.Hour),
		AcceptDegradation: true, PromotionOptIn: true,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		offer, err := stack.Broker.RequestService(req)
		if err != nil {
			b.Fatal(err)
		}
		if err := stack.Broker.Reject(offer.SLA.ID); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure2EndToEndSession measures the full Fig. 2 sequence:
// request → accept → invoke → verify → terminate.
func BenchmarkFigure2EndToEndSession(b *testing.B) {
	stack := benchStack(b)
	req := Request{
		Service: "simulation", Client: "bench", Class: ClassGuaranteed,
		Spec:  NewSpec(Exact(CPU, 10), Exact(MemoryMB, 2048), Exact(DiskGB, 15)),
		Start: benchEpoch, End: benchEpoch.Add(1000 * time.Hour),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		offer, err := stack.Broker.RequestService(req)
		if err != nil {
			b.Fatal(err)
		}
		id := offer.SLA.ID
		if err := stack.Broker.Accept(id); err != nil {
			b.Fatal(err)
		}
		if _, err := stack.Broker.Invoke(id); err != nil {
			b.Fatal(err)
		}
		if _, err := stack.Broker.Verify(id); err != nil {
			b.Fatal(err)
		}
		if err := stack.Broker.Terminate(id, "bench"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure3SessionLifecycle measures the SLA document state
// machine.
func BenchmarkFigure3SessionLifecycle(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d := &sla.Document{
			ID: "bench", Class: ClassGuaranteed,
			Spec:  NewSpec(Exact(CPU, 10)),
			State: sla.StateProposed,
		}
		for _, next := range []sla.State{
			sla.StateEstablished, sla.StateActive, sla.StateDegraded,
			sla.StateActive, sla.StateTerminated,
		} {
			if err := d.Transition(next); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkExample56Timeline replays the complete §5.6 worked example.
func BenchmarkExample56Timeline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := sim.RunE56()
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) != 6 {
			b.Fatal("short timeline")
		}
	}
}

// BenchmarkClaimUtilization replays a heavy trace against the adaptive and
// static policies, reporting the utilization gap (C1).
func BenchmarkClaimUtilization(b *testing.B) {
	wl := sim.Workload{
		Seed: 42, ArrivalPerHour: 16, Duration: 24 * time.Hour,
		GuaranteedFrac: 0.3, ControlledFrac: 0.2, MeanHoldHours: 3, MaxNodes: 8,
	}
	trace := wl.Trace()
	var gap float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		adaptive, err := sim.NewAdaptivePolicy(core.CapacityPlan{
			Guaranteed: Nodes(15), Adaptive: Nodes(6), BestEffort: Nodes(5),
		})
		if err != nil {
			b.Fatal(err)
		}
		static := sim.NewStaticPolicy(core.CapacityPlan{
			Guaranteed: Nodes(15), Adaptive: Nodes(6), BestEffort: Nodes(5),
		})
		sa := sim.Replay(trace, adaptive, nil)
		ss := sim.Replay(trace, static, nil)
		gap = sa.MeanUtilization - ss.MeanUtilization
	}
	b.ReportMetric(gap, "util-gap")
}

// BenchmarkClaimFailureSurvival replays a failure-laden trace (C2),
// reporting broken guarantees under the adaptive plan.
func BenchmarkClaimFailureSurvival(b *testing.B) {
	rows := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := sim.RunC2(42, []float64{0.2})
		if err != nil {
			b.Fatal(err)
		}
		rows = out[0].BrokenNoReserve - out[0].BrokenAdaptive
	}
	b.ReportMetric(float64(rows), "guarantees-saved")
}

// BenchmarkClaimBestEffortFloor measures best-effort admission under a
// saturated guaranteed pool (C3).
func BenchmarkClaimBestEffortFloor(b *testing.B) {
	plan := core.CapacityPlan{Guaranteed: Nodes(15), Adaptive: Nodes(6), BestEffort: Nodes(5)}
	policy, err := sim.NewAdaptivePolicy(plan)
	if err != nil {
		b.Fatal(err)
	}
	if !policy.AllocateGuaranteed("standing", Nodes(15), Nodes(15)) {
		b.Fatal("standing load rejected")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := fmt.Sprintf("be-%d", i)
		if !policy.AllocateBestEffort(id, Nodes(5)) {
			b.Fatal("best-effort floor violated")
		}
		policy.ReleaseBestEffort(id)
	}
}

// BenchmarkClaimOptimizerProfit measures one optimizer pass over a
// 24-service marketplace (C4), reporting greedy profit per minimum-profit
// unit.
func BenchmarkClaimOptimizerProfit(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		rows, err := sim.RunC4(42, []int{24})
		if err != nil {
			b.Fatal(err)
		}
		ratio = rows[0].GreedyVsMinimum
	}
	b.ReportMetric(ratio, "greedy/min-profit")
}

// BenchmarkScenario1Compensation measures admitting a guaranteed request
// that requires degrading a willing controlled-load session (C5 / §4
// scenario 1).
func BenchmarkScenario1Compensation(b *testing.B) {
	stack := benchStack(b)
	// Standing willing session occupying the whole guaranteed pool.
	standing, err := stack.Broker.RequestService(Request{
		Service: "simulation", Client: "standing", Class: ClassControlledLoad,
		Spec:  NewSpec(Range(CPU, 2, 15)),
		Start: benchEpoch, End: benchEpoch.Add(1000 * time.Hour),
		AcceptDegradation: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	if err := stack.Broker.Accept(standing.SLA.ID); err != nil {
		b.Fatal(err)
	}
	req := Request{
		Service: "simulation", Client: "burst", Class: ClassGuaranteed,
		Spec:  NewSpec(Exact(CPU, 10)),
		Start: benchEpoch, End: benchEpoch.Add(1000 * time.Hour),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		offer, err := stack.Broker.RequestService(req)
		if err != nil {
			b.Fatal(err)
		}
		if err := stack.Broker.Reject(offer.SLA.ID); err != nil {
			b.Fatal(err)
		}
		// The standing session stays at its floor until scenario 2
		// restores it; restoration is exercised by the next iteration's
		// compensation pass either way.
	}
}

// BenchmarkScenario2ReleaseUpgrade measures the scenario-2 pass (restore +
// optimizer + promotions) after a termination.
func BenchmarkScenario2ReleaseUpgrade(b *testing.B) {
	stack := benchStack(b)
	cl, err := stack.Broker.RequestService(Request{
		Service: "simulation", Client: "tenant", Class: ClassControlledLoad,
		Spec:  NewSpec(Range(CPU, 2, 8)),
		Start: benchEpoch, End: benchEpoch.Add(1000 * time.Hour),
		AcceptDegradation: true, PromotionOptIn: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	if err := stack.Broker.Accept(cl.SLA.ID); err != nil {
		b.Fatal(err)
	}
	req := Request{
		Service: "simulation", Client: "burst", Class: ClassGuaranteed,
		Spec:  NewSpec(Exact(CPU, 12)),
		Start: benchEpoch, End: benchEpoch.Add(1000 * time.Hour),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		offer, err := stack.Broker.RequestService(req)
		if err != nil {
			b.Fatal(err)
		}
		if err := stack.Broker.Accept(offer.SLA.ID); err != nil {
			b.Fatal(err)
		}
		// Terminate triggers the full scenario-2 pass.
		if err := stack.Broker.Terminate(offer.SLA.ID, "bench"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScenario3FailureAdapt measures NotifyFailure + recovery (the
// §5.6 t2/t3 events).
func BenchmarkScenario3FailureAdapt(b *testing.B) {
	stack := benchStack(b)
	offer, err := stack.Broker.RequestService(Request{
		Service: "simulation", Client: "s", Class: ClassGuaranteed,
		Spec:  NewSpec(Exact(CPU, 14)),
		Start: benchEpoch, End: benchEpoch.Add(1000 * time.Hour),
	})
	if err != nil {
		b.Fatal(err)
	}
	if err := stack.Broker.Accept(offer.SLA.ID); err != nil {
		b.Fatal(err)
	}
	if err := stack.Broker.BestEffortRequest("be", Nodes(10)); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stack.Broker.NotifyFailure(Nodes(3))
		stack.Broker.NotifyFailure(Capacity{})
	}
}

// --- Ablations (DESIGN.md §5) ---

// BenchmarkAblationAdaptiveSizing sweeps the adaptive-reserve share and
// reports broken guarantees at each size — the administrator's C_A knob.
func BenchmarkAblationAdaptiveSizing(b *testing.B) {
	for _, share := range []float64{0, 0.1, 0.2, 0.3} {
		b.Run(fmt.Sprintf("A=%.0f%%", share*100), func(b *testing.B) {
			const totalNodes = 40.0
			wl := sim.Workload{
				Seed: 42, ArrivalPerHour: 10, Duration: 48 * time.Hour,
				GuaranteedFrac: 0.6, MeanHoldHours: 4, MaxNodes: 6,
			}
			trace := wl.Trace()
			var failures []sim.FailureEvent
			for at := time.Duration(0); at < wl.Duration; at += 12 * time.Hour {
				failures = append(failures, sim.FailureEvent{
					At: at + time.Hour, Offline: Nodes(totalNodes * 0.2), Duration: 2 * time.Hour,
				})
			}
			plan := core.CapacityPlan{
				Guaranteed: Nodes(totalNodes * (0.9 - share)),
				Adaptive:   Nodes(totalNodes * share),
				BestEffort: Nodes(totalNodes * 0.1),
			}
			var broken int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				policy, err := sim.NewAdaptivePolicy(plan)
				if err != nil {
					b.Fatal(err)
				}
				stats := sim.Replay(trace, policy, failures)
				broken = stats.BrokenGuarantees
			}
			b.ReportMetric(float64(broken), "broken-guarantees")
		})
	}
}

// BenchmarkAblationBorrowing compares best-effort throughput with dynamic
// borrowing on (adaptive policy) vs off (static policy).
func BenchmarkAblationBorrowing(b *testing.B) {
	wl := sim.Workload{
		Seed: 42, ArrivalPerHour: 16, Duration: 24 * time.Hour,
		GuaranteedFrac: 0.2, ControlledFrac: 0, MeanHoldHours: 2, MaxNodes: 8,
	}
	trace := wl.Trace()
	plan := core.CapacityPlan{Guaranteed: Nodes(15), Adaptive: Nodes(6), BestEffort: Nodes(5)}
	for _, mode := range []string{"borrowing-on", "borrowing-off"} {
		b.Run(mode, func(b *testing.B) {
			var admitted int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var policy sim.Policy
				if mode == "borrowing-on" {
					p, err := sim.NewAdaptivePolicy(plan)
					if err != nil {
						b.Fatal(err)
					}
					policy = p
				} else {
					policy = sim.NewStaticPolicy(plan)
				}
				stats := sim.Replay(trace, policy, nil)
				admitted = stats.Admitted
			}
			b.ReportMetric(float64(admitted), "admitted")
		})
	}
}

// BenchmarkAblationOptimizerExactVsGreedy compares solver latency and
// profit at the exact-solvable boundary (branch-and-bound cost grows
// steeply with instance size; see BenchmarkClaimOptimizerProfit for the
// large-instance greedy path).
func BenchmarkAblationOptimizerExactVsGreedy(b *testing.B) {
	problem := benchOptProblem(8)
	b.Run("exact", func(b *testing.B) {
		var profit float64
		for i := 0; i < b.N; i++ {
			res, err := core.Exact(problem)
			if err != nil {
				b.Fatal(err)
			}
			profit = res.Profit
		}
		b.ReportMetric(profit, "profit")
	})
	b.Run("greedy", func(b *testing.B) {
		var profit float64
		for i := 0; i < b.N; i++ {
			res, err := core.Greedy(problem)
			if err != nil {
				b.Fatal(err)
			}
			profit = res.Profit
		}
		b.ReportMetric(profit, "profit")
	})
}

// BenchmarkAblationConfirmWindow measures how many offers expire
// unconfirmed (stranding temporary reservations) as clients dawdle beyond
// the §3.1 confirmation window.
func BenchmarkAblationConfirmWindow(b *testing.B) {
	for _, window := range []time.Duration{time.Minute, 10 * time.Minute} {
		b.Run(window.String(), func(b *testing.B) {
			clock := NewManualClock(benchEpoch)
			stack, err := NewStack(StackConfig{
				Clock: clock,
				Plan: CapacityPlan{
					Guaranteed: Capacity{CPU: 15}, Adaptive: Capacity{CPU: 6}, BestEffort: Capacity{CPU: 5},
				},
				ConfirmWindow: window,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer stack.Close()
			expired := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				offer, err := stack.Broker.RequestService(Request{
					Service: "simulation", Client: "slow", Class: ClassGuaranteed,
					Spec:  NewSpec(Exact(CPU, 10)),
					Start: clock.Now(), End: clock.Now().Add(1000 * time.Hour),
				})
				if err != nil {
					b.Fatal(err)
				}
				// The client takes five minutes to decide.
				clock.Advance(5 * time.Minute)
				if err := stack.Broker.Accept(offer.SLA.ID); err != nil {
					expired++
				} else if err := stack.Broker.Terminate(offer.SLA.ID, "bench"); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(expired)/float64(b.N), "expired-offer-rate")
		})
	}
}

// BenchmarkAblationOptimizerThreshold sweeps the "considerable gain"
// threshold (§5.5): a low threshold reallocates eagerly and captures the
// upgrade profit; a high one leaves upgrades on the table.
func BenchmarkAblationOptimizerThreshold(b *testing.B) {
	for _, threshold := range []float64{0.5, 10, 100} {
		b.Run(fmt.Sprintf("gain>=%.1f", threshold), func(b *testing.B) {
			var applied int
			for i := 0; i < b.N; i++ {
				clock := NewManualClock(benchEpoch)
				stack, err := NewStack(StackConfig{
					Clock: clock,
					Plan: CapacityPlan{
						Guaranteed: Capacity{CPU: 15}, Adaptive: Capacity{CPU: 6}, BestEffort: Capacity{CPU: 5},
					},
					ConfirmWindow:    time.Hour,
					MinOptimizerGain: threshold,
				})
				if err != nil {
					b.Fatal(err)
				}
				// A guaranteed burst holds most of the pool, so the
				// tenant is admitted *below* its best quality (but never
				// degraded — scenario 2a's restore must not fire). When
				// the burst ends, only the optimizer (scenario 2b) can
				// upgrade the tenant, and only if the gain clears the
				// threshold.
				burst, err := stack.Broker.RequestService(Request{
					Service: "simulation", Client: "burst", Class: ClassGuaranteed,
					Spec:  NewSpec(Exact(CPU, 12)),
					Start: clock.Now(), End: clock.Now().Add(1000 * time.Hour),
				})
				if err != nil {
					b.Fatal(err)
				}
				if err := stack.Broker.Accept(burst.SLA.ID); err != nil {
					b.Fatal(err)
				}
				tenant, err := stack.Broker.RequestService(Request{
					Service: "simulation", Client: "tenant", Class: ClassControlledLoad,
					Spec:  NewSpec(Range(CPU, 2, 8)),
					Start: clock.Now(), End: clock.Now().Add(1000 * time.Hour),
				})
				if err != nil {
					b.Fatal(err)
				}
				if err := stack.Broker.Accept(tenant.SLA.ID); err != nil {
					b.Fatal(err)
				}
				if err := stack.Broker.Terminate(burst.SLA.ID, "bench"); err != nil {
					b.Fatal(err)
				}
				doc, err := stack.Broker.Session(tenant.SLA.ID)
				if err != nil {
					b.Fatal(err)
				}
				if doc.Allocated.Equal(doc.Spec.Best()) {
					applied++
				}
				stack.Close()
			}
			b.ReportMetric(float64(applied)/float64(b.N), "upgrade-rate")
		})
	}
}

func benchOptProblem(n int) core.OptProblem {
	model := pricing.NewModel(pricing.DefaultRates)
	rates := model.ClassRates(sla.ClassControlledLoad)
	p := core.OptProblem{Capacity: Capacity{CPU: float64(3 * n), MemoryMB: float64(512 * n)}}
	for i := 0; i < n; i++ {
		p.Services = append(p.Services, core.OptService{
			ID: sla.ID(fmt.Sprintf("svc-%d", i)),
			Spec: NewSpec(
				Range(CPU, float64(1+i%2), float64(4+i%5)),
				List(MemoryMB, 128, 256, 512),
			),
			Rates:      rates,
			RangeSteps: 3,
		})
	}
	return p
}
