package gqosm

import (
	"net/http/httptest"
	"testing"
	"time"

	"gqosm/internal/registry"
	"gqosm/internal/sla"
)

var epoch = time.Date(2003, 6, 16, 9, 0, 0, 0, time.UTC)

func paperStack(t *testing.T) *Stack {
	t.Helper()
	stack, err := NewStack(StackConfig{
		Domain: "site-a",
		Clock:  NewManualClock(epoch),
		Plan: CapacityPlan{
			Guaranteed: Capacity{CPU: 15, MemoryMB: 6144, DiskGB: 120},
			Adaptive:   Capacity{CPU: 6, MemoryMB: 2048, DiskGB: 40},
			BestEffort: Capacity{CPU: 5, MemoryMB: 2048, DiskGB: 40},
		},
		ConfirmWindow: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(stack.Close)
	return stack
}

func TestStackEndToEnd(t *testing.T) {
	stack := paperStack(t)
	offer, err := stack.Broker.RequestService(Request{
		Service: "simulation",
		Client:  "quickstart",
		Class:   ClassGuaranteed,
		Spec:    NewSpec(Exact(CPU, 10), Exact(MemoryMB, 2048), Exact(DiskGB, 15)),
		Start:   epoch,
		End:     epoch.Add(5 * time.Hour),
	})
	if err != nil {
		t.Fatalf("RequestService: %v", err)
	}
	if err := stack.Broker.Accept(offer.SLA.ID); err != nil {
		t.Fatalf("Accept: %v", err)
	}
	job, err := stack.Broker.Invoke(offer.SLA.ID)
	if err != nil {
		t.Fatalf("Invoke: %v", err)
	}
	if job.PID == 0 {
		t.Error("no PID")
	}
	rep, err := stack.Broker.Verify(offer.SLA.ID)
	if err != nil || !rep.Conforms {
		t.Fatalf("Verify: %+v, %v", rep, err)
	}
	if err := stack.Broker.Terminate(offer.SLA.ID, "done"); err != nil {
		t.Fatal(err)
	}
}

func TestStackDefaults(t *testing.T) {
	stack, err := NewStack(StackConfig{Plan: CapacityPlan{Guaranteed: Nodes(10)}})
	if err != nil {
		t.Fatal(err)
	}
	defer stack.Close()
	if stack.NRM != nil {
		t.Error("NRM present without topology")
	}
	// Real clock was injected.
	if stack.Clock == nil {
		t.Fatal("nil clock")
	}
	if _, err := NewStack(StackConfig{}); err == nil {
		t.Error("empty plan accepted")
	}
}

func TestStackWithTopology(t *testing.T) {
	topo := NewTopology()
	if err := topo.AddDomain("site-a", "192.200.168.0/24"); err != nil {
		t.Fatal(err)
	}
	if err := topo.AddDomain("site-b", "135.200.50.0/24"); err != nil {
		t.Fatal(err)
	}
	if err := topo.AddLink("site-a", "site-b", 1000); err != nil {
		t.Fatal(err)
	}
	stack, err := NewStack(StackConfig{
		Clock:    NewManualClock(epoch),
		Plan:     CapacityPlan{Guaranteed: Capacity{CPU: 15, BandwidthMbps: 700}, Adaptive: Capacity{CPU: 6, BandwidthMbps: 200}, BestEffort: Capacity{CPU: 5, BandwidthMbps: 100}},
		Topology: topo,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer stack.Close()
	if stack.NRM == nil {
		t.Fatal("no NRM")
	}
	spec := NewSpec(Exact(BandwidthMbps, 622))
	spec.SourceIP = "135.200.50.101"
	spec.DestIP = "192.200.168.33"
	offer, err := stack.Broker.RequestService(Request{
		Service: "simulation", Client: "db", Class: ClassGuaranteed,
		Spec: spec, Start: epoch, End: epoch.Add(time.Hour),
	})
	if err != nil {
		t.Fatalf("network request: %v", err)
	}
	if err := stack.Broker.Accept(offer.SLA.ID); err != nil {
		t.Fatal(err)
	}
	if len(stack.NRM.Flows()) != 1 {
		t.Error("no flow reserved")
	}
}

func TestStackMountServesBrokerAndRegistry(t *testing.T) {
	stack := paperStack(t)
	srv := httptest.NewServer(stack.Mount())
	defer srv.Close()

	// Broker endpoint works.
	client := NewBrokerClient(srv.URL)
	offer, err := client.RequestService(Request{
		Service: "simulation", Client: "remote", Class: ClassControlledLoad,
		Spec:  NewSpec(Range(CPU, 2, 8)),
		Start: epoch, End: epoch.Add(time.Hour),
	})
	if err != nil {
		t.Fatalf("remote request: %v", err)
	}
	if _, err := client.Act(sla.ID(offer.SLA.SLAID), "accept", ""); err != nil {
		t.Fatalf("remote accept: %v", err)
	}

	// Registry endpoint shares the mux.
	regClient := registry.NewClient(srv.URL)
	found, err := regClient.Find(registry.Query{NamePattern: "simulation"})
	if err != nil || len(found) != 1 {
		t.Fatalf("remote registry find = %v, %v", found, err)
	}
}

func TestStackCustomServices(t *testing.T) {
	stack, err := NewStack(StackConfig{
		Clock: NewManualClock(epoch),
		Plan:  CapacityPlan{Guaranteed: Nodes(10), BestEffort: Nodes(2)},
		Services: []registry.Service{{
			Name:       "renderer",
			Properties: []registry.Property{registry.NumProp("cpu-nodes", 10)},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer stack.Close()
	if _, err := stack.Broker.RequestService(Request{
		Service: "renderer", Client: "c", Class: ClassGuaranteed,
		Spec:  NewSpec(Exact(CPU, 4)),
		Start: epoch, End: epoch.Add(time.Hour),
	}); err != nil {
		t.Fatalf("custom service request: %v", err)
	}
}

// TestStackRestartRecovers: a durable stack (WALDir set) is torn down
// and reassembled over the same directory — the replacement reports the
// recovery and carries the first stack's sessions and billing forward.
func TestStackRestartRecovers(t *testing.T) {
	dir := t.TempDir()
	plan := CapacityPlan{
		Guaranteed: Capacity{CPU: 15, MemoryMB: 6144, DiskGB: 120},
		Adaptive:   Capacity{CPU: 6, MemoryMB: 2048, DiskGB: 40},
		BestEffort: Capacity{CPU: 5, MemoryMB: 2048, DiskGB: 40},
	}
	build := func() *Stack {
		t.Helper()
		stack, err := NewStack(StackConfig{
			Domain: "site-a",
			Clock:  NewManualClock(epoch),
			Plan:   plan,
			WALDir: dir,
		})
		if err != nil {
			t.Fatal(err)
		}
		return stack
	}

	first := build()
	if first.Recovery != nil {
		t.Fatal("fresh start reported a recovery")
	}
	offer, err := first.Broker.RequestService(Request{
		Service: "simulation", Client: "quickstart", Class: ClassGuaranteed,
		Spec:  NewSpec(Exact(CPU, 10), Exact(MemoryMB, 2048), Exact(DiskGB, 15)),
		Start: epoch, End: epoch.Add(5 * time.Hour),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := first.Broker.Accept(offer.SLA.ID); err != nil {
		t.Fatal(err)
	}
	revenue := first.Broker.Ledger().NetRevenue()
	first.Close()

	second := build()
	defer second.Close()
	r := second.Recovery
	if r == nil {
		t.Fatal("restart over a populated WAL directory reported no recovery")
	}
	if r.Sessions != 1 {
		t.Fatalf("recovered %d session(s), want 1", r.Sessions)
	}
	doc, err := second.Broker.Session(offer.SLA.ID)
	if err != nil {
		t.Fatalf("recovered session: %v", err)
	}
	if doc.State != sla.StateEstablished {
		t.Errorf("recovered state = %v, want established", doc.State)
	}
	if got := second.Broker.Ledger().NetRevenue(); got != revenue {
		t.Errorf("recovered revenue = %g, want %g", got, revenue)
	}
}
