package main

import (
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: gqosm/internal/core
cpu: Test CPU
BenchmarkSerialAdmission-8   	     200	     30000 ns/op	    8000 B/op	      88 allocs/op
BenchmarkSerialAdmission-8   	     200	     32000 ns/op	    8100 B/op	      88 allocs/op
BenchmarkSerialAdmission-8   	     200	     31000 ns/op	    8050 B/op	      90 allocs/op
BenchmarkDiscovery-8         	     200	       250.5 ns/op	       0 B/op	       0 allocs/op
BenchmarkDiscovery-8         	     200	       251.5 ns/op	       0 B/op	       0 allocs/op
PASS
ok  	gqosm/internal/core	1.234s
`

func TestParseBench(t *testing.T) {
	raw, err := parseBench(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2", len(raw))
	}
	s := raw["BenchmarkSerialAdmission"]
	if s == nil {
		t.Fatal("GOMAXPROCS suffix not stripped")
	}
	if len(s.ns) != 3 || len(s.allocs) != 3 || len(s.bytes) != 3 {
		t.Fatalf("sample counts = %d/%d/%d, want 3/3/3", len(s.ns), len(s.allocs), len(s.bytes))
	}
	d := raw["BenchmarkDiscovery"]
	if d == nil || len(d.ns) != 2 {
		t.Fatalf("fractional ns/op lines not parsed: %+v", d)
	}
}

func TestMedian(t *testing.T) {
	for _, tc := range []struct {
		in   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{5}, 5},
		{[]float64{30000, 32000, 31000}, 31000},
		{[]float64{1, 2, 3, 4}, 2.5},
	} {
		if got := median(tc.in); got != tc.want {
			t.Errorf("median(%v) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func TestReduce(t *testing.T) {
	raw, err := parseBench(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	stats := reduce(raw)
	s := stats["BenchmarkSerialAdmission"]
	if s.NsPerOp != 31000 {
		t.Errorf("ns/op median = %v, want 31000", s.NsPerOp)
	}
	if s.AllocsPerOp != 88 {
		t.Errorf("allocs/op median = %v, want 88", s.AllocsPerOp)
	}
	if s.Samples != 3 {
		t.Errorf("samples = %d, want 3", s.Samples)
	}
}

func TestCompare(t *testing.T) {
	base := Baseline{Benchmarks: map[string]BenchStat{
		"BenchmarkA": {NsPerOp: 1000, AllocsPerOp: 100},
		"BenchmarkB": {NsPerOp: 1000, AllocsPerOp: 100},
		"BenchmarkC": {NsPerOp: 1000, AllocsPerOp: 100},
		"BenchmarkD": {NsPerOp: 1000, AllocsPerOp: 100},
	}}
	fresh := map[string]BenchStat{
		"BenchmarkA": {NsPerOp: 1100, AllocsPerOp: 100}, // within 15%
		"BenchmarkB": {NsPerOp: 1200, AllocsPerOp: 100}, // ns/op regression
		"BenchmarkC": {NsPerOp: 900, AllocsPerOp: 101},  // allocs regression (exact gate)
		// BenchmarkD missing
		"BenchmarkE": {NsPerOp: 1, AllocsPerOp: 1}, // extra: ignored
	}
	report, failures := compare(base, fresh, 0.15, 0)
	if len(failures) != 3 {
		t.Fatalf("failures = %v, want 3 entries", failures)
	}
	for _, want := range []string{"BenchmarkB: ns/op regressed", "BenchmarkC: allocs/op regressed", "BenchmarkD: missing"} {
		found := false
		for _, f := range failures {
			if strings.HasPrefix(f, want) {
				found = true
			}
		}
		if !found {
			t.Errorf("no failure starting with %q in %v", want, failures)
		}
	}
	if !strings.Contains(report, "MISSING") {
		t.Error("report does not flag the missing benchmark")
	}
	// Improvements never fail.
	_, ok := compare(base, map[string]BenchStat{
		"BenchmarkA": {NsPerOp: 500, AllocsPerOp: 50},
		"BenchmarkB": {NsPerOp: 500, AllocsPerOp: 50},
		"BenchmarkC": {NsPerOp: 500, AllocsPerOp: 50},
		"BenchmarkD": {NsPerOp: 500, AllocsPerOp: 50},
	}, 0.15, 0)
	if len(ok) != 0 {
		t.Errorf("improvements reported as failures: %v", ok)
	}
}

func TestCompareAllocGateExact(t *testing.T) {
	// The default alloc gate is exact: equal passes, +1 fails — even
	// from a zero-alloc baseline (cache-hit and pooled-encode
	// benchmarks live at 0 allocs/op, and 0 → 1 is a real regression).
	base := Baseline{Benchmarks: map[string]BenchStat{
		"BenchmarkHit":    {NsPerOp: 100, AllocsPerOp: 0},
		"BenchmarkSteady": {NsPerOp: 100, AllocsPerOp: 8},
	}}
	_, failures := compare(base, map[string]BenchStat{
		"BenchmarkHit":    {NsPerOp: 100, AllocsPerOp: 0},
		"BenchmarkSteady": {NsPerOp: 100, AllocsPerOp: 8},
	}, 0.15, 0)
	if len(failures) != 0 {
		t.Errorf("exact-equal allocs failed: %v", failures)
	}
	_, failures = compare(base, map[string]BenchStat{
		"BenchmarkHit":    {NsPerOp: 100, AllocsPerOp: 1},
		"BenchmarkSteady": {NsPerOp: 100, AllocsPerOp: 9},
	}, 0.15, 0)
	if len(failures) != 2 {
		t.Errorf("alloc increases under the exact gate = %v, want 2 failures", failures)
	}
	// A non-zero alloc tolerance loosens the gate.
	_, failures = compare(base, map[string]BenchStat{
		"BenchmarkHit":    {NsPerOp: 100, AllocsPerOp: 0},
		"BenchmarkSteady": {NsPerOp: 100, AllocsPerOp: 9},
	}, 0.15, 0.20)
	if len(failures) != 0 {
		t.Errorf("+12.5%% allocs under 20%% tolerance failed: %v", failures)
	}
}
