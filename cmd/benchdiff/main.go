// Command benchdiff is the benchmark-regression gate behind CI's
// bench-regression job: it parses `go test -bench` output, reduces the
// -count repetitions of each benchmark to medians, and compares ns/op
// and allocs/op against a committed JSON baseline. ns/op gets a
// relative tolerance band (timings jitter with runner load); allocs/op
// is gated exactly by default (-alloc-tolerance 0) — allocation counts
// are deterministic at steady state, so ANY increase, including 0 → 1,
// is a real regression someone must either fix or consciously bake into
// a refreshed baseline. It needs nothing outside the standard library,
// so CI can `go run` it from a clean checkout.
//
// Usage:
//
//	go test -bench ... -benchmem -count=5 ./... | tee bench.txt
//	go run ./cmd/benchdiff -baseline BENCH_baseline.json -new bench.txt
//	go run ./cmd/benchdiff -new bench.txt -write-baseline BENCH_baseline.json
//
// The comparison fails (exit 1) when any baseline benchmark is missing
// from the new output, when a new ns/op median exceeds the baseline by
// more than -tolerance (default 0.15), or when a new allocs/op median
// exceeds baseline*(1+-alloc-tolerance) (default 0: exact).
// Improvements are reported but never fail.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// BenchStat is one benchmark's median metrics.
type BenchStat struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	Samples     int     `json:"samples"`
}

// Baseline is the committed BENCH_baseline.json document.
type Baseline struct {
	// Note reminds readers that numbers are runner-specific.
	Note       string               `json:"note,omitempty"`
	Benchmarks map[string]BenchStat `json:"benchmarks"`
}

// benchLine matches one `go test -bench` result line, e.g.
//
//	BenchmarkSerialAdmission-8  200  31132 ns/op  8231 B/op  88 allocs/op
//
// The -8 GOMAXPROCS suffix is stripped so baselines survive runner
// core-count changes. B/op and allocs/op require -benchmem.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op(?:\s+([0-9.]+) B/op)?(?:\s+([0-9.]+) allocs/op)?`)

type samples struct {
	ns, bytes, allocs []float64
}

// parseBench collects per-benchmark samples from -bench output.
func parseBench(r io.Reader) (map[string]*samples, error) {
	out := make(map[string]*samples)
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		name := m[1]
		s := out[name]
		if s == nil {
			s = &samples{}
			out[name] = s
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return nil, fmt.Errorf("benchdiff: bad ns/op in %q: %w", sc.Text(), err)
		}
		s.ns = append(s.ns, ns)
		if m[3] != "" {
			b, err := strconv.ParseFloat(m[3], 64)
			if err != nil {
				return nil, fmt.Errorf("benchdiff: bad B/op in %q: %w", sc.Text(), err)
			}
			s.bytes = append(s.bytes, b)
		}
		if m[4] != "" {
			a, err := strconv.ParseFloat(m[4], 64)
			if err != nil {
				return nil, fmt.Errorf("benchdiff: bad allocs/op in %q: %w", sc.Text(), err)
			}
			s.allocs = append(s.allocs, a)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// median returns the middle sample (mean of the two central ones for
// even counts); 0 for no samples.
func median(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	s := append([]float64(nil), v...)
	sort.Float64s(s)
	mid := len(s) / 2
	if len(s)%2 == 1 {
		return s[mid]
	}
	return (s[mid-1] + s[mid]) / 2
}

// reduce turns raw samples into median stats.
func reduce(raw map[string]*samples) map[string]BenchStat {
	out := make(map[string]BenchStat, len(raw))
	for name, s := range raw {
		out[name] = BenchStat{
			NsPerOp:     median(s.ns),
			AllocsPerOp: median(s.allocs),
			BytesPerOp:  median(s.bytes),
			Samples:     len(s.ns),
		}
	}
	return out
}

// compare checks new medians against the baseline. Every baseline
// benchmark must be present in the new results, stay within
// base*(1+nsTol) on ns/op and within base*(1+allocTol) on allocs/op
// (allocTol 0 means exact: any extra allocation fails, even from a
// zero-alloc baseline). It returns the human report and the list of
// failures.
func compare(base Baseline, fresh map[string]BenchStat, nsTol, allocTol float64) (string, []string) {
	var sb strings.Builder
	var failures []string
	names := make([]string, 0, len(base.Benchmarks))
	for name := range base.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)

	fmt.Fprintf(&sb, "%-34s %14s %14s %8s   %14s %14s %8s\n",
		"benchmark", "base ns/op", "new ns/op", "Δ", "base allocs", "new allocs", "Δ")
	for _, name := range names {
		b := base.Benchmarks[name]
		n, ok := fresh[name]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: missing from new results", name))
			fmt.Fprintf(&sb, "%-34s %14.0f %14s\n", name, b.NsPerOp, "MISSING")
			continue
		}
		nsDelta := delta(b.NsPerOp, n.NsPerOp)
		allocDelta := delta(b.AllocsPerOp, n.AllocsPerOp)
		fmt.Fprintf(&sb, "%-34s %14.0f %14.0f %+7.1f%%   %14.0f %14.0f %+7.1f%%\n",
			name, b.NsPerOp, n.NsPerOp, nsDelta*100, b.AllocsPerOp, n.AllocsPerOp, allocDelta*100)
		if b.NsPerOp > 0 && n.NsPerOp > b.NsPerOp*(1+nsTol) {
			failures = append(failures, fmt.Sprintf("%s: ns/op regressed %+.1f%% (%.0f -> %.0f, tolerance %.0f%%)",
				name, nsDelta*100, b.NsPerOp, n.NsPerOp, nsTol*100))
		}
		// No b > 0 guard: a zero-alloc baseline growing to 1 alloc/op is
		// exactly the regression the exact gate exists to catch.
		if n.AllocsPerOp > b.AllocsPerOp*(1+allocTol) {
			gate := "exact gate"
			if allocTol > 0 {
				gate = fmt.Sprintf("tolerance %.0f%%", allocTol*100)
			}
			failures = append(failures, fmt.Sprintf("%s: allocs/op regressed (%.0f -> %.0f, %s)",
				name, b.AllocsPerOp, n.AllocsPerOp, gate))
		}
	}
	return sb.String(), failures
}

func delta(base, new float64) float64 {
	if base == 0 {
		return 0
	}
	return (new - base) / base
}

func main() {
	var (
		baselinePath = flag.String("baseline", "BENCH_baseline.json", "committed baseline to compare against")
		newPath      = flag.String("new", "", "go test -bench output to evaluate (required)")
		tolerance    = flag.Float64("tolerance", 0.15, "allowed relative regression on ns/op")
		allocTol     = flag.Float64("alloc-tolerance", 0, "allowed relative regression on allocs/op (0 = exact)")
		writeBase    = flag.String("write-baseline", "", "write the new medians to this baseline file instead of comparing")
		outPath      = flag.String("out", "", "also write the comparison report to this file")
	)
	flag.Parse()
	if *newPath == "" {
		fmt.Fprintln(os.Stderr, "benchdiff: -new is required")
		os.Exit(2)
	}
	f, err := os.Open(*newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	raw, err := parseBench(f)
	f.Close()
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	if len(raw) == 0 {
		fmt.Fprintln(os.Stderr, "benchdiff: no benchmark lines found in", *newPath)
		os.Exit(2)
	}
	fresh := reduce(raw)

	if *writeBase != "" {
		doc := Baseline{
			Note: "Medians from `go test -bench -benchmem -benchtime=200x -count=5` on the CI runner. " +
				"Runner-specific: refresh with cmd/benchdiff -write-baseline after intentional performance changes (see README).",
			Benchmarks: fresh,
		}
		buf, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchdiff:", err)
			os.Exit(2)
		}
		buf = append(buf, '\n')
		if err := os.WriteFile(*writeBase, buf, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "benchdiff:", err)
			os.Exit(2)
		}
		fmt.Printf("wrote %d benchmark medians to %s\n", len(fresh), *writeBase)
		return
	}

	bf, err := os.ReadFile(*baselinePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	var base Baseline
	if err := json.Unmarshal(bf, &base); err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: parse %s: %v\n", *baselinePath, err)
		os.Exit(2)
	}
	report, failures := compare(base, fresh, *tolerance, *allocTol)
	fmt.Print(report)
	if *outPath != "" {
		full := report
		if len(failures) > 0 {
			full += "\nREGRESSIONS:\n  " + strings.Join(failures, "\n  ") + "\n"
		} else {
			full += "\nwithin tolerance\n"
		}
		if err := os.WriteFile(*outPath, []byte(full), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "benchdiff:", err)
			os.Exit(2)
		}
	}
	if len(failures) > 0 {
		fmt.Fprintln(os.Stderr, "\nbenchdiff: benchmark regressions:")
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, " ", f)
		}
		os.Exit(1)
	}
	fmt.Printf("\nall %d benchmarks within tolerance (ns/op %.0f%%, allocs/op %+.0f%%)\n",
		len(base.Benchmarks), *tolerance*100, *allocTol*100)
}
