package main

import (
	"os"
	"path/filepath"
	"testing"

	"gqosm/internal/clockx"
	"gqosm/internal/registry"
)

const seedXML = `<serviceList>
  <Service>
    <Name>MatrixSolver</Name>
    <Provider>site-a</Provider>
    <PropertyBag>
      <Property name="cpu-nodes" type="number">26</Property>
      <Property name="os" type="string">linux</Property>
    </PropertyBag>
  </Service>
  <Service>
    <Name>Visualizer</Name>
    <PropertyBag>
      <Property name="bandwidth-mbps" type="number">45</Property>
    </PropertyBag>
  </Service>
</serviceList>`

func TestSeedFromFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "services.xml")
	if err := os.WriteFile(path, []byte(seedXML), 0o644); err != nil {
		t.Fatal(err)
	}
	reg := registry.New(clockx.Real())
	n, err := seedFromFile(reg, path)
	if err != nil {
		t.Fatalf("seedFromFile: %v", err)
	}
	if n != 2 {
		t.Fatalf("seeded %d, want 2", n)
	}
	found, err := reg.Find(registry.Query{
		Filters: []registry.Filter{{Name: "cpu-nodes", Op: registry.OpGe, Value: "10"}},
	})
	if err != nil || len(found) != 1 || found[0].Name != "MatrixSolver" {
		t.Fatalf("Find = %v, %v", found, err)
	}
}

func TestSeedFromFileErrors(t *testing.T) {
	reg := registry.New(clockx.Real())
	if _, err := seedFromFile(reg, filepath.Join(t.TempDir(), "missing.xml")); err == nil {
		t.Error("missing file accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.xml")
	if err := os.WriteFile(bad, []byte("<not-a-list/"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := seedFromFile(reg, bad); err == nil {
		t.Error("malformed XML accepted")
	}
	// A service entry the registry rejects (no name) stops the seed.
	nameless := filepath.Join(t.TempDir(), "nameless.xml")
	if err := os.WriteFile(nameless, []byte(`<serviceList><Service><Name></Name></Service></serviceList>`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := seedFromFile(reg, nameless); err == nil {
		t.Error("nameless service accepted")
	}
}
