// Command registryd runs a standalone UDDIe-style registry server, for
// deployments where discovery is operated separately from the broker (the
// paper's Fig. 5 shows the UDDIe as its own servlet beside the AQoS).
//
// Usage:
//
//	registryd -listen :8081 -seed services.xml
//
// The optional seed file holds a <serviceList> of <Service> entries to
// pre-register.
package main

import (
	"encoding/xml"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"

	"gqosm/internal/clockx"
	"gqosm/internal/faultx"
	"gqosm/internal/registry"
	"gqosm/internal/soapx"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "registryd:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		listen    = flag.String("listen", ":8081", "HTTP listen address")
		seed      = flag.String("seed", "", "optional XML file of services to pre-register")
		faultRate = flag.Float64("fault-rate", 0, "chaos-test clients: probability of an injected SOAP fault per request (0 disables)")
		faultSeed = flag.Int64("fault-seed", 1, "fault injector PRNG seed (with -fault-rate)")
	)
	flag.Parse()

	reg := registry.New(clockx.Real())
	if *seed != "" {
		n, err := seedFromFile(reg, *seed)
		if err != nil {
			return err
		}
		log.Printf("registryd: seeded %d service(s) from %s", n, *seed)
	}

	mux := soapx.NewMux()
	if *faultRate > 0 {
		inj := faultx.New(*faultSeed, clockx.Real())
		inj.SetDefault(faultx.Plan{Rate: *faultRate})
		mux.Faults = inj
		log.Printf("registryd: CHAOS MODE: injecting SOAP faults at rate %g (seed %d)", *faultRate, *faultSeed)
	}
	reg.Mount(mux)
	httpMux := http.NewServeMux()
	httpMux.Handle("/", mux)
	httpMux.HandleFunc("/services", func(w http.ResponseWriter, _ *http.Request) {
		all, err := reg.Find(registry.Query{})
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		for _, s := range all {
			fmt.Fprintf(w, "%s  %s (provider %s, %d properties)\n", s.Key, s.Name, s.Provider, len(s.Properties))
		}
	})
	log.Printf("registryd: serving on %s", *listen)
	return http.ListenAndServe(*listen, httpMux)
}

type seedFile struct {
	XMLName  xml.Name              `xml:"serviceList"`
	Services []registry.ServiceXML `xml:"Service"`
}

func seedFromFile(reg *registry.Registry, path string) (int, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	var sf seedFile
	if err := xml.Unmarshal(data, &sf); err != nil {
		return 0, fmt.Errorf("parse %s: %w", path, err)
	}
	n := 0
	for _, sx := range sf.Services {
		svc, err := registry.ServiceFromXML(sx)
		if err != nil {
			return n, err
		}
		if _, err := reg.Register(svc); err != nil {
			return n, err
		}
		n++
	}
	return n, nil
}
