// The -intake-bench mode measures the amortized cost of one admission
// over the three paths this repo offers — the direct RequestService
// call, the group-commit intake at increasing batch sizes, and the
// compact JSON/HTTP transport over a loopback listener — and emits the
// bench_intake/v1 report committed as BENCH_intake.json. It exits
// non-zero when the batched path misses the sub-10 µs amortized target
// at batch 8, so CI can gate on the committed claim staying true.
package main

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"

	"gqosm"
	"gqosm/internal/httpapi"
	"gqosm/internal/sim"
)

// intakeBenchAdmissions is the per-row sample size: large enough that
// fixed costs (listener start, first-batch warmup) vanish in the mean.
const intakeBenchAdmissions = 4096

// intakeBenchTargetNS is the acceptance threshold: amortized admission
// cost through the batch path at batch >= 8.
const intakeBenchTargetNS = 10000

type intakeBenchRow struct {
	// Transport is "direct", "intake", or "http"; Batch is the group
	// size for intake rows (0 elsewhere).
	Transport      string  `json:"transport"`
	Batch          int     `json:"batch,omitempty"`
	Admissions     int     `json:"admissions"`
	NsPerAdmission float64 `json:"ns_per_admission"`
}

type intakeBenchReport struct {
	Schema string           `json:"schema"`
	Rows   []intakeBenchRow `json:"rows"`
	// AmortizedBatch8NS is the intake row at batch 8 — the number the
	// acceptance target is stated against.
	AmortizedBatch8NS float64 `json:"amortized_batch8_ns"`
	TargetNS          float64 `json:"target_ns"`
	TargetMet         bool    `json:"target_met"`
}

// intakeBenchStack builds a fresh broker sized so the largest batch of
// 1-CPU guaranteed asks fits the guaranteed pool with room to spare.
func intakeBenchStack(batch int) (*gqosm.Stack, error) {
	return gqosm.NewStack(gqosm.StackConfig{
		Domain: "bench",
		Clock:  gqosm.NewManualClock(sim.Epoch),
		Plan: gqosm.CapacityPlan{
			Guaranteed: gqosm.Capacity{CPU: 48, MemoryMB: 65536, DiskGB: 1024},
			Adaptive:   gqosm.Capacity{CPU: 8, MemoryMB: 8192, DiskGB: 128},
			BestEffort: gqosm.Capacity{CPU: 8, MemoryMB: 8192, DiskGB: 128},
		},
		ConfirmWindow: time.Hour,
		Intake:        gqosm.IntakeConfig{Enabled: batch > 0, MaxBatch: 64},
	})
}

// intakeBenchPrune bounds the working set between timed sections: a
// long-lived broker prunes terminal sessions and canceled reservations
// (exactly what the soak harness does at quiesce points), so the rows
// report steady-state admission cost, not cost against an ever-growing
// table that no deployment would keep.
func intakeBenchPrune(stack *gqosm.Stack) {
	stack.Broker.PruneTerminal()
	stack.GARA.PruneCanceled()
	stack.GRAM.PruneTerminal()
}

func intakeBenchRequest(stack *gqosm.Stack, i int) gqosm.Request {
	now := stack.Clock.Now()
	return gqosm.Request{
		Service: "simulation",
		Client:  fmt.Sprintf("bench-%d", i),
		Class:   gqosm.ClassGuaranteed,
		Spec:    gqosm.NewSpec(gqosm.Exact(gqosm.CPU, 1)),
		Start:   now,
		End:     now.Add(time.Hour),
	}
}

// benchDirect times the historical path: one RequestService per
// admission, rejected (untimed) so the pool never fills.
func benchDirect() (intakeBenchRow, error) {
	stack, err := intakeBenchStack(0)
	if err != nil {
		return intakeBenchRow{}, err
	}
	defer stack.Close()
	var elapsed time.Duration
	for i := 0; i < intakeBenchAdmissions; i++ {
		req := intakeBenchRequest(stack, i)
		t := time.Now()
		offer, err := stack.Broker.RequestService(req)
		elapsed += time.Since(t)
		if err != nil {
			return intakeBenchRow{}, fmt.Errorf("direct admission %d: %w", i, err)
		}
		if err := stack.Broker.Reject(offer.SLA.ID); err != nil {
			return intakeBenchRow{}, fmt.Errorf("direct reject %d: %w", i, err)
		}
		if i%64 == 63 {
			intakeBenchPrune(stack)
		}
	}
	return intakeBenchRow{
		Transport:      "direct",
		Admissions:     intakeBenchAdmissions,
		NsPerAdmission: float64(elapsed.Nanoseconds()) / intakeBenchAdmissions,
	}, nil
}

// benchIntake times the group-commit path at a fixed batch size: Submit
// x batch, one FlushIntake (one allocator pass, one WAL fsync when
// durable), Wait each ticket. Rejection is untimed cleanup.
func benchIntake(batch int) (intakeBenchRow, error) {
	stack, err := intakeBenchStack(batch)
	if err != nil {
		return intakeBenchRow{}, err
	}
	defer stack.Close()
	rounds := intakeBenchAdmissions / batch
	admissions := rounds * batch
	var elapsed time.Duration
	ids := make([]gqosm.SLAID, 0, batch)
	for r := 0; r < rounds; r++ {
		reqs := make([]gqosm.Request, batch)
		for i := range reqs {
			reqs[i] = intakeBenchRequest(stack, r*batch+i)
		}
		t := time.Now()
		tickets := make([]*gqosm.IntakeTicket, batch)
		for i, req := range reqs {
			tk, err := stack.Broker.Submit(req)
			if err != nil {
				return intakeBenchRow{}, fmt.Errorf("batch %d submit %d: %w", batch, i, err)
			}
			tickets[i] = tk
		}
		stack.Broker.FlushIntake()
		ids = ids[:0]
		for i, tk := range tickets {
			offer, err := tk.Wait()
			if err != nil {
				return intakeBenchRow{}, fmt.Errorf("batch %d wait %d: %w", batch, i, err)
			}
			ids = append(ids, offer.SLA.ID)
		}
		elapsed += time.Since(t)
		for _, id := range ids {
			if err := stack.Broker.Reject(id); err != nil {
				return intakeBenchRow{}, fmt.Errorf("batch %d reject: %w", batch, err)
			}
		}
		intakeBenchPrune(stack)
	}
	return intakeBenchRow{
		Transport:      "intake",
		Batch:          batch,
		Admissions:     admissions,
		NsPerAdmission: float64(elapsed.Nanoseconds()) / float64(admissions),
	}, nil
}

// benchHTTP times the JSON transport end to end: 8 concurrent workers
// POST /api/v1/request against a loopback listener (the server routes
// them through SubmitWait, so concurrent requests share batches) and
// reject over the wire, untimed. The row reports mean request latency.
func benchHTTP() (intakeBenchRow, error) {
	stack, err := intakeBenchStack(8)
	if err != nil {
		return intakeBenchRow{}, err
	}
	defer stack.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return intakeBenchRow{}, err
	}
	srv := &http.Server{Handler: httpapi.NewServer(stack.Broker)}
	go srv.Serve(ln) //nolint:errcheck // shut down via Close below
	defer srv.Close()

	const workers = 8
	perWorker := intakeBenchAdmissions / workers
	elapsed := make([]time.Duration, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			client := gqosm.NewJSONBrokerClient("http://" + ln.Addr().String())
			for i := 0; i < perWorker; i++ {
				req := intakeBenchRequest(stack, w*perWorker+i)
				t := time.Now()
				offer, err := client.RequestService(req)
				elapsed[w] += time.Since(t)
				if err != nil {
					errs[w] = fmt.Errorf("worker %d admission %d: %w", w, i, err)
					return
				}
				if _, err := client.Act(gqosm.SLAID(offer.SLAID), "reject", ""); err != nil {
					errs[w] = fmt.Errorf("worker %d reject %d: %w", w, i, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	var total time.Duration
	for w := 0; w < workers; w++ {
		if errs[w] != nil {
			return intakeBenchRow{}, errs[w]
		}
		total += elapsed[w]
	}
	return intakeBenchRow{
		Transport:      "http",
		Admissions:     perWorker * workers,
		NsPerAdmission: float64(total.Nanoseconds()) / float64(perWorker*workers),
	}, nil
}

// runIntakeBench produces the bench_intake/v1 report and gates on the
// committed acceptance target: amortized admission through the batch
// path at batch >= 8 stays under 10 µs.
func runIntakeBench(jsonOut bool) error {
	report := intakeBenchReport{Schema: "bench_intake/v1", TargetNS: intakeBenchTargetNS}

	row, err := benchDirect()
	if err != nil {
		return err
	}
	report.Rows = append(report.Rows, row)
	for _, batch := range []int{1, 2, 4, 8, 16, 32} {
		row, err := benchIntake(batch)
		if err != nil {
			return err
		}
		report.Rows = append(report.Rows, row)
		if batch == 8 {
			report.AmortizedBatch8NS = row.NsPerAdmission
		}
	}
	row, err = benchHTTP()
	if err != nil {
		return err
	}
	report.Rows = append(report.Rows, row)
	report.TargetMet = report.AmortizedBatch8NS <= report.TargetNS

	if jsonOut {
		out, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		fmt.Println(string(out))
	} else {
		header("INTAKE", "amortized admission cost: direct vs group-commit batches vs JSON/HTTP")
		for _, r := range report.Rows {
			label := r.Transport
			if r.Batch > 0 {
				label = fmt.Sprintf("%s/%d", r.Transport, r.Batch)
			}
			fmt.Printf("%-10s admissions=%-5d %10.0f ns/admission\n", label, r.Admissions, r.NsPerAdmission)
		}
		fmt.Printf("\namortized batch-8 admission: %.0f ns (target %.0f ns, met=%v)\n",
			report.AmortizedBatch8NS, report.TargetNS, report.TargetMet)
	}
	if !report.TargetMet {
		return fmt.Errorf("intake bench: amortized batch-8 admission %.0f ns exceeds the %.0f ns target",
			report.AmortizedBatch8NS, report.TargetNS)
	}
	return nil
}
