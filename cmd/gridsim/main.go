// Command gridsim regenerates the repository's experiments (DESIGN.md §4):
// every table and figure artifact of the paper plus the claim experiments
// C1–C5. Each experiment prints the rows the corresponding section of
// EXPERIMENTS.md records.
//
// Usage:
//
//	gridsim -experiment E56          # §5.6 worked-example timeline
//	gridsim -experiment C1           # utilization: adaptive vs static
//	gridsim -experiment C2           # failure survival: reserve vs none
//	gridsim -experiment C3           # best-effort floor
//	gridsim -experiment C4           # optimizer profit vs baselines
//	gridsim -experiment C5           # scenario-1 admission gain
//	gridsim -experiment T1|T3|T4     # the paper's XML artifacts
//	gridsim -experiment T2           # GARA API lifecycle transcript
//	gridsim -experiment F4|F6        # broker interaction transcript
//	gridsim -experiment all          # everything
//	gridsim -parallel -clients 8 -ops 10000   # concurrent stress + throughput
//	gridsim -parallel -shards 4               # same, against a 4-shard broker
//	gridsim -parallel -intake                 # admissions ride the group-commit batch path
//	gridsim -parallel -transport http         # admissions over the loopback JSON API
//	gridsim -chaos -seed 7 -faultrate 0.2     # deterministic fault-injection replay
//	gridsim -chaos -restarts 3 -seed 7        # restart chaos: kill + WAL-recover the broker mid-workload
//	gridsim -chaos -intake -seed 7            # same replays with batched admissions (still bit-identical per seed)
//	gridsim -intake-bench -json               # amortized admission cost: direct vs batched vs JSON/HTTP
//	gridsim -scenario list                    # the workload scenario catalog
//	gridsim -scenario flash-crowd -seed 7     # replay one scenario, gate on its report
//	gridsim -scenario all -soak -json         # soak every scenario, emit BENCH_scenarios.json
//	gridsim -cluster 3 -seed 7                # multi-broker cluster: placement, fallback,
//	                                          # hand-off crash drill, N=1 parity gate
//	gridsim -cluster 3 -json                  # same, emit the BENCH_cluster.json shape
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"gqosm"
	"gqosm/internal/cluster"
	"gqosm/internal/gara"
	"gqosm/internal/obs"
	"gqosm/internal/resource"
	"gqosm/internal/shadow"
	"gqosm/internal/sim"
	"gqosm/internal/sla"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "gridsim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("gridsim", flag.ContinueOnError)
	var (
		experiment  = fs.String("experiment", "all", "experiment id (E56, C1..C5, T1..T4, F4, F6, all)")
		seed        = fs.Int64("seed", 2003, "workload seed")
		verbose     = fs.Bool("v", false, "include broker activity logs")
		parallel    = fs.Bool("parallel", false, "run the concurrent admission stress instead of an experiment")
		clients     = fs.Int("clients", 8, "concurrent clients for -parallel")
		ops         = fs.Int("ops", 10000, "total lifecycle operations for -parallel")
		phases      = fs.Int("phases", 10, "quiesce points for -parallel")
		shards      = fs.Int("shards", 1, "broker shards for the -parallel run (serial baseline stays monolithic)")
		jsonOut     = fs.Bool("json", false, "emit -parallel/-chaos results as JSON")
		chaos       = fs.Bool("chaos", false, "replay the stress workload under deterministic fault injection")
		faultRate   = fs.Float64("faultrate", 0.2, "per-site fault injection probability for -chaos")
		restarts    = fs.Int("restarts", 0, "with -chaos: kill and WAL-recover the broker this many times mid-workload")
		walDir      = fs.String("wal-dir", "", "WAL directory for -chaos -restarts (default: a temporary one)")
		cache       = fs.String("cache", "on", "hot-path caches for -parallel: on|off")
		intake      = fs.Bool("intake", false, "route admissions through the group-commit intake for -parallel/-chaos runs")
		transport   = fs.String("transport", "", "admission transport for -parallel: empty (in-process) or http (loopback JSON API)")
		intakeBench = fs.Bool("intake-bench", false, "measure amortized admission cost: direct vs batched intake vs JSON/HTTP transport")
		scenario    = fs.String("scenario", "", "replay a workload scenario by name ('all' for every scenario, 'list' for the catalog)")
		soak        = fs.Bool("soak", false, "run -scenario in long-run soak mode: bounded working set, runtime health sampling")
		shadowPol   = fs.String("shadow", "", "with -scenario: evaluate the named candidate policy in shadow (divergence counts + counterfactual deltas, bench_shadow/v1 with -json)")
		clusterN    = fs.Int("cluster", 0, "run the multi-broker harness with N broker instances behind the front tier")
		placement   = fs.String("placement", "hash", "front-tier placement for -cluster: hash|least-loaded")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	var disableCaches bool
	switch *cache {
	case "on":
	case "off":
		disableCaches = true
	default:
		return fmt.Errorf("bad -cache value %q (want on or off)", *cache)
	}
	if *intakeBench {
		return runIntakeBench(*jsonOut)
	}
	if *transport != "" && !*parallel {
		return fmt.Errorf("-transport needs -parallel (the chaos replays stay in-process for determinism)")
	}
	if *clusterN > 0 {
		// -clients doubles as the cluster workload size, but its stress
		// default (8) is far too small here: unless set explicitly, the
		// cluster harness drives the acceptance-scale 10⁵ clients.
		nClients := 100000
		fs.Visit(func(f *flag.Flag) {
			if f.Name == "clients" {
				nClients = *clients
			}
		})
		return runCluster(*clusterN, nClients, *shards, *seed, *placement, *jsonOut)
	}
	if *scenario != "" {
		if *shadowPol != "" {
			if *soak {
				return fmt.Errorf("-shadow and -soak are mutually exclusive (the shadow lab replays each scenario three times itself)")
			}
			return runShadow(*scenario, *shadowPol, *seed, *ops, *shards, *jsonOut)
		}
		return runScenarios(*scenario, *soak, *seed, *ops, *shards, *jsonOut)
	}
	if *shadowPol != "" {
		return fmt.Errorf("-shadow needs -scenario")
	}
	if *soak {
		return fmt.Errorf("-soak needs -scenario")
	}
	if *chaos {
		if *restarts > 0 {
			return runRestartChaos(*clients, *ops, *restarts, *shards, *seed, *faultRate, *walDir, *intake, *jsonOut)
		}
		return runChaos(*clients, *ops, *phases, *shards, *seed, *faultRate, *intake, *jsonOut)
	}
	if *restarts > 0 {
		return fmt.Errorf("-restarts needs -chaos")
	}
	if *parallel {
		return runParallel(*clients, *ops, *phases, *shards, *seed, *jsonOut, disableCaches, *intake, *transport)
	}

	runners := map[string]func(int64, bool) error{
		"E56": runE56,
		"C1":  runC1,
		"C2":  runC2,
		"C3":  runC3,
		"C4":  runC4,
		"C5":  runC5,
		"T1":  runT1,
		"T2":  runT2,
		"T3":  runT3,
		"T4":  runT4,
		"F4":  runF4,
		"F6":  runF6,
	}
	id := strings.ToUpper(*experiment)
	if id == "ALL" {
		for _, key := range []string{"T1", "T2", "T3", "T4", "F4", "F6", "E56", "C1", "C2", "C3", "C4", "C5"} {
			if err := runners[key](*seed, *verbose); err != nil {
				return fmt.Errorf("%s: %w", key, err)
			}
		}
		return nil
	}
	r, ok := runners[id]
	if !ok {
		return fmt.Errorf("unknown experiment %q", *experiment)
	}
	return r(*seed, *verbose)
}

// runParallel drives the concurrent admission stress (sim.RunParallel)
// against a serial baseline with the same total work, checking the
// invariant suite at every quiesce point. Each run gets its own metrics
// registry so the serial baseline's counters do not pollute the parallel
// run's. The JSON form is the shape recorded in BENCH_parallel.json (see
// README.md "Benchmark artifact").
func runParallel(clients, ops, phases, shards int, seed int64, jsonOut, disableCaches bool, intake bool, transport string) error {
	serialObs, parObs := obs.NewRegistry(), obs.NewRegistry()
	// The serial baseline always takes the direct in-process path; -intake
	// and -transport only shape the parallel run, so the comparison shows
	// what the batch path / wire cost changes.
	serial, err := sim.RunParallel(sim.ParallelConfig{
		Clients: 1, Ops: ops, Phases: phases, Seed: seed, Obs: serialObs,
		DisableCaches: disableCaches,
	})
	if err != nil {
		return fmt.Errorf("serial baseline: %w", err)
	}
	par, err := sim.RunParallel(sim.ParallelConfig{
		Clients: clients, Ops: ops, Phases: phases, Seed: seed, Shards: shards, Obs: parObs,
		DisableCaches: disableCaches, Intake: intake, Transport: transport,
	})
	if err != nil {
		return fmt.Errorf("parallel stress: %w", err)
	}
	if jsonOut {
		out, err := json.MarshalIndent(map[string]*sim.ParallelResult{
			"serial": serial, "parallel": par,
		}, "", "  ")
		if err != nil {
			return err
		}
		fmt.Println(string(out))
		return nil
	}
	header("PAR", "concurrent admission stress: serial baseline vs parallel clients")
	for _, row := range []struct {
		name string
		r    *sim.ParallelResult
	}{{"serial", serial}, {"parallel", par}} {
		fmt.Printf("%-9s clients=%-3d shards=%-2d ops=%-6d requested=%-5d admitted=%-5d terminated=%-5d checks=%d  %8.0f ops/s\n",
			row.name, row.r.Clients, row.r.Shards, row.r.Ops, row.r.Requested,
			row.r.Admitted, row.r.Terminated, row.r.Checks, row.r.OpsPerSec)
		fmt.Printf("%-9s admission latency p50=%.4fms p95=%.4fms p99=%.4fms over %.1fms\n",
			"", row.r.AdmitP50MS, row.r.AdmitP95MS, row.r.AdmitP99MS, row.r.ElapsedMS)
		if row.r.CacheHitRate > 0 {
			fmt.Printf("%-9s discovery cache hit rate %.1f%%\n", "", row.r.CacheHitRate*100)
		}
		if row.r.Intake {
			fmt.Printf("%-9s intake: mean batch %.2f admissions/flush\n", "", row.r.IntakeBatchMean)
		}
		if row.r.Transport != "" {
			fmt.Printf("%-9s transport: %s\n", "", row.r.Transport)
		}
		if row.r.Shards > 1 {
			fmt.Printf("%-9s shard sessions=%v load=%v\n", "", row.r.ShardSessions, row.r.ShardUtilization)
		}
	}
	fmt.Println("\nall invariant checks passed; no capacity lost or double-spent")
	fmt.Println("\nparallel-run metrics snapshot:")
	if err := parObs.WritePrometheus(os.Stdout); err != nil {
		return err
	}
	return nil
}

// runChaos replays the stress workload under seeded fault injection
// (sim.RunChaos). Every reported field is deterministic: the same seed,
// fault rate and shard count yield a byte-identical JSON report. The
// JSON form is the shape recorded in BENCH_chaos.json (see README.md
// "Chaos artifact"); CI gates on invariant_violations == 0.
func runChaos(clients, ops, phases, shards int, seed int64, faultRate float64, intake, jsonOut bool) error {
	res, err := sim.RunChaos(sim.ChaosConfig{
		Clients: clients, Ops: ops, Phases: phases, Seed: seed,
		FaultRate: faultRate, Shards: shards, Intake: intake,
	})
	if err != nil {
		return fmt.Errorf("chaos: %w", err)
	}
	if jsonOut {
		out, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			return err
		}
		fmt.Println(string(out))
	} else {
		header("CHAOS", "stress workload under deterministic fault injection")
		fmt.Printf("seed=%d faultrate=%.2f shards=%d ops=%d\n", res.Seed, res.FaultRate, res.Shards, res.Ops)
		fmt.Printf("requested=%d admitted=%d (%.1f%%) terminated=%d\n",
			res.Requested, res.Admitted, 100*res.AdmitRate, res.Terminated)
		fmt.Printf("faults=%d by kind=%v virtual p95=%.1fms\n",
			res.FaultsInjected, res.FaultsByKind, res.VirtualP95MS)
		fmt.Printf("retries=%d timeouts=%d unavailable=%d reconciled cancels=%d\n",
			res.Retries, res.Timeouts, res.Unavailable, res.ReconciledCancels)
		fmt.Printf("degradations=%d restorations=%d\n", res.Degradations, res.Restorations)
		if res.Intake {
			fmt.Printf("intake: mean batch %.2f admissions/flush\n", res.IntakeBatchMean)
		}
		fmt.Printf("invariant checks=%d violations=%d\n", res.Checks, res.InvariantViolations)
	}
	if res.InvariantViolations != 0 {
		return fmt.Errorf("chaos run found %d invariant violation(s): %v",
			res.InvariantViolations, res.Violations)
	}
	return nil
}

// runRestartChaos replays the chaos workload against a durable broker
// that is killed and WAL-recovered -restarts times mid-run
// (sim.RunRestartChaos). The JSON form is the shape recorded in
// BENCH_recovery.json (see README.md "Recovery artifact"); the only
// wall-clock field is recovery_p95_ms — CI strips it and diffs the rest
// byte-for-byte across runs, and gates on invariant_violations == 0 and
// capacity_restored == true.
func runRestartChaos(clients, ops, restarts, shards int, seed int64, faultRate float64, walDir string, intake, jsonOut bool) error {
	res, err := sim.RunRestartChaos(sim.RestartChaosConfig{
		Clients: clients, Ops: ops, Restarts: restarts, Seed: seed,
		FaultRate: faultRate, Shards: shards, WALDir: walDir, Intake: intake,
	})
	if err != nil {
		return fmt.Errorf("restart chaos: %w", err)
	}
	if jsonOut {
		out, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			return err
		}
		fmt.Println(string(out))
	} else {
		header("RESTART CHAOS", "durable broker killed and WAL-recovered mid-workload")
		fmt.Printf("seed=%d faultrate=%.2f shards=%d ops=%d restarts=%d\n",
			res.Seed, res.FaultRate, res.Shards, res.Ops, res.Restarts)
		fmt.Printf("requested=%d admitted=%d terminated=%d\n", res.Requested, res.Admitted, res.Terminated)
		fmt.Printf("replayed=%d records, snapshots at %v, recovery p95=%.2fms\n",
			res.ReplayedRecords, res.SnapshotSeqs, res.RecoveryP95MS)
		fmt.Printf("reconcile: adopted=%d refunded=%d parked cleared=%d\n",
			res.Adopted, res.Refunded, res.ParkedCleared)
		fmt.Printf("digest matches=%d/%d capacity restored=%v\n",
			res.DigestMatches, res.Restarts, res.CapacityRestored)
		fmt.Printf("invariant checks=%d violations=%d\n", res.Checks, res.InvariantViolations)
	}
	if res.InvariantViolations != 0 {
		return fmt.Errorf("restart chaos found %d invariant violation(s): %v",
			res.InvariantViolations, res.Violations)
	}
	if !res.CapacityRestored {
		return fmt.Errorf("restart chaos: capacity not restored after drain")
	}
	if res.DigestMatches != res.Restarts {
		return fmt.Errorf("restart chaos: %d/%d recoveries matched the pre-kill digest",
			res.DigestMatches, res.Restarts)
	}
	return nil
}

// runCluster drives the multi-broker harness (sim.RunClusterSim): the
// N-broker run, a 1-broker baseline over the SAME workload, the N=1 vs
// N=N outcome-parity comparison, and — for N > 1 — the hand-off crash
// drill (sim.RunHandoffCrash). The JSON form is the shape recorded in
// BENCH_cluster.json (see README.md "Cluster artifact"); CI gates on
// invariant_violations == 0 in both runs, parity == true, and
// handoff.single_owner == true.
func runCluster(brokers, clients, shards int, seed int64, placementStr string, jsonOut bool) error {
	place, err := cluster.ParsePlacement(placementStr)
	if err != nil {
		return err
	}
	scale, err := sim.RunClusterSim(sim.ClusterSimConfig{
		Brokers: brokers, Clients: clients, Seed: seed, Placement: place, Shards: shards,
	})
	if err != nil {
		return fmt.Errorf("cluster run: %w", err)
	}
	baseline, err := sim.RunClusterSim(sim.ClusterSimConfig{
		Brokers: 1, Clients: clients, Seed: seed, Placement: place, Shards: shards,
	})
	if err != nil {
		return fmt.Errorf("single-broker baseline: %w", err)
	}
	parity := scale.OutcomeDigest == baseline.OutcomeDigest

	var handoff *sim.HandoffCrashResult
	if brokers > 1 {
		handoff, err = sim.RunHandoffCrash(sim.HandoffCrashConfig{Brokers: brokers, Seed: seed})
		if err != nil {
			return fmt.Errorf("handoff crash drill: %w", err)
		}
	}

	if jsonOut {
		out, err := json.MarshalIndent(map[string]any{
			"schema":   "bench_cluster/v1",
			"scale":    scale,
			"baseline": baseline,
			"parity":   parity,
			"handoff":  handoff,
		}, "", "  ")
		if err != nil {
			return err
		}
		fmt.Println(string(out))
	} else {
		header("CLUSTER", fmt.Sprintf("%d-broker front tier vs single-broker baseline (placement %s)", brokers, scale.Placement))
		for _, row := range []struct {
			name string
			r    *sim.ClusterSimResult
		}{{"baseline", baseline}, {"cluster", scale}} {
			fmt.Printf("%-9s brokers=%-2d clients=%-7d admitted=%-7d rejected=%-6d errors=%-3d forwarded=%-6d migrations=%d/%d digest=%s\n",
				row.name, row.r.Brokers, row.r.Clients, row.r.Admitted, row.r.Rejected,
				row.r.Errors, row.r.Forwarded, row.r.Migrations, row.r.Migrations+row.r.MigrationFailures,
				row.r.OutcomeDigest)
		}
		for _, s := range scale.PerBroker {
			fmt.Printf("%-9s %-8s final sessions=%-4d load=%.3f\n", "", s.Domain, s.Sessions, s.Load)
		}
		fmt.Printf("outcome parity N=1 vs N=%d: %v\n", brokers, parity)
		if handoff != nil {
			fmt.Printf("handoff drill: %s %s->%s single_owner=%v owner=%s completed=%d aborted=%d resolved=%d\n",
				handoff.MigratedID, handoff.Source, handoff.Target, handoff.SingleOwner,
				handoff.OwnerDomain, handoff.Completed, handoff.Aborted, handoff.HandoffsResolved)
		}
		fmt.Printf("invariant checks=%d violations=%d (baseline %d)\n",
			scale.Checks, scale.InvariantViolations, baseline.InvariantViolations)
	}

	if scale.InvariantViolations != 0 {
		return fmt.Errorf("cluster run found %d invariant violation(s): %v",
			scale.InvariantViolations, scale.Violations)
	}
	if baseline.InvariantViolations != 0 {
		return fmt.Errorf("baseline run found %d invariant violation(s): %v",
			baseline.InvariantViolations, baseline.Violations)
	}
	if !parity {
		return fmt.Errorf("outcome parity broken: N=1 digest %s vs N=%d digest %s",
			baseline.OutcomeDigest, brokers, scale.OutcomeDigest)
	}
	if handoff != nil {
		if handoff.InvariantViolations != 0 {
			return fmt.Errorf("handoff drill found %d invariant violation(s): %v",
				handoff.InvariantViolations, handoff.Violations)
		}
		if !handoff.SingleOwner {
			return fmt.Errorf("handoff drill: %d owner(s) for %s after recovery, want exactly one on %s",
				handoff.Owners, handoff.MigratedID, handoff.Target)
		}
	}
	return nil
}

// runScenarios replays one scenario (or all of them) and gates on the
// reports: any oracle violation, failed scenario assertion, or — in soak
// mode — instability verdict exits non-zero, after the report has been
// emitted so CI always has an artifact. The -json form of `-scenario
// all` is the shape recorded in BENCH_scenarios.json (see README.md
// "Scenario artifact"): an object keyed by scenario name. Only the
// "latency" and "soak" blocks are wall-clock derived; everything else is
// byte-identical per (scenario, seed, shards, ops).
func runScenarios(name string, soak bool, seed int64, ops, shards int, jsonOut bool) error {
	if name == "list" {
		header("SCENARIOS", "workload scenario catalog")
		for _, sc := range sim.Scenarios() {
			fmt.Printf("%-12s %s\n", sc.Name, sc.About)
		}
		return nil
	}
	var list []sim.Scenario
	if name == "all" {
		list = sim.Scenarios()
	} else {
		sc, ok := sim.LookupScenario(name)
		if !ok {
			return fmt.Errorf("unknown scenario %q (try -scenario list)", name)
		}
		list = []sim.Scenario{sc}
	}

	cfg := sim.ScenarioConfig{Seed: seed, Ops: ops, Shards: shards}
	reports := make(map[string]any, len(list))
	var failures []string
	for _, sc := range list {
		var (
			rep    any
			failed bool
			err    error
		)
		if soak {
			var r *sim.SoakReport
			r, err = sim.RunSoak(sc, sim.SoakConfig{ScenarioConfig: cfg})
			rep, failed = r, r != nil && r.Failed()
		} else {
			var r *sim.ScenarioReport
			r, err = sim.RunScenario(sc, cfg)
			rep, failed = r, r != nil && r.Failed()
		}
		if err != nil {
			return fmt.Errorf("scenario %s: %w", sc.Name, err)
		}
		reports[sc.Name] = rep
		if failed {
			failures = append(failures, sc.Name)
		}
	}

	if jsonOut {
		var out []byte
		var err error
		if name == "all" {
			out, err = json.MarshalIndent(reports, "", "  ")
		} else {
			out, err = json.MarshalIndent(reports[list[0].Name], "", "  ")
		}
		if err != nil {
			return err
		}
		fmt.Println(string(out))
	} else {
		mode := "scenario"
		if soak {
			mode = "soak"
		}
		header("SCENARIO", fmt.Sprintf("workload %s replay (seed %d, ops %d, shards %d)", mode, seed, ops, shards))
		for _, sc := range list {
			switch r := reports[sc.Name].(type) {
			case *sim.ScenarioReport:
				printScenarioSummary(r)
			case *sim.SoakReport:
				printScenarioSummary(&r.ScenarioReport)
				s := r.Soak
				fmt.Printf("%-12s soak: windows=%d goroutines=%d->%d heap=%d->%d bytes p99 %.3f->%.3fms stable=%v\n",
					"", len(s.Windows), s.GoroutinesStart, s.GoroutinesMax,
					s.HeapBaseBytes, s.HeapMaxBytes, s.P99FirstHalfMS, s.P99LastHalfMS, s.Stable)
				for _, p := range s.Problems {
					fmt.Printf("%-12s   problem: %s\n", "", p)
				}
			}
		}
	}
	if len(failures) > 0 {
		return fmt.Errorf("scenario(s) failed their gates: %s", strings.Join(failures, ", "))
	}
	return nil
}

// runShadow is the policy lab's CLI: it evaluates a registered candidate
// policy over the chosen scenarios (shadow.Run replays each one three
// times — active, active+shadow, counterfactual) and emits the
// bench_shadow/v1 report. The report contains no wall-clock fields, so
// -json output is byte-identical per (candidate, seed, ops, shards). A
// non-ok verdict exits non-zero AFTER emitting so CI always has the
// report to gate on.
func runShadow(name, candidate string, seed int64, ops, shards int, jsonOut bool) error {
	var list []sim.Scenario
	if name == "all" {
		list = sim.Scenarios()
	} else {
		sc, ok := sim.LookupScenario(name)
		if !ok {
			return fmt.Errorf("unknown scenario %q (try -scenario list)", name)
		}
		list = []sim.Scenario{sc}
	}
	rep, err := shadow.Run(list, shadow.Config{Candidate: candidate, Seed: seed, Ops: ops, Shards: shards})
	if err != nil {
		return err
	}
	if jsonOut {
		out, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		fmt.Println(string(out))
	} else {
		header("SHADOW", fmt.Sprintf("policy lab: candidate %q vs active \"paper\" (seed %d, ops %d, shards %d)", candidate, seed, ops, shards))
		for _, sc := range list {
			sr := rep.Scenarios[sc.Name]
			fmt.Printf("%-12s evals=%-6d diverged partition=%d optimize=%d ladder=%d placement=%d shadow_clean=%v\n",
				sc.Name, sr.Evaluations,
				sr.Divergence["partition"], sr.Divergence["optimize"], sr.Divergence["ladder"], sr.Divergence["placement"],
				sr.ShadowClean)
			fmt.Printf("%-12s   counterfactual: admit %.3f->%.3f (%+.3f) revenue %.2f->%.2f (%+.2f) util %.3f->%.3f (%+.3f) verdict=%s\n",
				"", sr.AdmitRate.Active, sr.AdmitRate.Candidate, sr.AdmitRate.Delta,
				sr.Revenue.Active, sr.Revenue.Candidate, sr.Revenue.Delta,
				sr.Utilization.Active, sr.Utilization.Candidate, sr.Utilization.Delta, sr.Verdict)
			for _, v := range sr.Violations {
				fmt.Printf("%-12s   violation: %s\n", "", v)
			}
		}
	}
	if rep.Failed() {
		return fmt.Errorf("shadow evaluation verdict %q (candidate %s)", rep.Verdict, candidate)
	}
	return nil
}

func printScenarioSummary(r *sim.ScenarioReport) {
	fmt.Printf("%-12s arrivals=%-6d ops=%-7d admitted=%d/%d (%.1f%%) expired=%d reneg=%d/%d degraded=%d restored=%d revenue=%.2f checks=%d violations=%d verify_errors=%d\n",
		r.Scenario, r.Arrivals, r.Ops, r.Admitted, r.Requested, 100*r.AdmitRate,
		r.ExpiredOffers, r.Renegotiations-r.RenegFailures, r.Renegotiations,
		r.Degradations, r.Restorations, r.Revenue, r.Checks, r.InvariantViolations, len(r.VerifyErrors))
	for _, v := range r.Violations {
		fmt.Printf("%-12s   violation: %s\n", "", v)
	}
	for _, e := range r.VerifyErrors {
		fmt.Printf("%-12s   verify: %s\n", "", e)
	}
}

func header(id, title string) {
	fmt.Printf("\n=== %s — %s ===\n\n", id, title)
}

func runE56(_ int64, verbose bool) error {
	header("E56", "§5.6 worked example: composite SLA, failure at t2, recovery at t3")
	res, err := sim.RunE56()
	if err != nil {
		return err
	}
	fmt.Print(res.Table())
	fmt.Printf("\nnetwork sub-SLAs whole until expiry: %v\n", res.NetworkOK)
	fmt.Printf("best-effort preemptions during failure: %d\n", res.Preemptions)
	if verbose {
		fmt.Println("\nbroker activity log:")
		for _, line := range res.Log {
			fmt.Println("  " + line)
		}
	}
	return nil
}

func runC1(seed int64, _ bool) error {
	header("C1", "utilization & admission: adaptive borrowing vs rigid partition")
	rows, err := sim.RunC1(seed, nil)
	if err != nil {
		return err
	}
	fmt.Print(sim.FormatC1(rows))
	return nil
}

func runC2(seed int64, _ bool) error {
	header("C2", "guarantee survival under failures: adaptive reserve vs no reserve")
	rows, err := sim.RunC2(seed, nil)
	if err != nil {
		return err
	}
	fmt.Print(sim.FormatC2(rows))
	return nil
}

func runC3(seed int64, _ bool) error {
	header("C3", "best-effort minimum capacity under guaranteed saturation")
	rows, err := sim.RunC3(seed)
	if err != nil {
		return err
	}
	fmt.Print(sim.FormatC3(rows))
	return nil
}

func runC4(seed int64, _ bool) error {
	header("C4", "optimizer profit: greedy vs exact vs first-fit vs minimum")
	rows, err := sim.RunC4(seed, nil)
	if err != nil {
		return err
	}
	fmt.Print(sim.FormatC4(rows))
	return nil
}

func runC5(seed int64, _ bool) error {
	header("C5", "scenario-1 compensation: admissions vs willingness to degrade")
	rows, err := sim.RunC5(seed, nil)
	if err != nil {
		return err
	}
	fmt.Print(sim.FormatC5(rows))
	return nil
}

func runT1(_ int64, _ bool) error {
	header("T1", "Table 1 — SLA resource portion relayed to resource managers")
	spec := gqosm.NewSpec(
		gqosm.Exact(gqosm.CPU, 4),
		gqosm.Exact(gqosm.MemoryMB, 64),
		gqosm.Exact(gqosm.BandwidthMbps, 10),
	)
	spec.SourceIP = "192.200.168.33"
	spec.DestIP = "135.200.50.101"
	spec.MaxPacketLossPct = 10
	doc := sla.EncodeServiceSpecific(spec, resource.Capacity{CPU: 4, MemoryMB: 64, BandwidthMbps: 10})
	out, err := sla.MarshalIndent(doc)
	if err != nil {
		return err
	}
	fmt.Println(string(out))
	return nil
}

func runT2(_ int64, _ bool) error {
	header("T2", "Table 2 — GARA reservation primitives, lifecycle transcript")
	stack, err := newPaperStack()
	if err != nil {
		return err
	}
	defer stack.Close()
	now := stack.Clock.Now()
	req := `&(reservation-type="compute")(count=10)(memory=2048)(disk=15)`
	handle, err := stack.GARA.Create(req, now, now.Add(5*time.Hour), "demo")
	if err != nil {
		return err
	}
	fmt.Printf("globus_gara_reservation_create(%q)\n  -> handle %s\n", req, handle)
	if err := stack.GARA.Bind(handle, gara.BindParam{PID: 4242}); err != nil {
		return err
	}
	fmt.Printf("globus_gara_reservation_bind(%s, pid=4242)\n  -> claimed\n", handle)
	if err := stack.GARA.Unbind(handle); err != nil {
		return err
	}
	fmt.Printf("globus_gara_reservation_unbind(%s)\n  -> reserved\n", handle)
	if err := stack.GARA.Cancel(handle); err != nil {
		return err
	}
	fmt.Printf("globus_gara_reservation_cancel(%s)\n  -> released\n", handle)
	return nil
}

func runT3(_ int64, _ bool) error {
	header("T3", "Table 3 — SLA conformance test reply (QoS_Levels)")
	res, err := withLifecycleSession(func(stack *gqosm.Stack, id gqosm.SLAID) (any, error) {
		rep, err := stack.Broker.Verify(id)
		if err != nil {
			return nil, err
		}
		return sla.MarshalIndent(rep.XML)
	})
	if err != nil {
		return err
	}
	fmt.Println(string(res.([]byte)))
	return nil
}

func runT4(_ int64, _ bool) error {
	header("T4", "Table 4 — negotiated SLA with adaptation options")
	stack, err := newPaperStack()
	if err != nil {
		return err
	}
	defer stack.Close()
	now := stack.Clock.Now()
	offer, err := stack.Broker.RequestService(gqosm.Request{
		Service: "simulation",
		Client:  "controlled-client",
		Class:   gqosm.ClassControlledLoad,
		Spec: gqosm.NewSpec(
			gqosm.Range(gqosm.CPU, 10, 15),
			gqosm.Range(gqosm.MemoryMB, 48, 64),
		),
		Start:             now,
		End:               now.Add(5 * time.Hour),
		AcceptDegradation: true,
		PromotionOptIn:    true,
	})
	if err != nil {
		return err
	}
	out, err := sla.MarshalIndent(sla.EncodeDocument(offer.SLA))
	if err != nil {
		return err
	}
	fmt.Println(string(out))
	return nil
}

func runF4(_ int64, _ bool) error {
	header("F4", "Fig. 4 — the five QoS management phases in one session")
	_, err := withLifecycleSession(func(stack *gqosm.Stack, id gqosm.SLAID) (any, error) {
		// Degrade by failing capacity, then recover (phases 3–5).
		stack.Broker.NotifyFailure(gqosm.Nodes(3))
		if _, err := stack.Broker.Verify(id); err != nil {
			return nil, err
		}
		stack.Broker.NotifyFailure(gqosm.Capacity{})
		if err := stack.Broker.Terminate(id, "session complete"); err != nil {
			return nil, err
		}
		for _, e := range stack.Broker.Events() {
			fmt.Println("  " + e.String())
		}
		return nil, nil
	})
	return err
}

func runF6(_ int64, _ bool) error {
	header("F6", "Figs. 6–7 — broker activity and client transcript")
	stack, err := newPaperStack()
	if err != nil {
		return err
	}
	defer stack.Close()
	now := stack.Clock.Now()
	offer, err := stack.Broker.RequestService(gqosm.Request{
		Service: "simulation", Client: "fig7-client", Class: gqosm.ClassGuaranteed,
		Spec:  gqosm.NewSpec(gqosm.Exact(gqosm.CPU, 10), gqosm.Exact(gqosm.MemoryMB, 2048), gqosm.Exact(gqosm.DiskGB, 15)),
		Start: now, End: now.Add(5 * time.Hour),
	})
	if err != nil {
		return err
	}
	fmt.Printf("client> service_request (10 CPU, 2048 MB, 15 GB)\n")
	fmt.Printf("aqos > service_offer: SLA %s at price %.2f\n", offer.SLA.ID, offer.Price)
	if err := stack.Broker.Accept(offer.SLA.ID); err != nil {
		return err
	}
	fmt.Printf("client> accept %s\n", offer.SLA.ID)
	if _, err := stack.Broker.Invoke(offer.SLA.ID); err != nil {
		return err
	}
	rep, err := stack.Broker.Verify(offer.SLA.ID)
	if err != nil {
		return err
	}
	fmt.Printf("client> verify %s\naqos > conforms=%v\n\nbroker activity log:\n", offer.SLA.ID, rep.Conforms)
	for _, e := range stack.Broker.Events() {
		fmt.Println("  " + e.String())
	}
	return nil
}

// newPaperStack builds the §5.6-sized stack on a manual clock.
func newPaperStack() (*gqosm.Stack, error) {
	return gqosm.NewStack(gqosm.StackConfig{
		Domain: "site-a",
		Clock:  gqosm.NewManualClock(sim.Epoch),
		Plan: gqosm.CapacityPlan{
			Guaranteed: gqosm.Capacity{CPU: 15, MemoryMB: 6144, DiskGB: 120},
			Adaptive:   gqosm.Capacity{CPU: 6, MemoryMB: 2048, DiskGB: 40},
			BestEffort: gqosm.Capacity{CPU: 5, MemoryMB: 2048, DiskGB: 40},
		},
		ConfirmWindow: time.Hour,
	})
}

// withLifecycleSession establishes and invokes a standard guaranteed
// session, then hands it to f.
func withLifecycleSession(f func(*gqosm.Stack, gqosm.SLAID) (any, error)) (any, error) {
	stack, err := newPaperStack()
	if err != nil {
		return nil, err
	}
	defer stack.Close()
	now := stack.Clock.Now()
	offer, err := stack.Broker.RequestService(gqosm.Request{
		Service: "simulation", Client: "lifecycle", Class: gqosm.ClassGuaranteed,
		Spec:  gqosm.NewSpec(gqosm.Exact(gqosm.CPU, 10), gqosm.Exact(gqosm.MemoryMB, 2048), gqosm.Exact(gqosm.DiskGB, 15)),
		Start: now, End: now.Add(5 * time.Hour),
	})
	if err != nil {
		return nil, err
	}
	if err := stack.Broker.Accept(offer.SLA.ID); err != nil {
		return nil, err
	}
	if _, err := stack.Broker.Invoke(offer.SLA.ID); err != nil {
		return nil, err
	}
	return f(stack, offer.SLA.ID)
}
