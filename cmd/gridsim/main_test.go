package main

import (
	"encoding/json"
	"io"
	"os"
	"strings"
	"testing"

	"gqosm/internal/sim"
)

// runCapture runs the CLI entry point and returns its stdout.
func runCapture(t *testing.T, args ...string) (string, error) {
	t.Helper()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	orig := os.Stdout
	os.Stdout = w
	runErr := run(args)
	os.Stdout = orig
	w.Close()
	out, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	return string(out), runErr
}

func TestRunArgumentErrors(t *testing.T) {
	for name, args := range map[string][]string{
		"unknown-experiment": {"-experiment", "Z9"},
		"bad-flag":           {"-no-such-flag"},
		"bad-seed":           {"-seed", "not-a-number"},
	} {
		t.Run(name, func(t *testing.T) {
			if _, err := runCapture(t, args...); err == nil {
				t.Fatalf("args %v: expected error", args)
			}
		})
	}
}

func TestExperimentT1PrintsSLADocument(t *testing.T) {
	out, err := runCapture(t, "-experiment", "T1")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Table 1", "192.200.168.33", "<"} {
		if !strings.Contains(out, want) {
			t.Fatalf("T1 output missing %q:\n%s", want, out)
		}
	}
}

func TestExperimentLowercaseID(t *testing.T) {
	out, err := runCapture(t, "-experiment", "t2")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "globus_gara_reservation_create") {
		t.Fatalf("t2 output:\n%s", out)
	}
}

func TestParallelModeTable(t *testing.T) {
	out, err := runCapture(t, "-parallel", "-clients", "2", "-ops", "200", "-phases", "2")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"serial", "parallel", "ops/s", "no capacity lost",
		"admission latency p50=", "metrics snapshot:",
		"gqosm_broker_admission_seconds_count",
		`gqosm_broker_lifecycle_total{event="accept"}`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("parallel output missing %q:\n%s", want, out)
		}
	}
}

func TestParallelModeJSON(t *testing.T) {
	out, err := runCapture(t, "-parallel", "-clients", "2", "-ops", "200", "-phases", "2", "-json")
	if err != nil {
		t.Fatal(err)
	}
	var report map[string]*sim.ParallelResult
	if err := json.Unmarshal([]byte(out), &report); err != nil {
		t.Fatalf("not JSON: %v\n%s", err, out)
	}
	for _, key := range []string{"serial", "parallel"} {
		r := report[key]
		if r == nil {
			t.Fatalf("missing %q in %s", key, out)
		}
		if r.Ops == 0 || r.Checks == 0 || r.OpsPerSec <= 0 {
			t.Fatalf("%s result degenerate: %+v", key, r)
		}
	}
	if report["parallel"].Clients != 2 || report["serial"].Clients != 1 {
		t.Fatalf("client counts wrong: %+v", report)
	}

	// The schema must carry both the raw nanosecond Elapsed and the
	// explicit-unit fields consumers should prefer.
	var raw map[string]map[string]float64
	if err := json.Unmarshal([]byte(out), &raw); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"serial", "parallel"} {
		for _, field := range []string{"elapsed_ms", "admit_p50_ms", "admit_p95_ms", "admit_p99_ms"} {
			if v := raw[key][field]; v <= 0 {
				t.Errorf("%s.%s = %v, want > 0", key, field, v)
			}
		}
		if ms, ns := raw[key]["elapsed_ms"], raw[key]["Elapsed"]; ms < ns/1e6*0.999 || ms > ns/1e6*1.001 {
			t.Errorf("%s: elapsed_ms %v inconsistent with Elapsed %v ns", key, ms, ns)
		}
	}
}

func TestScenarioList(t *testing.T) {
	out, err := runCapture(t, "-scenario", "list")
	if err != nil {
		t.Fatal(err)
	}
	for _, sc := range sim.Scenarios() {
		if !strings.Contains(out, sc.Name) {
			t.Fatalf("catalog missing %q:\n%s", sc.Name, out)
		}
	}
}

func TestScenarioModeJSON(t *testing.T) {
	out, err := runCapture(t, "-scenario", "diurnal", "-seed", "1", "-ops", "2000", "-json")
	if err != nil {
		t.Fatal(err)
	}
	var r sim.ScenarioReport
	if err := json.Unmarshal([]byte(out), &r); err != nil {
		t.Fatalf("not JSON: %v\n%s", err, out)
	}
	if r.Scenario != "diurnal" || r.Seed != 1 || r.Ops == 0 || r.Checks == 0 {
		t.Fatalf("degenerate report: %+v", r)
	}
	if r.InvariantViolations != 0 {
		t.Fatalf("violations: %v", r.Violations)
	}
}

func TestScenarioAllJSONKeyedByName(t *testing.T) {
	out, err := runCapture(t, "-scenario", "all", "-seed", "1", "-ops", "2000", "-json")
	if err != nil {
		t.Fatal(err)
	}
	var reports map[string]*sim.ScenarioReport
	if err := json.Unmarshal([]byte(out), &reports); err != nil {
		t.Fatalf("not JSON: %v\n%s", err, out)
	}
	for _, sc := range sim.Scenarios() {
		r := reports[sc.Name]
		if r == nil {
			t.Fatalf("missing %q in report map", sc.Name)
		}
		if r.Requested == 0 || r.Checks == 0 {
			t.Fatalf("%s degenerate: %+v", sc.Name, r)
		}
	}
}

func TestScenarioSoakJSON(t *testing.T) {
	out, err := runCapture(t, "-scenario", "lease-churn", "-soak", "-seed", "1", "-ops", "8000", "-json")
	if err != nil {
		t.Fatal(err)
	}
	var r sim.SoakReport
	if err := json.Unmarshal([]byte(out), &r); err != nil {
		t.Fatalf("not JSON: %v\n%s", err, out)
	}
	if r.Soak == nil || len(r.Soak.Windows) == 0 {
		t.Fatalf("soak block missing: %s", out)
	}
	if !r.Soak.Stable {
		t.Fatalf("unstable: %+v", r.Soak.Problems)
	}
}

func TestScenarioArgumentErrors(t *testing.T) {
	if _, err := runCapture(t, "-scenario", "nosuch"); err == nil {
		t.Fatal("unknown scenario accepted")
	}
	if _, err := runCapture(t, "-soak"); err == nil {
		t.Fatal("-soak without -scenario accepted")
	}
}

// TestClusterFlagJSON runs a small -cluster workload end to end and
// checks the BENCH_cluster.json shape plus its two gates: N=1 parity
// and the hand-off drill's single owner.
func TestClusterFlagJSON(t *testing.T) {
	out, err := runCapture(t, "-cluster", "2", "-clients", "600", "-seed", "5", "-json")
	if err != nil {
		t.Fatalf("-cluster run: %v\n%s", err, out)
	}
	var rep struct {
		Schema  string                `json:"schema"`
		Scale   *sim.ClusterSimResult `json:"scale"`
		Parity  bool                  `json:"parity"`
		Handoff struct {
			SingleOwner bool `json:"single_owner"`
		} `json:"handoff"`
	}
	if err := json.Unmarshal([]byte(out), &rep); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, out)
	}
	if rep.Schema != "bench_cluster/v1" {
		t.Errorf("schema = %q", rep.Schema)
	}
	if rep.Scale == nil || rep.Scale.Brokers != 2 || rep.Scale.Clients != 600 {
		t.Errorf("scale block = %+v", rep.Scale)
	}
	if !rep.Parity {
		t.Error("parity gate failed")
	}
	if !rep.Handoff.SingleOwner {
		t.Error("handoff drill did not end with a single owner")
	}
}

func TestClusterFlagArgumentErrors(t *testing.T) {
	if _, err := runCapture(t, "-cluster", "2", "-placement", "round-robin"); err == nil {
		t.Fatal("bad -placement accepted")
	}
}
