// Command aqosd runs an AQoS broker as a SOAP-over-HTTP server — the
// server half of the paper's Fig. 5 testbed (broker + registry behind one
// endpoint). The same listener also serves the compact JSON API under
// /api/v1/ for high-volume clients (see internal/httpapi). The capacity
// partition follows Algorithm 1's administrator inputs: either explicit
// G/A/B node counts or a total with failure-rate and best-effort
// fractions.
//
// Usage:
//
//	aqosd -listen :8080 -guaranteed 15 -adaptive 6 -besteffort 5
//	aqosd -listen :8080 -total 26 -failure-rate 0.23 -besteffort-frac 0.19
//	aqosd -listen :8080 -total 26 -wal-dir /var/lib/aqosd/wal   # durable: restart recovers sessions
//	aqosd -listen :8080 -total 26 -intake                       # group-commit admission batching
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"strings"
	"time"

	"gqosm"
	"gqosm/internal/core"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "aqosd:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		listen     = flag.String("listen", ":8080", "HTTP listen address")
		domain     = flag.String("domain", "site-a", "administrative domain name")
		guaranteed = flag.Float64("guaranteed", 0, "guaranteed-pool CPU nodes (C_G)")
		adaptive   = flag.Float64("adaptive", 0, "adaptive-reserve CPU nodes (C_A)")
		bestEffort = flag.Float64("besteffort", 0, "best-effort CPU nodes (C_B)")
		total      = flag.Float64("total", 0, "total CPU nodes (alternative to explicit pools)")
		failRate   = flag.Float64("failure-rate", 0.2, "expected failure/congestion rate sizing C_A (with -total)")
		beFrac     = flag.Float64("besteffort-frac", 0.2, "best-effort fraction (with -total)")
		memory     = flag.Float64("memory", 10240, "total memory MB (split pro rata)")
		disk       = flag.Float64("disk", 200, "total disk GB (split pro rata)")
		confirm    = flag.Duration("confirm-window", 2*time.Minute, "offer confirmation window")
		monitor    = flag.Duration("monitor-interval", time.Minute, "periodic QoS-management interval (0 disables)")
		service    = flag.String("service", "simulation", "name of the advertised service")
		rmAttempts = flag.Int("rm-attempts", 3, "attempts per RM-facing call (1 disables retries)")
		rmTimeout  = flag.Duration("rm-timeout", 5*time.Second, "per-attempt timeout on RM-facing calls (0 disables)")
		rmBackoff  = flag.Duration("rm-backoff", 100*time.Millisecond, "base backoff between RM retry attempts")
		faultRate  = flag.Float64("fault-rate", 0, "chaos-test this daemon: per-site fault injection probability (0 disables)")
		faultSeed  = flag.Int64("fault-seed", 1, "fault injector PRNG seed (with -fault-rate)")
		walDir     = flag.String("wal-dir", "", "durability directory: lifecycle WAL + snapshots; a restart with the same directory recovers the broker's state")
		intake     = flag.Bool("intake", false, "enable the group-commit admission intake: concurrent JSON-API admissions share one allocator pass and one WAL fsync per batch")
		intakeWait = flag.Duration("intake-flush", 0, "with -intake: idle flush interval bounding how long a queued admission waits for company (0 = flush on demand)")
		policy     = flag.String("policy", "", "adaptation policy (default \"paper\"; see qosctl policies for the registry)")
		shadowPol  = flag.String("shadow-policy", "", "consult this candidate policy in shadow at every decision point, counting divergence without affecting live decisions")
		peers      peerFlags
	)
	flag.Var(&peers, "peer", "neighboring AQoS endpoint as name=url (repeatable); requests this domain cannot serve are forwarded")
	flag.Parse()

	var plan gqosm.CapacityPlan
	switch {
	case *total > 0:
		p, err := gqosm.PlanForFailureRate(gqosm.Capacity{
			CPU: *total, MemoryMB: *memory, DiskGB: *disk,
		}, *failRate, *beFrac)
		if err != nil {
			return err
		}
		plan = p
	case *guaranteed > 0:
		sum := *guaranteed + *adaptive + *bestEffort
		plan = gqosm.CapacityPlan{
			Guaranteed: gqosm.Capacity{CPU: *guaranteed, MemoryMB: *memory * *guaranteed / sum, DiskGB: *disk * *guaranteed / sum},
			Adaptive:   gqosm.Capacity{CPU: *adaptive, MemoryMB: *memory * *adaptive / sum, DiskGB: *disk * *adaptive / sum},
			BestEffort: gqosm.Capacity{CPU: *bestEffort, MemoryMB: *memory * *bestEffort / sum, DiskGB: *disk * *bestEffort / sum},
		}
	default:
		return fmt.Errorf("specify either -total or -guaranteed/-adaptive/-besteffort")
	}

	var inj *gqosm.FaultInjector
	if *faultRate > 0 {
		inj = gqosm.NewFaultInjector(*faultSeed, nil)
		inj.SetDefault(gqosm.FaultPlan{Rate: *faultRate})
		log.Printf("aqosd: CHAOS MODE: injecting faults at rate %g (seed %d)", *faultRate, *faultSeed)
	}
	stack, err := gqosm.NewStack(gqosm.StackConfig{
		Domain:          *domain,
		Plan:            plan,
		ConfirmWindow:   *confirm,
		MonitorInterval: *monitor,
		Faults:          inj,
		RMPolicy: gqosm.RetryPolicy{
			Attempts: *rmAttempts,
			Timeout:  *rmTimeout,
			Backoff:  *rmBackoff,
			Seed:     *faultSeed,
		},
		WALDir:       *walDir,
		Intake:       gqosm.IntakeConfig{Enabled: *intake, FlushEvery: *intakeWait},
		Policy:       *policy,
		ShadowPolicy: *shadowPol,
	})
	if err != nil {
		return err
	}
	if r := stack.Recovery; r != nil {
		log.Printf("aqosd: recovered %d session(s) from %s (replayed %d record(s), adopted %d, refunded %d reservation(s))",
			r.Sessions, *walDir, r.ReplayedRecords, r.Adopted, r.Refunded)
	}
	defer stack.Close()
	_ = service // the default stack advertisement covers the service name

	handler := newHandler(stack, peers)

	mode := "direct"
	if *intake {
		mode = "group-commit intake"
	}
	if *shadowPol != "" {
		log.Printf("aqosd: policy %q active, %q consulted in shadow",
			stack.Broker.PolicyName(), stack.Broker.ShadowPolicyName())
	}
	log.Printf("aqosd: domain %q serving SOAP + JSON (/api/v1/) on %s (plan G=%v A=%v B=%v, admission %s)",
		*domain, *listen, plan.Guaranteed, plan.Adaptive, plan.BestEffort, mode)
	return http.ListenAndServe(*listen, handler)
}

// newHandler assembles the daemon's full HTTP surface: the SOAP endpoints
// with /metrics from Stack.Mount, the pprof profiler family, federation
// forwarding when peers are configured, and the /log and /status
// inspection pages. Split from run so tests can drive it over httptest.
func newHandler(stack *gqosm.Stack, peers peerFlags) http.Handler {
	mux := stack.Mount()
	if len(peers) > 0 {
		fed := core.NewFederation(stack.Broker)
		for _, p := range peers {
			if err := fed.AddPeer(&core.PeerClient{Domain: p.name, Client: core.NewClient(p.url)}); err != nil {
				log.Printf("aqosd: skipping peer %q at %s: %v", p.name, p.url, err)
				continue
			}
			log.Printf("aqosd: neighboring AQoS %q at %s", p.name, p.url)
		}
		fed.Mount(mux)
	}
	mux.HandleHTTP("/debug/pprof/", http.HandlerFunc(pprof.Index))
	mux.HandleHTTP("/debug/pprof/cmdline", http.HandlerFunc(pprof.Cmdline))
	mux.HandleHTTP("/debug/pprof/profile", http.HandlerFunc(pprof.Profile))
	mux.HandleHTTP("/debug/pprof/symbol", http.HandlerFunc(pprof.Symbol))
	mux.HandleHTTP("/debug/pprof/trace", http.HandlerFunc(pprof.Trace))

	httpMux := http.NewServeMux()
	httpMux.Handle("/", mux)
	httpMux.HandleFunc("/log", func(w http.ResponseWriter, _ *http.Request) {
		for _, e := range stack.Broker.Events() {
			fmt.Fprintln(w, e)
		}
	})
	httpMux.HandleFunc("/status", func(w http.ResponseWriter, _ *http.Request) {
		for _, u := range stack.Broker.Allocator().Snapshot() {
			fmt.Fprintf(w, "pool %s: capacity=%v guaranteed=%v best-effort=%v free=%v offline=%v\n",
				u.Pool, u.Capacity, u.Guaranteed, u.BestEffort, u.Free(), u.Offline)
		}
	})
	return httpMux
}

// peerFlags collects repeated -peer name=url flags.
type peerFlags []struct{ name, url string }

func (p *peerFlags) String() string {
	var parts []string
	for _, e := range *p {
		parts = append(parts, e.name+"="+e.url)
	}
	return strings.Join(parts, ",")
}

func (p *peerFlags) Set(v string) error {
	name, url, ok := strings.Cut(v, "=")
	if !ok || name == "" || url == "" {
		return fmt.Errorf("peer must be name=url, got %q", v)
	}
	*p = append(*p, struct{ name, url string }{name, url})
	return nil
}
