package main

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"gqosm"
	"gqosm/internal/core"
	"gqosm/internal/sla"
)

// startDaemon serves the daemon's full HTTP surface (SOAP + /metrics +
// pprof + inspection pages) over httptest, exactly as run() would mount
// it on a real listener.
func startDaemon(t *testing.T) (*gqosm.Stack, string) {
	t.Helper()
	stack, err := gqosm.NewStack(gqosm.StackConfig{
		Domain: "site-a",
		Plan: gqosm.CapacityPlan{
			Guaranteed: gqosm.Capacity{CPU: 15, MemoryMB: 6144, DiskGB: 120},
			Adaptive:   gqosm.Capacity{CPU: 6, MemoryMB: 2048, DiskGB: 40},
			BestEffort: gqosm.Capacity{CPU: 5, MemoryMB: 2048, DiskGB: 40},
		},
		ConfirmWindow: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(stack.Close)
	srv := httptest.NewServer(newHandler(stack, nil))
	t.Cleanup(srv.Close)
	return stack, srv.URL
}

// scrape fetches url and returns the body.
func scrape(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s = %d", url, resp.StatusCode)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// metricValue extracts the sample value of the exposition line that
// starts exactly with series (name plus rendered labels), or -1.
func metricValue(t *testing.T, text, series string) float64 {
	t.Helper()
	for _, line := range strings.Split(text, "\n") {
		if !strings.HasPrefix(line, series+" ") {
			continue
		}
		v, err := strconv.ParseFloat(strings.Fields(line)[1], 64)
		if err != nil {
			t.Fatalf("bad sample line %q: %v", line, err)
		}
		return v
	}
	return -1
}

// TestMetricsEndToEnd drives one full SLA lifecycle over SOAP and
// asserts the /metrics exposition reflects it: the admission histogram
// observed the request, the lifecycle counters advanced by exactly the
// performed transitions, and the partition utilization gauges moved.
func TestMetricsEndToEnd(t *testing.T) {
	_, url := startDaemon(t)
	client := core.NewClient(url + "/")

	before := scrape(t, url+"/metrics")
	if !strings.Contains(before, "# TYPE gqosm_broker_admission_seconds histogram") {
		t.Fatalf("exposition lacks admission histogram type line:\n%s", before)
	}
	if got := metricValue(t, before, `gqosm_partition_utilization{pool="guaranteed",dim="cpu"}`); got != 0 {
		t.Fatalf("guaranteed cpu utilization before = %v, want 0", got)
	}

	now := time.Now()
	offer, err := client.RequestService(core.Request{
		Service: "simulation",
		Client:  "e2e",
		Class:   sla.ClassGuaranteed,
		Spec:    gqosm.NewSpec(gqosm.Exact(gqosm.CPU, 5)),
		Start:   now,
		End:     now.Add(time.Hour),
	})
	if err != nil {
		t.Fatal(err)
	}
	id := sla.ID(offer.SLA.SLAID)
	for _, action := range []string{"accept", "invoke"} {
		if _, err := client.Act(id, action, ""); err != nil {
			t.Fatalf("%s: %v", action, err)
		}
	}

	mid := scrape(t, url+"/metrics")
	if got := metricValue(t, mid, "gqosm_broker_admission_seconds_count"); got < 1 {
		t.Errorf("admission histogram count = %v, want >= 1", got)
	}
	for _, series := range []string{
		`gqosm_broker_lifecycle_total{event="request"}`,
		`gqosm_broker_lifecycle_total{event="accept"}`,
	} {
		if got := metricValue(t, mid, series); got != 1 {
			t.Errorf("%s = %v, want 1", series, got)
		}
	}
	util := metricValue(t, mid, `gqosm_partition_utilization{pool="guaranteed",dim="cpu"}`)
	if want := 5.0 / 15.0; util < want-0.01 || util > want+0.01 {
		t.Errorf("guaranteed cpu utilization = %v, want ~%v", util, want)
	}
	if got := metricValue(t, mid, `gqosm_broker_sessions{state="active"}`); got != 1 {
		t.Errorf("active sessions gauge = %v, want 1", got)
	}

	if _, err := client.Act(id, "terminate", "e2e done"); err != nil {
		t.Fatal(err)
	}
	after := scrape(t, url+"/metrics")
	if got := metricValue(t, after, `gqosm_broker_lifecycle_total{event="terminate"}`); got != 1 {
		t.Errorf("terminate counter = %v, want 1", got)
	}
	if got := metricValue(t, after, `gqosm_partition_utilization{pool="guaranteed",dim="cpu"}`); got != 0 {
		t.Errorf("guaranteed cpu utilization after teardown = %v, want 0", got)
	}
	if got := metricValue(t, after, "gqosm_broker_teardown_seconds_count"); got < 1 {
		t.Errorf("teardown histogram count = %v, want >= 1", got)
	}
}

// TestProfilerMounted confirms the pprof family answers next to the SOAP
// endpoints.
func TestProfilerMounted(t *testing.T) {
	_, url := startDaemon(t)
	if body := scrape(t, url+"/debug/pprof/cmdline"); body == "" {
		t.Error("empty pprof cmdline response")
	}
	if body := scrape(t, url+"/debug/pprof/"); !strings.Contains(body, "goroutine") {
		t.Errorf("pprof index lacks goroutine profile: %q", body)
	}
}
