package main

import (
	"io"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	"gqosm"
	"gqosm/internal/sla"
)

// startBroker serves a full in-process AQoS stack over SOAP/HTTP. The
// stack runs on the real clock because qosctl stamps requests with
// time.Now().
func startBroker(t *testing.T) (*gqosm.Stack, string) {
	t.Helper()
	stack, err := gqosm.NewStack(gqosm.StackConfig{
		Domain: "site-a",
		Plan: gqosm.CapacityPlan{
			Guaranteed: gqosm.Capacity{CPU: 15, MemoryMB: 6144, DiskGB: 120},
			Adaptive:   gqosm.Capacity{CPU: 6, MemoryMB: 2048, DiskGB: 40},
			BestEffort: gqosm.Capacity{CPU: 5, MemoryMB: 2048, DiskGB: 40},
		},
		ConfirmWindow: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(stack.Close)
	srv := httptest.NewServer(stack.Mount())
	t.Cleanup(srv.Close)
	return stack, srv.URL
}

// runCapture runs the CLI entry point and returns its stdout.
func runCapture(t *testing.T, args ...string) (string, error) {
	t.Helper()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	orig := os.Stdout
	os.Stdout = w
	runErr := run(args)
	os.Stdout = orig
	w.Close()
	out, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	return string(out), runErr
}

func TestRunArgumentErrors(t *testing.T) {
	for name, args := range map[string][]string{
		"no-subcommand":      {},
		"unknown-subcommand": {"defragment"},
		"accept-without-sla": {"accept"},
		"verify-without-sla": {"verify"},
		"reneg-without-sla":  {"renegotiate", "-cpu", "4"},
		"request-bad-class":  {"request", "-class", "platinum", "-cpu", "2"},
		"request-bad-flag":   {"request", "-no-such-flag"},
		"terminate-bad-flag": {"terminate", "-sla"},
		"global-bad-flag":    {"-no-such-global", "request"},
	} {
		t.Run(name, func(t *testing.T) {
			if _, err := runCapture(t, args...); err == nil {
				t.Fatalf("args %v: expected error", args)
			}
		})
	}
}

// latestSLA returns the most recently proposed/established SLA ID.
func latestSLA(t *testing.T, stack *gqosm.Stack) string {
	t.Helper()
	docs := stack.Broker.Sessions(nil)
	if len(docs) == 0 {
		t.Fatal("no sessions on the broker")
	}
	return string(docs[len(docs)-1].ID)
}

func TestRequestLifecycleEndToEnd(t *testing.T) {
	stack, url := startBroker(t)

	out, err := runCapture(t, "-broker", url, "request",
		"-service", "simulation", "-client", "e2e",
		"-class", "guaranteed", "-cpu", "4", "-memory", "512", "-disk", "10",
		"-hours", "2")
	if err != nil {
		t.Fatalf("request: %v", err)
	}
	if !strings.Contains(out, "offer: SLA site-a-sla-") {
		t.Fatalf("request output: %q", out)
	}
	id := latestSLA(t, stack)

	out, err = runCapture(t, "-broker", url, "accept", "-sla", id)
	if err != nil {
		t.Fatalf("accept: %v", err)
	}
	if !strings.Contains(out, "accept: ok") {
		t.Fatalf("accept output: %q", out)
	}

	out, err = runCapture(t, "-broker", url, "invoke", "-sla", id)
	if err != nil {
		t.Fatalf("invoke: %v", err)
	}
	if !strings.Contains(out, "invoke: ok") {
		t.Fatalf("invoke output: %q", out)
	}

	out, err = runCapture(t, "-broker", url, "verify", "-sla", id)
	if err != nil {
		t.Fatalf("verify: %v", err)
	}
	if !strings.Contains(out, "QoS_Levels") {
		t.Fatalf("verify output: %q", out)
	}

	out, err = runCapture(t, "-broker", url, "renegotiate", "-sla", id, "-cpu", "6")
	if err != nil {
		t.Fatalf("renegotiate: %v", err)
	}
	if !strings.Contains(out, "renegotiated:") {
		t.Fatalf("renegotiate output: %q", out)
	}

	out, err = runCapture(t, "-broker", url, "terminate", "-sla", id, "-reason", "done")
	if err != nil {
		t.Fatalf("terminate: %v", err)
	}
	if !strings.Contains(out, "terminate: ok") {
		t.Fatalf("terminate output: %q", out)
	}
	doc, err := stack.Broker.Session(sla.ID(id))
	if err != nil {
		t.Fatal(err)
	}
	if !doc.State.Terminal() {
		t.Fatalf("session state %s after terminate", doc.State)
	}
}

func TestRejectEndToEnd(t *testing.T) {
	stack, url := startBroker(t)
	if _, err := runCapture(t, "-broker", url, "request", "-cpu", "2"); err != nil {
		t.Fatal(err)
	}
	id := latestSLA(t, stack)
	out, err := runCapture(t, "-broker", url, "reject", "-sla", id)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "reject: ok") {
		t.Fatalf("reject output: %q", out)
	}
}

func TestBestEffortEndToEnd(t *testing.T) {
	_, url := startBroker(t)
	out, err := runCapture(t, "-broker", url, "besteffort", "-client", "be-e2e", "-cpu", "2")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "granted") {
		t.Fatalf("besteffort output: %q", out)
	}
	out, err = runCapture(t, "-broker", url, "besteffort", "-client", "be-e2e", "-release")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "released") {
		t.Fatalf("release output: %q", out)
	}
}

// TestActionAgainstUnknownSLA checks that server-side faults surface as
// CLI errors.
func TestActionAgainstUnknownSLA(t *testing.T) {
	_, url := startBroker(t)
	if _, err := runCapture(t, "-broker", url, "accept", "-sla", "site-a-sla-9999"); err == nil {
		t.Fatal("accept of unknown SLA succeeded")
	}
}

// TestMetricsEndToEnd fetches the broker's Prometheus exposition through
// the metrics subcommand after one admission.
func TestMetricsEndToEnd(t *testing.T) {
	stack, url := startBroker(t)
	out, err := runCapture(t, "-broker", url, "request", "-class", "guaranteed", "-cpu", "2")
	if err != nil {
		t.Fatalf("request: %v\n%s", err, out)
	}
	if len(stack.Broker.Sessions(nil)) == 0 {
		t.Fatal("no session proposed")
	}

	out, err = runCapture(t, "-broker", url, "metrics")
	if err != nil {
		t.Fatalf("metrics: %v\n%s", err, out)
	}
	for _, want := range []string{
		"# TYPE gqosm_broker_admission_seconds histogram",
		`gqosm_broker_lifecycle_total{event="request"} 1`,
		"gqosm_partition_utilization",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics output missing %q:\n%s", want, out)
		}
	}
}

func TestMetricsAgainstDeadBroker(t *testing.T) {
	if _, err := runCapture(t, "-broker", "http://127.0.0.1:1", "metrics"); err == nil {
		t.Fatal("expected connection error")
	}
}

// TestLoadSubcommand walks a two-instance deployment with -endpoints:
// each broker answers the load_report round trip the cluster front tier
// places on.
func TestLoadSubcommand(t *testing.T) {
	_, url1 := startBroker(t)
	_, url2 := startBroker(t)
	out, err := runCapture(t, "load", "-endpoints", url1+","+url2)
	if err != nil {
		t.Fatalf("load: %v\n%s", err, out)
	}
	if got := strings.Count(out, "serving"); got != 2 {
		t.Fatalf("want 2 serving rows, got %d:\n%s", got, out)
	}
	if !strings.Contains(out, "site-a") {
		t.Fatalf("load output missing domain:\n%s", out)
	}
}

func TestLoadAgainstDeadBroker(t *testing.T) {
	out, err := runCapture(t, "load", "-endpoints", "http://127.0.0.1:1")
	if err == nil {
		t.Fatalf("expected connection error, got:\n%s", out)
	}
	if !strings.Contains(out, "unreachable") {
		t.Fatalf("dead endpoint not reported:\n%s", out)
	}
}

// TestPoliciesSubcommand round-trips the policy registry from a running
// broker: the table lists every registered policy and marks the active
// and shadow roles; -json emits the raw report.
func TestPoliciesSubcommand(t *testing.T) {
	stack, err := gqosm.NewStack(gqosm.StackConfig{
		Domain: "site-p",
		Plan: gqosm.CapacityPlan{
			Guaranteed: gqosm.Capacity{CPU: 15, MemoryMB: 6144, DiskGB: 120},
			Adaptive:   gqosm.Capacity{CPU: 6, MemoryMB: 2048, DiskGB: 40},
			BestEffort: gqosm.Capacity{CPU: 5, MemoryMB: 2048, DiskGB: 40},
		},
		ConfirmWindow: time.Hour,
		Policy:        "revenue-greedy",
		ShadowPolicy:  "upgrade-last",
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(stack.Close)
	srv := httptest.NewServer(stack.Mount())
	t.Cleanup(srv.Close)

	out, err := runCapture(t, "-broker", srv.URL, "policies")
	if err != nil {
		t.Fatalf("policies: %v\n%s", err, out)
	}
	for _, want := range []string{"paper", "revenue-greedy", "upgrade-last", "active", "shadow"} {
		if !strings.Contains(out, want) {
			t.Errorf("policies output missing %q:\n%s", want, out)
		}
	}

	out, err = runCapture(t, "-broker", srv.URL, "policies", "-json")
	if err != nil {
		t.Fatalf("policies -json: %v\n%s", err, out)
	}
	if !strings.Contains(out, `"active": "revenue-greedy"`) || !strings.Contains(out, `"shadow": "upgrade-last"`) {
		t.Errorf("policies -json output unexpected:\n%s", out)
	}
}

func TestPoliciesAgainstDeadBroker(t *testing.T) {
	if out, err := runCapture(t, "-broker", "http://127.0.0.1:1", "policies"); err == nil {
		t.Fatalf("expected connection error, got:\n%s", out)
	}
}
