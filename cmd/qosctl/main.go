// Command qosctl is the client-side counterpart of the paper's Fig. 7
// client interface: it sends service_request messages to an AQoS broker
// over SOAP/HTTP and performs the client actions — request a service with
// QoS properties, accept or reject SLA offers, invoke or terminate the
// service, request an explicit SLA verification test, and ask for
// best-effort capacity.
//
// Usage:
//
//	qosctl -broker http://localhost:8080 request -service simulation \
//	        -class guaranteed -cpu 10 -memory 2048 -disk 15 -hours 5
//	qosctl -broker http://localhost:8080 accept  -sla site-a-sla-0001
//	qosctl -broker http://localhost:8080 reject  -sla site-a-sla-0001
//	qosctl -broker http://localhost:8080 invoke  -sla site-a-sla-0001
//	qosctl -broker http://localhost:8080 verify  -sla site-a-sla-0001
//	qosctl -broker http://localhost:8080 terminate -sla site-a-sla-0001
//	qosctl -broker http://localhost:8080 renegotiate -sla site-a-sla-0001 -cpu 12
//	qosctl -broker http://localhost:8080 besteffort -client me -cpu 4
//	qosctl -broker http://localhost:8080 metrics
//	qosctl -broker http://localhost:8080 policies
//	qosctl load -endpoints http://localhost:8080,http://localhost:8081
//
// The -transport flag picks the wire protocol: soap (default, the
// paper-faithful reference) or http (the compact JSON API under
// /api/v1/ — no envelope, typed errors round-trip). verify and
// accept_promotion are SOAP-only operations.
package main

import (
	"encoding/json"
	"encoding/xml"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"gqosm"
	"gqosm/internal/core"
	"gqosm/internal/httpapi"
	"gqosm/internal/sla"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "qosctl:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	global := flag.NewFlagSet("qosctl", flag.ContinueOnError)
	broker := global.String("broker", "http://localhost:8080", "AQoS broker endpoint")
	transport := global.String("transport", "soap", "wire protocol: soap | http (the compact JSON API)")
	if err := global.Parse(args); err != nil {
		return err
	}
	rest := global.Args()
	if len(rest) == 0 {
		return fmt.Errorf("missing subcommand: request | accept | reject | invoke | verify | terminate | besteffort | metrics | load | policies")
	}
	w, err := newWire(*transport, *broker)
	if err != nil {
		return err
	}
	cmd, rest := rest[0], rest[1:]
	switch cmd {
	case "request":
		return doRequest(w, rest)
	case "accept", "reject", "invoke", "terminate", "accept_promotion":
		return doAction(w, cmd, rest)
	case "renegotiate":
		return doRenegotiate(w, rest)
	case "verify":
		return doVerify(w, rest)
	case "besteffort":
		return doBestEffort(w, rest)
	case "metrics":
		return doMetrics(*broker, rest)
	case "load":
		return doLoad(w, *broker, rest)
	case "policies":
		return doPolicies(*broker, rest)
	default:
		return fmt.Errorf("unknown subcommand %q", cmd)
	}
}

// wire abstracts the two client transports behind the subcommands:
// exactly one of soap/json is set.
type wire struct {
	soap *core.Client
	json *httpapi.Client
}

func newWire(transport, endpoint string) (*wire, error) {
	switch transport {
	case "soap":
		return &wire{soap: gqosm.NewBrokerClient(endpoint)}, nil
	case "http":
		return &wire{json: gqosm.NewJSONBrokerClient(endpoint)}, nil
	default:
		return nil, fmt.Errorf("bad -transport %q (want soap or http)", transport)
	}
}

// loadReport fetches one endpoint's load report on the wire's transport.
func (w *wire) loadReport(endpoint string) (core.LoadReport, error) {
	if w.json != nil {
		return gqosm.NewJSONBrokerClient(endpoint).LoadReport()
	}
	return core.NewClient(endpoint).LoadReport()
}

func doRequest(w *wire, args []string) error {
	fs := flag.NewFlagSet("request", flag.ContinueOnError)
	var (
		service  = fs.String("service", "simulation", "service name")
		clientID = fs.String("client", "qosctl", "client identity")
		class    = fs.String("class", "guaranteed", "QoS class: guaranteed | controlled-load")
		cpu      = fs.Float64("cpu", 0, "CPU nodes (exact, or max with -cpu-min)")
		cpuMin   = fs.Float64("cpu-min", 0, "minimum CPU nodes (controlled-load range)")
		memory   = fs.Float64("memory", 0, "memory MB")
		disk     = fs.Float64("disk", 0, "disk GB")
		bw       = fs.Float64("bandwidth", 0, "bandwidth Mbps")
		src      = fs.String("source-ip", "", "flow source IP")
		dst      = fs.String("dest-ip", "", "flow destination IP")
		hours    = fs.Float64("hours", 1, "reservation length in hours")
		budget   = fs.Float64("budget", 0, "budget cap (0 = none)")
		degrade  = fs.Bool("accept-degradation", false, "willing to degrade (scenario 1)")
		promo    = fs.Bool("promotions", false, "opt in to promotion offers")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	cls, err := sla.ParseClass(*class)
	if err != nil {
		return err
	}
	var params []gqosm.Param
	if *cpu > 0 {
		if *cpuMin > 0 {
			params = append(params, gqosm.Range(gqosm.CPU, *cpuMin, *cpu))
		} else {
			params = append(params, gqosm.Exact(gqosm.CPU, *cpu))
		}
	}
	if *memory > 0 {
		params = append(params, gqosm.Exact(gqosm.MemoryMB, *memory))
	}
	if *disk > 0 {
		params = append(params, gqosm.Exact(gqosm.DiskGB, *disk))
	}
	if *bw > 0 {
		params = append(params, gqosm.Exact(gqosm.BandwidthMbps, *bw))
	}
	spec := gqosm.NewSpec(params...)
	spec.SourceIP, spec.DestIP = *src, *dst

	now := time.Now()
	req := gqosm.Request{
		Service:           *service,
		Client:            *clientID,
		Class:             cls,
		Spec:              spec,
		Start:             now,
		End:               now.Add(time.Duration(*hours * float64(time.Hour))),
		Budget:            *budget,
		AcceptDegradation: *degrade,
		PromotionOptIn:    *promo,
	}
	if w.json != nil {
		offer, err := w.json.RequestService(req)
		if err != nil {
			return err
		}
		fmt.Printf("offer: SLA %s, price %.2f, expires %s\n", offer.SLAID, offer.Price, offer.Expires)
		out, err := json.MarshalIndent(offer, "", "  ")
		if err != nil {
			return err
		}
		fmt.Println(string(out))
		return nil
	}
	offer, err := w.soap.RequestService(req)
	if err != nil {
		return err
	}
	fmt.Printf("offer: SLA %s, price %.2f, expires %s\n", offer.SLA.SLAID, offer.Price, offer.Expires)
	out, err := xml.MarshalIndent(offer.SLA, "", "  ")
	if err != nil {
		return err
	}
	fmt.Println(string(out))
	return nil
}

func doAction(w *wire, action string, args []string) error {
	fs := flag.NewFlagSet(action, flag.ContinueOnError)
	id := fs.String("sla", "", "SLA ID")
	reason := fs.String("reason", "", "reason (terminate)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *id == "" {
		return fmt.Errorf("-sla is required")
	}
	var (
		detail string
		err    error
	)
	if w.json != nil {
		if action == "accept_promotion" {
			return fmt.Errorf("accept_promotion is SOAP-only; use -transport soap")
		}
		detail, err = w.json.Act(sla.ID(*id), action, *reason)
	} else {
		detail, err = w.soap.Act(sla.ID(*id), action, *reason)
	}
	if err != nil {
		return err
	}
	fmt.Printf("%s: ok", action)
	if detail != "" {
		fmt.Printf(" (%s)", detail)
	}
	fmt.Println()
	return nil
}

func doRenegotiate(w *wire, args []string) error {
	fs := flag.NewFlagSet("renegotiate", flag.ContinueOnError)
	var (
		id     = fs.String("sla", "", "SLA ID")
		cpu    = fs.Float64("cpu", 0, "new CPU nodes (exact, or max with -cpu-min)")
		cpuMin = fs.Float64("cpu-min", 0, "minimum CPU nodes (controlled-load range)")
		memory = fs.Float64("memory", 0, "new memory MB")
		disk   = fs.Float64("disk", 0, "new disk GB")
		bw     = fs.Float64("bandwidth", 0, "new bandwidth Mbps")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *id == "" {
		return fmt.Errorf("-sla is required")
	}
	var params []gqosm.Param
	if *cpu > 0 {
		if *cpuMin > 0 {
			params = append(params, gqosm.Range(gqosm.CPU, *cpuMin, *cpu))
		} else {
			params = append(params, gqosm.Exact(gqosm.CPU, *cpu))
		}
	}
	if *memory > 0 {
		params = append(params, gqosm.Exact(gqosm.MemoryMB, *memory))
	}
	if *disk > 0 {
		params = append(params, gqosm.Exact(gqosm.DiskGB, *disk))
	}
	if *bw > 0 {
		params = append(params, gqosm.Exact(gqosm.BandwidthMbps, *bw))
	}
	var (
		detail string
		err    error
	)
	if w.json != nil {
		detail, err = w.json.Renegotiate(sla.ID(*id), gqosm.NewSpec(params...))
	} else {
		detail, err = w.soap.Renegotiate(sla.ID(*id), gqosm.NewSpec(params...))
	}
	if err != nil {
		return err
	}
	fmt.Println("renegotiated:", detail)
	return nil
}

func doVerify(w *wire, args []string) error {
	fs := flag.NewFlagSet("verify", flag.ContinueOnError)
	id := fs.String("sla", "", "SLA ID")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *id == "" {
		return fmt.Errorf("-sla is required")
	}
	if w.json != nil {
		return fmt.Errorf("verify is SOAP-only; use -transport soap")
	}
	levels, err := w.soap.Verify(sla.ID(*id))
	if err != nil {
		return err
	}
	out, err := xml.MarshalIndent(levels, "", "  ")
	if err != nil {
		return err
	}
	fmt.Println(string(out))
	return nil
}

func doBestEffort(w *wire, args []string) error {
	fs := flag.NewFlagSet("besteffort", flag.ContinueOnError)
	var (
		clientID = fs.String("client", "qosctl", "client identity")
		cpu      = fs.Float64("cpu", 0, "CPU nodes")
		memory   = fs.Float64("memory", 0, "memory MB")
		disk     = fs.Float64("disk", 0, "disk GB")
		release  = fs.Bool("release", false, "release held capacity instead")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	amount := gqosm.Capacity{CPU: *cpu, MemoryMB: *memory, DiskGB: *disk}
	var err error
	if w.json != nil {
		err = w.json.BestEffort(*clientID, amount, *release)
	} else {
		err = w.soap.BestEffort(*clientID, amount, *release)
	}
	if err != nil {
		return err
	}
	if *release {
		fmt.Println("released")
	} else {
		fmt.Printf("granted %v\n", amount)
	}
	return nil
}

// doLoad prints each broker instance's load report — the signal the
// cluster front tier's least-loaded placement routes on. With
// -endpoints it walks a comma-separated multi-broker deployment; the
// default is the single -broker endpoint.
func doLoad(w *wire, broker string, args []string) error {
	fs := flag.NewFlagSet("load", flag.ContinueOnError)
	endpoints := fs.String("endpoints", "", "comma-separated broker endpoints (default: the -broker one)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	eps := []string{broker}
	if *endpoints != "" {
		eps = strings.Split(*endpoints, ",")
	}
	fmt.Printf("%-24s %-10s %8s %8s  %s\n", "ENDPOINT", "DOMAIN", "SESSIONS", "LOAD", "STATE")
	var firstErr error
	for _, ep := range eps {
		ep = strings.TrimSpace(ep)
		if ep == "" {
			continue
		}
		r, err := w.loadReport(ep)
		if err != nil {
			fmt.Printf("%-24s %-10s %8s %8s  unreachable: %v\n", ep, "-", "-", "-", err)
			if firstErr == nil {
				firstErr = fmt.Errorf("load report from %s: %w", ep, err)
			}
			continue
		}
		state := "serving"
		if r.Recovering {
			state = "recovering"
		}
		fmt.Printf("%-24s %-10s %8d %8.3f  %s\n", ep, r.Domain, r.Sessions, r.Load, state)
	}
	return firstErr
}

// doPolicies lists a running broker's adaptation policies: the active
// one, the shadow candidate under evaluation (if any), and every name
// the registry can resolve. Always rides the JSON API — there is no
// SOAP policies operation.
func doPolicies(broker string, args []string) error {
	fs := flag.NewFlagSet("policies", flag.ContinueOnError)
	raw := fs.Bool("json", false, "print the raw JSON report")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rep, err := gqosm.NewJSONBrokerClient(broker).Policies()
	if err != nil {
		return err
	}
	if *raw {
		out, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		fmt.Println(string(out))
		return nil
	}
	fmt.Printf("%-16s %s\n", "POLICY", "ROLE")
	for _, name := range rep.Policies {
		role := ""
		if name == rep.Active {
			role = "active"
		}
		if name == rep.Shadow {
			if role != "" {
				role += ", "
			}
			role += "shadow"
		}
		fmt.Printf("%-16s %s\n", name, role)
	}
	return nil
}

// doMetrics prints the broker's /metrics snapshot: the broker-side
// counters, latency histograms and utilization gauges in Prometheus
// text exposition format.
func doMetrics(broker string, args []string) error {
	fs := flag.NewFlagSet("metrics", flag.ContinueOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	resp, err := http.Get(strings.TrimRight(broker, "/") + "/metrics")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("metrics: broker answered %s", resp.Status)
	}
	_, err = io.Copy(os.Stdout, resp.Body)
	return err
}
