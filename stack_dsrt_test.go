package gqosm

import (
	"path/filepath"
	"testing"
	"time"

	"gqosm/internal/resource"
	"gqosm/internal/sla"
)

func TestStackWithDSRT(t *testing.T) {
	clock := NewManualClock(epoch)
	stack, err := NewStack(StackConfig{
		Clock: clock,
		Plan: CapacityPlan{
			Guaranteed: Capacity{CPU: 15, MemoryMB: 6144},
			Adaptive:   Capacity{CPU: 6, MemoryMB: 2048},
			BestEffort: Capacity{CPU: 5, MemoryMB: 2048},
		},
		ConfirmWindow:  time.Hour,
		DSRTProcessors: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer stack.Close()
	if stack.DSRT == nil || stack.RM == nil {
		t.Fatal("DSRT not assembled")
	}

	offer, err := stack.Broker.RequestService(Request{
		Service: "simulation", Client: "c", Class: ClassGuaranteed,
		Spec:  NewSpec(Exact(CPU, 10)),
		Start: epoch, End: epoch.Add(5 * time.Hour),
	})
	if err != nil {
		t.Fatal(err)
	}
	id := offer.SLA.ID
	if err := stack.Broker.Accept(id); err != nil {
		t.Fatal(err)
	}
	// Before invocation: no DSRT contracts.
	if got := stack.DSRT.Reserved(); got != 0 {
		t.Fatalf("Reserved before invoke = %g", got)
	}
	if _, err := stack.Broker.Invoke(id); err != nil {
		t.Fatal(err)
	}
	// The launched process runs under a DSRT contract.
	if got := stack.DSRT.Reserved(); got <= 0 {
		t.Fatalf("Reserved after invoke = %g, want > 0", got)
	}
	reservedBefore := stack.DSRT.Reserved()

	// A CPU degradation is rectified at the RM level: the share grows
	// and no violation is recorded.
	stack.Broker.Allocator() // touch
	rep, err := stack.Broker.Verify(id)
	if err != nil || !rep.Conforms {
		t.Fatalf("healthy verify: %+v %v", rep, err)
	}
	// Simulate a monitor-detected CPU shortfall.
	stackDegrade(stack, id, resource.Nodes(6))
	if got := stack.Broker.Violations(id); got != 0 {
		t.Errorf("violations = %d, want 0 (RM level should rectify)", got)
	}
	if got := stack.DSRT.Reserved(); got <= reservedBefore {
		t.Errorf("DSRT share did not grow: %g -> %g", reservedBefore, got)
	}

	// Termination releases the DSRT contract.
	if err := stack.Broker.Terminate(id, "done"); err != nil {
		t.Fatal(err)
	}
	if got := stack.DSRT.Reserved(); got != 0 {
		t.Errorf("Reserved after terminate = %g, want 0", got)
	}
}

// stackDegrade reports a below-floor measurement for the session, driving
// the broker's degradation ladder.
func stackDegrade(stack *Stack, id SLAID, measured Capacity) {
	// Verify with injected failure is indirect; use NotifyFailure-style
	// path: the broker exposes handleDegradation only through Verify and
	// NRM callbacks, so emulate via the RM adapter check in Verify by
	// reporting through the NRM-free path: a direct conformance check on
	// a degraded allocator. Simplest honest route: fail capacity so the
	// measured CPU drops below floor on the next verify.
	_ = measured
	stack.Broker.NotifyFailure(Nodes(12)) // C_G_eff = 3 < session's 10
	_, _ = stack.Broker.Verify(id)
	stack.Broker.NotifyFailure(Capacity{})
}

func TestStackRepoDirPersistsSLAs(t *testing.T) {
	dir := t.TempDir()
	clock := NewManualClock(epoch)
	stack, err := NewStack(StackConfig{
		Clock:         clock,
		Plan:          CapacityPlan{Guaranteed: Nodes(10), BestEffort: Nodes(2)},
		ConfirmWindow: time.Hour,
		RepoDir:       dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer stack.Close()
	offer, err := stack.Broker.RequestService(Request{
		Service: "simulation", Client: "c", Class: ClassGuaranteed,
		Spec:  NewSpec(Exact(CPU, 4)),
		Start: epoch, End: epoch.Add(time.Hour),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := stack.Broker.Accept(offer.SLA.ID); err != nil {
		t.Fatal(err)
	}
	// The SLA landed on disk as a Table-4 XML file.
	matches, err := filepath.Glob(filepath.Join(dir, "*.xml"))
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 1 {
		t.Fatalf("repo dir holds %d files, want 1", len(matches))
	}
	// A fresh repository over the same directory sees the agreement.
	repo, err := sla.NewFileRepository(dir)
	if err != nil {
		t.Fatal(err)
	}
	doc, err := repo.Get(offer.SLA.ID)
	if err != nil {
		t.Fatal(err)
	}
	if doc.Class != ClassGuaranteed {
		t.Errorf("persisted class = %v", doc.Class)
	}
	// Bad repo dir (a path through a regular file) fails assembly.
	if _, err := NewStack(StackConfig{
		Plan:    CapacityPlan{Guaranteed: Nodes(1)},
		RepoDir: filepath.Join(matches[0], "not-a-dir"),
	}); err == nil {
		t.Error("NewStack accepted unusable RepoDir")
	}
}
