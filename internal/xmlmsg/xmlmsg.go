// Package xmlmsg defines the XML wire messages exchanged between clients
// and the AQoS broker ("all interactions are encoded as XML messages",
// §2.1): the service_request of Fig. 7, the broker's service offer, SLA
// accept/reject, invocation, the explicit SLA verification request, and
// best-effort requests. The SLA and QoS-level documents themselves (Tables
// 1, 3, 4) live in the sla and core packages; this package carries them.
package xmlmsg

import (
	"encoding/xml"
	"fmt"
	"strconv"
	"strings"
	"time"

	"gqosm/internal/resource"
	"gqosm/internal/sla"
)

// TimeLayout is the timestamp format on the wire.
const TimeLayout = time.RFC3339

// QoSParamXML is one requested QoS parameter: an exact value, a range, or
// a list, as §5.3 allows.
type QoSParamXML struct {
	// Name is the dimension: "cpu", "memory-mb", "disk-gb",
	// "bandwidth-mbps".
	Name string `xml:"name,attr"`
	// Exactly one of the following is set.
	Exact  string `xml:"Exact,omitempty"`
	Min    string `xml:"Min,omitempty"`
	Max    string `xml:"Max,omitempty"`
	Values string `xml:"Values,omitempty"` // comma-separated list
}

// ServiceRequestXML is the client's service_request message (Fig. 7).
type ServiceRequestXML struct {
	XMLName  xml.Name      `xml:"service_request"`
	Service  string        `xml:"Service_Name"`
	Client   string        `xml:"Client"`
	Class    string        `xml:"QoS_Class"`
	Params   []QoSParamXML `xml:"QoS_Specification>Parameter"`
	SourceIP string        `xml:"Network>Source_IP,omitempty"`
	DestIP   string        `xml:"Network>Dest_IP,omitempty"`
	MaxLoss  string        `xml:"Network>Packet_Loss,omitempty"`
	Start    string        `xml:"Reservation>Start"`
	End      string        `xml:"Reservation>End"`
	Budget   float64       `xml:"Budget,omitempty"`
	// Adaptation options (§5.2).
	AcceptDegradation bool `xml:"Adaptation_Options>Accept_Degradation,omitempty"`
	AcceptTermination bool `xml:"Adaptation_Options>Accept_Termination,omitempty"`
	PromotionOptIn    bool `xml:"Adaptation_Options>Promotion_Offer,omitempty"`
}

// ServiceOfferXML is the broker's reply: a proposed SLA, its price, and
// the confirmation deadline.
type ServiceOfferXML struct {
	XMLName xml.Name          `xml:"service_offer"`
	SLA     sla.ServiceSLAXML `xml:"Service_SLA"`
	Price   float64           `xml:"Price"`
	Expires string            `xml:"Expires"`
	// Domain names the administrative domain whose broker holds the
	// proposed session — relevant for federated deployments where a
	// neighbor served the request.
	Domain string `xml:"Domain,omitempty"`
}

// SLAActionXML accepts or rejects a proposed SLA, requests invocation or
// termination, or asks for an explicit verification test — the four
// client-side actions of Fig. 7.
type SLAActionXML struct {
	XMLName xml.Name `xml:"sla_action"`
	SLAID   string   `xml:"SLA-ID"`
	// Action is "accept", "reject", "invoke", "terminate", "verify" or
	// "accept_promotion".
	Action string `xml:"Action"`
	Reason string `xml:"Reason,omitempty"`
}

// AckXML acknowledges an action.
type AckXML struct {
	XMLName xml.Name `xml:"ack"`
	OK      bool     `xml:"ok"`
	Detail  string   `xml:"detail,omitempty"`
}

// RenegotiateRequestXML renegotiates a live session's QoS specification
// (the Fig. 3 "QoS Renegotiation" function).
type RenegotiateRequestXML struct {
	XMLName  xml.Name      `xml:"renegotiate_request"`
	SLAID    string        `xml:"SLA-ID"`
	Params   []QoSParamXML `xml:"QoS_Specification>Parameter"`
	SourceIP string        `xml:"Network>Source_IP,omitempty"`
	DestIP   string        `xml:"Network>Dest_IP,omitempty"`
	MaxLoss  string        `xml:"Network>Packet_Loss,omitempty"`
}

// BestEffortRequestXML asks for best-effort capacity (no SLA).
type BestEffortRequestXML struct {
	XMLName xml.Name `xml:"best_effort_request"`
	Client  string   `xml:"Client"`
	CPU     float64  `xml:"CPU,omitempty"`
	Memory  float64  `xml:"Memory_MB,omitempty"`
	Disk    float64  `xml:"Disk_GB,omitempty"`
	// Release releases the client's capacity instead of requesting.
	Release bool `xml:"Release,omitempty"`
}

// LoadReportRequestXML asks a broker for its current load, the signal
// the cluster front tier places admissions by.
type LoadReportRequestXML struct {
	XMLName xml.Name `xml:"load_report_request"`
}

// LoadReportXML is the broker's load answer.
type LoadReportXML struct {
	XMLName xml.Name `xml:"load_report"`
	// Domain names the reporting broker's administrative domain.
	Domain string `xml:"Domain"`
	// Sessions counts live (non-terminal) sessions.
	Sessions int `xml:"Sessions"`
	// Load is the broker's mean guaranteed-pool demand fraction in [0,1+).
	Load float64 `xml:"Load"`
	// Recovering marks a broker still replaying its WAL.
	Recovering bool `xml:"Recovering,omitempty"`
}

// EncodeRequest converts broker-level request fields to the wire form.
// (The core package converts back; this package stays dependency-light.)
func EncodeSpec(spec sla.Spec) []QoSParamXML {
	kinds := spec.Kinds()
	out := make([]QoSParamXML, 0, len(kinds))
	for _, k := range kinds {
		p := spec.Params[k]
		x := QoSParamXML{Name: k.String()}
		switch p.Form {
		case sla.FormExact:
			x.Exact = trimFloat(p.Exact)
		case sla.FormRange:
			x.Min, x.Max = trimFloat(p.Min), trimFloat(p.Max)
		case sla.FormList:
			parts := make([]string, len(p.Values))
			for i, v := range p.Values {
				parts[i] = trimFloat(v)
			}
			x.Values = strings.Join(parts, ",")
		}
		out = append(out, x)
	}
	return out
}

// DecodeSpec converts wire parameters back to an sla.Spec.
func DecodeSpec(params []QoSParamXML, sourceIP, destIP, maxLoss string) (sla.Spec, error) {
	spec := sla.Spec{Params: make(map[resource.Kind]sla.Param, len(params))}
	for _, x := range params {
		kind, err := kindOf(x.Name)
		if err != nil {
			return sla.Spec{}, err
		}
		switch {
		case x.Exact != "":
			v, err := sla.ParseQuantity(x.Exact)
			if err != nil {
				return sla.Spec{}, err
			}
			spec.Params[kind] = sla.Exact(kind, v)
		case x.Values != "":
			var vals []float64
			for _, part := range strings.Split(x.Values, ",") {
				v, err := sla.ParseQuantity(part)
				if err != nil {
					return sla.Spec{}, err
				}
				vals = append(vals, v)
			}
			spec.Params[kind] = sla.List(kind, vals...)
		case x.Min != "" || x.Max != "":
			min, err := sla.ParseQuantity(x.Min)
			if err != nil {
				return sla.Spec{}, err
			}
			max, err := sla.ParseQuantity(x.Max)
			if err != nil {
				return sla.Spec{}, err
			}
			spec.Params[kind] = sla.Range(kind, min, max)
		default:
			return sla.Spec{}, fmt.Errorf("xmlmsg: parameter %q has no value form", x.Name)
		}
	}
	spec.SourceIP = strings.TrimSpace(sourceIP)
	spec.DestIP = strings.TrimSpace(destIP)
	if maxLoss != "" {
		v, err := sla.ParseQuantity(maxLoss)
		if err != nil {
			return sla.Spec{}, err
		}
		spec.MaxPacketLossPct = v
	}
	return spec, nil
}

func kindOf(name string) (resource.Kind, error) {
	switch strings.TrimSpace(name) {
	case "cpu":
		return resource.CPU, nil
	case "memory-mb":
		return resource.MemoryMB, nil
	case "disk-gb":
		return resource.DiskGB, nil
	case "bandwidth-mbps":
		return resource.BandwidthMbps, nil
	default:
		return 0, fmt.Errorf("xmlmsg: unknown parameter name %q", name)
	}
}

func trimFloat(f float64) string {
	return strconv.FormatFloat(f, 'g', -1, 64)
}
