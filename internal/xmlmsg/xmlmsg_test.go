package xmlmsg

import (
	"encoding/xml"
	"strings"
	"testing"

	"gqosm/internal/resource"
	"gqosm/internal/sla"
)

func sampleSpec() sla.Spec {
	s := sla.NewSpec(
		sla.Exact(resource.CPU, 10),
		sla.Range(resource.MemoryMB, 512, 2048),
		sla.List(resource.BandwidthMbps, 10, 45, 100),
	)
	s.SourceIP = "10.10.3.4"
	s.DestIP = "192.200.168.33"
	s.MaxPacketLossPct = 10
	return s
}

func TestEncodeDecodeSpecRoundTrip(t *testing.T) {
	spec := sampleSpec()
	params := EncodeSpec(spec)
	if len(params) != 3 {
		t.Fatalf("EncodeSpec = %d params", len(params))
	}
	back, err := DecodeSpec(params, spec.SourceIP, spec.DestIP, "LessThan 10%")
	if err != nil {
		t.Fatalf("DecodeSpec: %v", err)
	}
	if !back.Floor().Equal(spec.Floor()) || !back.Best().Equal(spec.Best()) {
		t.Errorf("round trip floor/best mismatch: %v / %v", back.Floor(), back.Best())
	}
	p, ok := back.Param(resource.BandwidthMbps)
	if !ok || p.Form != sla.FormList || len(p.Values) != 3 {
		t.Errorf("list param = %+v", p)
	}
	if back.SourceIP != spec.SourceIP || back.MaxPacketLossPct != 10 {
		t.Errorf("network fields lost: %+v", back)
	}
}

func TestDecodeSpecErrors(t *testing.T) {
	cases := []struct {
		name   string
		params []QoSParamXML
		loss   string
	}{
		{"unknown kind", []QoSParamXML{{Name: "gpu", Exact: "1"}}, ""},
		{"no form", []QoSParamXML{{Name: "cpu"}}, ""},
		{"bad exact", []QoSParamXML{{Name: "cpu", Exact: "lots"}}, ""},
		{"bad list", []QoSParamXML{{Name: "cpu", Values: "1,two"}}, ""},
		{"bad min", []QoSParamXML{{Name: "cpu", Min: "x", Max: "2"}}, ""},
		{"bad max", []QoSParamXML{{Name: "cpu", Min: "1", Max: "x"}}, ""},
		{"bad loss", []QoSParamXML{{Name: "cpu", Exact: "1"}}, "bad"},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := DecodeSpec(tt.params, "", "", tt.loss); err == nil {
				t.Error("decode succeeded")
			}
		})
	}
}

func TestServiceRequestXMLShape(t *testing.T) {
	req := ServiceRequestXML{
		Service:           "simulation",
		Client:            "site-c",
		Class:             "Guaranteed",
		Params:            EncodeSpec(sampleSpec()),
		SourceIP:          "10.10.3.4",
		DestIP:            "192.200.168.33",
		Start:             "2003-06-16T09:00:00Z",
		End:               "2003-06-16T14:00:00Z",
		Budget:            200,
		AcceptDegradation: true,
	}
	data, err := xml.MarshalIndent(req, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	s := string(data)
	for _, want := range []string{
		"<service_request>", "<Service_Name>simulation</Service_Name>",
		"<QoS_Specification>", `<Parameter name="cpu">`, "<Source_IP>10.10.3.4</Source_IP>",
		"<Reservation>", "<Budget>200</Budget>", "<Accept_Degradation>true</Accept_Degradation>",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("request XML missing %q:\n%s", want, s)
		}
	}
	var back ServiceRequestXML
	if err := xml.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Service != req.Service || len(back.Params) != len(req.Params) ||
		back.Start != req.Start || !back.AcceptDegradation {
		t.Errorf("round trip = %+v", back)
	}
}

func TestSLAActionAndAck(t *testing.T) {
	act := SLAActionXML{SLAID: "1055", Action: "verify"}
	data, err := xml.Marshal(act)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "<SLA-ID>1055</SLA-ID>") {
		t.Errorf("action XML = %s", data)
	}
	ack := AckXML{OK: true, Detail: "job-1"}
	data, err = xml.Marshal(ack)
	if err != nil {
		t.Fatal(err)
	}
	var back AckXML
	if err := xml.Unmarshal(data, &back); err != nil || !back.OK || back.Detail != "job-1" {
		t.Errorf("ack round trip = %+v, %v", back, err)
	}
}

func TestBestEffortRequestXML(t *testing.T) {
	req := BestEffortRequestXML{Client: "student", CPU: 4, Memory: 512}
	data, err := xml.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	var back BestEffortRequestXML
	if err := xml.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Client != "student" || back.CPU != 4 || back.Memory != 512 || back.Release {
		t.Errorf("round trip = %+v", back)
	}
}
