package xmlmsg

import (
	"bytes"
	"testing"

	"gqosm/internal/sla"
	"gqosm/internal/soapx"
)

// benchOffer is a representative broker reply: a full SLA with compute
// and network QoS, priced, with a confirmation deadline.
func benchOffer() *ServiceOfferXML {
	return &ServiceOfferXML{
		SLA: sla.ServiceSLAXML{
			SLAID:   "site-a-sla-0042",
			Service: "simulation",
			Class:   "Guaranteed",
			Spec: &sla.ServiceSpecificXML{
				CPU:    "10 nodes",
				Memory: "2048 MB",
				Disk:   "15 GB",
				Network: &sla.NetworkQoS{
					SourceIP:  "10.10.3.4",
					DestIP:    "192.200.168.33",
					Bandwidth: "45 Mbps",
				},
			},
			Price: "12.5",
		},
		Price:   12.5,
		Expires: "2003-06-16T09:02:00Z",
		Domain:  "site-a",
	}
}

// BenchmarkOfferEncode measures the service-offer reply path: the SOAP
// envelope around the broker's offer document, as ServeHTTP sends it.
func BenchmarkOfferEncode(b *testing.B) {
	offer := benchOffer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := soapx.Marshal(offer); err != nil {
			b.Fatal(err)
		}
	}
}

// TestOfferEncodeWellFormed pins the envelope shape the benchmark
// exercises: the pooled encoder must produce the same document as a
// plain xml.Marshal wrapped in the envelope.
func TestOfferEncodeWellFormed(t *testing.T) {
	out, err := soapx.Marshal(benchOffer())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"<soap:Envelope", "<soap:Body>", "<service_offer>",
		"<SLA-ID>site-a-sla-0042</SLA-ID>", "<Bandwidth>45 Mbps</Bandwidth>",
		"</service_offer>", "</soap:Body></soap:Envelope>",
	} {
		if !bytes.Contains(out, []byte(want)) {
			t.Errorf("marshaled offer missing %q in:\n%s", want, out)
		}
	}
	var back ServiceOfferXML
	if err := soapx.Unmarshal(out, &back); err != nil {
		t.Fatalf("round-trip unmarshal: %v", err)
	}
	if back.SLA.SLAID != "site-a-sla-0042" || back.Price != 12.5 {
		t.Errorf("round-trip lost fields: %+v", back)
	}
}
