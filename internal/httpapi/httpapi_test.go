package httpapi_test

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"gqosm/internal/core"
	"gqosm/internal/httpapi"
	"gqosm/internal/resource"
	"gqosm/internal/sim"
	"gqosm/internal/sla"
	"gqosm/internal/soapx"
)

// apiFixture is a broker with the JSON API mounted beside a SOAP mux on
// one httptest listener — the production topology in miniature.
func apiFixture(t *testing.T, intake bool) (*sim.Cluster, *httpapi.Client) {
	t.Helper()
	c, err := sim.NewCluster(sim.ClusterConfig{
		Plan:   sim.DefaultParallelPlan(),
		Intake: core.IntakeConfig{Enabled: intake},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	mux := soapx.NewMux()
	httpapi.NewServer(c.Broker).Mount(mux)
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return c, httpapi.NewClient(srv.URL)
}

func wireRequest(client string) core.Request {
	return core.Request{
		Service: "simulation",
		Client:  client,
		Class:   sla.ClassGuaranteed,
		Spec:    sla.NewSpec(sla.Exact(resource.CPU, 2)),
		Start:   sim.Epoch,
		End:     sim.Epoch.Add(time.Hour),
	}
}

// TestWireLifecycle drives request → accept → invoke → session →
// terminate entirely over the JSON transport, on both the direct and
// the intake-enabled broker.
func TestWireLifecycle(t *testing.T) {
	for _, intake := range []bool{false, true} {
		name := "direct"
		if intake {
			name = "intake"
		}
		t.Run(name, func(t *testing.T) {
			_, client := apiFixture(t, intake)

			offer, err := client.RequestService(wireRequest("wire-1"))
			if err != nil {
				t.Fatalf("RequestService: %v", err)
			}
			if offer.SLAID == "" || offer.Price <= 0 {
				t.Fatalf("implausible offer: %+v", offer)
			}
			id := sla.ID(offer.SLAID)
			if _, err := client.Act(id, "accept", ""); err != nil {
				t.Fatalf("accept: %v", err)
			}
			if detail, err := client.Act(id, "invoke", ""); err != nil || !strings.Contains(detail, "job") {
				t.Fatalf("invoke: detail=%q err=%v", detail, err)
			}
			sess, err := client.Session(id)
			if err != nil {
				t.Fatalf("session: %v", err)
			}
			if sess.SLAID != offer.SLAID || sess.Allocated.CPU != 2 {
				t.Errorf("session snapshot %+v does not match offer %+v", sess, offer)
			}
			if _, err := client.Act(id, "terminate", "done"); err != nil {
				t.Fatalf("terminate: %v", err)
			}
			// Terminal sessions linger in the working set until pruned;
			// the load report must still come back over the wire.
			load, err := client.LoadReport()
			if err != nil {
				t.Fatalf("load: %v", err)
			}
			if load.Domain == "" || load.Sessions != 1 {
				t.Errorf("implausible load report: %+v", load)
			}
		})
	}
}

// TestWireErrorTaxonomy provokes representative taxonomy rows through
// the real server and checks the client reconstructs the broker's
// sentinels — plus raw status codes for the rows a typed client never
// produces.
func TestWireErrorTaxonomy(t *testing.T) {
	c, client := apiFixture(t, false)

	if _, err := client.Session("no-such-session"); !errors.Is(err, core.ErrUnknownSession) {
		t.Errorf("unknown session: %v, want ErrUnknownSession", err)
	}
	if _, err := client.Act("no-such-session", "accept", ""); !errors.Is(err, core.ErrUnknownSession) {
		t.Errorf("accept unknown: %v, want ErrUnknownSession", err)
	}
	req := wireRequest("broke")
	req.Budget = 0.000001
	if _, err := client.RequestService(req); !errors.Is(err, core.ErrOverBudget) {
		t.Errorf("over budget: %v, want ErrOverBudget", err)
	}
	req = wireRequest("lost")
	req.Service = "no-such-service"
	if _, err := client.RequestService(req); !errors.Is(err, core.ErrNoService) {
		t.Errorf("no service: %v, want ErrNoService", err)
	}
	// Double-accept lands in ErrBadState.
	offer, err := client.RequestService(wireRequest("dup"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.Act(sla.ID(offer.SLAID), "accept", ""); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Act(sla.ID(offer.SLAID), "accept", ""); !errors.Is(err, core.ErrBadState) {
		t.Errorf("double accept: %v, want ErrBadState", err)
	}
	// A closed broker answers 503/closed.
	c.Broker.Close()
	if _, err := client.RequestService(wireRequest("late")); !errors.Is(err, core.ErrClosed) {
		t.Errorf("closed broker: %v, want ErrClosed", err)
	}
}

// TestWireMalformedRequests exercises the rows below the broker:
// unparseable JSON, missing IDs, wrong method, unknown endpoint.
func TestWireMalformedRequests(t *testing.T) {
	_, client := apiFixture(t, false)
	base := client.Endpoint + httpapi.Prefix

	post := func(path, body string) *http.Response {
		t.Helper()
		resp, err := http.Post(base+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		return resp
	}
	if resp := post("request", "{not json"); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad JSON = %d, want 400", resp.StatusCode)
	}
	if resp := post("accept", `{}`); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("missing id = %d, want 400", resp.StatusCode)
	}
	resp, err := http.Get(base + "request")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed || resp.Header.Get("Allow") != http.MethodPost {
		t.Errorf("GET request = %d Allow=%q, want 405 Allow=POST", resp.StatusCode, resp.Header.Get("Allow"))
	}
	if resp := post("frobnicate", `{}`); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown endpoint = %d, want 404", resp.StatusCode)
	}
}

// TestMountBesideSOAP: one listener, both transports — the JSON subtree
// must not shadow SOAP dispatch at the root, and vice versa.
func TestMountBesideSOAP(t *testing.T) {
	c, err := sim.NewCluster(sim.ClusterConfig{Plan: sim.DefaultParallelPlan()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	mux := soapx.NewMux()
	c.Broker.Mount(mux)
	httpapi.NewServer(c.Broker).Mount(mux)
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)

	soapClient := &core.Client{SOAP: soapx.Client{Endpoint: srv.URL + "/"}}
	offer, err := soapClient.RequestService(wireRequest("soap-side"))
	if err != nil {
		t.Fatalf("SOAP RequestService beside JSON mount: %v", err)
	}
	jsonClient := httpapi.NewClient(srv.URL)
	sess, err := jsonClient.Session(sla.ID(offer.SLA.SLAID))
	if err != nil {
		t.Fatalf("JSON Session of SOAP-created session: %v", err)
	}
	if sess.SLAID != offer.SLA.SLAID {
		t.Errorf("cross-transport session mismatch: %q vs %q", sess.SLAID, offer.SLA.SLAID)
	}
}

// TestWirePolicies round-trips the policy registry over the JSON
// transport: active policy, shadow candidate, and the sorted registry
// listing qosctl prints.
func TestWirePolicies(t *testing.T) {
	c, err := sim.NewCluster(sim.ClusterConfig{
		Plan:         sim.DefaultParallelPlan(),
		Policy:       "revenue-greedy",
		ShadowPolicy: "upgrade-last",
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	mux := soapx.NewMux()
	httpapi.NewServer(c.Broker).Mount(mux)
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	client := httpapi.NewClient(srv.URL)

	rep, err := client.Policies()
	if err != nil {
		t.Fatalf("Policies: %v", err)
	}
	if rep.Active != "revenue-greedy" || rep.Shadow != "upgrade-last" {
		t.Errorf("policies = %+v", rep)
	}
	want := map[string]bool{"paper": true, "revenue-greedy": true, "upgrade-last": true}
	for _, name := range rep.Policies {
		delete(want, name)
	}
	if len(want) != 0 {
		t.Errorf("registry listing %v is missing %v", rep.Policies, want)
	}

	// The endpoint is GET-only.
	resp, err := http.Post(srv.URL+httpapi.Prefix+"policies", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST policies status = %d, want 405", resp.StatusCode)
	}
}
