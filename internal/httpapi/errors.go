package httpapi

// The transport's error taxonomy: every typed broker error maps to a
// distinct (HTTP status, machine-readable code) pair, and the client
// maps the code back onto the same sentinel, so errors.Is works
// identically against a remote broker and an in-process one. The table
// is the contract the round-trip tests pin down — adding a broker
// sentinel means adding a row here.

import (
	"errors"
	"fmt"
	"net/http"

	"gqosm/internal/core"
)

// ErrTransport wraps transport-level failures (connection refused,
// reset, torn responses): the request may or may not have reached the
// broker, so callers may retry idempotent operations. Typed API errors
// are definitive answers and never wrapped in it.
var ErrTransport = errors.New("httpapi: transport error")

// errBadRequest marks malformed inputs rejected before any broker call
// (unparseable JSON, unknown fields, missing IDs).
var errBadRequest = errors.New("httpapi: bad request")

// taxonomy maps broker sentinels to wire codes. Order matters only for
// documentation; classification walks it with errors.Is, so wrapped
// errors (fmt.Errorf chains) classify like their sentinel.
var taxonomy = []struct {
	err    error
	status int
	code   string
}{
	{core.ErrNoService, http.StatusNotFound, "no_service"},
	{core.ErrUnknownSession, http.StatusNotFound, "unknown_session"},
	{core.ErrOverBudget, http.StatusPaymentRequired, "over_budget"},
	{core.ErrBadState, http.StatusConflict, "bad_state"},
	{core.ErrCannotHonor, http.StatusConflict, "cannot_honor"},
	{core.ErrHandoffPending, http.StatusConflict, "handoff_pending"},
	{core.ErrBestEffortFull, http.StatusTooManyRequests, "best_effort_full"},
	{core.ErrIntakeFull, http.StatusTooManyRequests, "intake_full"},
	{core.ErrClosed, http.StatusServiceUnavailable, "closed"},
	{core.ErrPeerUnavailable, http.StatusServiceUnavailable, "peer_unavailable"},
	{errBadRequest, http.StatusBadRequest, "bad_request"},
}

// classify maps a broker error to its wire (status, code); errors
// outside the taxonomy are internal.
func classify(err error) (int, string) {
	for _, t := range taxonomy {
		if errors.Is(err, t.err) {
			return t.status, t.code
		}
	}
	return http.StatusInternalServerError, "internal"
}

// sentinelFor maps a wire code back to the broker sentinel the server
// classified from, or nil for codes without one (bad_request, internal).
func sentinelFor(code string) error {
	for _, t := range taxonomy {
		if t.code == code {
			if t.err == errBadRequest {
				return nil
			}
			return t.err
		}
	}
	return nil
}

// decodeError reconstructs a typed error from a wire (code, message)
// pair so client-side errors.Is matches the broker's sentinels.
func decodeError(code, message string) error {
	if s := sentinelFor(code); s != nil {
		return fmt.Errorf("httpapi: %s: %w", message, s)
	}
	return fmt.Errorf("httpapi: %s (%s)", message, code)
}
