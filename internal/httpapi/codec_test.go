package httpapi

import (
	"encoding/json"
	"errors"
	"fmt"
	"testing"
	"time"

	"gqosm/internal/core"
	"gqosm/internal/resource"
	"gqosm/internal/sla"
)

// TestErrorTaxonomyRoundTrip pins the transport contract: every typed
// broker error maps to its own (status, code) pair, and decoding the
// code reconstructs an error that errors.Is-matches the original
// sentinel — remote callers branch on the same sentinels as in-process
// ones.
func TestErrorTaxonomyRoundTrip(t *testing.T) {
	seen := map[string]error{}
	for _, row := range taxonomy {
		status, code := classify(fmt.Errorf("wrapped: %w", row.err))
		if status != row.status || code != row.code {
			t.Errorf("classify(%v) = (%d, %q), want (%d, %q)", row.err, status, code, row.status, row.code)
		}
		if prev, dup := seen[code]; dup {
			t.Errorf("code %q maps both %v and %v", code, prev, row.err)
		}
		seen[code] = row.err

		decoded := decodeError(code, "boom")
		if row.err == errBadRequest {
			// bad_request has no broker sentinel to reconstruct; the
			// decoded error must still carry the code for operators.
			if decoded == nil {
				t.Errorf("decodeError(%q) = nil", code)
			}
			continue
		}
		if !errors.Is(decoded, row.err) {
			t.Errorf("decodeError(%q) does not match %v: %v", code, row.err, decoded)
		}
	}
	// Errors outside the table are internal — never leaked as a typed
	// sentinel on the wire.
	if status, code := classify(errors.New("disk on fire")); status != 500 || code != "internal" {
		t.Errorf("untyped error classified as (%d, %q)", status, code)
	}
	if err := decodeError("internal", "boom"); err == nil {
		t.Error("decodeError(internal) = nil")
	}
}

// TestTaxonomyStatusesAreDistinctPerCode guards against two sentinels
// silently collapsing onto one wire identity when rows are added.
func TestTaxonomyStatusesAreDistinctPerCode(t *testing.T) {
	type key struct {
		status int
		code   string
	}
	seen := map[key]bool{}
	for _, row := range taxonomy {
		k := key{row.status, row.code}
		if seen[k] {
			t.Errorf("duplicate wire identity %+v", k)
		}
		seen[k] = true
	}
}

func benchOffer() *core.Offer {
	return &core.Offer{
		SLA: &sla.Document{
			ID:    "site-a-sla-0042",
			State: sla.StateProposed,
			Class: sla.ClassGuaranteed,
			Allocated: resource.Capacity{
				CPU: 10, MemoryMB: 2048, DiskGB: 15, BandwidthMbps: 45,
			},
		},
		Price:      37.5,
		Expires:    time.Date(2003, 6, 16, 9, 2, 0, 0, time.UTC),
		ServiceKey: "simulation@site-a",
	}
}

// TestOfferEncodeRoundTrip: the hand-rolled appendOffer output is valid
// JSON that decodes into the wire OfferJSON the client uses.
func TestOfferEncodeRoundTrip(t *testing.T) {
	o := benchOffer()
	data := appendOffer(nil, o)
	var out OfferJSON
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatalf("appendOffer output is not JSON: %v\n%s", err, data)
	}
	if out.SLAID != string(o.SLA.ID) || out.Price != o.Price ||
		out.Class != o.SLA.Class.String() || !out.Expires.Equal(o.Expires) {
		t.Errorf("decoded %+v does not match offer %+v", out, o)
	}
	if out.Allocated.CPU != 10 || out.Allocated.BandwidthMbps != 45 {
		t.Errorf("allocated capacity lost: %+v", out.Allocated)
	}
}

// TestOfferEncodeAllocGate enforces the steady-state allocation budget
// on the JSON transport's hot-path encode: at most 8 allocs per offer
// with a pooled buffer (in practice the pooled path allocates zero; the
// gate leaves room for runtime noise).
func TestOfferEncodeAllocGate(t *testing.T) {
	o := benchOffer()
	// Warm the pool so the measurement sees steady state.
	buf := getBuf()
	*buf = appendOffer((*buf)[:0], o)
	putBuf(buf)
	avg := testing.AllocsPerRun(200, func() {
		buf := getBuf()
		*buf = appendOffer((*buf)[:0], o)
		putBuf(buf)
	})
	if avg > 8 {
		t.Errorf("offer encode allocates %.1f allocs/op, budget is 8", avg)
	}
}

// BenchmarkHTTPOfferEncode is the CI-gated number for the JSON
// transport's response encode (ns/op within tolerance, allocs/op
// exact).
func BenchmarkHTTPOfferEncode(b *testing.B) {
	o := benchOffer()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf := getBuf()
		*buf = appendOffer((*buf)[:0], o)
		putBuf(buf)
	}
}
