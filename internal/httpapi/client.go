package httpapi

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"gqosm/internal/core"
	"gqosm/internal/resource"
	"gqosm/internal/sla"
)

// Client is the typed JSON-API counterpart of core.Client: same
// operations, same retry discipline (transport failures may be
// resent; typed API errors are definitive answers and never retried),
// but wire errors come back as the broker's own sentinels — errors.Is
// against core.ErrOverBudget &c. works through the transport.
type Client struct {
	// Endpoint is the broker's base URL (no /api/v1 suffix).
	Endpoint string
	// HTTPClient defaults to http.DefaultClient.
	HTTPClient *http.Client
	// Retries is the number of extra attempts after a transport-level
	// failure; 0 keeps a single attempt.
	Retries int
	// RetryDelay is the pause between attempts, in real time.
	RetryDelay time.Duration
}

// NewClient returns a client for the broker at endpoint.
func NewClient(endpoint string) *Client {
	return &Client{Endpoint: endpoint}
}

// call posts body to op (or GETs when body is nil) and decodes the JSON
// response into out, under the transport-retry budget.
func (c *Client) call(method, op string, body, out any) error {
	var payload []byte
	if body != nil {
		var err error
		payload, err = json.Marshal(body)
		if err != nil {
			return fmt.Errorf("httpapi: marshal request: %w", err)
		}
	}
	var err error
	for attempt := 0; ; attempt++ {
		err = c.do(method, op, payload, out)
		if err == nil || !isTransportErr(err) || attempt >= c.Retries {
			return err
		}
		if c.RetryDelay > 0 {
			time.Sleep(c.RetryDelay)
		}
	}
}

func isTransportErr(err error) bool {
	for e := err; e != nil; {
		if e == ErrTransport {
			return true
		}
		u, ok := e.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		e = u.Unwrap()
	}
	return false
}

func (c *Client) do(method, op string, payload []byte, out any) error {
	hc := c.HTTPClient
	if hc == nil {
		hc = http.DefaultClient
	}
	url := c.Endpoint + Prefix + op
	var (
		resp *http.Response
		err  error
	)
	if method == http.MethodGet {
		resp, err = hc.Get(url)
	} else {
		resp, err = hc.Post(url, "application/json", bytes.NewReader(payload))
	}
	if err != nil {
		return fmt.Errorf("httpapi: %s %s: %w (%v)", method, url, ErrTransport, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxBody))
	if err != nil {
		return fmt.Errorf("httpapi: read response: %w (%v)", ErrTransport, err)
	}
	if resp.StatusCode != http.StatusOK {
		var e ErrorJSON
		if jerr := json.Unmarshal(data, &e); jerr != nil || e.Error.Code == "" {
			return fmt.Errorf("httpapi: status %d: %s", resp.StatusCode, bytes.TrimSpace(data))
		}
		return decodeError(e.Error.Code, e.Error.Message)
	}
	if out == nil {
		return nil
	}
	if err := json.Unmarshal(data, out); err != nil {
		return fmt.Errorf("httpapi: decode response: %w (%v)", ErrTransport, err)
	}
	return nil
}

// RequestService sends an admission request and returns the offer.
func (c *Client) RequestService(r core.Request) (*OfferJSON, error) {
	req := RequestJSON{
		Service:           r.Service,
		Client:            r.Client,
		Class:             r.Class.String(),
		Spec:              encodeSpec(r.Spec),
		Start:             r.Start,
		End:               r.End,
		Budget:            r.Budget,
		AcceptDegradation: r.AcceptDegradation,
		AcceptTermination: r.AcceptTermination,
		PromotionOptIn:    r.PromotionOptIn,
		ShardHint:         r.ShardHint,
	}
	var out OfferJSON
	if err := c.call(http.MethodPost, "request", &req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Act performs a lifecycle action ("accept", "reject", "invoke",
// "terminate") and returns the acknowledgement detail.
func (c *Client) Act(id sla.ID, action, reason string) (string, error) {
	var out AckJSON
	err := c.call(http.MethodPost, action, &ActionJSON{ID: string(id), Reason: reason}, &out)
	if err != nil {
		return "", err
	}
	return out.Detail, nil
}

// Renegotiate replaces a live session's QoS specification remotely.
func (c *Client) Renegotiate(id sla.ID, spec sla.Spec) (string, error) {
	sj := encodeSpec(spec)
	var out AckJSON
	err := c.call(http.MethodPost, "renegotiate", &ActionJSON{ID: string(id), Spec: &sj}, &out)
	if err != nil {
		return "", err
	}
	return out.Detail, nil
}

// BestEffort requests (or releases) best-effort capacity.
func (c *Client) BestEffort(client string, amount resource.Capacity, release bool) error {
	return c.call(http.MethodPost, "best-effort", &BestEffortJSON{
		Client:   client,
		CPU:      amount.CPU,
		MemoryMB: amount.MemoryMB,
		DiskGB:   amount.DiskGB,
		Release:  release,
	}, nil)
}

// Session fetches a session snapshot.
func (c *Client) Session(id sla.ID) (*OfferJSON, error) {
	var out OfferJSON
	if err := c.call(http.MethodGet, "session?id="+string(id), nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// LoadReport fetches the broker's current load for front-tier
// placement.
func (c *Client) LoadReport() (core.LoadReport, error) {
	var out core.LoadReport
	if err := c.call(http.MethodGet, "load", nil, &out); err != nil {
		return core.LoadReport{}, err
	}
	return out, nil
}

// Policies fetches the broker's adaptation-policy configuration: the
// active policy, the shadow candidate (if any), and the registry.
func (c *Client) Policies() (core.PolicyReport, error) {
	var out core.PolicyReport
	if err := c.call(http.MethodGet, "policies", nil, &out); err != nil {
		return core.PolicyReport{}, err
	}
	return out, nil
}
