package httpapi

// Wire types and the pooled response encoder. Requests are decoded with
// encoding/json (they arrive cold off the network; clarity wins), but
// responses on the admission hot path are appended by hand into pooled
// buffers — no reflection, no intermediate allocations — which is what
// keeps the JSON transport's steady-state encode under the allocs/op
// gate (see BenchmarkHTTPOfferEncode).

import (
	"encoding/json"
	"fmt"
	"strconv"
	"sync"
	"time"

	"gqosm/internal/core"
	"gqosm/internal/resource"
	"gqosm/internal/sla"
)

// ParamJSON is one QoS parameter. Exactly one form is used: values ⇒
// list, min/max ⇒ range, exact ⇒ exact (the same three forms as §5.3).
type ParamJSON struct {
	Exact  *float64  `json:"exact,omitempty"`
	Min    *float64  `json:"min,omitempty"`
	Max    *float64  `json:"max,omitempty"`
	Values []float64 `json:"values,omitempty"`
}

// SpecJSON is the QoS specification: parameters keyed by resource
// dimension name ("cpu", "memory-mb", "disk-gb", "bandwidth-mbps").
type SpecJSON struct {
	Params     map[string]ParamJSON `json:"params"`
	SourceIP   string               `json:"source_ip,omitempty"`
	DestIP     string               `json:"dest_ip,omitempty"`
	MaxLossPct float64              `json:"max_loss_pct,omitempty"`
}

// RequestJSON is the service-request body (POST /api/v1/request).
type RequestJSON struct {
	Service           string    `json:"service"`
	Client            string    `json:"client"`
	Class             string    `json:"class"`
	Spec              SpecJSON  `json:"spec"`
	Start             time.Time `json:"start"`
	End               time.Time `json:"end"`
	Budget            float64   `json:"budget,omitempty"`
	AcceptDegradation bool      `json:"accept_degradation,omitempty"`
	AcceptTermination bool      `json:"accept_termination,omitempty"`
	PromotionOptIn    bool      `json:"promotion_opt_in,omitempty"`
	ShardHint         int       `json:"shard_hint,omitempty"`
}

// ActionJSON is the body of the lifecycle posts (accept / reject /
// invoke / terminate) and carries the renegotiation spec when present.
type ActionJSON struct {
	ID     string    `json:"id"`
	Reason string    `json:"reason,omitempty"`
	Spec   *SpecJSON `json:"spec,omitempty"`
}

// BestEffortJSON is the best-effort grant/release body.
type BestEffortJSON struct {
	Client   string  `json:"client"`
	CPU      float64 `json:"cpu,omitempty"`
	MemoryMB float64 `json:"memory_mb,omitempty"`
	DiskGB   float64 `json:"disk_gb,omitempty"`
	Release  bool    `json:"release,omitempty"`
}

// CapacityJSON mirrors resource.Capacity on the wire.
type CapacityJSON struct {
	CPU           float64 `json:"cpu"`
	MemoryMB      float64 `json:"memory_mb"`
	DiskGB        float64 `json:"disk_gb"`
	BandwidthMbps float64 `json:"bandwidth_mbps"`
}

// Capacity converts back to the broker type.
func (c CapacityJSON) Capacity() resource.Capacity {
	return resource.Capacity{CPU: c.CPU, MemoryMB: c.MemoryMB, DiskGB: c.DiskGB, BandwidthMbps: c.BandwidthMbps}
}

// OfferJSON is the admission response and the session snapshot (GET
// /api/v1/session): the negotiated essentials, not the full SLA
// document — the SOAP path remains the reference for whole-document
// exchange.
type OfferJSON struct {
	SLAID       string       `json:"sla_id"`
	State       string       `json:"state"`
	Class       string       `json:"class"`
	Price       float64      `json:"price"`
	Expires     time.Time    `json:"expires,omitempty"`
	Allocated   CapacityJSON `json:"allocated"`
	Compensated bool         `json:"compensated,omitempty"`
	ServiceKey  string       `json:"service_key,omitempty"`
}

// AckJSON acknowledges lifecycle posts.
type AckJSON struct {
	OK     bool   `json:"ok"`
	Detail string `json:"detail,omitempty"`
}

// ErrorJSON is the error envelope every non-2xx response carries.
type ErrorJSON struct {
	Error struct {
		Code    string `json:"code"`
		Message string `json:"message"`
	} `json:"error"`
}

// kindByName maps wire dimension names back to resource kinds.
var kindByName = func() map[string]resource.Kind {
	m := make(map[string]resource.Kind, len(resource.Kinds))
	for _, k := range resource.Kinds {
		m[k.String()] = k
	}
	return m
}()

// decodeSpec converts a wire spec to the broker type.
func decodeSpec(in SpecJSON) (sla.Spec, error) {
	params := make([]sla.Param, 0, len(in.Params))
	for name, p := range in.Params {
		kind, ok := kindByName[name]
		if !ok {
			return sla.Spec{}, fmt.Errorf("%w: unknown resource dimension %q", errBadRequest, name)
		}
		switch {
		case len(p.Values) > 0:
			params = append(params, sla.List(kind, p.Values...))
		case p.Min != nil || p.Max != nil:
			var lo, hi float64
			if p.Min != nil {
				lo = *p.Min
			}
			if p.Max != nil {
				hi = *p.Max
			}
			params = append(params, sla.Range(kind, lo, hi))
		case p.Exact != nil:
			params = append(params, sla.Exact(kind, *p.Exact))
		default:
			return sla.Spec{}, fmt.Errorf("%w: parameter %q needs exact, min/max or values", errBadRequest, name)
		}
	}
	spec := sla.NewSpec(params...)
	spec.SourceIP = in.SourceIP
	spec.DestIP = in.DestIP
	spec.MaxPacketLossPct = in.MaxLossPct
	return spec, nil
}

// encodeSpec converts a broker spec to the wire form (client side).
func encodeSpec(s sla.Spec) SpecJSON {
	out := SpecJSON{
		Params:     make(map[string]ParamJSON, len(s.Params)),
		SourceIP:   s.SourceIP,
		DestIP:     s.DestIP,
		MaxLossPct: s.MaxPacketLossPct,
	}
	for kind, p := range s.Params {
		var pj ParamJSON
		switch p.Form {
		case sla.FormExact:
			v := p.Exact
			pj.Exact = &v
		case sla.FormRange:
			lo, hi := p.Min, p.Max
			pj.Min, pj.Max = &lo, &hi
		case sla.FormList:
			pj.Values = p.Values
		}
		out.Params[kind.String()] = pj
	}
	return out
}

// decodeRequest converts the wire request to the broker type.
func decodeRequest(in RequestJSON) (core.Request, error) {
	class, err := sla.ParseClass(in.Class)
	if err != nil {
		return core.Request{}, fmt.Errorf("%w: %v", errBadRequest, err)
	}
	spec, err := decodeSpec(in.Spec)
	if err != nil {
		return core.Request{}, err
	}
	return core.Request{
		Service:           in.Service,
		Client:            in.Client,
		Class:             class,
		Spec:              spec,
		Start:             in.Start,
		End:               in.End,
		Budget:            in.Budget,
		AcceptDegradation: in.AcceptDegradation,
		AcceptTermination: in.AcceptTermination,
		PromotionOptIn:    in.PromotionOptIn,
		ShardHint:         in.ShardHint,
	}, nil
}

// ---- pooled hand-rolled encoder ------------------------------------

// bufPool recycles response scratch buffers. Buffers that grew past
// maxPooledBuf are dropped rather than pinned by one oversized payload
// (same discipline as soapx).
var bufPool = sync.Pool{New: func() any {
	b := make([]byte, 0, 512)
	return &b
}}

const maxPooledBuf = 64 << 10

func getBuf() *[]byte {
	p := bufPool.Get().(*[]byte)
	*p = (*p)[:0]
	return p
}

func putBuf(p *[]byte) {
	if cap(*p) <= maxPooledBuf {
		bufPool.Put(p)
	}
}

const hexdigits = "0123456789abcdef"

// appendString appends s as a JSON string: quotes and backslashes
// escaped, control bytes as \u00XX, everything else (including raw
// UTF-8) passed through — valid JSON without encoding/json's
// reflection.
func appendString(dst []byte, s string) []byte {
	dst = append(dst, '"')
	for i := 0; i < len(s); i++ {
		switch c := s[i]; {
		case c == '"':
			dst = append(dst, '\\', '"')
		case c == '\\':
			dst = append(dst, '\\', '\\')
		case c < 0x20:
			dst = append(dst, '\\', 'u', '0', '0', hexdigits[c>>4], hexdigits[c&0xf])
		default:
			dst = append(dst, c)
		}
	}
	return append(dst, '"')
}

func appendFloat(dst []byte, v float64) []byte {
	return strconv.AppendFloat(dst, v, 'g', -1, 64)
}

func appendCapacity(dst []byte, c resource.Capacity) []byte {
	dst = append(dst, `{"cpu":`...)
	dst = appendFloat(dst, c.CPU)
	dst = append(dst, `,"memory_mb":`...)
	dst = appendFloat(dst, c.MemoryMB)
	dst = append(dst, `,"disk_gb":`...)
	dst = appendFloat(dst, c.DiskGB)
	dst = append(dst, `,"bandwidth_mbps":`...)
	dst = appendFloat(dst, c.BandwidthMbps)
	return append(dst, '}')
}

func appendTime(dst []byte, t time.Time) []byte {
	dst = append(dst, '"')
	dst = t.AppendFormat(dst, time.RFC3339Nano)
	return append(dst, '"')
}

// appendOffer renders the admission response — the JSON transport's
// hot-path encode.
func appendOffer(dst []byte, o *core.Offer) []byte {
	dst = append(dst, `{"sla_id":`...)
	dst = appendString(dst, string(o.SLA.ID))
	dst = append(dst, `,"state":`...)
	dst = appendString(dst, o.SLA.State.String())
	dst = append(dst, `,"class":`...)
	dst = appendString(dst, o.SLA.Class.String())
	dst = append(dst, `,"price":`...)
	dst = appendFloat(dst, o.Price)
	dst = append(dst, `,"expires":`...)
	dst = appendTime(dst, o.Expires)
	dst = append(dst, `,"allocated":`...)
	dst = appendCapacity(dst, o.SLA.Allocated)
	if o.Compensated {
		dst = append(dst, `,"compensated":true`...)
	}
	if o.ServiceKey != "" {
		dst = append(dst, `,"service_key":`...)
		dst = appendString(dst, string(o.ServiceKey))
	}
	return append(dst, '}')
}

// appendSession renders a session snapshot from its SLA document.
func appendSession(dst []byte, doc *sla.Document) []byte {
	dst = append(dst, `{"sla_id":`...)
	dst = appendString(dst, string(doc.ID))
	dst = append(dst, `,"state":`...)
	dst = appendString(dst, doc.State.String())
	dst = append(dst, `,"class":`...)
	dst = appendString(dst, doc.Class.String())
	dst = append(dst, `,"price":`...)
	dst = appendFloat(dst, doc.Price)
	dst = append(dst, `,"allocated":`...)
	dst = appendCapacity(dst, doc.Allocated)
	return append(dst, '}')
}

// appendAck renders the lifecycle acknowledgement.
func appendAck(dst []byte, detail string) []byte {
	dst = append(dst, `{"ok":true`...)
	if detail != "" {
		dst = append(dst, `,"detail":`...)
		dst = appendString(dst, detail)
	}
	return append(dst, '}')
}

// appendError renders the error envelope.
func appendError(dst []byte, code, message string) []byte {
	dst = append(dst, `{"error":{"code":`...)
	dst = appendString(dst, code)
	dst = append(dst, `,"message":`...)
	dst = appendString(dst, message)
	return append(dst, `}}`...)
}

// marshalJSON is the cold-path encoder for responses without a
// hand-rolled appender (load reports).
func marshalJSON(v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		// All marshaled types are plain structs; this cannot fail.
		return []byte(`{"error":{"code":"internal","message":"encode"}}`)
	}
	return b
}
