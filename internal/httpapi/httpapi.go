// Package httpapi exposes the broker over a compact JSON/HTTP API,
// mounted next to the SOAP endpoint on the same soapx.Mux (via
// HandleHTTP, so one listener serves both). It is the lean transport
// for high-volume clients: no envelope parse, no XML reflection,
// pooled response encoding, and — when the broker's intake is enabled —
// admissions ride the group-commit batch path via SubmitWait. SOAP
// remains the paper-faithful reference transport.
package httpapi

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"

	"gqosm/internal/core"
	"gqosm/internal/obs"
	"gqosm/internal/sla"
	"gqosm/internal/soapx"
)

// Prefix is the URL subtree the API is mounted on.
const Prefix = "/api/v1/"

// maxBody bounds request bodies (the JSON requests are small; 1 MiB is
// generous).
const maxBody = 1 << 20

// ops enumerates the API's operations; per-op request counters are
// pre-registered so the hot path pays one map lookup, no registry lock.
var ops = []string{"request", "accept", "reject", "invoke", "terminate",
	"renegotiate", "best-effort", "session", "load", "policies"}

// Server serves the JSON API for one broker.
type Server struct {
	b    *core.Broker
	reqs map[string]*obs.Counter
	errs *obs.Counter
}

// NewServer builds a server over the broker, registering its
// per-transport counters on the broker's obs registry (the SOAP side
// registers the same family with transport="soap", so dashboards see
// traffic split by transport and operation).
func NewServer(b *core.Broker) *Server {
	reg := b.Obs()
	s := &Server{
		b:    b,
		reqs: make(map[string]*obs.Counter, len(ops)),
		errs: reg.Counter("gqosm_transport_errors_total",
			"Requests answered with an error, per transport", "transport", "http"),
	}
	for _, op := range ops {
		s.reqs[op] = reg.Counter("gqosm_transport_requests_total",
			"Requests served per transport and operation",
			"transport", "http", "op", op)
	}
	return s
}

// Mount installs the API on the mux under Prefix.
func (s *Server) Mount(mux *soapx.Mux) {
	mux.HandleHTTP(Prefix, s)
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	op := strings.TrimPrefix(r.URL.Path, Prefix)
	if c, ok := s.reqs[op]; ok {
		c.Inc()
	}
	switch op {
	case "request":
		s.post(w, r, s.handleRequest)
	case "accept", "reject", "invoke", "terminate":
		s.post(w, r, func(w http.ResponseWriter, body []byte) error {
			return s.handleAction(w, op, body)
		})
	case "renegotiate":
		s.post(w, r, s.handleRenegotiate)
	case "best-effort":
		s.post(w, r, s.handleBestEffort)
	case "session":
		if r.Method != http.MethodGet {
			s.methodNotAllowed(w, http.MethodGet)
			return
		}
		s.finish(w, s.handleSession(w, r))
	case "load":
		if r.Method != http.MethodGet {
			s.methodNotAllowed(w, http.MethodGet)
			return
		}
		s.writeBody(w, http.StatusOK, marshalJSON(s.b.LoadReport()))
	case "policies":
		if r.Method != http.MethodGet {
			s.methodNotAllowed(w, http.MethodGet)
			return
		}
		s.writeBody(w, http.StatusOK, marshalJSON(s.b.Policies()))
	default:
		s.writeError(w, http.StatusNotFound, "not_found", "unknown endpoint "+r.URL.Path)
	}
}

// post reads a POST body and runs the handler, converting its error to
// the wire taxonomy.
func (s *Server) post(w http.ResponseWriter, r *http.Request, h func(http.ResponseWriter, []byte) error) {
	if r.Method != http.MethodPost {
		s.methodNotAllowed(w, http.MethodPost)
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBody))
	if err != nil {
		s.finish(w, fmt.Errorf("%w: read body: %v", errBadRequest, err))
		return
	}
	s.finish(w, h(w, body))
}

// finish writes err through the taxonomy; nil means the handler already
// wrote its response.
func (s *Server) finish(w http.ResponseWriter, err error) {
	if err == nil {
		return
	}
	status, code := classify(err)
	s.writeError(w, status, code, err.Error())
}

func (s *Server) methodNotAllowed(w http.ResponseWriter, allow string) {
	w.Header().Set("Allow", allow)
	s.writeError(w, http.StatusMethodNotAllowed, "method_not_allowed", "use "+allow)
}

func (s *Server) writeError(w http.ResponseWriter, status int, code, message string) {
	s.errs.Inc()
	buf := getBuf()
	*buf = appendError(*buf, code, message)
	s.writeBody(w, status, *buf)
	putBuf(buf)
}

func (s *Server) writeBody(w http.ResponseWriter, status int, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	if status != http.StatusOK {
		w.WriteHeader(status)
	}
	_, _ = w.Write(body)
}

// handleRequest is the admission endpoint. With the intake enabled the
// request rides the group-commit batch path: concurrent admissions
// queued behind the same flush leader land in one allocator pass and
// one WAL fsync.
func (s *Server) handleRequest(w http.ResponseWriter, body []byte) error {
	var in RequestJSON
	if err := json.Unmarshal(body, &in); err != nil {
		return fmt.Errorf("%w: %v", errBadRequest, err)
	}
	req, err := decodeRequest(in)
	if err != nil {
		return err
	}
	var offer *core.Offer
	if s.b.IntakeEnabled() {
		offer, err = s.b.SubmitWait(req)
	} else {
		offer, err = s.b.RequestService(req)
	}
	if err != nil {
		return err
	}
	buf := getBuf()
	*buf = appendOffer(*buf, offer)
	s.writeBody(w, http.StatusOK, *buf)
	putBuf(buf)
	return nil
}

func (s *Server) handleAction(w http.ResponseWriter, op string, body []byte) error {
	var in ActionJSON
	if err := json.Unmarshal(body, &in); err != nil {
		return fmt.Errorf("%w: %v", errBadRequest, err)
	}
	if in.ID == "" {
		return fmt.Errorf("%w: missing id", errBadRequest)
	}
	id := sla.ID(in.ID)
	detail := ""
	switch op {
	case "accept":
		if err := s.b.Accept(id); err != nil {
			return err
		}
	case "reject":
		if err := s.b.Reject(id); err != nil {
			return err
		}
	case "invoke":
		job, err := s.b.Invoke(id)
		if err != nil {
			return err
		}
		detail = fmt.Sprintf("job %s pid %d", job.ID, job.PID)
	case "terminate":
		reason := in.Reason
		if reason == "" {
			reason = "terminated by client"
		}
		if err := s.b.Terminate(id, reason); err != nil {
			return err
		}
	}
	buf := getBuf()
	*buf = appendAck(*buf, detail)
	s.writeBody(w, http.StatusOK, *buf)
	putBuf(buf)
	return nil
}

func (s *Server) handleRenegotiate(w http.ResponseWriter, body []byte) error {
	var in ActionJSON
	if err := json.Unmarshal(body, &in); err != nil {
		return fmt.Errorf("%w: %v", errBadRequest, err)
	}
	if in.ID == "" || in.Spec == nil {
		return fmt.Errorf("%w: renegotiate needs id and spec", errBadRequest)
	}
	spec, err := decodeSpec(*in.Spec)
	if err != nil {
		return err
	}
	res, err := s.b.Renegotiate(sla.ID(in.ID), spec)
	if err != nil {
		return err
	}
	buf := getBuf()
	*buf = appendAck(*buf, fmt.Sprintf("reallocated %v -> %v, price %+.2f",
		res.Old, res.New, res.PriceDelta))
	s.writeBody(w, http.StatusOK, *buf)
	putBuf(buf)
	return nil
}

func (s *Server) handleBestEffort(w http.ResponseWriter, body []byte) error {
	var in BestEffortJSON
	if err := json.Unmarshal(body, &in); err != nil {
		return fmt.Errorf("%w: %v", errBadRequest, err)
	}
	if in.Client == "" {
		return fmt.Errorf("%w: missing client", errBadRequest)
	}
	if in.Release {
		if err := s.b.BestEffortRelease(in.Client); err != nil {
			return err
		}
	} else {
		amount := CapacityJSON{CPU: in.CPU, MemoryMB: in.MemoryMB, DiskGB: in.DiskGB}.Capacity()
		if err := s.b.BestEffortRequest(in.Client, amount); err != nil {
			return err
		}
	}
	buf := getBuf()
	*buf = appendAck(*buf, "")
	s.writeBody(w, http.StatusOK, *buf)
	putBuf(buf)
	return nil
}

func (s *Server) handleSession(w http.ResponseWriter, r *http.Request) error {
	id := r.URL.Query().Get("id")
	if id == "" {
		return fmt.Errorf("%w: missing id", errBadRequest)
	}
	doc, err := s.b.Session(sla.ID(id))
	if err != nil {
		return err
	}
	buf := getBuf()
	*buf = appendSession(*buf, doc)
	s.writeBody(w, http.StatusOK, *buf)
	putBuf(buf)
	return nil
}
