// Package pricing implements the G-QoSM cost model (paper §5.3): every QoS
// parameter p_i has a constant unit rate c_i set by the pricing formula of
// the user's service class, the monetary cost of one parameter is
// cost(p_i) = c_i · p_i, and the cost of a service's QoS set is
// Σ_i c_i · p_i. The broker's optimization heuristic maximizes the sum of
// these service costs across active services, and the pricing component
// "plays a major role in proposing new QoS offers" during re-negotiation —
// including the promotion offers of §4 scenario 2.
package pricing

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"gqosm/internal/resource"
	"gqosm/internal/sla"
)

// Rates holds the per-unit rate c_i for each resource dimension.
type Rates struct {
	// PerCPUNode is the rate per processor node per session.
	PerCPUNode float64
	// PerMemoryMB is the rate per megabyte of memory.
	PerMemoryMB float64
	// PerDiskGB is the rate per gigabyte of disk.
	PerDiskGB float64
	// PerMbps is the rate per Mbps of bandwidth.
	PerMbps float64
}

// Rate returns c_i for dimension k.
func (r Rates) Rate(k resource.Kind) float64 {
	switch k {
	case resource.CPU:
		return r.PerCPUNode
	case resource.MemoryMB:
		return r.PerMemoryMB
	case resource.DiskGB:
		return r.PerDiskGB
	case resource.BandwidthMbps:
		return r.PerMbps
	default:
		return 0
	}
}

// Cost returns Σ_i c_i · p_i for the capacity c.
func (r Rates) Cost(c resource.Capacity) float64 {
	total := 0.0
	for _, k := range resource.Kinds {
		total += r.Rate(k) * c.Get(k)
	}
	return total
}

// DefaultRates are the rates used by examples and experiments: chosen so a
// §5.6-scale request (10 nodes, 2 GB, 15 GB disk, 667 Mbps aggregate) costs
// a round ~100 units for the guaranteed class.
var DefaultRates = Rates{
	PerCPUNode:  4.0,
	PerMemoryMB: 0.005,
	PerDiskGB:   0.2,
	PerMbps:     0.05,
}

// Model is the class-aware pricing formula: base rates scaled by a
// per-class multiplier (the paper: "users who are willing to pay different
// amounts to access Grid services" and providers that "alter their
// provision costs" per class).
type Model struct {
	Base Rates
	// ClassFactor scales the base rates per service class. Guaranteed
	// service costs more than controlled-load, which costs more than
	// best-effort.
	ClassFactor map[sla.Class]float64
	// PromotionDiscount is the fractional discount applied to the
	// *upgrade increment* in a promotion offer (scenario 2c), e.g. 0.25
	// means the upgrade is offered at 75% of its list price.
	PromotionDiscount float64
}

// NewModel returns a model with the paper-motivated default class factors.
func NewModel(base Rates) *Model {
	return &Model{
		Base: base,
		ClassFactor: map[sla.Class]float64{
			sla.ClassGuaranteed:     1.5,
			sla.ClassControlledLoad: 1.0,
			sla.ClassBestEffort:     0.25,
		},
		PromotionDiscount: 0.25,
	}
}

// ClassRates returns the effective rates for a class.
func (m *Model) ClassRates(class sla.Class) Rates {
	f, ok := m.ClassFactor[class]
	if !ok {
		f = 1.0
	}
	return Rates{
		PerCPUNode:  m.Base.PerCPUNode * f,
		PerMemoryMB: m.Base.PerMemoryMB * f,
		PerDiskGB:   m.Base.PerDiskGB * f,
		PerMbps:     m.Base.PerMbps * f,
	}
}

// Cost returns the session cost of delivering capacity c to a client of
// the given class.
func (m *Model) Cost(class sla.Class, c resource.Capacity) float64 {
	return m.ClassRates(class).Cost(c)
}

// CostOfDocument prices an SLA at its currently allocated capacity,
// recursing into sub-SLAs of composite agreements.
func (m *Model) CostOfDocument(d *sla.Document) float64 {
	if len(d.SubSLAs) == 0 {
		return m.Cost(d.Class, d.Allocated)
	}
	total := 0.0
	for _, sub := range d.SubSLAs {
		total += m.CostOfDocument(sub)
	}
	return total
}

// PromotionOffer is a discounted upgrade proposed to a running service
// when released capacity becomes available (scenario 2c: "presenting
// promotion offers to existing services for upgrading their QoS to attract
// additional resource requests").
type PromotionOffer struct {
	SLA      sla.ID
	From, To resource.Capacity
	// ListPrice is the undiscounted price of the upgrade increment.
	ListPrice float64
	// OfferPrice is the discounted price actually proposed.
	OfferPrice float64
	Expires    time.Time
}

// Promotion builds a promotion offer for upgrading an SLA from its current
// allocation to the proposed capacity. It returns false when the proposal
// is not an upgrade or the SLA did not opt in to promotion offers.
func (m *Model) Promotion(d *sla.Document, to resource.Capacity, expires time.Time) (PromotionOffer, bool) {
	if !d.Adapt.PromotionOffers {
		return PromotionOffer{}, false
	}
	increment := to.Sub(d.Allocated)
	if !increment.IsNonNegative() || increment.IsZero() {
		return PromotionOffer{}, false
	}
	list := m.Cost(d.Class, increment)
	return PromotionOffer{
		SLA:        d.ID,
		From:       d.Allocated,
		To:         to,
		ListPrice:  list,
		OfferPrice: list * (1 - m.PromotionDiscount),
		Expires:    expires,
	}, true
}

// PenaltyFor computes the monetary penalty owed for a violation episode of
// the given duration below the SLA floor.
func PenaltyFor(p sla.Penalty, below time.Duration) float64 {
	return p.PerViolation + p.PerHourBelow*below.Hours()
}

// EntryKind labels ledger entries.
type EntryKind int

// Ledger entry kinds.
const (
	EntryCharge EntryKind = iota + 1 // revenue from a client
	EntryPenalty
	EntryPromotion // revenue from an accepted promotion offer
	EntryRefund
)

// String returns the entry-kind name.
func (k EntryKind) String() string {
	switch k {
	case EntryCharge:
		return "charge"
	case EntryPenalty:
		return "penalty"
	case EntryPromotion:
		return "promotion"
	case EntryRefund:
		return "refund"
	default:
		return fmt.Sprintf("entry(%d)", int(k))
	}
}

// Entry is one accounting record.
type Entry struct {
	Kind   EntryKind
	SLA    sla.ID
	Amount float64 // positive = provider revenue; positive penalties/refunds reduce NetRevenue
	At     time.Time
	Note   string
}

// Ledger accumulates the provider's accounting (the "QoS Accounting"
// function of Fig. 3). It is safe for concurrent use.
//
// Running totals (net revenue, per-kind sums) are maintained on every
// Record, so NetRevenue and Total are O(1) however long the ledger gets —
// the invariant oracle reads NetRevenue at every soak quiesce point, and
// the historical fold-over-all-entries made that O(run length²).
// Retention optionally bounds the entry list itself for long-run use;
// the running totals stay exact across evictions.
type Ledger struct {
	mu      sync.Mutex
	entries []Entry
	// retain bounds len(entries); 0 keeps everything (the default).
	retain int
	// evicted counts entries dropped by retention.
	evicted int64
	// net is the running charges+promotions−penalties−refunds.
	net float64
	// totals accumulates per-kind amounts (always positive magnitudes).
	totals map[EntryKind]float64
	// observer, when set, sees every entry at the end of Record while
	// l.mu is still held — the durability layer relies on that atomicity
	// to journal the entry in the same order it changed the aggregates.
	observer func(Entry)
}

// NewLedger returns an empty ledger.
func NewLedger() *Ledger { return &Ledger{totals: make(map[EntryKind]float64)} }

// SetRetention bounds the retained entry list to the most recent n
// records (0 restores unlimited retention). Aggregates — NetRevenue,
// Total — are unaffected: they are running sums over every entry ever
// recorded. Entries and BySLA only see what is retained.
func (l *Ledger) SetRetention(n int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if n < 0 {
		n = 0
	}
	l.retain = n
	l.trimLocked()
}

func (l *Ledger) trimLocked() {
	if l.retain <= 0 || len(l.entries) <= l.retain {
		return
	}
	drop := len(l.entries) - l.retain
	l.evicted += int64(drop)
	kept := make([]Entry, l.retain, l.retain*2)
	copy(kept, l.entries[drop:])
	l.entries = kept
}

// Record appends an entry.
func (l *Ledger) Record(e Entry) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.totals == nil {
		l.totals = make(map[EntryKind]float64)
	}
	switch e.Kind {
	case EntryCharge, EntryPromotion:
		l.net += e.Amount
	case EntryPenalty, EntryRefund:
		l.net -= e.Amount
	}
	l.totals[e.Kind] += e.Amount
	l.entries = append(l.entries, e)
	// Amortized trim: let the slice run to 2× the cap, then copy once.
	if l.retain > 0 && len(l.entries) >= 2*l.retain {
		l.trimLocked()
	}
	if l.observer != nil {
		l.observer(e)
	}
}

// SetObserver installs fn to be called with every entry at the end of
// Record, under the ledger lock (so the observed order is exactly the
// aggregate-update order). nil removes the observer. The callback must
// not call back into the ledger.
func (l *Ledger) SetObserver(fn func(Entry)) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.observer = fn
}

// State is the ledger's full exported state, for durability snapshots.
type State struct {
	Entries []Entry
	Retain  int
	Evicted int64
	Net     float64
	Totals  map[EntryKind]float64
}

// ExportWith calls fn with a deep copy of the ledger state while l.mu is
// held. Holding the lock through the callback lets a durability snapshot
// read its log fence inside fn, guaranteeing every entry is either in
// the exported state or journaled past the fence — never both, never
// neither.
func (l *Ledger) ExportWith(fn func(State)) {
	l.mu.Lock()
	defer l.mu.Unlock()
	st := State{
		Entries: append([]Entry(nil), l.entries...),
		Retain:  l.retain,
		Evicted: l.evicted,
		Net:     l.net,
		Totals:  make(map[EntryKind]float64, len(l.totals)),
	}
	for k, v := range l.totals {
		st.Totals[k] = v
	}
	fn(st)
}

// RestoreLedger rebuilds a ledger from exported state.
func RestoreLedger(st State) *Ledger {
	l := &Ledger{
		entries: append([]Entry(nil), st.Entries...),
		retain:  st.Retain,
		evicted: st.Evicted,
		net:     st.Net,
		totals:  make(map[EntryKind]float64, len(st.Totals)),
	}
	for k, v := range st.Totals {
		l.totals[k] = v
	}
	return l
}

// Charge records client revenue for an SLA.
func (l *Ledger) Charge(id sla.ID, amount float64, at time.Time, note string) {
	l.Record(Entry{Kind: EntryCharge, SLA: id, Amount: amount, At: at, Note: note})
}

// Penalize records a violation penalty paid by the provider.
func (l *Ledger) Penalize(id sla.ID, amount float64, at time.Time, note string) {
	l.Record(Entry{Kind: EntryPenalty, SLA: id, Amount: amount, At: at, Note: note})
}

// NetRevenue returns charges + promotions − penalties − refunds. It is a
// running sum over every entry ever recorded (retention does not affect
// it) and costs O(1).
func (l *Ledger) NetRevenue() float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.net
}

// Total returns the accumulated amount recorded under kind, across every
// entry ever recorded (retention does not affect it).
func (l *Ledger) Total(kind EntryKind) float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.totals[kind]
}

// Evicted reports how many entries retention has dropped.
func (l *Ledger) Evicted() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.evicted
}

// BySLA returns the net amount attributed to each SLA, sorted by ID.
// Under retention it aggregates only the retained window.
func (l *Ledger) BySLA() []struct {
	SLA sla.ID
	Net float64
} {
	l.mu.Lock()
	defer l.mu.Unlock()
	agg := make(map[sla.ID]float64)
	for _, e := range l.entries {
		switch e.Kind {
		case EntryCharge, EntryPromotion:
			agg[e.SLA] += e.Amount
		case EntryPenalty, EntryRefund:
			agg[e.SLA] -= e.Amount
		}
	}
	ids := make([]sla.ID, 0, len(agg))
	for id := range agg {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	out := make([]struct {
		SLA sla.ID
		Net float64
	}, len(ids))
	for i, id := range ids {
		out[i].SLA = id
		out[i].Net = agg[id]
	}
	return out
}

// Entries returns a copy of the retained entries in insertion order (all
// entries when retention is off).
func (l *Ledger) Entries() []Entry {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]Entry(nil), l.entries...)
}
