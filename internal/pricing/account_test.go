package pricing

import (
	"fmt"
	"math"
	"sync"
	"testing"
	"time"

	"gqosm/internal/resource"
	"gqosm/internal/sla"
)

func capOf(cpu, mem, disk, bw float64) resource.Capacity {
	return resource.Capacity{CPU: cpu, MemoryMB: mem, DiskGB: disk, BandwidthMbps: bw}
}

func slaN(i int) sla.ID { return sla.ID(fmt.Sprintf("sla-%04d", i)) }

func TestAccountDebitCredit(t *testing.T) {
	a := NewAccount(100)
	if a.Exhausted() {
		t.Fatal("fresh account exhausted")
	}
	if !a.Debit(60) {
		t.Fatal("Debit(60) within limit refused")
	}
	if got := a.Remaining(); math.Abs(got-40) > 1e-9 {
		t.Fatalf("Remaining = %g, want 40", got)
	}
	if a.Debit(41) {
		t.Fatal("Debit(41) over limit accepted")
	}
	if got := a.Spent(); math.Abs(got-60) > 1e-9 {
		t.Fatalf("failed debit changed Spent: %g", got)
	}
	if !a.Debit(40) {
		t.Fatal("Debit(40) exactly to limit refused")
	}
	if !a.Exhausted() {
		t.Fatal("account at limit not exhausted")
	}
	if a.Debit(0.01) {
		t.Fatal("debit on exhausted account accepted")
	}
	a.Credit(25)
	if a.Exhausted() {
		t.Fatal("refund did not clear exhaustion")
	}
	if !a.Debit(25) {
		t.Fatal("debit of refunded headroom refused")
	}
}

func TestAccountEdgeCases(t *testing.T) {
	unconstrained := NewAccount(0)
	if !unconstrained.Debit(1e12) {
		t.Fatal("unconstrained account refused a debit")
	}
	if unconstrained.Exhausted() {
		t.Fatal("unconstrained account reported exhausted")
	}
	if got := unconstrained.Remaining(); got != 0 {
		t.Fatalf("unconstrained Remaining = %g, want 0 sentinel", got)
	}

	a := NewAccount(10)
	if a.Debit(-5) {
		t.Fatal("negative debit accepted")
	}
	a.Credit(-3) // no-op
	if got := a.Spent(); got != 0 {
		t.Fatalf("negative credit changed Spent: %g", got)
	}
	a.Debit(4)
	a.Credit(100) // clamped: spending never goes negative
	if got := a.Spent(); got != 0 {
		t.Fatalf("over-credit left Spent = %g, want 0", got)
	}
	if neg := NewAccount(-7); neg.Limit() != 0 {
		t.Fatalf("negative limit not normalized: %g", neg.Limit())
	}
}

// Budget exhaustion mid-session: a tenant holding a session runs out of
// budget when an upgrade is priced, keeps the session at its current
// spend, and regains headroom from a degradation refund — the economic
// scenario's churn pattern in miniature.
func TestAccountExhaustionMidSession(t *testing.T) {
	m := NewModel(DefaultRates)
	a := NewAccount(50)

	base := m.Cost(sla.ClassControlledLoad, capOf(8, 1024, 10, 0))
	if base >= 50 {
		t.Fatalf("test premise broken: base cost %g >= budget", base)
	}
	if !a.Debit(base) {
		t.Fatal("admission debit refused")
	}
	upgrade := m.Cost(sla.ClassControlledLoad, capOf(4, 512, 5, 0))
	if a.Debit(upgrade) && a.Spent() > 50 {
		t.Fatal("upgrade debit breached the budget")
	}
	// Degradation refund restores headroom.
	refund := m.Cost(sla.ClassControlledLoad, capOf(2, 256, 2, 0))
	before := a.Remaining()
	a.Credit(refund)
	if a.Limit() > 0 && a.Remaining() < before {
		t.Fatal("refund reduced remaining budget")
	}
}

func TestAccountConcurrentDebits(t *testing.T) {
	// 200 goroutines race 1-unit debits against a 100-unit budget:
	// exactly 100 must win, and Spent must equal the winners.
	a := NewAccount(100)
	var wg sync.WaitGroup
	wins := make(chan bool, 200)
	for i := 0; i < 200; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			wins <- a.Debit(1)
		}()
	}
	wg.Wait()
	close(wins)
	won := 0
	for ok := range wins {
		if ok {
			won++
		}
	}
	if won != 100 {
		t.Fatalf("%d debits won, want exactly 100", won)
	}
	if got := a.Spent(); math.Abs(got-100) > 1e-9 {
		t.Fatalf("Spent = %g, want 100", got)
	}
	if !a.Exhausted() {
		t.Fatal("account not exhausted after budget consumed")
	}
}

func TestLedgerRunningNetMatchesFold(t *testing.T) {
	l := NewLedger()
	kinds := []EntryKind{EntryCharge, EntryPenalty, EntryPromotion, EntryRefund}
	for i := 0; i < 1000; i++ {
		l.Record(Entry{
			Kind:   kinds[i%len(kinds)],
			SLA:    slaN(i % 17),
			Amount: float64(i%13) * 1.75,
			At:     at.Add(time.Duration(i) * time.Minute),
		})
	}
	// Recompute by folding the retained entries (retention is off, so
	// that is every entry) and compare with the running total.
	fold := 0.0
	for _, e := range l.Entries() {
		switch e.Kind {
		case EntryCharge, EntryPromotion:
			fold += e.Amount
		case EntryPenalty, EntryRefund:
			fold -= e.Amount
		}
	}
	if got := l.NetRevenue(); got != fold {
		t.Fatalf("running NetRevenue %g != folded %g", got, fold)
	}
	if got := l.Total(EntryCharge) + l.Total(EntryPromotion) - l.Total(EntryPenalty) - l.Total(EntryRefund); math.Abs(got-fold) > 1e-9 {
		t.Fatalf("per-kind totals disagree with fold: %g vs %g", got, fold)
	}
}

func TestLedgerRetention(t *testing.T) {
	l := NewLedger()
	l.SetRetention(100)
	for i := 0; i < 1000; i++ {
		l.Charge(slaN(i), 2, at, "c")
	}
	if n := len(l.Entries()); n < 100 || n >= 200 {
		t.Fatalf("retained %d entries, want within [100, 200) under amortized trim", n)
	}
	if got := l.NetRevenue(); math.Abs(got-2000) > 1e-9 {
		t.Fatalf("NetRevenue = %g after eviction, want 2000", got)
	}
	if l.Evicted() < 800 {
		t.Fatalf("Evicted = %d, want >= 800", l.Evicted())
	}
	// The retained window holds the most recent entries.
	entries := l.Entries()
	if first := entries[0].SLA; first < slaN(800) {
		t.Fatalf("oldest retained entry is %s, want recent tail", first)
	}
	// Shrinking the cap trims immediately; 0 disables further trimming.
	l.SetRetention(10)
	if n := len(l.Entries()); n != 10 {
		t.Fatalf("after SetRetention(10): %d entries", n)
	}
	l.SetRetention(0)
	for i := 0; i < 50; i++ {
		l.Charge(slaN(i), 1, at, "c")
	}
	if n := len(l.Entries()); n != 60 {
		t.Fatalf("retention off: %d entries, want 60", n)
	}
}

func TestLedgerConcurrentRecordAndRead(t *testing.T) {
	l := NewLedger()
	l.SetRetention(64)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				l.Charge(slaN(w), 1, at, "c")
				if i%7 == 0 {
					_ = l.NetRevenue()
					_ = l.Entries()
					_ = l.BySLA()
				}
			}
		}(w)
	}
	wg.Wait()
	if got := l.NetRevenue(); math.Abs(got-4000) > 1e-9 {
		t.Fatalf("NetRevenue = %g, want 4000", got)
	}
	if n := len(l.Entries()); n > 128 {
		t.Fatalf("retention failed to bound entries: %d", n)
	}
}
