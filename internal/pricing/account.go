package pricing

import "sync"

// Account tracks one tenant's spending against a budget limit. The paper's
// economic framing ("users who are willing to pay different amounts to
// access Grid services") needs a consumer side to the ledger: a tenant
// whose budget runs out mid-session stops confirming offers and starts
// shedding quality, which is what the economic workload scenario drives.
// It is safe for concurrent use.
type Account struct {
	mu    sync.Mutex
	limit float64
	spent float64
}

// NewAccount returns an account with the given budget limit. A limit of 0
// (or negative) means unconstrained, matching the Request.Budget
// convention in the broker.
func NewAccount(limit float64) *Account {
	if limit < 0 {
		limit = 0
	}
	return &Account{limit: limit}
}

// Limit returns the budget limit (0 = unconstrained).
func (a *Account) Limit() float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.limit
}

// Debit attempts to spend amount. It succeeds — and records the spend —
// only when the account stays within its limit; an unconstrained account
// always succeeds. Negative amounts are rejected (use Credit).
func (a *Account) Debit(amount float64) bool {
	if amount < 0 {
		return false
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.limit > 0 && a.spent+amount > a.limit {
		return false
	}
	a.spent += amount
	return true
}

// Credit returns amount to the account (a refund). Spending never goes
// below zero; refunds beyond what was spent are clamped.
func (a *Account) Credit(amount float64) {
	if amount <= 0 {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.spent -= amount
	if a.spent < 0 {
		a.spent = 0
	}
}

// Spent returns the net amount spent so far.
func (a *Account) Spent() float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.spent
}

// Remaining returns the budget headroom, or 0 for an unconstrained
// account (use Limit to distinguish).
func (a *Account) Remaining() float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.limit <= 0 {
		return 0
	}
	r := a.limit - a.spent
	if r < 0 {
		return 0
	}
	return r
}

// Exhausted reports whether a constrained account has no headroom left
// for even a zero-cost debit's epsilon — i.e. spent ≥ limit. An
// unconstrained account is never exhausted.
func (a *Account) Exhausted() bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.limit > 0 && a.spent >= a.limit
}
