package pricing

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"gqosm/internal/resource"
	"gqosm/internal/sla"
)

var at = time.Date(2003, 6, 16, 9, 0, 0, 0, time.UTC)

func TestRatesCost(t *testing.T) {
	r := Rates{PerCPUNode: 2, PerMemoryMB: 0.01, PerDiskGB: 0.5, PerMbps: 0.1}
	c := resource.Capacity{CPU: 10, MemoryMB: 100, DiskGB: 4, BandwidthMbps: 50}
	want := 2*10 + 0.01*100 + 0.5*4 + 0.1*50.0
	if got := r.Cost(c); math.Abs(got-want) > 1e-9 {
		t.Errorf("Cost = %g, want %g", got, want)
	}
	if got := r.Cost(resource.Capacity{}); got != 0 {
		t.Errorf("Cost(empty) = %g", got)
	}
	if got := r.Rate(resource.Kind(99)); got != 0 {
		t.Errorf("Rate(unknown) = %g", got)
	}
}

// Property: cost is linear — cost(a+b) = cost(a)+cost(b) and
// cost(k·a) = k·cost(a).
func TestCostLinearity(t *testing.T) {
	r := DefaultRates
	f := func(a1, a2, b1, b2 uint8, kRaw uint8) bool {
		a := resource.Capacity{CPU: float64(a1), MemoryMB: float64(a2)}
		b := resource.Capacity{DiskGB: float64(b1), BandwidthMbps: float64(b2)}
		k := float64(kRaw % 16)
		if math.Abs(r.Cost(a.Add(b))-(r.Cost(a)+r.Cost(b))) > 1e-6 {
			return false
		}
		return math.Abs(r.Cost(a.Scale(k))-k*r.Cost(a)) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestModelClassOrdering(t *testing.T) {
	m := NewModel(DefaultRates)
	c := resource.Capacity{CPU: 10, MemoryMB: 2048, DiskGB: 15}
	g := m.Cost(sla.ClassGuaranteed, c)
	cl := m.Cost(sla.ClassControlledLoad, c)
	be := m.Cost(sla.ClassBestEffort, c)
	if !(g > cl && cl > be && be > 0) {
		t.Errorf("class costs not ordered: g=%g cl=%g be=%g", g, cl, be)
	}
	// Unknown class gets factor 1 (same as controlled-load default).
	if got := m.Cost(sla.Class(99), c); math.Abs(got-cl) > 1e-9 {
		t.Errorf("unknown class cost = %g, want %g", got, cl)
	}
}

func TestCostOfDocumentComposite(t *testing.T) {
	m := NewModel(DefaultRates)
	sub1 := &sla.Document{ID: "net1", Class: sla.ClassGuaranteed,
		Allocated: resource.Bandwidth(622)}
	sub2 := &sla.Document{ID: "comp", Class: sla.ClassGuaranteed,
		Allocated: resource.Capacity{CPU: 10, MemoryMB: 2048, DiskGB: 15}}
	comp := &sla.Document{ID: "c", Class: sla.ClassGuaranteed,
		SubSLAs: []*sla.Document{sub1, sub2}}
	want := m.CostOfDocument(sub1) + m.CostOfDocument(sub2)
	if got := m.CostOfDocument(comp); math.Abs(got-want) > 1e-9 {
		t.Errorf("composite cost = %g, want %g", got, want)
	}
}

func TestPromotion(t *testing.T) {
	m := NewModel(DefaultRates)
	d := &sla.Document{
		ID:        "p1",
		Class:     sla.ClassControlledLoad,
		Allocated: resource.Nodes(10),
		Adapt:     sla.AdaptationOptions{PromotionOffers: true},
	}
	offer, ok := m.Promotion(d, resource.Nodes(15), at.Add(time.Hour))
	if !ok {
		t.Fatal("Promotion refused a valid upgrade")
	}
	wantList := m.Cost(sla.ClassControlledLoad, resource.Nodes(5))
	if math.Abs(offer.ListPrice-wantList) > 1e-9 {
		t.Errorf("ListPrice = %g, want %g", offer.ListPrice, wantList)
	}
	if math.Abs(offer.OfferPrice-wantList*0.75) > 1e-9 {
		t.Errorf("OfferPrice = %g, want %g", offer.OfferPrice, wantList*0.75)
	}
	if offer.SLA != "p1" || !offer.To.Equal(resource.Nodes(15)) {
		t.Errorf("offer = %+v", offer)
	}
}

func TestPromotionRefusals(t *testing.T) {
	m := NewModel(DefaultRates)
	base := &sla.Document{
		ID: "p1", Class: sla.ClassControlledLoad,
		Allocated: resource.Nodes(10),
		Adapt:     sla.AdaptationOptions{PromotionOffers: true},
	}

	// Not opted in.
	noOpt := base.Clone()
	noOpt.Adapt.PromotionOffers = false
	if _, ok := m.Promotion(noOpt, resource.Nodes(15), at); ok {
		t.Error("Promotion offered to non-opted-in SLA")
	}
	// Downgrade is not a promotion.
	if _, ok := m.Promotion(base, resource.Nodes(5), at); ok {
		t.Error("Promotion offered for a downgrade")
	}
	// No change is not a promotion.
	if _, ok := m.Promotion(base, resource.Nodes(10), at); ok {
		t.Error("Promotion offered for identical capacity")
	}
	// Mixed up/down is not a promotion.
	mixed := resource.Capacity{CPU: 15, MemoryMB: -1}.Add(base.Allocated)
	if _, ok := m.Promotion(base, mixed, at); ok {
		t.Error("Promotion offered for mixed-direction change")
	}
}

func TestPenaltyFor(t *testing.T) {
	p := sla.Penalty{PerViolation: 10, PerHourBelow: 4}
	if got := PenaltyFor(p, 90*time.Minute); math.Abs(got-16) > 1e-9 {
		t.Errorf("PenaltyFor = %g, want 16", got)
	}
	if got := PenaltyFor(p, 0); got != 10 {
		t.Errorf("PenaltyFor(0) = %g, want 10", got)
	}
	if got := PenaltyFor(sla.Penalty{}, time.Hour); got != 0 {
		t.Errorf("PenaltyFor(zero penalty) = %g", got)
	}
}

func TestLedger(t *testing.T) {
	l := NewLedger()
	l.Charge("a", 100, at, "session")
	l.Charge("b", 50, at, "session")
	l.Penalize("a", 10, at, "violation at t2")
	l.Record(Entry{Kind: EntryPromotion, SLA: "b", Amount: 20, At: at})
	l.Record(Entry{Kind: EntryRefund, SLA: "b", Amount: 5, At: at})

	if got := l.NetRevenue(); math.Abs(got-155) > 1e-9 {
		t.Errorf("NetRevenue = %g, want 155", got)
	}
	by := l.BySLA()
	if len(by) != 2 {
		t.Fatalf("BySLA = %v", by)
	}
	if by[0].SLA != "a" || math.Abs(by[0].Net-90) > 1e-9 {
		t.Errorf("BySLA[a] = %+v", by[0])
	}
	if by[1].SLA != "b" || math.Abs(by[1].Net-65) > 1e-9 {
		t.Errorf("BySLA[b] = %+v", by[1])
	}
	if got := len(l.Entries()); got != 5 {
		t.Errorf("Entries = %d", got)
	}
}

func TestEntryKindString(t *testing.T) {
	kinds := []EntryKind{EntryCharge, EntryPenalty, EntryPromotion, EntryRefund}
	names := []string{"charge", "penalty", "promotion", "refund"}
	for i, k := range kinds {
		if k.String() != names[i] {
			t.Errorf("%d String = %q", i, k.String())
		}
	}
	if EntryKind(9).String() != "entry(9)" {
		t.Error("unknown kind String")
	}
}
