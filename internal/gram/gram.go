// Package gram is a from-scratch stand-in for the Globus Resource
// Allocation Manager (GRAM) the paper uses to "manage service execution"
// (§2.1). Jobs are submitted with an RSL description, move through the
// classic GRAM state machine (pending → active → done/failed, with
// cancellation), and expose the launched process ID that the Grid service
// uses to claim its GARA reservation via the bind call (§3.1: "in the case
// of computational resources, the process ID of the launched process is
// the only parameter required").
//
// Execution is simulated against an injected clock: a job with a
// `duration` RSL attribute (seconds) completes that long after it starts.
package gram

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"gqosm/internal/obs"

	"gqosm/internal/clockx"
	"gqosm/internal/faultx"
	"gqosm/internal/rsl"
)

// State is a GRAM job state.
type State int

// Job states, following the GRAM protocol's lifecycle.
const (
	StatePending State = iota + 1
	StateActive
	StateDone
	StateFailed
	StateCanceled
)

// String returns the state name.
func (s State) String() string {
	switch s {
	case StatePending:
		return "pending"
	case StateActive:
		return "active"
	case StateDone:
		return "done"
	case StateFailed:
		return "failed"
	case StateCanceled:
		return "canceled"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// Terminal reports whether the job has finished.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// JobID identifies a submitted job.
type JobID string

// Job is a snapshot of one job's status.
type Job struct {
	ID         JobID
	Executable string
	Spec       string // original RSL
	PID        int    // process ID once active
	State      State
	Submitted  time.Time
	Started    time.Time
	Finished   time.Time
	Err        string // failure reason, if any
}

// Manager errors.
var (
	// ErrUnknownJob is returned for operations on unknown job IDs.
	ErrUnknownJob = errors.New("gram: unknown job")
	// ErrTerminal is returned when signalling a finished job.
	ErrTerminal = errors.New("gram: job already terminal")
)

// StateFunc observes job state changes.
type StateFunc func(Job)

// Manager runs jobs. It is safe for concurrent use. Close stops all
// internal timers; running jobs are marked canceled.
type Manager struct {
	clock clockx.Clock

	mu      sync.Mutex
	nextID  int
	nextPID int
	jobs    map[JobID]*jobState
	subs    []StateFunc
	closed  bool

	// met holds nil-safe job-state counters; zero until Instrument is
	// called.
	met gramMetrics

	// faults injects submission failures; nil injects nothing. Set at
	// assembly time, before the manager accepts jobs.
	faults *faultx.Injector
}

// InjectFaults installs a fault injector on job submission (site
// "gram.submit"). Call at assembly time.
func (m *Manager) InjectFaults(inj *faultx.Injector) { m.faults = inj }

type gramMetrics struct {
	submitted, submitErrors *obs.Counter
	done, failed, canceled  *obs.Counter
}

// Instrument registers job-state metrics on reg. Call once at assembly
// time, before the manager accepts jobs.
func (m *Manager) Instrument(reg *obs.Registry) {
	state := func(s string) *obs.Counter {
		return reg.Counter("gqosm_gram_jobs_total",
			"GRAM job state transitions by state", "state", s)
	}
	m.mu.Lock()
	m.met = gramMetrics{
		submitted:    state("submitted"),
		submitErrors: state("submit_error"),
		done:         state("done"),
		failed:       state("failed"),
		canceled:     state("canceled"),
	}
	m.mu.Unlock()
	reg.GaugeFunc("gqosm_gram_jobs_running",
		"Jobs currently in a non-terminal state", func() float64 {
			m.mu.Lock()
			defer m.mu.Unlock()
			n := 0
			for _, st := range m.jobs {
				if !st.job.State.Terminal() {
					n++
				}
			}
			return float64(n)
		})
}

type jobState struct {
	job   Job
	timer clockx.Timer // completion timer, nil once terminal
}

// NewManager returns a job manager driven by the given clock.
func NewManager(clock clockx.Clock) *Manager {
	return &Manager{clock: clock, jobs: make(map[JobID]*jobState), nextPID: 1000}
}

// Subscribe registers a state-change observer. Callbacks run synchronously
// with the transition; they must not call back into the Manager.
func (m *Manager) Subscribe(f StateFunc) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.subs = append(m.subs, f)
}

// Submit parses the RSL job description and starts the job immediately
// (pending → active), returning its snapshot with the assigned PID. The
// RSL should carry `executable="..."`; a numeric `duration` attribute (in
// seconds) schedules automatic completion, otherwise the job runs until
// Cancel or Fail.
func (m *Manager) Submit(spec string) (Job, error) {
	var job Job
	err := m.faults.Do("gram.submit", func() error {
		j, err := m.submit(spec)
		if err == nil {
			job = j
		}
		return err
	})
	if err != nil {
		m.met.submitErrors.Inc()
		return Job{}, err
	}
	return job, nil
}

func (m *Manager) submit(spec string) (Job, error) {
	node, err := rsl.ParseCached(spec)
	if err != nil {
		return Job{}, fmt.Errorf("gram: bad RSL: %w", err)
	}
	exe := node.Str("executable", "")
	if exe == "" {
		return Job{}, errors.New(`gram: RSL must carry executable="..."`)
	}
	duration := node.Num("duration", 0)

	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return Job{}, errors.New("gram: manager closed")
	}
	m.nextID++
	m.nextPID++
	now := m.clock.Now()
	st := &jobState{job: Job{
		ID:         JobID(fmt.Sprintf("job-%d", m.nextID)),
		Executable: exe,
		Spec:       spec,
		PID:        m.nextPID,
		State:      StateActive,
		Submitted:  now,
		Started:    now,
	}}
	m.jobs[st.job.ID] = st
	if duration > 0 {
		id := st.job.ID
		st.timer = m.clock.AfterFunc(time.Duration(duration*float64(time.Second)), func() {
			// Completion driven by the clock; ignore error if the job
			// was cancelled in the meantime.
			_ = m.finish(id, StateDone, "")
		})
	}
	job := st.job
	subs := append([]StateFunc(nil), m.subs...)
	m.mu.Unlock()
	m.met.submitted.Inc()
	for _, s := range subs {
		s(job)
	}
	return job, nil
}

// PruneTerminal removes terminal jobs from the table and returns how
// many it removed. Terminal jobs are normally retained so their final
// state stays queryable; the soak harness prunes them at quiesce points
// so multi-million-op runs hold a bounded working set.
func (m *Manager) PruneTerminal() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	pruned := 0
	for id, st := range m.jobs {
		if st.job.State.Terminal() {
			delete(m.jobs, id)
			pruned++
		}
	}
	return pruned
}

// Cancel terminates a running job.
func (m *Manager) Cancel(id JobID) error { return m.finish(id, StateCanceled, "canceled by client") }

// Fail marks a running job failed with the given reason (used by failure
// injection in experiments).
func (m *Manager) Fail(id JobID, reason string) error { return m.finish(id, StateFailed, reason) }

// Complete marks a running job done (for jobs without a duration).
func (m *Manager) Complete(id JobID) error { return m.finish(id, StateDone, "") }

func (m *Manager) finish(id JobID, final State, reason string) error {
	m.mu.Lock()
	st, ok := m.jobs[id]
	if !ok {
		m.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrUnknownJob, id)
	}
	if st.job.State.Terminal() {
		m.mu.Unlock()
		return fmt.Errorf("%w: %s is %s", ErrTerminal, id, st.job.State)
	}
	if st.timer != nil {
		st.timer.Stop()
		st.timer = nil
	}
	st.job.State = final
	st.job.Err = reason
	st.job.Finished = m.clock.Now()
	job := st.job
	subs := append([]StateFunc(nil), m.subs...)
	m.mu.Unlock()
	switch final {
	case StateDone:
		m.met.done.Inc()
	case StateFailed:
		m.met.failed.Inc()
	case StateCanceled:
		m.met.canceled.Inc()
	}
	for _, s := range subs {
		s(job)
	}
	return nil
}

// Job returns a snapshot of the job.
func (m *Manager) Job(id JobID) (Job, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	st, ok := m.jobs[id]
	if !ok {
		return Job{}, fmt.Errorf("%w: %s", ErrUnknownJob, id)
	}
	return st.job, nil
}

// Jobs returns snapshots of all jobs ordered by ID.
func (m *Manager) Jobs() []Job {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Job, 0, len(m.jobs))
	for _, st := range m.jobs {
		out = append(out, st.job)
	}
	sort.Slice(out, func(i, j int) bool {
		// job-N IDs: sort numerically via length-then-lex.
		if len(out[i].ID) != len(out[j].ID) {
			return len(out[i].ID) < len(out[j].ID)
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// Close cancels all running jobs and stops their timers.
func (m *Manager) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	var running []JobID
	for id, st := range m.jobs {
		if !st.job.State.Terminal() {
			running = append(running, id)
		}
	}
	m.mu.Unlock()
	sort.Slice(running, func(i, j int) bool { return running[i] < running[j] })
	for _, id := range running {
		_ = m.finish(id, StateCanceled, "manager closed")
	}
}
