package gram

import (
	"errors"
	"sync"
	"testing"
	"time"

	"gqosm/internal/clockx"
)

var t0 = time.Date(2003, 6, 16, 9, 0, 0, 0, time.UTC)

func TestSubmitAssignsPIDAndActivates(t *testing.T) {
	clock := clockx.NewManual(t0)
	m := NewManager(clock)
	defer m.Close()

	job, err := m.Submit(`&(executable="/bin/sim")(count=10)`)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if job.State != StateActive {
		t.Errorf("state = %v", job.State)
	}
	if job.PID == 0 {
		t.Error("no PID assigned")
	}
	if job.Executable != "/bin/sim" {
		t.Errorf("executable = %q", job.Executable)
	}
	job2, err := m.Submit(`&(executable="/bin/other")`)
	if err != nil {
		t.Fatal(err)
	}
	if job2.PID == job.PID {
		t.Error("PIDs not unique")
	}
}

func TestSubmitValidation(t *testing.T) {
	m := NewManager(clockx.NewManual(t0))
	defer m.Close()
	if _, err := m.Submit("&(count="); err == nil {
		t.Error("bad RSL accepted")
	}
	if _, err := m.Submit(`&(count=10)`); err == nil {
		t.Error("missing executable accepted")
	}
}

func TestDurationDrivenCompletion(t *testing.T) {
	clock := clockx.NewManual(t0)
	m := NewManager(clock)
	defer m.Close()

	job, err := m.Submit(`&(executable="/bin/sim")(duration=3600)`)
	if err != nil {
		t.Fatal(err)
	}
	clock.Advance(59 * time.Minute)
	got, _ := m.Job(job.ID)
	if got.State != StateActive {
		t.Fatalf("state before deadline = %v", got.State)
	}
	clock.Advance(2 * time.Minute)
	got, _ = m.Job(job.ID)
	if got.State != StateDone {
		t.Fatalf("state after deadline = %v", got.State)
	}
	if !got.Finished.Equal(t0.Add(time.Hour)) {
		t.Errorf("Finished = %v, want %v", got.Finished, t0.Add(time.Hour))
	}
}

func TestCancelStopsTimer(t *testing.T) {
	clock := clockx.NewManual(t0)
	m := NewManager(clock)
	defer m.Close()

	job, err := m.Submit(`&(executable="/bin/sim")(duration=60)`)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Cancel(job.ID); err != nil {
		t.Fatalf("Cancel: %v", err)
	}
	clock.Advance(2 * time.Minute)
	got, _ := m.Job(job.ID)
	if got.State != StateCanceled {
		t.Fatalf("state = %v, want canceled (timer must not overwrite)", got.State)
	}
	if err := m.Cancel(job.ID); !errors.Is(err, ErrTerminal) {
		t.Errorf("double Cancel err = %v", err)
	}
	if clock.PendingTimers() != 0 {
		t.Errorf("PendingTimers = %d, want 0", clock.PendingTimers())
	}
}

func TestFailAndComplete(t *testing.T) {
	m := NewManager(clockx.NewManual(t0))
	defer m.Close()

	j1, _ := m.Submit(`&(executable="/bin/a")`)
	j2, _ := m.Submit(`&(executable="/bin/b")`)
	if err := m.Fail(j1.ID, "node crash"); err != nil {
		t.Fatal(err)
	}
	got, _ := m.Job(j1.ID)
	if got.State != StateFailed || got.Err != "node crash" {
		t.Errorf("failed job = %+v", got)
	}
	if err := m.Complete(j2.ID); err != nil {
		t.Fatal(err)
	}
	got, _ = m.Job(j2.ID)
	if got.State != StateDone {
		t.Errorf("state = %v", got.State)
	}
	if err := m.Complete("ghost"); !errors.Is(err, ErrUnknownJob) {
		t.Errorf("unknown job err = %v", err)
	}
	if _, err := m.Job("ghost"); !errors.Is(err, ErrUnknownJob) {
		t.Errorf("Job unknown err = %v", err)
	}
}

func TestSubscribeObservesTransitions(t *testing.T) {
	m := NewManager(clockx.NewManual(t0))
	defer m.Close()
	var (
		mu     sync.Mutex
		states []State
	)
	m.Subscribe(func(j Job) {
		mu.Lock()
		defer mu.Unlock()
		states = append(states, j.State)
	})
	job, _ := m.Submit(`&(executable="/bin/a")`)
	if err := m.Complete(job.ID); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(states) != 2 || states[0] != StateActive || states[1] != StateDone {
		t.Fatalf("observed states = %v", states)
	}
}

func TestJobsSortedNumerically(t *testing.T) {
	m := NewManager(clockx.NewManual(t0))
	defer m.Close()
	for i := 0; i < 12; i++ {
		if _, err := m.Submit(`&(executable="/bin/a")`); err != nil {
			t.Fatal(err)
		}
	}
	jobs := m.Jobs()
	if len(jobs) != 12 {
		t.Fatalf("Jobs = %d", len(jobs))
	}
	if jobs[1].ID != "job-2" || jobs[10].ID != "job-11" {
		t.Errorf("ordering: jobs[1]=%s jobs[10]=%s", jobs[1].ID, jobs[10].ID)
	}
}

func TestCloseCancelsRunning(t *testing.T) {
	clock := clockx.NewManual(t0)
	m := NewManager(clock)
	j1, _ := m.Submit(`&(executable="/bin/a")(duration=60)`)
	j2, _ := m.Submit(`&(executable="/bin/b")`)
	if err := m.Complete(j2.ID); err != nil {
		t.Fatal(err)
	}
	m.Close()
	got, _ := m.Job(j1.ID)
	if got.State != StateCanceled {
		t.Errorf("running job after Close = %v", got.State)
	}
	got, _ = m.Job(j2.ID)
	if got.State != StateDone {
		t.Errorf("done job after Close = %v", got.State)
	}
	if _, err := m.Submit(`&(executable="/bin/c")`); err == nil {
		t.Error("Submit after Close accepted")
	}
	m.Close() // idempotent
}

func TestStateStrings(t *testing.T) {
	states := []State{StatePending, StateActive, StateDone, StateFailed, StateCanceled}
	names := []string{"pending", "active", "done", "failed", "canceled"}
	for i, s := range states {
		if s.String() != names[i] {
			t.Errorf("state %d = %q, want %q", i, s.String(), names[i])
		}
	}
	if State(99).String() != "state(99)" {
		t.Error("unknown state String")
	}
	if StatePending.Terminal() || StateActive.Terminal() {
		t.Error("non-terminal reported terminal")
	}
	for _, s := range []State{StateDone, StateFailed, StateCanceled} {
		if !s.Terminal() {
			t.Errorf("%v not terminal", s)
		}
	}
}

func TestPruneTerminalJobs(t *testing.T) {
	clock := clockx.NewManual(time.Date(2003, 6, 16, 9, 0, 0, 0, time.UTC))
	m := NewManager(clock)
	defer m.Close()

	keep, err := m.Submit(`&(executable="sim")`)
	if err != nil {
		t.Fatal(err)
	}
	done, err := m.Submit(`&(executable="sim")(duration=60)`)
	if err != nil {
		t.Fatal(err)
	}
	clock.Advance(2 * time.Minute) // completes the timed job

	if got := m.PruneTerminal(); got != 1 {
		t.Fatalf("PruneTerminal = %d, want 1", got)
	}
	if _, err := m.Job(done.ID); !errors.Is(err, ErrUnknownJob) {
		t.Errorf("Job(pruned) = %v, want ErrUnknownJob", err)
	}
	if j, err := m.Job(keep.ID); err != nil || j.State != StateActive {
		t.Errorf("running job disturbed: %v, %v", j, err)
	}
}
