package sla

import (
	"encoding/xml"
	"fmt"
	"strconv"
	"strings"

	"gqosm/internal/resource"
)

// This file implements the paper's XML wire formats for SLA content:
//
//   - Table 1: the <Service-Specific> resource portion relayed to resource
//     managers after SLA establishment.
//   - Table 4: the <Service_SLA> negotiated agreement with
//     <Adaptation_Options>.
//
// Quantities are encoded with the units used in the paper ("4 CPU",
// "64MB", "10 Mbps", "LessThan 10%") and parsed back leniently.

// ServiceSpecificXML mirrors Table 1: the SLA portion describing resources,
// relayed to the RM (computation) and NRM (network).
type ServiceSpecificXML struct {
	XMLName xml.Name    `xml:"Service-Specific"`
	CPU     string      `xml:"CPU-QoS,omitempty"`
	Memory  string      `xml:"Memory-QoS,omitempty"`
	Disk    string      `xml:"Disk-QoS,omitempty"`
	Network *NetworkQoS `xml:"Network_QoS,omitempty"`
}

// NetworkQoS is the <Network_QoS> element of Tables 1 and 3.
type NetworkQoS struct {
	SourceIP   string `xml:"Source_IP"`
	DestIP     string `xml:"Dest_IP"`
	Bandwidth  string `xml:"Bandwidth"`
	PacketLoss string `xml:"Packet_Loss,omitempty"`
	Delay      string `xml:"Delay,omitempty"`
}

// EncodeServiceSpecific renders the resource portion of a spec at the given
// allocated capacity as a Table-1 document.
func EncodeServiceSpecific(s Spec, alloc resource.Capacity) ServiceSpecificXML {
	out := ServiceSpecificXML{}
	if _, ok := s.Params[resource.CPU]; ok {
		out.CPU = fmt.Sprintf("%s CPU", trimFloat(alloc.CPU))
	}
	if _, ok := s.Params[resource.MemoryMB]; ok {
		out.Memory = fmt.Sprintf("%sMB", trimFloat(alloc.MemoryMB))
	}
	if _, ok := s.Params[resource.DiskGB]; ok {
		out.Disk = fmt.Sprintf("%sGB", trimFloat(alloc.DiskGB))
	}
	if _, ok := s.Params[resource.BandwidthMbps]; ok {
		nq := &NetworkQoS{
			SourceIP:  s.SourceIP,
			DestIP:    s.DestIP,
			Bandwidth: fmt.Sprintf("%s Mbps", trimFloat(alloc.BandwidthMbps)),
		}
		if s.MaxPacketLossPct > 0 {
			nq.PacketLoss = fmt.Sprintf("LessThan %s%%", trimFloat(s.MaxPacketLossPct))
		}
		out.Network = nq
	}
	return out
}

// DecodeServiceSpecific parses a Table-1 document back into the capacity it
// describes plus the network constraints.
func DecodeServiceSpecific(doc ServiceSpecificXML) (resource.Capacity, Spec, error) {
	var (
		cap  resource.Capacity
		spec = Spec{Params: make(map[resource.Kind]Param)}
	)
	if doc.CPU != "" {
		v, err := ParseQuantity(doc.CPU)
		if err != nil {
			return cap, spec, fmt.Errorf("sla: CPU-QoS: %w", err)
		}
		cap.CPU = v
		spec.Params[resource.CPU] = Exact(resource.CPU, v)
	}
	if doc.Memory != "" {
		v, err := ParseQuantity(doc.Memory)
		if err != nil {
			return cap, spec, fmt.Errorf("sla: Memory-QoS: %w", err)
		}
		cap.MemoryMB = v
		spec.Params[resource.MemoryMB] = Exact(resource.MemoryMB, v)
	}
	if doc.Disk != "" {
		v, err := ParseQuantity(doc.Disk)
		if err != nil {
			return cap, spec, fmt.Errorf("sla: Disk-QoS: %w", err)
		}
		cap.DiskGB = v
		spec.Params[resource.DiskGB] = Exact(resource.DiskGB, v)
	}
	if doc.Network != nil {
		v, err := ParseQuantity(doc.Network.Bandwidth)
		if err != nil {
			return cap, spec, fmt.Errorf("sla: Bandwidth: %w", err)
		}
		cap.BandwidthMbps = v
		spec.Params[resource.BandwidthMbps] = Exact(resource.BandwidthMbps, v)
		spec.SourceIP = strings.TrimSpace(doc.Network.SourceIP)
		spec.DestIP = strings.TrimSpace(doc.Network.DestIP)
		if doc.Network.PacketLoss != "" {
			loss, err := ParseQuantity(doc.Network.PacketLoss)
			if err != nil {
				return cap, spec, fmt.Errorf("sla: Packet_Loss: %w", err)
			}
			spec.MaxPacketLossPct = loss
		}
	}
	return cap, spec, nil
}

// ServiceSLAXML mirrors Table 4: a negotiated SLA document highlighting the
// adaptation strategy.
type ServiceSLAXML struct {
	XMLName xml.Name            `xml:"Service_SLA"`
	SLAID   string              `xml:"SLA-ID,omitempty"`
	Service string              `xml:"Service_Name,omitempty"`
	Spec    *ServiceSpecificXML `xml:"QoS_Specification>Service-Specific,omitempty"`
	Class   string              `xml:"QoS_Class"`
	Adapt   *AdaptationXML      `xml:"Adaptation_Options,omitempty"`
	Price   string              `xml:"Total_Cost,omitempty"`
}

// AdaptationXML is the <Adaptation_Options> element of Table 4.
type AdaptationXML struct {
	Alternative    *AlternativeQoSXML `xml:"Alternative_QoS,omitempty"`
	PromotionOffer string             `xml:"Promotion_Offer,omitempty"`
}

// AlternativeQoSXML is the <Alternative_QoS> element of Table 4.
type AlternativeQoSXML struct {
	CPU       string `xml:"CPU,omitempty"`
	Memory    string `xml:"Memory,omitempty"`
	Disk      string `xml:"Disk,omitempty"`
	Bandwidth string `xml:"Bandwidth,omitempty"`
}

// EncodeDocument renders an established SLA as a Table-4 document.
func EncodeDocument(d *Document) ServiceSLAXML {
	out := ServiceSLAXML{
		SLAID:   string(d.ID),
		Service: d.Service,
		Class:   d.Class.String(),
	}
	if len(d.Spec.Params) > 0 {
		ss := EncodeServiceSpecific(d.Spec, d.Allocated)
		out.Spec = &ss
	}
	if d.Price > 0 {
		out.Price = trimFloat(d.Price)
	}
	var adapt AdaptationXML
	hasAdapt := false
	if d.Adapt.HasAlternative {
		alt := &AlternativeQoSXML{}
		a := d.Adapt.AlternativeQoS
		if a.CPU > 0 {
			alt.CPU = fmt.Sprintf("%s nodes", trimFloat(a.CPU))
		}
		if a.MemoryMB > 0 {
			alt.Memory = fmt.Sprintf("%s MB", trimFloat(a.MemoryMB))
		}
		if a.DiskGB > 0 {
			alt.Disk = fmt.Sprintf("%s GB", trimFloat(a.DiskGB))
		}
		if a.BandwidthMbps > 0 {
			alt.Bandwidth = fmt.Sprintf("%s Mbps", trimFloat(a.BandwidthMbps))
		}
		adapt.Alternative = alt
		hasAdapt = true
	}
	if d.Class == ClassControlledLoad {
		if d.Adapt.PromotionOffers {
			adapt.PromotionOffer = "Accept"
		} else {
			adapt.PromotionOffer = "Decline"
		}
		hasAdapt = true
	}
	if hasAdapt {
		out.Adapt = &adapt
	}
	return out
}

// DecodeDocument parses a Table-4 document into an SLA Document. The
// resulting document is in the Proposed state.
func DecodeDocument(doc ServiceSLAXML) (*Document, error) {
	class, err := ParseClass(strings.TrimSpace(doc.Class))
	if err != nil {
		return nil, err
	}
	d := &Document{
		ID:      ID(strings.TrimSpace(doc.SLAID)),
		Service: strings.TrimSpace(doc.Service),
		Class:   class,
		State:   StateProposed,
	}
	if doc.Spec != nil {
		alloc, spec, err := DecodeServiceSpecific(*doc.Spec)
		if err != nil {
			return nil, err
		}
		d.Spec = spec
		d.Allocated = alloc
	}
	if doc.Price != "" {
		p, err := strconv.ParseFloat(strings.TrimSpace(doc.Price), 64)
		if err != nil {
			return nil, fmt.Errorf("sla: Total_Cost: %w", err)
		}
		d.Price = p
	}
	if doc.Adapt != nil {
		if doc.Adapt.Alternative != nil {
			var alt resource.Capacity
			for _, f := range []struct {
				text string
				set  func(float64)
			}{
				{doc.Adapt.Alternative.CPU, func(v float64) { alt.CPU = v }},
				{doc.Adapt.Alternative.Memory, func(v float64) { alt.MemoryMB = v }},
				{doc.Adapt.Alternative.Disk, func(v float64) { alt.DiskGB = v }},
				{doc.Adapt.Alternative.Bandwidth, func(v float64) { alt.BandwidthMbps = v }},
			} {
				if f.text == "" {
					continue
				}
				v, err := ParseQuantity(f.text)
				if err != nil {
					return nil, fmt.Errorf("sla: Alternative_QoS: %w", err)
				}
				f.set(v)
			}
			d.Adapt.AlternativeQoS = alt
			d.Adapt.HasAlternative = true
			d.Adapt.AcceptDegradation = true
		}
		d.Adapt.PromotionOffers = strings.EqualFold(strings.TrimSpace(doc.Adapt.PromotionOffer), "Accept")
	}
	return d, nil
}

// ParseQuantity extracts the leading numeric quantity from the paper's
// quantity texts: "4 CPU", "64MB", "10 Mbps", "55 nodes on Linux OS",
// "LessThan 10%", "9.5 Mbps", "10ms". It returns an error when no number
// is present.
func ParseQuantity(s string) (float64, error) {
	t := strings.TrimSpace(s)
	// Skip a leading qualifier word such as "LessThan" or "MoreThan".
	for _, prefix := range []string{"LessThan", "MoreThan", "AtLeast", "AtMost"} {
		if strings.HasPrefix(t, prefix) {
			t = strings.TrimSpace(t[len(prefix):])
			break
		}
	}
	end := 0
	seenDigit := false
	for end < len(t) {
		c := t[end]
		if c >= '0' && c <= '9' {
			seenDigit = true
			end++
			continue
		}
		if (c == '.' || c == '-' || c == '+') && !seenDigit && end == 0 || c == '.' {
			end++
			continue
		}
		break
	}
	if !seenDigit {
		return 0, fmt.Errorf("sla: no numeric quantity in %q", s)
	}
	v, err := strconv.ParseFloat(t[:end], 64)
	if err != nil {
		return 0, fmt.Errorf("sla: bad quantity %q: %w", s, err)
	}
	return v, nil
}

// trimFloat formats a float without trailing zeros ("10", "9.5").
func trimFloat(f float64) string {
	return strconv.FormatFloat(f, 'f', -1, 64)
}

// MarshalIndent renders any of the XML document structs with the two-space
// indentation used throughout the paper's listings.
func MarshalIndent(v any) ([]byte, error) {
	return xml.MarshalIndent(v, "", "  ")
}
