package sla

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"gqosm/internal/resource"
)

func TestParamConstructorsValidate(t *testing.T) {
	tests := []struct {
		name    string
		p       Param
		wantErr bool
	}{
		{"exact ok", Exact(resource.CPU, 10), false},
		{"exact negative", Exact(resource.CPU, -1), true},
		{"range ok", Range(resource.MemoryMB, 48, 64), false},
		{"range inverted", Param{Kind: resource.MemoryMB, Form: FormRange, Min: 64, Max: 48}, true},
		{"range negative", Param{Kind: resource.MemoryMB, Form: FormRange, Min: -1, Max: 4}, true},
		{"list ok", List(resource.BandwidthMbps, 45, 10, 100), false},
		{"list empty", Param{Kind: resource.CPU, Form: FormList}, true},
		{"list negative", Param{Kind: resource.CPU, Form: FormList, Values: []float64{-1, 2}}, true},
		{"list unsorted", Param{Kind: resource.CPU, Form: FormList, Values: []float64{5, 2}}, true},
		{"unknown form", Param{Kind: resource.CPU}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.p.Validate(); (err != nil) != tt.wantErr {
				t.Errorf("Validate() = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestListSortsValues(t *testing.T) {
	p := List(resource.CPU, 30, 10, 20)
	if p.Values[0] != 10 || p.Values[1] != 20 || p.Values[2] != 30 {
		t.Fatalf("List did not sort: %v", p.Values)
	}
}

func TestParamFloorBest(t *testing.T) {
	tests := []struct {
		p           Param
		floor, best float64
	}{
		{Exact(resource.CPU, 10), 10, 10},
		{Range(resource.CPU, 4, 10), 4, 10},
		{List(resource.CPU, 30, 10, 20), 10, 30},
	}
	for _, tt := range tests {
		if got := tt.p.Floor(); got != tt.floor {
			t.Errorf("%v Floor = %g, want %g", tt.p, got, tt.floor)
		}
		if got := tt.p.Best(); got != tt.best {
			t.Errorf("%v Best = %g, want %g", tt.p, got, tt.best)
		}
	}
	var empty Param
	if empty.Floor() != 0 || empty.Best() != 0 {
		t.Error("invalid param Floor/Best should be 0")
	}
}

func TestParamAccepts(t *testing.T) {
	tests := []struct {
		name string
		p    Param
		v    float64
		want bool
	}{
		{"exact hit", Exact(resource.CPU, 10), 10, true},
		{"exact miss", Exact(resource.CPU, 10), 9, false},
		{"range inside", Range(resource.CPU, 4, 10), 7, true},
		{"range low edge", Range(resource.CPU, 4, 10), 4, true},
		{"range high edge", Range(resource.CPU, 4, 10), 10, true},
		{"range below", Range(resource.CPU, 4, 10), 3.9, false},
		{"range above", Range(resource.CPU, 4, 10), 10.1, false},
		{"list hit", List(resource.CPU, 10, 20), 20, true},
		{"list miss", List(resource.CPU, 10, 20), 15, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.p.Accepts(tt.v); got != tt.want {
				t.Errorf("Accepts(%g) = %v, want %v", tt.v, got, tt.want)
			}
		})
	}
}

func TestParamChoices(t *testing.T) {
	if c := Exact(resource.CPU, 10).Choices(5); len(c) != 1 || c[0] != 10 {
		t.Errorf("Exact Choices = %v", c)
	}
	if c := List(resource.CPU, 10, 20).Choices(5); len(c) != 2 || c[0] != 10 || c[1] != 20 {
		t.Errorf("List Choices = %v", c)
	}
	c := Range(resource.CPU, 0, 10).Choices(5)
	if len(c) != 5 || c[0] != 0 || c[4] != 10 || c[2] != 5 {
		t.Errorf("Range Choices = %v", c)
	}
	// Degenerate steps still include both endpoints.
	if c := Range(resource.CPU, 2, 8).Choices(1); len(c) != 2 || c[0] != 2 || c[1] != 8 {
		t.Errorf("Range Choices(1) = %v", c)
	}
}

func TestParamClamp(t *testing.T) {
	tests := []struct {
		name string
		p    Param
		v    float64
		want float64
	}{
		{"exact always exact", Exact(resource.CPU, 10), 3, 10},
		{"range inside passthrough", Range(resource.CPU, 4, 10), 7, 7},
		{"range below floors", Range(resource.CPU, 4, 10), 1, 4},
		{"range above caps", Range(resource.CPU, 4, 10), 99, 10},
		{"list rounds down", List(resource.CPU, 10, 20, 30), 25, 20},
		{"list below floors", List(resource.CPU, 10, 20, 30), 5, 10},
		{"list exact member", List(resource.CPU, 10, 20, 30), 30, 30},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.p.Clamp(tt.v); got != tt.want {
				t.Errorf("Clamp(%g) = %g, want %g", tt.v, got, tt.want)
			}
		})
	}
}

// Property: Clamp always yields an acceptable value for valid params, and
// clamping an already-acceptable value of a range is the identity.
func TestParamClampProperty(t *testing.T) {
	f := func(minRaw, spanRaw, vRaw uint16) bool {
		min := float64(minRaw % 1000)
		max := min + float64(spanRaw%1000)
		v := float64(vRaw)
		p := Range(resource.CPU, min, max)
		got := p.Clamp(v)
		if !p.Accepts(got) {
			return false
		}
		if p.Accepts(v) && got != v {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestParamString(t *testing.T) {
	if s := Exact(resource.CPU, 10).String(); !strings.Contains(s, "= 10") {
		t.Errorf("Exact String = %q", s)
	}
	if s := Range(resource.MemoryMB, 48, 64).String(); !strings.Contains(s, "[48, 64]") {
		t.Errorf("Range String = %q", s)
	}
	if s := List(resource.CPU, 1, 2).String(); !strings.Contains(s, "{1, 2}") {
		t.Errorf("List String = %q", s)
	}
	if s := (Param{Kind: resource.CPU}).String(); !strings.Contains(s, "invalid") {
		t.Errorf("invalid String = %q", s)
	}
}

func table1Spec() Spec {
	s := NewSpec(
		Exact(resource.CPU, 4),
		Exact(resource.MemoryMB, 64),
		Exact(resource.BandwidthMbps, 10),
	)
	s.SourceIP = "192.200.168.33"
	s.DestIP = "135.200.50.101"
	s.MaxPacketLossPct = 10
	return s
}

func TestSpecBasics(t *testing.T) {
	s := table1Spec()
	if err := s.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	kinds := s.Kinds()
	if len(kinds) != 3 || kinds[0] != resource.CPU {
		t.Fatalf("Kinds = %v", kinds)
	}
	if _, ok := s.Param(resource.DiskGB); ok {
		t.Error("Param(DiskGB) found")
	}
	want := resource.Capacity{CPU: 4, MemoryMB: 64, BandwidthMbps: 10}
	if !s.Floor().Equal(want) {
		t.Errorf("Floor = %v", s.Floor())
	}
	if !s.Best().Equal(want) {
		t.Errorf("Best = %v", s.Best())
	}
	if !s.Accepts(want) {
		t.Error("Accepts(exact) = false")
	}
	if s.Accepts(want.Add(resource.Nodes(1))) {
		t.Error("Accepts(over) = true for exact spec")
	}
}

func TestSpecValidatePacketLoss(t *testing.T) {
	s := table1Spec()
	s.MaxPacketLossPct = 150
	if err := s.Validate(); err == nil {
		t.Error("packet loss 150% accepted")
	}
	s.MaxPacketLossPct = -1
	if err := s.Validate(); err == nil {
		t.Error("packet loss -1% accepted")
	}
}

func TestSpecRangeClampAndFloor(t *testing.T) {
	s := NewSpec(
		Range(resource.CPU, 10, 55),
		Range(resource.MemoryMB, 48, 64),
		List(resource.BandwidthMbps, 10, 45, 100),
	)
	floor := resource.Capacity{CPU: 10, MemoryMB: 48, BandwidthMbps: 10}
	if !s.Floor().Equal(floor) {
		t.Errorf("Floor = %v, want %v", s.Floor(), floor)
	}
	best := resource.Capacity{CPU: 55, MemoryMB: 64, BandwidthMbps: 100}
	if !s.Best().Equal(best) {
		t.Errorf("Best = %v, want %v", s.Best(), best)
	}
	in := resource.Capacity{CPU: 30, MemoryMB: 100, BandwidthMbps: 60}
	got := s.Clamp(in)
	want := resource.Capacity{CPU: 30, MemoryMB: 64, BandwidthMbps: 45}
	if !got.Equal(want) {
		t.Errorf("Clamp = %v, want %v", got, want)
	}
	if !s.Accepts(got) {
		t.Error("clamped capacity not accepted")
	}
}

func TestSpecCloneIsDeep(t *testing.T) {
	s := NewSpec(List(resource.CPU, 10, 20))
	c := s.Clone()
	c.Params[resource.CPU].Values[0] = 99
	c.Params[resource.MemoryMB] = Exact(resource.MemoryMB, 1)
	if s.Params[resource.CPU].Values[0] != 10 {
		t.Error("Clone shares Values slice")
	}
	if _, ok := s.Params[resource.MemoryMB]; ok {
		t.Error("Clone shares Params map")
	}
}

// Property: Spec.Clamp always produces an accepted capacity when every
// parameter is a valid range.
func TestSpecClampAcceptsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 300; i++ {
		s := NewSpec(
			Range(resource.CPU, float64(rng.Intn(10)), float64(10+rng.Intn(50))),
			Range(resource.MemoryMB, float64(rng.Intn(100)), float64(100+rng.Intn(1000))),
		)
		in := resource.Capacity{CPU: rng.Float64() * 100, MemoryMB: rng.Float64() * 2000}
		if !s.Accepts(s.Clamp(in)) {
			t.Fatalf("Clamp(%v) of %v not accepted", in, s)
		}
	}
}
