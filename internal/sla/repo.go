package sla

import (
	"encoding/xml"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// Repository persists established SLAs "for subsequent reference" (§3.1:
// "the AQoS establishes a final SLA document and saves it in the SLA
// repository"). Implementations must be safe for concurrent use.
type Repository interface {
	// Put stores (or replaces) a document.
	Put(d *Document) error
	// Get returns a copy of the document with the given ID.
	Get(id ID) (*Document, error)
	// Delete removes the document with the given ID.
	Delete(id ID) error
	// List returns copies of all documents matching the filter (nil
	// matches all), ordered by ID.
	List(filter func(*Document) bool) ([]*Document, error)
}

// ErrNotFound is returned by repositories for unknown IDs.
var ErrNotFound = errors.New("sla: document not found")

// MemoryRepository is an in-memory Repository.
type MemoryRepository struct {
	mu   sync.RWMutex
	docs map[ID]*Document
}

// NewMemoryRepository returns an empty in-memory repository.
func NewMemoryRepository() *MemoryRepository {
	return &MemoryRepository{docs: make(map[ID]*Document)}
}

// Put implements Repository.
func (r *MemoryRepository) Put(d *Document) error {
	if d.ID == "" {
		return errors.New("sla: cannot store document with empty ID")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.docs[d.ID] = d.Clone()
	return nil
}

// Get implements Repository.
func (r *MemoryRepository) Get(id ID) (*Document, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	d, ok := r.docs[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	return d.Clone(), nil
}

// Delete implements Repository.
func (r *MemoryRepository) Delete(id ID) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.docs[id]; !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	delete(r.docs, id)
	return nil
}

// List implements Repository.
func (r *MemoryRepository) List(filter func(*Document) bool) ([]*Document, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*Document, 0, len(r.docs))
	for _, d := range r.docs {
		if filter == nil || filter(d) {
			out = append(out, d.Clone())
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out, nil
}

var _ Repository = (*MemoryRepository)(nil)

// FileRepository is a Repository that persists each SLA as a Table-4 XML
// file in a directory, one file per agreement, mirroring the paper's "SLA
// repository". It keeps a write-through in-memory cache; adaptation
// options and lifecycle state that the Table-4 wire format does not carry
// survive only in the cache, so FileRepository is suitable for durable
// archival plus warm restart of established agreements.
type FileRepository struct {
	dir string

	mu    sync.Mutex
	cache *MemoryRepository
}

// NewFileRepository opens (creating if needed) a directory-backed
// repository and loads any existing documents.
func NewFileRepository(dir string) (*FileRepository, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("sla: create repository dir: %w", err)
	}
	r := &FileRepository{dir: dir, cache: NewMemoryRepository()}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("sla: read repository dir: %w", err)
	}
	for _, e := range entries {
		if e.IsDir() || filepath.Ext(e.Name()) != ".xml" {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, fmt.Errorf("sla: read %s: %w", e.Name(), err)
		}
		var doc ServiceSLAXML
		if err := xml.Unmarshal(data, &doc); err != nil {
			return nil, fmt.Errorf("sla: parse %s: %w", e.Name(), err)
		}
		d, err := DecodeDocument(doc)
		if err != nil {
			return nil, fmt.Errorf("sla: decode %s: %w", e.Name(), err)
		}
		if err := r.cache.Put(d); err != nil {
			return nil, err
		}
	}
	return r, nil
}

// Put implements Repository.
func (r *FileRepository) Put(d *Document) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.cache.Put(d); err != nil {
		return err
	}
	data, err := MarshalIndent(EncodeDocument(d))
	if err != nil {
		return fmt.Errorf("sla: encode %s: %w", d.ID, err)
	}
	path := r.path(d.ID)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("sla: write %s: %w", path, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("sla: commit %s: %w", path, err)
	}
	return nil
}

// Get implements Repository.
func (r *FileRepository) Get(id ID) (*Document, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.cache.Get(id)
}

// Delete implements Repository.
func (r *FileRepository) Delete(id ID) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.cache.Delete(id); err != nil {
		return err
	}
	if err := os.Remove(r.path(id)); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("sla: remove %s: %w", id, err)
	}
	return nil
}

// List implements Repository.
func (r *FileRepository) List(filter func(*Document) bool) ([]*Document, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.cache.List(filter)
}

func (r *FileRepository) path(id ID) string {
	return filepath.Join(r.dir, string(id)+".xml")
}

var _ Repository = (*FileRepository)(nil)
