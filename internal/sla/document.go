package sla

import (
	"errors"
	"fmt"
	"time"

	"gqosm/internal/resource"
)

// Class is the service-delivery class of an SLA (paper §5.1).
type Class int

// The three G-QoSM service classes.
const (
	// ClassGuaranteed: pre-defined constraints, enforced and monitored;
	// "the service provider is committed to deliver the service with the
	// exact QoS specification described in the SLA".
	ClassGuaranteed Class = iota + 1
	// ClassControlledLoad: QoS stated as parameter ranges; the provider
	// may deliver anywhere within the range. Only this class may carry
	// promotion offers.
	ClassControlledLoad
	// ClassBestEffort: no SLA; "any suitable resources found are
	// returned to the user".
	ClassBestEffort
)

// String returns the class name as printed in SLA documents (Table 4 uses
// "Controlled-load").
func (c Class) String() string {
	switch c {
	case ClassGuaranteed:
		return "Guaranteed"
	case ClassControlledLoad:
		return "Controlled-load"
	case ClassBestEffort:
		return "Best-effort"
	default:
		return fmt.Sprintf("class(%d)", int(c))
	}
}

// ParseClass parses a class name as it appears in XML documents.
func ParseClass(s string) (Class, error) {
	switch s {
	case "Guaranteed", "guaranteed":
		return ClassGuaranteed, nil
	case "Controlled-load", "controlled-load", "ControlledLoad":
		return ClassControlledLoad, nil
	case "Best-effort", "best-effort", "BestEffort":
		return ClassBestEffort, nil
	default:
		return 0, fmt.Errorf("sla: unknown QoS class %q", s)
	}
}

// State is the lifecycle state of an SLA (paper Fig. 3: Establishment,
// Active, Clearing phases).
type State int

// SLA lifecycle states.
const (
	// StateProposed: offer sent to the client, resources temporarily
	// reserved pending confirmation (§3.1).
	StateProposed State = iota + 1
	// StateEstablished: client accepted; SLA saved in the repository,
	// resources committed, service not yet invoked.
	StateEstablished
	// StateActive: service invoked; QoS monitoring and adaptation apply.
	StateActive
	// StateDegraded: delivering below agreed quality but within the
	// adaptation options; the broker is attempting restoration.
	StateDegraded
	// StateViolated: delivered QoS fell below the SLA floor.
	StateViolated
	// StateTerminated: session cleared (completion, violation, or
	// client request); resources freed.
	StateTerminated
	// StateExpired: the reservation interval elapsed.
	StateExpired
)

// String returns the state name.
func (s State) String() string {
	switch s {
	case StateProposed:
		return "proposed"
	case StateEstablished:
		return "established"
	case StateActive:
		return "active"
	case StateDegraded:
		return "degraded"
	case StateViolated:
		return "violated"
	case StateTerminated:
		return "terminated"
	case StateExpired:
		return "expired"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// Terminal reports whether the state ends the QoS session.
func (s State) Terminal() bool { return s == StateTerminated || s == StateExpired }

// validTransitions is the session state machine (Fig. 3): Establishment
// (proposed→established), Active (established→active→{degraded,violated}
// with recovery), Clearing (→terminated/expired).
var validTransitions = map[State][]State{
	StateProposed:    {StateEstablished, StateTerminated},
	StateEstablished: {StateActive, StateTerminated, StateExpired},
	StateActive:      {StateDegraded, StateViolated, StateTerminated, StateExpired},
	StateDegraded:    {StateActive, StateViolated, StateTerminated, StateExpired},
	StateViolated:    {StateActive, StateDegraded, StateTerminated, StateExpired},
}

// ErrBadTransition is returned by Document.Transition for moves the
// lifecycle does not allow.
var ErrBadTransition = errors.New("sla: invalid state transition")

// AdaptationOptions are the §5.2 negotiated adaptation terms (Table 4).
type AdaptationOptions struct {
	// AcceptDegradation marks the SLA as "willing to accept a degraded
	// QoS … to support compensation" (scenario 1).
	AcceptDegradation bool
	// AcceptTermination marks the SLA as willing to be terminated to
	// free resources for compensation (scenario 1).
	AcceptTermination bool
	// AlternativeQoS is the fallback quality (Table 4's
	// <Alternative_QoS>) the provider may switch to when the primary
	// quality cannot be sustained.
	AlternativeQoS resource.Capacity
	// HasAlternative reports whether AlternativeQoS was negotiated.
	HasAlternative bool
	// PromotionOffers records whether the client opted in to promotion
	// offers during execution (controlled-load only, §5.2).
	PromotionOffers bool
}

// Penalty is the SLA-violation penalty term (§5.2 lists "SLA violation
// penalties" among the agreed terms).
type Penalty struct {
	// PerViolation is the flat monetary penalty charged to the provider
	// for each detected violation.
	PerViolation float64
	// PerHourBelow is charged per hour the delivered QoS stays below
	// the floor.
	PerHourBelow float64
}

// ID identifies an SLA document.
type ID string

// Document is a negotiated Service Level Agreement. It is a value record —
// the broker owns mutation and persists via a Repository.
type Document struct {
	ID       ID
	Service  string // service name the agreement covers
	Client   string // client identity
	Provider string // provider / domain identity
	Class    Class
	Spec     Spec
	Adapt    AdaptationOptions
	Penalty  Penalty

	// Start and End bound the reservation validity (§5.6's [t0, t5]).
	Start, End time.Time

	// Price is the agreed total monetary cost for the session at the
	// initially allocated quality.
	Price float64

	// Allocated is the capacity currently assigned by the broker; it
	// always satisfies Spec when the state is not degraded/violated.
	Allocated resource.Capacity

	State State

	// SubSLAs lists component agreements for composite SLAs (§5.6's
	// SLA_net1, SLA_net2, SLA_comp); empty for simple SLAs.
	SubSLAs []*Document
}

// Validate checks the document for structural errors.
func (d *Document) Validate() error {
	if d.ID == "" {
		return errors.New("sla: empty ID")
	}
	if d.Class != ClassGuaranteed && d.Class != ClassControlledLoad && d.Class != ClassBestEffort {
		return fmt.Errorf("sla: unknown class %d", d.Class)
	}
	if d.Class != ClassBestEffort {
		if err := d.Spec.Validate(); err != nil {
			return fmt.Errorf("sla %s: %w", d.ID, err)
		}
		if len(d.Spec.Params) == 0 && len(d.SubSLAs) == 0 {
			return fmt.Errorf("sla %s: class %s requires QoS parameters", d.ID, d.Class)
		}
	}
	if d.Adapt.PromotionOffers && d.Class != ClassControlledLoad {
		return fmt.Errorf("sla %s: promotion offers are only valid for the controlled-load class", d.ID)
	}
	if !d.End.IsZero() && !d.End.After(d.Start) {
		return fmt.Errorf("sla %s: end %v not after start %v", d.ID, d.End, d.Start)
	}
	for _, sub := range d.SubSLAs {
		if err := sub.Validate(); err != nil {
			return fmt.Errorf("sla %s: sub-SLA: %w", d.ID, err)
		}
	}
	return nil
}

// Transition moves the document to state next, enforcing the lifecycle.
func (d *Document) Transition(next State) error {
	for _, allowed := range validTransitions[d.State] {
		if next == allowed {
			d.State = next
			return nil
		}
	}
	return fmt.Errorf("%w: %s -> %s (sla %s)", ErrBadTransition, d.State, next, d.ID)
}

// ActiveAt reports whether the SLA's validity interval covers t.
func (d *Document) ActiveAt(t time.Time) bool {
	if t.Before(d.Start) {
		return false
	}
	return d.End.IsZero() || t.Before(d.End)
}

// GuaranteedFloor returns g(u): the capacity the SLA guarantees (Algorithm
// 1's "guaranteed capacity with a SLA for user u"). For composite SLAs it
// sums the sub-SLA floors.
func (d *Document) GuaranteedFloor() resource.Capacity {
	if len(d.SubSLAs) == 0 {
		return d.Spec.Floor()
	}
	var sum resource.Capacity
	for _, sub := range d.SubSLAs {
		sum = sum.Add(sub.GuaranteedFloor())
	}
	return sum
}

// Clone returns a deep copy.
func (d *Document) Clone() *Document {
	c := *d
	c.Spec = d.Spec.Clone()
	if len(d.SubSLAs) > 0 {
		c.SubSLAs = make([]*Document, len(d.SubSLAs))
		for i, sub := range d.SubSLAs {
			c.SubSLAs[i] = sub.Clone()
		}
	}
	return &c
}
