// Package sla models Service Level Agreements for the G-QoSM framework:
// QoS parameters recorded as exact values, ranges, or lists (paper §5.3),
// the three QoS classes (§5.1), adaptation options negotiated into the
// agreement (§5.2, Table 4), composite SLAs built from sub-SLAs (§5.6),
// the SLA lifecycle, and a repository for established agreements (§3.1).
package sla

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"

	"gqosm/internal/resource"
)

// Form discriminates how a QoS parameter's acceptable values are recorded
// in the SLA (paper §5.3: "QoS parameter values p_i may be recorded in the
// SLA in two forms": a range or a list; guaranteed-class SLAs use exact
// values).
type Form int

// Parameter forms.
const (
	FormExact Form = iota + 1 // single required value (guaranteed class)
	FormRange                 // [Min, Max], Max preferred
	FormList                  // explicit acceptable values, larger preferred
)

// Param is the acceptable-quality specification for one resource dimension.
type Param struct {
	Kind resource.Kind
	Form Form

	// Exact is the required value for FormExact.
	Exact float64
	// Min and Max bound FormRange (Min = minimum acceptable quality p_b,
	// Max = best quality p_a; paper: "p_b ≤ p_i ≤ p_a where p_a is a
	// better quality than p_b").
	Min, Max float64
	// List holds the acceptable values for FormList, kept sorted
	// ascending.
	Values []float64
}

// Exact returns an exact-value parameter.
func Exact(k resource.Kind, v float64) Param {
	return Param{Kind: k, Form: FormExact, Exact: v}
}

// Range returns a range parameter over [min, max].
func Range(k resource.Kind, min, max float64) Param {
	return Param{Kind: k, Form: FormRange, Min: min, Max: max}
}

// List returns a list parameter; values are copied and sorted.
func List(k resource.Kind, values ...float64) Param {
	vs := append([]float64(nil), values...)
	sort.Float64s(vs)
	return Param{Kind: k, Form: FormList, Values: vs}
}

// Validate checks internal consistency.
func (p Param) Validate() error {
	switch p.Form {
	case FormExact:
		if p.Exact < 0 {
			return fmt.Errorf("sla: negative exact value %g for %s", p.Exact, p.Kind)
		}
	case FormRange:
		if p.Min < 0 || p.Max < p.Min {
			return fmt.Errorf("sla: bad range [%g, %g] for %s", p.Min, p.Max, p.Kind)
		}
	case FormList:
		if len(p.Values) == 0 {
			return fmt.Errorf("sla: empty value list for %s", p.Kind)
		}
		for i, v := range p.Values {
			if v < 0 {
				return fmt.Errorf("sla: negative list value %g for %s", v, p.Kind)
			}
			if i > 0 && p.Values[i] < p.Values[i-1] {
				return fmt.Errorf("sla: unsorted value list for %s", p.Kind)
			}
		}
	default:
		return fmt.Errorf("sla: unknown parameter form %d", p.Form)
	}
	return nil
}

// Floor returns the minimum acceptable quality — the SLA violation
// threshold the adaptation scheme must never go below.
func (p Param) Floor() float64 {
	switch p.Form {
	case FormExact:
		return p.Exact
	case FormRange:
		return p.Min
	case FormList:
		if len(p.Values) == 0 {
			return 0
		}
		return p.Values[0]
	default:
		return 0
	}
}

// Best returns the highest quality the SLA allows the provider to deliver.
func (p Param) Best() float64 {
	switch p.Form {
	case FormExact:
		return p.Exact
	case FormRange:
		return p.Max
	case FormList:
		if len(p.Values) == 0 {
			return 0
		}
		return p.Values[len(p.Values)-1]
	default:
		return 0
	}
}

// Accepts reports whether delivering quality v satisfies the parameter.
func (p Param) Accepts(v float64) bool {
	const eps = resource.Epsilon
	switch p.Form {
	case FormExact:
		return math.Abs(v-p.Exact) <= eps
	case FormRange:
		return v >= p.Min-eps && v <= p.Max+eps
	case FormList:
		for _, a := range p.Values {
			if math.Abs(v-a) <= eps {
				return true
			}
		}
		return false
	default:
		return false
	}
}

// Choices enumerates the candidate quality levels the optimizer may select
// for this parameter. Ranges are discretized into at most steps points
// (always including Min and Max); exact parameters yield their single
// value; lists yield their values.
func (p Param) Choices(steps int) []float64 {
	switch p.Form {
	case FormExact:
		return []float64{p.Exact}
	case FormList:
		return append([]float64(nil), p.Values...)
	case FormRange:
		if steps < 2 || p.Max == p.Min {
			return []float64{p.Min, p.Max}
		}
		out := make([]float64, 0, steps)
		for i := 0; i < steps; i++ {
			out = append(out, p.Min+(p.Max-p.Min)*float64(i)/float64(steps-1))
		}
		return out
	default:
		return nil
	}
}

// Clamp returns the acceptable quality nearest to v from below: the largest
// acceptable value ≤ v, or the floor when v is below every acceptable
// value. This is how the adaptation scheme degrades a service "while still
// satisfying their SLAs".
func (p Param) Clamp(v float64) float64 {
	switch p.Form {
	case FormExact:
		return p.Exact
	case FormRange:
		if v < p.Min {
			return p.Min
		}
		if v > p.Max {
			return p.Max
		}
		return v
	case FormList:
		best := p.Floor()
		for _, a := range p.Values {
			if a <= v+resource.Epsilon && a > best {
				best = a
			}
		}
		return best
	default:
		return 0
	}
}

// String renders the parameter for logs, e.g. "cpu in [10, 55]".
func (p Param) String() string {
	switch p.Form {
	case FormExact:
		return fmt.Sprintf("%s = %g %s", p.Kind, p.Exact, p.Kind.Unit())
	case FormRange:
		return fmt.Sprintf("%s in [%g, %g] %s", p.Kind, p.Min, p.Max, p.Kind.Unit())
	case FormList:
		parts := make([]string, len(p.Values))
		for i, v := range p.Values {
			parts[i] = fmt.Sprintf("%g", v)
		}
		return fmt.Sprintf("%s in {%s} %s", p.Kind, strings.Join(parts, ", "), p.Kind.Unit())
	default:
		return fmt.Sprintf("%s <invalid>", p.Kind)
	}
}

// ErrNoParam is returned when a spec lacks a parameter for a dimension.
var ErrNoParam = errors.New("sla: no parameter for dimension")

// Spec is the full QoS parameter set P_j = {p_1j, …, p_nj} (§5.3) for one
// service, keyed by resource dimension, plus the network endpoints the
// bandwidth parameter applies to.
type Spec struct {
	Params map[resource.Kind]Param

	// SourceIP and DestIP identify the network flow for the bandwidth
	// parameter (Table 1).
	SourceIP, DestIP string
	// MaxPacketLossPct is the "Packet_Loss LessThan N%" constraint of
	// Table 1; zero means unconstrained.
	MaxPacketLossPct float64
}

// NewSpec builds a Spec from parameters; later parameters for the same
// dimension replace earlier ones.
func NewSpec(params ...Param) Spec {
	s := Spec{Params: make(map[resource.Kind]Param, len(params))}
	for _, p := range params {
		s.Params[p.Kind] = p
	}
	return s
}

// Validate checks every parameter.
func (s Spec) Validate() error {
	for _, p := range s.sorted() {
		if err := p.Validate(); err != nil {
			return err
		}
	}
	if s.MaxPacketLossPct < 0 || s.MaxPacketLossPct > 100 {
		return fmt.Errorf("sla: packet loss bound %g%% out of range", s.MaxPacketLossPct)
	}
	return nil
}

// Param returns the parameter for dimension k.
func (s Spec) Param(k resource.Kind) (Param, bool) {
	p, ok := s.Params[k]
	return p, ok
}

// Kinds returns the dimensions with parameters, in canonical order.
func (s Spec) Kinds() []resource.Kind {
	var out []resource.Kind
	for _, k := range resource.Kinds {
		if _, ok := s.Params[k]; ok {
			out = append(out, k)
		}
	}
	return out
}

func (s Spec) sorted() []Param {
	out := make([]Param, 0, len(s.Params))
	for _, k := range s.Kinds() {
		out = append(out, s.Params[k])
	}
	return out
}

// Floor returns the capacity corresponding to every parameter's minimum
// acceptable quality — the guaranteed allocation g(u) of Algorithm 1.
func (s Spec) Floor() resource.Capacity {
	var c resource.Capacity
	for k, p := range s.Params {
		c = c.With(k, p.Floor())
	}
	return c
}

// Best returns the capacity at every parameter's best quality.
func (s Spec) Best() resource.Capacity {
	var c resource.Capacity
	for k, p := range s.Params {
		c = c.With(k, p.Best())
	}
	return c
}

// Accepts reports whether delivering capacity c satisfies every parameter.
func (s Spec) Accepts(c resource.Capacity) bool {
	for k, p := range s.Params {
		if !p.Accepts(c.Get(k)) {
			return false
		}
	}
	return true
}

// Clamp returns c adjusted dimension-wise to the nearest acceptable
// quality (degrading toward the floor), leaving dimensions without
// parameters untouched.
func (s Spec) Clamp(c resource.Capacity) resource.Capacity {
	for k, p := range s.Params {
		c = c.With(k, p.Clamp(c.Get(k)))
	}
	return c
}

// Clone returns a deep copy of the spec.
func (s Spec) Clone() Spec {
	out := Spec{
		Params:           make(map[resource.Kind]Param, len(s.Params)),
		SourceIP:         s.SourceIP,
		DestIP:           s.DestIP,
		MaxPacketLossPct: s.MaxPacketLossPct,
	}
	for k, p := range s.Params {
		p.Values = append([]float64(nil), p.Values...)
		out.Params[k] = p
	}
	return out
}
