package sla

import (
	"encoding/xml"
	"errors"
	"strings"
	"testing"

	"gqosm/internal/resource"
)

// table1Sample is the exact document of the paper's Table 1 (whitespace
// normalized).
const table1Sample = `<Service-Specific>
  <CPU-QoS>4 CPU</CPU-QoS>
  <Memory-QoS>64MB</Memory-QoS>
  <Network_QoS>
    <Source_IP> 192.200.168.33 </Source_IP>
    <Dest_IP> 135.200.50.101 </Dest_IP>
    <Bandwidth> 10 Mbps </Bandwidth>
    <Packet_Loss> LessThan 10% </Packet_Loss>
  </Network_QoS>
</Service-Specific>`

func TestDecodeTable1Sample(t *testing.T) {
	var doc ServiceSpecificXML
	if err := xml.Unmarshal([]byte(table1Sample), &doc); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	cap, spec, err := DecodeServiceSpecific(doc)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	want := resource.Capacity{CPU: 4, MemoryMB: 64, BandwidthMbps: 10}
	if !cap.Equal(want) {
		t.Errorf("capacity = %v, want %v", cap, want)
	}
	if spec.SourceIP != "192.200.168.33" || spec.DestIP != "135.200.50.101" {
		t.Errorf("endpoints = %q -> %q", spec.SourceIP, spec.DestIP)
	}
	if spec.MaxPacketLossPct != 10 {
		t.Errorf("packet loss = %g, want 10", spec.MaxPacketLossPct)
	}
}

func TestEncodeTable1RoundTrip(t *testing.T) {
	spec := table1Spec()
	alloc := resource.Capacity{CPU: 4, MemoryMB: 64, BandwidthMbps: 10}
	enc := EncodeServiceSpecific(spec, alloc)
	if enc.CPU != "4 CPU" {
		t.Errorf("CPU = %q, want %q", enc.CPU, "4 CPU")
	}
	if enc.Memory != "64MB" {
		t.Errorf("Memory = %q, want %q", enc.Memory, "64MB")
	}
	if enc.Network == nil || enc.Network.Bandwidth != "10 Mbps" {
		t.Fatalf("Network = %+v", enc.Network)
	}
	if enc.Network.PacketLoss != "LessThan 10%" {
		t.Errorf("PacketLoss = %q", enc.Network.PacketLoss)
	}

	data, err := MarshalIndent(enc)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var again ServiceSpecificXML
	if err := xml.Unmarshal(data, &again); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	capBack, specBack, err := DecodeServiceSpecific(again)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !capBack.Equal(alloc) {
		t.Errorf("round-trip capacity = %v, want %v", capBack, alloc)
	}
	if specBack.MaxPacketLossPct != 10 {
		t.Errorf("round-trip loss = %g", specBack.MaxPacketLossPct)
	}
}

// table4Sample mirrors the paper's Table 4 adaptation-options SLA.
const table4Sample = `<Service_SLA>
  <QoS_Class> Controlled-load </QoS_Class>
  <Adaptation_Options>
    <Alternative_QoS>
      <CPU> 55 nodes on Linux OS </CPU>
      <Memory> 48 MB </Memory>
      <Bandwidth> 45 Mbps </Bandwidth>
    </Alternative_QoS>
    <Promotion_Offer>Accept</Promotion_Offer>
  </Adaptation_Options>
</Service_SLA>`

func TestDecodeTable4Sample(t *testing.T) {
	var doc ServiceSLAXML
	if err := xml.Unmarshal([]byte(table4Sample), &doc); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	d, err := DecodeDocument(doc)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if d.Class != ClassControlledLoad {
		t.Errorf("class = %v", d.Class)
	}
	if !d.Adapt.PromotionOffers {
		t.Error("promotion offer not decoded")
	}
	if !d.Adapt.HasAlternative {
		t.Fatal("alternative QoS not decoded")
	}
	want := resource.Capacity{CPU: 55, MemoryMB: 48, BandwidthMbps: 45}
	if !d.Adapt.AlternativeQoS.Equal(want) {
		t.Errorf("alternative = %v, want %v", d.Adapt.AlternativeQoS, want)
	}
	if d.State != StateProposed {
		t.Errorf("state = %v, want proposed", d.State)
	}
}

func TestEncodeDocumentTable4(t *testing.T) {
	d := &Document{
		ID:      "1055",
		Service: "simulation",
		Class:   ClassControlledLoad,
		Spec:    table1Spec(),
		Adapt: AdaptationOptions{
			HasAlternative:  true,
			AlternativeQoS:  resource.Capacity{CPU: 55, MemoryMB: 48, BandwidthMbps: 45},
			PromotionOffers: true,
		},
		Allocated: resource.Capacity{CPU: 4, MemoryMB: 64, BandwidthMbps: 10},
		Price:     120.5,
		State:     StateEstablished,
	}
	enc := EncodeDocument(d)
	data, err := MarshalIndent(enc)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	s := string(data)
	for _, want := range []string{
		"<Service_SLA>", "<QoS_Class>Controlled-load</QoS_Class>",
		"<Alternative_QoS>", "<CPU>55 nodes</CPU>", "<Memory>48 MB</Memory>",
		"<Bandwidth>45 Mbps</Bandwidth>", "<Promotion_Offer>Accept</Promotion_Offer>",
		"<Total_Cost>120.5</Total_Cost>",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("encoded SLA missing %q:\n%s", want, s)
		}
	}

	// Round trip.
	var again ServiceSLAXML
	if err := xml.Unmarshal(data, &again); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	back, err := DecodeDocument(again)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if back.ID != d.ID || back.Class != d.Class || back.Price != d.Price {
		t.Errorf("round trip = %+v", back)
	}
	if !back.Adapt.AlternativeQoS.Equal(d.Adapt.AlternativeQoS) {
		t.Errorf("alternative = %v", back.Adapt.AlternativeQoS)
	}
	if !back.Allocated.Equal(d.Allocated) {
		t.Errorf("allocated = %v, want %v", back.Allocated, d.Allocated)
	}
}

func TestEncodeDocumentDeclinesPromotion(t *testing.T) {
	d := &Document{
		ID:    "p1",
		Class: ClassControlledLoad,
		Spec:  NewSpec(Range(resource.CPU, 4, 10)),
		State: StateEstablished,
	}
	enc := EncodeDocument(d)
	if enc.Adapt == nil || enc.Adapt.PromotionOffer != "Decline" {
		t.Fatalf("Adapt = %+v, want explicit Decline", enc.Adapt)
	}
}

func TestDecodeDocumentErrors(t *testing.T) {
	bad := []ServiceSLAXML{
		{Class: "platinum"},
		{Class: "Guaranteed", Spec: &ServiceSpecificXML{CPU: "lots"}},
		{Class: "Guaranteed", Price: "free"},
		{Class: "Guaranteed", Adapt: &AdaptationXML{Alternative: &AlternativeQoSXML{CPU: "many nodes"}}},
	}
	for i, doc := range bad {
		if _, err := DecodeDocument(doc); err == nil {
			t.Errorf("case %d: decode succeeded, want error", i)
		}
	}
}

func TestParseQuantity(t *testing.T) {
	tests := []struct {
		in      string
		want    float64
		wantErr bool
	}{
		{"4 CPU", 4, false},
		{"64MB", 64, false},
		{"10 Mbps", 10, false},
		{"9.5 Mbps", 9.5, false},
		{"LessThan 10%", 10, false},
		{"MoreThan 2", 2, false},
		{"55 nodes on Linux OS", 55, false},
		{"10ms", 10, false},
		{" 622 Mbps ", 622, false},
		{"", 0, true},
		{"lots", 0, true},
		{"LessThan much", 0, true},
	}
	for _, tt := range tests {
		t.Run(tt.in, func(t *testing.T) {
			got, err := ParseQuantity(tt.in)
			if (err != nil) != tt.wantErr {
				t.Fatalf("err = %v, wantErr %v", err, tt.wantErr)
			}
			if got != tt.want {
				t.Errorf("ParseQuantity = %g, want %g", got, tt.want)
			}
		})
	}
}

func TestMemoryRepository(t *testing.T) {
	r := NewMemoryRepository()
	d := guaranteedDoc()
	if err := r.Put(d); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if err := r.Put(&Document{}); err == nil {
		t.Error("Put of empty-ID document succeeded")
	}
	got, err := r.Get(d.ID)
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	// Repository hands out copies.
	got.Service = "mutated"
	again, err := r.Get(d.ID)
	if err != nil {
		t.Fatal(err)
	}
	if again.Service != "simulation" {
		t.Error("repository leaked internal document")
	}
	if _, err := r.Get("missing"); !errors.Is(err, ErrNotFound) {
		t.Errorf("Get missing err = %v", err)
	}

	d2 := guaranteedDoc()
	d2.ID = "0999"
	if err := r.Put(d2); err != nil {
		t.Fatal(err)
	}
	all, err := r.List(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 2 || all[0].ID != "0999" || all[1].ID != "1055" {
		t.Fatalf("List = %v", all)
	}
	some, err := r.List(func(d *Document) bool { return d.ID == "1055" })
	if err != nil || len(some) != 1 {
		t.Fatalf("filtered List = %v, %v", some, err)
	}
	if err := r.Delete(d.ID); err != nil {
		t.Fatal(err)
	}
	if err := r.Delete(d.ID); !errors.Is(err, ErrNotFound) {
		t.Errorf("double Delete err = %v", err)
	}
}

func TestFileRepositoryPersists(t *testing.T) {
	dir := t.TempDir()
	r, err := NewFileRepository(dir)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	d := guaranteedDoc()
	d.Allocated = d.Spec.Floor()
	if err := r.Put(d); err != nil {
		t.Fatalf("Put: %v", err)
	}

	// Reopen and check the document survived.
	r2, err := NewFileRepository(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	got, err := r2.Get(d.ID)
	if err != nil {
		t.Fatalf("Get after reopen: %v", err)
	}
	if got.Class != ClassGuaranteed {
		t.Errorf("class = %v", got.Class)
	}
	if !got.Allocated.Equal(d.Allocated) {
		t.Errorf("allocated = %v, want %v", got.Allocated, d.Allocated)
	}

	if err := r2.Delete(d.ID); err != nil {
		t.Fatal(err)
	}
	r3, err := NewFileRepository(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r3.Get(d.ID); !errors.Is(err, ErrNotFound) {
		t.Errorf("Get after delete+reopen err = %v", err)
	}
}

func TestFileRepositoryIgnoresForeignFiles(t *testing.T) {
	dir := t.TempDir()
	r, err := NewFileRepository(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Put(guaranteedDoc()); err != nil {
		t.Fatal(err)
	}
	all, err := r.List(nil)
	if err != nil || len(all) != 1 {
		t.Fatalf("List = %v, %v", all, err)
	}
}
