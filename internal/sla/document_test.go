package sla

import (
	"errors"
	"testing"
	"time"

	"gqosm/internal/resource"
)

var (
	t0 = time.Date(2003, 6, 16, 9, 0, 0, 0, time.UTC)
	t5 = t0.Add(5 * time.Hour)
)

func guaranteedDoc() *Document {
	return &Document{
		ID:      "1055",
		Service: "simulation",
		Client:  "site-c-scientists",
		Class:   ClassGuaranteed,
		Spec: NewSpec(
			Exact(resource.CPU, 10),
			Exact(resource.MemoryMB, 2048),
			Exact(resource.DiskGB, 15),
		),
		Start: t0,
		End:   t5,
		State: StateProposed,
	}
}

func TestClassString(t *testing.T) {
	tests := []struct {
		c    Class
		want string
	}{
		{ClassGuaranteed, "Guaranteed"},
		{ClassControlledLoad, "Controlled-load"},
		{ClassBestEffort, "Best-effort"},
		{Class(9), "class(9)"},
	}
	for _, tt := range tests {
		if got := tt.c.String(); got != tt.want {
			t.Errorf("%d.String() = %q, want %q", tt.c, got, tt.want)
		}
	}
}

func TestParseClass(t *testing.T) {
	for _, s := range []string{"Guaranteed", "guaranteed"} {
		if c, err := ParseClass(s); err != nil || c != ClassGuaranteed {
			t.Errorf("ParseClass(%q) = %v, %v", s, c, err)
		}
	}
	if c, err := ParseClass("Controlled-load"); err != nil || c != ClassControlledLoad {
		t.Errorf("ParseClass = %v, %v", c, err)
	}
	if c, err := ParseClass("Best-effort"); err != nil || c != ClassBestEffort {
		t.Errorf("ParseClass = %v, %v", c, err)
	}
	if _, err := ParseClass("platinum"); err == nil {
		t.Error("ParseClass(platinum) succeeded")
	}
}

func TestDocumentValidate(t *testing.T) {
	d := guaranteedDoc()
	if err := d.Validate(); err != nil {
		t.Fatalf("valid doc rejected: %v", err)
	}

	tests := []struct {
		name   string
		mutate func(*Document)
	}{
		{"empty id", func(d *Document) { d.ID = "" }},
		{"unknown class", func(d *Document) { d.Class = Class(9) }},
		{"no params", func(d *Document) { d.Spec = Spec{} }},
		{"bad param", func(d *Document) { d.Spec = NewSpec(Exact(resource.CPU, -1)) }},
		{"end before start", func(d *Document) { d.End = d.Start.Add(-time.Hour) }},
		{"promotion on guaranteed", func(d *Document) { d.Adapt.PromotionOffers = true }},
		{"bad sub-sla", func(d *Document) {
			d.SubSLAs = []*Document{{ID: "", Class: ClassGuaranteed}}
		}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			d := guaranteedDoc()
			tt.mutate(d)
			if err := d.Validate(); err == nil {
				t.Error("Validate accepted invalid document")
			}
		})
	}
}

func TestBestEffortNeedsNoParams(t *testing.T) {
	d := &Document{ID: "be-1", Class: ClassBestEffort, State: StateProposed}
	if err := d.Validate(); err != nil {
		t.Fatalf("best-effort without params rejected: %v", err)
	}
}

func TestPromotionOffersOnControlledLoad(t *testing.T) {
	d := guaranteedDoc()
	d.Class = ClassControlledLoad
	d.Spec = NewSpec(Range(resource.CPU, 10, 55))
	d.Adapt.PromotionOffers = true
	if err := d.Validate(); err != nil {
		t.Fatalf("controlled-load promotion rejected: %v", err)
	}
}

func TestCompositeWithOnlySubSLAs(t *testing.T) {
	// §5.6: a composite SLA negotiated as 3 sub-SLAs.
	sub1 := &Document{ID: "SLA_net1", Class: ClassGuaranteed,
		Spec: NewSpec(Exact(resource.BandwidthMbps, 622)), State: StateProposed}
	sub2 := &Document{ID: "SLA_net2", Class: ClassGuaranteed,
		Spec: NewSpec(Exact(resource.BandwidthMbps, 45)), State: StateProposed}
	sub3 := guaranteedDoc()
	sub3.ID = "SLA_comp"
	comp := &Document{
		ID:      "composite-56",
		Class:   ClassGuaranteed,
		State:   StateProposed,
		SubSLAs: []*Document{sub1, sub2, sub3},
	}
	if err := comp.Validate(); err != nil {
		t.Fatalf("composite rejected: %v", err)
	}
	floor := comp.GuaranteedFloor()
	want := resource.Capacity{CPU: 10, MemoryMB: 2048, DiskGB: 15, BandwidthMbps: 667}
	if !floor.Equal(want) {
		t.Errorf("GuaranteedFloor = %v, want %v", floor, want)
	}
}

func TestLifecycleHappyPath(t *testing.T) {
	d := guaranteedDoc()
	seq := []State{StateEstablished, StateActive, StateDegraded, StateActive, StateTerminated}
	for _, next := range seq {
		if err := d.Transition(next); err != nil {
			t.Fatalf("Transition(%v): %v", next, err)
		}
	}
	if !d.State.Terminal() {
		t.Error("terminated state not terminal")
	}
}

func TestLifecycleViolationRecovery(t *testing.T) {
	d := guaranteedDoc()
	for _, next := range []State{StateEstablished, StateActive, StateViolated, StateActive, StateExpired} {
		if err := d.Transition(next); err != nil {
			t.Fatalf("Transition(%v): %v", next, err)
		}
	}
}

func TestLifecycleRejectsInvalid(t *testing.T) {
	tests := []struct {
		from, to State
	}{
		{StateProposed, StateActive},      // must establish first
		{StateProposed, StateDegraded},    //
		{StateEstablished, StateDegraded}, // must activate first
		{StateTerminated, StateActive},    // terminal
		{StateExpired, StateActive},       // terminal
		{StateActive, StateProposed},      // no going back
		{StateActive, StateEstablished},   //
		{StateEstablished, StateViolated}, // not yet active
	}
	for _, tt := range tests {
		d := guaranteedDoc()
		d.State = tt.from
		if err := d.Transition(tt.to); !errors.Is(err, ErrBadTransition) {
			t.Errorf("Transition %v->%v err = %v, want ErrBadTransition", tt.from, tt.to, err)
		}
		if d.State != tt.from {
			t.Errorf("failed transition mutated state to %v", d.State)
		}
	}
}

func TestStateStrings(t *testing.T) {
	states := []State{StateProposed, StateEstablished, StateActive, StateDegraded,
		StateViolated, StateTerminated, StateExpired}
	names := []string{"proposed", "established", "active", "degraded",
		"violated", "terminated", "expired"}
	for i, s := range states {
		if s.String() != names[i] {
			t.Errorf("%d String = %q, want %q", i, s.String(), names[i])
		}
	}
	if State(99).String() != "state(99)" {
		t.Error("unknown state String")
	}
}

func TestActiveAt(t *testing.T) {
	d := guaranteedDoc()
	if d.ActiveAt(t0.Add(-time.Second)) {
		t.Error("active before start")
	}
	if !d.ActiveAt(t0) {
		t.Error("not active at start")
	}
	if !d.ActiveAt(t5.Add(-time.Second)) {
		t.Error("not active just before end")
	}
	if d.ActiveAt(t5) {
		t.Error("active at end (interval is half-open)")
	}
	open := guaranteedDoc()
	open.End = time.Time{}
	if !open.ActiveAt(t5.Add(100 * time.Hour)) {
		t.Error("open-ended SLA not active")
	}
}

func TestDocumentCloneIsDeep(t *testing.T) {
	d := guaranteedDoc()
	d.SubSLAs = []*Document{{ID: "sub", Class: ClassBestEffort, State: StateProposed}}
	c := d.Clone()
	c.Spec.Params[resource.CPU] = Exact(resource.CPU, 99)
	c.SubSLAs[0].ID = "mutated"
	if d.Spec.Params[resource.CPU].Exact != 10 {
		t.Error("Clone shares Spec")
	}
	if d.SubSLAs[0].ID != "sub" {
		t.Error("Clone shares SubSLAs")
	}
}
