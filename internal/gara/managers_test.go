package gara

import (
	"testing"
	"time"

	"gqosm/internal/dsrt"
	"gqosm/internal/nrm"
	"gqosm/internal/resource"
	"gqosm/internal/rsl"
)

var (
	mgrT0 = time.Date(2003, time.June, 16, 9, 0, 0, 0, time.UTC)
	mgrT1 = mgrT0.Add(4 * time.Hour)
)

func mustRSL(t *testing.T, src string) *rsl.Node {
	t.Helper()
	n, err := rsl.Parse(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return n
}

func TestComputeManagerLifecycle(t *testing.T) {
	pool := resource.NewPool("sgi", resource.Capacity{CPU: 16, MemoryMB: 4096, DiskGB: 100})
	m := NewComputeManager(pool)
	if m.Type() != TypeCompute {
		t.Fatalf("type = %q", m.Type())
	}
	if m.Pool() != pool {
		t.Fatal("Pool() does not expose the backing pool")
	}

	token, err := m.Reserve(mustRSL(t, `&(count=4)(memory=512)(disk=10)`), mgrT0, mgrT1, "job-1")
	if err != nil {
		t.Fatal(err)
	}
	want := resource.Capacity{CPU: 4, MemoryMB: 512, DiskGB: 10}
	if use := pool.InUse(mgrT0); !use.Equal(want) {
		t.Fatalf("in use %v, want %v", use, want)
	}

	if err := m.Modify(token, mustRSL(t, `&(count=2)(memory=256)(disk=5)`)); err != nil {
		t.Fatal(err)
	}
	want = resource.Capacity{CPU: 2, MemoryMB: 256, DiskGB: 5}
	if use := pool.InUse(mgrT0); !use.Equal(want) {
		t.Fatalf("after modify: in use %v, want %v", use, want)
	}

	if err := m.Cancel(token); err != nil {
		t.Fatal(err)
	}
	if use := pool.InUse(mgrT0); !use.IsZero() {
		t.Fatalf("after cancel: in use %v, want zero", use)
	}
}

func TestComputeManagerRejectsEmptyAndOversized(t *testing.T) {
	pool := resource.NewPool("sgi", resource.Capacity{CPU: 8})
	m := NewComputeManager(pool)
	if _, err := m.Reserve(mustRSL(t, `&(reservation-type="compute")`), mgrT0, mgrT1, "t"); err == nil {
		t.Fatal("empty request admitted")
	}
	if _, err := m.Reserve(mustRSL(t, `&(count=9)`), mgrT0, mgrT1, "t"); err == nil {
		t.Fatal("over-capacity request admitted")
	}
}

func TestStorageManagerLifecycle(t *testing.T) {
	pool := resource.NewPool("raid", resource.Capacity{DiskGB: 50})
	m := NewStorageManager(pool)
	if m.Type() != TypeStorage {
		t.Fatalf("type = %q", m.Type())
	}
	if _, err := m.Reserve(mustRSL(t, `&(reservation-type="storage")`), mgrT0, mgrT1, "t"); err == nil {
		t.Fatal("zero-disk request admitted")
	}
	token, err := m.Reserve(mustRSL(t, `&(disk=30)`), mgrT0, mgrT1, "t")
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Modify(token, mustRSL(t, `&(disk=45)`)); err != nil {
		t.Fatal(err)
	}
	if use := pool.InUse(mgrT0); use.DiskGB != 45 {
		t.Fatalf("disk in use %v, want 45", use.DiskGB)
	}
	if err := m.Cancel(token); err != nil {
		t.Fatal(err)
	}
	if use := pool.InUse(mgrT0); !use.IsZero() {
		t.Fatalf("after cancel: %v", use)
	}
}

func newTestNRM(t *testing.T) *nrm.Manager {
	t.Helper()
	topo := nrm.NewTopology()
	if err := topo.AddDomain("site-a", "192.200.168.0/24"); err != nil {
		t.Fatal(err)
	}
	if err := topo.AddDomain("site-b", "135.200.50.0/24"); err != nil {
		t.Fatal(err)
	}
	if err := topo.AddLink("site-a", "site-b", 100); err != nil {
		t.Fatal(err)
	}
	return nrm.NewManager("site-a", topo)
}

func TestNetworkManagerLifecycleAndAliases(t *testing.T) {
	m := NewNetworkManager(newTestNRM(t))
	if m.Type() != TypeNetwork {
		t.Fatalf("type = %q", m.Type())
	}
	if _, err := m.Reserve(mustRSL(t, `&(bandwidth=10)`), mgrT0, mgrT1, "t"); err == nil {
		t.Fatal("request without endpoints admitted")
	}

	spec := `&(source-ip="192.200.168.33")(dest-ip="135.200.50.101")(bandwidth=10)`
	token, err := m.Reserve(mustRSL(t, spec), mgrT0, mgrT1, "flow-1")
	if err != nil {
		t.Fatal(err)
	}
	flow, err := m.Flow(token)
	if err != nil {
		t.Fatal(err)
	}
	if flow.Mbps != 10 {
		t.Fatalf("flow at %v Mbps, want 10", flow.Mbps)
	}

	// Modify re-reserves under a fresh flow ID; the original token must
	// keep resolving through the alias map.
	if err := m.Modify(token, mustRSL(t, `&(bandwidth=25)`)); err != nil {
		t.Fatal(err)
	}
	flow2, err := m.Flow(token)
	if err != nil {
		t.Fatal(err)
	}
	if flow2.Mbps != 25 {
		t.Fatalf("modified flow at %v Mbps, want 25", flow2.Mbps)
	}
	if flow2.ID == flow.ID {
		t.Fatal("expected a fresh flow ID after modify")
	}

	// A second modify chains the alias one level deeper.
	if err := m.Modify(token, mustRSL(t, `&(bandwidth=40)`)); err != nil {
		t.Fatal(err)
	}
	if err := m.Cancel(token); err != nil {
		t.Fatalf("cancel via aliased token: %v", err)
	}
	if _, err := m.Flow(token); err == nil {
		t.Fatal("flow survived cancel")
	}
}

func TestNetworkManagerModifyRestoresOnFailure(t *testing.T) {
	m := NewNetworkManager(newTestNRM(t))
	spec := `&(source-ip="192.200.168.33")(dest-ip="135.200.50.101")(bandwidth=60)`
	token, err := m.Reserve(mustRSL(t, spec), mgrT0, mgrT1, "flow-1")
	if err != nil {
		t.Fatal(err)
	}
	// 200 Mbps exceeds the 100 Mbps link: the modify must fail and the
	// original 60 Mbps reservation must survive.
	if err := m.Modify(token, mustRSL(t, `&(bandwidth=200)`)); err == nil {
		t.Fatal("over-capacity modify succeeded")
	}
	flow, err := m.Flow(token)
	if err != nil {
		t.Fatalf("original flow lost after failed modify: %v", err)
	}
	if flow.Mbps != 60 {
		t.Fatalf("restored flow at %v Mbps, want 60", flow.Mbps)
	}
}

func TestDSRTManagerDirectLifecycle(t *testing.T) {
	sched := dsrt.New(dsrt.Config{Processors: 2}, nil)
	m := NewDSRTManager(sched)
	if m.Type() != TypeCPUShare {
		t.Fatalf("type = %q", m.Type())
	}
	if m.Scheduler() != sched {
		t.Fatal("Scheduler() does not expose the backing scheduler")
	}

	token, err := m.Reserve(mustRSL(t, `&(class="PCPT")(share=0.5)(period=30)`), mgrT0, mgrT1, "t")
	if err != nil {
		t.Fatal(err)
	}
	if got := sched.Reserved(); got != 0.5 {
		t.Fatalf("reserved %v, want 0.5", got)
	}
	if err := m.Modify(token, mustRSL(t, `&(share=0.75)`)); err != nil {
		t.Fatal(err)
	}
	if got := sched.Reserved(); got != 0.75 {
		t.Fatalf("after modify: reserved %v, want 0.75", got)
	}
	// Bind/Unbind are no-ops for DSRT; the registration is the contract.
	if err := m.Bind(token, BindParam{PID: 99}); err != nil {
		t.Fatal(err)
	}
	if err := m.Unbind(token); err != nil {
		t.Fatal(err)
	}
	if err := m.Cancel(token); err != nil {
		t.Fatal(err)
	}
	if got := sched.Reserved(); got != 0 {
		t.Fatalf("after cancel: reserved %v, want 0", got)
	}
}

func TestDSRTManagerBadTokens(t *testing.T) {
	m := NewDSRTManager(dsrt.New(dsrt.Config{}, nil))
	if err := m.Modify("not-a-pid", mustRSL(t, `&(share=0.1)`)); err == nil {
		t.Fatal("modify with bad token succeeded")
	}
	if err := m.Cancel("not-a-pid"); err == nil {
		t.Fatal("cancel with bad token succeeded")
	}
	// Over-capacity admission must fail (1 CPU, util bound 1.0).
	if _, err := m.Reserve(mustRSL(t, `&(class="PVPT")(share=1.5)(period=10)`), mgrT0, mgrT1, "t"); err == nil {
		t.Fatal("over-capacity share admitted")
	}
}
