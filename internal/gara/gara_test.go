package gara

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"gqosm/internal/dsrt"
	"gqosm/internal/nrm"
	"gqosm/internal/resource"
	"gqosm/internal/rsl"
)

var (
	t0   = time.Date(2003, 6, 16, 9, 0, 0, 0, time.UTC)
	tEnd = t0.Add(5 * time.Hour)
)

// testSystem wires GARA to a 26-node compute pool, a 500 GB storage pool,
// the §5.6 network, and a 4-processor DSRT scheduler.
func testSystem(t *testing.T) (*System, *resource.Pool, *nrm.Manager) {
	t.Helper()
	pool := resource.NewPool("sgi", resource.Capacity{CPU: 26, MemoryMB: 10240, DiskGB: 200})
	topo := nrm.NewTopology()
	for _, d := range []struct{ name, cidr string }{
		{"site-a", "192.200.168.0/24"},
		{"site-b", "135.200.50.0/24"},
	} {
		if err := topo.AddDomain(d.name, d.cidr); err != nil {
			t.Fatal(err)
		}
	}
	if err := topo.AddLink("site-a", "site-b", 1000); err != nil {
		t.Fatal(err)
	}
	netMgr := nrm.NewManager("site-a", topo)

	s := NewSystem()
	s.RegisterManager(NewComputeManager(pool))
	s.RegisterManager(NewStorageManager(resource.NewPool("store", resource.Capacity{DiskGB: 500})))
	s.RegisterManager(NewNetworkManager(netMgr))
	s.RegisterManager(NewDSRTManager(dsrt.New(dsrt.Config{Processors: 4}, nil)))
	return s, pool, netMgr
}

const computeReq = `&(reservation-type="compute")(count=10)(memory=2048)(disk=15)`

func TestCreateComputeReservation(t *testing.T) {
	s, pool, _ := testSystem(t)
	h, err := s.Create(computeReq, t0, tEnd, "SLA_comp")
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	r, err := s.Get(h)
	if err != nil {
		t.Fatal(err)
	}
	if r.Status != StatusReserved {
		t.Errorf("Status = %v", r.Status)
	}
	if len(r.Parts) != 1 {
		t.Errorf("Parts = %v", r.Parts)
	}
	want := resource.Capacity{CPU: 10, MemoryMB: 2048, DiskGB: 15}
	if got := pool.InUse(t0); !got.Equal(want) {
		t.Errorf("pool in use = %v, want %v", got, want)
	}
}

func TestBindUnbindLifecycle(t *testing.T) {
	s, _, _ := testSystem(t)
	h, err := s.Create(computeReq, t0, tEnd, "")
	if err != nil {
		t.Fatal(err)
	}
	// Claim the reservation with the launched process ID (§3.1).
	if err := s.Bind(h, BindParam{PID: 4242}); err != nil {
		t.Fatalf("Bind: %v", err)
	}
	r, _ := s.Get(h)
	if r.Status != StatusBound || r.BoundPID != 4242 {
		t.Errorf("after bind: %+v", r)
	}
	if err := s.Unbind(h); err != nil {
		t.Fatalf("Unbind: %v", err)
	}
	r, _ = s.Get(h)
	if r.Status != StatusReserved || r.BoundPID != 0 {
		t.Errorf("after unbind: %+v", r)
	}
	if err := s.Unbind(h); !errors.Is(err, ErrNotBound) {
		t.Errorf("double Unbind err = %v", err)
	}
}

func TestCancelReleasesResources(t *testing.T) {
	s, pool, _ := testSystem(t)
	h, err := s.Create(computeReq, t0, tEnd, "")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Cancel(h); err != nil {
		t.Fatalf("Cancel: %v", err)
	}
	if got := pool.InUse(t0); !got.IsZero() {
		t.Errorf("pool in use after cancel = %v", got)
	}
	if err := s.Cancel(h); !errors.Is(err, ErrCanceled) {
		t.Errorf("double Cancel err = %v", err)
	}
	if err := s.Bind(h, BindParam{PID: 1}); !errors.Is(err, ErrCanceled) {
		t.Errorf("Bind after cancel err = %v", err)
	}
}

func TestCoAllocationMultirequest(t *testing.T) {
	s, pool, netMgr := testSystem(t)
	// The §5.6 composite request: compute at site A plus the B->A link.
	req := `+(&(reservation-type="compute")(count=10)(memory=2048)(disk=15))` +
		`(&(reservation-type="network")(source-ip="135.200.50.101")(dest-ip="192.200.168.33")(bandwidth=622))`
	h, err := s.Create(req, t0, tEnd, "composite")
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	r, _ := s.Get(h)
	if len(r.Parts) != 2 {
		t.Fatalf("Parts = %v", r.Parts)
	}
	if pool.InUse(t0).CPU != 10 {
		t.Error("compute part not reserved")
	}
	if len(netMgr.Flows()) != 1 {
		t.Error("network part not reserved")
	}
	if err := s.Cancel(h); err != nil {
		t.Fatal(err)
	}
	if len(netMgr.Flows()) != 0 {
		t.Error("network part not released on cancel")
	}
}

func TestCoAllocationAtomicRollback(t *testing.T) {
	s, pool, netMgr := testSystem(t)
	// Network part asks for more than the 1000 Mbps link: the whole
	// multirequest must fail and the compute part must be rolled back.
	req := `+(&(reservation-type="compute")(count=10))` +
		`(&(reservation-type="network")(source-ip="135.200.50.101")(dest-ip="192.200.168.33")(bandwidth=2000))`
	if _, err := s.Create(req, t0, tEnd, ""); err == nil {
		t.Fatal("Create succeeded, want failure")
	}
	if got := pool.InUse(t0); !got.IsZero() {
		t.Errorf("compute part leaked: %v", got)
	}
	if len(netMgr.Flows()) != 0 {
		t.Error("network part leaked")
	}
}

func TestCreateErrors(t *testing.T) {
	s, _, _ := testSystem(t)
	tests := []struct {
		name, req string
	}{
		{"bad rsl", "&(count="},
		{"missing type", `&(count=10)`},
		{"unknown type", `&(reservation-type="warp-drive")(count=1)`},
		{"empty compute", `&(reservation-type="compute")(label="x")`},
		{"storage no disk", `&(reservation-type="storage")(count=3)`},
		{"network no endpoints", `&(reservation-type="network")(bandwidth=10)`},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := s.Create(tt.req, t0, tEnd, ""); err == nil {
				t.Errorf("Create(%q) succeeded", tt.req)
			}
		})
	}
	if _, err := s.Get("ghost"); !errors.Is(err, ErrUnknownHandle) {
		t.Errorf("Get unknown err = %v", err)
	}
	if err := s.Bind("ghost", BindParam{}); !errors.Is(err, ErrUnknownHandle) {
		t.Errorf("Bind unknown err = %v", err)
	}
	if err := s.Cancel("ghost"); !errors.Is(err, ErrUnknownHandle) {
		t.Errorf("Cancel unknown err = %v", err)
	}
	if err := s.Unbind("ghost"); !errors.Is(err, ErrUnknownHandle) {
		t.Errorf("Unbind unknown err = %v", err)
	}
	if err := s.Modify("ghost", computeReq); !errors.Is(err, ErrUnknownHandle) {
		t.Errorf("Modify unknown err = %v", err)
	}
}

func TestModifyCompute(t *testing.T) {
	s, pool, _ := testSystem(t)
	h, err := s.Create(computeReq, t0, tEnd, "")
	if err != nil {
		t.Fatal(err)
	}
	// Shrink to 4 nodes (the QoS adaptation path).
	if err := s.Modify(h, `&(reservation-type="compute")(count=4)(memory=1024)(disk=15)`); err != nil {
		t.Fatalf("Modify: %v", err)
	}
	want := resource.Capacity{CPU: 4, MemoryMB: 1024, DiskGB: 15}
	if got := pool.InUse(t0); !got.Equal(want) {
		t.Errorf("after modify: %v, want %v", got, want)
	}
	// Growing beyond the pool fails.
	if err := s.Modify(h, `&(reservation-type="compute")(count=99)`); err == nil {
		t.Error("oversized Modify succeeded")
	}
	// Modify introducing a type the reservation does not hold fails.
	if err := s.Modify(h, `&(reservation-type="storage")(disk=10)`); !errors.Is(err, ErrUnknownType) {
		t.Errorf("cross-type Modify err = %v", err)
	}
	// Modify after cancel fails.
	if err := s.Cancel(h); err != nil {
		t.Fatal(err)
	}
	if err := s.Modify(h, computeReq); !errors.Is(err, ErrCanceled) {
		t.Errorf("Modify after cancel err = %v", err)
	}
}

func TestModifyNetworkReissuesFlow(t *testing.T) {
	s, _, netMgr := testSystem(t)
	req := `&(reservation-type="network")(source-ip="135.200.50.101")(dest-ip="192.200.168.33")(bandwidth=622)`
	h, err := s.Create(req, t0, tEnd, "SLA_net1")
	if err != nil {
		t.Fatal(err)
	}
	// Adapt the reservation down to 100 Mbps, twice (alias chasing).
	for _, bw := range []float64{100, 200} {
		mod := fmt.Sprintf(`&(reservation-type="network")(bandwidth=%g)`, bw)
		if err := s.Modify(h, mod); err != nil {
			t.Fatalf("Modify(%g): %v", bw, err)
		}
		flows := netMgr.Flows()
		if len(flows) != 1 || flows[0].Mbps != bw {
			t.Fatalf("flows after modify = %+v", flows)
		}
	}
	// Cancel still works through the alias.
	if err := s.Cancel(h); err != nil {
		t.Fatalf("Cancel after modify: %v", err)
	}
	if len(netMgr.Flows()) != 0 {
		t.Error("flow leaked after cancel")
	}
}

func TestModifyNetworkRestoreOnFailure(t *testing.T) {
	s, _, netMgr := testSystem(t)
	req := `&(reservation-type="network")(source-ip="135.200.50.101")(dest-ip="192.200.168.33")(bandwidth=622)`
	h, err := s.Create(req, t0, tEnd, "")
	if err != nil {
		t.Fatal(err)
	}
	// Asking for more than the link fails but must restore 622.
	if err := s.Modify(h, `&(reservation-type="network")(bandwidth=5000)`); err == nil {
		t.Fatal("oversized network Modify succeeded")
	}
	flows := netMgr.Flows()
	if len(flows) != 1 || flows[0].Mbps != 622 {
		t.Fatalf("flow not restored: %+v", flows)
	}
}

func TestDSRTManagerLifecycle(t *testing.T) {
	sched := dsrt.New(dsrt.Config{Processors: 1}, nil)
	s := NewSystem()
	s.RegisterManager(NewDSRTManager(sched))
	h, err := s.Create(`&(reservation-type="cpu-share")(share=0.5)(class="PCPT")(period=33)`, t0, tEnd, "")
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	if got := sched.Reserved(); got != 0.5 {
		t.Errorf("Reserved = %g", got)
	}
	if err := s.Bind(h, BindParam{PID: 77}); err != nil {
		t.Fatalf("Bind: %v", err)
	}
	if err := s.Modify(h, `&(reservation-type="cpu-share")(share=0.25)`); err != nil {
		t.Fatalf("Modify: %v", err)
	}
	if got := sched.Reserved(); got != 0.25 {
		t.Errorf("Reserved after modify = %g", got)
	}
	if err := s.Unbind(h); err != nil {
		t.Fatal(err)
	}
	if err := s.Cancel(h); err != nil {
		t.Fatal(err)
	}
	if got := sched.Reserved(); got != 0 {
		t.Errorf("Reserved after cancel = %g", got)
	}
}

func TestStorageManager(t *testing.T) {
	pool := resource.NewPool("store", resource.Capacity{DiskGB: 100})
	s := NewSystem()
	s.RegisterManager(NewStorageManager(pool))
	h, err := s.Create(`&(reservation-type="storage")(disk=60)`, t0, tEnd, "")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Create(`&(reservation-type="storage")(disk=60)`, t0, tEnd, ""); err == nil {
		t.Error("oversubscribed storage accepted")
	}
	if err := s.Modify(h, `&(reservation-type="storage")(disk=40)`); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Create(`&(reservation-type="storage")(disk=60)`, t0, tEnd, ""); err != nil {
		t.Errorf("fitting storage rejected after shrink: %v", err)
	}
}

func TestReservationsSnapshot(t *testing.T) {
	s, _, _ := testSystem(t)
	for i := 0; i < 3; i++ {
		if _, err := s.Create(`&(reservation-type="compute")(count=2)`, t0, tEnd, ""); err != nil {
			t.Fatal(err)
		}
	}
	rs := s.Reservations()
	if len(rs) != 3 {
		t.Fatalf("Reservations = %d", len(rs))
	}
	// Mutating the snapshot must not affect the system.
	rs[0].Parts["evil"] = "x"
	again, _ := s.Get(rs[0].Handle)
	if _, ok := again.Parts["evil"]; ok {
		t.Error("snapshot shares Parts map")
	}
	types := s.ManagerTypes()
	if len(types) != 4 || types[0] != TypeCompute {
		t.Errorf("ManagerTypes = %v", types)
	}
}

func TestStatusString(t *testing.T) {
	if StatusReserved.String() != "reserved" || StatusBound.String() != "bound" ||
		StatusCanceled.String() != "canceled" || Status(9).String() != "status(9)" {
		t.Error("status strings wrong")
	}
}

func TestConcurrentCreateCancel(t *testing.T) {
	s, pool, _ := testSystem(t)
	var wg sync.WaitGroup
	for i := 0; i < 13; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			h, err := s.Create(`&(reservation-type="compute")(count=2)`, t0, tEnd, "")
			if err != nil {
				// Admission failures under concurrency are fine; leaks
				// are not.
				if !strings.Contains(err.Error(), "insufficient") {
					t.Errorf("Create: %v", err)
				}
				return
			}
			if err := s.Cancel(h); err != nil {
				t.Errorf("Cancel: %v", err)
			}
		}()
	}
	wg.Wait()
	if got := pool.InUse(t0); !got.IsZero() {
		t.Fatalf("pool leaked %v after concurrent create/cancel", got)
	}
}

// Property-ish check via the rsl evaluator: the compute capacity parsed
// from a generated spec matches what we asked for.
func TestComputeCapacityFromRSL(t *testing.T) {
	spec := rsl.Conj(
		rsl.EqStr("reservation-type", "compute"),
		rsl.Eq("count", 10), rsl.Eq("memory", 2048), rsl.Eq("disk", 15),
	)
	got := computeCapacity(spec)
	want := resource.Capacity{CPU: 10, MemoryMB: 2048, DiskGB: 15}
	if !got.Equal(want) {
		t.Errorf("computeCapacity = %v, want %v", got, want)
	}
}

func TestManagerAccessors(t *testing.T) {
	pool := resource.NewPool("p", resource.Nodes(10))
	cm := NewComputeManager(pool)
	if cm.Pool() != pool {
		t.Error("ComputeManager.Pool mismatch")
	}
	topo := nrm.NewTopology()
	if err := topo.AddDomain("d", "10.0.0.0/8"); err != nil {
		t.Fatal(err)
	}
	netMgr := nrm.NewManager("d", topo)
	nm := NewNetworkManager(netMgr)
	if nm.NRM() != netMgr {
		t.Error("NetworkManager.NRM mismatch")
	}
	sched := dsrt.New(dsrt.Config{Processors: 1}, nil)
	dm := NewDSRTManager(sched)
	if dm.Scheduler() != sched {
		t.Error("DSRTManager.Scheduler mismatch")
	}
	// dsrtClass covers all mnemonics.
	if dsrtClass("PCPT") != dsrt.PeriodicConstant || dsrtClass("pvpt") != dsrt.PeriodicVariable ||
		dsrtClass("anything") != dsrt.Aperiodic {
		t.Error("dsrtClass mapping wrong")
	}
	// DSRT Modify/Cancel reject malformed tokens.
	if err := dm.Modify("not-a-pid", rsl.Conj(rsl.Eq("share", 0.2))); err == nil {
		t.Error("bad dsrt token accepted by Modify")
	}
	if err := dm.Cancel("not-a-pid"); err == nil {
		t.Error("bad dsrt token accepted by Cancel")
	}
}

func TestNetworkManagerFlowFollowsAliases(t *testing.T) {
	topo := nrm.NewTopology()
	for _, d := range []struct{ name, cidr string }{
		{"site-a", "192.200.168.0/24"},
		{"site-b", "135.200.50.0/24"},
	} {
		if err := topo.AddDomain(d.name, d.cidr); err != nil {
			t.Fatal(err)
		}
	}
	if err := topo.AddLink("site-a", "site-b", 1000); err != nil {
		t.Fatal(err)
	}
	netMgr := nrm.NewManager("site-a", topo)
	nm := NewNetworkManager(netMgr)
	s := NewSystem()
	s.RegisterManager(nm)

	req := `&(reservation-type="network")(source-ip="135.200.50.101")(dest-ip="192.200.168.33")(bandwidth=100)`
	h, err := s.Create(req, t0, tEnd, "alias-test")
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Get(h)
	if err != nil {
		t.Fatal(err)
	}
	token := res.Parts[TypeNetwork]

	// Two successive modifies re-issue the flow twice; the original
	// token must still resolve through the alias table.
	for _, bw := range []float64{50, 75} {
		if err := s.Modify(h, fmt.Sprintf(`&(reservation-type="network")(bandwidth=%g)`, bw)); err != nil {
			t.Fatalf("Modify(%g): %v", bw, err)
		}
		flow, err := nm.Flow(token)
		if err != nil {
			t.Fatalf("Flow(original token) after modify: %v", err)
		}
		if flow.Mbps != bw {
			t.Fatalf("Flow = %g Mbps, want %g", flow.Mbps, bw)
		}
	}
	if err := s.Cancel(h); err != nil {
		t.Fatalf("Cancel through alias: %v", err)
	}
	if len(netMgr.Flows()) != 0 {
		t.Error("flow leaked")
	}
}

func TestStorageManagerCancel(t *testing.T) {
	pool := resource.NewPool("store", resource.Capacity{DiskGB: 100})
	s := NewSystem()
	s.RegisterManager(NewStorageManager(pool))
	h, err := s.Create(`&(reservation-type="storage")(disk=60)`, t0, tEnd, "")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Cancel(h); err != nil {
		t.Fatalf("Cancel: %v", err)
	}
	if got := pool.InUse(t0); !got.IsZero() {
		t.Errorf("pool holds %v after cancel", got)
	}
}

func TestPruneCanceled(t *testing.T) {
	pool := resource.NewPool("m", resource.Capacity{CPU: 16})
	s := NewSystem()
	s.RegisterManager(NewComputeManager(pool))
	start := time.Date(2003, 6, 16, 9, 0, 0, 0, time.UTC)
	end := start.Add(time.Hour)

	h1, err := s.Create(`&(reservation-type="compute")(count=2)`, start, end, "keep")
	if err != nil {
		t.Fatal(err)
	}
	h2, err := s.Create(`&(reservation-type="compute")(count=2)`, start, end, "drop")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Cancel(h2); err != nil {
		t.Fatal(err)
	}

	if got := s.PruneCanceled(); got != 1 {
		t.Fatalf("PruneCanceled = %d, want 1", got)
	}
	if got := s.PruneCanceled(); got != 0 {
		t.Fatalf("second PruneCanceled = %d, want 0", got)
	}
	if _, err := s.Get(h2); !errors.Is(err, ErrUnknownHandle) {
		t.Errorf("Get(pruned) = %v, want ErrUnknownHandle", err)
	}
	if r, err := s.Get(h1); err != nil || r.Status == StatusCanceled {
		t.Errorf("live reservation disturbed: %v, %v", r, err)
	}
	if n := len(s.Reservations()); n != 1 {
		t.Errorf("Reservations after prune = %d, want 1", n)
	}
}
