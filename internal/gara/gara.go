// Package gara is a from-scratch implementation of the Globus Architecture
// for Reservation and Allocation (GARA) API surface the paper's
// Reservation System is built on (Table 2):
//
//	globus_gara_reservation_create(gatekeeper, req_rsl, &reserve_handle)
//	globus_gara_reservation_bind(reserve_handle, &bind_param)
//	globus_gara_reservation_unbind(reserve_handle)
//	globus_gara_reservation_cancel(reserve_handle)
//
// plus the Modify operation used by adaptive control ("adapts the network
// reservation using the GARA Create/Modify reservation request", §1.1).
// Reservation requests are RSL strings; a successful creation returns a
// Reservation Handle; reservations must subsequently be *claimed* by
// binding the launched process to them (§3.1).
//
// GARA provides "a uniform mechanism for making QoS reservations for
// different types of Grid resources, such as processors, networks and
// storage devices": the System routes each request to a pluggable
// ResourceManager by the request's `reservation-type` attribute, and
// multirequests (`+(...)(...)`) are co-allocated atomically across
// managers.
package gara

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"gqosm/internal/obs"
	"gqosm/internal/rsl"
)

// Handle references a reservation, as returned by Create.
type Handle string

// Status is a reservation's lifecycle status.
type Status int

// Reservation statuses.
const (
	// StatusReserved: created, not yet claimed by a process.
	StatusReserved Status = iota + 1
	// StatusBound: claimed via Bind.
	StatusBound
	// StatusCanceled: released.
	StatusCanceled
)

// String returns the status name.
func (s Status) String() string {
	switch s {
	case StatusReserved:
		return "reserved"
	case StatusBound:
		return "bound"
	case StatusCanceled:
		return "canceled"
	default:
		return fmt.Sprintf("status(%d)", int(s))
	}
}

// BindParam carries the parameters needed to claim a reservation. For
// computational resources "the process ID of the launched process is the
// only parameter required" (§3.1).
type BindParam struct {
	PID int
}

// Reservation is a snapshot of one GARA reservation (possibly a
// co-allocation across several resource managers).
type Reservation struct {
	Handle     Handle
	Spec       string // original RSL
	Start, End time.Time
	Status     Status
	BoundPID   int
	// Tag is the caller-supplied idempotency tag passed to Create (the
	// broker uses the SLA ID). Retry layers use it to adopt a
	// reservation whose create reply was lost instead of committing a
	// second one.
	Tag string
	// Parts lists the component reservations: resource-manager type →
	// manager-internal token. Single-type requests have one part.
	Parts map[string]string
}

// GARA errors.
var (
	// ErrUnknownHandle is returned for operations on unknown handles.
	ErrUnknownHandle = errors.New("gara: unknown reservation handle")
	// ErrUnknownType is returned when no manager handles a request's
	// reservation-type.
	ErrUnknownType = errors.New("gara: no resource manager for reservation-type")
	// ErrNotBound is returned by Unbind on an unbound reservation.
	ErrNotBound = errors.New("gara: reservation not bound")
	// ErrCanceled is returned for operations on canceled reservations.
	ErrCanceled = errors.New("gara: reservation canceled")
)

// ResourceManager is the per-resource-type backend GARA routes requests
// to. Implementations must be safe for concurrent use.
type ResourceManager interface {
	// Type returns the reservation-type this manager serves (e.g.
	// "compute", "network", "storage", "cpu-share").
	Type() string
	// Reserve claims the resources described by spec over [start, end),
	// returning a manager-internal token.
	Reserve(spec *rsl.Node, start, end time.Time, tag string) (string, error)
	// Modify adjusts an existing reservation to the new spec.
	Modify(token string, spec *rsl.Node) error
	// Cancel releases the reservation.
	Cancel(token string) error
}

// Binder is optionally implemented by resource managers that need to know
// when a process claims its reservation (e.g. a CPU scheduler attaching
// the PID).
type Binder interface {
	Bind(token string, param BindParam) error
	Unbind(token string) error
}

// System is a GARA instance: a registry of resource managers plus the
// reservation table. It is safe for concurrent use.
type System struct {
	mu       sync.Mutex
	nextID   int
	managers map[string]ResourceManager
	res      map[Handle]*Reservation
	// byTag indexes live (non-canceled) reservations by their idempotency
	// tag, so FindByTag — consulted on the admission hot path before every
	// create attempt — is a map lookup, not a table scan. Entries are
	// removed on Cancel; the slice is almost always length 1 (several live
	// handles under one tag means a double-commit bug upstream).
	byTag map[string][]Handle
	// met holds nil-safe reservation lifecycle counters; zero until
	// Instrument is called.
	met garaMetrics
}

type garaMetrics struct {
	created, createErrors *obs.Counter
	bound, unbound        *obs.Counter
	modified, canceled    *obs.Counter
}

// Instrument registers reservation lifecycle metrics on reg. Call once
// at assembly time, before the system serves requests.
func (s *System) Instrument(reg *obs.Registry) {
	op := func(o string) *obs.Counter {
		return reg.Counter("gqosm_gara_reservations_total",
			"GARA reservation operations by op", "op", o)
	}
	s.mu.Lock()
	s.met = garaMetrics{
		created:      op("create"),
		createErrors: op("create_error"),
		bound:        op("bind"),
		unbound:      op("unbind"),
		modified:     op("modify"),
		canceled:     op("cancel"),
	}
	s.mu.Unlock()
	reg.GaugeFunc("gqosm_gara_reservations_active",
		"Reservations currently held (not canceled)", func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			n := 0
			for _, r := range s.res {
				if r.Status != StatusCanceled {
					n++
				}
			}
			return float64(n)
		})
}

// NewSystem returns a System with no managers registered.
func NewSystem() *System {
	return &System{
		managers: make(map[string]ResourceManager),
		res:      make(map[Handle]*Reservation),
		byTag:    make(map[string][]Handle),
	}
}

// RegisterManager installs a resource manager; it replaces any previous
// manager of the same type.
func (s *System) RegisterManager(rm ResourceManager) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.managers[rm.Type()] = rm
}

// ManagerTypes returns the sorted registered reservation-types.
func (s *System) ManagerTypes() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.managers))
	for t := range s.managers {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// Create implements globus_gara_reservation_create: it parses the RSL
// request, routes each sub-request to the manager named by its
// `reservation-type` attribute, and returns a handle. Multirequests are
// co-allocated atomically: if any sub-request fails, the ones already made
// are cancelled and the error returned.
func (s *System) Create(reqRSL string, start, end time.Time, tag string) (Handle, error) {
	h, err := s.create(reqRSL, start, end, tag)
	if err != nil {
		s.met.createErrors.Inc()
	} else {
		s.met.created.Inc()
	}
	return h, err
}

func (s *System) create(reqRSL string, start, end time.Time, tag string) (Handle, error) {
	node, err := rsl.ParseCached(reqRSL)
	if err != nil {
		return "", fmt.Errorf("gara: %w", err)
	}
	subs := node.SubRequests()

	type part struct {
		rmType string
		token  string
	}
	parts := make([]part, 0, len(subs))
	managers := make([]ResourceManager, 0, len(subs))
	rollback := func() {
		for i, p := range parts {
			_ = managers[i].Cancel(p.token)
		}
	}
	for _, sub := range subs {
		rmType := sub.Str("reservation-type", "")
		if rmType == "" {
			rollback()
			return "", fmt.Errorf("%w: request lacks reservation-type: %s", ErrUnknownType, sub)
		}
		s.mu.Lock()
		rm, ok := s.managers[rmType]
		s.mu.Unlock()
		if !ok {
			rollback()
			return "", fmt.Errorf("%w: %q", ErrUnknownType, rmType)
		}
		token, err := rm.Reserve(sub, start, end, tag)
		if err != nil {
			rollback()
			return "", fmt.Errorf("gara: reserve %s: %w", rmType, err)
		}
		parts = append(parts, part{rmType: rmType, token: token})
		managers = append(managers, rm)
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextID++
	h := Handle(fmt.Sprintf("gara-%d", s.nextID))
	r := &Reservation{
		Handle: h,
		Spec:   reqRSL,
		Start:  start,
		End:    end,
		Status: StatusReserved,
		Tag:    tag,
		Parts:  make(map[string]string, len(parts)),
	}
	for _, p := range parts {
		r.Parts[p.rmType] = p.token
	}
	s.res[h] = r
	if tag != "" {
		s.byTag[tag] = append(s.byTag[tag], h)
	}
	return h, nil
}

// Bind implements globus_gara_reservation_bind: it associates a launched
// process with a previously made reservation, claiming it.
func (s *System) Bind(h Handle, param BindParam) error {
	s.mu.Lock()
	r, ok := s.res[h]
	if !ok {
		s.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrUnknownHandle, h)
	}
	if r.Status == StatusCanceled {
		s.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrCanceled, h)
	}
	binders := s.bindersLocked(r)
	r.Status = StatusBound
	r.BoundPID = param.PID
	s.mu.Unlock()

	for _, b := range binders {
		if err := b.binder.Bind(b.token, param); err != nil {
			return fmt.Errorf("gara: bind %s: %w", h, err)
		}
	}
	s.met.bound.Inc()
	return nil
}

// Unbind implements globus_gara_reservation_unbind: the reservation
// remains held but is no longer claimed by a process.
func (s *System) Unbind(h Handle) error {
	s.mu.Lock()
	r, ok := s.res[h]
	if !ok {
		s.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrUnknownHandle, h)
	}
	if r.Status != StatusBound {
		s.mu.Unlock()
		return fmt.Errorf("%w: %s is %s", ErrNotBound, h, r.Status)
	}
	binders := s.bindersLocked(r)
	r.Status = StatusReserved
	r.BoundPID = 0
	s.mu.Unlock()

	for _, b := range binders {
		if err := b.binder.Unbind(b.token); err != nil {
			return fmt.Errorf("gara: unbind %s: %w", h, err)
		}
	}
	s.met.unbound.Inc()
	return nil
}

// Cancel implements globus_gara_reservation_cancel: every component
// reservation is released.
func (s *System) Cancel(h Handle) error {
	s.mu.Lock()
	r, ok := s.res[h]
	if !ok {
		s.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrUnknownHandle, h)
	}
	if r.Status == StatusCanceled {
		s.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrCanceled, h)
	}
	r.Status = StatusCanceled
	s.dropTagLocked(r.Tag, h)
	s.met.canceled.Inc()
	type pair struct {
		rm    ResourceManager
		token string
	}
	var pairs []pair
	for rmType, token := range r.Parts {
		if rm, ok := s.managers[rmType]; ok {
			pairs = append(pairs, pair{rm: rm, token: token})
		}
	}
	s.mu.Unlock()

	var firstErr error
	for _, p := range pairs {
		if err := p.rm.Cancel(p.token); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Modify adjusts the reservation to a new RSL spec. Each sub-request is
// routed to the manager already holding that part; adding or removing
// resource types requires Cancel + Create instead.
func (s *System) Modify(h Handle, newRSL string) error {
	node, err := rsl.ParseCached(newRSL)
	if err != nil {
		return fmt.Errorf("gara: %w", err)
	}
	s.mu.Lock()
	r, ok := s.res[h]
	if !ok {
		s.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrUnknownHandle, h)
	}
	if r.Status == StatusCanceled {
		s.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrCanceled, h)
	}
	type mod struct {
		rm    ResourceManager
		token string
		spec  *rsl.Node
	}
	var mods []mod
	for _, sub := range node.SubRequests() {
		rmType := sub.Str("reservation-type", "")
		token, held := r.Parts[rmType]
		if !held {
			s.mu.Unlock()
			return fmt.Errorf("%w: reservation %s holds no %q part", ErrUnknownType, h, rmType)
		}
		mods = append(mods, mod{rm: s.managers[rmType], token: token, spec: sub})
	}
	s.mu.Unlock()

	for _, m := range mods {
		if err := m.rm.Modify(m.token, m.spec); err != nil {
			return fmt.Errorf("gara: modify %s: %w", h, err)
		}
	}
	s.mu.Lock()
	r.Spec = newRSL
	s.mu.Unlock()
	s.met.modified.Inc()
	return nil
}

// Get returns a snapshot of the reservation.
func (s *System) Get(h Handle) (Reservation, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.res[h]
	if !ok {
		return Reservation{}, fmt.Errorf("%w: %s", ErrUnknownHandle, h)
	}
	return snapshot(r), nil
}

// FindByTag returns the handle of the live (non-canceled) reservation
// created with tag, if any. Tags are the broker's idempotency key: it
// uses one SLA ID per reservation, so at most one live reservation
// matches. With several (a double-commit bug upstream) the
// lowest-numbered handle wins, deterministically.
func (s *System) FindByTag(tag string) (Handle, bool) {
	if tag == "" {
		return "", false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	var (
		best  Handle
		found bool
	)
	for _, h := range s.byTag[tag] {
		if !found || handleLess(h, best) {
			best, found = h, true
		}
	}
	return best, found
}

// dropTagLocked removes h from the tag index. Callers hold s.mu.
func (s *System) dropTagLocked(tag string, h Handle) {
	if tag == "" {
		return
	}
	live := s.byTag[tag]
	for i, cand := range live {
		if cand == h {
			live = append(live[:i], live[i+1:]...)
			break
		}
	}
	if len(live) == 0 {
		delete(s.byTag, tag)
	} else {
		s.byTag[tag] = live
	}
}

func handleLess(a, b Handle) bool {
	if len(a) != len(b) {
		return len(a) < len(b)
	}
	return a < b
}

// PruneCanceled removes canceled reservations from the table and returns
// how many it removed. Canceled reservations are normally retained so
// their handles stay resolvable (Get reports ErrCanceled rather than
// ErrUnknownHandle); the soak harness prunes them at quiesce points so
// multi-million-op runs hold a bounded working set. Callers must be past
// any retry that might still Cancel a pruned handle — after pruning, such
// a retry sees ErrUnknownHandle instead of the idempotent ErrCanceled.
func (s *System) PruneCanceled() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	pruned := 0
	for h, r := range s.res {
		if r.Status == StatusCanceled {
			delete(s.res, h)
			pruned++
		}
	}
	return pruned
}

// Reservations returns snapshots of all reservations ordered by handle.
func (s *System) Reservations() []Reservation {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Reservation, 0, len(s.res))
	for _, r := range s.res {
		out = append(out, snapshot(r))
	}
	sort.Slice(out, func(i, j int) bool {
		if len(out[i].Handle) != len(out[j].Handle) {
			return len(out[i].Handle) < len(out[j].Handle)
		}
		return out[i].Handle < out[j].Handle
	})
	return out
}

type boundPart struct {
	binder Binder
	token  string
}

func (s *System) bindersLocked(r *Reservation) []boundPart {
	var out []boundPart
	for rmType, token := range r.Parts {
		if b, ok := s.managers[rmType].(Binder); ok {
			out = append(out, boundPart{binder: b, token: token})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].token < out[j].token })
	return out
}

func snapshot(r *Reservation) Reservation {
	c := *r
	c.Parts = make(map[string]string, len(r.Parts))
	for k, v := range r.Parts {
		c.Parts[k] = v
	}
	return c
}
