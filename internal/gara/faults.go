package gara

import (
	"time"

	"gqosm/internal/faultx"
	"gqosm/internal/rsl"
)

// WrapManager decorates a resource manager with fault injection at
// sites "gara.<type>.reserve", "gara.<type>.modify" and
// "gara.<type>.cancel". A manager that also implements Binder keeps
// that capability (Bind/Unbind are claim bookkeeping, not resource
// operations, and are not injection sites). A nil injector returns rm
// unchanged.
func WrapManager(rm ResourceManager, inj *faultx.Injector) ResourceManager {
	if inj == nil {
		return rm
	}
	fm := &faultManager{rm: rm, inj: inj, prefix: "gara." + rm.Type() + "."}
	if b, ok := rm.(Binder); ok {
		return &faultBinderManager{faultManager: fm, binder: b}
	}
	return fm
}

type faultManager struct {
	rm     ResourceManager
	inj    *faultx.Injector
	prefix string
}

func (m *faultManager) Type() string { return m.rm.Type() }

func (m *faultManager) Reserve(spec *rsl.Node, start, end time.Time, tag string) (string, error) {
	var token string
	err := m.inj.Do(m.prefix+"reserve", func() error {
		t, err := m.rm.Reserve(spec, start, end, tag)
		if err == nil {
			token = t
		}
		return err
	})
	if err != nil {
		// A partial fault committed the underlying reservation but lost
		// the reply; the token is unusable by the caller, exactly like a
		// lost network response.
		return "", err
	}
	return token, nil
}

func (m *faultManager) Modify(token string, spec *rsl.Node) error {
	return m.inj.Do(m.prefix+"modify", func() error { return m.rm.Modify(token, spec) })
}

func (m *faultManager) Cancel(token string) error {
	return m.inj.Do(m.prefix+"cancel", func() error { return m.rm.Cancel(token) })
}

type faultBinderManager struct {
	*faultManager
	binder Binder
}

func (m *faultBinderManager) Bind(token string, param BindParam) error {
	return m.binder.Bind(token, param)
}

func (m *faultBinderManager) Unbind(token string) error {
	return m.binder.Unbind(token)
}

var (
	_ ResourceManager = (*faultManager)(nil)
	_ Binder          = (*faultBinderManager)(nil)
)
