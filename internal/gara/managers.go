package gara

import (
	"errors"
	"fmt"
	"strconv"
	"sync"
	"time"

	"gqosm/internal/dsrt"
	"gqosm/internal/nrm"
	"gqosm/internal/resource"
	"gqosm/internal/rsl"
)

// This file provides the concrete resource managers GARA routes to —
// "processors, networks and storage devices" (§1) — backing reservations
// with the resource pools, the NRM bandwidth broker, and the DSRT
// scheduler.

// Reservation-type names used in RSL requests.
const (
	TypeCompute  = "compute"
	TypeNetwork  = "network"
	TypeStorage  = "storage"
	TypeCPUShare = "cpu-share"
)

// ComputeManager reserves whole processor nodes (plus memory and disk)
// from a resource pool — the SGI-machine style allocation of §5.6. RSL
// attributes: count (nodes), memory (MB), disk (GB).
type ComputeManager struct {
	pool *resource.Pool
}

// NewComputeManager returns a manager backed by pool.
func NewComputeManager(pool *resource.Pool) *ComputeManager {
	return &ComputeManager{pool: pool}
}

// Type implements ResourceManager.
func (m *ComputeManager) Type() string { return TypeCompute }

// Pool exposes the backing pool (for monitoring).
func (m *ComputeManager) Pool() *resource.Pool { return m.pool }

func computeCapacity(spec *rsl.Node) resource.Capacity {
	return resource.Capacity{
		CPU:      spec.Num("count", 0),
		MemoryMB: spec.Num("memory", 0),
		DiskGB:   spec.Num("disk", 0),
	}
}

// Reserve implements ResourceManager.
func (m *ComputeManager) Reserve(spec *rsl.Node, start, end time.Time, tag string) (string, error) {
	amount := computeCapacity(spec)
	if amount.IsZero() {
		return "", errors.New("gara: compute request reserves nothing (need count/memory/disk)")
	}
	r, err := m.pool.Reserve(amount, start, end, tag)
	if err != nil {
		return "", err
	}
	return string(r.ID), nil
}

// Modify implements ResourceManager.
func (m *ComputeManager) Modify(token string, spec *rsl.Node) error {
	return m.pool.Resize(resource.ReservationID(token), computeCapacity(spec))
}

// Cancel implements ResourceManager.
func (m *ComputeManager) Cancel(token string) error {
	return m.pool.Release(resource.ReservationID(token))
}

var _ ResourceManager = (*ComputeManager)(nil)

// StorageManager reserves disk space from a pool. RSL attribute: disk
// (GB).
type StorageManager struct {
	pool *resource.Pool
}

// NewStorageManager returns a manager backed by pool.
func NewStorageManager(pool *resource.Pool) *StorageManager {
	return &StorageManager{pool: pool}
}

// Type implements ResourceManager.
func (m *StorageManager) Type() string { return TypeStorage }

// Reserve implements ResourceManager.
func (m *StorageManager) Reserve(spec *rsl.Node, start, end time.Time, tag string) (string, error) {
	gb := spec.Num("disk", 0)
	if gb <= 0 {
		return "", errors.New("gara: storage request needs disk>0")
	}
	r, err := m.pool.Reserve(resource.Capacity{DiskGB: gb}, start, end, tag)
	if err != nil {
		return "", err
	}
	return string(r.ID), nil
}

// Modify implements ResourceManager.
func (m *StorageManager) Modify(token string, spec *rsl.Node) error {
	return m.pool.Resize(resource.ReservationID(token), resource.Capacity{DiskGB: spec.Num("disk", 0)})
}

// Cancel implements ResourceManager.
func (m *StorageManager) Cancel(token string) error {
	return m.pool.Release(resource.ReservationID(token))
}

var _ ResourceManager = (*StorageManager)(nil)

// NetworkManager reserves end-to-end bandwidth through the domain's NRM.
// RSL attributes: source-ip, dest-ip, bandwidth (Mbps).
type NetworkManager struct {
	nrm *nrm.Manager

	// aliases maps a token to its replacement flow ID after Modify
	// (the NRM issues a fresh flow per reservation).
	aliasMu sync.Mutex
	aliases map[string]string
}

// NewNetworkManager returns a manager delegating to the given NRM.
func NewNetworkManager(manager *nrm.Manager) *NetworkManager {
	return &NetworkManager{nrm: manager}
}

// Type implements ResourceManager.
func (m *NetworkManager) Type() string { return TypeNetwork }

// NRM exposes the backing bandwidth broker (for monitoring).
func (m *NetworkManager) NRM() *nrm.Manager { return m.nrm }

// Reserve implements ResourceManager.
func (m *NetworkManager) Reserve(spec *rsl.Node, start, end time.Time, tag string) (string, error) {
	src := spec.Str("source-ip", "")
	dst := spec.Str("dest-ip", "")
	bw := spec.Num("bandwidth", 0)
	if src == "" || dst == "" {
		return "", errors.New(`gara: network request needs source-ip and dest-ip`)
	}
	flow, err := m.nrm.Reserve(src, dst, bw, start, end, tag)
	if err != nil {
		return "", err
	}
	return string(flow.ID), nil
}

// Modify implements ResourceManager: the flow is re-reserved at the new
// bandwidth (release + reserve, keeping endpoints and interval).
func (m *NetworkManager) Modify(token string, spec *rsl.Node) error {
	old, err := m.nrm.Flow(nrm.FlowID(m.resolve(token)))
	if err != nil {
		return err
	}
	bw := spec.Num("bandwidth", old.Mbps)
	if err := m.nrm.Release(old.ID); err != nil {
		return err
	}
	flow, err := m.nrm.Reserve(old.SourceIP, old.DestIP, bw, old.Start, old.End, old.Tag)
	if err != nil {
		// Best effort: restore the old reservation. The restored flow
		// carries a fresh ID, so the token must be re-aliased to it or
		// later Cancel/Flow calls on the token would dangle.
		restored, restoreErr := m.nrm.Reserve(old.SourceIP, old.DestIP, old.Mbps, old.Start, old.End, old.Tag)
		if restoreErr != nil {
			return fmt.Errorf("gara: modify failed (%v) and restore failed: %w", err, restoreErr)
		}
		m.alias(token, string(restored.ID))
		return err
	}
	// The flow ID changed; record the alias so future operations on the
	// original token resolve.
	m.alias(token, string(flow.ID))
	return nil
}

func (m *NetworkManager) alias(token, flowID string) {
	m.aliasMu.Lock()
	if m.aliases == nil {
		m.aliases = make(map[string]string)
	}
	m.aliases[token] = flowID
	m.aliasMu.Unlock()
}

// Cancel implements ResourceManager.
func (m *NetworkManager) Cancel(token string) error {
	return m.nrm.Release(nrm.FlowID(m.resolve(token)))
}

// Flow returns the current flow backing a token, following Modify
// aliases.
func (m *NetworkManager) Flow(token string) (nrm.Flow, error) {
	return m.nrm.Flow(nrm.FlowID(m.resolve(token)))
}

func (m *NetworkManager) resolve(token string) string {
	m.aliasMu.Lock()
	defer m.aliasMu.Unlock()
	seen := 0
	for {
		next, ok := m.aliases[token]
		if !ok || seen > len(m.aliases) {
			return token
		}
		token = next
		seen++
	}
}

var _ ResourceManager = (*NetworkManager)(nil)

// DSRTManager reserves fractional CPU shares through the DSRT scheduler —
// "GARA's DSRT resource manager API is used to facilitate the interaction
// between the QoS broker and the DSRT scheduler" (§6). RSL attributes:
// share (fraction of one CPU), period (ms), class ("PCPT"/"PVPT"/
// "APERIODIC"). Binding attaches the launched PID; the DSRT registration
// is made at reserve time and the token is the DSRT pid.
type DSRTManager struct {
	sched *dsrt.Scheduler
}

// NewDSRTManager returns a manager delegating to the scheduler.
func NewDSRTManager(s *dsrt.Scheduler) *DSRTManager {
	return &DSRTManager{sched: s}
}

// Type implements ResourceManager.
func (m *DSRTManager) Type() string { return TypeCPUShare }

// Scheduler exposes the backing scheduler (for monitoring).
func (m *DSRTManager) Scheduler() *dsrt.Scheduler { return m.sched }

func dsrtClass(name string) dsrt.Class {
	switch name {
	case "PCPT", "pcpt":
		return dsrt.PeriodicConstant
	case "PVPT", "pvpt":
		return dsrt.PeriodicVariable
	default:
		return dsrt.Aperiodic
	}
}

// Reserve implements ResourceManager.
func (m *DSRTManager) Reserve(spec *rsl.Node, _, _ time.Time, _ string) (string, error) {
	contract := dsrt.Contract{
		Class:    dsrtClass(spec.Str("class", "APERIODIC")),
		Share:    spec.Num("share", 0),
		PeriodMS: spec.Num("period", 0),
	}
	pid, err := m.sched.Register(contract)
	if err != nil {
		return "", err
	}
	return strconv.Itoa(int(pid)), nil
}

// Modify implements ResourceManager.
func (m *DSRTManager) Modify(token string, spec *rsl.Node) error {
	pid, err := strconv.Atoi(token)
	if err != nil {
		return fmt.Errorf("gara: bad dsrt token %q", token)
	}
	return m.sched.SetShare(dsrt.PID(pid), spec.Num("share", 0))
}

// Cancel implements ResourceManager.
func (m *DSRTManager) Cancel(token string) error {
	pid, err := strconv.Atoi(token)
	if err != nil {
		return fmt.Errorf("gara: bad dsrt token %q", token)
	}
	return m.sched.Unregister(dsrt.PID(pid))
}

// Bind implements Binder: DSRT needs no extra claim step in this model,
// the PID is recorded by the GARA layer.
func (m *DSRTManager) Bind(string, BindParam) error { return nil }

// Unbind implements Binder.
func (m *DSRTManager) Unbind(string) error { return nil }

var (
	_ ResourceManager = (*DSRTManager)(nil)
	_ Binder          = (*DSRTManager)(nil)
)
