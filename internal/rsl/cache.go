package rsl

import "sync"

// This file is the parse cache: GARA re-receives the same reservation
// specs over and over — the broker renders one RSL string per (spec,
// allocation) shape and most admissions share a handful of shapes — so
// re-running the parser on every Create/Modify is pure waste.
// ParseCached interns successful parse results keyed by the exact input
// string; a hit is one read-locked map lookup, zero allocations.
//
// Interned nodes are SHARED and MUST NOT be mutated. Nothing in this
// repository mutates a *Node after Parse returns it (the tree is built
// by the parser and only read by Eval/Lookup/SubRequests and the
// resource managers), and the fuzz target FuzzRSLCacheEquiv checks
// cached and uncached parses stay structurally identical. Callers that
// need a private tree should use Parse.
//
// Errors are never cached: a failing input re-runs the parser, so the
// error value (type, offset, message) is identical on the cached and
// uncached paths every time.

const (
	// parseCacheCap bounds the interned entries; eviction is FIFO by
	// insertion order, so cache behavior is deterministic.
	parseCacheCap = 4096
	// parseCacheMaxInput skips interning of unusually large inputs — a
	// one-off giant spec should not pin a cache slot.
	parseCacheMaxInput = 1024
)

var parseCache = struct {
	sync.RWMutex
	m     map[string]*Node
	order []string
}{m: make(map[string]*Node)}

// ParseCached parses an RSL specification like Parse, interning
// successful results: repeated calls with the same input return one
// shared, immutable *Node. See the package comments above for the
// sharing contract.
func ParseCached(input string) (*Node, error) {
	parseCache.RLock()
	n, ok := parseCache.m[input]
	parseCache.RUnlock()
	if ok {
		return n, nil
	}
	n, err := Parse(input)
	if err != nil {
		return nil, err
	}
	if len(input) > parseCacheMaxInput {
		return n, nil
	}
	parseCache.Lock()
	if cached, dup := parseCache.m[input]; dup {
		// A concurrent parse of the same input won the race; return its
		// node so every caller shares one tree.
		n = cached
	} else {
		if len(parseCache.order) >= parseCacheCap {
			oldest := parseCache.order[0]
			copy(parseCache.order, parseCache.order[1:])
			parseCache.order = parseCache.order[:len(parseCache.order)-1]
			delete(parseCache.m, oldest)
		}
		parseCache.m[input] = n
		parseCache.order = append(parseCache.order, input)
	}
	parseCache.Unlock()
	return n, nil
}
