package rsl

import (
	"errors"
	"math/rand"
	"strings"
	"testing"
)

func mustParse(t *testing.T, src string) *Node {
	t.Helper()
	n, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return n
}

func TestParseRelation(t *testing.T) {
	tests := []struct {
		src  string
		attr string
		op   Op
		num  float64
	}{
		{"count=10", "count", OpEq, 10},
		{"memory>=2048", "memory", OpGe, 2048},
		{"disk<=15", "disk", OpLe, 15},
		{"loss<0.1", "loss", OpLt, 0.1},
		{"bw>45", "bw", OpGt, 45},
		{"nodes!=0", "nodes", OpNe, 0},
		{" count = 10 ", "count", OpEq, 10},
	}
	for _, tt := range tests {
		t.Run(tt.src, func(t *testing.T) {
			n := mustParse(t, tt.src)
			if n.Kind != KindRelation || n.Attribute != tt.attr || n.Op != tt.op {
				t.Fatalf("got %+v", n)
			}
			if !n.Value.IsNum || n.Value.Num != tt.num {
				t.Fatalf("value = %+v, want %g", n.Value, tt.num)
			}
		})
	}
}

func TestParseConjunction(t *testing.T) {
	n := mustParse(t, `&(count=10)(memory=2048)(disk=15)(label="sla-3")`)
	if n.Kind != KindConjunction || len(n.Children) != 4 {
		t.Fatalf("got %+v", n)
	}
	if got := n.Num("count", -1); got != 10 {
		t.Errorf("Num(count) = %g", got)
	}
	if got := n.Str("label", ""); got != "sla-3" {
		t.Errorf("Str(label) = %q", got)
	}
	if got := n.Str("missing", "dflt"); got != "dflt" {
		t.Errorf("Str(missing) = %q", got)
	}
	if got := n.Num("label", -1); got != -1 {
		t.Errorf("Num on string attr = %g, want default", got)
	}
}

func TestParseDisjunctionAndNesting(t *testing.T) {
	n := mustParse(t, `|(&(count=10)(memory=2048))(&(count=5)(memory=1024))`)
	if n.Kind != KindDisjunction || len(n.Children) != 2 {
		t.Fatalf("got %+v", n)
	}
	if n.Children[0].Kind != KindConjunction {
		t.Fatalf("child kind = %v", n.Children[0].Kind)
	}
}

func TestParseMultiRequest(t *testing.T) {
	n := mustParse(t, `+(&(type="cpu")(count=10))(&(type="network")(bandwidth=622))`)
	if n.Kind != KindMultiRequest {
		t.Fatalf("kind = %v", n.Kind)
	}
	subs := n.SubRequests()
	if len(subs) != 2 {
		t.Fatalf("SubRequests = %d", len(subs))
	}
	if subs[0].Str("type", "") != "cpu" || subs[1].Str("type", "") != "network" {
		t.Fatalf("sub types wrong: %v, %v", subs[0], subs[1])
	}
	// SubRequests of a non-multirequest is the node itself.
	single := mustParse(t, "count=1")
	if s := single.SubRequests(); len(s) != 1 || s[0] != single {
		t.Fatalf("SubRequests(single) = %v", s)
	}
}

func TestParseQuotedStrings(t *testing.T) {
	n := mustParse(t, `&(executable="/bin/sim run")(note="say ""hi""")`)
	if got := n.Str("executable", ""); got != "/bin/sim run" {
		t.Errorf("executable = %q", got)
	}
	if got := n.Str("note", ""); got != `say "hi"` {
		t.Errorf("note = %q", got)
	}
}

func TestParseErrors(t *testing.T) {
	tests := []string{
		"",
		"   ",
		"&",
		"&()",
		"&(count=10",
		"count=",
		"=10",
		"count 10",
		`label="unterminated`,
		"&(count=10)(", // dangling open paren
		"count=10 extra",
	}
	for _, src := range tests {
		t.Run(src, func(t *testing.T) {
			if _, err := Parse(src); err == nil {
				t.Fatalf("Parse(%q) succeeded, want error", src)
			}
		})
	}
	if _, err := Parse(""); !errors.Is(err, ErrEmpty) {
		t.Errorf("empty err = %v", err)
	}
	var pe *ParseError
	_, err := Parse("&(count=10)(bad")
	if !errors.As(err, &pe) {
		t.Fatalf("err %v is not a *ParseError", err)
	}
	if pe.Offset == 0 || !strings.Contains(pe.Error(), "offset") {
		t.Errorf("ParseError = %v", pe)
	}
}

func TestStringRoundTrip(t *testing.T) {
	srcs := []string{
		"count=10",
		`&(count=10)(memory>=2048)(label="sla-3")`,
		`|(&(count=10))(&(count=5))`,
		`+(&(type="cpu")(count=10))(&(type="network")(bandwidth=622))`,
		`note="say ""hi"""`,
	}
	for _, src := range srcs {
		n := mustParse(t, src)
		again := mustParse(t, n.String())
		if !n.Equal(again) {
			t.Errorf("round trip of %q: %q parses differently", src, n.String())
		}
	}
}

// Property: printing any randomly generated tree and re-parsing yields an
// equal tree.
func TestRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 400; i++ {
		n := randNode(rng, 3)
		again, err := Parse(n.String())
		if err != nil {
			t.Fatalf("re-parse of %q: %v", n.String(), err)
		}
		if !n.Equal(again) {
			t.Fatalf("round trip mismatch: %q", n.String())
		}
	}
}

func randNode(rng *rand.Rand, depth int) *Node {
	if depth == 0 || rng.Intn(3) == 0 {
		attrs := []string{"count", "memory", "disk", "bandwidth", "label", "host-type"}
		ops := []Op{OpEq, OpNe, OpGt, OpGe, OpLt, OpLe}
		n := &Node{
			Kind:      KindRelation,
			Attribute: attrs[rng.Intn(len(attrs))],
			Op:        ops[rng.Intn(len(ops))],
		}
		if rng.Intn(2) == 0 {
			n.Value = NumValue(float64(rng.Intn(1000)))
		} else {
			words := []string{"linux", "sgi", "site-a", "with space", `qu"ote`}
			n.Value = StrValue(words[rng.Intn(len(words))])
		}
		return n
	}
	kinds := []NodeKind{KindConjunction, KindDisjunction, KindMultiRequest}
	n := &Node{Kind: kinds[rng.Intn(len(kinds))]}
	for i := 0; i < 1+rng.Intn(3); i++ {
		n.Children = append(n.Children, randNode(rng, depth-1))
	}
	return n
}

func TestEval(t *testing.T) {
	spec := mustParse(t, `&(count>=10)(memory>=2048)(os="linux")`)
	tests := []struct {
		name string
		b    Bindings
		want bool
	}{
		{"satisfies", Bindings{"count": NumValue(26), "memory": NumValue(10240), "os": StrValue("linux")}, true},
		{"count too low", Bindings{"count": NumValue(4), "memory": NumValue(10240), "os": StrValue("linux")}, false},
		{"wrong os", Bindings{"count": NumValue(26), "memory": NumValue(10240), "os": StrValue("irix")}, false},
		{"missing attr", Bindings{"count": NumValue(26), "memory": NumValue(10240)}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := spec.Eval(tt.b); got != tt.want {
				t.Errorf("Eval = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestEvalDisjunction(t *testing.T) {
	spec := mustParse(t, `|(count>=20)(memory>=8192)`)
	if !spec.Eval(Bindings{"count": NumValue(26)}) {
		t.Error("first branch should satisfy")
	}
	if !spec.Eval(Bindings{"memory": NumValue(9000)}) {
		t.Error("second branch should satisfy")
	}
	if spec.Eval(Bindings{"count": NumValue(1), "memory": NumValue(1)}) {
		t.Error("neither branch should satisfy")
	}
}

func TestEvalOperators(t *testing.T) {
	b := Bindings{"x": NumValue(5), "s": StrValue("m")}
	tests := []struct {
		src  string
		want bool
	}{
		{"x=5", true}, {"x=6", false},
		{"x!=5", false}, {"x!=6", true},
		{"x>4", true}, {"x>5", false},
		{"x>=5", true}, {"x>=6", false},
		{"x<6", true}, {"x<5", false},
		{"x<=5", true}, {"x<=4", false},
		{`s="m"`, true}, {`s!="m"`, false},
		{`s>"a"`, true}, {`s<"a"`, false},
		{`s>="m"`, true}, {`s<="m"`, true},
	}
	for _, tt := range tests {
		t.Run(tt.src, func(t *testing.T) {
			if got := mustParse(t, tt.src).Eval(b); got != tt.want {
				t.Errorf("Eval(%q) = %v, want %v", tt.src, got, tt.want)
			}
		})
	}
}

func TestAttributes(t *testing.T) {
	n := mustParse(t, `+(&(type="cpu")(count=10))(&(type="network")(bandwidth=622))`)
	got := n.Attributes()
	want := []string{"bandwidth", "count", "type"}
	if len(got) != len(want) {
		t.Fatalf("Attributes = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Attributes = %v, want %v", got, want)
		}
	}
}

func TestBuilders(t *testing.T) {
	n := Conj(Eq("count", 10), EqStr("os", "linux"), Rel("memory", OpGe, NumValue(64)))
	want := `&(count=10)(os="linux")(memory>=64)`
	if n.String() != want {
		t.Errorf("built = %q, want %q", n.String(), want)
	}
	if !n.Eval(Bindings{"count": NumValue(10), "os": StrValue("linux"), "memory": NumValue(128)}) {
		t.Error("built spec should evaluate true")
	}
}

func TestLookupFirstMatchWins(t *testing.T) {
	n := mustParse(t, `&(count=10)(count=20)`)
	v, ok := n.Lookup("count")
	if !ok || v.Num != 10 {
		t.Errorf("Lookup = %v, %v; want first relation (10)", v, ok)
	}
	if _, ok := n.Lookup("absent"); ok {
		t.Error("Lookup(absent) found something")
	}
	// Non-equality relations are not treated as parameter carriers.
	ge := mustParse(t, "count>=10")
	if _, ok := ge.Lookup("count"); ok {
		t.Error("Lookup matched a >= relation")
	}
}

func TestOpStringUnknown(t *testing.T) {
	if got := Op(0).String(); got != "op(0)" {
		t.Errorf("Op(0) = %q", got)
	}
}

// TestNonFiniteWordsStayStrings pins the lexer's numeric classification:
// strconv.ParseFloat accepts "inf"/"nan" spellings (and returns ±Inf for
// overflow literals with ErrRange), but none of them are usable numbers —
// a non-finite Num poisons evaluator comparisons and any capacity math
// reading the value through Num(). They must stay string values.
func TestNonFiniteWordsStayStrings(t *testing.T) {
	for _, word := range []string{
		"inf", "Inf", "INF", "-inf", "infinity", "Infinity",
		"nan", "NaN", "NAN", "1e999", "-1e999", "0x1p99999",
	} {
		n := mustParse(t, "count="+word)
		if n.Value.IsNum {
			t.Errorf("%q classified as numeric (Num=%v)", word, n.Value.Num)
		}
		if n.Value.Raw != word {
			t.Errorf("%q: Raw = %q", word, n.Value.Raw)
		}
	}
	// Finite spellings keep working, including explicit signs.
	for word, want := range map[string]float64{
		"+5": 5, "-3.5": -3.5, "1e3": 1000, "0x1p4": 16,
	} {
		n := mustParse(t, "count="+word)
		if !n.Value.IsNum || n.Value.Num != want {
			t.Errorf("%q: IsNum=%v Num=%v, want %v", word, n.Value.IsNum, n.Value.Num, want)
		}
	}
}

// TestNonFiniteRoundTrip checks String() → Parse round-trips for the
// rejected words: they render as bare words and re-parse equal.
func TestNonFiniteRoundTrip(t *testing.T) {
	for _, src := range []string{
		`&(count=inf)(label="x")`,
		`&(count=nan)`,
		`&(count=1e999)`,
	} {
		n := mustParse(t, src)
		back := mustParse(t, n.String())
		if !n.Equal(back) {
			t.Errorf("round trip of %q: %q not Equal", src, n.String())
		}
	}
}

// TestNonFiniteEvaluator demonstrates the bug's blast radius: before the
// fix, `count=inf` parsed as Num=+Inf, so Num("count", def) handed +Inf to
// capacity math; now the value is a string and the default applies.
func TestNonFiniteEvaluator(t *testing.T) {
	n := mustParse(t, `&(reservation-type="compute")(count=inf)`)
	if got := n.Num("count", 0); got != 0 {
		t.Fatalf("Num(count) = %v, want default 0 for non-finite literal", got)
	}
	nan := mustParse(t, `count=nan`)
	if nan.Value.IsNum {
		t.Fatal("nan is numeric")
	}
	// String comparison semantics apply to the unparseable word.
	if !nan.Eval(Bindings{"count": {Raw: "nan"}}) {
		t.Fatal("string equality on the raw word should hold")
	}
	if nan.Eval(Bindings{"count": NumValue(4)}) {
		t.Fatal(`"4" = "nan" should be false under string comparison`)
	}
}
