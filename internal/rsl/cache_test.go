package rsl

import (
	"errors"
	"fmt"
	"testing"
)

var cacheSpecs = []string{
	`&(count=10)(memory>=2048)(disk=15)(label="sla-3")`,
	`&(reservation-type="compute")(count=10)(memory=2048)(disk=15)`,
	`+(&(reservation-type="compute")(count=10))` +
		`(&(reservation-type="network")(bandwidth=622))`,
	`|(count=4)(count=8)`,
	`x!=-1.5e3`,
}

func TestParseCachedEquivalence(t *testing.T) {
	for _, in := range cacheSpecs {
		want, err := Parse(in)
		if err != nil {
			t.Fatalf("Parse(%q): %v", in, err)
		}
		got, err := ParseCached(in)
		if err != nil {
			t.Fatalf("ParseCached(%q): %v", in, err)
		}
		if !want.Equal(got) {
			t.Errorf("ParseCached(%q) tree differs from Parse", in)
		}
		if want.String() != got.String() {
			t.Errorf("ParseCached(%q) canonical form differs: %q vs %q", in, got.String(), want.String())
		}
	}
}

func TestParseCachedSharesNode(t *testing.T) {
	in := `&(count=7)(label="shared")`
	first, err := ParseCached(in)
	if err != nil {
		t.Fatal(err)
	}
	second, err := ParseCached(in)
	if err != nil {
		t.Fatal(err)
	}
	if first != second {
		t.Error("repeated ParseCached returned distinct trees; expected one interned node")
	}
}

func TestParseCachedErrorIdentity(t *testing.T) {
	// Errors are never cached: every call re-runs the parser, so the
	// failure (type, offset, message) is identical on both paths.
	for _, in := range []string{``, `   `, `(((`, `&(a=1)trailing`, `&()`} {
		_, wantErr := Parse(in)
		if wantErr == nil {
			t.Fatalf("Parse(%q) unexpectedly succeeded", in)
		}
		for i := 0; i < 2; i++ {
			_, gotErr := ParseCached(in)
			if gotErr == nil {
				t.Fatalf("ParseCached(%q) call %d succeeded, want %v", in, i, wantErr)
			}
			if gotErr.Error() != wantErr.Error() {
				t.Errorf("ParseCached(%q) error %q, want %q", in, gotErr, wantErr)
			}
			var pe *ParseError
			if !errors.As(gotErr, &pe) && !errors.Is(gotErr, ErrEmpty) {
				t.Errorf("ParseCached(%q) returned untyped error %v", in, gotErr)
			}
		}
	}
}

func TestParseCachedSkipsOversizeInput(t *testing.T) {
	big := "&"
	for i := 0; len(big) <= parseCacheMaxInput; i++ {
		big += fmt.Sprintf("(p%d=%d)", i, i)
	}
	a, err := ParseCached(big)
	if err != nil {
		t.Fatalf("ParseCached(oversize): %v", err)
	}
	b, err := ParseCached(big)
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Error("oversize input was interned; expected a fresh parse per call")
	}
	parseCache.RLock()
	_, interned := parseCache.m[big]
	parseCache.RUnlock()
	if interned {
		t.Error("oversize input stored in the cache")
	}
}

func TestParseCacheBounded(t *testing.T) {
	for i := 0; i < parseCacheCap+64; i++ {
		in := fmt.Sprintf(`&(count=%d)(label="bound")`, i)
		if _, err := ParseCached(in); err != nil {
			t.Fatal(err)
		}
	}
	parseCache.RLock()
	n, ord := len(parseCache.m), len(parseCache.order)
	parseCache.RUnlock()
	if n > parseCacheCap || ord > parseCacheCap {
		t.Errorf("cache exceeded cap: %d entries, %d order slots (cap %d)", n, ord, parseCacheCap)
	}
	if n != ord {
		t.Errorf("map (%d) and order (%d) out of sync", n, ord)
	}
}

// TestParseCachedHitAllocs is the deterministic allocation gate for the
// RSL hot path: a cache hit must not allocate at all.
func TestParseCachedHitAllocs(t *testing.T) {
	in := `&(reservation-type="compute")(count=12)(memory=4096)(label="allocs")`
	if _, err := ParseCached(in); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := ParseCached(in); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("ParseCached hit allocates %.1f objects per call, want 0", allocs)
	}
}

// FuzzRSLCacheEquiv checks ParseCached against Parse for arbitrary
// inputs: identical acceptance, identical error text, structurally
// equal trees with the same canonical form.
func FuzzRSLCacheEquiv(f *testing.F) {
	for _, seed := range cacheSpecs {
		f.Add(seed)
	}
	f.Add(``)
	f.Add(`(((`)
	f.Add(`&(a=1)trailing`)
	f.Fuzz(func(t *testing.T, input string) {
		want, wantErr := Parse(input)
		got, gotErr := ParseCached(input)
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("acceptance differs for %q: Parse err=%v, ParseCached err=%v", input, wantErr, gotErr)
		}
		if wantErr != nil {
			if wantErr.Error() != gotErr.Error() {
				t.Fatalf("error text differs for %q: %q vs %q", input, wantErr, gotErr)
			}
			return
		}
		if !want.Equal(got) {
			t.Fatalf("trees differ for %q", input)
		}
		if want.String() != got.String() {
			t.Fatalf("canonical forms differ for %q: %q vs %q", input, want.String(), got.String())
		}
	})
}

func BenchmarkRSLParse(b *testing.B) {
	in := cacheSpecs[2] // the multirequest: the heaviest common shape
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(in); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRSLParseCached(b *testing.B) {
	in := cacheSpecs[2]
	if _, err := ParseCached(in); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ParseCached(in); err != nil {
			b.Fatal(err)
		}
	}
}
