// Package rsl implements the Globus Resource Specification Language (RSL)
// used by GARA as its reservation-request format (paper §3.1: "resource
// specifications are described in Globus Resource Specification Language
// (RSL) and used as the input parameters for reservation purposes").
//
// The grammar implemented here is the classic RSL 1.0 attribute-relation
// form:
//
//	spec       = conjunction | disjunction | multirequest | relation
//	conjunction  = "&" spec-list
//	disjunction  = "|" spec-list
//	multirequest = "+" spec-list
//	spec-list    = "(" spec ")" { "(" spec ")" }
//	relation     = attribute op value
//	op           = "=" | "!=" | ">" | ">=" | "<" | "<="
//	value        = quoted string | bare word | number
//
// e.g. `&(count=10)(memory>=2048)(disk=15)(label="sla-3")`.
package rsl

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Op is a relational operator in an RSL relation.
type Op int

// Relational operators, in RSL surface syntax order.
const (
	OpEq Op = iota + 1 // =
	OpNe               // !=
	OpGt               // >
	OpGe               // >=
	OpLt               // <
	OpLe               // <=
)

// String returns the RSL surface syntax of the operator.
func (o Op) String() string {
	switch o {
	case OpEq:
		return "="
	case OpNe:
		return "!="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	default:
		return fmt.Sprintf("op(%d)", int(o))
	}
}

// NodeKind discriminates the Node variants.
type NodeKind int

// Node kinds.
const (
	KindRelation NodeKind = iota + 1
	KindConjunction
	KindDisjunction
	KindMultiRequest
)

// Node is a parsed RSL expression tree.
type Node struct {
	Kind NodeKind

	// Relation fields (Kind == KindRelation).
	Attribute string
	Op        Op
	Value     Value

	// Children (boolean kinds).
	Children []*Node
}

// Value is an RSL literal: either a number or a string.
type Value struct {
	Raw      string  // surface text (unquoted)
	Num      float64 // parsed number when IsNum
	IsNum    bool
	WasQuote bool // value appeared in double quotes
}

// NumValue returns a numeric Value.
func NumValue(f float64) Value {
	return Value{Raw: strconv.FormatFloat(f, 'g', -1, 64), Num: f, IsNum: true}
}

// StrValue returns a string Value (printed quoted).
func StrValue(s string) Value { return Value{Raw: s, WasQuote: true} }

// String renders the value in RSL surface syntax.
func (v Value) String() string {
	if v.WasQuote {
		return `"` + strings.ReplaceAll(v.Raw, `"`, `""`) + `"`
	}
	return v.Raw
}

// ParseError describes a syntax error with its byte offset in the input.
type ParseError struct {
	Offset int
	Msg    string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("rsl: parse error at offset %d: %s", e.Offset, e.Msg)
}

// ErrEmpty is returned when the input contains no specification.
var ErrEmpty = errors.New("rsl: empty specification")

// Parse parses an RSL specification.
func Parse(input string) (*Node, error) {
	p := &parser{src: input}
	p.skipSpace()
	if p.eof() {
		return nil, ErrEmpty
	}
	n, err := p.parseSpec()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if !p.eof() {
		return nil, &ParseError{Offset: p.pos, Msg: "trailing input"}
	}
	return n, nil
}

type parser struct {
	src string
	pos int
}

func (p *parser) eof() bool { return p.pos >= len(p.src) }

func (p *parser) peek() byte {
	if p.eof() {
		return 0
	}
	return p.src[p.pos]
}

func (p *parser) skipSpace() {
	for !p.eof() {
		switch p.src[p.pos] {
		case ' ', '\t', '\n', '\r':
			p.pos++
		default:
			return
		}
	}
}

func (p *parser) parseSpec() (*Node, error) {
	p.skipSpace()
	switch p.peek() {
	case '&':
		p.pos++
		return p.parseList(KindConjunction)
	case '|':
		p.pos++
		return p.parseList(KindDisjunction)
	case '+':
		p.pos++
		return p.parseList(KindMultiRequest)
	default:
		return p.parseRelation()
	}
}

func (p *parser) parseList(kind NodeKind) (*Node, error) {
	n := &Node{Kind: kind}
	p.skipSpace()
	if p.peek() != '(' {
		return nil, &ParseError{Offset: p.pos, Msg: "expected '(' after boolean operator"}
	}
	for {
		p.skipSpace()
		if p.peek() != '(' {
			break
		}
		p.pos++ // consume '('
		child, err := p.parseSpec()
		if err != nil {
			return nil, err
		}
		p.skipSpace()
		if p.peek() != ')' {
			return nil, &ParseError{Offset: p.pos, Msg: "expected ')'"}
		}
		p.pos++
		n.Children = append(n.Children, child)
	}
	if len(n.Children) == 0 {
		return nil, &ParseError{Offset: p.pos, Msg: "boolean operator with no clauses"}
	}
	return n, nil
}

func (p *parser) parseRelation() (*Node, error) {
	p.skipSpace()
	start := p.pos
	attr := p.scanWord()
	if attr == "" {
		return nil, &ParseError{Offset: start, Msg: "expected attribute name"}
	}
	p.skipSpace()
	op, err := p.scanOp()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	val, err := p.scanValue()
	if err != nil {
		return nil, err
	}
	return &Node{Kind: KindRelation, Attribute: attr, Op: op, Value: val}, nil
}

func (p *parser) scanWord() string {
	start := p.pos
	for !p.eof() {
		c := p.src[p.pos]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' ||
			c == '(' || c == ')' || c == '=' || c == '!' || c == '<' || c == '>' || c == '"' {
			break
		}
		p.pos++
	}
	return p.src[start:p.pos]
}

func (p *parser) scanOp() (Op, error) {
	if p.eof() {
		return 0, &ParseError{Offset: p.pos, Msg: "expected operator"}
	}
	two := ""
	if p.pos+1 < len(p.src) {
		two = p.src[p.pos : p.pos+2]
	}
	switch two {
	case "!=":
		p.pos += 2
		return OpNe, nil
	case ">=":
		p.pos += 2
		return OpGe, nil
	case "<=":
		p.pos += 2
		return OpLe, nil
	}
	switch p.src[p.pos] {
	case '=':
		p.pos++
		return OpEq, nil
	case '>':
		p.pos++
		return OpGt, nil
	case '<':
		p.pos++
		return OpLt, nil
	}
	return 0, &ParseError{Offset: p.pos, Msg: fmt.Sprintf("expected operator, found %q", p.src[p.pos])}
}

func (p *parser) scanValue() (Value, error) {
	if p.eof() {
		return Value{}, &ParseError{Offset: p.pos, Msg: "expected value"}
	}
	if p.src[p.pos] == '"' {
		p.pos++
		var sb strings.Builder
		for {
			if p.eof() {
				return Value{}, &ParseError{Offset: p.pos, Msg: "unterminated string"}
			}
			c := p.src[p.pos]
			if c == '"' {
				// "" is an escaped quote.
				if p.pos+1 < len(p.src) && p.src[p.pos+1] == '"' {
					sb.WriteByte('"')
					p.pos += 2
					continue
				}
				p.pos++
				return Value{Raw: sb.String(), WasQuote: true}, nil
			}
			sb.WriteByte(c)
			p.pos++
		}
	}
	word := p.scanWord()
	if word == "" {
		return Value{}, &ParseError{Offset: p.pos, Msg: "expected value"}
	}
	// Only finite parses count as numbers. ParseFloat accepts "inf",
	// "nan" and overflows like "1e999" (returning ±Inf with ErrRange);
	// letting those through as numeric poisons every evaluator
	// comparison and any capacity math reading the value via Num().
	if f, err := strconv.ParseFloat(word, 64); err == nil && !math.IsInf(f, 0) && !math.IsNaN(f) {
		return Value{Raw: word, Num: f, IsNum: true}, nil
	}
	return Value{Raw: word}, nil
}

// String renders the node back to canonical RSL surface syntax. Parsing the
// result yields a tree equal to n.
func (n *Node) String() string {
	var sb strings.Builder
	n.write(&sb)
	return sb.String()
}

func (n *Node) write(sb *strings.Builder) {
	switch n.Kind {
	case KindRelation:
		sb.WriteString(n.Attribute)
		sb.WriteString(n.Op.String())
		sb.WriteString(n.Value.String())
	case KindConjunction, KindDisjunction, KindMultiRequest:
		switch n.Kind {
		case KindConjunction:
			sb.WriteByte('&')
		case KindDisjunction:
			sb.WriteByte('|')
		case KindMultiRequest:
			sb.WriteByte('+')
		}
		for _, c := range n.Children {
			sb.WriteByte('(')
			c.write(sb)
			sb.WriteByte(')')
		}
	}
}

// Equal reports structural equality of two trees.
func (n *Node) Equal(o *Node) bool {
	if n == nil || o == nil {
		return n == o
	}
	if n.Kind != o.Kind {
		return false
	}
	if n.Kind == KindRelation {
		return n.Attribute == o.Attribute && n.Op == o.Op &&
			n.Value.Raw == o.Value.Raw && n.Value.IsNum == o.Value.IsNum &&
			n.Value.WasQuote == o.Value.WasQuote
	}
	if len(n.Children) != len(o.Children) {
		return false
	}
	for i := range n.Children {
		if !n.Children[i].Equal(o.Children[i]) {
			return false
		}
	}
	return true
}

// Bindings maps attribute names to offered values for evaluation.
type Bindings map[string]Value

// Eval reports whether the offer described by b satisfies the
// specification n. Relations over attributes absent from b are false.
// Multirequests evaluate like conjunctions (every sub-request must be
// satisfiable by the single offer); callers that dispatch sub-requests to
// different managers should use SubRequests instead.
func (n *Node) Eval(b Bindings) bool {
	switch n.Kind {
	case KindRelation:
		v, ok := b[n.Attribute]
		if !ok {
			return false
		}
		return evalRelation(n.Op, v, n.Value)
	case KindConjunction, KindMultiRequest:
		for _, c := range n.Children {
			if !c.Eval(b) {
				return false
			}
		}
		return true
	case KindDisjunction:
		for _, c := range n.Children {
			if c.Eval(b) {
				return true
			}
		}
		return false
	default:
		return false
	}
}

func evalRelation(op Op, have, want Value) bool {
	if have.IsNum && want.IsNum {
		switch op {
		case OpEq:
			return have.Num == want.Num
		case OpNe:
			return have.Num != want.Num
		case OpGt:
			return have.Num > want.Num
		case OpGe:
			return have.Num >= want.Num
		case OpLt:
			return have.Num < want.Num
		case OpLe:
			return have.Num <= want.Num
		}
		return false
	}
	switch op {
	case OpEq:
		return have.Raw == want.Raw
	case OpNe:
		return have.Raw != want.Raw
	case OpGt:
		return have.Raw > want.Raw
	case OpGe:
		return have.Raw >= want.Raw
	case OpLt:
		return have.Raw < want.Raw
	case OpLe:
		return have.Raw <= want.Raw
	}
	return false
}

// SubRequests splits a multirequest into its component specifications; for
// any other node it returns the node itself as the single element.
func (n *Node) SubRequests() []*Node {
	if n.Kind == KindMultiRequest {
		return append([]*Node(nil), n.Children...)
	}
	return []*Node{n}
}

// Attributes returns the sorted set of attribute names mentioned anywhere
// in the tree.
func (n *Node) Attributes() []string {
	seen := make(map[string]bool)
	n.walk(func(r *Node) {
		if r.Kind == KindRelation {
			seen[r.Attribute] = true
		}
	})
	out := make([]string, 0, len(seen))
	for a := range seen {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

// Lookup returns the value of the first `attr = value` relation found in a
// pre-order walk of conjunctions (the common way GARA specs carry scalar
// parameters), and whether one was found.
func (n *Node) Lookup(attr string) (Value, bool) {
	var (
		found Value
		ok    bool
	)
	n.walk(func(r *Node) {
		if !ok && r.Kind == KindRelation && r.Attribute == attr && r.Op == OpEq {
			found, ok = r.Value, true
		}
	})
	return found, ok
}

// Num returns the numeric value of the first `attr = n` relation, or def
// when absent or non-numeric.
func (n *Node) Num(attr string, def float64) float64 {
	if v, ok := n.Lookup(attr); ok && v.IsNum {
		return v.Num
	}
	return def
}

// Str returns the string value of the first `attr = s` relation, or def
// when absent.
func (n *Node) Str(attr, def string) string {
	if v, ok := n.Lookup(attr); ok {
		return v.Raw
	}
	return def
}

func (n *Node) walk(f func(*Node)) {
	f(n)
	for _, c := range n.Children {
		c.walk(f)
	}
}

// Conj builds a conjunction node from relations.
func Conj(children ...*Node) *Node {
	return &Node{Kind: KindConjunction, Children: children}
}

// Rel builds a relation node.
func Rel(attr string, op Op, v Value) *Node {
	return &Node{Kind: KindRelation, Attribute: attr, Op: op, Value: v}
}

// Eq builds an equality relation with a numeric value.
func Eq(attr string, num float64) *Node { return Rel(attr, OpEq, NumValue(num)) }

// EqStr builds an equality relation with a quoted string value.
func EqStr(attr, s string) *Node { return Rel(attr, OpEq, StrValue(s)) }
