package rsl

import (
	"errors"
	"strings"
	"testing"
)

// FuzzRSL fuzzes the parser with arbitrary specifications. Two
// properties are enforced:
//
//  1. Rejections are typed: Parse never fails with anything but a
//     *ParseError (carrying a valid offset into the input) or ErrEmpty —
//     and in particular never panics.
//  2. Printing round-trips: String() of an accepted tree re-parses to a
//     structurally equal tree (the canonical-form contract String
//     documents).
//
// Corpus under testdata/fuzz/FuzzRSL; grow it with `go test -fuzz=FuzzRSL`.
func FuzzRSL(f *testing.F) {
	for _, seed := range []string{
		`&(count=10)(memory>=2048)(disk=15)(label="sla-3")`,
		`&(reservation-type="compute")(count=10)(memory=2048)(disk=15)`,
		`+(&(reservation-type="compute")(count=10))` +
			`(&(reservation-type="network")(bandwidth=622))`,
		`|(count=4)(count=8)`,
		`x!=-1.5e3`,
		`a="quo""ted"`,
		`&()`,
		`(((`,
		``,
		`   `,
		`&(a=1)trailing`,
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, input string) {
		node, err := Parse(input)
		if err != nil {
			var pe *ParseError
			switch {
			case errors.As(err, &pe):
				if pe.Offset < 0 || pe.Offset > len(input) {
					t.Fatalf("ParseError offset %d outside input of length %d", pe.Offset, len(input))
				}
			case errors.Is(err, ErrEmpty):
				if strings.TrimSpace(input) != "" {
					t.Fatalf("ErrEmpty for non-blank input %q", input)
				}
			default:
				t.Fatalf("Parse(%q) failed with untyped error %v", input, err)
			}
			return
		}
		printed := node.String()
		again, err := Parse(printed)
		if err != nil {
			t.Fatalf("canonical form %q (of %q) does not re-parse: %v", printed, input, err)
		}
		if !node.Equal(again) {
			t.Fatalf("round-trip changed the tree:\ninput  %q\nprint  %q\nreprint %q",
				input, printed, again.String())
		}
	})
}
