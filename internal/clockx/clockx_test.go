package clockx

import (
	"sync"
	"testing"
	"time"
)

var t0 = time.Date(2003, 6, 16, 9, 0, 0, 0, time.UTC) // Middleware 2003 week

func TestManualNow(t *testing.T) {
	c := NewManual(t0)
	if got := c.Now(); !got.Equal(t0) {
		t.Fatalf("Now() = %v, want %v", got, t0)
	}
	c.Advance(90 * time.Second)
	if got, want := c.Now(), t0.Add(90*time.Second); !got.Equal(want) {
		t.Fatalf("Now() after Advance = %v, want %v", got, want)
	}
}

func TestManualSetBackwardsIsNoop(t *testing.T) {
	c := NewManual(t0)
	c.Advance(time.Hour)
	c.Set(t0) // earlier than now; must not move the clock back
	if got, want := c.Now(), t0.Add(time.Hour); !got.Equal(want) {
		t.Fatalf("Now() = %v, want %v", got, want)
	}
}

func TestManualAfterFiresInOrder(t *testing.T) {
	c := NewManual(t0)
	var order []int
	c.AfterFunc(3*time.Second, func() { order = append(order, 3) })
	c.AfterFunc(1*time.Second, func() { order = append(order, 1) })
	c.AfterFunc(2*time.Second, func() { order = append(order, 2) })
	c.Advance(5 * time.Second)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("fire order = %v, want [1 2 3]", order)
	}
}

func TestManualAfterTieBreakByCreation(t *testing.T) {
	c := NewManual(t0)
	var order []string
	c.AfterFunc(time.Second, func() { order = append(order, "a") })
	c.AfterFunc(time.Second, func() { order = append(order, "b") })
	c.Advance(time.Second)
	if len(order) != 2 || order[0] != "a" || order[1] != "b" {
		t.Fatalf("fire order = %v, want [a b]", order)
	}
}

func TestManualAfterChannel(t *testing.T) {
	c := NewManual(t0)
	ch := c.After(10 * time.Second)
	select {
	case <-ch:
		t.Fatal("channel fired before Advance")
	default:
	}
	c.Advance(10 * time.Second)
	select {
	case got := <-ch:
		if want := t0.Add(10 * time.Second); !got.Equal(want) {
			t.Fatalf("After delivered %v, want %v", got, want)
		}
	default:
		t.Fatal("channel did not fire after Advance")
	}
}

func TestManualStop(t *testing.T) {
	c := NewManual(t0)
	fired := false
	timer := c.AfterFunc(time.Second, func() { fired = true })
	if !timer.Stop() {
		t.Fatal("first Stop() = false, want true")
	}
	if timer.Stop() {
		t.Fatal("second Stop() = true, want false")
	}
	c.Advance(2 * time.Second)
	if fired {
		t.Fatal("stopped timer fired")
	}
	if c.PendingTimers() != 0 {
		t.Fatalf("PendingTimers() = %d, want 0", c.PendingTimers())
	}
}

func TestManualTimerNotDueDoesNotFire(t *testing.T) {
	c := NewManual(t0)
	fired := false
	c.AfterFunc(time.Minute, func() { fired = true })
	c.Advance(59 * time.Second)
	if fired {
		t.Fatal("timer fired early")
	}
	if c.PendingTimers() != 1 {
		t.Fatalf("PendingTimers() = %d, want 1", c.PendingTimers())
	}
	c.Advance(time.Second)
	if !fired {
		t.Fatal("timer did not fire at deadline")
	}
}

func TestManualCallbackSeesDeadlineClock(t *testing.T) {
	c := NewManual(t0)
	var sawNow time.Time
	c.AfterFunc(7*time.Second, func() { sawNow = c.Now() })
	c.Advance(time.Minute)
	if want := t0.Add(7 * time.Second); !sawNow.Equal(want) {
		t.Fatalf("callback saw Now() = %v, want %v (the deadline, not the target)", sawNow, want)
	}
}

func TestManualCascadedTimersFireInSameAdvance(t *testing.T) {
	c := NewManual(t0)
	var order []string
	c.AfterFunc(time.Second, func() {
		order = append(order, "first")
		c.AfterFunc(time.Second, func() { order = append(order, "second") })
	})
	c.Advance(3 * time.Second)
	if len(order) != 2 || order[1] != "second" {
		t.Fatalf("order = %v, want cascaded timer to fire within Advance", order)
	}
}

func TestManualConcurrentSchedule(t *testing.T) {
	c := NewManual(t0)
	var (
		wg    sync.WaitGroup
		mu    sync.Mutex
		count int
	)
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c.AfterFunc(time.Millisecond, func() {
				mu.Lock()
				count++
				mu.Unlock()
			})
		}()
	}
	wg.Wait()
	c.Advance(time.Second)
	mu.Lock()
	defer mu.Unlock()
	if count != 50 {
		t.Fatalf("fired %d timers, want 50", count)
	}
}

func TestRealClockBasics(t *testing.T) {
	c := Real()
	before := time.Now()
	now := c.Now()
	if now.Before(before.Add(-time.Second)) {
		t.Fatalf("Real().Now() = %v, too far before %v", now, before)
	}
	done := make(chan struct{})
	timer := c.AfterFunc(time.Millisecond, func() { close(done) })
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("real AfterFunc did not fire")
	}
	timer.Stop() // already fired; must not panic
}

func TestRealClockAfter(t *testing.T) {
	c := Real()
	select {
	case <-c.After(time.Millisecond):
	case <-time.After(2 * time.Second):
		t.Fatal("Real().After never fired")
	}
}

// TestManualHeapFiringOrderAtScale drives thousands of interleaved
// schedules, stops and advances and checks the heap queue fires in exact
// (deadline, creation) order — the property the soak harness's
// determinism rests on.
func TestManualHeapFiringOrderAtScale(t *testing.T) {
	c := NewManual(t0)
	const n = 5000
	type fired struct {
		at time.Time
		id int
	}
	var got []fired
	timers := make([]Timer, 0, n)
	for i := 0; i < n; i++ {
		i := i
		// Deliberately colliding deadlines: 500 distinct instants.
		d := time.Duration(1+(i*7919)%500) * time.Second
		timers = append(timers, c.AfterFunc(d, func() {
			got = append(got, fired{at: c.Now(), id: i})
		}))
	}
	// Stop every third timer before anything fires.
	stopped := make(map[int]bool)
	for i := 0; i < n; i += 3 {
		timers[i].Stop()
		stopped[i] = true
	}
	if want := n - len(stopped); c.PendingTimers() != want {
		t.Fatalf("PendingTimers() = %d, want %d", c.PendingTimers(), want)
	}
	c.Advance(600 * time.Second)
	if want := n - len(stopped); len(got) != want {
		t.Fatalf("fired %d timers, want %d", len(got), want)
	}
	for i := 1; i < len(got); i++ {
		prev, cur := got[i-1], got[i]
		if cur.at.Before(prev.at) {
			t.Fatalf("timer %d fired at %v after timer %d at %v", cur.id, cur.at, prev.id, prev.at)
		}
		if cur.at.Equal(prev.at) && cur.id < prev.id {
			t.Fatalf("tie at %v broken out of creation order: %d before %d", cur.at, prev.id, cur.id)
		}
	}
	for _, f := range got {
		if stopped[f.id] {
			t.Fatalf("stopped timer %d fired", f.id)
		}
	}
	if c.PendingTimers() != 0 {
		t.Fatalf("PendingTimers() = %d after full advance, want 0", c.PendingTimers())
	}
}

// TestManualStopAfterFireIsNoop covers the lazy-removal bookkeeping: a
// timer stopped after it fired must not skew PendingTimers.
func TestManualStopAfterFireIsNoop(t *testing.T) {
	c := NewManual(t0)
	timer := c.AfterFunc(time.Second, func() {})
	c.AfterFunc(time.Minute, func() {})
	c.Advance(2 * time.Second)
	if timer.Stop() {
		t.Fatal("Stop() on a fired timer = true, want false")
	}
	if c.PendingTimers() != 1 {
		t.Fatalf("PendingTimers() = %d, want 1", c.PendingTimers())
	}
}
