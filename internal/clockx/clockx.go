// Package clockx provides injectable clocks so that every time-dependent
// component in the system (reservation expiry, confirmation windows, session
// lifetimes, monitors) can run against either the wall clock or a
// deterministic manual clock driven by tests and the discrete-event
// simulator.
package clockx

import (
	"sort"
	"sync"
	"time"
)

// Clock abstracts the passage of time. Implementations must be safe for
// concurrent use.
type Clock interface {
	// Now returns the current time.
	Now() time.Time
	// After returns a channel that delivers the then-current time once d
	// has elapsed.
	After(d time.Duration) <-chan time.Time
	// AfterFunc schedules f to run in its own goroutine once d has
	// elapsed and returns a Timer that can cancel it.
	AfterFunc(d time.Duration, f func()) Timer
}

// Timer is a cancellable pending callback created by AfterFunc.
type Timer interface {
	// Stop cancels the timer. It reports whether the call stopped the
	// timer before it fired.
	Stop() bool
}

// Real returns a Clock backed by the wall clock.
func Real() Clock { return realClock{} }

type realClock struct{}

func (realClock) Now() time.Time                         { return time.Now() }
func (realClock) After(d time.Duration) <-chan time.Time { return time.After(d) }

func (realClock) AfterFunc(d time.Duration, f func()) Timer {
	return realTimer{t: time.AfterFunc(d, f)}
}

type realTimer struct{ t *time.Timer }

func (rt realTimer) Stop() bool { return rt.t.Stop() }

// Manual is a deterministic Clock whose time only moves when Advance or Set
// is called. Timers scheduled with After/AfterFunc fire synchronously (in
// timestamp order) during Advance. The zero value is not usable; call
// NewManual.
type Manual struct {
	mu      sync.Mutex
	now     time.Time
	nextID  int
	pending []*manualTimer
}

// NewManual returns a Manual clock whose current time is start.
func NewManual(start time.Time) *Manual {
	return &Manual{now: start}
}

type manualTimer struct {
	clock   *Manual
	id      int
	at      time.Time
	f       func(now time.Time)
	stopped bool
}

func (mt *manualTimer) Stop() bool {
	mt.clock.mu.Lock()
	defer mt.clock.mu.Unlock()
	if mt.stopped {
		return false
	}
	mt.stopped = true
	return true
}

// Now implements Clock.
func (m *Manual) Now() time.Time {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.now
}

// After implements Clock. The returned channel has capacity 1 so firing
// never blocks Advance.
func (m *Manual) After(d time.Duration) <-chan time.Time {
	ch := make(chan time.Time, 1)
	m.schedule(d, func(now time.Time) { ch <- now })
	return ch
}

// AfterFunc implements Clock. The callback runs synchronously inside
// Advance, after the clock has moved to the timer's deadline.
func (m *Manual) AfterFunc(d time.Duration, f func()) Timer {
	return m.schedule(d, func(time.Time) { f() })
}

func (m *Manual) schedule(d time.Duration, f func(now time.Time)) *manualTimer {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.nextID++
	mt := &manualTimer{clock: m, id: m.nextID, at: m.now.Add(d), f: f}
	m.pending = append(m.pending, mt)
	return mt
}

// Advance moves the clock forward by d, firing due timers in timestamp
// order (ties broken by creation order). Callbacks run with the clock set
// to their deadline, so a callback that schedules another timer within the
// remaining window will see it fire in the same Advance call.
func (m *Manual) Advance(d time.Duration) {
	m.mu.Lock()
	target := m.now.Add(d)
	m.mu.Unlock()
	m.Set(target)
}

// Set moves the clock to t (which must not be earlier than the current
// time), firing due timers as in Advance.
func (m *Manual) Set(t time.Time) {
	for {
		mt := m.popDue(t)
		if mt == nil {
			break
		}
		mt.f(mt.at)
	}
	m.mu.Lock()
	if t.After(m.now) {
		m.now = t
	}
	m.mu.Unlock()
}

// popDue removes and returns the earliest unstopped timer with deadline
// ≤ target, moving the clock to that deadline; it returns nil when none
// remain.
func (m *Manual) popDue(target time.Time) *manualTimer {
	m.mu.Lock()
	defer m.mu.Unlock()
	live := m.pending[:0]
	for _, mt := range m.pending {
		if !mt.stopped {
			live = append(live, mt)
		}
	}
	m.pending = live
	sort.SliceStable(m.pending, func(i, j int) bool {
		if !m.pending[i].at.Equal(m.pending[j].at) {
			return m.pending[i].at.Before(m.pending[j].at)
		}
		return m.pending[i].id < m.pending[j].id
	})
	if len(m.pending) == 0 || m.pending[0].at.After(target) {
		return nil
	}
	mt := m.pending[0]
	m.pending = m.pending[1:]
	mt.stopped = true
	if mt.at.After(m.now) {
		m.now = mt.at
	}
	return mt
}

// PendingTimers reports how many unfired, unstopped timers are scheduled.
func (m *Manual) PendingTimers() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for _, mt := range m.pending {
		if !mt.stopped {
			n++
		}
	}
	return n
}

var _ Clock = (*Manual)(nil)
