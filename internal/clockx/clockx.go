// Package clockx provides injectable clocks so that every time-dependent
// component in the system (reservation expiry, confirmation windows, session
// lifetimes, monitors) can run against either the wall clock or a
// deterministic manual clock driven by tests and the discrete-event
// simulator.
package clockx

import (
	"container/heap"
	"sync"
	"time"
)

// Clock abstracts the passage of time. Implementations must be safe for
// concurrent use.
type Clock interface {
	// Now returns the current time.
	Now() time.Time
	// After returns a channel that delivers the then-current time once d
	// has elapsed.
	After(d time.Duration) <-chan time.Time
	// AfterFunc schedules f to run in its own goroutine once d has
	// elapsed and returns a Timer that can cancel it.
	AfterFunc(d time.Duration, f func()) Timer
}

// Timer is a cancellable pending callback created by AfterFunc.
type Timer interface {
	// Stop cancels the timer. It reports whether the call stopped the
	// timer before it fired.
	Stop() bool
}

// Real returns a Clock backed by the wall clock.
func Real() Clock { return realClock{} }

type realClock struct{}

func (realClock) Now() time.Time                         { return time.Now() }
func (realClock) After(d time.Duration) <-chan time.Time { return time.After(d) }

func (realClock) AfterFunc(d time.Duration, f func()) Timer {
	return realTimer{t: time.AfterFunc(d, f)}
}

type realTimer struct{ t *time.Timer }

func (rt realTimer) Stop() bool { return rt.t.Stop() }

// Manual is a deterministic Clock whose time only moves when Advance or Set
// is called. Timers scheduled with After/AfterFunc fire synchronously (in
// timestamp order) during Advance. The zero value is not usable; call
// NewManual.
//
// Pending timers live in a binary min-heap ordered by (deadline, creation
// id), so scheduling and firing are O(log n) each. The soak harness keeps
// millions of timers flowing through one clock over a run; the previous
// sort-the-whole-slice-per-pop queue made every Advance O(n log n) and
// dominated long-run profiles. Stopped timers are unlinked lazily when
// they surface at the heap root; stops counts them so PendingTimers stays
// exact without a sweep.
type Manual struct {
	mu      sync.Mutex
	now     time.Time
	nextID  int
	pending timerHeap
	stops   int // stopped timers still sitting in the heap
}

// NewManual returns a Manual clock whose current time is start.
func NewManual(start time.Time) *Manual {
	return &Manual{now: start}
}

type manualTimer struct {
	clock   *Manual
	id      int
	at      time.Time
	f       func(now time.Time)
	stopped bool
	index   int // heap position, -1 once popped
}

// timerHeap orders pending timers by deadline, ties broken by creation
// order — exactly the firing order the sort-based queue guaranteed.
type timerHeap []*manualTimer

func (h timerHeap) Len() int { return len(h) }

func (h timerHeap) Less(i, j int) bool {
	if !h[i].at.Equal(h[j].at) {
		return h[i].at.Before(h[j].at)
	}
	return h[i].id < h[j].id
}

func (h timerHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *timerHeap) Push(x any) {
	mt := x.(*manualTimer)
	mt.index = len(*h)
	*h = append(*h, mt)
}

func (h *timerHeap) Pop() any {
	old := *h
	n := len(old)
	mt := old[n-1]
	old[n-1] = nil
	mt.index = -1
	*h = old[:n-1]
	return mt
}

func (mt *manualTimer) Stop() bool {
	mt.clock.mu.Lock()
	defer mt.clock.mu.Unlock()
	if mt.stopped {
		return false
	}
	mt.stopped = true
	if mt.index >= 0 {
		mt.clock.stops++
	}
	return true
}

// Now implements Clock.
func (m *Manual) Now() time.Time {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.now
}

// After implements Clock. The returned channel has capacity 1 so firing
// never blocks Advance.
func (m *Manual) After(d time.Duration) <-chan time.Time {
	ch := make(chan time.Time, 1)
	m.schedule(d, func(now time.Time) { ch <- now })
	return ch
}

// AfterFunc implements Clock. The callback runs synchronously inside
// Advance, after the clock has moved to the timer's deadline.
func (m *Manual) AfterFunc(d time.Duration, f func()) Timer {
	return m.schedule(d, func(time.Time) { f() })
}

func (m *Manual) schedule(d time.Duration, f func(now time.Time)) *manualTimer {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.nextID++
	mt := &manualTimer{clock: m, id: m.nextID, at: m.now.Add(d), f: f}
	heap.Push(&m.pending, mt)
	return mt
}

// Advance moves the clock forward by d, firing due timers in timestamp
// order (ties broken by creation order). Callbacks run with the clock set
// to their deadline, so a callback that schedules another timer within the
// remaining window will see it fire in the same Advance call.
func (m *Manual) Advance(d time.Duration) {
	m.mu.Lock()
	target := m.now.Add(d)
	m.mu.Unlock()
	m.Set(target)
}

// Set moves the clock to t (which must not be earlier than the current
// time), firing due timers as in Advance.
func (m *Manual) Set(t time.Time) {
	for {
		mt := m.popDue(t)
		if mt == nil {
			break
		}
		mt.f(mt.at)
	}
	m.mu.Lock()
	if t.After(m.now) {
		m.now = t
	}
	m.mu.Unlock()
}

// popDue removes and returns the earliest unstopped timer with deadline
// ≤ target, moving the clock to that deadline; it returns nil when none
// remain. Stopped timers surfacing at the root are discarded on the way.
func (m *Manual) popDue(target time.Time) *manualTimer {
	m.mu.Lock()
	defer m.mu.Unlock()
	for len(m.pending) > 0 {
		mt := m.pending[0]
		if mt.stopped {
			heap.Pop(&m.pending)
			m.stops--
			continue
		}
		if mt.at.After(target) {
			return nil
		}
		heap.Pop(&m.pending)
		mt.stopped = true
		if mt.at.After(m.now) {
			m.now = mt.at
		}
		return mt
	}
	return nil
}

// PendingTimers reports how many unfired, unstopped timers are scheduled.
func (m *Manual) PendingTimers() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.pending) - m.stops
}

var _ Clock = (*Manual)(nil)
