package faultx

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"gqosm/internal/clockx"
)

var epoch = time.Date(2003, 6, 16, 9, 0, 0, 0, time.UTC)

// run drives n calls against site and returns the outcome signature.
func run(i *Injector, site string, n int) string {
	sig := ""
	for k := 0; k < n; k++ {
		err := i.Do(site, func() error { return nil })
		switch {
		case err == nil:
			sig += "."
		case errors.Is(err, ErrCrashed):
			sig += "C"
		case errors.Is(err, ErrHang):
			sig += "H"
		case errors.Is(err, ErrInjected):
			sig += "X"
		default:
			sig += "?"
		}
	}
	return sig
}

func TestNilInjectorIsTransparent(t *testing.T) {
	var i *Injector
	ran := false
	if err := i.Do("any", func() error { ran = true; return nil }); err != nil || !ran {
		t.Fatalf("nil injector: ran=%v err=%v", ran, err)
	}
	i.SetDefault(Plan{Rate: 1})
	i.SetEnabled(false)
	i.ReleaseHangs()
	i.RecordVirtual(time.Second)
	if i.Total() != 0 || i.VirtualP95MS() != 0 {
		t.Fatal("nil injector must report zero")
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	mk := func() *Injector {
		i := New(7, clockx.NewManual(epoch))
		i.SetDefault(Plan{Rate: 0.3})
		return i
	}
	a, b := mk(), mk()
	sa, sb := run(a, "s", 500), run(b, "s", 500)
	if sa != sb {
		t.Fatalf("same seed diverged:\n%s\n%s", sa, sb)
	}
	if got, want := fmt.Sprint(a.CountsByKind()), fmt.Sprint(b.CountsByKind()); got != want {
		t.Fatalf("counts diverged: %s vs %s", got, want)
	}
	c := New(8, clockx.NewManual(epoch))
	c.SetDefault(Plan{Rate: 0.3})
	if run(c, "s", 500) == sa {
		t.Fatal("different seeds produced an identical 500-call schedule")
	}
}

func TestErrorFaultSkipsOperation(t *testing.T) {
	i := New(1, clockx.NewManual(epoch))
	i.SetPlan("s", Plan{Rate: 1, Kinds: []Kind{KindError}})
	ran := false
	err := i.Do("s", func() error { ran = true; return nil })
	if !errors.Is(err, ErrInjected) || ran {
		t.Fatalf("error fault: ran=%v err=%v", ran, err)
	}
}

func TestPartialFaultCommitsThenFails(t *testing.T) {
	i := New(1, clockx.NewManual(epoch))
	i.SetPlan("s", Plan{Rate: 1, Kinds: []Kind{KindPartial}})
	ran := false
	err := i.Do("s", func() error { ran = true; return nil })
	if !errors.Is(err, ErrInjected) || !ran {
		t.Fatalf("partial fault must run the op and still fail: ran=%v err=%v", ran, err)
	}
	// An op that fails on its own reports its own error, not a lost reply.
	boom := errors.New("boom")
	if err := i.Do("s", func() error { return boom }); !errors.Is(err, boom) {
		t.Fatalf("partial with failing op: %v", err)
	}
}

func TestLatencyFaultRecordsVirtualTime(t *testing.T) {
	i := New(1, clockx.NewManual(epoch))
	i.SetPlan("s", Plan{Rate: 1, Kinds: []Kind{KindLatency}, Latency: 80 * time.Millisecond})
	for k := 0; k < 10; k++ {
		if err := i.Do("s", func() error { return nil }); err != nil {
			t.Fatalf("latency fault must not fail the op: %v", err)
		}
	}
	if got := i.VirtualP95MS(); got != 80 {
		t.Fatalf("VirtualP95MS = %v, want 80", got)
	}
	if n := i.CountsByKind()["latency"]; n != 10 {
		t.Fatalf("latency count = %d, want 10", n)
	}
}

func TestCrashDownUntilClockRecovers(t *testing.T) {
	clk := clockx.NewManual(epoch)
	i := New(3, clk)
	i.SetPlan("s", Plan{Rate: 1, Kinds: []Kind{KindCrash}, CrashFor: 5 * time.Minute})
	if err := i.Do("s", func() error { return nil }); !errors.Is(err, ErrCrashed) {
		t.Fatalf("first call should crash the site: %v", err)
	}
	// While down: fail fast, op never runs, even once the plan no longer
	// injects new faults — downtime is sticky state keyed to the clock.
	i.SetPlan("s", Plan{})
	clk.Advance(4 * time.Minute)
	ran := false
	if err := i.Do("s", func() error { ran = true; return nil }); !errors.Is(err, ErrCrashed) || ran {
		t.Fatalf("site must stay down: ran=%v err=%v", ran, err)
	}
	clk.Advance(2 * time.Minute)
	if err := i.Do("s", func() error { return nil }); err != nil {
		t.Fatalf("site should have recovered: %v", err)
	}
}

func TestSetEnabledFalseClearsCrashWindows(t *testing.T) {
	clk := clockx.NewManual(epoch)
	i := New(3, clk)
	i.SetPlan("s", Plan{Rate: 1, Kinds: []Kind{KindCrash}, CrashFor: time.Hour})
	_ = i.Do("s", func() error { return nil })
	i.SetEnabled(false)
	i2 := i // same injector; disabling must make the substrate healthy at once
	if err := i2.Do("s", func() error { return nil }); err != nil {
		t.Fatalf("disable must clear crash windows: %v", err)
	}
}

func TestHangSynchronousByDefault(t *testing.T) {
	i := New(5, clockx.NewManual(epoch))
	i.SetPlan("s", Plan{Rate: 1, Kinds: []Kind{KindHang}})
	done := make(chan error, 1)
	go func() { done <- i.Do("s", func() error { return nil }) }()
	select {
	case err := <-done:
		if !errors.Is(err, ErrHang) {
			t.Fatalf("want ErrHang, got %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("synchronous hang blocked")
	}
}

func TestHangBlockOnHangUntilReleased(t *testing.T) {
	i := New(5, clockx.Real())
	i.SetPlan("s", Plan{Rate: 1, Kinds: []Kind{KindHang}, BlockOnHang: true})
	done := make(chan error, 1)
	go func() { done <- i.Do("s", func() error { return nil }) }()
	select {
	case err := <-done:
		t.Fatalf("blocking hang returned early: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	i.ReleaseHangs()
	select {
	case err := <-done:
		if !errors.Is(err, ErrHang) {
			t.Fatalf("want ErrHang after release, got %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("ReleaseHangs did not unblock the call")
	}
	// After a release, further hangs degrade to the synchronous form so
	// drains can't park goroutines forever.
	if err := i.Do("s", func() error { return nil }); !errors.Is(err, ErrHang) {
		t.Fatalf("post-release hang: %v", err)
	}
}

func TestZeroRateConsumesNoRandomness(t *testing.T) {
	// Interleaving calls to a rate-0 site must not shift the schedule of
	// a rate>0 site: zero-rate decisions draw nothing from the PRNG.
	mk := func(interleave bool) string {
		i := New(11, clockx.NewManual(epoch))
		i.SetPlan("hot", Plan{Rate: 0.5, Kinds: []Kind{KindError}})
		sig := ""
		for k := 0; k < 200; k++ {
			if interleave {
				if err := i.Do("cold", func() error { return nil }); err != nil {
					return "cold faulted"
				}
			}
			if err := i.Do("hot", func() error { return nil }); err != nil {
				sig += "X"
			} else {
				sig += "."
			}
		}
		return sig
	}
	if a, b := mk(false), mk(true); a != b {
		t.Fatalf("zero-rate site consumed randomness:\n%s\n%s", a, b)
	}
}
