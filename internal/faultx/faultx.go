// Package faultx is a deterministic, stdlib-only fault-injection layer.
// A seeded Injector sits at named call sites ("gara.create",
// "nrm.reserve", "soapx.client", ...) between the broker and its
// substrate — GARA reservation managers, the NRM bandwidth broker, DSRT
// admission, GRAM submission, the SOAP transport — and decides, per
// call, whether the operation fails and how:
//
//   - Error: the call fails immediately, the operation never runs.
//   - Latency: the call succeeds but a virtual latency is recorded
//     (virtual because deterministic harnesses run on a manual clock;
//     nothing actually sleeps).
//   - Hang: the call hangs until the caller's deadline. In the default
//     synchronous form the injector returns ErrHang at once and the
//     retry policy accounts a full per-attempt timeout; with
//     Plan.BlockOnHang the operation really blocks on a channel until
//     ReleaseHangs, which is what a wall-clock timeout regression test
//     needs.
//   - Partial: the operation RUNS and commits its side effect, then the
//     reply is "lost" — the caller sees an error anyway. This is the
//     fault that exercises orphan adoption and refund/teardown
//     reconciliation.
//   - Crash: the site goes down for Plan.CrashFor of clock time; every
//     call fails fast with ErrCrashed until the clock passes the
//     recovery point.
//
// Determinism: decisions come from a single seeded PRNG guarded by a
// mutex, and crash recovery is a pure function of the injected clock.
// Replaying the same serial call sequence with the same seed reproduces
// the same faults bit-for-bit. All methods are safe on a nil *Injector
// (no faults, zero overhead beyond a nil check), so substrate hooks can
// be installed unconditionally.
package faultx

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"gqosm/internal/clockx"
)

// ErrInjected is the root of every injected failure; retry policies
// treat errors.Is(err, ErrInjected) as transient.
var ErrInjected = errors.New("faultx: injected fault")

// ErrCrashed marks calls failed fast because the site is down. It wraps
// ErrInjected.
var ErrCrashed = fmt.Errorf("site crashed: %w", ErrInjected)

// ErrHang marks a synchronous hang-until-deadline fault: the caller's
// retry policy should account a full per-attempt timeout for it. It
// wraps ErrInjected.
var ErrHang = fmt.Errorf("call hung until deadline: %w", ErrInjected)

// Kind enumerates the fault taxonomy.
type Kind int

// Fault kinds.
const (
	KindError Kind = iota + 1
	KindLatency
	KindHang
	KindPartial
	KindCrash
)

// String returns the kind's report name.
func (k Kind) String() string {
	switch k {
	case KindError:
		return "error"
	case KindLatency:
		return "latency"
	case KindHang:
		return "hang"
	case KindPartial:
		return "partial"
	case KindCrash:
		return "crash"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// AllKinds is the full taxonomy, the default mix for a Plan that does
// not name its kinds.
var AllKinds = []Kind{KindError, KindLatency, KindHang, KindPartial, KindCrash}

// Defaults for Plan fields left zero.
const (
	DefLatency  = 50 * time.Millisecond
	DefCrashFor = 10 * time.Minute
)

// Plan configures injection at one site (or, as the default plan, at
// every site without its own).
type Plan struct {
	// Rate is the per-call fault probability in [0,1]. Zero disables
	// injection (and consumes no randomness, keeping schedules stable).
	Rate float64
	// Kinds is the uniform mix drawn from when a fault fires; empty
	// means AllKinds.
	Kinds []Kind
	// Latency is the virtual delay recorded by KindLatency faults
	// (default DefLatency).
	Latency time.Duration
	// CrashFor is how long a KindCrash keeps the site down in clock
	// time (default DefCrashFor).
	CrashFor time.Duration
	// BlockOnHang makes KindHang really block the calling goroutine on
	// a channel until ReleaseHangs, instead of returning ErrHang
	// synchronously. Only wall-clock timeout tests want this.
	BlockOnHang bool
}

// Injector decides and applies faults. Construct with New; a nil
// *Injector injects nothing.
type Injector struct {
	clock clockx.Clock

	mu       sync.Mutex
	rng      *rand.Rand
	enabled  bool
	def      Plan
	plans    map[string]Plan
	down     map[string]time.Time // site -> recovery deadline
	byKind   map[Kind]int64
	bySite   map[string]int64
	virtual  []time.Duration // recorded virtual latencies
	hangs    []chan struct{} // outstanding BlockOnHang releases
	released bool
}

// New returns an enabled injector with no plans. clock drives crash
// recovery and may be a clockx.Manual for deterministic harnesses; nil
// means the real clock.
func New(seed int64, clock clockx.Clock) *Injector {
	if clock == nil {
		clock = clockx.Real()
	}
	return &Injector{
		clock:   clock,
		rng:     rand.New(rand.NewSource(seed)),
		enabled: true,
		plans:   make(map[string]Plan),
		down:    make(map[string]time.Time),
		byKind:  make(map[Kind]int64),
		bySite:  make(map[string]int64),
	}
}

// SetDefault installs the plan used by sites without a specific one.
func (i *Injector) SetDefault(p Plan) {
	if i == nil {
		return
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	i.def = p
}

// SetPlan installs a site-specific plan.
func (i *Injector) SetPlan(site string, p Plan) {
	if i == nil {
		return
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	i.plans[site] = p
}

// SetEnabled turns injection on or off globally (faults already in
// effect — a crashed site's downtime — still apply via the clock).
// Disabling also clears pending crash windows so a drain sees a healthy
// substrate.
func (i *Injector) SetEnabled(on bool) {
	if i == nil {
		return
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	i.enabled = on
	if !on {
		i.down = make(map[string]time.Time)
	}
}

// ReleaseHangs unblocks every goroutine parked by a BlockOnHang fault,
// now and in the future.
func (i *Injector) ReleaseHangs() {
	if i == nil {
		return
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	for _, ch := range i.hangs {
		close(ch)
	}
	i.hangs = nil
	i.released = true
}

// RecordVirtual adds d to the virtual latency accounting; retry
// policies call it when they charge a timeout against a hung attempt.
func (i *Injector) RecordVirtual(d time.Duration) {
	if i == nil {
		return
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	i.virtual = append(i.virtual, d)
}

// VirtualP95MS returns the 95th percentile (nearest-rank) of recorded
// virtual latencies, in milliseconds. Zero when nothing was recorded.
func (i *Injector) VirtualP95MS() float64 {
	if i == nil {
		return 0
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	n := len(i.virtual)
	if n == 0 {
		return 0
	}
	vs := append([]time.Duration(nil), i.virtual...)
	sort.Slice(vs, func(a, b int) bool { return vs[a] < vs[b] })
	rank := (95*n + 99) / 100 // ceil(0.95n), 1-based
	if rank < 1 {
		rank = 1
	}
	return float64(vs[rank-1]) / float64(time.Millisecond)
}

// CountsByKind returns how many faults of each kind were injected,
// keyed by Kind.String().
func (i *Injector) CountsByKind() map[string]int64 {
	out := make(map[string]int64)
	if i == nil {
		return out
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	for k, n := range i.byKind {
		out[k.String()] = n
	}
	return out
}

// CountsBySite returns how many faults each site saw.
func (i *Injector) CountsBySite() map[string]int64 {
	out := make(map[string]int64)
	if i == nil {
		return out
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	for s, n := range i.bySite {
		out[s] = n
	}
	return out
}

// Total returns the total number of injected faults.
func (i *Injector) Total() int64 {
	if i == nil {
		return 0
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	var t int64
	for _, n := range i.byKind {
		t += n
	}
	return t
}

// decision is the resolved outcome of one call at one site.
type decision struct {
	kind    Kind
	latency time.Duration
	block   chan struct{} // non-nil: really block on it (BlockOnHang)
}

// decide rolls the site's plan. It holds the mutex for the whole roll
// so concurrent callers serialize on the single PRNG.
func (i *Injector) decide(site string) decision {
	i.mu.Lock()
	defer i.mu.Unlock()

	// A crashed site stays down — and fails fast — until the clock
	// passes its recovery point, whether or not injection of new faults
	// is still enabled.
	if until, ok := i.down[site]; ok {
		if i.clock.Now().Before(until) {
			i.byKind[KindCrash]++
			i.bySite[site]++
			return decision{kind: KindCrash}
		}
		delete(i.down, site)
	}
	if !i.enabled {
		return decision{}
	}
	p, ok := i.plans[site]
	if !ok {
		p = i.def
	}
	if p.Rate <= 0 {
		return decision{}
	}
	if i.rng.Float64() >= p.Rate {
		return decision{}
	}
	kinds := p.Kinds
	if len(kinds) == 0 {
		kinds = AllKinds
	}
	k := kinds[i.rng.Intn(len(kinds))]
	i.byKind[k]++
	i.bySite[site]++
	d := decision{kind: k}
	switch k {
	case KindLatency:
		d.latency = p.Latency
		if d.latency <= 0 {
			d.latency = DefLatency
		}
		i.virtual = append(i.virtual, d.latency)
	case KindHang:
		if p.BlockOnHang && !i.released {
			d.block = make(chan struct{})
			i.hangs = append(i.hangs, d.block)
		}
	case KindCrash:
		crashFor := p.CrashFor
		if crashFor <= 0 {
			crashFor = DefCrashFor
		}
		i.down[site] = i.clock.Now().Add(crashFor)
	}
	return d
}

// Do runs op at site under the injector's fault plan. With no fault the
// call is transparent. Safe on a nil receiver (runs op directly).
func (i *Injector) Do(site string, op func() error) error {
	if i == nil {
		return op()
	}
	d := i.decide(site)
	switch d.kind {
	case 0:
		return op()
	case KindError:
		return fmt.Errorf("faultx: %s: %w", site, ErrInjected)
	case KindLatency:
		// The latency is virtual — recorded in decide, never slept —
		// so manual-clock harnesses stay deterministic. The operation
		// itself succeeds.
		return op()
	case KindHang:
		if d.block != nil {
			<-d.block
		}
		return fmt.Errorf("faultx: %s: %w", site, ErrHang)
	case KindPartial:
		// The side effect commits; only the reply is lost.
		if err := op(); err != nil {
			return err
		}
		return fmt.Errorf("faultx: %s: reply lost after commit: %w", site, ErrInjected)
	case KindCrash:
		return fmt.Errorf("faultx: %s: %w", site, ErrCrashed)
	default:
		return op()
	}
}
