package sim

import (
	"encoding/json"
	"testing"

	"gqosm/internal/obs"
)

// TestParallelCacheHitRate checks the cache plumbing end to end: with
// caches on (the default) a stress run reports a positive discovery
// hit rate; with DisableCaches the field stays zero and is omitted
// from the JSON, preserving the historical schema.
func TestParallelCacheHitRate(t *testing.T) {
	on, err := RunParallel(ParallelConfig{Clients: 4, Ops: 800, Phases: 4, Seed: 11, Obs: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	if on.CacheHitRate <= 0 {
		t.Errorf("cache-on run hit rate = %v, want > 0", on.CacheHitRate)
	}
	off, err := RunParallel(ParallelConfig{Clients: 4, Ops: 800, Phases: 4, Seed: 11, Obs: obs.NewRegistry(),
		DisableCaches: true})
	if err != nil {
		t.Fatal(err)
	}
	if off.CacheHitRate != 0 {
		t.Errorf("cache-off run hit rate = %v, want 0", off.CacheHitRate)
	}
	raw, err := json.Marshal(off)
	if err != nil {
		t.Fatal(err)
	}
	var fields map[string]any
	if err := json.Unmarshal(raw, &fields); err != nil {
		t.Fatal(err)
	}
	if _, ok := fields["cache_hit_rate"]; ok {
		t.Error("cache_hit_rate emitted for a cache-off run; want omitted")
	}

	// Caches must not change admission outcomes. Concurrent runs have
	// nondeterministic interleaving, so the A/B comparison uses serial
	// runs, whose schedules are pure functions of the seed.
	serialOn, err := RunParallel(ParallelConfig{Clients: 1, Ops: 800, Phases: 4, Seed: 11, Obs: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	serialOff, err := RunParallel(ParallelConfig{Clients: 1, Ops: 800, Phases: 4, Seed: 11, Obs: obs.NewRegistry(),
		DisableCaches: true})
	if err != nil {
		t.Fatal(err)
	}
	if serialOn.Requested != serialOff.Requested || serialOn.Admitted != serialOff.Admitted ||
		serialOn.Terminated != serialOff.Terminated {
		t.Errorf("serial cache on/off outcome divergence: on=%d/%d/%d off=%d/%d/%d",
			serialOn.Requested, serialOn.Admitted, serialOn.Terminated,
			serialOff.Requested, serialOff.Admitted, serialOff.Terminated)
	}
}

// TestChaosDeterministicWithCaches runs the chaos harness twice per
// configuration with caches enabled (the default): the JSON reports
// must be byte-identical and violation-free — the cache layer must not
// perturb the deterministic replay.
func TestChaosDeterministicWithCaches(t *testing.T) {
	for _, shards := range []int{1, 4} {
		cfg := ChaosConfig{Clients: 4, Ops: 600, Phases: 3, Seed: 7, FaultRate: 0.2, Shards: shards}
		a, err := RunChaos(cfg)
		if err != nil {
			t.Fatalf("shards=%d first run: %v", shards, err)
		}
		cfg.Obs = nil // fresh private registry for the replay
		b, err := RunChaos(cfg)
		if err != nil {
			t.Fatalf("shards=%d second run: %v", shards, err)
		}
		ja, err := json.Marshal(a)
		if err != nil {
			t.Fatal(err)
		}
		jb, err := json.Marshal(b)
		if err != nil {
			t.Fatal(err)
		}
		if string(ja) != string(jb) {
			t.Errorf("shards=%d chaos replay diverged:\n%s\nvs\n%s", shards, ja, jb)
		}
		if a.InvariantViolations != 0 {
			t.Errorf("shards=%d: %d invariant violations with caches on", shards, a.InvariantViolations)
		}
	}
}
