package sim

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"time"

	"gqosm/internal/clockx"
	"gqosm/internal/core"
	"gqosm/internal/faultx"
	"gqosm/internal/invariant"
	"gqosm/internal/obs"
	"gqosm/internal/pricing"
	"gqosm/internal/resource"
)

// This file is the restart-chaos harness: the chaos workload run
// against a DURABLE broker that is killed and recovered from its WAL
// mid-workload. At every kill point the harness digests the live
// broker's externally observable state (sessions, allocator book,
// best-effort table, ledger aggregates), crashes it, rebuilds a
// replacement with core.Recover against the surviving substrates and
// requires the recovered digest to match the pre-kill digest exactly —
// the "recovered capacity exactly matches reality" acceptance bar. The
// workload then continues against the recovered broker. Like RunChaos,
// the run is fully deterministic per (seed, shards, ...): clients step
// serially round-robin on the manual clock, and the only
// non-deterministic field in the report is the wall-clock recovery
// time, which CI strips before diffing reports.
//
// Fault injection covers the RM substrates but NOT the WAL's own
// append/sync sites: a sealed log models a disk that died BEFORE the
// kill, so state written after the seal is legitimately unrecoverable
// and digest equality cannot hold. WAL-site faults are exercised by the
// crash-point matrix tests instead, where the oracle is coherence, not
// bit-equality.

// RestartChaosConfig sizes a RunRestartChaos run.
type RestartChaosConfig struct {
	// Clients is the number of simulated clients (default 8).
	Clients int
	// Ops is the total number of lifecycle operations (default 4000).
	Ops int
	// Restarts is how many times the broker is killed and recovered
	// mid-workload (default 3). Kill points are spaced evenly.
	Restarts int
	// Seed seeds the client schedules and the fault injector.
	Seed int64
	// FaultRate is the per-site injection probability on the RM
	// substrates (default 0.1).
	FaultRate float64
	// Plan is the Algorithm-1 partition; defaults to the §5.6 one.
	Plan core.CapacityPlan
	// Shards is the broker shard count (default 1).
	Shards int
	// SnapshotEvery is the WAL snapshot cadence in records (0 = the
	// wal package default).
	SnapshotEvery int
	// WALDir is the journal directory; empty creates (and removes) a
	// temporary one.
	WALDir string
	// Obs receives the run's metrics; nil creates a private registry.
	Obs *obs.Registry
	// Intake routes admissions through the group-commit intake, flushed
	// once per round-robin round as in RunChaos. The intake is always
	// drained before a kill point, so batched admissions are journaled
	// (one fsync per batch) before the digest is taken and recovery must
	// still reproduce the pre-kill state exactly.
	Intake bool
}

// RestartResult reports a RunRestartChaos run. Every field except
// RecoveryP95MS is deterministic for a given configuration.
type RestartResult struct {
	Seed      int64   `json:"seed"`
	FaultRate float64 `json:"fault_rate"`
	Shards    int     `json:"shards"`
	Clients   int     `json:"clients"`
	Ops       int     `json:"ops"`
	Restarts  int     `json:"restarts"`

	Requested  int `json:"requested"`
	Admitted   int `json:"admitted"`
	Terminated int `json:"terminated"`

	// Intake / IntakeBatchMean mirror ChaosResult's fields; omitted for
	// direct-path runs.
	Intake          bool    `json:"intake,omitempty"`
	IntakeBatchMean float64 `json:"intake_batch_mean,omitempty"`

	// ReplayedRecords sums WAL records replayed across all recoveries;
	// SnapshotSeqs lists each recovery's snapshot base sequence.
	ReplayedRecords int      `json:"replayed_records"`
	SnapshotSeqs    []uint64 `json:"snapshot_seqs"`
	// Adopted / Refunded / ParkedCleared sum the reconcile sweeps'
	// counters across recoveries.
	Adopted       int `json:"adopted"`
	Refunded      int `json:"refunded"`
	ParkedCleared int `json:"parked_cleared"`
	// DigestMatches counts recoveries whose post-recovery state digest
	// was byte-identical to the pre-kill digest. CI requires it to
	// equal Restarts.
	DigestMatches int `json:"digest_matches"`

	// WALRecords / WALSnapshots are the final broker's totals.
	WALRecords   int64 `json:"wal_records"`
	WALSnapshots int64 `json:"wal_snapshots"`

	// CapacityRestored is true when the final drain returned every
	// shard to its configured plan — nothing leaked or was lost across
	// all the restarts. CI gates on it.
	CapacityRestored bool `json:"capacity_restored"`

	// InvariantViolations totals oracle violations (digest mismatches
	// included); Checks counts oracle passes.
	InvariantViolations int      `json:"invariant_violations"`
	Checks              int      `json:"checks"`
	Violations          []string `json:"violations,omitempty"`

	// RecoveryP95MS is the p95 wall-clock time of core.Recover across
	// the run's restarts, in milliseconds. The ONLY non-deterministic
	// field: CI strips it before diffing reports for determinism.
	RecoveryP95MS float64 `json:"recovery_p95_ms"`
}

// restartDigest is the comparable broker-state image. Parked cancels
// are deliberately excluded: the recovery sweep clears them by design,
// so they differ across a kill legitimately.
type restartDigest struct {
	Sessions []restartSessionDigest  `json:"sessions"`
	Shards   []restartShardDigest    `json:"shards"`
	Ledger   restartLedgerDigest     `json:"ledger"`
	BERoutes map[string]restartShard `json:"be_routes"`
}

type restartShard = int

type restartSessionDigest struct {
	ID         string            `json:"id"`
	State      int               `json:"state"`
	Degraded   bool              `json:"degraded"`
	Violations int               `json:"violations"`
	Handle     string            `json:"handle"`
	Allocated  resource.Capacity `json:"allocated"`
	Original   resource.Capacity `json:"original"`
}

type restartShardDigest struct {
	Guaranteed   []string          `json:"guaranteed"`
	AvailGuar    resource.Capacity `json:"avail_guaranteed"`
	AvailBE      resource.Capacity `json:"avail_best_effort"`
	Offline      resource.Capacity `json:"offline"`
	BestEffort   []core.BEState    `json:"best_effort"`
	BENextSeq    int               `json:"be_next_seq"`
	SessionCount int               `json:"session_count"`
}

type restartLedgerDigest struct {
	Net     float64         `json:"net"`
	Totals  map[int]float64 `json:"totals"`
	Entries int             `json:"entries"`
	Evicted int64           `json:"evicted"`
}

func digestBroker(c *Cluster) (string, error) {
	b := c.Broker
	d := restartDigest{BERoutes: map[string]restartShard{}}
	docs := b.Sessions(nil)
	alloc := make(map[string]resource.Capacity, len(docs))
	for _, doc := range docs {
		alloc[string(doc.ID)] = doc.Allocated
	}
	for _, info := range b.SessionInfos() {
		d.Sessions = append(d.Sessions, restartSessionDigest{
			ID:         string(info.ID),
			State:      int(info.State),
			Degraded:   info.Degraded,
			Violations: info.Violations,
			Handle:     string(info.Handle),
			Allocated:  alloc[string(info.ID)],
		})
	}
	for _, a := range b.Allocators() {
		users := a.GuaranteedUsers()
		sort.Strings(users)
		offline, be, nextSeq := a.ExportAux()
		d.Shards = append(d.Shards, restartShardDigest{
			Guaranteed:   users,
			AvailGuar:    a.AvailableGuaranteed(),
			AvailBE:      a.AvailableBestEffort(),
			Offline:      offline,
			BestEffort:   be,
			BENextSeq:    nextSeq,
			SessionCount: len(users),
		})
	}
	b.Ledger().ExportWith(func(st pricing.State) {
		d.Ledger = restartLedgerDigest{
			Net:     st.Net,
			Totals:  map[int]float64{},
			Entries: len(st.Entries),
			Evicted: st.Evicted,
		}
		for k, v := range st.Totals {
			d.Ledger.Totals[int(k)] = v
		}
	})
	data, err := json.Marshal(d)
	return string(data), err
}

// RunRestartChaos replays the chaos workload against a durable broker,
// killing and recovering it cfg.Restarts times. A non-nil error means
// the harness itself failed; oracle violations and digest mismatches
// are reported in the result for CI to gate on.
func RunRestartChaos(cfg RestartChaosConfig) (*RestartResult, error) {
	if cfg.Clients <= 0 {
		cfg.Clients = 8
	}
	if cfg.Ops <= 0 {
		cfg.Ops = 4000
	}
	if cfg.Restarts <= 0 {
		cfg.Restarts = 3
	}
	if cfg.FaultRate <= 0 {
		cfg.FaultRate = 0.1
	}
	if cfg.Plan.Total().IsZero() {
		cfg.Plan = DefaultParallelPlan()
	}
	if cfg.Obs == nil {
		cfg.Obs = obs.NewRegistry()
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 1
	}
	if cfg.WALDir == "" {
		dir, err := os.MkdirTemp("", "gqosm-wal-*")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
		cfg.WALDir = dir
	}

	clock := clockx.NewManual(Epoch)
	inj := faultx.New(cfg.Seed, clock)
	inj.SetDefault(faultx.Plan{Rate: cfg.FaultRate, CrashFor: 2 * time.Minute})
	// The WAL's own sites stay fault-free here (see the file comment).
	inj.SetPlan("wal.append", faultx.Plan{})
	inj.SetPlan("wal.sync", faultx.Plan{})

	cluster, err := NewCluster(ClusterConfig{
		Plan:     cfg.Plan,
		Shards:   cfg.Shards,
		Obs:      cfg.Obs,
		Clock:    clock,
		Faults:   inj,
		RMPolicy: core.RetryPolicy{Attempts: 3, Timeout: 2 * time.Second, Seed: cfg.Seed},
		WAL:      core.DurabilityConfig{Dir: cfg.WALDir, SnapshotEvery: cfg.SnapshotEvery},
		Intake:   core.IntakeConfig{Enabled: cfg.Intake},
	})
	if err != nil {
		return nil, err
	}
	defer cluster.Close()

	mode := admitDirect
	if cfg.Intake {
		mode = admitQueue
	}
	clients := make([]*parClient, cfg.Clients)
	for i := range clients {
		clients[i] = &parClient{
			id:         i,
			rng:        rand.New(rand.NewSource(cfg.Seed + int64(i))),
			cluster:    cluster,
			intakeMode: mode,
		}
	}
	rounds := cfg.Ops / cfg.Clients
	if rounds < cfg.Restarts+1 {
		rounds = cfg.Restarts + 1
	}
	killEvery := rounds / (cfg.Restarts + 1)
	res := &RestartResult{
		Seed: cfg.Seed, FaultRate: cfg.FaultRate, Shards: cfg.Shards,
		Clients: cfg.Clients, Ops: rounds * cfg.Clients, Restarts: cfg.Restarts,
	}

	record := func(stage string, err error) {
		if err == nil {
			return
		}
		if ie, ok := err.(*invariant.Error); ok {
			res.InvariantViolations += len(ie.Violations)
			for _, v := range ie.Violations {
				res.Violations = append(res.Violations, stage+": "+v.String())
			}
			return
		}
		res.InvariantViolations++
		res.Violations = append(res.Violations, stage+": "+err.Error())
	}

	var recoveryMS []float64
	killed := 0
	for round := 0; round < rounds; round++ {
		for _, cl := range clients {
			cl.step()
		}
		if cfg.Intake {
			// Drain the intake every round, and in particular before any
			// kill point: queued-but-unflushed admissions are not yet
			// journaled, so the digest must never see them.
			cluster.Broker.FlushIntake()
			for _, cl := range clients {
				cl.resolveTickets()
			}
		}
		if killed < cfg.Restarts && (round+1)%killEvery == 0 {
			killed++
			stage := fmt.Sprintf("restart %d", killed)

			res.Checks++
			record(stage+" pre-kill", invariant.CheckAll(cluster.Broker, clock.Now(), cluster.Pool))
			record(stage+" pre-kill", invariant.CheckIntake(cluster.Broker))
			pre, err := digestBroker(cluster)
			if err != nil {
				return res, fmt.Errorf("%s: digest: %w", stage, err)
			}

			cluster.Broker.Crash()
			start := time.Now()
			stats, err := cluster.RecoverBroker()
			if err != nil {
				return res, fmt.Errorf("%s: recover: %w", stage, err)
			}
			recoveryMS = append(recoveryMS, float64(time.Since(start).Microseconds())/1000)
			res.ReplayedRecords += stats.ReplayedRecords
			res.SnapshotSeqs = append(res.SnapshotSeqs, stats.SnapshotSeq)
			res.Adopted += stats.Adopted
			res.Refunded += stats.Refunded
			res.ParkedCleared += stats.ParkedCleared

			post, err := digestBroker(cluster)
			if err != nil {
				return res, fmt.Errorf("%s: digest: %w", stage, err)
			}
			if post == pre {
				res.DigestMatches++
			} else {
				res.InvariantViolations++
				res.Violations = append(res.Violations,
					fmt.Sprintf("%s: recovered state diverged\n pre: %s\npost: %s", stage, pre, post))
			}
			res.Checks++
			record(stage+" post-recovery", invariant.CheckAll(cluster.Broker, clock.Now(), cluster.Pool))
		}
	}

	// Final drain on a healthy substrate, exactly as RunChaos does.
	inj.SetEnabled(false)
	inj.ReleaseHangs()
	cluster.Broker.NotifyFailure(resource.Capacity{})
	for _, cl := range clients {
		cl.drain()
		res.Requested += cl.requested
		res.Admitted += cl.admitted
		res.Terminated += cl.terminated
	}
	cluster.Broker.ReconcileReservations()
	clock.Advance(72 * time.Hour)
	cluster.Broker.ExpireDue()
	cluster.Broker.ReconcileReservations()

	res.Checks++
	record("post-drain", invariant.CheckAll(cluster.Broker, clock.Now(), cluster.Pool))
	record("post-drain", invariant.CheckReservations(cluster.Broker, cluster.GARA,
		invariant.ReservationCheck{Final: true}))

	res.CapacityRestored = true
	for si, alloc := range cluster.Broker.Allocators() {
		plan := alloc.Plan()
		if users := alloc.GuaranteedUsers(); len(users) != 0 {
			res.CapacityRestored = false
			res.InvariantViolations++
			res.Violations = append(res.Violations, fmt.Sprintf(
				"drain: shard %d: %d guaranteed grant(s) survive: %v", si, len(users), users))
		}
		if got := alloc.AvailableGuaranteed(); !got.Equal(plan.Guaranteed) {
			res.CapacityRestored = false
			res.InvariantViolations++
			res.Violations = append(res.Violations, fmt.Sprintf(
				"drain: shard %d guaranteed headroom %v, want %v", si, got, plan.Guaranteed))
		}
	}

	appends, _, snapshots := cluster.Broker.WALStats()
	res.WALRecords = appends
	res.WALSnapshots = snapshots
	res.RecoveryP95MS = percentileFloat(recoveryMS, 0.95)
	if cfg.Intake {
		res.Intake = true
		submitted := cfg.Obs.Counter("gqosm_intake_submitted_total",
			"Admissions accepted into the intake queues").Value()
		flushes := cfg.Obs.Counter("gqosm_intake_flushes_total",
			"Group-commit flushes executed").Value()
		if flushes > 0 {
			res.IntakeBatchMean = float64(submitted) / float64(flushes)
		}
	}
	return res, nil
}

// percentileFloat is the nearest-rank percentile of vs (0 when empty).
func percentileFloat(vs []float64, p float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), vs...)
	sort.Float64s(sorted)
	idx := int(p*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}
