package sim

import (
	"encoding/json"
	"testing"
)

// chaosRun executes a small chaos run and returns its marshaled report.
func chaosRun(t *testing.T, cfg ChaosConfig) (*ChaosResult, []byte) {
	t.Helper()
	res, err := RunChaos(cfg)
	if err != nil {
		t.Fatalf("RunChaos: %v", err)
	}
	data, err := json.Marshal(res)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	return res, data
}

func TestRunChaosDeterministic(t *testing.T) {
	cfg := ChaosConfig{Seed: 7, FaultRate: 0.2, Ops: 2000, Shards: 2}
	r1, d1 := chaosRun(t, cfg)
	_, d2 := chaosRun(t, cfg)
	if string(d1) != string(d2) {
		t.Fatalf("same seed produced different reports:\n%s\n%s", d1, d2)
	}
	if r1.InvariantViolations != 0 {
		t.Fatalf("invariant violations under chaos: %v", r1.Violations)
	}
	if r1.FaultsInjected == 0 {
		t.Fatal("no faults injected at rate 0.2")
	}

	// A different seed must explore a different schedule.
	_, d3 := chaosRun(t, ChaosConfig{Seed: 8, FaultRate: 0.2, Ops: 2000, Shards: 2})
	if string(d1) == string(d3) {
		t.Fatal("different seeds produced identical reports")
	}
}

func TestRunChaosZeroViolationsAcrossSeeds(t *testing.T) {
	for _, seed := range []int64{1, 3} {
		for _, shards := range []int{1, 4} {
			res, _ := chaosRun(t, ChaosConfig{Seed: seed, FaultRate: 0.25, Ops: 1500, Shards: shards})
			if res.InvariantViolations != 0 {
				t.Errorf("seed %d shards %d: %v", seed, shards, res.Violations)
			}
			if res.Checks == 0 {
				t.Errorf("seed %d shards %d: oracle never ran", seed, shards)
			}
		}
	}
}

func TestRunChaosExercisesRetryBudget(t *testing.T) {
	res, _ := chaosRun(t, ChaosConfig{Seed: 11, FaultRate: 0.4, Ops: 2000})
	if res.Retries == 0 {
		t.Error("fault rate 0.4 produced no retries")
	}
	if res.Admitted == 0 {
		t.Error("nothing admitted under chaos — retry layer not absorbing faults")
	}
	if res.FaultsByKind["partial"] == 0 || res.FaultsByKind["error"] == 0 {
		t.Errorf("fault mix not exercised: %v", res.FaultsByKind)
	}
}
