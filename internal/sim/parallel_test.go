package sim_test

import (
	"encoding/json"
	"math"
	"strings"
	"testing"

	"gqosm/internal/obs"
	"gqosm/internal/sim"
)

// TestRunParallelSmoke runs a small concurrent stress and expects a clean
// bill of health at every quiesce point and an exact capacity drain.
func TestRunParallelSmoke(t *testing.T) {
	res, err := sim.RunParallel(sim.ParallelConfig{
		Clients: 4, Ops: 400, Phases: 4, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Checks != 5 { // 4 phase quiesces + post-drain
		t.Fatalf("checks = %d, want 5", res.Checks)
	}
	if res.Requested == 0 || res.Admitted == 0 {
		t.Fatalf("degenerate run: %+v", res)
	}
}

// TestRunParallelDeterministicSchedules confirms two runs with the same
// seed issue the same number of requests (the per-client schedules are
// deterministic even though the interleaving is not).
func TestRunParallelDeterministicSchedules(t *testing.T) {
	cfg := sim.ParallelConfig{Clients: 2, Ops: 200, Phases: 2, Seed: 42}
	a, err := sim.RunParallel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := sim.RunParallel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Requested != b.Requested {
		t.Fatalf("request schedule not deterministic: %d vs %d", a.Requested, b.Requested)
	}
}

// TestRunParallelReportSchema pins the JSON schema consumers of
// BENCH_parallel.json rely on: a bare-nanosecond Elapsed alone was easy
// to misread as milliseconds, so the report must also carry elapsed_ms
// and the admission-latency percentiles.
func TestRunParallelReportSchema(t *testing.T) {
	res, err := sim.RunParallel(sim.ParallelConfig{
		Clients: 4, Ops: 400, Phases: 4, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}

	raw, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"elapsed_ms", "admit_p50_ms", "admit_p95_ms", "admit_p99_ms"} {
		v, ok := m[key].(float64)
		if !ok {
			t.Fatalf("report lacks numeric %q: %s", key, raw)
		}
		if v <= 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			t.Errorf("%s = %v, want a positive finite value", key, v)
		}
	}
	elapsedNS, _ := m["Elapsed"].(float64)
	if got := m["elapsed_ms"].(float64); math.Abs(got-elapsedNS/1e6) > 1e-6 {
		t.Errorf("elapsed_ms %v does not match Elapsed %v ns", got, elapsedNS)
	}
	if res.AdmitP50MS > res.AdmitP95MS || res.AdmitP95MS > res.AdmitP99MS {
		t.Errorf("percentiles not monotone: p50=%v p95=%v p99=%v",
			res.AdmitP50MS, res.AdmitP95MS, res.AdmitP99MS)
	}
}

// TestRunParallelSharedRegistry verifies a caller-supplied registry
// receives the run's broker metrics and serves them in exposition format.
func TestRunParallelSharedRegistry(t *testing.T) {
	reg := obs.NewRegistry()
	res, err := sim.RunParallel(sim.ParallelConfig{
		Clients: 2, Ops: 200, Phases: 2, Seed: 3, Obs: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	if !strings.Contains(text, "gqosm_broker_admission_seconds_count") {
		t.Errorf("exposition lacks admission histogram:\n%s", text)
	}
	if !strings.Contains(text, `gqosm_broker_lifecycle_total{event="accept"}`) {
		t.Errorf("exposition lacks accept counter:\n%s", text)
	}
	if res.Admitted == 0 {
		t.Fatalf("degenerate run: %+v", res)
	}
}
