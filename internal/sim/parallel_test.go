package sim_test

import (
	"testing"

	"gqosm/internal/sim"
)

// TestRunParallelSmoke runs a small concurrent stress and expects a clean
// bill of health at every quiesce point and an exact capacity drain.
func TestRunParallelSmoke(t *testing.T) {
	res, err := sim.RunParallel(sim.ParallelConfig{
		Clients: 4, Ops: 400, Phases: 4, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Checks != 5 { // 4 phase quiesces + post-drain
		t.Fatalf("checks = %d, want 5", res.Checks)
	}
	if res.Requested == 0 || res.Admitted == 0 {
		t.Fatalf("degenerate run: %+v", res)
	}
}

// TestRunParallelDeterministicSchedules confirms two runs with the same
// seed issue the same number of requests (the per-client schedules are
// deterministic even though the interleaving is not).
func TestRunParallelDeterministicSchedules(t *testing.T) {
	cfg := sim.ParallelConfig{Clients: 2, Ops: 200, Phases: 2, Seed: 42}
	a, err := sim.RunParallel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := sim.RunParallel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Requested != b.Requested {
		t.Fatalf("request schedule not deterministic: %d vs %d", a.Requested, b.Requested)
	}
}
