package sim

import (
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"strconv"
	"sync"
	"time"

	"gqosm/internal/core"
	"gqosm/internal/httpapi"
	"gqosm/internal/invariant"
	"gqosm/internal/obs"
	"gqosm/internal/resource"
	"gqosm/internal/sla"
)

// This file is the concurrent admission harness: N goroutine clients
// drive a shared broker through the full Fig. 3 lifecycle — request,
// accept, reject, invoke, terminate, offer expiry, failure/recovery and
// optimizer passes — each on a deterministic per-client seed schedule.
// The run is split into phases; at every phase barrier (a quiesce point,
// where no operation is in flight) the full invariant suite runs, and
// after a final drain the allocator must hold exactly the configured
// plan again — no lost or double-spent capacity.

// ParallelConfig sizes a RunParallel stress run.
type ParallelConfig struct {
	// Clients is the number of concurrent goroutine clients (default 8).
	Clients int
	// Ops is the total number of lifecycle operations across all clients
	// (default 10000).
	Ops int
	// Phases is the number of quiesce points (default 10).
	Phases int
	// Seed is the base seed; client i draws from rand.NewSource(Seed+i),
	// so each client's operation schedule is deterministic even though
	// the global interleaving is not.
	Seed int64
	// Plan is the Algorithm-1 partition; defaults to the §5.6 partition.
	Plan core.CapacityPlan
	// Shards is the broker shard count (default 1, the classic monolithic
	// domain).
	Shards int
	// Obs receives the run's metrics; nil creates a private registry.
	Obs *obs.Registry
	// DisableCaches turns the broker's hot-path caches off for the run
	// (the gridsim -cache=off ablation). Default off = caches on.
	DisableCaches bool
	// Intake routes every admission through the broker's group-commit
	// batch path (SubmitWait): concurrent requests queued behind the same
	// flush leader land in one allocator pass and one WAL fsync. Default
	// off keeps the direct RequestService path.
	Intake bool
	// Transport selects how clients submit admissions: "" (in-process
	// calls, the historical harness) or "http" (a loopback JSON-API
	// server — the compact non-SOAP transport — with each admission a
	// real POST /api/v1/request; lifecycle operations stay in-process).
	// Composes with Intake: the server routes admissions via SubmitWait
	// when the intake is enabled.
	Transport string
	// Policy names the broker's adaptation policy ("" = "paper").
	Policy string
	// ShadowPolicy consults the named candidate policy in shadow at
	// every broker decision point.
	ShadowPolicy string
}

// ParallelResult reports a RunParallel run.
type ParallelResult struct {
	Clients, Ops, Phases int
	// Requested / Admitted / Terminated count successful lifecycle
	// transitions across all clients.
	Requested, Admitted, Terminated int
	// Checks counts invariant suite passes (one per quiesce point plus
	// the post-drain pass).
	Checks int
	// Elapsed is the wall-clock time spent in the phased operation loop,
	// in nanoseconds when marshalled (time.Duration's default encoding).
	Elapsed time.Duration
	// ElapsedMS duplicates Elapsed in milliseconds for consumers that
	// should not have to know Go's Duration-as-nanoseconds convention.
	ElapsedMS float64 `json:"elapsed_ms"`
	// OpsPerSec is Ops / Elapsed.
	OpsPerSec float64
	// AdmitP50MS / AdmitP95MS / AdmitP99MS are admission-latency
	// percentiles in milliseconds, estimated from the broker's
	// gqosm_broker_admission_seconds histogram by linear interpolation
	// within fixed buckets.
	AdmitP50MS float64 `json:"admit_p50_ms"`
	AdmitP95MS float64 `json:"admit_p95_ms"`
	AdmitP99MS float64 `json:"admit_p99_ms"`
	// Shards is the broker shard count the run used.
	Shards int `json:"shards"`
	// ShardSessions counts sessions routed to each shard (terminal
	// included), sampled at the last quiesce point before the drain; it
	// shows how evenly the placement layer spread the load. Only emitted
	// for sharded runs (Shards > 1), so the monolithic default keeps the
	// flat all-scalar schema.
	ShardSessions []int `json:"shard_sessions,omitempty"`
	// ShardUtilization is each shard's guaranteed-partition load factor at
	// the same sample point (max over dimensions of demand / bound).
	ShardUtilization []float64 `json:"shard_utilization,omitempty"`
	// CacheHitRate is hits / (hits + misses) of the discovery cache over
	// the run. Omitted when the cache saw no traffic (disabled runs keep
	// the historical schema).
	CacheHitRate float64 `json:"cache_hit_rate,omitempty"`
	// Intake reports whether admissions rode the group-commit batch
	// path; IntakeBatchMean is the mean flushed batch size
	// (submissions / flushes). Both omitted for direct-path runs so the
	// historical schema is unchanged.
	Intake          bool    `json:"intake,omitempty"`
	IntakeBatchMean float64 `json:"intake_batch_mean,omitempty"`
	// Transport echoes ParallelConfig.Transport for "http" runs; omitted
	// for the in-process default so historical reports keep their schema.
	Transport string `json:"transport,omitempty"`
}

// Admission paths a parClient can take for its "new request" steps.
const (
	// admitDirect calls RequestService — the historical path.
	admitDirect = iota
	// admitWait calls SubmitWait: the concurrent group-commit path,
	// where waiters behind the same flush leader share one allocator
	// pass. Used by RunParallel's goroutine clients.
	admitWait
	// admitQueue calls Submit and defers resolution: the serial
	// harnesses flush once per round-robin round and then resolve
	// tickets in schedule order, so batches form deterministically.
	admitQueue
)

// parClient is one goroutine client's deterministic schedule and local
// session bookkeeping.
type parClient struct {
	id      int
	rng     *rand.Rand
	cluster *Cluster

	// intakeMode selects the admission path (one of the admit*
	// constants); tickets holds unresolved admitQueue futures between a
	// round's submits and the harness's flush.
	intakeMode int
	tickets    []*core.IntakeTicket

	// http, when set, sends "new request" admissions over the loopback
	// JSON API instead of in-process calls (ParallelConfig.Transport).
	http *httpapi.Client

	proposed []sla.ID
	active   []sla.ID

	requested, admitted, terminated int
}

// DefaultParallelPlan is the §5.6 partition used when ParallelConfig.Plan
// is zero.
func DefaultParallelPlan() core.CapacityPlan {
	return core.CapacityPlan{
		Guaranteed: resource.Capacity{CPU: 15, MemoryMB: 6144, DiskGB: 120},
		Adaptive:   resource.Capacity{CPU: 6, MemoryMB: 2048, DiskGB: 40},
		BestEffort: resource.Capacity{CPU: 5, MemoryMB: 2048, DiskGB: 40},
	}
}

// RunParallel executes the concurrent lifecycle stress and returns its
// throughput counters. It fails on the first invariant violation at a
// quiesce point, or when capacity is lost or double-spent by the end.
func RunParallel(cfg ParallelConfig) (*ParallelResult, error) {
	if cfg.Clients <= 0 {
		cfg.Clients = 8
	}
	if cfg.Ops <= 0 {
		cfg.Ops = 10000
	}
	if cfg.Phases <= 0 {
		cfg.Phases = 10
	}
	if cfg.Plan.Total().IsZero() {
		cfg.Plan = DefaultParallelPlan()
	}
	if cfg.Obs == nil {
		cfg.Obs = obs.NewRegistry()
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 1
	}
	cluster, err := NewCluster(ClusterConfig{Plan: cfg.Plan, Shards: cfg.Shards, Obs: cfg.Obs,
		DisableCaches: cfg.DisableCaches,
		Intake:        core.IntakeConfig{Enabled: cfg.Intake},
		Policy:        cfg.Policy,
		ShadowPolicy:  cfg.ShadowPolicy})
	if err != nil {
		return nil, err
	}
	defer cluster.Close()

	mode := admitDirect
	if cfg.Intake {
		mode = admitWait
	}
	// The http transport serves the JSON API on a loopback listener and
	// points every client at it: admissions become real POSTs through the
	// codec, the error taxonomy, and (with Intake) SubmitWait on the
	// server side, while the rest of the lifecycle stays in-process.
	var apiClient *httpapi.Client
	switch cfg.Transport {
	case "":
	case "http":
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, fmt.Errorf("transport http: %w", err)
		}
		srv := &http.Server{Handler: httpapi.NewServer(cluster.Broker)}
		go srv.Serve(ln) //nolint:errcheck // shut down via Close below
		defer srv.Close()
		apiClient = httpapi.NewClient("http://" + ln.Addr().String())
	default:
		return nil, fmt.Errorf("bad transport %q (want \"\" or \"http\")", cfg.Transport)
	}
	clients := make([]*parClient, cfg.Clients)
	for i := range clients {
		clients[i] = &parClient{
			id:         i,
			rng:        rand.New(rand.NewSource(cfg.Seed + int64(i))),
			cluster:    cluster,
			intakeMode: mode,
			http:       apiClient,
		}
	}
	perPhase := cfg.Ops / (cfg.Clients * cfg.Phases)
	if perPhase < 1 {
		perPhase = 1
	}
	res := &ParallelResult{Clients: cfg.Clients, Phases: cfg.Phases,
		Ops: perPhase * cfg.Clients * cfg.Phases, Shards: cfg.Shards,
		Transport: cfg.Transport}

	start := time.Now()
	for phase := 0; phase < cfg.Phases; phase++ {
		var wg sync.WaitGroup
		for _, cl := range clients {
			wg.Add(1)
			go func(cl *parClient) {
				defer wg.Done()
				for i := 0; i < perPhase; i++ {
					cl.step()
				}
			}(cl)
		}
		wg.Wait()
		// Quiesce point: nothing in flight, the cross-component
		// invariants must hold exactly — and every submitted admission
		// must have been flushed (SubmitWait never leaves residue).
		res.Checks++
		if err := invariant.CheckAll(cluster.Broker, cluster.Clock.Now(), cluster.Pool); err != nil {
			return res, fmt.Errorf("phase %d quiesce: %w", phase, err)
		}
		if err := invariant.CheckIntake(cluster.Broker); err != nil {
			return res, fmt.Errorf("phase %d quiesce: %w", phase, err)
		}
	}
	// Sample placement balance at the final quiesce point, while sessions
	// are still live; after the drain every shard reads empty.
	if cfg.Shards > 1 {
		res.ShardSessions = cluster.Broker.ShardSessionCounts()
		for _, a := range cluster.Broker.Allocators() {
			res.ShardUtilization = append(res.ShardUtilization, a.LoadFactor())
		}
	}
	res.Elapsed = time.Since(start)
	res.ElapsedMS = float64(res.Elapsed) / float64(time.Millisecond)
	if res.Elapsed > 0 {
		res.OpsPerSec = float64(res.Ops) / res.Elapsed.Seconds()
	}
	// The registry hands back existing series on re-registration, so the
	// broker's admission histogram is reachable by name without plumbing.
	admit := cfg.Obs.Histogram("gqosm_broker_admission_seconds",
		"RequestService latency (discovery, admission, reservation)", nil)
	res.AdmitP50MS = admit.Quantile(0.50) * 1e3
	res.AdmitP95MS = admit.Quantile(0.95) * 1e3
	res.AdmitP99MS = admit.Quantile(0.99) * 1e3
	// Same trick for the discovery-cache counters (Counter.Value is
	// nil-safe, so a cache-disabled run reads zeros).
	hits := cfg.Obs.Counter("gqosm_discovery_cache_hits_total",
		"Discovery queries answered from the generation-stamped cache").Value()
	misses := cfg.Obs.Counter("gqosm_discovery_cache_misses_total",
		"Discovery queries that fell through to a registry Find").Value()
	if hits+misses > 0 {
		res.CacheHitRate = float64(hits) / float64(hits+misses)
	}
	if cfg.Intake {
		res.Intake = true
		submitted := cfg.Obs.Counter("gqosm_intake_submitted_total",
			"Admissions accepted into the intake queues").Value()
		flushes := cfg.Obs.Counter("gqosm_intake_flushes_total",
			"Group-commit flushes executed").Value()
		if flushes > 0 {
			res.IntakeBatchMean = float64(submitted) / float64(flushes)
		}
	}

	// Drain everything and verify no capacity was lost or double-spent.
	cluster.Broker.NotifyFailure(resource.Capacity{})
	for _, cl := range clients {
		cl.drain()
		res.Requested += cl.requested
		res.Admitted += cl.admitted
		res.Terminated += cl.terminated
	}
	cluster.Clock.Advance(72 * time.Hour) // expire pending offers via their timers
	cluster.Broker.ExpireDue()
	res.Checks++
	if err := invariant.CheckAll(cluster.Broker, cluster.Clock.Now(), cluster.Pool); err != nil {
		return res, fmt.Errorf("post-drain: %w", err)
	}
	for si, alloc := range cluster.Broker.Allocators() {
		plan := alloc.Plan()
		if users := alloc.GuaranteedUsers(); len(users) != 0 {
			return res, fmt.Errorf("capacity leaked: shard %d: %d guaranteed grant(s) survive the drain: %v",
				si, len(users), users)
		}
		if got := alloc.AvailableGuaranteed(); !got.Equal(plan.Guaranteed) {
			return res, fmt.Errorf("capacity lost: shard %d guaranteed headroom %v after drain, want %v",
				si, got, plan.Guaranteed)
		}
		if got := alloc.AvailableBestEffort(); !got.Equal(plan.Total()) {
			return res, fmt.Errorf("capacity lost: shard %d best-effort headroom %v after drain, want %v",
				si, got, plan.Total())
		}
	}
	return res, nil
}

// step performs one randomly chosen lifecycle operation. The mix mirrors
// the deterministic fuzz driver's.
//
// Every step draws exactly three values from the client's PRNG, whatever
// the broker answers: a conditional draw (e.g. only rolling an index when
// the proposed list is non-empty) would let other clients' interleaving —
// via shared broker outcomes — shift this client's stream, and the
// per-client schedule would stop being a pure function of the seed.
func (c *parClient) step() {
	b := c.cluster.Broker
	clock := c.cluster.Clock
	op := c.rng.Intn(10)
	r1 := c.rng.Intn(1 << 16)
	r2 := c.rng.Intn(1 << 16)
	switch {
	case op <= 2: // new request
		c.requested++
		var req core.Request
		now := clock.Now()
		tag := strconv.Itoa(c.id) + "-" + strconv.Itoa(c.requested)
		if r1%2 == 0 {
			req = core.Request{
				Service: "simulation",
				Client:  "par-g" + tag,
				Class:   sla.ClassGuaranteed,
				Spec:    sla.NewSpec(sla.Exact(resource.CPU, float64(1+r2%8))),
				Start:   now,
				End:     now.Add(time.Duration(1+(r2>>3)%6) * time.Hour),
			}
		} else {
			min := float64(1 + r2%3)
			req = core.Request{
				Service:           "simulation",
				Client:            "par-c" + tag,
				Class:             sla.ClassControlledLoad,
				Spec:              sla.NewSpec(sla.Range(resource.CPU, min, min+float64((r2>>2)%6))),
				Start:             now,
				End:               now.Add(time.Duration(1+(r2>>5)%6) * time.Hour),
				AcceptDegradation: (r1>>1)%2 == 0,
			}
		}
		c.request(req)
	case op == 3: // accept
		if id, ok := c.pick(&c.proposed, r1); ok {
			if err := b.Accept(id); err == nil {
				c.admitted++
				c.active = append(c.active, id)
			}
		}
	case op == 4: // reject
		if id, ok := c.pick(&c.proposed, r1); ok {
			_ = b.Reject(id)
		}
	case op == 5: // invoke
		if len(c.active) > 0 {
			_, _ = b.Invoke(c.active[r1%len(c.active)])
		}
	case op == 6: // terminate
		if id, ok := c.pick(&c.active, r1); ok {
			if err := b.Terminate(id, "parallel stress"); err == nil {
				c.terminated++
			}
		}
	case op == 7: // time passes; offers expire, sessions lapse
		clock.Advance(time.Duration(1+r1%10) * time.Minute)
		b.ExpireDue()
	case op == 8: // failure / recovery
		if r1%2 == 0 {
			b.NotifyFailure(resource.Nodes(float64(r2 % 6)))
		} else {
			b.NotifyFailure(resource.Capacity{})
		}
	case op == 9: // best-effort churn + optimizer
		client := "par-be" + strconv.Itoa(c.id)
		if r1%2 == 0 {
			_ = b.BestEffortRequest(client, resource.Nodes(float64(1+r2%4)))
		} else {
			_ = b.BestEffortRelease(client)
		}
		_, _ = b.RunOptimizer()
	}
}

// request admits req over the client's configured path and records the
// proposed SLA. In admitQueue mode the outcome is deferred: the harness
// flushes the intake once per round and calls resolveTickets.
func (c *parClient) request(req core.Request) {
	b := c.cluster.Broker
	if c.http != nil {
		// Over the wire the server picks the path (direct vs SubmitWait);
		// the client just sees an offer or a typed error.
		if offer, err := c.http.RequestService(req); err == nil {
			c.proposed = append(c.proposed, sla.ID(offer.SLAID))
		}
		return
	}
	switch c.intakeMode {
	case admitWait:
		if offer, err := b.SubmitWait(req); err == nil {
			c.proposed = append(c.proposed, offer.SLA.ID)
		}
	case admitQueue:
		if t, err := b.Submit(req); err == nil {
			c.tickets = append(c.tickets, t)
		}
	default:
		if offer, err := b.RequestService(req); err == nil {
			c.proposed = append(c.proposed, offer.SLA.ID)
		}
	}
}

// resolveTickets collects this client's queued admission outcomes after
// a harness-level FlushIntake. Submission order is preserved, so the
// proposed list grows deterministically under the serial harnesses.
func (c *parClient) resolveTickets() {
	for _, t := range c.tickets {
		if offer, err := t.Wait(); err == nil {
			c.proposed = append(c.proposed, offer.SLA.ID)
		}
	}
	c.tickets = c.tickets[:0]
}

// pick removes and returns the r-selected element of *ids.
func (c *parClient) pick(ids *[]sla.ID, r int) (sla.ID, bool) {
	if len(*ids) == 0 {
		return "", false
	}
	i := r % len(*ids)
	id := (*ids)[i]
	*ids = append((*ids)[:i], (*ids)[i+1:]...)
	return id, true
}

// drain finishes every session this client still tracks.
func (c *parClient) drain() {
	b := c.cluster.Broker
	for _, id := range c.proposed {
		_ = b.Reject(id)
	}
	c.proposed = nil
	for _, id := range c.active {
		if err := b.Terminate(id, "drain"); err == nil {
			c.terminated++
		}
	}
	c.active = nil
	_ = b.BestEffortRelease("par-be" + strconv.Itoa(c.id))
}
