package sim

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"gqosm/internal/core"
	"gqosm/internal/resource"
	"gqosm/internal/sla"
)

// The built-in scenario library. Each scenario sizes its workload from
// cfg.Ops (a negotiated arrival costs ~3 broker ops: request, accept,
// terminate) and asserts the traffic shape actually materialized via
// Verify, so a silently-degenerate trace fails CI rather than passing
// vacuously.

func hours(h float64) time.Duration { return time.Duration(h * float64(time.Hour)) }

// ---- diurnal -----------------------------------------------------------

const (
	diurnalBase  = 40.0 // arrivals/hour, the daily mean
	diurnalSwing = 0.75 // peak 1.75×base, trough 0.25×base
)

func diurnalRate(at time.Duration) float64 {
	// Trough at 00:00 of each simulated day, peak at 12:00.
	day := at.Hours() / 24
	return diurnalBase * (1 + diurnalSwing*math.Sin(2*math.Pi*day-math.Pi/2))
}

var diurnal = Scenario{
	Name:  "diurnal",
	About: "sinusoidal day/night load: 7× peak-to-trough swing over a 24h period",
	Workload: func(cfg ScenarioConfig) Workload {
		arrivals := float64(cfg.Ops) / 3
		return Workload{
			Duration:           hours(arrivals / diurnalBase),
			Rate:               diurnalRate,
			RateMax:            diurnalBase * (1 + diurnalSwing),
			GuaranteedFrac:     0.2,
			ControlledFrac:     0.5,
			MeanHoldHours:      0.5,
			MaxNodes:           6,
			DegradeWillingFrac: 0.6,
		}
	},
	AfterArrival: func(run *ScenarioRun, i int, a Arrival, id sla.ID, admitted bool) {
		// Bucket arrivals by half-day phase to verify the swing took.
		hourOfDay := math.Mod(a.At.Hours(), 24)
		if hourOfDay >= 6 && hourOfDay < 18 {
			run.Extra("arrivals_peak_half", 1)
		} else {
			run.Extra("arrivals_trough_half", 1)
		}
	},
	Verify: func(r *ScenarioReport) error {
		peak, trough := r.Extras["arrivals_peak_half"], r.Extras["arrivals_trough_half"]
		if trough == 0 || peak/trough < 2 {
			return fmt.Errorf("diurnal swing missing: peak-half %v vs trough-half %v arrivals", peak, trough)
		}
		if r.AdmitRate <= 0.2 {
			return fmt.Errorf("admit rate %.3f too low for a diurnal mean load", r.AdmitRate)
		}
		return nil
	},
}

// ---- flash-crowd -------------------------------------------------------

const (
	flashBase  = 6.0   // quiet arrivals/hour
	flashSpike = 600.0 // ~100× base during the crowd
)

// flashTimes derives the spike window from the run size: the crowd hits
// at 40% of the duration and burns for one hour, then decays with a 2h
// time constant.
func flashTimes(cfg ScenarioConfig) (dur, spikeStart, spikeEnd time.Duration) {
	quiet := float64(cfg.Ops)/3 - (flashSpike + 2*flashSpike) // spike hour + decay integral
	if quiet < 10*flashBase {
		quiet = 10 * flashBase
	}
	dur = hours(quiet / flashBase)
	spikeStart = time.Duration(0.4 * float64(dur))
	spikeEnd = spikeStart + time.Hour
	return dur, spikeStart, spikeEnd
}

var flashCrowd = Scenario{
	Name:  "flash-crowd",
	About: "~100× admission spike with exponential decay over a quiet baseline",
	Workload: func(cfg ScenarioConfig) Workload {
		dur, spikeStart, spikeEnd := flashTimes(cfg)
		return Workload{
			Duration: dur,
			Rate: func(at time.Duration) float64 {
				switch {
				case at < spikeStart:
					return flashBase
				case at < spikeEnd:
					return flashBase + flashSpike
				default:
					decay := (at - spikeEnd).Hours() / 2
					return flashBase + flashSpike*math.Exp(-decay)
				}
			},
			RateMax:            flashBase + flashSpike,
			GuaranteedFrac:     0.3,
			ControlledFrac:     0.5,
			MeanHoldHours:      0.75,
			MaxNodes:           6,
			DegradeWillingFrac: 0.7,
		}
	},
	AfterArrival: func(run *ScenarioRun, i int, a Arrival, id sla.ID, admitted bool) {
		_, spikeStart, spikeEnd := flashTimes(run.Cfg)
		switch {
		case a.At < spikeStart:
			run.Extra("arrivals_before", 1)
		case a.At < spikeEnd:
			run.Extra("arrivals_spike", 1)
			if admitted {
				run.Extra("admitted_spike", 1)
			}
		}
	},
	Verify: func(r *ScenarioReport) error {
		_, spikeStart, _ := flashTimes(ScenarioConfig{Ops: int(r.Ops)}) // shape only; see below
		_ = spikeStart
		before, spike := r.Extras["arrivals_before"], r.Extras["arrivals_spike"]
		if before == 0 {
			return fmt.Errorf("no pre-spike arrivals")
		}
		// before covers 40% of the run at flashBase; spike is one hour at
		// ~101× that rate. Demand at least a 30× per-hour contrast so a
		// flattened trace cannot pass.
		preHours := 0.4 * (before / flashBase) // hours of quiet traffic observed
		perHourBefore := before / preHours
		if spike < 30*perHourBefore {
			return fmt.Errorf("spike too small: %v arrivals in the crowd hour vs %v/h before", spike, perHourBefore)
		}
		if r.AdmitRate >= 0.9 {
			return fmt.Errorf("admit rate %.3f: the crowd never saturated admission", r.AdmitRate)
		}
		return nil
	},
}

// ---- tenant-mix --------------------------------------------------------

var tenantMix = Scenario{
	Name:  "tenant-mix",
	About: "heterogeneous multi-tenant load: few whales with large guaranteed reservations vs many small tenants",
	Workload: func(cfg ScenarioConfig) Workload {
		arrivals := float64(cfg.Ops) / 3
		rate := 30.0
		return Workload{
			Duration:           hours(arrivals / rate),
			ArrivalPerHour:     rate,
			GuaranteedFrac:     0.15,
			ControlledFrac:     0.55,
			MeanHoldHours:      0.6,
			MaxNodes:           2, // minnows by default; whales are shaped in
			DegradeWillingFrac: 0.5,
		}
	},
	Shape: func(cfg ScenarioConfig, rng *rand.Rand, i int, a Arrival) Arrival {
		// One arrival in ten is a whale: a long-held, large guaranteed
		// reservation that squeezes everyone else.
		if rng.Float64() < 0.10 {
			a.Class = sla.ClassGuaranteed
			a.Nodes = float64(10 + rng.Intn(4))
			a.Hold = a.Hold * 3
			a.Willing = false
		}
		return a
	},
	Request: func(run *ScenarioRun, i int, a Arrival) core.Request {
		req := run.DefaultRequest(i, a)
		if a.Nodes >= 10 {
			req.Client = fmt.Sprintf("whale-%02d", i%3)
		} else {
			req.Client = fmt.Sprintf("minnow-%02d", i%24)
		}
		return req
	},
	AfterArrival: func(run *ScenarioRun, i int, a Arrival, id sla.ID, admitted bool) {
		kind := "minnow"
		if a.Nodes >= 10 {
			kind = "whale"
		}
		run.Extra(kind+"_requested", 1)
		if admitted {
			run.Extra(kind+"_admitted", 1)
		}
	},
	Verify: func(r *ScenarioReport) error {
		wReq, mReq := r.Extras["whale_requested"], r.Extras["minnow_requested"]
		total := wReq + mReq
		if total == 0 {
			return fmt.Errorf("no negotiated arrivals")
		}
		if frac := wReq / total; frac < 0.05 || frac > 0.16 {
			return fmt.Errorf("whale fraction %.3f outside [0.05, 0.16]", frac)
		}
		wAdm, mAdm := r.Extras["whale_admitted"], r.Extras["minnow_admitted"]
		if wReq > 0 && mReq > 0 {
			if wAdm/wReq >= mAdm/mReq {
				return fmt.Errorf("whales admitted at %.3f ≥ minnows at %.3f: contention never bit the large reservations",
					wAdm/wReq, mAdm/mReq)
			}
		}
		return nil
	},
}

// ---- reneg-storm -------------------------------------------------------

var renegStorm = Scenario{
	Name:  "reneg-storm",
	About: "controlled-load sessions renegotiate constantly while admissions continue",
	Workload: func(cfg ScenarioConfig) Workload {
		// ~5 ops per arrival: request, accept, two renegotiations, terminate.
		arrivals := float64(cfg.Ops) / 5
		rate := 30.0
		return Workload{
			Duration:           hours(arrivals / rate),
			ArrivalPerHour:     rate,
			GuaranteedFrac:     0.1,
			ControlledFrac:     0.8,
			MeanHoldHours:      0.8,
			MaxNodes:           6,
			DegradeWillingFrac: 1,
		}
	},
	AfterArrival: func(run *ScenarioRun, i int, a Arrival, id sla.ID, admitted bool) {
		// Every arrival triggers two renegotiations of random live
		// controlled-load sessions: alternately squeezing down and
		// stretching up, so the allocator sees constant churn in both
		// directions.
		live := run.LiveSessions()
		for n := 0; n < 2 && len(live) > 0; n++ {
			target := live[run.RNG.Intn(len(live))]
			doc, err := run.Cluster.Broker.Session(target)
			if err != nil || doc.Class != sla.ClassControlledLoad {
				continue
			}
			var spec sla.Spec
			if (i+n)%2 == 0 {
				spec = sla.NewSpec(sla.Range(resource.CPU, 1, math.Max(1, doc.Allocated.CPU-1)))
			} else {
				spec = sla.NewSpec(sla.Range(resource.CPU, 1, doc.Allocated.CPU+2))
			}
			run.Renegotiate(target, spec)
		}
	},
	Verify: func(r *ScenarioReport) error {
		if r.Renegotiations < r.Arrivals/2 {
			return fmt.Errorf("storm never formed: %d renegotiations over %d arrivals", r.Renegotiations, r.Arrivals)
		}
		if r.RenegFailures == r.Renegotiations {
			return fmt.Errorf("every renegotiation failed")
		}
		return nil
	},
}

// ---- lease-churn -------------------------------------------------------

var leaseChurn = Scenario{
	Name:          "lease-churn",
	About:         "confirm-timeout abuse at expiry boundaries: accepts racing the offer's expiry instant",
	ConfirmWindow: 30 * time.Second,
	Workload: func(cfg ScenarioConfig) Workload {
		// Abandoned offers cost ~2 ops, boundary losses ~3, accepts ~3.
		arrivals := float64(cfg.Ops) / 3
		rate := 60.0
		return Workload{
			Duration:           hours(arrivals / rate),
			ArrivalPerHour:     rate,
			GuaranteedFrac:     0.3,
			ControlledFrac:     0.6,
			MeanHoldHours:      0.05, // ~3 minute leases: expiry sweeps churn constantly
			MaxNodes:           4,
			DegradeWillingFrac: 0.5,
		}
	},
	OnOffer: func(run *ScenarioRun, i int, a Arrival, offer *core.Offer) OfferAction {
		switch i % 3 {
		case 0:
			return OfferAcceptAtExpiry
		case 1:
			return OfferAbandon
		default:
			return OfferAccept
		}
	},
	Verify: func(r *ScenarioReport) error {
		if r.Extras["boundary_races"] == 0 {
			return fmt.Errorf("no accept ever raced its offer's expiry")
		}
		if r.ExpiredOffers == 0 {
			return fmt.Errorf("no offer expired despite the abandon pattern")
		}
		if r.Admitted == 0 {
			return fmt.Errorf("nothing admitted: churn drowned the workload")
		}
		return nil
	},
}

// ---- economic ----------------------------------------------------------

// economicBudget returns tenant i's budget: half the tenants run on a
// shoestring that exhausts mid-run, half are effectively unconstrained.
func economicBudget(tenant int) float64 {
	if tenant < 4 {
		// Low enough to exhaust mid-run even in a quick (Ops≈3000)
		// pass, where each capped tenant spends roughly 200–350.
		return 150
	}
	return 0 // unconstrained
}

var economic = Scenario{
	Name:  "economic",
	About: "price-driven adaptation under contention: budget-capped tenants, degradation refunds, exhaustion mid-run",
	Workload: func(cfg ScenarioConfig) Workload {
		arrivals := float64(cfg.Ops) / 3
		rate := 45.0 // hot: compensation and degradation fire constantly
		return Workload{
			Duration:           hours(arrivals / rate),
			ArrivalPerHour:     rate,
			GuaranteedFrac:     0.25,
			ControlledFrac:     0.65,
			MeanHoldHours:      0.7,
			MaxNodes:           8,
			DegradeWillingFrac: 0.9,
		}
	},
	Request: func(run *ScenarioRun, i int, a Arrival) core.Request {
		req := run.DefaultRequest(i, a)
		tenant := i % 8
		req.Client = fmt.Sprintf("tenant-%02d", tenant)
		if limit := economicBudget(tenant); limit > 0 {
			acct := run.Account(req.Client, limit)
			remaining := acct.Remaining()
			if remaining <= 0 {
				remaining = 0.01 // exhausted: any priced offer is over budget
			}
			req.Budget = remaining
		}
		return req
	},
	OnOffer: func(run *ScenarioRun, i int, a Arrival, offer *core.Offer) OfferAction {
		tenant := fmt.Sprintf("tenant-%02d", i%8)
		limit := economicBudget(i % 8)
		if limit == 0 {
			return OfferAccept
		}
		acct := run.Account(tenant, limit)
		if !acct.Debit(offer.Price) {
			run.Extra("budget_refusals", 1)
			return OfferReject
		}
		run.Extra("spend_"+tenant, offer.Price)
		return OfferAccept
	},
	Verify: func(r *ScenarioReport) error {
		// A capped tenant hitting its limit shows up in one of two ways:
		// the broker rejects pre-offer because even the floor price
		// exceeds the remaining budget (over_budget_rejects), or the
		// client-side debit of an offered price fails (budget_refusals).
		// Budget threading makes the broker fit offers to the budget, so
		// the pre-offer reject is the common path.
		if r.Extras["over_budget_rejects"]+r.Extras["budget_refusals"] == 0 {
			return fmt.Errorf("no tenant ever hit its budget: the economic pressure is missing")
		}
		if r.Degradations == 0 {
			return fmt.Errorf("no degradations under contention: pricing never drove adaptation")
		}
		if r.Revenue <= 0 {
			return fmt.Errorf("net revenue %.2f: the provider earned nothing", r.Revenue)
		}
		for t := 0; t < 4; t++ {
			key := fmt.Sprintf("spend_tenant-%02d", t)
			if spent := r.Extras[key]; spent > economicBudget(t)+1e-6 {
				return fmt.Errorf("%s spent %.2f over its %.0f budget", key, spent, economicBudget(t))
			}
		}
		return nil
	},
}

var builtinScenarios = []Scenario{
	diurnal,
	flashCrowd,
	tenantMix,
	renegStorm,
	leaseChurn,
	economic,
}
