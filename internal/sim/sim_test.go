package sim

import (
	"strings"
	"testing"
	"time"

	"gqosm/internal/core"
	"gqosm/internal/resource"
	"gqosm/internal/sla"
)

func TestClusterAssembles(t *testing.T) {
	cl, err := NewCluster(ClusterConfig{Plan: paperPlan(26), WithNetwork: true})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if cl.Broker == nil || cl.NetMgr == nil || cl.Topo == nil {
		t.Fatal("cluster incomplete")
	}
	// The default service is discoverable.
	req := core.Request{
		Service: "simulation", Client: "c", Class: sla.ClassGuaranteed,
		Spec:  sla.NewSpec(sla.Exact(resource.CPU, 4)),
		Start: Epoch, End: Epoch.Add(time.Hour),
	}
	if _, err := cl.Broker.RequestService(req); err != nil {
		t.Fatalf("RequestService on cluster: %v", err)
	}
	// MDS reports live pool state.
	attrs, err := cl.MDS.Query("machine")
	if err != nil {
		t.Fatal(err)
	}
	if attrs.Num("cpu-total", 0) != 26 {
		t.Errorf("cpu-total = %v", attrs)
	}
}

func TestWorkloadTraceDeterministic(t *testing.T) {
	wl := Workload{Seed: 7, ArrivalPerHour: 10, Duration: 24 * time.Hour,
		GuaranteedFrac: 0.3, ControlledFrac: 0.3, MaxNodes: 8}
	a := wl.Trace()
	b := wl.Trace()
	if len(a) == 0 {
		t.Fatal("empty trace")
	}
	if len(a) != len(b) {
		t.Fatalf("non-deterministic length %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("trace diverges at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
	// Expect roughly λ·T arrivals (±50%).
	if len(a) < 120 || len(a) > 360 {
		t.Errorf("arrival count %d implausible for λ=10/h over 24h", len(a))
	}
	classes := map[sla.Class]int{}
	for _, arr := range a {
		classes[arr.Class]++
		if arr.Nodes < 1 || arr.Nodes > 8 {
			t.Fatalf("nodes out of range: %v", arr.Nodes)
		}
		if arr.Hold < time.Minute {
			t.Fatalf("hold too short: %v", arr.Hold)
		}
	}
	for _, c := range []sla.Class{sla.ClassGuaranteed, sla.ClassControlledLoad, sla.ClassBestEffort} {
		if classes[c] == 0 {
			t.Errorf("class %v absent from trace", c)
		}
	}
}

func TestReplayConservesAccounting(t *testing.T) {
	wl := Workload{Seed: 3, ArrivalPerHour: 12, Duration: 48 * time.Hour,
		GuaranteedFrac: 0.4, ControlledFrac: 0.2, MaxNodes: 6}
	trace := wl.Trace()
	policy, err := NewAdaptivePolicy(paperPlan(26))
	if err != nil {
		t.Fatal(err)
	}
	stats := Replay(trace, policy, nil)
	if stats.Arrivals != len(trace) {
		t.Errorf("arrivals = %d, want %d", stats.Arrivals, len(trace))
	}
	if stats.Admitted+stats.Rejected != stats.Arrivals {
		t.Errorf("admitted %d + rejected %d != arrivals %d",
			stats.Admitted, stats.Rejected, stats.Arrivals)
	}
	if stats.MeanUtilization <= 0 || stats.MeanUtilization > 1 {
		t.Errorf("MeanUtilization = %g", stats.MeanUtilization)
	}
	total := 0
	for _, n := range stats.AdmittedByClass {
		total += n
	}
	if total != stats.Admitted {
		t.Errorf("class admission breakdown %d != %d", total, stats.Admitted)
	}
	// After the replay every admitted session departed: policy is empty.
	if used := policy.Used(); !used.IsZero() {
		t.Errorf("policy still holds %v after replay", used)
	}
}

func TestE56ReproducesPaperDigits(t *testing.T) {
	res, err := RunE56()
	if err != nil {
		t.Fatalf("RunE56: %v", err)
	}
	if len(res.Rows) != 6 {
		t.Fatalf("rows = %d, want 6 (t0..t5)", len(res.Rows))
	}
	rowByLabel := map[string]E56Row{}
	for _, r := range res.Rows {
		rowByLabel[r.Label] = r
	}

	// The unambiguous digits of the paper's measurement list.
	checks := []struct {
		label      string
		gInG, bInG float64
	}{
		{"t0", 10, 5},
		{"t1", 4, 11},
		{"t3", 14, 1},
		{"t4", 4, 11},
	}
	for _, c := range checks {
		row, ok := rowByLabel[c.label]
		if !ok {
			t.Fatalf("missing row %s", c.label)
		}
		g := row.Pools[0]
		if g.Guaranteed.CPU != c.gInG || g.BestEffort.CPU != c.bInG {
			t.Errorf("%s: G pool g=%g b=%g, want g=%g b=%g",
				c.label, g.Guaranteed.CPU, g.BestEffort.CPU, c.gInG, c.bInG)
		}
	}

	// t2: the failure is absorbed — every guaranteed SLA stays whole and
	// the 14 nodes of demand are split 12 in G, 2 in A.
	t2 := rowByLabel["t2"]
	if !t2.GuaranteedWhole {
		t.Error("t2: a guaranteed SLA was broken by the failure")
	}
	if t2.Pools[0].Guaranteed.CPU != 12 || t2.Pools[1].Guaranteed.CPU != 2 {
		t.Errorf("t2 split = G:%g A:%g, want 12/2",
			t2.Pools[0].Guaranteed.CPU, t2.Pools[1].Guaranteed.CPU)
	}
	if !t2.Pools[0].Offline.Equal(resource.Nodes(3)) {
		t.Errorf("t2 offline = %v", t2.Pools[0].Offline)
	}
	// Every checkpoint keeps guarantees whole (the paper's headline).
	for _, r := range res.Rows {
		if !r.GuaranteedWhole {
			t.Errorf("%s: guaranteed SLA below spec", r.Label)
		}
	}
	if !res.NetworkOK {
		t.Error("network sub-SLAs did not survive to expiry")
	}
	if res.Preemptions == 0 {
		t.Log("note: failure absorbed without best-effort preemption at NotifyFailure point")
	}
	table := res.Table()
	if !strings.Contains(table, "t2") || !strings.Contains(table, "G:g") {
		t.Errorf("Table output malformed:\n%s", table)
	}
	if len(res.Log) == 0 {
		t.Error("empty activity log")
	}
}

func TestC1AdaptiveNeverWorse(t *testing.T) {
	rows, err := RunC1(42, []float64{4, 16})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.UtilAdaptive < r.UtilStatic-0.01 {
			t.Errorf("λ=%g: adaptive utilization %.3f below static %.3f",
				r.ArrivalPerHour, r.UtilAdaptive, r.UtilStatic)
		}
		if r.AdmitAdaptive < r.AdmitStatic-0.01 {
			t.Errorf("λ=%g: adaptive admission %.3f below static %.3f",
				r.ArrivalPerHour, r.AdmitAdaptive, r.AdmitStatic)
		}
	}
	// Under heavy load the dynamic borrowing must show a strict win.
	last := rows[len(rows)-1]
	if last.UtilAdaptive <= last.UtilStatic {
		t.Errorf("heavy load: adaptive %.3f not above static %.3f",
			last.UtilAdaptive, last.UtilStatic)
	}
}

func TestC2ReserveProtectsGuarantees(t *testing.T) {
	rows, err := RunC2(42, []float64{0.1, 0.2})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.BrokenAdaptive > r.BrokenNoReserve {
			t.Errorf("f=%g: adaptive broke %d > no-reserve %d",
				r.FailureRate, r.BrokenAdaptive, r.BrokenNoReserve)
		}
	}
	// At a substantial failure rate the reserve must show a strict win.
	last := rows[len(rows)-1]
	if last.BrokenNoReserve == 0 {
		t.Error("baseline never broke a guarantee; failure injection ineffective")
	}
	if last.BrokenAdaptive >= last.BrokenNoReserve {
		t.Errorf("f=%g: adaptive %d not better than baseline %d",
			last.FailureRate, last.BrokenAdaptive, last.BrokenNoReserve)
	}
}

func TestC3BestEffortFloor(t *testing.T) {
	rows, err := RunC3(42)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if !r.BEFloorHonored {
			t.Errorf("g-load %g: best-effort floor violated (%d/%d admitted)",
				r.GuaranteedLoadNodes, r.BEAdmitted, r.BERequested)
		}
	}
}

func TestC4OptimizerBeatsBaselines(t *testing.T) {
	rows, err := RunC4(42, []int{4, 8, 24})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.ProfitGreedy < r.ProfitMinimum {
			t.Errorf("N=%d: greedy %.1f below minimum %.1f", r.Services, r.ProfitGreedy, r.ProfitMinimum)
		}
		if r.ProfitGreedy+1e-6 < r.ProfitFirstFit*0.95 {
			t.Errorf("N=%d: greedy %.1f far below first-fit %.1f", r.Services, r.ProfitGreedy, r.ProfitFirstFit)
		}
		if r.ProfitExact > 0 {
			if r.GreedyVsExact < 0.85 || r.GreedyVsExact > 1.0+1e-9 {
				t.Errorf("N=%d: greedy/exact = %.3f", r.Services, r.GreedyVsExact)
			}
		}
		if r.GreedyVsMinimum <= 1.0 {
			t.Errorf("N=%d: optimizer shows no gain over minimum", r.Services)
		}
	}
}

func TestC5CompensationAdmitsMore(t *testing.T) {
	rows, err := RunC5(42, []float64{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	none, all := rows[0], rows[1]
	if all.AdmittedWith <= none.AdmittedWith {
		t.Errorf("willing=1 admitted %d, not more than willing=0's %d",
			all.AdmittedWith, none.AdmittedWith)
	}
	if all.DegradedSessions == 0 {
		t.Error("no sessions degraded despite full willingness")
	}
}

func TestFormatters(t *testing.T) {
	c1, _ := RunC1(1, []float64{4})
	if !strings.Contains(FormatC1(c1), "util") {
		t.Error("FormatC1 malformed")
	}
	c3, _ := RunC3(1)
	if !strings.Contains(FormatC3(c3), "floor") {
		t.Error("FormatC3 malformed")
	}
	c4, _ := RunC4(1, []int{4})
	if !strings.Contains(FormatC4(c4), "greedy") {
		t.Error("FormatC4 malformed")
	}
	c5, _ := RunC5(1, []float64{1})
	if !strings.Contains(FormatC5(c5), "admitted") {
		t.Error("FormatC5 malformed")
	}
	c2, _ := RunC2(1, []float64{0.1})
	if !strings.Contains(FormatC2(c2), "broken") {
		t.Error("FormatC2 malformed")
	}
}

func TestStaticPolicySetOffline(t *testing.T) {
	p := NewStaticPolicy(paperPlan(26)) // C_G = 15
	if !p.AllocateGuaranteed("g", resource.Nodes(14), resource.Nodes(14)) {
		t.Fatal("admission failed")
	}
	// A failure the static baseline cannot cover breaks the guarantee.
	if !p.SetOffline(resource.Nodes(3)) {
		t.Error("broken guarantee not reported")
	}
	// Recovery clears it.
	if p.SetOffline(resource.Capacity{}) {
		t.Error("recovery reported broken guarantee")
	}
	// A small failure within the free headroom is survivable.
	p.ReleaseGuaranteed("g")
	if !p.AllocateGuaranteed("g", resource.Nodes(10), resource.Nodes(10)) {
		t.Fatal("re-admission failed")
	}
	if p.SetOffline(resource.Nodes(3)) {
		t.Error("covered failure reported as broken")
	}
	// Best-effort stays inside C_B only.
	if p.AllocateBestEffort("be", resource.Nodes(6)) {
		t.Error("static policy lent more than C_B")
	}
	if !p.AllocateBestEffort("be", resource.Nodes(5)) {
		t.Error("C_B refused")
	}
	p.ReleaseBestEffort("be")
	if used := p.Used(); !used.Equal(resource.Nodes(10)) {
		t.Errorf("Used = %v", used)
	}
}

func TestWorkloadDefaults(t *testing.T) {
	trace := Workload{Seed: 1}.Trace()
	if len(trace) == 0 {
		t.Fatal("defaults produced an empty trace")
	}
	stats := ReplayStats{}
	if stats.AdmissionRate() != 0 {
		t.Error("empty AdmissionRate != 0")
	}
}
