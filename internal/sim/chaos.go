package sim

import (
	"fmt"
	"math/rand"
	"time"

	"gqosm/internal/clockx"
	"gqosm/internal/core"
	"gqosm/internal/faultx"
	"gqosm/internal/invariant"
	"gqosm/internal/obs"
	"gqosm/internal/resource"
)

// This file is the chaos harness: the PR-1 stress workload replayed
// against a cluster whose substrates (GARA managers, NRM, GRAM) and
// broker call sites inject seeded faults — errors, virtual latency,
// hangs-until-deadline, partial failures (committed but reply lost) and
// crash-then-recover windows. The run is fully deterministic: clients
// execute their per-seed schedules serially in round-robin order on the
// manual clock, the injector draws from one seeded PRNG, and latency
// under faults is accounted virtually (recorded, never slept). Two runs
// with the same seed, fault rate and shard count produce bit-identical
// results.
//
// At every phase barrier the full invariant oracle runs, plus the
// fault-tolerance rule that a retried two-phase create never
// double-commits. After the final drain — faults disabled, every
// session driven terminal, parked cancels reconciled — the drain-only
// rules run too: no reservation outlives its session (nothing leaks
// across a crashed RM) and every degraded-then-torn-down session was
// refunded.

// ChaosConfig sizes a RunChaos run.
type ChaosConfig struct {
	// Clients is the number of simulated clients (default 8). Their
	// schedules are identical to RunParallel's, executed serially.
	Clients int
	// Ops is the total number of lifecycle operations (default 10000).
	Ops int
	// Phases is the number of quiesce points (default 10).
	Phases int
	// Seed seeds both the client schedules (client i draws from
	// Seed+i, as in RunParallel) and the fault injector.
	Seed int64
	// FaultRate is the per-site injection probability (default 0.2).
	FaultRate float64
	// Plan is the Algorithm-1 partition; defaults to the §5.6 one.
	Plan core.CapacityPlan
	// Shards is the broker shard count (default 1).
	Shards int
	// Obs receives the run's metrics; nil creates a private registry.
	Obs *obs.Registry
	// Intake routes admissions through the broker's group-commit intake:
	// clients Submit during a round-robin round, the harness flushes once
	// per round and resolves tickets in schedule order, so batches form
	// deterministically (up to Clients admissions per shard per flush).
	// The run stays bit-identical per (Seed, FaultRate, Shards, Intake).
	Intake bool
	// Policy names the broker's adaptation policy ("" = "paper").
	Policy string
	// ShadowPolicy consults the named candidate policy in shadow at
	// every broker decision point.
	ShadowPolicy string
}

// ChaosResult reports a RunChaos run. Every field is deterministic for
// a given (Seed, FaultRate, Shards, Clients, Ops, Phases): wall-clock
// measurements are deliberately excluded so the report can be diffed
// byte-for-byte across runs.
type ChaosResult struct {
	Seed      int64   `json:"seed"`
	FaultRate float64 `json:"fault_rate"`
	Shards    int     `json:"shards"`
	Clients   int     `json:"clients"`
	Ops       int     `json:"ops"`
	Phases    int     `json:"phases"`

	// Intake reports whether admissions rode the group-commit batch
	// path; IntakeBatchMean is the mean flushed batch size. Omitted for
	// direct-path runs so historical reports keep their schema.
	Intake          bool    `json:"intake,omitempty"`
	IntakeBatchMean float64 `json:"intake_batch_mean,omitempty"`

	// Requested / Admitted / Terminated count successful lifecycle
	// transitions; AdmitRate is Admitted / Requested.
	Requested  int     `json:"requested"`
	Admitted   int     `json:"admitted"`
	Terminated int     `json:"terminated"`
	AdmitRate  float64 `json:"admit_rate"`

	// Degradations / Restorations are the broker's scenario-3/2a
	// lifecycle counters.
	Degradations int64 `json:"degradations"`
	Restorations int64 `json:"restorations"`

	// Retries / Timeouts / Unavailable are the retry-policy budget
	// totals across all RM-facing call sites.
	Retries     int64 `json:"retries"`
	Timeouts    int64 `json:"timeouts"`
	Unavailable int64 `json:"unavailable"`

	// FaultsInjected totals injections; FaultsByKind breaks them down
	// ("error", "latency", "hang", "partial", "crash").
	FaultsInjected int64            `json:"faults_injected"`
	FaultsByKind   map[string]int64 `json:"faults_by_kind"`

	// ReconciledCancels counts parked reservation cancels cleared by
	// the drain-time reconciliation sweeps.
	ReconciledCancels int `json:"reconciled_cancels"`

	// VirtualP95MS is the p95 of injected virtual latency (recorded
	// delays plus timed-out attempt deadlines) in milliseconds — the
	// deterministic stand-in for "p95 under faults".
	VirtualP95MS float64 `json:"virtual_p95_ms"`

	// InvariantViolations totals oracle violations across all checks;
	// Checks counts oracle passes. CI gates on violations == 0.
	InvariantViolations int      `json:"invariant_violations"`
	Checks              int      `json:"checks"`
	Violations          []string `json:"violations,omitempty"`
}

// RunChaos replays the stress workload under seeded fault injection and
// returns the deterministic report. A non-nil error means the harness
// itself failed (assembly, lost capacity at drain); oracle violations
// are reported in the result, not as an error, so the report is always
// emitted for CI to gate on.
func RunChaos(cfg ChaosConfig) (*ChaosResult, error) {
	if cfg.Clients <= 0 {
		cfg.Clients = 8
	}
	if cfg.Ops <= 0 {
		cfg.Ops = 10000
	}
	if cfg.Phases <= 0 {
		cfg.Phases = 10
	}
	if cfg.FaultRate <= 0 {
		cfg.FaultRate = 0.2
	}
	if cfg.Plan.Total().IsZero() {
		cfg.Plan = DefaultParallelPlan()
	}
	if cfg.Obs == nil {
		cfg.Obs = obs.NewRegistry()
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 1
	}

	clock := clockx.NewManual(Epoch)
	inj := faultx.New(cfg.Seed, clock)
	// Crash windows are kept short relative to the workload's simulated
	// time (clients advance the clock ~1–10 min on a tenth of their
	// steps), so crashed sites actually recover mid-run and the
	// crash-then-recover path is exercised, not just fail-fast.
	inj.SetDefault(faultx.Plan{Rate: cfg.FaultRate, CrashFor: 2 * time.Minute})

	cluster, err := NewCluster(ClusterConfig{
		Plan:   cfg.Plan,
		Shards: cfg.Shards,
		Obs:    cfg.Obs,
		Clock:  clock,
		Faults: inj,
		// Backoff MUST stay 0: the serial harness runs on the manual
		// clock, and a backoff sleep would park forever with nobody
		// advancing time. Timed-out hang attempts charge the 2 s
		// deadline to the virtual latency accounting instead.
		RMPolicy:     core.RetryPolicy{Attempts: 3, Timeout: 2 * time.Second, Seed: cfg.Seed},
		Intake:       core.IntakeConfig{Enabled: cfg.Intake},
		Policy:       cfg.Policy,
		ShadowPolicy: cfg.ShadowPolicy,
	})
	if err != nil {
		return nil, err
	}
	defer cluster.Close()

	mode := admitDirect
	if cfg.Intake {
		mode = admitQueue
	}
	clients := make([]*parClient, cfg.Clients)
	for i := range clients {
		clients[i] = &parClient{
			id:         i,
			rng:        rand.New(rand.NewSource(cfg.Seed + int64(i))),
			cluster:    cluster,
			intakeMode: mode,
		}
	}
	perPhase := cfg.Ops / (cfg.Clients * cfg.Phases)
	if perPhase < 1 {
		perPhase = 1
	}
	res := &ChaosResult{
		Seed: cfg.Seed, FaultRate: cfg.FaultRate, Shards: cfg.Shards,
		Clients: cfg.Clients, Phases: cfg.Phases,
		Ops: perPhase * cfg.Clients * cfg.Phases,
	}

	record := func(stage string, err error) {
		if err == nil {
			return
		}
		if ie, ok := err.(*invariant.Error); ok {
			res.InvariantViolations += len(ie.Violations)
			for _, v := range ie.Violations {
				res.Violations = append(res.Violations, stage+": "+v.String())
			}
			return
		}
		res.InvariantViolations++
		res.Violations = append(res.Violations, stage+": "+err.Error())
	}

	// Serial round-robin: client schedules interleave the same way on
	// every run, so the injector's PRNG sees an identical call sequence.
	for phase := 0; phase < cfg.Phases; phase++ {
		for i := 0; i < perPhase; i++ {
			for _, cl := range clients {
				cl.step()
			}
			if cfg.Intake {
				// One deterministic group commit per round: everything
				// the round submitted flushes together, and tickets
				// resolve in schedule order.
				cluster.Broker.FlushIntake()
				for _, cl := range clients {
					cl.resolveTickets()
				}
			}
		}
		stage := fmt.Sprintf("phase %d", phase)
		res.Checks++
		record(stage, invariant.CheckAll(cluster.Broker, clock.Now(), cluster.Pool))
		record(stage, invariant.CheckReservations(cluster.Broker, cluster.GARA, invariant.ReservationCheck{}))
		record(stage, invariant.CheckIntake(cluster.Broker))
	}

	// Final drain on a healthy substrate: injection off (crash windows
	// cleared), any blocked hangs released, failed capacity recovered,
	// every session driven terminal, parked cancels reconciled.
	inj.SetEnabled(false)
	inj.ReleaseHangs()
	cluster.Broker.NotifyFailure(resource.Capacity{})
	for _, cl := range clients {
		cl.drain()
		res.Requested += cl.requested
		res.Admitted += cl.admitted
		res.Terminated += cl.terminated
	}
	res.ReconciledCancels += cluster.Broker.ReconcileReservations()
	clock.Advance(72 * time.Hour) // expire surviving offers and sessions
	cluster.Broker.ExpireDue()
	res.ReconciledCancels += cluster.Broker.ReconcileReservations()

	res.Checks++
	record("post-drain", invariant.CheckAll(cluster.Broker, clock.Now(), cluster.Pool))
	record("post-drain", invariant.CheckReservations(cluster.Broker, cluster.GARA,
		invariant.ReservationCheck{Final: true}))

	for si, alloc := range cluster.Broker.Allocators() {
		plan := alloc.Plan()
		if users := alloc.GuaranteedUsers(); len(users) != 0 {
			return res, fmt.Errorf("capacity leaked: shard %d: %d guaranteed grant(s) survive the drain: %v",
				si, len(users), users)
		}
		if got := alloc.AvailableGuaranteed(); !got.Equal(plan.Guaranteed) {
			return res, fmt.Errorf("capacity lost: shard %d guaranteed headroom %v after drain, want %v",
				si, got, plan.Guaranteed)
		}
	}

	if res.Requested > 0 {
		res.AdmitRate = float64(res.Admitted) / float64(res.Requested)
	}
	lifecycle := func(event string) int64 {
		return int64(cfg.Obs.Counter("gqosm_broker_lifecycle_total",
			"SLA lifecycle events by kind", "event", event).Value())
	}
	res.Degradations = lifecycle("degrade")
	res.Restorations = lifecycle("restore")
	res.Retries, res.Timeouts, res.Unavailable = cluster.Broker.RetryStats()
	res.FaultsInjected = inj.Total()
	res.FaultsByKind = inj.CountsByKind()
	res.VirtualP95MS = inj.VirtualP95MS()
	if cfg.Intake {
		res.Intake = true
		submitted := cfg.Obs.Counter("gqosm_intake_submitted_total",
			"Admissions accepted into the intake queues").Value()
		flushes := cfg.Obs.Counter("gqosm_intake_flushes_total",
			"Group-commit flushes executed").Value()
		if flushes > 0 {
			res.IntakeBatchMean = float64(submitted) / float64(flushes)
		}
	}
	return res, nil
}
