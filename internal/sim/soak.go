package sim

import (
	"fmt"
	"runtime"
	"sort"
)

// This file is the long-run soak harness: RunSoak replays a scenario for
// a large number of broker operations on the virtual clock, with the
// working set bounded (terminal-state pruning plus ledger retention), and
// samples process health — goroutine count, heap, rolling admission p99 —
// at every quiesce window. The oracle still runs continuously; on top of
// it the soak verdict asserts the process is *stable*: goroutines and
// heap bounded, tail latency flat. Everything under the "soak" JSON key
// (like "latency") is wall-clock/runtime derived and therefore excluded
// from determinism comparisons.

// SoakConfig sizes a soak run. The embedded ScenarioConfig is used as in
// RunScenario except that Prune is forced on and Phases is driven by
// Windows.
type SoakConfig struct {
	ScenarioConfig
	// Windows is the number of sampling windows (default 40).
	Windows int
	// LedgerRetention bounds the broker ledger's entry window (default
	// 4096; aggregates stay exact across eviction).
	LedgerRetention int
	// GoroutineSlack is the allowed goroutine growth over the run's
	// starting count (default 16).
	GoroutineSlack int
	// HeapFactor bounds the maximum sampled heap against the first
	// window's baseline (default 8; a 32 MiB floor absorbs tiny-heap
	// noise).
	HeapFactor float64
	// P99Factor bounds the median window-p99 of the run's second half
	// against the first half's (default 8; a 50 µs floor absorbs
	// scheduler noise on very fast admissions).
	P99Factor float64
}

func (cfg SoakConfig) withDefaults() SoakConfig {
	cfg.ScenarioConfig = cfg.ScenarioConfig.withDefaults()
	if cfg.Windows <= 0 {
		cfg.Windows = 40
	}
	if cfg.LedgerRetention <= 0 {
		cfg.LedgerRetention = 4096
	}
	if cfg.GoroutineSlack <= 0 {
		cfg.GoroutineSlack = 16
	}
	if cfg.HeapFactor <= 0 {
		cfg.HeapFactor = 8
	}
	if cfg.P99Factor <= 0 {
		cfg.P99Factor = 8
	}
	cfg.Prune = true
	cfg.Phases = cfg.Windows
	return cfg
}

// SoakWindow is one sampling point, taken at a quiesce barrier.
type SoakWindow struct {
	Window     int     `json:"window"`
	Ops        int64   `json:"ops"`
	Goroutines int     `json:"goroutines"`
	HeapBytes  uint64  `json:"heap_bytes"`
	P99MS      float64 `json:"p99_ms"` // admission p99 within this window
	Samples    int     `json:"samples"`
}

// SoakStats is the runtime-health block of a soak report. Like the
// latency block it is not deterministic; strip it (jq 'del(.soak)')
// before byte-diffing soak reports.
type SoakStats struct {
	Windows []SoakWindow `json:"windows"`

	GoroutinesStart int    `json:"goroutines_start"`
	GoroutinesMax   int    `json:"goroutines_max"`
	HeapBaseBytes   uint64 `json:"heap_base_bytes"`
	HeapMaxBytes    uint64 `json:"heap_max_bytes"`

	// P99FirstHalfMS and P99LastHalfMS are the medians of the window
	// p99s over each half of the run — the flat-tail comparison.
	P99FirstHalfMS float64 `json:"p99_first_half_ms"`
	P99LastHalfMS  float64 `json:"p99_last_half_ms"`

	Stable   bool     `json:"stable"`
	Problems []string `json:"problems,omitempty"`
}

// SoakReport is a scenario report plus the soak-health verdict.
type SoakReport struct {
	ScenarioReport
	Soak *SoakStats `json:"soak"`
}

// Failed gates CI: any oracle violation, scenario assertion failure, or
// instability verdict.
func (r *SoakReport) Failed() bool {
	return r.ScenarioReport.Failed() || r.Soak == nil || !r.Soak.Stable
}

// RunSoak replays the scenario in long-run mode: working set bounded,
// runtime health sampled per window, stability asserted. A non-nil error
// means the harness itself failed; oracle violations, assertion failures
// and instability land in the report (see SoakReport.Failed).
func RunSoak(sc Scenario, cfg SoakConfig) (*SoakReport, error) {
	cfg = cfg.withDefaults()
	run, err := newScenarioRun(sc, cfg.ScenarioConfig)
	if err != nil {
		return nil, err
	}
	defer run.Cluster.Close()
	run.Cluster.Broker.Ledger().SetRetention(cfg.LedgerRetention)

	stats := &SoakStats{GoroutinesStart: runtime.NumGoroutine()}
	lastLat := 0
	sample := func(window int) {
		runtime.GC()
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		lat := run.latencies[lastLat:]
		lastLat = len(run.latencies)
		w := SoakWindow{
			Window:     window,
			Ops:        run.Report.Ops,
			Goroutines: runtime.NumGoroutine(),
			HeapBytes:  ms.HeapAlloc,
			Samples:    len(lat),
		}
		if s := summarizeLatency(lat); s != nil {
			w.P99MS = s.P99MS
		}
		stats.Windows = append(stats.Windows, w)
	}

	if err := run.play(sc, sample); err != nil {
		return &SoakReport{ScenarioReport: *run.Report, Soak: stats}, err
	}
	run.finish(sc)
	judge(stats, cfg)
	return &SoakReport{ScenarioReport: *run.Report, Soak: stats}, nil
}

// judge fills the aggregate fields and the stability verdict.
func judge(stats *SoakStats, cfg SoakConfig) {
	if len(stats.Windows) == 0 {
		stats.Problems = append(stats.Problems, "no sampling windows")
		return
	}
	stats.HeapBaseBytes = stats.Windows[0].HeapBytes
	for _, w := range stats.Windows {
		if w.Goroutines > stats.GoroutinesMax {
			stats.GoroutinesMax = w.Goroutines
		}
		if w.HeapBytes > stats.HeapMaxBytes {
			stats.HeapMaxBytes = w.HeapBytes
		}
	}
	var p99s []float64
	for _, w := range stats.Windows {
		if w.Samples > 0 {
			p99s = append(p99s, w.P99MS)
		}
	}
	half := len(p99s) / 2
	stats.P99FirstHalfMS = medianOf(p99s[:half])
	stats.P99LastHalfMS = medianOf(p99s[half:])

	if lim := stats.GoroutinesStart + cfg.GoroutineSlack; stats.GoroutinesMax > lim {
		stats.Problems = append(stats.Problems,
			fmt.Sprintf("goroutines grew %d -> %d (limit %d): leak", stats.GoroutinesStart, stats.GoroutinesMax, lim))
	}
	heapBase := stats.HeapBaseBytes
	if floor := uint64(32 << 20); heapBase < floor {
		heapBase = floor
	}
	if lim := uint64(float64(heapBase) * cfg.HeapFactor); stats.HeapMaxBytes > lim {
		stats.Problems = append(stats.Problems,
			fmt.Sprintf("heap grew %d -> %d bytes (limit %d): working set unbounded", stats.HeapBaseBytes, stats.HeapMaxBytes, lim))
	}
	first := stats.P99FirstHalfMS
	if floor := 0.05; first < floor {
		first = floor
	}
	if half > 0 && stats.P99LastHalfMS > cfg.P99Factor*first {
		stats.Problems = append(stats.Problems,
			fmt.Sprintf("admission p99 rose %.3fms -> %.3fms (limit %.3fms): tail not flat",
				stats.P99FirstHalfMS, stats.P99LastHalfMS, cfg.P99Factor*first))
	}
	stats.Stable = len(stats.Problems) == 0
}

// medianOf returns the median of an unsorted slice (0 when empty).
func medianOf(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	s := append([]float64(nil), v...)
	sort.Float64s(s)
	return percentile(s, 0.5)
}
