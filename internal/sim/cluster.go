// Package sim provides the discrete-event simulation harness behind the
// repository's experiments: a single-domain G-QoSM cluster assembled from
// all substrates, deterministic synthetic workloads (the stand-in for the
// paper's testbed traffic), and runners that regenerate every experiment
// in DESIGN.md's index (E56, C1–C5 and the ablations).
package sim

import (
	"fmt"
	"time"

	"gqosm/internal/clockx"
	"gqosm/internal/core"
	"gqosm/internal/faultx"
	"gqosm/internal/gara"
	"gqosm/internal/gram"
	"gqosm/internal/mds"
	"gqosm/internal/nrm"
	"gqosm/internal/obs"
	"gqosm/internal/registry"
	"gqosm/internal/resource"
)

// Epoch is the simulated start of every experiment: the Monday of the
// Middleware 2003 conference week.
var Epoch = time.Date(2003, 6, 16, 9, 0, 0, 0, time.UTC)

// ClusterConfig sizes a simulated single-domain deployment.
type ClusterConfig struct {
	// Plan is the Algorithm-1 partition (required).
	Plan core.CapacityPlan
	// Domain names the broker's administrative domain; default "site-a".
	// The multi-broker harness gives each member its own domain so SLA
	// IDs stay globally unique and federation can tell the sites apart.
	Domain string
	// ServiceCapacity, when non-zero, overrides the capacity the default
	// catch-all "simulation" service advertises (the multi-broker
	// harness advertises the CLUSTER-wide total on every member so
	// discovery admits requests whose fate the allocator must decide).
	ServiceCapacity resource.Capacity
	// Services to pre-register for discovery; when empty a catch-all
	// "simulation" service advertising the plan's total capacity is
	// registered.
	Services []registry.Service
	// WithNetwork adds the §5.6 three-site topology (site-a/b/c with a
	// 1000 Mbps B–A link and a 100 Mbps C–A link).
	WithNetwork bool
	// ConfirmWindow for offers; default 2 minutes.
	ConfirmWindow time.Duration
	// MinOptimizerGain forwarded to the broker.
	MinOptimizerGain float64
	// Shards forwarded to the broker (0 or 1 keeps the classic monolithic
	// domain; N > 1 splits the plan into N per-shard allocators behind the
	// placement layer).
	Shards int
	// DisableCaches forwarded to the broker: turns the hot-path caches
	// (discovery) off for A/B measurement. Default off = caches on.
	DisableCaches bool
	// Obs receives the cluster's metrics; nil lets the broker create a
	// private registry (reachable via Cluster.Obs).
	Obs *obs.Registry
	// Faults, when non-nil, is installed on every substrate (GARA
	// managers, NRM, GRAM) and on the broker's RM-facing call sites.
	// Nil assembles the historical fault-free cluster.
	Faults *faultx.Injector
	// RMPolicy bounds the broker's RM-facing calls; the zero value is
	// the historical single direct attempt.
	RMPolicy core.RetryPolicy
	// Clock, when non-nil, drives the cluster instead of a fresh manual
	// clock at the Epoch. The chaos harness passes the clock its fault
	// injector was built on, so crash-recovery windows and session
	// lifecycles advance together.
	Clock *clockx.Manual
	// WAL, when its Dir is set, makes the broker durable: lifecycle
	// records journal to the directory and RecoverBroker can rebuild the
	// broker after a crash. The zero value keeps the historical
	// in-memory broker.
	WAL core.DurabilityConfig
	// Intake forwarded to the broker: enables the batched group-commit
	// admission pipeline (Submit/SubmitWait/FlushIntake). The zero value
	// keeps RequestService as the only admission path.
	Intake core.IntakeConfig
	// Policy forwarded to the broker: names the adaptation policy
	// ("" = "paper").
	Policy string
	// ShadowPolicy forwarded to the broker: names the candidate policy
	// consulted in shadow at every decision point.
	ShadowPolicy string
}

// Cluster is an assembled in-process G-QoSM deployment: the Fig. 5
// testbed driven by a manual clock.
type Cluster struct {
	Clock    *clockx.Manual
	Broker   *core.Broker
	Pool     *resource.Pool
	Topo     *nrm.Topology
	NetMgr   *nrm.Manager
	Registry *registry.Registry
	MDS      *mds.Directory
	GRAM     *gram.Manager
	GARA     *gara.System
	Obs      *obs.Registry

	// brokerCfg is the exact core.Config the broker was assembled with,
	// kept so RecoverBroker can rebuild a replacement against the same
	// surviving substrates.
	brokerCfg core.Config
}

// NewCluster assembles a cluster at the Epoch.
func NewCluster(cfg ClusterConfig) (*Cluster, error) {
	clock := cfg.Clock
	if clock == nil {
		clock = clockx.NewManual(Epoch)
	}
	domain := cfg.Domain
	if domain == "" {
		domain = "site-a"
	}
	total := cfg.Plan.Total()
	pool := resource.NewPool("machine", total)

	var (
		topo   *nrm.Topology
		netMgr *nrm.Manager
	)
	g := gara.NewSystem()
	g.RegisterManager(gara.WrapManager(gara.NewComputeManager(pool), cfg.Faults))
	if cfg.WithNetwork {
		topo = nrm.NewTopology()
		for _, d := range []struct{ name, cidr string }{
			{"site-a", "192.200.168.0/24"},
			{"site-b", "135.200.50.0/24"},
			{"site-c", "10.10.0.0/16"},
		} {
			if err := topo.AddDomain(d.name, d.cidr); err != nil {
				return nil, err
			}
		}
		if err := topo.AddLink("site-a", "site-b", 1000); err != nil {
			return nil, err
		}
		if err := topo.AddLink("site-a", "site-c", 100); err != nil {
			return nil, err
		}
		netMgr = nrm.NewManager("site-a", topo)
		netMgr.InjectFaults(cfg.Faults)
		g.RegisterManager(gara.WrapManager(gara.NewNetworkManager(netMgr), cfg.Faults))
	}

	reg := registry.New(clock)
	services := cfg.Services
	if len(services) == 0 {
		adv := total
		if !cfg.ServiceCapacity.IsZero() {
			adv = cfg.ServiceCapacity
		}
		services = []registry.Service{{
			Name:     "simulation",
			Provider: domain,
			Properties: []registry.Property{
				registry.NumProp("cpu-nodes", adv.CPU),
				registry.NumProp("memory-mb", adv.MemoryMB),
				registry.NumProp("disk-gb", adv.DiskGB),
				registry.NumProp("bandwidth-mbps", 1000),
			},
		}}
	}
	for _, s := range services {
		if _, err := reg.Register(s); err != nil {
			return nil, err
		}
	}

	dir := mds.NewDirectory()
	if err := dir.Register("machine", func() mds.Attributes {
		now := clock.Now()
		return mds.Attributes{
			"cpu-total": fmt.Sprintf("%g", pool.Total().CPU),
			"cpu-free":  fmt.Sprintf("%g", pool.Available(now).CPU),
		}
	}); err != nil {
		return nil, err
	}

	gramM := gram.NewManager(clock)
	gramM.InjectFaults(cfg.Faults)

	brokerCfg := core.Config{
		Domain:           domain,
		Clock:            clock,
		Plan:             cfg.Plan,
		Registry:         reg,
		GARA:             g,
		GRAM:             gramM,
		NRM:              netMgr,
		MDS:              dir,
		ConfirmWindow:    cfg.ConfirmWindow,
		MinOptimizerGain: cfg.MinOptimizerGain,
		Shards:           cfg.Shards,
		DisableCaches:    cfg.DisableCaches,
		Obs:              cfg.Obs,
		Faults:           cfg.Faults,
		RMPolicy:         cfg.RMPolicy,
		Durability:       cfg.WAL,
		Intake:           cfg.Intake,
		Policy:           cfg.Policy,
		ShadowPolicy:     cfg.ShadowPolicy,
	}
	broker, err := core.NewBroker(brokerCfg)
	if err != nil {
		return nil, err
	}
	metrics := broker.Obs()
	// Recovered brokers must report into the SAME registry so counters
	// accumulate across restarts.
	brokerCfg.Obs = metrics
	g.Instrument(metrics)
	gramM.Instrument(metrics)
	if netMgr != nil {
		netMgr.Instrument(metrics)
	}
	return &Cluster{
		Clock:     clock,
		Broker:    broker,
		Pool:      pool,
		Topo:      topo,
		NetMgr:    netMgr,
		Registry:  reg,
		MDS:       dir,
		GRAM:      gramM,
		GARA:      g,
		Obs:       metrics,
		brokerCfg: brokerCfg,
	}, nil
}

// RecoverBroker rebuilds the broker from the cluster's WAL directory —
// the surviving substrates (pool, GARA, NRM, GRAM, registry, clock) are
// reused, exactly as a restarted broker process would find them. The
// dead broker must have been stopped with Crash (or Close) first.
func (c *Cluster) RecoverBroker() (*core.RecoverStats, error) {
	b, stats, err := core.Recover(c.brokerCfg)
	if err != nil {
		return nil, err
	}
	c.Broker = b
	return stats, nil
}

// Close shuts the cluster down.
func (c *Cluster) Close() {
	c.Broker.Close()
	c.GRAM.Close()
}
