package sim

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"gqosm/internal/core"
	"gqosm/internal/pricing"
	"gqosm/internal/resource"
	"gqosm/internal/sla"
)

// This file implements the claim experiments C1–C5 of DESIGN.md §4: each
// quantitative claim the paper makes about the adaptation scheme, measured
// against a baseline.

// paperPlan is the §5.6 partition scaled to the experiment's total.
func paperPlan(totalNodes float64) core.CapacityPlan {
	return core.CapacityPlan{
		Guaranteed: resource.Nodes(totalNodes * 15 / 26),
		Adaptive:   resource.Nodes(totalNodes * 6 / 26),
		BestEffort: resource.Nodes(totalNodes * 5 / 26),
	}
}

// C1Row compares utilization and admission under one arrival rate.
type C1Row struct {
	ArrivalPerHour float64
	UtilAdaptive   float64
	UtilStatic     float64
	AdmitAdaptive  float64
	AdmitStatic    float64
}

// RunC1 sweeps the arrival rate and compares the adaptive scheme against
// the rigid-partition baseline on identical traces — the §5.4 claim
// "resources are never under-utilized due to the dynamic property of the
// algorithm".
func RunC1(seed int64, rates []float64) ([]C1Row, error) {
	if len(rates) == 0 {
		rates = []float64{2, 4, 8, 16, 32}
	}
	var rows []C1Row
	for _, rate := range rates {
		wl := Workload{
			Seed:           seed,
			ArrivalPerHour: rate,
			Duration:       72 * time.Hour,
			GuaranteedFrac: 0.3,
			ControlledFrac: 0.2,
			MeanHoldHours:  3,
			MaxNodes:       8,
		}
		trace := wl.Trace()
		adaptive, err := NewAdaptivePolicy(paperPlan(26))
		if err != nil {
			return nil, err
		}
		static := NewStaticPolicy(paperPlan(26))
		sa := Replay(trace, adaptive, nil)
		ss := Replay(trace, static, nil)
		rows = append(rows, C1Row{
			ArrivalPerHour: rate,
			UtilAdaptive:   sa.MeanUtilization,
			UtilStatic:     ss.MeanUtilization,
			AdmitAdaptive:  sa.AdmissionRate(),
			AdmitStatic:    ss.AdmissionRate(),
		})
	}
	return rows, nil
}

// C2Row compares guarantee survival under one failure rate.
type C2Row struct {
	FailureRate     float64 // fraction of total capacity failing at once
	BrokenAdaptive  int     // failure events breaking guarantees, A sized to f
	BrokenNoReserve int     // same trace, all capacity in C_G (no reserve)
	AdmitAdaptive   float64
	AdmitNoReserve  float64
}

// RunC2 sweeps the failure rate: the adaptive plan sizes C_A to the
// administrator's expected failure rate ("the algorithm reserves an
// 'adaptive capacity', based on the specified rate of resource failure or
// congestion"); the baseline spends that capacity on a bigger C_G instead.
func RunC2(seed int64, failureRates []float64) ([]C2Row, error) {
	if len(failureRates) == 0 {
		failureRates = []float64{0.05, 0.1, 0.2, 0.3}
	}
	const totalNodes = 40.0
	var rows []C2Row
	for _, f := range failureRates {
		wl := Workload{
			Seed:           seed,
			ArrivalPerHour: 10,
			Duration:       96 * time.Hour,
			GuaranteedFrac: 0.6,
			ControlledFrac: 0,
			MeanHoldHours:  4,
			MaxNodes:       6,
		}
		trace := wl.Trace()

		// One failure every ~12 hours taking f×total offline for 2h.
		rng := rand.New(rand.NewSource(seed + int64(f*1000)))
		var failures []FailureEvent
		for at := time.Duration(0); at < wl.Duration; at += time.Duration(8+rng.Intn(8)) * time.Hour {
			failures = append(failures, FailureEvent{
				At:       at + time.Hour,
				Offline:  resource.Nodes(totalNodes * f),
				Duration: 2 * time.Hour,
			})
		}

		planAdaptive, err := core.PlanForFailureRate(resource.Nodes(totalNodes), f, 0.1)
		if err != nil {
			return nil, err
		}
		planNoReserve := core.CapacityPlan{
			Guaranteed: planAdaptive.Guaranteed.Add(planAdaptive.Adaptive),
			BestEffort: planAdaptive.BestEffort,
		}

		adaptive, err := NewAdaptivePolicy(planAdaptive)
		if err != nil {
			return nil, err
		}
		noReserve, err := NewAdaptivePolicy(planNoReserve)
		if err != nil {
			return nil, err
		}
		sa := Replay(trace, adaptive, failures)
		sn := Replay(trace, noReserve, failures)
		rows = append(rows, C2Row{
			FailureRate:     f,
			BrokenAdaptive:  sa.BrokenGuarantees,
			BrokenNoReserve: sn.BrokenGuarantees,
			AdmitAdaptive:   sa.AdmissionRate(),
			AdmitNoReserve:  sn.AdmissionRate(),
		})
	}
	return rows, nil
}

// C3Row measures the best-effort floor under guaranteed saturation.
type C3Row struct {
	GuaranteedLoadNodes float64 // standing guaranteed demand
	BEAdmitted          int
	BERequested         int
	BEFloorHonored      bool // every request ≤ C_B admitted
}

// RunC3 saturates the guaranteed side and checks the §5.4 claim "a minimum
// resource capacity is allocated for 'best effort' users, therefore users
// with no SLAs can always make use of the 'best effort' resources".
func RunC3(seed int64) ([]C3Row, error) {
	plan := paperPlan(26) // C_B = 5
	var rows []C3Row
	for _, gLoad := range []float64{0, 8, 12, 15} {
		policy, err := NewAdaptivePolicy(plan)
		if err != nil {
			return nil, err
		}
		if gLoad > 0 {
			if !policy.AllocateGuaranteed("standing", resource.Nodes(gLoad), resource.Nodes(gLoad)) {
				return nil, fmt.Errorf("sim: standing load %g not admitted", gLoad)
			}
		}
		rng := rand.New(rand.NewSource(seed))
		row := C3Row{GuaranteedLoadNodes: gLoad, BEFloorHonored: true}
		for i := 0; i < 200; i++ {
			id := fmt.Sprintf("be-%d", i)
			n := float64(1 + rng.Intn(5)) // requests never exceed C_B = 5
			row.BERequested++
			if policy.AllocateBestEffort(id, resource.Nodes(n)) {
				row.BEAdmitted++
				policy.ReleaseBestEffort(id)
			} else {
				row.BEFloorHonored = false
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// C4Row compares the optimizer against its baselines on one instance
// size.
type C4Row struct {
	Services        int
	ProfitExact     float64
	ProfitGreedy    float64
	ProfitFirstFit  float64
	ProfitMinimum   float64
	GreedyVsExact   float64 // Greedy/Exact; 0 when Exact was skipped
	GreedyVsMinimum float64
}

// RunC4 builds random controlled-load marketplaces and compares the §5.3
// optimizer (Greedy, with Exact as the oracle on small instances) against
// the static-minimum and first-fit baselines — the claim that the
// heuristic "aims to maximize overall monetary profit".
func RunC4(seed int64, sizes []int) ([]C4Row, error) {
	if len(sizes) == 0 {
		sizes = []int{4, 6, 8, 10, 24, 48}
	}
	rng := rand.New(rand.NewSource(seed))
	model := pricing.NewModel(pricing.DefaultRates)
	rates := model.ClassRates(sla.ClassControlledLoad)
	var rows []C4Row
	for _, n := range sizes {
		p := core.OptProblem{Capacity: resource.Capacity{
			CPU:      float64(3 * n), // tight: ~half of aggregate best demand
			MemoryMB: float64(512 * n),
		}}
		for i := 0; i < n; i++ {
			minCPU := float64(1 + rng.Intn(2))
			maxCPU := minCPU + float64(2+rng.Intn(6))
			minMem := float64(128 * (1 + rng.Intn(2)))
			// Clients differ in willingness to pay (the paper: "users
			// who are willing to pay different amounts to access Grid
			// services"); the optimizer should favor high payers.
			mult := 0.5 + 1.5*rng.Float64()
			p.Services = append(p.Services, core.OptService{
				ID: sla.ID(fmt.Sprintf("mkt-%d", i)),
				Spec: sla.NewSpec(
					sla.Range(resource.CPU, minCPU, maxCPU),
					sla.List(resource.MemoryMB, minMem, minMem*2, minMem*4),
				),
				Rates: pricing.Rates{
					PerCPUNode:  rates.PerCPUNode * mult,
					PerMemoryMB: rates.PerMemoryMB * mult,
					PerDiskGB:   rates.PerDiskGB * mult,
					PerMbps:     rates.PerMbps * mult,
				},
				RangeSteps: 4,
			})
		}
		greedy, err := core.Greedy(p)
		if err != nil {
			return nil, err
		}
		ff, err := core.BaselineFirstFit(p)
		if err != nil {
			return nil, err
		}
		min, err := core.BaselineMinimum(p)
		if err != nil {
			return nil, err
		}
		row := C4Row{
			Services:       n,
			ProfitGreedy:   greedy.Profit,
			ProfitFirstFit: ff.Profit,
			ProfitMinimum:  min.Profit,
		}
		if n <= 10 {
			exact, err := core.Exact(p)
			if err != nil {
				return nil, err
			}
			row.ProfitExact = exact.Profit
			row.GreedyVsExact = greedy.Profit / exact.Profit
		}
		if min.Profit > 0 {
			row.GreedyVsMinimum = greedy.Profit / min.Profit
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// C5Row measures admission under one willingness level; sweeping the
// level from 0 (no volunteers — adaptation disabled in practice) to 1
// contrasts scenario-1 compensation against its absence.
type C5Row struct {
	WillingFrac      float64 // fraction of sessions accepting degradation
	AdmittedWith     int
	ArrivalCount     int
	DegradedSessions int
}

// RunC5 measures scenario-1 effectiveness through the full broker: the
// same guaranteed arrival sequence is offered to a broker whose standing
// controlled-load population is (or is not) willing to degrade. The paper:
// adaptation "optimize[s] resource utilization, by increasing the number
// of requests managed over a particular time".
func RunC5(seed int64, willingFracs []float64) ([]C5Row, error) {
	if len(willingFracs) == 0 {
		willingFracs = []float64{0, 0.5, 1}
	}
	var rows []C5Row
	for _, frac := range willingFracs {
		row, err := runC5Once(seed, frac)
		if err != nil {
			return nil, err
		}
		rows = append(rows, *row)
	}
	return rows, nil
}

func runC5Once(seed int64, willingFrac float64) (*C5Row, error) {
	plan := paperPlan(26)
	cl, err := NewCluster(ClusterConfig{Plan: plan, ConfirmWindow: time.Hour})
	if err != nil {
		return nil, err
	}
	defer cl.Close()
	b := cl.Broker
	rng := rand.New(rand.NewSource(seed))

	// Standing population: 3 controlled-load sessions spanning the run.
	standing := 0
	for i := 0; i < 3; i++ {
		req := core.Request{
			Service: "simulation",
			Client:  fmt.Sprintf("standing-%d", i),
			Class:   sla.ClassControlledLoad,
			Spec: sla.NewSpec(
				sla.Range(resource.CPU, 2, 6),
			),
			Start:             Epoch,
			End:               Epoch.Add(48 * time.Hour),
			AcceptDegradation: rng.Float64() < willingFrac,
		}
		offer, err := b.RequestService(req)
		if err != nil {
			return nil, err
		}
		if err := b.Accept(offer.SLA.ID); err != nil {
			return nil, err
		}
		standing++
	}

	// A burst of guaranteed arrivals, each holding 2 hours.
	row := &C5Row{WillingFrac: willingFrac}
	for i := 0; i < 12; i++ {
		cl.Clock.Advance(time.Hour)
		b.ExpireDue()
		row.ArrivalCount++
		req := core.Request{
			Service: "simulation",
			Client:  fmt.Sprintf("burst-%d", i),
			Class:   sla.ClassGuaranteed,
			Spec:    sla.NewSpec(sla.Exact(resource.CPU, float64(4+rng.Intn(5)))),
			Start:   cl.Clock.Now(),
			End:     cl.Clock.Now().Add(2 * time.Hour),
		}
		offer, err := b.RequestService(req)
		if err != nil {
			continue
		}
		if err := b.Accept(offer.SLA.ID); err != nil {
			continue
		}
		row.AdmittedWith++
	}
	// Count scenario-1 degradation events over the whole run (sessions
	// may be restored by scenario 2 before the end).
	for _, e := range b.Events() {
		if e.Kind == "adapt" && strings.Contains(e.Msg, "degraded to floor") {
			row.DegradedSessions++
		}
	}
	_ = standing
	return row, nil
}

// FormatRows renders any of the claim tables for gridsim.
func FormatC1(rows []C1Row) string {
	var sb strings.Builder
	sb.WriteString("λ/h   util(adaptive)  util(static)  admit(adaptive)  admit(static)\n")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-5g %-15.3f %-13.3f %-16.3f %-13.3f\n",
			r.ArrivalPerHour, r.UtilAdaptive, r.UtilStatic, r.AdmitAdaptive, r.AdmitStatic)
	}
	return sb.String()
}

// FormatC2 renders the C2 table.
func FormatC2(rows []C2Row) string {
	var sb strings.Builder
	sb.WriteString("f      broken(adaptive)  broken(no-reserve)  admit(adaptive)  admit(no-reserve)\n")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-6g %-17d %-19d %-16.3f %-17.3f\n",
			r.FailureRate, r.BrokenAdaptive, r.BrokenNoReserve, r.AdmitAdaptive, r.AdmitNoReserve)
	}
	return sb.String()
}

// FormatC3 renders the C3 table.
func FormatC3(rows []C3Row) string {
	var sb strings.Builder
	sb.WriteString("g-load  BE admitted/requested  floor honored\n")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-7g %d/%-19d %v\n", r.GuaranteedLoadNodes, r.BEAdmitted, r.BERequested, r.BEFloorHonored)
	}
	return sb.String()
}

// FormatC4 renders the C4 table.
func FormatC4(rows []C4Row) string {
	var sb strings.Builder
	sb.WriteString("N     exact     greedy    first-fit  minimum   greedy/exact  greedy/min\n")
	for _, r := range rows {
		exact := "-"
		ratio := "-"
		if r.ProfitExact > 0 {
			exact = fmt.Sprintf("%.1f", r.ProfitExact)
			ratio = fmt.Sprintf("%.3f", r.GreedyVsExact)
		}
		fmt.Fprintf(&sb, "%-5d %-9s %-9.1f %-10.1f %-9.1f %-13s %.3f\n",
			r.Services, exact, r.ProfitGreedy, r.ProfitFirstFit, r.ProfitMinimum, ratio, r.GreedyVsMinimum)
	}
	return sb.String()
}

// FormatC5 renders the C5 table.
func FormatC5(rows []C5Row) string {
	var sb strings.Builder
	sb.WriteString("willing  admitted/arrivals  degraded sessions\n")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-8g %d/%-16d %d\n", r.WillingFrac, r.AdmittedWith, r.ArrivalCount, r.DegradedSessions)
	}
	return sb.String()
}
