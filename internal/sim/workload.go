package sim

import (
	"math"
	"math/rand"
	"sort"
	"time"

	"gqosm/internal/core"
	"gqosm/internal/resource"
	"gqosm/internal/sla"
)

// Workload parameterizes a synthetic arrival trace: Poisson arrivals with
// exponential holding times and a configurable class mix — the stand-in
// for the paper's unavailable testbed traffic.
type Workload struct {
	// Seed makes the trace deterministic.
	Seed int64
	// ArrivalPerHour is the Poisson arrival rate λ.
	ArrivalPerHour float64
	// Duration is the simulated span.
	Duration time.Duration
	// GuaranteedFrac and ControlledFrac set the class mix; the rest is
	// best effort.
	GuaranteedFrac, ControlledFrac float64
	// MeanHoldHours is the mean exponential session length.
	MeanHoldHours float64
	// MaxNodes bounds the per-request node count (uniform 1..MaxNodes).
	MaxNodes int
	// DegradeWillingFrac is the fraction of negotiated sessions that
	// accept degradation (scenario-1 volunteers).
	DegradeWillingFrac float64
	// Rate, when non-nil, makes arrivals a nonhomogeneous Poisson
	// process: it returns the instantaneous rate (arrivals/hour) at an
	// offset from trace start. Generation uses thinning — candidates
	// arrive at RateMax and are kept with probability Rate(at)/RateMax —
	// so RateMax must bound Rate from above everywhere (values above it
	// are effectively clamped). Nil keeps the historical homogeneous
	// process at ArrivalPerHour, drawing the exact same per-seed trace
	// as before the field existed.
	Rate func(at time.Duration) float64
	// RateMax is the thinning bound; it defaults to ArrivalPerHour.
	RateMax float64
}

func (w Workload) withDefaults() Workload {
	if w.ArrivalPerHour <= 0 {
		w.ArrivalPerHour = 6
	}
	if w.Duration <= 0 {
		w.Duration = 24 * time.Hour
	}
	if w.MeanHoldHours <= 0 {
		w.MeanHoldHours = 2
	}
	if w.MaxNodes <= 0 {
		w.MaxNodes = 8
	}
	return w
}

// Arrival is one entry of a generated trace.
type Arrival struct {
	At    time.Duration // offset from the trace start
	Class sla.Class
	Nodes float64
	Hold  time.Duration
	// Willing marks scenario-1 volunteers (negotiated classes only).
	Willing bool
}

// Trace generates the deterministic arrival list for the workload.
func (w Workload) Trace() []Arrival {
	w = w.withDefaults()
	rng := rand.New(rand.NewSource(w.Seed))
	rateMax := w.ArrivalPerHour
	if w.Rate != nil && w.RateMax > 0 {
		rateMax = w.RateMax
	}
	var (
		out []Arrival
		at  time.Duration
	)
	for {
		gap := time.Duration(rng.ExpFloat64() / rateMax * float64(time.Hour))
		at += gap
		if at >= w.Duration {
			break
		}
		if w.Rate != nil && rng.Float64()*rateMax > w.Rate(at) {
			continue // thinned candidate of the majorizing process
		}
		class := sla.ClassBestEffort
		switch p := rng.Float64(); {
		case p < w.GuaranteedFrac:
			class = sla.ClassGuaranteed
		case p < w.GuaranteedFrac+w.ControlledFrac:
			class = sla.ClassControlledLoad
		}
		hold := time.Duration(rng.ExpFloat64() * w.MeanHoldHours * float64(time.Hour))
		if hold < time.Minute {
			hold = time.Minute
		}
		out = append(out, Arrival{
			At:      at,
			Class:   class,
			Nodes:   float64(1 + rng.Intn(w.MaxNodes)),
			Hold:    hold,
			Willing: rng.Float64() < w.DegradeWillingFrac,
		})
	}
	return out
}

// Policy abstracts the capacity-allocation policy a trace is replayed
// against, so the adaptive scheme can be compared with baselines on
// identical arrivals.
type Policy interface {
	// AllocateGuaranteed admits guaranteed/controlled demand; it reports
	// success.
	AllocateGuaranteed(id string, c, floor resource.Capacity) bool
	// AllocateBestEffort admits best-effort demand.
	AllocateBestEffort(id string, c resource.Capacity) bool
	ReleaseGuaranteed(id string)
	ReleaseBestEffort(id string)
	// SetOffline reports failed capacity to the policy and returns
	// whether any existing guarantee was broken by the failure.
	SetOffline(c resource.Capacity) bool
	// Used and Online report instantaneous capacity for utilization
	// sampling.
	Used() resource.Capacity
	Online() resource.Capacity
}

// AdaptivePolicy wraps the paper's Algorithm-1 allocator.
type AdaptivePolicy struct {
	A *core.Allocator
}

// NewAdaptivePolicy builds the paper's policy over a plan.
func NewAdaptivePolicy(plan core.CapacityPlan) (*AdaptivePolicy, error) {
	a, err := core.NewAllocator(plan)
	if err != nil {
		return nil, err
	}
	return &AdaptivePolicy{A: a}, nil
}

// AllocateGuaranteed implements Policy.
func (p *AdaptivePolicy) AllocateGuaranteed(id string, c, floor resource.Capacity) bool {
	_, err := p.A.AllocateGuaranteed(id, c, floor)
	return err == nil
}

// AllocateBestEffort implements Policy.
func (p *AdaptivePolicy) AllocateBestEffort(id string, c resource.Capacity) bool {
	return p.A.AllocateBestEffort(id, c) == nil
}

// ReleaseGuaranteed implements Policy.
func (p *AdaptivePolicy) ReleaseGuaranteed(id string) { _ = p.A.ReleaseGuaranteed(id) }

// ReleaseBestEffort implements Policy.
func (p *AdaptivePolicy) ReleaseBestEffort(id string) { _ = p.A.ReleaseBestEffort(id) }

// SetOffline implements Policy: a guarantee breaks when guaranteed demand
// no longer fits C_G_eff + C_A.
func (p *AdaptivePolicy) SetOffline(c resource.Capacity) bool {
	p.A.SetOffline(c)
	var gDemand resource.Capacity
	for _, u := range p.A.GuaranteedUsers() {
		if g, ok := p.A.GuaranteedAllocation(u); ok {
			gDemand = gDemand.Add(g)
		}
	}
	plan := p.A.Plan()
	gMax := plan.Guaranteed.Sub(p.A.Offline()).ClampMin(resource.Capacity{}).Add(plan.Adaptive)
	return !gDemand.FitsIn(gMax)
}

// Used implements Policy.
func (p *AdaptivePolicy) Used() resource.Capacity {
	online := p.Online()
	var used resource.Capacity
	for _, k := range resource.Kinds {
		used = used.With(k, p.A.Utilization().Get(k)*online.Get(k))
	}
	return used
}

// Online implements Policy.
func (p *AdaptivePolicy) Online() resource.Capacity {
	return p.A.Plan().Total().Sub(p.A.Offline()).ClampMin(resource.Capacity{})
}

// StaticPolicy is the no-adaptation baseline: rigid partitions (guaranteed
// demand only ever uses C_G, best effort only C_B, the adaptive share is
// permanently idle headroom) — what Algorithm 1's "dynamic property"
// claims to beat.
type StaticPolicy struct {
	plan       core.CapacityPlan
	offline    resource.Capacity
	guaranteed map[string]resource.Capacity
	bestEffort map[string]resource.Capacity
}

// NewStaticPolicy builds the baseline over a plan.
func NewStaticPolicy(plan core.CapacityPlan) *StaticPolicy {
	return &StaticPolicy{
		plan:       plan,
		guaranteed: make(map[string]resource.Capacity),
		bestEffort: make(map[string]resource.Capacity),
	}
}

func sum(m map[string]resource.Capacity) resource.Capacity {
	var s resource.Capacity
	for _, c := range m {
		s = s.Add(c)
	}
	return s
}

// AllocateGuaranteed implements Policy: only C_G (minus failures) serves
// guaranteed demand.
func (p *StaticPolicy) AllocateGuaranteed(id string, c, _ resource.Capacity) bool {
	gEff := p.plan.Guaranteed.Sub(p.offline).ClampMin(resource.Capacity{})
	if !sum(p.guaranteed).Add(c).FitsIn(gEff) {
		return false
	}
	p.guaranteed[id] = c
	return true
}

// AllocateBestEffort implements Policy: only C_B serves best effort.
func (p *StaticPolicy) AllocateBestEffort(id string, c resource.Capacity) bool {
	if !sum(p.bestEffort).Add(c).FitsIn(p.plan.BestEffort) {
		return false
	}
	p.bestEffort[id] = p.bestEffort[id].Add(c)
	return true
}

// ReleaseGuaranteed implements Policy.
func (p *StaticPolicy) ReleaseGuaranteed(id string) { delete(p.guaranteed, id) }

// ReleaseBestEffort implements Policy.
func (p *StaticPolicy) ReleaseBestEffort(id string) { delete(p.bestEffort, id) }

// SetOffline implements Policy.
func (p *StaticPolicy) SetOffline(c resource.Capacity) bool {
	p.offline = c.Min(p.plan.Guaranteed)
	gEff := p.plan.Guaranteed.Sub(p.offline).ClampMin(resource.Capacity{})
	return !sum(p.guaranteed).FitsIn(gEff)
}

// Used implements Policy.
func (p *StaticPolicy) Used() resource.Capacity {
	return sum(p.guaranteed).Add(sum(p.bestEffort))
}

// Online implements Policy.
func (p *StaticPolicy) Online() resource.Capacity {
	return p.plan.Total().Sub(p.offline).ClampMin(resource.Capacity{})
}

// ReplayStats aggregates a trace replay.
type ReplayStats struct {
	Arrivals        int
	Admitted        int
	Rejected        int
	AdmittedByClass map[sla.Class]int
	RejectedByClass map[sla.Class]int
	// MeanUtilization is the time-weighted mean CPU utilization.
	MeanUtilization float64
	// BrokenGuarantees counts failure events that left guaranteed
	// demand uncoverable.
	BrokenGuarantees int
}

// AdmissionRate is Admitted/Arrivals.
func (s ReplayStats) AdmissionRate() float64 {
	if s.Arrivals == 0 {
		return 0
	}
	return float64(s.Admitted) / float64(s.Arrivals)
}

// FailureEvent schedules capacity going offline during a replay.
type FailureEvent struct {
	At       time.Duration
	Offline  resource.Capacity // cumulative offline capacity from At
	Duration time.Duration
}

// Replay runs a trace against a policy, sampling utilization at every
// event boundary (arrivals, departures, failures) weighted by elapsed
// time. Guaranteed and controlled-load arrivals use AllocateGuaranteed
// (controlled-load floors at half the request); best-effort arrivals use
// AllocateBestEffort.
func Replay(trace []Arrival, policy Policy, failures []FailureEvent) ReplayStats {
	type event struct {
		at   time.Duration
		kind int // 0 arrival, 1 departure, 2 failure-start, 3 failure-end
		idx  int
	}
	var events []event
	for i, a := range trace {
		events = append(events, event{at: a.At, kind: 0, idx: i})
	}
	for i, f := range failures {
		events = append(events, event{at: f.At, kind: 2, idx: i})
		events = append(events, event{at: f.At + f.Duration, kind: 3, idx: i})
	}
	// Departures are appended dynamically on admission.
	stats := ReplayStats{
		AdmittedByClass: make(map[sla.Class]int),
		RejectedByClass: make(map[sla.Class]int),
	}
	admitted := make(map[int]bool)

	sortEvents := func() {
		sort.SliceStable(events, func(i, j int) bool { return events[i].at < events[j].at })
	}
	sortEvents()

	var (
		lastAt   time.Duration
		utilArea float64
	)
	sample := func(now time.Duration) {
		dt := (now - lastAt).Hours()
		if dt > 0 {
			online := policy.Online().CPU
			if online > 0 {
				utilArea += dt * math.Min(1, policy.Used().CPU/online)
			}
			lastAt = now
		}
	}

	for qi := 0; qi < len(events); qi++ {
		ev := events[qi]
		sample(ev.at)
		switch ev.kind {
		case 0: // arrival
			a := trace[ev.idx]
			stats.Arrivals++
			id := idOf(ev.idx)
			var ok bool
			switch a.Class {
			case sla.ClassBestEffort:
				ok = policy.AllocateBestEffort(id, resource.Nodes(a.Nodes))
			case sla.ClassControlledLoad:
				floor := resource.Nodes(math.Max(1, math.Floor(a.Nodes/2)))
				ok = policy.AllocateGuaranteed(id, resource.Nodes(a.Nodes), floor)
			default:
				ok = policy.AllocateGuaranteed(id, resource.Nodes(a.Nodes), resource.Nodes(a.Nodes))
			}
			if ok {
				stats.Admitted++
				stats.AdmittedByClass[a.Class]++
				admitted[ev.idx] = true
				events = append(events, event{at: a.At + a.Hold, kind: 1, idx: ev.idx})
				sortEvents()
			} else {
				stats.Rejected++
				stats.RejectedByClass[a.Class]++
			}
		case 1: // departure
			if !admitted[ev.idx] {
				break
			}
			a := trace[ev.idx]
			id := idOf(ev.idx)
			if a.Class == sla.ClassBestEffort {
				policy.ReleaseBestEffort(id)
			} else {
				policy.ReleaseGuaranteed(id)
			}
		case 2: // failure start
			if policy.SetOffline(failures[ev.idx].Offline) {
				stats.BrokenGuarantees++
			}
		case 3: // failure end
			policy.SetOffline(resource.Capacity{})
		}
	}
	if lastAt > 0 {
		stats.MeanUtilization = utilArea / lastAt.Hours()
	}
	return stats
}

func idOf(i int) string {
	return "u" + itoa(i)
}

func itoa(i int) string {
	// strconv.Itoa without the import churn in hot loops.
	if i == 0 {
		return "0"
	}
	var buf [20]byte
	pos := len(buf)
	for i > 0 {
		pos--
		buf[pos] = byte('0' + i%10)
		i /= 10
	}
	return string(buf[pos:])
}
