package sim

import (
	"bytes"
	"encoding/json"
	"math"
	"math/rand"
	"testing"
	"time"

	"gqosm/internal/sla"
)

// shapedTrace generates a scenario's trace exactly as the driver does:
// workload seeded with seed, Shape applied with the seed+1 stream.
func shapedTrace(t *testing.T, sc Scenario, cfg ScenarioConfig, seed int64) []Arrival {
	t.Helper()
	cfg.Seed = seed
	cfg = cfg.withDefaults()
	wl := sc.Workload(cfg)
	wl.Seed = seed
	trace := wl.Trace()
	if sc.Shape != nil {
		rng := rand.New(rand.NewSource(seed + 1))
		for i := range trace {
			trace[i] = sc.Shape(cfg, rng, i, trace[i])
		}
	}
	return trace
}

// Satellite 1: table-driven shape checks on every scenario's trace, with
// fixed seeds, plus per-seed determinism of the trace itself.
func TestScenarioTraceShapes(t *testing.T) {
	cfg := ScenarioConfig{Ops: 6000}
	for _, seed := range []int64{1, 7} {
		for _, sc := range Scenarios() {
			sc := sc
			t.Run(sc.Name, func(t *testing.T) {
				trace := shapedTrace(t, sc, cfg, seed)
				if len(trace) < 100 {
					t.Fatalf("trace too small: %d arrivals", len(trace))
				}
				again := shapedTrace(t, sc, cfg, seed)
				if len(again) != len(trace) {
					t.Fatalf("nondeterministic trace: %d vs %d arrivals", len(trace), len(again))
				}
				for i := range trace {
					if trace[i] != again[i] {
						t.Fatalf("nondeterministic trace at %d: %+v vs %+v", i, trace[i], again[i])
					}
				}

				switch sc.Name {
				case "diurnal":
					// Peak half-day (06–18h of each period) must carry at
					// least twice the trough half's arrivals.
					var peak, trough float64
					for _, a := range trace {
						if h := math.Mod(a.At.Hours(), 24); h >= 6 && h < 18 {
							peak++
						} else {
							trough++
						}
					}
					if trough == 0 || peak/trough < 2 {
						t.Errorf("diurnal peak/trough = %.0f/%.0f, want ratio >= 2", peak, trough)
					}
				case "flash-crowd":
					_, spikeStart, spikeEnd := flashTimes(cfg.withDefaults())
					var before, spike float64
					for _, a := range trace {
						switch {
						case a.At < spikeStart:
							before++
						case a.At < spikeEnd:
							spike++
						}
					}
					perHourBefore := before / spikeStart.Hours()
					if spike < 30*perHourBefore {
						t.Errorf("spike hour = %.0f arrivals vs %.1f/h before: ratio < 30", spike, perHourBefore)
					}
				case "tenant-mix":
					var whales, total float64
					for _, a := range trace {
						total++
						if a.Nodes >= 10 {
							whales++
							if a.Class != sla.ClassGuaranteed {
								t.Errorf("whale arrival has class %v", a.Class)
							}
						} else if a.Nodes > 2 {
							t.Errorf("minnow arrival with %v nodes", a.Nodes)
						}
					}
					if frac := whales / total; frac < 0.05 || frac > 0.16 {
						t.Errorf("whale fraction %.3f outside [0.05, 0.16]", frac)
					}
				case "reneg-storm":
					var cl float64
					for _, a := range trace {
						if a.Class == sla.ClassControlledLoad {
							cl++
						}
					}
					if frac := cl / float64(len(trace)); frac < 0.7 {
						t.Errorf("controlled-load fraction %.3f, want >= 0.7", frac)
					}
				case "lease-churn":
					var mean time.Duration
					for _, a := range trace {
						mean += a.Hold
					}
					mean /= time.Duration(len(trace))
					if mean > 10*time.Minute {
						t.Errorf("mean hold %v too long for lease churn", mean)
					}
				case "economic":
					var negotiated float64
					for _, a := range trace {
						if a.Class != sla.ClassBestEffort {
							negotiated++
						}
					}
					if frac := negotiated / float64(len(trace)); frac < 0.8 {
						t.Errorf("negotiated fraction %.3f, want >= 0.8", frac)
					}
				}
			})
		}
	}
}

// stripLatency clears the wall-clock block so reports can be compared
// byte-for-byte.
func stripLatency(r *ScenarioReport) *ScenarioReport {
	cp := *r
	cp.Latency = nil
	return &cp
}

func runQuick(t *testing.T, sc Scenario, seed int64) *ScenarioReport {
	t.Helper()
	r, err := RunScenario(sc, ScenarioConfig{Seed: seed, Ops: 3000})
	if err != nil {
		t.Fatalf("%s: %v", sc.Name, err)
	}
	return r
}

// Every scenario must pass its own Verify with zero oracle violations,
// and two runs with the same seed must produce byte-identical
// deterministic reports.
func TestRunScenarioQuickAndDeterministic(t *testing.T) {
	for _, sc := range Scenarios() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			r1 := runQuick(t, sc, 1)
			if r1.InvariantViolations != 0 {
				t.Errorf("invariant violations: %v", r1.Violations)
			}
			if len(r1.VerifyErrors) != 0 {
				t.Errorf("scenario verify failed: %v", r1.VerifyErrors)
			}
			if r1.Ops == 0 || r1.Requested == 0 {
				t.Fatalf("degenerate run: %+v", r1)
			}

			r2 := runQuick(t, sc, 1)
			j1, _ := json.Marshal(stripLatency(r1))
			j2, _ := json.Marshal(stripLatency(r2))
			if !bytes.Equal(j1, j2) {
				t.Errorf("nondeterministic report:\n%s\nvs\n%s", j1, j2)
			}

			// A different seed must still pass but produce a different
			// trace (sanity that the seed is actually threaded through).
			r3 := runQuick(t, sc, 7)
			if r3.InvariantViolations != 0 {
				t.Errorf("seed 7 violations: %v", r3.Violations)
			}
			if len(r3.VerifyErrors) != 0 {
				t.Errorf("seed 7 verify failed: %v", r3.VerifyErrors)
			}
			if r3.Arrivals == r1.Arrivals && r3.Revenue == r1.Revenue {
				t.Errorf("seed 7 report identical to seed 1: seed not threaded")
			}
		})
	}
}
