package sim

import (
	"encoding/json"
	"testing"
)

// TestRestartChaosDeterministicAndClean: the restart-chaos run is the
// PR's acceptance bar in miniature — zero oracle violations, every
// recovery digest-identical to the broker it replaced, capacity fully
// restored at drain, and the whole report (minus wall-clock recovery
// time) byte-identical across two runs of the same seed.
func TestRestartChaosDeterministicAndClean(t *testing.T) {
	run := func() *RestartResult {
		t.Helper()
		res, err := RunRestartChaos(RestartChaosConfig{
			Seed: 7, Ops: 1600, Restarts: 3, WALDir: t.TempDir(),
		})
		if err != nil {
			t.Fatalf("RunRestartChaos: %v", err)
		}
		return res
	}
	a := run()
	if a.InvariantViolations != 0 {
		t.Fatalf("%d invariant violation(s):\n%v", a.InvariantViolations, a.Violations)
	}
	if a.DigestMatches != a.Restarts {
		t.Fatalf("digest matches = %d, want %d", a.DigestMatches, a.Restarts)
	}
	if !a.CapacityRestored {
		t.Fatal("capacity not restored after drain")
	}
	if a.ReplayedRecords == 0 {
		t.Fatal("no WAL records replayed — the harness never exercised recovery")
	}

	b := run()
	stripA, stripB := *a, *b
	stripA.RecoveryP95MS, stripB.RecoveryP95MS = 0, 0
	ja, _ := json.Marshal(stripA)
	jb, _ := json.Marshal(stripB)
	if string(ja) != string(jb) {
		t.Fatalf("same-seed reports differ:\n a: %s\n b: %s", ja, jb)
	}
}

// TestRestartChaosShardedSeeds mirrors the CI matrix cells at small
// scale: both shard counts stay violation-free.
func TestRestartChaosShardedSeeds(t *testing.T) {
	for _, shards := range []int{1, 4} {
		res, err := RunRestartChaos(RestartChaosConfig{
			Seed: 1, Ops: 800, Restarts: 2, Shards: shards, WALDir: t.TempDir(),
		})
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if res.InvariantViolations != 0 {
			t.Fatalf("shards=%d: %d violation(s):\n%v", shards, res.InvariantViolations, res.Violations)
		}
		if res.DigestMatches != res.Restarts {
			t.Fatalf("shards=%d: digest matches = %d, want %d", shards, res.DigestMatches, res.Restarts)
		}
		if !res.CapacityRestored {
			t.Fatalf("shards=%d: capacity not restored", shards)
		}
	}
}
