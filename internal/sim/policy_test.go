package sim

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"
)

// These are the behavior-identity regressions for the policy extraction:
// naming the "paper" policy explicitly must be indistinguishable from the
// pre-extraction default across every harness, so the committed BENCH_*
// artifacts stay byte-stable (modulo wall-clock latency fields).

// stripped marshals a scenario report without its only wall-clock block.
func stripped(t *testing.T, rep *ScenarioReport) []byte {
	t.Helper()
	c := *rep
	c.Latency = nil
	buf, err := json.Marshal(&c)
	if err != nil {
		t.Fatal(err)
	}
	return buf
}

func TestPaperPolicyScenarioByteIdentity(t *testing.T) {
	sc, ok := LookupScenario("flash-crowd")
	if !ok {
		t.Fatal("flash-crowd scenario missing")
	}
	base := ScenarioConfig{Seed: 7, Ops: 1500}
	named := base
	named.Policy = "paper"

	defRep, err := RunScenario(sc, base)
	if err != nil {
		t.Fatal(err)
	}
	namedRep, err := RunScenario(sc, named)
	if err != nil {
		t.Fatal(err)
	}
	if d, n := stripped(t, defRep), stripped(t, namedRep); !bytes.Equal(d, n) {
		t.Errorf("explicit paper policy changed the scenario report:\n default: %s\n paper:   %s", d, n)
	}
}

func TestPaperPolicyChaosByteIdentity(t *testing.T) {
	base := ChaosConfig{Seed: 7, Ops: 2000, FaultRate: 0.2, Shards: 2}
	named := base
	named.Policy = "paper"

	defRes, err := RunChaos(base)
	if err != nil {
		t.Fatal(err)
	}
	namedRes, err := RunChaos(named)
	if err != nil {
		t.Fatal(err)
	}
	// ChaosResult has no wall-clock fields at all; require full equality.
	if !reflect.DeepEqual(defRes, namedRes) {
		d, _ := json.Marshal(defRes)
		n, _ := json.Marshal(namedRes)
		t.Errorf("explicit paper policy changed the chaos report:\n default: %s\n paper:   %s", d, n)
	}
}

func TestPaperPolicyParallelIdentity(t *testing.T) {
	base := ParallelConfig{Clients: 1, Ops: 1000, Seed: 7, Shards: 2}
	named := base
	named.Policy = "paper"

	defRes, err := RunParallel(base)
	if err != nil {
		t.Fatal(err)
	}
	namedRes, err := RunParallel(named)
	if err != nil {
		t.Fatal(err)
	}
	// Only the deterministic lifecycle fields — latency and throughput
	// are wall-clock.
	type determ struct {
		Requested, Admitted, Terminated, Checks, Shards int
		ShardSessions                                   []int
	}
	d := determ{defRes.Requested, defRes.Admitted, defRes.Terminated, defRes.Checks, defRes.Shards, defRes.ShardSessions}
	n := determ{namedRes.Requested, namedRes.Admitted, namedRes.Terminated, namedRes.Checks, namedRes.Shards, namedRes.ShardSessions}
	if !reflect.DeepEqual(d, n) {
		t.Errorf("explicit paper policy changed the parallel run: default %+v, paper %+v", d, n)
	}
}

// TestShadowScenarioByteIdentity is the sim-level shadow-inertness gate:
// turning shadow consultation on must not change the scenario report.
func TestShadowScenarioByteIdentity(t *testing.T) {
	sc, ok := LookupScenario("reneg-storm")
	if !ok {
		t.Fatal("reneg-storm scenario missing")
	}
	base := ScenarioConfig{Seed: 7, Ops: 1500, Shards: 2}
	for _, candidate := range []string{"revenue-greedy", "upgrade-last"} {
		candidate := candidate
		t.Run(candidate, func(t *testing.T) {
			off, err := RunScenario(sc, base)
			if err != nil {
				t.Fatal(err)
			}
			onCfg := base
			onCfg.ShadowPolicy = candidate
			on, err := RunScenario(sc, onCfg)
			if err != nil {
				t.Fatal(err)
			}
			if o, s := stripped(t, off), stripped(t, on); !bytes.Equal(o, s) {
				t.Errorf("shadow %s mutated the run:\n off: %s\n on:  %s", candidate, o, s)
			}
		})
	}
}
