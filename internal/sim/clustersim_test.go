package sim

import "testing"

// The parity acceptance bar: a 3-broker cluster must produce exactly
// the 1-broker outcome sequence for the same workload — N=1 is
// behavior-identical to the single broker, and N=3 placement/fallback
// never changes an admission's fate.
func TestClusterSimParity(t *testing.T) {
	single, err := RunClusterSim(ClusterSimConfig{Brokers: 1, Clients: 4000, Seed: 11})
	if err != nil {
		t.Fatalf("N=1: %v", err)
	}
	multi, err := RunClusterSim(ClusterSimConfig{Brokers: 3, Clients: 4000, Seed: 11})
	if err != nil {
		t.Fatalf("N=3: %v", err)
	}
	for _, r := range []*ClusterSimResult{single, multi} {
		if r.InvariantViolations != 0 {
			t.Fatalf("N=%d: %d invariant violation(s): %v", r.Brokers, r.InvariantViolations, r.Violations)
		}
		if r.Admitted == 0 || r.Rejected == 0 {
			t.Fatalf("N=%d: degenerate workload: %+v", r.Brokers, r)
		}
	}
	if single.OutcomeDigest != multi.OutcomeDigest {
		t.Fatalf("outcome parity broken: N=1 %s (admitted %d, rejected %d) vs N=3 %s (admitted %d, rejected %d)",
			single.OutcomeDigest, single.Admitted, single.Rejected,
			multi.OutcomeDigest, multi.Admitted, multi.Rejected)
	}
	if multi.Migrations == 0 {
		t.Fatalf("N=3 run performed no migrations: %+v", multi)
	}
}

// Same configuration, same digest: the multi-broker run is
// deterministic.
func TestClusterSimDeterministic(t *testing.T) {
	a, err := RunClusterSim(ClusterSimConfig{Brokers: 3, Clients: 3000, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunClusterSim(ClusterSimConfig{Brokers: 3, Clients: 3000, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if a.OutcomeDigest != b.OutcomeDigest || a.Admitted != b.Admitted || a.Migrations != b.Migrations {
		t.Fatalf("non-deterministic: %+v vs %+v", a, b)
	}
}

// The satellite-3 crash interleaving as a harness run: source killed
// after the target committed, recovered from WAL, reconciled — exactly
// one owner, no invariant violations, nothing leaked.
func TestHandoffCrashSingleOwner(t *testing.T) {
	res, err := RunHandoffCrash(HandoffCrashConfig{Brokers: 3, Sessions: 60, Seed: 3, Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if !res.SingleOwner {
		t.Fatalf("expected single owner on %s, got %d owner(s) (last %q): %+v",
			res.Target, res.Owners, res.OwnerDomain, res)
	}
	if res.Completed != 1 {
		t.Fatalf("reconcile completed %d hand-offs, want 1: %+v", res.Completed, res)
	}
	if res.InvariantViolations != 0 {
		t.Fatalf("%d invariant violation(s): %v", res.InvariantViolations, res.Violations)
	}
}
