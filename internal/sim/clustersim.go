package sim

// This file is the multi-broker harness: N independent sim Clusters
// (each its own core.Broker, pool, GARA, GRAM, registry — exactly what
// N aqosd processes would own) behind a cluster.Front, driven by one
// shared manual clock.
//
// Two runners:
//
//   - RunClusterSim drives O(10⁵) simulated clients through front-tier
//     placement with federation fallback, forced hand-off migrations,
//     and the cluster-level invariant oracle at fixed cadences. The
//     per-client outcome sequence is digested (admissions and
//     rejections only — migrations are cluster-internal rebalancing and
//     excluded), and the digest is workload-deterministic AND
//     broker-count-independent: the sliding session window keeps demand
//     far enough under cluster capacity that every regular admission
//     succeeds somewhere, and every oversized probe fails everywhere,
//     so a 3-broker run must reproduce the 1-broker outcome sequence
//     exactly. gridsim gates on that N=1 vs N=3 parity.
//
//   - RunHandoffCrash admits a small durable workload, then kills the
//     hand-off source broker at the worst point — after the target
//     committed the import, before CompleteHandoff — recovers it from
//     its WAL, reconciles, and reports whether exactly one owner
//     survived.

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"os"
	"path/filepath"
	"time"

	"gqosm/internal/clockx"
	"gqosm/internal/cluster"
	"gqosm/internal/core"
	"gqosm/internal/invariant"
	"gqosm/internal/resource"
	"gqosm/internal/sla"
)

// ClusterSimConfig sizes a RunClusterSim run.
type ClusterSimConfig struct {
	// Brokers is the number of broker instances (default 3).
	Brokers int
	// Clients is the number of simulated clients; each performs one
	// admission and participates in the sliding live window (default
	// 100000).
	Clients int
	// Seed drives the deterministic request-size schedule.
	Seed int64
	// Placement is the front tier's policy (default consistent hash,
	// the deterministic one the parity gate uses).
	Placement cluster.Placement
	// Shards is the per-broker shard count (default 1).
	Shards int
	// Window is the live-session cap; the oldest session is terminated
	// when an admission would exceed it (default 64).
	Window int
	// MigrateEvery forces a hand-off of the oldest live session every
	// that many clients when Brokers > 1 (default 512; 0 disables).
	MigrateEvery int
	// CheckEvery is the cluster-invariant cadence in clients (default
	// 2048).
	CheckEvery int
}

// ClusterSimResult reports a RunClusterSim run. Every field is
// deterministic for a configuration except ElapsedMS.
type ClusterSimResult struct {
	Brokers   int    `json:"brokers"`
	Shards    int    `json:"shards"`
	Clients   int    `json:"clients"`
	Seed      int64  `json:"seed"`
	Placement string `json:"placement"`
	Window    int    `json:"window"`

	Admitted  int `json:"admitted"`
	Rejected  int `json:"rejected"`
	Errors    int `json:"errors"`
	Forwarded int `json:"forwarded"`

	Migrations        int `json:"migrations"`
	MigrationFailures int `json:"migration_failures"`

	Checks              int      `json:"checks"`
	InvariantViolations int      `json:"invariant_violations"`
	Violations          []string `json:"violations,omitempty"`

	// OutcomeDigest is the FNV-64a hash of the per-client outcome
	// letters ('A' admitted, 'R' rejected, 'E' error) — the value the
	// N=1 vs N=3 parity gate compares.
	OutcomeDigest string `json:"outcome_digest"`

	// PerBroker reports each member's final live-session count and the
	// total sessions it admitted over the run.
	PerBroker []ClusterBrokerStat `json:"per_broker"`

	ElapsedMS float64 `json:"elapsed_ms"`
}

// ClusterBrokerStat is one member's summary.
type ClusterBrokerStat struct {
	Domain   string  `json:"domain"`
	Sessions int     `json:"sessions"`
	Load     float64 `json:"load"`
}

// clusterPlan is the cluster-wide Algorithm-1 partition the multi-broker
// harness splits across members: roomy enough that the sliding window
// (64 sessions × ≤3 CPU) never exhausts the cluster, small enough that
// hash skew overflows single members and exercises the fallback.
func clusterPlan() core.CapacityPlan {
	return core.CapacityPlan{
		Guaranteed: resource.Capacity{CPU: 192, MemoryMB: 98304, DiskGB: 1920},
		Adaptive:   resource.Capacity{CPU: 48, MemoryMB: 24576, DiskGB: 480},
		BestEffort: resource.Capacity{CPU: 24, MemoryMB: 12288, DiskGB: 240},
	}
}

// clusterMembers assembles n sim Clusters on one shared clock with the
// cluster-wide plan split across them, plus the front over their slots.
func clusterMembers(n, shards int, placement cluster.Placement, clock *clockx.Manual, walRoot string) ([]*Cluster, *cluster.Front, error) {
	plan := clusterPlan()
	parts := plan.Split(n)
	members := make([]*Cluster, n)
	slots := make([]*cluster.Slot, n)
	for i := 0; i < n; i++ {
		cfg := ClusterConfig{
			Plan:   parts[i],
			Domain: fmt.Sprintf("node-%d", i+1),
			// Every member advertises the CLUSTER total so discovery
			// admits any request the cluster could conceivably serve;
			// the allocator (and the federation fallback) decides.
			ServiceCapacity: plan.Total(),
			Shards:          shards,
			Clock:           clock,
		}
		if walRoot != "" {
			cfg.WAL = core.DurabilityConfig{Dir: filepath.Join(walRoot, cfg.Domain)}
		}
		c, err := NewCluster(cfg)
		if err != nil {
			return nil, nil, err
		}
		members[i] = c
		slots[i] = cluster.NewSlot(c.Broker)
	}
	front, err := cluster.New(cluster.Config{Placement: placement}, slots...)
	if err != nil {
		return nil, nil, err
	}
	return members, front, nil
}

func brokersOf(members []*Cluster) []*core.Broker {
	out := make([]*core.Broker, len(members))
	for i, m := range members {
		out[i] = m.Broker
	}
	return out
}

// RunClusterSim drives the multi-broker workload described in the file
// comment. A non-nil error means the harness itself failed; invariant
// violations are reported in the result for the caller to gate on.
func RunClusterSim(cfg ClusterSimConfig) (*ClusterSimResult, error) {
	if cfg.Brokers <= 0 {
		cfg.Brokers = 3
	}
	if cfg.Clients <= 0 {
		cfg.Clients = 100000
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 1
	}
	if cfg.Window <= 0 {
		cfg.Window = 64
	}
	if cfg.MigrateEvery == 0 {
		cfg.MigrateEvery = 512
	}
	if cfg.CheckEvery <= 0 {
		cfg.CheckEvery = 2048
	}

	clock := clockx.NewManual(Epoch)
	members, front, err := clusterMembers(cfg.Brokers, cfg.Shards, cfg.Placement, clock, "")
	if err != nil {
		return nil, err
	}
	defer func() {
		for _, m := range members {
			m.Close()
		}
	}()
	brokers := brokersOf(members)

	res := &ClusterSimResult{
		Brokers: cfg.Brokers, Shards: cfg.Shards, Clients: cfg.Clients,
		Seed: cfg.Seed, Placement: cfg.Placement.String(), Window: cfg.Window,
	}
	record := func(stage string, err error) {
		if err == nil {
			return
		}
		if ie, ok := err.(*invariant.Error); ok {
			res.InvariantViolations += len(ie.Violations)
			// Keep the report bounded: the count gates CI, the first few
			// violations carry the diagnosis.
			for _, v := range ie.Violations {
				if len(res.Violations) < 20 {
					res.Violations = append(res.Violations, stage+": "+v.String())
				}
			}
			return
		}
		res.InvariantViolations++
		if len(res.Violations) < 20 {
			res.Violations = append(res.Violations, stage+": "+err.Error())
		}
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	digest := fnv.New64a()
	var live []sla.ID
	total := clusterPlan().Total()
	start := time.Now()

	for i := 0; i < cfg.Clients; i++ {
		// Fixed draw count per client, so the schedule is identical for
		// every broker count.
		r1 := rng.Intn(3) + 1 // CPU nodes 1–3
		r2 := rng.Intn(4) + 1 // memory/disk scale

		name := fmt.Sprintf("client-%06d", i)
		now := clock.Now()
		req := core.Request{
			Service: "simulation",
			Client:  name,
			Class:   sla.ClassGuaranteed,
			Start:   now,
			End:     now.Add(1000 * time.Hour),
		}
		if i%97 == 96 {
			// Oversized probe: more CPU than the whole cluster owns —
			// must be rejected by every member, under any placement.
			req.Spec = sla.NewSpec(sla.Exact(resource.CPU, total.CPU+16))
		} else {
			req.Spec = sla.NewSpec(
				sla.Exact(resource.CPU, float64(r1)),
				sla.Exact(resource.MemoryMB, float64(128*r2)),
				sla.Exact(resource.DiskGB, float64(r2)),
			)
		}

		offer, err := front.RequestService(req)
		// Settle the fan-out before the next client: a losing peer's offer
		// holds a temporary reservation until its asynchronous retraction
		// lands, and an admission racing that window can see less capacity
		// than the settled state — a (legal, confirm-window-bounded)
		// transient that would make the outcome digest timing-dependent
		// and break the N=1 parity gate this serial driver exists to
		// enforce.
		front.Quiesce()
		switch {
		case err == nil:
			if aerr := front.Accept(offer.SLA.ID); aerr != nil {
				res.Errors++
				digest.Write([]byte{'E'})
				break
			}
			res.Admitted++
			if offer.Forwarded {
				res.Forwarded++
			}
			digest.Write([]byte{'A'})
			live = append(live, offer.SLA.ID)
			if len(live) > cfg.Window {
				oldest := live[0]
				live = live[1:]
				if terr := front.Terminate(oldest, "window slide"); terr != nil {
					record(fmt.Sprintf("client %d terminate %s", i, oldest), terr)
				}
			}
		case isClusterReject(err):
			res.Rejected++
			digest.Write([]byte{'R'})
		default:
			res.Errors++
			digest.Write([]byte{'E'})
		}

		// Forced rebalancing migrations — cluster-internal, so they are
		// deliberately NOT part of the outcome digest.
		if cfg.Brokers > 1 && cfg.MigrateEvery > 0 && i%cfg.MigrateEvery == cfg.MigrateEvery-1 && len(live) > 0 {
			id := live[0]
			if dom, ok := front.Owner(id); ok {
				var idx int
				for j, s := range front.Slots() {
					if s.Domain() == dom {
						idx = j
						break
					}
				}
				target := front.Slots()[(idx+1)%cfg.Brokers].Domain()
				if merr := front.Migrate(id, target); merr == nil {
					res.Migrations++
				} else {
					res.MigrationFailures++
				}
			}
		}

		if i%16 == 15 {
			clock.Advance(time.Second)
		}
		if i%cfg.CheckEvery == cfg.CheckEvery-1 {
			res.Checks++
			// Quiesce before checking: a fan-out's slow losers and their
			// retractions are still committing/tearing down in background
			// goroutines, and the per-broker suite would read their
			// half-installed sessions as violations.
			front.Quiesce()
			record(fmt.Sprintf("client %d", i), invariant.CheckCluster(brokers...))
			for _, b := range brokers {
				b.PruneTerminal()
			}
		}
	}

	// Drain the window, then the full final suite: cluster invariants,
	// per-broker reservation hygiene, and capacity restoration. Quiesce
	// first — a losing fan-out offer whose retraction is still in flight
	// would read as a leaked reservation.
	front.Quiesce()
	for _, id := range live {
		if err := front.Terminate(id, "drain"); err != nil {
			record(fmt.Sprintf("drain %s", id), err)
		}
	}
	res.Checks++
	record("post-drain", invariant.CheckCluster(brokers...))
	for i, m := range members {
		record(fmt.Sprintf("post-drain %s", m.Broker.Domain()),
			invariant.CheckReservations(m.Broker, m.GARA, invariant.ReservationCheck{Final: true}))
		for si, alloc := range m.Broker.Allocators() {
			if users := alloc.GuaranteedUsers(); len(users) != 0 {
				res.InvariantViolations++
				if len(res.Violations) < 20 {
					res.Violations = append(res.Violations, fmt.Sprintf(
						"drain: broker %d shard %d: %d guaranteed grant(s) survive", i, si, len(users)))
				}
			}
		}
	}

	for _, b := range brokers {
		r := b.LoadReport()
		res.PerBroker = append(res.PerBroker, ClusterBrokerStat{
			Domain: r.Domain, Sessions: r.Sessions, Load: r.Load,
		})
	}
	res.OutcomeDigest = fmt.Sprintf("%016x", digest.Sum64())
	res.ElapsedMS = float64(time.Since(start).Microseconds()) / 1000
	return res, nil
}

// isClusterReject classifies the errors that mean "the cluster refused
// this request" (identical for one broker and many) rather than a
// harness failure.
func isClusterReject(err error) bool {
	return errorIsAny(err,
		core.ErrNoDomainCanServe, core.ErrCannotHonor,
		core.ErrNoService, core.ErrOverBudget)
}

func errorIsAny(err error, targets ...error) bool {
	for _, t := range targets {
		if errors.Is(err, t) {
			return true
		}
	}
	return false
}

// HandoffCrashConfig sizes a RunHandoffCrash run.
type HandoffCrashConfig struct {
	// Brokers is the member count (default 3).
	Brokers int
	// Sessions is how many sessions to admit before the forced
	// migration (default 48 — small enough that even the worst-case
	// request schedule fits the cluster's guaranteed partition, since
	// this runner never slides a window).
	Sessions int
	// Seed drives the request-size schedule.
	Seed int64
	// Dir is the WAL root (one subdirectory per member); empty creates
	// and removes a temporary root.
	Dir string
}

// HandoffCrashResult reports a RunHandoffCrash run.
type HandoffCrashResult struct {
	Brokers  int   `json:"brokers"`
	Sessions int   `json:"sessions"`
	Seed     int64 `json:"seed"`

	MigratedID string `json:"migrated_id"`
	Source     string `json:"source"`
	Target     string `json:"target"`

	// SingleOwner is the acceptance bar: after the source is killed
	// mid-migration (import committed, completion not), recovered, and
	// reconciled, exactly one broker owns the session.
	SingleOwner bool   `json:"single_owner"`
	Owners      int    `json:"owners"`
	OwnerDomain string `json:"owner_domain"`

	// Completed/Aborted are the front reconcile's counters;
	// HandoffsResolved is the source recovery's inbound sweep.
	Completed        int `json:"completed"`
	Aborted          int `json:"aborted"`
	HandoffsResolved int `json:"handoffs_resolved"`
	ReplayedRecords  int `json:"replayed_records"`

	Checks              int      `json:"checks"`
	InvariantViolations int      `json:"invariant_violations"`
	Violations          []string `json:"violations,omitempty"`

	ElapsedMS float64 `json:"elapsed_ms"`
}

// RunHandoffCrash drives the satellite-3 interleaving end to end on
// durable brokers: admit, begin hand-off, import on the target, kill
// the source before CompleteHandoff, recover it from its WAL, reconcile
// via the front, and verify the single-owner outcome plus the full
// invariant suite after a drain.
func RunHandoffCrash(cfg HandoffCrashConfig) (*HandoffCrashResult, error) {
	if cfg.Brokers <= 0 {
		cfg.Brokers = 3
	}
	if cfg.Sessions <= 0 {
		cfg.Sessions = 48
	}
	if cfg.Dir == "" {
		dir, err := os.MkdirTemp("", "gqosm-cluster-wal-*")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
		cfg.Dir = dir
	}

	clock := clockx.NewManual(Epoch)
	members, front, err := clusterMembers(cfg.Brokers, 1, cluster.PlaceHash, clock, cfg.Dir)
	if err != nil {
		return nil, err
	}
	defer func() {
		for _, m := range members {
			m.Close()
		}
	}()

	res := &HandoffCrashResult{Brokers: cfg.Brokers, Sessions: cfg.Sessions, Seed: cfg.Seed}
	record := func(stage string, err error) {
		if err == nil {
			return
		}
		if ie, ok := err.(*invariant.Error); ok {
			res.InvariantViolations += len(ie.Violations)
			for _, v := range ie.Violations {
				if len(res.Violations) < 20 {
					res.Violations = append(res.Violations, stage+": "+v.String())
				}
			}
			return
		}
		res.InvariantViolations++
		if len(res.Violations) < 20 {
			res.Violations = append(res.Violations, stage+": "+err.Error())
		}
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	var live []sla.ID
	start := time.Now()
	for i := 0; i < cfg.Sessions; i++ {
		r1 := rng.Intn(3) + 1
		now := clock.Now()
		offer, err := front.RequestService(core.Request{
			Service: "simulation",
			Client:  fmt.Sprintf("hc-client-%03d", i),
			Class:   sla.ClassGuaranteed,
			Spec:    sla.NewSpec(sla.Exact(resource.CPU, float64(r1))),
			Start:   now,
			End:     now.Add(1000 * time.Hour),
		})
		// Same per-admission settling as RunClusterSim: every session here
		// MUST admit, and a still-unretracted losing offer could transiently
		// crowd one out.
		front.Quiesce()
		if err != nil {
			return res, fmt.Errorf("admission %d: %w", i, err)
		}
		if err := front.Accept(offer.SLA.ID); err != nil {
			return res, fmt.Errorf("accept %d: %w", i, err)
		}
		live = append(live, offer.SLA.ID)
		if i%8 == 7 {
			clock.Advance(time.Second)
		}
	}

	// Let the fan-out's background retractions settle before the crash
	// drill and its invariant checkpoints.
	front.Quiesce()

	// Pick a migration pair: the first live session, toward the next
	// slot. The front is NOT used for the migration itself — the crash
	// must land between ImportSession and CompleteHandoff, a window
	// Front.Migrate does not expose.
	id := live[0]
	srcDom, ok := front.Owner(id)
	if !ok {
		return res, fmt.Errorf("no owner recorded for %s", id)
	}
	srcIdx := 0
	for j, s := range front.Slots() {
		if s.Domain() == srcDom {
			srcIdx = j
			break
		}
	}
	tgtIdx := (srcIdx + 1) % cfg.Brokers
	srcSlot, tgtSlot := front.Slots()[srcIdx], front.Slots()[tgtIdx]
	res.MigratedID, res.Source, res.Target = string(id), srcSlot.Domain(), tgtSlot.Domain()

	st, err := srcSlot.Broker().BeginHandoff(id, tgtSlot.Domain())
	if err != nil {
		return res, fmt.Errorf("begin handoff: %w", err)
	}
	if err := tgtSlot.Broker().ImportSession(st); err != nil {
		return res, fmt.Errorf("import: %w", err)
	}

	// The worst crash point: the target committed, the source still
	// thinks it owns the session and holds the journaled out-intent.
	srcSlot.MarkRecovering(true)
	srcSlot.Broker().Crash()
	stats, err := members[srcIdx].RecoverBroker()
	if err != nil {
		return res, fmt.Errorf("recover: %w", err)
	}
	res.HandoffsResolved = stats.HandoffsResolved
	res.ReplayedRecords = stats.ReplayedRecords
	if err := srcSlot.Swap(members[srcIdx].Broker); err != nil {
		return res, err
	}
	res.Completed, res.Aborted = front.ReconcileHandoffs()

	brokers := brokersOf(members)
	owners := 0
	for _, b := range brokers {
		if doc, err := b.Session(id); err == nil && !doc.State.Terminal() {
			owners++
			res.OwnerDomain = b.Domain()
		}
	}
	res.Owners = owners
	res.SingleOwner = owners == 1 && res.OwnerDomain == tgtSlot.Domain()
	res.Checks++
	record("post-reconcile", invariant.CheckCluster(brokers...))

	// Drain and run the final suite.
	for _, sid := range live {
		if _, ok := front.Owner(sid); ok {
			if err := front.Terminate(sid, "drain"); err != nil {
				record(fmt.Sprintf("drain %s", sid), err)
			}
		}
	}
	res.Checks++
	record("post-drain", invariant.CheckCluster(brokers...))
	for _, m := range members {
		record(fmt.Sprintf("post-drain %s", m.Broker.Domain()),
			invariant.CheckReservations(m.Broker, m.GARA, invariant.ReservationCheck{Final: true}))
	}
	res.ElapsedMS = float64(time.Since(start).Microseconds()) / 1000
	return res, nil
}
