package sim

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"gqosm/internal/clockx"
	"gqosm/internal/core"
	"gqosm/internal/invariant"
	"gqosm/internal/obs"
	"gqosm/internal/pricing"
	"gqosm/internal/resource"
	"gqosm/internal/sla"
)

// This file is the scenario harness: a library of named traffic shapes
// (see scenarios.go) replayed against a full cluster by one serial,
// deterministic driver. Scenarios reuse the chaos harness's determinism
// discipline — one manual clock, serial client behavior, seeded PRNG
// streams with fixed draw order — so a (scenario, seed, shards) triple
// produces a byte-identical report, except for the wall-clock latency
// block, which is kept under a single JSON key so CI can strip it before
// diffing (jq 'del(.latency)').

// OfferAction is a scenario client's reaction to a negotiated offer.
type OfferAction int

const (
	// OfferAccept confirms the offer immediately (the default).
	OfferAccept OfferAction = iota
	// OfferReject declines the offer explicitly.
	OfferReject
	// OfferAbandon walks away: the offer rides until the confirm window
	// expires it.
	OfferAbandon
	// OfferAcceptAtExpiry moves the clock to the offer's exact expiry
	// instant and only then tries to confirm — the lease-churn abuse.
	// The confirm timer fires during the clock move, so the accept
	// deterministically loses the race; the scenario asserts the broker
	// survives it cleanly.
	OfferAcceptAtExpiry
)

// Scenario is one named traffic shape plus the client behavior and
// assertions that give it teeth. Hooks are optional except Workload;
// nil hooks fall back to plain accept-and-hold clients.
type Scenario struct {
	Name  string
	About string
	// ConfirmWindow overrides the cluster's offer window (default 2m).
	ConfirmWindow time.Duration
	// Workload builds the trace generator, sized so the run performs
	// roughly cfg.Ops broker operations (~3 per negotiated arrival).
	// The driver forces Seed to cfg.Seed.
	Workload func(cfg ScenarioConfig) Workload
	// Shape rewrites arrival i after generation; rng is a dedicated
	// shaping stream (cfg.Seed+1) so trace and shape draws never
	// interleave.
	Shape func(cfg ScenarioConfig, rng *rand.Rand, i int, a Arrival) Arrival
	// Request builds the negotiation request for arrival i; nil uses
	// ScenarioRun.DefaultRequest. Not consulted for best-effort
	// arrivals, which go through the BestEffortRequest path.
	Request func(run *ScenarioRun, i int, a Arrival) core.Request
	// OnOffer picks the client's reaction to an offer; nil accepts.
	OnOffer func(run *ScenarioRun, i int, a Arrival, offer *core.Offer) OfferAction
	// AfterArrival runs after arrival i resolved (admitted reports the
	// outcome; id is empty for best-effort and failed arrivals) — the
	// place for renegotiations and other follow-on client behavior.
	AfterArrival func(run *ScenarioRun, i int, a Arrival, id sla.ID, admitted bool)
	// Verify asserts scenario-specific report properties after the
	// drain; a non-nil error lands in Report.VerifyErrors.
	Verify func(r *ScenarioReport) error
}

// ScenarioConfig sizes a scenario run.
type ScenarioConfig struct {
	// Seed drives every PRNG stream in the run.
	Seed int64
	// Ops targets the number of broker operations (default 6000).
	Ops int
	// Phases is the number of mid-run quiesce points (default 10).
	Phases int
	// Shards is the broker shard count (default 1).
	Shards int
	// Plan is the Algorithm-1 partition; defaults to the §5.6 one.
	Plan core.CapacityPlan
	// Obs receives the run's metrics; nil creates a private registry.
	Obs *obs.Registry
	// Prune, when set, compacts terminal state (broker sessions, GARA
	// reservations, GRAM jobs) at every quiesce and bounds the ledger —
	// the soak harness's working-set bound. Off by default so short
	// runs keep full post-mortem state.
	Prune bool
	// Policy names the broker's adaptation policy ("" = "paper").
	Policy string
	// ShadowPolicy, when set, consults the named candidate policy in
	// shadow at every broker decision point (see core.Config.ShadowPolicy).
	ShadowPolicy string
}

func (cfg ScenarioConfig) withDefaults() ScenarioConfig {
	if cfg.Ops <= 0 {
		cfg.Ops = 6000
	}
	if cfg.Phases <= 0 {
		cfg.Phases = 10
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 1
	}
	if cfg.Plan.Total().IsZero() {
		cfg.Plan = DefaultParallelPlan()
	}
	if cfg.Obs == nil {
		cfg.Obs = obs.NewRegistry()
	}
	return cfg
}

// LatencySummary holds wall-clock admission-latency percentiles. It is
// the report's only non-deterministic block: strip it (jq
// 'del(.latency)') before byte-diffing reports across runs.
type LatencySummary struct {
	P50MS   float64 `json:"p50_ms"`
	P95MS   float64 `json:"p95_ms"`
	P99MS   float64 `json:"p99_ms"`
	Samples int     `json:"samples"`
}

// ScenarioReport is one scenario run's result. Everything outside
// Latency is deterministic for a (scenario, seed, shards, ops) tuple.
type ScenarioReport struct {
	Scenario string `json:"scenario"`
	Seed     int64  `json:"seed"`
	Shards   int    `json:"shards"`
	Arrivals int    `json:"arrivals"`
	// Ops counts broker API calls the driver actually made.
	Ops int64 `json:"ops"`

	Requested      int     `json:"requested"`
	Admitted       int     `json:"admitted"`
	Rejected       int     `json:"rejected"`
	ExpiredOffers  int     `json:"expired_offers"`
	Renegotiations int     `json:"renegotiations"`
	RenegFailures  int     `json:"reneg_failures"`
	Terminated     int     `json:"terminated"`
	AdmitRate      float64 `json:"admit_rate"`

	Degradations int64   `json:"degradations"`
	Restorations int64   `json:"restorations"`
	Promotions   int64   `json:"promotions"`
	Revenue      float64 `json:"revenue"`

	// Extras carries scenario-specific deterministic gauges (spike
	// ratios, budget refusals, boundary races…), keyed per scenario.
	Extras map[string]float64 `json:"extras,omitempty"`

	InvariantViolations int      `json:"invariant_violations"`
	Checks              int      `json:"checks"`
	Violations          []string `json:"violations,omitempty"`
	VerifyErrors        []string `json:"verify_errors,omitempty"`

	Latency *LatencySummary `json:"latency,omitempty"`
}

// Failed reports whether CI should gate the run red: any oracle
// violation or scenario assertion failure.
func (r *ScenarioReport) Failed() bool {
	return r.InvariantViolations > 0 || len(r.VerifyErrors) > 0
}

// departure is a scheduled session end (or best-effort release).
type departure struct {
	at     time.Time
	seq    int // creation order, the deterministic tie-break
	id     sla.ID
	client string // best-effort departures release by client
}

type departureHeap []departure

func (h departureHeap) Len() int { return len(h) }
func (h departureHeap) Less(i, j int) bool {
	if !h[i].at.Equal(h[j].at) {
		return h[i].at.Before(h[j].at)
	}
	return h[i].seq < h[j].seq
}
func (h departureHeap) Swap(i, j int)   { h[i], h[j] = h[j], h[i] }
func (h *departureHeap) Push(x any)     { *h = append(*h, x.(departure)) }
func (h *departureHeap) Pop() any       { old := *h; n := len(old); d := old[n-1]; *h = old[:n-1]; return d }
func (h departureHeap) peek() departure { return h[0] }

// ScenarioRun is the driver state a scenario's hooks see.
type ScenarioRun struct {
	Cfg     ScenarioConfig
	Cluster *Cluster
	Clock   *clockx.Manual
	// RNG is the client-behavior stream (cfg.Seed+2), drawn only by
	// hooks — never by the driver — so a scenario's draws stay stable
	// when the driver changes.
	RNG *rand.Rand
	// Accounts are per-tenant budgets for economic scenarios; hooks
	// create entries on first use via Account.
	Accounts map[string]*pricing.Account
	Report   *ScenarioReport

	confirmWindow time.Duration
	departures    departureHeap
	depSeq        int
	// live holds negotiated sessions believed active, for hooks that
	// pick renegotiation targets; lazily compacted.
	live []sla.ID

	latencies []float64 // admission wall-clock ms, in call order

	// window aggregation for soak sampling (nil outside RunSoak).
	onOp func()
}

// Account returns the named tenant's budget account, creating it with
// the given limit on first use.
func (run *ScenarioRun) Account(tenant string, limit float64) *pricing.Account {
	if a, ok := run.Accounts[tenant]; ok {
		return a
	}
	a := pricing.NewAccount(limit)
	run.Accounts[tenant] = a
	return a
}

// Extra adds v to the named deterministic gauge.
func (run *ScenarioRun) Extra(key string, v float64) {
	if run.Report.Extras == nil {
		run.Report.Extras = make(map[string]float64)
	}
	run.Report.Extras[key] += v
}

// op counts one broker API call (and drives soak window sampling).
func (run *ScenarioRun) op() {
	run.Report.Ops++
	if run.onOp != nil {
		run.onOp()
	}
}

// LiveSessions returns the compacted list of sessions still active —
// the pool renegotiation hooks draw targets from.
func (run *ScenarioRun) LiveSessions() []sla.ID {
	kept := run.live[:0]
	for _, id := range run.live {
		if doc, err := run.Cluster.Broker.Session(id); err == nil && !doc.State.Terminal() {
			kept = append(kept, id)
		}
	}
	run.live = kept
	return run.live
}

// DefaultRequest is the stock request for an arrival: guaranteed
// arrivals ask exact capacity, controlled-load arrivals a [half, full]
// range with the arrival's willingness flags.
func (run *ScenarioRun) DefaultRequest(i int, a Arrival) core.Request {
	now := run.Clock.Now()
	req := core.Request{
		Service: "simulation",
		Client:  fmt.Sprintf("tenant-%02d", i%8),
		Class:   a.Class,
		Start:   now,
		End:     now.Add(a.Hold),
	}
	switch a.Class {
	case sla.ClassControlledLoad:
		floor := math.Max(1, math.Floor(a.Nodes/2))
		req.Spec = sla.NewSpec(sla.Range(resource.CPU, floor, a.Nodes))
		req.AcceptDegradation = a.Willing
		req.PromotionOptIn = a.Willing
	default:
		req.Spec = sla.NewSpec(sla.Exact(resource.CPU, a.Nodes))
		req.AcceptDegradation = a.Willing
	}
	return req
}

// Scenarios returns the built-in library, sorted by name.
func Scenarios() []Scenario {
	out := append([]Scenario(nil), builtinScenarios...)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// LookupScenario finds a built-in scenario by name.
func LookupScenario(name string) (Scenario, bool) {
	for _, sc := range builtinScenarios {
		if sc.Name == name {
			return sc, true
		}
	}
	return Scenario{}, false
}

// RunScenario replays one scenario and returns its report. A non-nil
// error means the harness itself failed; oracle violations and scenario
// assertion failures land in the report (see ScenarioReport.Failed) so
// CI always has a report to gate on.
func RunScenario(sc Scenario, cfg ScenarioConfig) (*ScenarioReport, error) {
	run, err := newScenarioRun(sc, cfg)
	if err != nil {
		return nil, err
	}
	defer run.Cluster.Close()
	if err := run.play(sc, nil); err != nil {
		return run.Report, err
	}
	run.finish(sc)
	return run.Report, nil
}

// RunScenarioObserved is RunScenario with the soak harness's quiesce hook
// exposed: afterQuiesce (when non-nil) runs at every phase barrier with
// the live run, letting a caller sample mid-run state — the shadow lab
// uses it to average allocator utilization across phases.
func RunScenarioObserved(sc Scenario, cfg ScenarioConfig, afterQuiesce func(run *ScenarioRun, phase int)) (*ScenarioReport, error) {
	run, err := newScenarioRun(sc, cfg)
	if err != nil {
		return nil, err
	}
	defer run.Cluster.Close()
	var hook func(int)
	if afterQuiesce != nil {
		hook = func(phase int) { afterQuiesce(run, phase) }
	}
	if err := run.play(sc, hook); err != nil {
		return run.Report, err
	}
	run.finish(sc)
	return run.Report, nil
}

func newScenarioRun(sc Scenario, cfg ScenarioConfig) (*ScenarioRun, error) {
	cfg = cfg.withDefaults()
	confirm := sc.ConfirmWindow
	if confirm <= 0 {
		confirm = 2 * time.Minute
	}
	clock := clockx.NewManual(Epoch)
	cluster, err := NewCluster(ClusterConfig{
		Plan:          cfg.Plan,
		Shards:        cfg.Shards,
		ConfirmWindow: confirm,
		Obs:           cfg.Obs,
		Clock:         clock,
		Policy:        cfg.Policy,
		ShadowPolicy:  cfg.ShadowPolicy,
	})
	if err != nil {
		return nil, err
	}
	return &ScenarioRun{
		Cfg:           cfg,
		Cluster:       cluster,
		Clock:         clock,
		RNG:           rand.New(rand.NewSource(cfg.Seed + 2)),
		Accounts:      make(map[string]*pricing.Account),
		confirmWindow: confirm,
		Report: &ScenarioReport{
			Scenario: sc.Name,
			Seed:     cfg.Seed,
			Shards:   cfg.Shards,
		},
	}, nil
}

// play generates the trace and replays it; quiesce runs the oracle at
// every phase barrier and afterQuiesce (when non-nil) lets the soak
// harness sample between phases.
func (run *ScenarioRun) play(sc Scenario, afterQuiesce func(phase int)) error {
	cfg := run.Cfg
	wl := sc.Workload(cfg)
	wl.Seed = cfg.Seed
	trace := wl.Trace()
	if sc.Shape != nil {
		shapeRNG := rand.New(rand.NewSource(cfg.Seed + 1))
		for i := range trace {
			trace[i] = sc.Shape(cfg, shapeRNG, i, trace[i])
		}
	}
	run.Report.Arrivals = len(trace)
	if len(trace) == 0 {
		return fmt.Errorf("sim: scenario %q generated an empty trace", sc.Name)
	}

	qEvery := len(trace) / cfg.Phases
	if qEvery < 1 {
		qEvery = 1
	}
	for i, a := range trace {
		now := Epoch.Add(a.At)
		run.processDepartures(now)
		run.Clock.Set(now)
		run.arrive(sc, i, a)
		if (i+1)%qEvery == 0 {
			phase := (i + 1) / qEvery
			run.quiesce(fmt.Sprintf("phase %d", phase), false)
			if afterQuiesce != nil {
				afterQuiesce(phase)
			}
		}
	}

	// Drain: run out the departure queue, expire everything else, then
	// hold the final oracle pass to the stricter drain-only rules.
	run.processDepartures(Epoch.Add(wl.Duration).Add(1000 * time.Hour))
	run.Clock.Advance(72 * time.Hour)
	run.op()
	run.Cluster.Broker.ExpireDue()
	run.Cluster.Broker.ReconcileReservations()
	run.quiesce("post-drain", true)
	return nil
}

func (run *ScenarioRun) processDepartures(until time.Time) {
	b := run.Cluster.Broker
	for len(run.departures) > 0 && !run.departures.peek().at.After(until) {
		d := heap.Pop(&run.departures).(departure)
		run.Clock.Set(d.at)
		run.op()
		if d.client != "" {
			_ = b.BestEffortRelease(d.client)
			continue
		}
		if err := b.Terminate(d.id, "hold elapsed"); err == nil {
			run.Report.Terminated++
		}
	}
}

func (run *ScenarioRun) arrive(sc Scenario, i int, a Arrival) {
	b := run.Cluster.Broker
	r := run.Report

	if a.Class == sla.ClassBestEffort {
		client := fmt.Sprintf("be-%d", i)
		run.op()
		r.Requested++
		if err := b.BestEffortRequest(client, resource.Nodes(a.Nodes)); err != nil {
			r.Rejected++
			if sc.AfterArrival != nil {
				sc.AfterArrival(run, i, a, "", false)
			}
			return
		}
		r.Admitted++
		run.depSeq++
		heap.Push(&run.departures, departure{at: run.Clock.Now().Add(a.Hold), seq: run.depSeq, client: client})
		if sc.AfterArrival != nil {
			sc.AfterArrival(run, i, a, "", true)
		}
		return
	}

	var req core.Request
	if sc.Request != nil {
		req = sc.Request(run, i, a)
	} else {
		req = run.DefaultRequest(i, a)
	}
	run.op()
	r.Requested++
	wallStart := time.Now()
	offer, err := b.RequestService(req)
	run.latencies = append(run.latencies, float64(time.Since(wallStart))/float64(time.Millisecond))
	if err != nil {
		r.Rejected++
		if errors.Is(err, core.ErrOverBudget) {
			// The broker refused before an offer was even made: the
			// request's budget does not cover the floor price. The
			// economic scenario gates on this counter.
			run.Extra("over_budget_rejects", 1)
		}
		if sc.AfterArrival != nil {
			sc.AfterArrival(run, i, a, "", false)
		}
		return
	}

	action := OfferAccept
	if sc.OnOffer != nil {
		action = sc.OnOffer(run, i, a, offer)
	}
	id := offer.SLA.ID
	switch action {
	case OfferReject:
		run.op()
		_ = b.Reject(id)
		r.Rejected++
		id = ""
	case OfferAbandon:
		// The confirm timer expires the offer when the clock next moves
		// past the window; count it now — deterministically — rather
		// than reverse-engineering it from broker state later.
		r.ExpiredOffers++
		id = ""
	case OfferAcceptAtExpiry:
		run.Clock.Set(offer.Expires)
		run.op()
		if err := b.Accept(id); err != nil {
			// The timer fired during the Set: the offer expired a
			// virtual instant before the accept. This is the boundary
			// race the lease-churn scenario exists to hammer.
			r.ExpiredOffers++
			run.Extra("boundary_races", 1)
			id = ""
		} else {
			r.Admitted++
			run.admitted(id, offer.SLA.End)
		}
	default:
		run.op()
		if err := b.Accept(id); err != nil {
			r.Rejected++
			id = ""
		} else {
			r.Admitted++
			run.admitted(id, offer.SLA.End)
		}
	}
	if sc.AfterArrival != nil {
		sc.AfterArrival(run, i, a, id, id != "")
	}
}

func (run *ScenarioRun) admitted(id sla.ID, end time.Time) {
	run.depSeq++
	heap.Push(&run.departures, departure{at: end, seq: run.depSeq, id: id})
	run.live = append(run.live, id)
}

// Renegotiate is the hook-facing renegotiation wrapper: it counts the
// attempt, the failure and the op.
func (run *ScenarioRun) Renegotiate(id sla.ID, spec sla.Spec) bool {
	run.op()
	run.Report.Renegotiations++
	if _, err := run.Cluster.Broker.Renegotiate(id, spec); err != nil {
		run.Report.RenegFailures++
		return false
	}
	return true
}

func (run *ScenarioRun) quiesce(stage string, final bool) {
	b := run.Cluster.Broker
	now := run.Clock.Now()
	run.op()
	b.ExpireDue()
	if run.Cfg.Prune {
		b.PruneTerminal()
		run.Cluster.GARA.PruneCanceled()
		run.Cluster.GRAM.PruneTerminal()
	}
	record := func(err error) {
		if err == nil {
			return
		}
		if ie, ok := err.(*invariant.Error); ok {
			run.Report.InvariantViolations += len(ie.Violations)
			for _, v := range ie.Violations {
				run.Report.Violations = append(run.Report.Violations, stage+": "+v.String())
			}
			return
		}
		run.Report.InvariantViolations++
		run.Report.Violations = append(run.Report.Violations, stage+": "+err.Error())
	}
	run.Report.Checks++
	record(invariant.CheckAll(b, now, run.Cluster.Pool))
	record(invariant.CheckReservations(b, run.Cluster.GARA, invariant.ReservationCheck{Final: final}))
	record(invariant.CheckLifecycle(b, now, invariant.LifecycleCheck{ConfirmWindow: run.confirmWindow}))
}

func (run *ScenarioRun) finish(sc Scenario) {
	r := run.Report
	if r.Requested > 0 {
		r.AdmitRate = float64(r.Admitted) / float64(r.Requested)
	}
	lifecycle := func(event string) int64 {
		return int64(run.Cfg.Obs.Counter("gqosm_broker_lifecycle_total",
			"SLA lifecycle events by kind", "event", event).Value())
	}
	r.Degradations = lifecycle("degrade")
	r.Restorations = lifecycle("restore")
	r.Promotions = lifecycle("promote")
	r.Revenue = run.Cluster.Broker.Ledger().NetRevenue()
	r.Latency = summarizeLatency(run.latencies)
	if sc.Verify != nil {
		if err := sc.Verify(r); err != nil {
			r.VerifyErrors = append(r.VerifyErrors, err.Error())
		}
	}
}

func summarizeLatency(ms []float64) *LatencySummary {
	if len(ms) == 0 {
		return nil
	}
	s := append([]float64(nil), ms...)
	sort.Float64s(s)
	return &LatencySummary{
		P50MS:   percentile(s, 0.50),
		P95MS:   percentile(s, 0.95),
		P99MS:   percentile(s, 0.99),
		Samples: len(s),
	}
}

// percentile reads the nearest-rank percentile from an ascending slice.
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(math.Ceil(p*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}
