package sim

import (
	"bytes"
	"encoding/json"
	"os"
	"testing"
)

// Satellite 3: soak stability. The quick variant always runs (seconds);
// the full ≥1M-op variant is opt-in via GQOSM_FULL_SOAK because its
// wall-time (minutes under -race) does not belong in the tier-1 loop —
// the CI soak job sets the variable.

func runSoak(t *testing.T, name string, cfg SoakConfig) *SoakReport {
	t.Helper()
	sc, ok := LookupScenario(name)
	if !ok {
		t.Fatalf("unknown scenario %q", name)
	}
	r, err := RunSoak(sc, cfg)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	return r
}

func checkStable(t *testing.T, r *SoakReport) {
	t.Helper()
	if r.InvariantViolations != 0 {
		t.Errorf("%s: invariant violations: %v", r.Scenario, r.Violations)
	}
	if len(r.VerifyErrors) != 0 {
		t.Errorf("%s: verify errors: %v", r.Scenario, r.VerifyErrors)
	}
	if r.Soak == nil || !r.Soak.Stable {
		t.Errorf("%s: unstable: %+v", r.Scenario, r.Soak)
	}
	if r.Failed() {
		t.Errorf("%s: report marked failed", r.Scenario)
	}
	s := r.Soak
	if s.GoroutinesMax > s.GoroutinesStart+16 {
		t.Errorf("%s: goroutines %d -> %d", r.Scenario, s.GoroutinesStart, s.GoroutinesMax)
	}
	if len(s.Windows) < 2 {
		t.Errorf("%s: only %d sampling windows", r.Scenario, len(s.Windows))
	}
}

func TestSoakStabilityQuick(t *testing.T) {
	ops := 60000
	if testing.Short() {
		ops = 20000
	}
	for _, name := range []string{"diurnal", "lease-churn"} {
		name := name
		t.Run(name, func(t *testing.T) {
			r := runSoak(t, name, SoakConfig{
				ScenarioConfig: ScenarioConfig{Seed: 1, Ops: ops},
				Windows:        20,
			})
			checkStable(t, r)
			if r.Ops < int64(ops)/4 {
				t.Errorf("executed only %d broker ops for a %d-op budget", r.Ops, ops)
			}
		})
	}
}

// TestSoakStabilityFull is the acceptance soak: over one million broker
// operations on the virtual clock with the oracle checked continuously,
// bounded goroutines and heap, and a flat admission p99.
func TestSoakStabilityFull(t *testing.T) {
	if testing.Short() {
		t.Skip("full soak skipped in -short mode")
	}
	if os.Getenv("GQOSM_FULL_SOAK") == "" {
		t.Skip("full soak is opt-in: set GQOSM_FULL_SOAK=1 (CI soak job does)")
	}
	r := runSoak(t, "diurnal", SoakConfig{
		// ~0.58 executed broker ops per budgeted op for diurnal (rejected
		// arrivals are single-call), so a 2M budget clears 1M executed.
		ScenarioConfig: ScenarioConfig{Seed: 1, Ops: 2000000},
		Windows:        100,
	})
	checkStable(t, r)
	if r.Ops < 1000000 {
		t.Errorf("executed %d broker ops, want >= 1M", r.Ops)
	}
}

// The deterministic core of a soak report (everything but the latency
// and soak blocks) must be byte-identical across runs with one seed.
func TestSoakDeterministicCore(t *testing.T) {
	core := func(r *SoakReport) []byte {
		cp := r.ScenarioReport
		cp.Latency = nil
		j, err := json.Marshal(cp)
		if err != nil {
			t.Fatal(err)
		}
		return j
	}
	cfg := SoakConfig{ScenarioConfig: ScenarioConfig{Seed: 3, Ops: 15000}, Windows: 10}
	r1 := runSoak(t, "lease-churn", cfg)
	r2 := runSoak(t, "lease-churn", cfg)
	if !bytes.Equal(core(r1), core(r2)) {
		t.Errorf("nondeterministic soak core:\n%s\nvs\n%s", core(r1), core(r2))
	}
	if r1.Soak == nil || len(r1.Soak.Windows) == 0 {
		t.Errorf("soak block missing")
	}
}
