package sim

import (
	"fmt"
	"strings"
	"time"

	"gqosm/internal/core"
	"gqosm/internal/resource"
	"gqosm/internal/sla"
)

// This file replays the paper's §5.6 worked example (experiment E56): the
// collaborative simulation over sites A/B/C with the composite SLA
// (SLA_net1: 622 Mbps B→A, SLA_net2: 45 Mbps C→A, SLA_comp: 10 processor
// nodes + 2 GB memory + 15 GB disk on the site-A machine), the 15+6+5
// partition of the 26 Grid-visible processors, the best-effort surge, the
// t2 failure of three guaranteed-pool processors, the t3 recovery, and the
// SLA expiry with scenario-2 upgrades.
//
// Reconstruction note (see DESIGN.md §4): the camera-ready measurement
// list is OCR-corrupted; the unambiguous digits are reproduced exactly by
// this event script with the accounting rule "best effort fills C_B, then
// idle C_G, then idle C_A":
//
//	t0: G pool g=10 b=5 (paper: "g = 10, b = 5")
//	t1: G pool g=4  b=11 (paper: "g = 4, b = 11")
//	t3: G pool g=14 b=1  (paper: "g = 14, b = 1")
//	t4: G pool g=4  b=11 (paper: "g = 4, b = 11")

// E56Row is one checkpoint of the timeline.
type E56Row struct {
	Label string // "t0" … "t5"
	Event string // what happened entering this checkpoint
	Pools []core.PoolUsage
	// GuaranteedDemand is Σ c(u,t) over guaranteed sessions.
	GuaranteedDemand resource.Capacity
	// BestEffortHeld is the total best-effort grant.
	BestEffortHeld resource.Capacity
	// GuaranteedWhole reports that every guaranteed session holds its
	// full SLA capacity (the paper's headline at t2).
	GuaranteedWhole bool
}

// E56Result is the full replay.
type E56Result struct {
	Rows []E56Row
	// NetworkOK reports that the two network sub-SLAs stayed whole for
	// the whole period.
	NetworkOK bool
	// Preemptions counts best-effort reductions over the run.
	Preemptions int
	// Log is the broker activity transcript (the Fig. 6 console).
	Log []string
}

// RunE56 replays the worked example and returns the per-checkpoint pool
// table.
func RunE56() (*E56Result, error) {
	plan := core.CapacityPlan{
		Guaranteed: resource.Capacity{CPU: 15, MemoryMB: 6144, DiskGB: 120, BandwidthMbps: 700},
		Adaptive:   resource.Capacity{CPU: 6, MemoryMB: 2048, DiskGB: 40, BandwidthMbps: 200},
		BestEffort: resource.Capacity{CPU: 5, MemoryMB: 2048, DiskGB: 40, BandwidthMbps: 200},
	}
	cl, err := NewCluster(ClusterConfig{Plan: plan, WithNetwork: true, ConfirmWindow: time.Hour})
	if err != nil {
		return nil, err
	}
	defer cl.Close()
	b := cl.Broker

	hour := func(h int) time.Time { return Epoch.Add(time.Duration(h) * time.Hour) }
	res := &E56Result{NetworkOK: true}

	establish := func(req core.Request) (sla.ID, error) {
		offer, err := b.RequestService(req)
		if err != nil {
			return "", err
		}
		if err := b.Accept(offer.SLA.ID); err != nil {
			return "", err
		}
		return offer.SLA.ID, nil
	}

	// The composite SLA's network halves, valid the whole period.
	net1 := core.Request{
		Service: "simulation", Client: "site-b-db", Class: sla.ClassGuaranteed,
		Spec:  netSpec(622, "135.200.50.101", "192.200.168.33"),
		Start: hour(0), End: hour(5),
	}
	net2 := core.Request{
		Service: "simulation", Client: "site-c-scientists", Class: sla.ClassGuaranteed,
		Spec:  netSpec(45, "10.10.3.4", "192.200.168.33"),
		Start: hour(0), End: hour(5),
	}
	net1ID, err := establish(net1)
	if err != nil {
		return nil, fmt.Errorf("SLA_net1: %w", err)
	}
	net2ID, err := establish(net2)
	if err != nil {
		return nil, fmt.Errorf("SLA_net2: %w", err)
	}

	// SLA_comp: the first simulation run holds 10 nodes over [t0, t1).
	comp1, err := establish(core.Request{
		Service: "simulation", Client: "site-a-scientists", Class: sla.ClassGuaranteed,
		Spec:  compSpec(10),
		Start: hour(0), End: hour(1),
	})
	if err != nil {
		return nil, fmt.Errorf("SLA_comp (first run): %w", err)
	}

	// Best-effort background demand: 11 nodes at t0.
	if err := b.BestEffortRequest("be-base", resource.Nodes(11)); err != nil {
		return nil, fmt.Errorf("best-effort base: %w", err)
	}

	checkpoint := func(label, event string) {
		snap := b.Allocator().Snapshot()
		var gDemand, beHeld resource.Capacity
		whole := true
		for _, doc := range b.Sessions(nil) {
			if doc.State.Terminal() || doc.State == sla.StateProposed {
				continue
			}
			gDemand = gDemand.Add(doc.Allocated)
			if !doc.Spec.Accepts(doc.Allocated) {
				whole = false
			}
		}
		for _, u := range snap {
			beHeld = beHeld.Add(u.BestEffort)
		}
		res.Rows = append(res.Rows, E56Row{
			Label: label, Event: event, Pools: snap,
			GuaranteedDemand: gDemand, BestEffortHeld: beHeld,
			GuaranteedWhole: whole,
		})
	}

	checkpoint("t0", "SLA established; SLA_comp holds 10 nodes; best-effort demand 11 nodes")

	// t1: the first compute run completes; a 4-node guaranteed
	// background SLA begins; best-effort demand surges to 18 ("best
	// effort users use resources in an unpredicted pattern").
	cl.Clock.Set(hour(1))
	if err := b.Terminate(comp1, "first simulation run completed"); err != nil {
		return nil, err
	}
	if _, err := establish(core.Request{
		Service: "simulation", Client: "site-a-background", Class: sla.ClassGuaranteed,
		Spec:  compOnlyNodes(4),
		Start: hour(1), End: hour(5),
	}); err != nil {
		return nil, fmt.Errorf("background SLA: %w", err)
	}
	if err := b.BestEffortRequest("be-surge", resource.Nodes(7)); err != nil {
		return nil, fmt.Errorf("best-effort surge: %w", err)
	}
	checkpoint("t1", "first run done; 4-node background SLA active; best-effort surges to 18 nodes")

	// t2: three guaranteed-pool processors become inaccessible AND
	// SLA_comp is due again: 10 nodes allocated despite the failure.
	cl.Clock.Set(hour(2))
	pre := b.NotifyFailure(resource.Nodes(3))
	res.Preemptions += len(pre)
	comp2, err := establish(core.Request{
		Service: "simulation", Client: "site-a-scientists", Class: sla.ClassGuaranteed,
		Spec:  compSpec(10),
		Start: hour(2), End: hour(4),
	})
	if err != nil {
		return nil, fmt.Errorf("SLA_comp (second run) under failure: %w", err)
	}
	checkpoint("t2", "three C_G processors fail (C_G 15→12); SLA_comp due: 10 nodes honored from C_A")

	// t3: the processors become accessible again; best effort re-grows
	// into the recovered capacity.
	cl.Clock.Set(hour(3))
	b.NotifyFailure(resource.Capacity{})
	regrow := b.Allocator().AvailableBestEffort()
	if regrow.CPU > 0 {
		if err := b.BestEffortRequest("be-regrow", resource.Nodes(regrow.CPU)); err != nil {
			return nil, fmt.Errorf("best-effort regrow: %w", err)
		}
	}
	checkpoint("t3", "failed processors recover; best effort re-borrows idle capacity")

	// t4: SLA_comp completes its validity period; scenario 2 returns the
	// capacity to the grid.
	cl.Clock.Set(hour(4))
	if err := b.Expire(comp2); err != nil {
		return nil, err
	}
	if avail := b.Allocator().AvailableBestEffort(); avail.CPU > 0 {
		if err := b.BestEffortRequest("be-tail", resource.Nodes(avail.CPU)); err != nil {
			return nil, fmt.Errorf("best-effort tail: %w", err)
		}
	}
	checkpoint("t4", "SLA_comp validity period complete; released nodes flow back to best effort")

	// t5: the composite SLA's network halves expire; the session clears.
	cl.Clock.Set(hour(5))
	b.ExpireDue()
	checkpoint("t5", "network sub-SLAs expire; session cleared")

	// Network sub-SLAs must have stayed whole until expiry.
	for _, id := range []sla.ID{net1ID, net2ID} {
		doc, err := b.Session(id)
		if err != nil || doc.State != sla.StateExpired {
			res.NetworkOK = false
		}
	}
	for _, e := range b.Events() {
		res.Log = append(res.Log, e.String())
	}
	return res, nil
}

// Table renders the result as the per-checkpoint pool table printed by
// `gridsim -experiment E56`.
func (r *E56Result) Table() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-3s | %-5s %-5s | %-5s %-5s | %-5s %-5s | %-8s | %s\n",
		"t", "G:g", "G:b", "A:g", "A:b", "B:g", "B:b", "SLAs ok", "event")
	sb.WriteString(strings.Repeat("-", 100) + "\n")
	for _, row := range r.Rows {
		g, a, bp := row.Pools[0], row.Pools[1], row.Pools[2]
		fmt.Fprintf(&sb, "%-3s | %-5g %-5g | %-5g %-5g | %-5g %-5g | %-8v | %s\n",
			row.Label,
			g.Guaranteed.CPU, g.BestEffort.CPU,
			a.Guaranteed.CPU, a.BestEffort.CPU,
			bp.Guaranteed.CPU, bp.BestEffort.CPU,
			row.GuaranteedWhole, row.Event)
	}
	return sb.String()
}

func netSpec(mbps float64, src, dst string) sla.Spec {
	s := sla.NewSpec(sla.Exact(resource.BandwidthMbps, mbps))
	s.SourceIP, s.DestIP = src, dst
	s.MaxPacketLossPct = 10
	return s
}

func compSpec(nodes float64) sla.Spec {
	return sla.NewSpec(
		sla.Exact(resource.CPU, nodes),
		sla.Exact(resource.MemoryMB, 2048),
		sla.Exact(resource.DiskGB, 15),
	)
}

func compOnlyNodes(nodes float64) sla.Spec {
	return sla.NewSpec(sla.Exact(resource.CPU, nodes))
}
