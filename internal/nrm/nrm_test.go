package nrm

import (
	"errors"
	"math"
	"testing"
	"time"
)

var (
	t0   = time.Date(2003, 6, 16, 9, 0, 0, 0, time.UTC)
	tEnd = t0.Add(5 * time.Hour)
)

// paperTopology builds the §5.6 network: site A (the SGI machine), site B
// (the database), site C (the second scientist group), with a 1000 Mbps
// B—A link and a 100 Mbps C—A link.
func paperTopology(t *testing.T) *Topology {
	t.Helper()
	topo := NewTopology()
	if err := topo.AddDomain("site-a", "192.200.168.0/24"); err != nil {
		t.Fatal(err)
	}
	if err := topo.AddDomain("site-b", "135.200.50.0/24"); err != nil {
		t.Fatal(err)
	}
	if err := topo.AddDomain("site-c", "10.10.0.0/16"); err != nil {
		t.Fatal(err)
	}
	if err := topo.AddLink("site-a", "site-b", 1000); err != nil {
		t.Fatal(err)
	}
	if err := topo.AddLink("site-a", "site-c", 100); err != nil {
		t.Fatal(err)
	}
	return topo
}

func TestDomainOf(t *testing.T) {
	topo := paperTopology(t)
	tests := []struct {
		ip, want string
	}{
		{"192.200.168.33", "site-a"},
		{" 135.200.50.101 ", "site-b"},
		{"10.10.3.4", "site-c"},
	}
	for _, tt := range tests {
		got, err := topo.DomainOf(tt.ip)
		if err != nil || got != tt.want {
			t.Errorf("DomainOf(%q) = %q, %v; want %q", tt.ip, got, err, tt.want)
		}
	}
	if _, err := topo.DomainOf("8.8.8.8"); !errors.Is(err, ErrUnknownDomain) {
		t.Errorf("uncovered IP err = %v", err)
	}
	if _, err := topo.DomainOf("not-an-ip"); err == nil {
		t.Error("bad IP accepted")
	}
}

func TestTopologyValidation(t *testing.T) {
	topo := NewTopology()
	if err := topo.AddDomain("x", "not-a-cidr"); err == nil {
		t.Error("bad CIDR accepted")
	}
	if err := topo.AddLink("a", "b", 100); !errors.Is(err, ErrUnknownDomain) {
		t.Errorf("link between unknown domains err = %v", err)
	}
	if err := topo.AddDomain("a", "10.0.0.0/8"); err != nil {
		t.Fatal(err)
	}
	if err := topo.AddLink("a", "b", 100); !errors.Is(err, ErrUnknownDomain) {
		t.Errorf("link to unknown domain err = %v", err)
	}
}

func TestPath(t *testing.T) {
	topo := paperTopology(t)
	p, err := topo.Path("site-b", "site-c")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"site-b", "site-a", "site-c"}
	if len(p) != 3 || p[0] != want[0] || p[1] != want[1] || p[2] != want[2] {
		t.Fatalf("Path = %v, want %v", p, want)
	}
	self, err := topo.Path("site-a", "site-a")
	if err != nil || len(self) != 1 {
		t.Fatalf("self Path = %v, %v", self, err)
	}
	if err := topo.AddDomain("island", "172.16.0.0/12"); err != nil {
		t.Fatal(err)
	}
	if _, err := topo.Path("site-a", "island"); !errors.Is(err, ErrNoRoute) {
		t.Errorf("unreachable Path err = %v", err)
	}
	if _, err := topo.Path("ghost", "site-a"); !errors.Is(err, ErrUnknownDomain) {
		t.Errorf("unknown src err = %v", err)
	}
	if _, err := topo.Path("site-a", "ghost"); !errors.Is(err, ErrUnknownDomain) {
		t.Errorf("unknown dst err = %v", err)
	}
	if got := topo.Domains(); len(got) != 4 || got[0] != "island" {
		t.Errorf("Domains = %v", got)
	}
}

func TestReserveSingleHop(t *testing.T) {
	topo := paperTopology(t)
	m := NewManager("site-a", topo)
	// SLA_net1: 622 Mbps from site B to site A.
	flow, err := m.Reserve("135.200.50.101", "192.200.168.33", 622, t0, tEnd, "SLA_net1")
	if err != nil {
		t.Fatalf("Reserve: %v", err)
	}
	if len(flow.Path) != 2 {
		t.Fatalf("Path = %v", flow.Path)
	}
	l, _ := topo.Link("site-a", "site-b")
	if got := l.Pool.InUse(t0).BandwidthMbps; got != 622 {
		t.Errorf("link in use = %g, want 622", got)
	}
	// Second reservation exceeding the remaining 378 fails.
	if _, err := m.Reserve("135.200.50.101", "192.200.168.33", 400, t0, tEnd, "x"); !errors.Is(err, ErrInsufficientBandwidth) {
		t.Fatalf("over-reserve err = %v", err)
	}
	if err := m.Release(flow.ID); err != nil {
		t.Fatalf("Release: %v", err)
	}
	if got := l.Pool.InUse(t0).BandwidthMbps; got != 0 {
		t.Errorf("link in use after release = %g", got)
	}
	if err := m.Release(flow.ID); !errors.Is(err, ErrUnknownFlow) {
		t.Errorf("double release err = %v", err)
	}
}

func TestReserveMultiHopAtomic(t *testing.T) {
	topo := paperTopology(t)
	m := NewManager("site-b", topo)
	// B -> C crosses both links; the C-A link only has 100 Mbps, so a
	// 200 Mbps request must fail AND leave the B-A link untouched.
	if _, err := m.Reserve("135.200.50.101", "10.10.3.4", 200, t0, tEnd, ""); !errors.Is(err, ErrInsufficientBandwidth) {
		t.Fatalf("err = %v", err)
	}
	ab, _ := topo.Link("site-a", "site-b")
	if got := ab.Pool.InUse(t0).BandwidthMbps; got != 0 {
		t.Fatalf("rollback failed: B-A link holds %g Mbps", got)
	}
	// A fitting request reserves on both links.
	flow, err := m.Reserve("135.200.50.101", "10.10.3.4", 50, t0, tEnd, "")
	if err != nil {
		t.Fatal(err)
	}
	ac, _ := topo.Link("site-a", "site-c")
	if ab.Pool.InUse(t0).BandwidthMbps != 50 || ac.Pool.InUse(t0).BandwidthMbps != 50 {
		t.Fatal("multi-hop reservation did not claim both links")
	}
	if len(flow.Path) != 3 {
		t.Fatalf("Path = %v", flow.Path)
	}
}

func TestReserveValidation(t *testing.T) {
	topo := paperTopology(t)
	m := NewManager("site-a", topo)
	if _, err := m.Reserve("192.200.168.33", "135.200.50.101", 0, t0, tEnd, ""); err == nil {
		t.Error("zero bandwidth accepted")
	}
	if _, err := m.Reserve("8.8.8.8", "135.200.50.101", 10, t0, tEnd, ""); !errors.Is(err, ErrUnknownDomain) {
		t.Errorf("unknown src err = %v", err)
	}
	if _, err := m.Reserve("192.200.168.33", "8.8.8.8", 10, t0, tEnd, ""); !errors.Is(err, ErrUnknownDomain) {
		t.Errorf("unknown dst err = %v", err)
	}
}

func TestMeasureHealthy(t *testing.T) {
	topo := paperTopology(t)
	m := NewManager("site-a", topo)
	m.PerHopDelayMS = 10
	flow, err := m.Reserve("135.200.50.101", "192.200.168.33", 10, t0, tEnd, "")
	if err != nil {
		t.Fatal(err)
	}
	meas, err := m.Measure(flow.ID, t0)
	if err != nil {
		t.Fatal(err)
	}
	if meas.BandwidthMbps != 10 || meas.DelayMS != 10 || meas.LossPct != 0 {
		t.Errorf("Measurement = %+v", meas)
	}
	if _, err := m.Measure("ghost", t0); !errors.Is(err, ErrUnknownFlow) {
		t.Errorf("Measure unknown err = %v", err)
	}
}

func TestCongestionDegradesAndNotifies(t *testing.T) {
	topo := paperTopology(t)
	m := NewManager("site-a", topo)
	flow, err := m.Reserve("135.200.50.101", "192.200.168.33", 100, t0, tEnd, "SLA_net1")
	if err != nil {
		t.Fatal(err)
	}
	var notified []Measurement
	m.Subscribe(func(f Flow, meas Measurement) {
		if f.ID != flow.ID {
			t.Errorf("notified for wrong flow %s", f.ID)
		}
		notified = append(notified, meas)
	})

	// Healthy: no degradation.
	if got := m.CheckAll(t0); len(got) != 0 {
		t.Fatalf("healthy CheckAll = %v", got)
	}

	// Inject 50% congestion with loss and delay.
	if err := topo.SetCongestion("site-a", "site-b", Congestion{
		BandwidthFactor: 0.5, ExtraDelayMS: 20, LossPct: 12,
	}); err != nil {
		t.Fatal(err)
	}
	degraded := m.CheckAll(t0)
	if len(degraded) != 1 {
		t.Fatalf("degraded = %v", degraded)
	}
	meas := degraded[0]
	if math.Abs(meas.BandwidthMbps-50) > 1e-9 {
		t.Errorf("degraded bandwidth = %g, want 50", meas.BandwidthMbps)
	}
	if meas.DelayMS != 25 { // 5 base + 20 extra
		t.Errorf("delay = %g, want 25", meas.DelayMS)
	}
	if meas.LossPct != 12 {
		t.Errorf("loss = %g, want 12", meas.LossPct)
	}
	if len(notified) != 1 {
		t.Fatalf("notifications = %d, want 1", len(notified))
	}

	// Clear congestion (recovery): no further degradation.
	if err := topo.SetCongestion("site-a", "site-b", Congestion{}); err != nil {
		t.Fatal(err)
	}
	if got := m.CheckAll(t0); len(got) != 0 {
		t.Fatalf("CheckAll after recovery = %v", got)
	}
	if err := topo.SetCongestion("site-a", "island", Congestion{}); !errors.Is(err, ErrNoRoute) {
		t.Errorf("SetCongestion missing link err = %v", err)
	}
}

func TestCheckAllSkipsInactiveFlows(t *testing.T) {
	topo := paperTopology(t)
	m := NewManager("site-a", topo)
	if _, err := m.Reserve("135.200.50.101", "192.200.168.33", 100, t0.Add(time.Hour), tEnd, ""); err != nil {
		t.Fatal(err)
	}
	if err := topo.SetCongestion("site-a", "site-b", Congestion{BandwidthFactor: 0.1}); err != nil {
		t.Fatal(err)
	}
	// Flow not yet started: no degradation reported at t0.
	if got := m.CheckAll(t0); len(got) != 0 {
		t.Fatalf("CheckAll before start = %v", got)
	}
	// After expiry: also skipped.
	if got := m.CheckAll(tEnd.Add(time.Hour)); len(got) != 0 {
		t.Fatalf("CheckAll after end = %v", got)
	}
}

func TestLossCappedAt100(t *testing.T) {
	topo := paperTopology(t)
	m := NewManager("site-b", topo)
	flow, err := m.Reserve("135.200.50.101", "10.10.3.4", 10, t0, tEnd, "")
	if err != nil {
		t.Fatal(err)
	}
	for _, pair := range [][2]string{{"site-a", "site-b"}, {"site-a", "site-c"}} {
		if err := topo.SetCongestion(pair[0], pair[1], Congestion{LossPct: 70}); err != nil {
			t.Fatal(err)
		}
	}
	meas, err := m.Measure(flow.ID, t0)
	if err != nil {
		t.Fatal(err)
	}
	if meas.LossPct != 100 {
		t.Errorf("loss = %g, want capped 100", meas.LossPct)
	}
}

func TestFlowsSnapshot(t *testing.T) {
	topo := paperTopology(t)
	m := NewManager("site-a", topo)
	for i := 0; i < 3; i++ {
		if _, err := m.Reserve("135.200.50.101", "192.200.168.33", 10, t0, tEnd, ""); err != nil {
			t.Fatal(err)
		}
	}
	fs := m.Flows()
	if len(fs) != 3 {
		t.Fatalf("Flows = %d", len(fs))
	}
	for i := 1; i < len(fs); i++ {
		if fs[i-1].ID >= fs[i].ID {
			t.Fatal("Flows not sorted")
		}
	}
	if _, err := m.Flow("ghost"); !errors.Is(err, ErrUnknownFlow) {
		t.Errorf("Flow unknown err = %v", err)
	}
	if m.Domain() != "site-a" {
		t.Errorf("Domain = %q", m.Domain())
	}
}

func TestDisjointIntervalsShareLink(t *testing.T) {
	topo := paperTopology(t)
	m := NewManager("site-a", topo)
	if _, err := m.Reserve("135.200.50.101", "192.200.168.33", 800, t0, t0.Add(time.Hour), ""); err != nil {
		t.Fatal(err)
	}
	// Same 800 Mbps in a later window fits.
	if _, err := m.Reserve("135.200.50.101", "192.200.168.33", 800, t0.Add(time.Hour), tEnd, ""); err != nil {
		t.Fatalf("disjoint reservation rejected: %v", err)
	}
}
