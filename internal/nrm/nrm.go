// Package nrm implements the Network Resource Manager of the G-QoSM
// architecture — "conceptually a Bandwidth Broker" (paper §2.1) — managing
// bandwidth reservations within an administrative domain, coordinating
// inter-domain flows with peer NRMs along the path, monitoring network
// state, and notifying subscribers (the broker's SLA-Verif component) of
// QoS degradation.
package nrm

import (
	"errors"
	"fmt"
	"net"
	"sort"
	"strings"
	"sync"
	"time"

	"gqosm/internal/faultx"
	"gqosm/internal/obs"
	"gqosm/internal/resource"
)

// NRM errors.
var (
	// ErrNoRoute is returned when no path exists between two domains.
	ErrNoRoute = errors.New("nrm: no route between domains")
	// ErrUnknownDomain is returned for IPs/names not covered by any
	// registered domain.
	ErrUnknownDomain = errors.New("nrm: unknown domain")
	// ErrUnknownFlow is returned for operations on unknown flow IDs.
	ErrUnknownFlow = errors.New("nrm: unknown flow")
	// ErrInsufficientBandwidth is returned when a link on the path
	// cannot carry the requested reservation.
	ErrInsufficientBandwidth = errors.New("nrm: insufficient bandwidth")
)

// Topology is the multi-domain network map shared by all NRMs: domains
// (identified by name, covering IP prefixes) connected by bidirectional
// links of fixed capacity. Topology is safe for concurrent use.
type Topology struct {
	mu      sync.Mutex
	domains map[string]*domainInfo
	links   map[string]*Link // key: canonical "a|b"
}

type domainInfo struct {
	name     string
	prefixes []*net.IPNet
}

// Link is a bidirectional connection between two domains backed by a
// bandwidth pool.
type Link struct {
	A, B string
	Pool *resource.Pool

	mu sync.Mutex
	// congested carries an artificially injected per-link condition used
	// by experiments: extra delay and packet loss, and a bandwidth
	// derating factor in [0,1] applied to measurements.
	congestion Congestion
}

// Congestion describes an injected network condition on a link.
type Congestion struct {
	// BandwidthFactor derates measured (delivered) bandwidth; 1 = none.
	BandwidthFactor float64
	// ExtraDelayMS adds to the measured one-way delay.
	ExtraDelayMS float64
	// LossPct is the measured packet loss contribution in percent.
	LossPct float64
}

// NewTopology returns an empty topology.
func NewTopology() *Topology {
	return &Topology{
		domains: make(map[string]*domainInfo),
		links:   make(map[string]*Link),
	}
}

// AddDomain registers a domain with the CIDR prefixes it covers ("a domain
// can be defined via an IP mask", §2.1).
func (t *Topology) AddDomain(name string, cidrs ...string) error {
	info := &domainInfo{name: name}
	for _, c := range cidrs {
		_, ipnet, err := net.ParseCIDR(c)
		if err != nil {
			return fmt.Errorf("nrm: domain %s: %w", name, err)
		}
		info.prefixes = append(info.prefixes, ipnet)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.domains[name] = info
	return nil
}

// AddLink connects domains a and b with a link of the given capacity in
// Mbps. Re-adding replaces the link.
func (t *Topology) AddLink(a, b string, capacityMbps float64) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.domains[a]; !ok {
		return fmt.Errorf("%w: %s", ErrUnknownDomain, a)
	}
	if _, ok := t.domains[b]; !ok {
		return fmt.Errorf("%w: %s", ErrUnknownDomain, b)
	}
	key := linkKey(a, b)
	t.links[key] = &Link{
		A: a, B: b,
		Pool:       resource.NewPool("link:"+key, resource.Bandwidth(capacityMbps)),
		congestion: Congestion{BandwidthFactor: 1},
	}
	return nil
}

func linkKey(a, b string) string {
	if a > b {
		a, b = b, a
	}
	return a + "|" + b
}

// Link returns the link between a and b, if any.
func (t *Topology) Link(a, b string) (*Link, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	l, ok := t.links[linkKey(a, b)]
	return l, ok
}

// DomainOf resolves an IP address to the domain whose prefix covers it.
func (t *Topology) DomainOf(ip string) (string, error) {
	parsed := net.ParseIP(strings.TrimSpace(ip))
	if parsed == nil {
		return "", fmt.Errorf("nrm: bad IP %q", ip)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, d := range t.domains {
		for _, p := range d.prefixes {
			if p.Contains(parsed) {
				return d.name, nil
			}
		}
	}
	return "", fmt.Errorf("%w: no domain covers %s", ErrUnknownDomain, ip)
}

// Domains returns the sorted domain names.
func (t *Topology) Domains() []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]string, 0, len(t.domains))
	for name := range t.domains {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Path returns the shortest (fewest hops) domain path from src to dst,
// inclusive of both endpoints. Deterministic: neighbors are explored in
// sorted order.
func (t *Topology) Path(src, dst string) ([]string, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.domains[src]; !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownDomain, src)
	}
	if _, ok := t.domains[dst]; !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownDomain, dst)
	}
	if src == dst {
		return []string{src}, nil
	}
	adj := make(map[string][]string)
	for _, l := range t.links {
		adj[l.A] = append(adj[l.A], l.B)
		adj[l.B] = append(adj[l.B], l.A)
	}
	for _, ns := range adj {
		sort.Strings(ns)
	}
	prev := map[string]string{src: src}
	queue := []string{src}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if cur == dst {
			var path []string
			for n := dst; ; n = prev[n] {
				path = append([]string{n}, path...)
				if n == src {
					return path, nil
				}
			}
		}
		for _, n := range adj[cur] {
			if _, seen := prev[n]; !seen {
				prev[n] = cur
				queue = append(queue, n)
			}
		}
	}
	return nil, fmt.Errorf("%w: %s -> %s", ErrNoRoute, src, dst)
}

// SetCongestion injects a network condition on the link between a and b.
func (t *Topology) SetCongestion(a, b string, c Congestion) error {
	l, ok := t.Link(a, b)
	if !ok {
		return fmt.Errorf("%w: no link %s-%s", ErrNoRoute, a, b)
	}
	if c.BandwidthFactor <= 0 {
		c.BandwidthFactor = 1
	}
	l.mu.Lock()
	l.congestion = c
	l.mu.Unlock()
	return nil
}

func (l *Link) currentCongestion() Congestion {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.congestion
}

// FlowID identifies a bandwidth reservation across a path.
type FlowID string

// Flow is an end-to-end bandwidth reservation.
type Flow struct {
	ID         FlowID
	SourceIP   string
	DestIP     string
	Mbps       float64
	Path       []string // domain path
	Start, End time.Time
	Tag        string
}

// Measurement is the live network QoS of a flow, feeding the Table-3
// conformance reply.
type Measurement struct {
	FlowID        FlowID
	BandwidthMbps float64 // delivered bandwidth
	DelayMS       float64 // one-way delay
	LossPct       float64 // packet loss percentage
	MeasuredAt    time.Time
}

// DegradationFunc is notified when a flow's measured bandwidth falls below
// its reservation ("When the network QoS degrades, the NRM notifies the
// SLA-Verif system of such degradation", §3.2).
type DegradationFunc func(flow Flow, m Measurement)

// Manager is one domain's Network Resource Manager. Reservations for flows
// crossing multiple domains are coordinated across every link of the path
// (all segments reserved or none — the inter-domain SLA coordination of
// §2.1). All methods are safe for concurrent use.
type Manager struct {
	domain string
	topo   *Topology
	// PerHopDelayMS is the base one-way delay contributed by each link.
	PerHopDelayMS float64

	mu     sync.Mutex
	nextID int
	flows  map[FlowID]*flowState
	subs   []DegradationFunc

	// met holds nil-safe flow-check counters; zero until Instrument is
	// called.
	met nrmMetrics

	// faults injects failures into link operations; nil injects nothing.
	// Set at assembly time, before the manager serves requests.
	faults *faultx.Injector
}

// InjectFaults installs a fault injector on the manager's link
// operations (sites "nrm.reserve", "nrm.release", "nrm.measure"). Call
// at assembly time.
func (m *Manager) InjectFaults(inj *faultx.Injector) { m.faults = inj }

type nrmMetrics struct {
	checks        *obs.Counter
	flowsChecked  *obs.Counter
	degradations  *obs.Counter
	reservations  *obs.Counter
	reserveErrors *obs.Counter
	releases      *obs.Counter
}

// Instrument registers flow metrics on reg. Call once at assembly time,
// before the manager serves requests.
func (m *Manager) Instrument(reg *obs.Registry) {
	m.mu.Lock()
	m.met = nrmMetrics{
		checks: reg.Counter("gqosm_nrm_checks_total",
			"CheckAll sweeps over active flows"),
		flowsChecked: reg.Counter("gqosm_nrm_flows_checked_total",
			"Individual flow measurements taken by CheckAll"),
		degradations: reg.Counter("gqosm_nrm_degradations_total",
			"Flows found delivering below reserved bandwidth"),
		reservations: reg.Counter("gqosm_nrm_reservations_total",
			"End-to-end bandwidth reservations established"),
		reserveErrors: reg.Counter("gqosm_nrm_reserve_errors_total",
			"Failed bandwidth reservation attempts"),
		releases: reg.Counter("gqosm_nrm_releases_total",
			"Bandwidth reservations released"),
	}
	m.mu.Unlock()
	reg.GaugeFunc("gqosm_nrm_flows_active",
		"Flows currently held", func() float64 {
			m.mu.Lock()
			defer m.mu.Unlock()
			return float64(len(m.flows))
		})
}

type flowState struct {
	flow Flow
	// reservations holds the per-link reservation IDs, parallel to the
	// path's links.
	reservations []resource.ReservationID
	links        []*Link
}

// NewManager returns the NRM for the given domain over the shared
// topology.
func NewManager(domain string, topo *Topology) *Manager {
	return &Manager{
		domain:        domain,
		topo:          topo,
		PerHopDelayMS: 5,
		flows:         make(map[FlowID]*flowState),
	}
}

// Domain returns the domain this manager administers.
func (m *Manager) Domain() string { return m.domain }

// Subscribe registers a degradation callback.
func (m *Manager) Subscribe(f DegradationFunc) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.subs = append(m.subs, f)
}

// Reserve establishes an end-to-end bandwidth reservation between two IP
// endpoints over [start, end). Every link along the shortest domain path
// must admit the reservation; on any failure all segments are rolled back.
func (m *Manager) Reserve(srcIP, dstIP string, mbps float64, start, end time.Time, tag string) (*Flow, error) {
	var f *Flow
	err := m.faults.Do("nrm.reserve", func() error {
		flow, err := m.reserve(srcIP, dstIP, mbps, start, end, tag)
		if err == nil {
			f = flow
		}
		return err
	})
	if err != nil {
		f = nil
	}
	if err != nil {
		m.met.reserveErrors.Inc()
	} else {
		m.met.reservations.Inc()
	}
	return f, err
}

func (m *Manager) reserve(srcIP, dstIP string, mbps float64, start, end time.Time, tag string) (*Flow, error) {
	if mbps <= 0 {
		return nil, fmt.Errorf("nrm: non-positive bandwidth %g", mbps)
	}
	srcDom, err := m.topo.DomainOf(srcIP)
	if err != nil {
		return nil, err
	}
	dstDom, err := m.topo.DomainOf(dstIP)
	if err != nil {
		return nil, err
	}
	path, err := m.topo.Path(srcDom, dstDom)
	if err != nil {
		return nil, err
	}

	var (
		links []*Link
		ids   []resource.ReservationID
	)
	rollback := func() {
		for i, id := range ids {
			// Ignore errors: rollback of a reservation we just made.
			_ = links[i].Pool.Release(id)
		}
	}
	for i := 0; i+1 < len(path); i++ {
		l, ok := m.topo.Link(path[i], path[i+1])
		if !ok {
			rollback()
			return nil, fmt.Errorf("%w: missing link %s-%s", ErrNoRoute, path[i], path[i+1])
		}
		r, err := l.Pool.Reserve(resource.Bandwidth(mbps), start, end, tag)
		if err != nil {
			rollback()
			return nil, fmt.Errorf("%w: link %s-%s: %v", ErrInsufficientBandwidth, path[i], path[i+1], err)
		}
		links = append(links, l)
		ids = append(ids, r.ID)
	}

	m.mu.Lock()
	defer m.mu.Unlock()
	m.nextID++
	flow := Flow{
		ID:       FlowID(fmt.Sprintf("%s-flow-%d", m.domain, m.nextID)),
		SourceIP: strings.TrimSpace(srcIP),
		DestIP:   strings.TrimSpace(dstIP),
		Mbps:     mbps,
		Path:     path,
		Start:    start,
		End:      end,
		Tag:      tag,
	}
	m.flows[flow.ID] = &flowState{flow: flow, reservations: ids, links: links}
	return &flow, nil
}

// Release tears down a flow's reservations on every link.
func (m *Manager) Release(id FlowID) error {
	// The fault check runs before any teardown so an injected error
	// leaves the flow intact for a retry.
	if err := m.faults.Do("nrm.release", func() error { return nil }); err != nil {
		return err
	}
	m.mu.Lock()
	st, ok := m.flows[id]
	if ok {
		delete(m.flows, id)
	}
	m.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownFlow, id)
	}
	m.met.releases.Inc()
	var firstErr error
	for i, rid := range st.reservations {
		if err := st.links[i].Pool.Release(rid); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Flow returns a copy of the flow record.
func (m *Manager) Flow(id FlowID) (Flow, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	st, ok := m.flows[id]
	if !ok {
		return Flow{}, fmt.Errorf("%w: %s", ErrUnknownFlow, id)
	}
	return st.flow, nil
}

// Flows returns copies of all flows ordered by ID.
func (m *Manager) Flows() []Flow {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Flow, 0, len(m.flows))
	for _, st := range m.flows {
		out = append(out, st.flow)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Measure reports the flow's delivered QoS at instant now: the reserved
// bandwidth derated by the worst congestion factor along the path, delay
// as per-hop base plus injected extras, and loss as the sum of injected
// losses.
func (m *Manager) Measure(id FlowID, now time.Time) (Measurement, error) {
	if err := m.faults.Do("nrm.measure", func() error { return nil }); err != nil {
		return Measurement{}, err
	}
	m.mu.Lock()
	st, ok := m.flows[id]
	m.mu.Unlock()
	if !ok {
		return Measurement{}, fmt.Errorf("%w: %s", ErrUnknownFlow, id)
	}
	meas := Measurement{
		FlowID:        id,
		BandwidthMbps: st.flow.Mbps,
		MeasuredAt:    now,
	}
	worstFactor := 1.0
	for _, l := range st.links {
		c := l.currentCongestion()
		if c.BandwidthFactor < worstFactor {
			worstFactor = c.BandwidthFactor
		}
		meas.DelayMS += m.PerHopDelayMS + c.ExtraDelayMS
		meas.LossPct += c.LossPct
	}
	meas.BandwidthMbps *= worstFactor
	if meas.LossPct > 100 {
		meas.LossPct = 100
	}
	return meas, nil
}

// CheckAll measures every active flow and fires degradation notifications
// for flows delivering less than their reserved bandwidth (beyond a 1%
// tolerance). It returns the degraded flows' measurements. This is the
// polling hook the broker's monitor drives; injected congestion becomes a
// notification on the next check.
func (m *Manager) CheckAll(now time.Time) []Measurement {
	m.mu.Lock()
	ids := make([]FlowID, 0, len(m.flows))
	for id, st := range m.flows {
		if !st.flow.Start.After(now) && st.flow.End.After(now) {
			ids = append(ids, id)
		}
	}
	subs := append([]DegradationFunc(nil), m.subs...)
	m.mu.Unlock()
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	m.met.checks.Inc()
	m.met.flowsChecked.Add(int64(len(ids)))

	var degraded []Measurement
	for _, id := range ids {
		meas, err := m.Measure(id, now)
		if err != nil {
			continue // flow released concurrently
		}
		flow, err := m.Flow(id)
		if err != nil {
			continue
		}
		if meas.BandwidthMbps < flow.Mbps*0.99 {
			m.met.degradations.Inc()
			degraded = append(degraded, meas)
			for _, s := range subs {
				s(flow, meas)
			}
		}
	}
	return degraded
}
