// Package shadow is the counterfactual policy lab: it evaluates a
// candidate adaptation policy against the deterministic scenario library
// with zero blast radius. For each scenario it runs the seeded workload
// three times — the active "paper" policy alone, the active policy with
// the candidate consulted in shadow at every decision point, and the
// candidate as the active policy — then reports per-family decision
// divergence, admit-rate/revenue/utilization deltas, and an oracle
// verdict that includes the shadow-inertness rule: the shadow-on run must
// be digest-identical to the shadow-off run, proving shadow evaluation
// never touched live state.
package shadow

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strings"

	"gqosm/internal/core"
	"gqosm/internal/invariant"
	"gqosm/internal/obs"
	"gqosm/internal/sim"
)

// Schema identifies the report format for CI gates.
const Schema = "bench_shadow/v1"

// Config sizes a shadow evaluation.
type Config struct {
	// Candidate names the registered policy under evaluation (required).
	Candidate string
	// Seed / Ops / Shards are forwarded to every scenario run.
	Seed   int64
	Ops    int
	Shards int
}

// Delta is one metric compared across the active and counterfactual runs.
type Delta struct {
	Active    float64 `json:"active"`
	Candidate float64 `json:"candidate"`
	Delta     float64 `json:"delta"`
}

// ScenarioResult is one scenario's shadow evaluation.
type ScenarioResult struct {
	// Evaluations counts shadow consultations; Divergence counts, per
	// decision family, how often the candidate's answer differed.
	Evaluations int64            `json:"evaluations"`
	Divergence  map[string]int64 `json:"divergence"`
	// ShadowClean is the shadow-inertness verdict: the shadow-on run
	// produced exactly the shadow-off run's report digest.
	ShadowClean  bool   `json:"shadow_clean"`
	ActiveDigest string `json:"active_digest"`
	ShadowDigest string `json:"shadow_digest"`
	// InvariantViolations aggregates the oracle across all three runs,
	// plus the shadow-inertness rule.
	InvariantViolations int      `json:"invariant_violations"`
	Violations          []string `json:"violations,omitempty"`
	// Counterfactual deltas: candidate-as-active vs. the active run.
	AdmitRate   Delta `json:"admit_rate"`
	Revenue     Delta `json:"revenue"`
	Utilization Delta `json:"utilization"`
	// Verdict is "ok", or the first failing rule.
	Verdict string `json:"verdict"`
}

// Report is the bench_shadow/v1 document gridsim -shadow emits. It
// contains no wall-clock fields, so two runs at the same (candidate,
// seed, ops, shards) are byte-identical.
type Report struct {
	Schema              string                     `json:"schema"`
	Candidate           string                     `json:"candidate"`
	Seed                int64                      `json:"seed"`
	Ops                 int                        `json:"ops"`
	Shards              int                        `json:"shards"`
	Scenarios           map[string]*ScenarioResult `json:"scenarios"`
	InvariantViolations int                        `json:"invariant_violations"`
	Verdict             string                     `json:"verdict"`
}

// Failed reports whether CI should go red on this report.
func (r *Report) Failed() bool { return r.Verdict != "ok" }

// Digest hashes the deterministic portion of a scenario report (Latency,
// the only wall-clock block, is excluded — the same field CI strips with
// jq 'del(.latency)').
func Digest(r *sim.ScenarioReport) string {
	c := *r
	c.Latency = nil
	buf, err := json.Marshal(&c)
	if err != nil {
		// ScenarioReport is a plain data struct; Marshal cannot fail on
		// it short of memory corruption.
		panic(err)
	}
	sum := sha256.Sum256(buf)
	return hex.EncodeToString(sum[:8])
}

// observedRun replays one scenario and samples mean allocator CPU
// utilization across the quiesce phases.
func observedRun(sc sim.Scenario, cfg sim.ScenarioConfig) (*sim.ScenarioReport, float64, error) {
	var sum float64
	var n int
	rep, err := sim.RunScenarioObserved(sc, cfg, func(run *sim.ScenarioRun, phase int) {
		for _, a := range run.Cluster.Broker.Allocators() {
			sum += a.Utilization().CPU
			n++
		}
	})
	if err != nil {
		return rep, 0, err
	}
	var util float64
	if n > 0 {
		util = sum / float64(n)
	}
	return rep, util, nil
}

func delta(active, candidate float64) Delta {
	return Delta{Active: active, Candidate: candidate, Delta: candidate - active}
}

// Evaluate runs one scenario's three-way comparison.
func Evaluate(sc sim.Scenario, cfg Config) (*ScenarioResult, error) {
	if _, ok := core.LookupPolicy(cfg.Candidate); !ok {
		return nil, fmt.Errorf("shadow: unknown candidate policy %q (registered: %s)",
			cfg.Candidate, strings.Join(core.PolicyNames(), ", "))
	}
	base := sim.ScenarioConfig{Seed: cfg.Seed, Ops: cfg.Ops, Shards: cfg.Shards}

	// Run 1: the active policy alone — the reference digest and the
	// active side of every counterfactual delta.
	activeRep, activeUtil, err := observedRun(sc, base)
	if err != nil {
		return nil, fmt.Errorf("shadow: %s active run: %w", sc.Name, err)
	}

	// Run 2: the active policy with the candidate in shadow. A fresh
	// registry isolates the divergence counters for post-run readback.
	shadowObs := obs.NewRegistry()
	shadowCfg := base
	shadowCfg.ShadowPolicy = cfg.Candidate
	shadowCfg.Obs = shadowObs
	shadowRep, _, err := observedRun(sc, shadowCfg)
	if err != nil {
		return nil, fmt.Errorf("shadow: %s shadow run: %w", sc.Name, err)
	}
	evals, divergence := core.ShadowCounts(shadowObs)

	// Run 3: the counterfactual — the candidate as the active policy over
	// the identical seeded workload.
	candCfg := base
	candCfg.Policy = cfg.Candidate
	candRep, candUtil, err := observedRun(sc, candCfg)
	if err != nil {
		return nil, fmt.Errorf("shadow: %s counterfactual run: %w", sc.Name, err)
	}

	sr := &ScenarioResult{
		Evaluations:  evals,
		Divergence:   divergence,
		ActiveDigest: Digest(activeRep),
		ShadowDigest: Digest(shadowRep),
		AdmitRate:    delta(activeRep.AdmitRate, candRep.AdmitRate),
		Revenue:      delta(activeRep.Revenue, candRep.Revenue),
		Utilization:  delta(activeUtil, candUtil),
	}
	if err := invariant.CheckShadowInert(sr.ActiveDigest, sr.ShadowDigest); err != nil {
		sr.Violations = append(sr.Violations, err.Error())
	} else {
		sr.ShadowClean = true
	}
	for _, rep := range []*sim.ScenarioReport{activeRep, shadowRep, candRep} {
		sr.InvariantViolations += rep.InvariantViolations
		sr.Violations = append(sr.Violations, rep.Violations...)
		sr.Violations = append(sr.Violations, rep.VerifyErrors...)
	}
	switch {
	case !sr.ShadowClean:
		sr.InvariantViolations++
		sr.Verdict = "shadow-mutated-state"
	case sr.InvariantViolations > 0:
		sr.Verdict = "invariant-violations"
	case len(sr.Violations) > 0:
		sr.Verdict = "verify-errors"
	default:
		sr.Verdict = "ok"
	}
	return sr, nil
}

// Run evaluates the candidate over every given scenario and aggregates
// the oracle verdict.
func Run(scenarios []sim.Scenario, cfg Config) (*Report, error) {
	if len(scenarios) == 0 {
		return nil, fmt.Errorf("shadow: no scenarios to evaluate")
	}
	rep := &Report{
		Schema:    Schema,
		Candidate: cfg.Candidate,
		Seed:      cfg.Seed,
		Ops:       cfg.Ops,
		Shards:    cfg.Shards,
		Scenarios: make(map[string]*ScenarioResult, len(scenarios)),
		Verdict:   "ok",
	}
	for _, sc := range scenarios {
		sr, err := Evaluate(sc, cfg)
		if err != nil {
			return nil, err
		}
		rep.Scenarios[sc.Name] = sr
		rep.InvariantViolations += sr.InvariantViolations
		if sr.Verdict != "ok" && rep.Verdict == "ok" {
			rep.Verdict = sr.Verdict
		}
	}
	return rep, nil
}
