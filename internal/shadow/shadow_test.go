package shadow

import (
	"bytes"
	"encoding/json"
	"testing"

	"gqosm/internal/sim"
)

func scenario(t *testing.T, name string) sim.Scenario {
	t.Helper()
	sc, ok := sim.LookupScenario(name)
	if !ok {
		t.Fatalf("scenario %q missing", name)
	}
	return sc
}

// TestEvaluateDivergenceShape pins, per candidate, WHICH decision family
// diverges on a fixed seed: revenue-greedy only ever answers partition
// admissions differently, upgrade-last only reorders compensation
// ladders. A divergence appearing in any other family means a candidate
// is reaching decisions it should not touch.
func TestEvaluateDivergenceShape(t *testing.T) {
	cases := []struct {
		candidate, scenario string
		divergeFamily       string
	}{
		// flash-crowd saturates C_G, so the reserve-admitting candidate
		// answers many admissions differently.
		{"revenue-greedy", "flash-crowd", "partition"},
		// reneg-storm's failure pressure builds multi-rung ladders, which
		// upgrade-last reorders by recovered capacity.
		{"upgrade-last", "reneg-storm", "ladder"},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.candidate, func(t *testing.T) {
			sr, err := Evaluate(scenario(t, tc.scenario), Config{
				Candidate: tc.candidate, Seed: 7, Ops: 1500,
			})
			if err != nil {
				t.Fatal(err)
			}
			if sr.Verdict != "ok" {
				t.Fatalf("verdict = %q, violations %v", sr.Verdict, sr.Violations)
			}
			if !sr.ShadowClean {
				t.Fatalf("shadow run not clean: active %s shadow %s", sr.ActiveDigest, sr.ShadowDigest)
			}
			if sr.Evaluations <= 0 {
				t.Fatalf("evaluations = %d, want > 0", sr.Evaluations)
			}
			for family, n := range sr.Divergence {
				if family == tc.divergeFamily {
					if n <= 0 {
						t.Errorf("divergence[%s] = %d, want > 0", family, n)
					}
					continue
				}
				if n != 0 {
					t.Errorf("divergence[%s] = %d, want 0 (only %s should diverge)", family, n, tc.divergeFamily)
				}
			}
		})
	}
}

// TestRunDeterminism requires two evaluations at the same (candidate,
// seed, ops) to serialize byte-identically — the property the CI
// determinism gate diffs without stripping anything.
func TestRunDeterminism(t *testing.T) {
	scs := []sim.Scenario{scenario(t, "flash-crowd"), scenario(t, "lease-churn")}
	cfg := Config{Candidate: "revenue-greedy", Seed: 7, Ops: 800}
	var out [2][]byte
	for i := range out {
		rep, err := Run(scs, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Failed() {
			t.Fatalf("run %d verdict = %q", i, rep.Verdict)
		}
		buf, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = buf
	}
	if !bytes.Equal(out[0], out[1]) {
		t.Errorf("reports differ across reruns:\n%s\n%s", out[0], out[1])
	}
}

func TestEvaluateUnknownCandidate(t *testing.T) {
	if _, err := Evaluate(scenario(t, "flash-crowd"), Config{Candidate: "no-such"}); err == nil {
		t.Fatal("unknown candidate did not fail")
	}
	if _, err := Run(nil, Config{Candidate: "paper"}); err == nil {
		t.Fatal("empty scenario list did not fail")
	}
}

// TestReportSchema pins the report envelope CI's jq gates parse.
func TestReportSchema(t *testing.T) {
	rep, err := Run([]sim.Scenario{scenario(t, "lease-churn")}, Config{
		Candidate: "upgrade-last", Seed: 1, Ops: 500,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schema != Schema || rep.Candidate != "upgrade-last" || rep.Seed != 1 {
		t.Errorf("envelope = %+v", rep)
	}
	sr := rep.Scenarios["lease-churn"]
	if sr == nil {
		t.Fatal("lease-churn result missing")
	}
	if sr.ActiveDigest == "" || sr.ShadowDigest == "" || len(sr.Divergence) == 0 {
		t.Errorf("scenario result incomplete: %+v", sr)
	}
	if (rep.Verdict == "ok") == rep.Failed() {
		t.Errorf("Failed() inconsistent with verdict %q", rep.Verdict)
	}
}
