package obs

import (
	"fmt"
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterNilSafe(t *testing.T) {
	var c *Counter
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Fatal("nil counter has a value")
	}
	var g *Gauge
	g.Set(3)
	g.Add(1)
	if g.Value() != 0 {
		t.Fatal("nil gauge has a value")
	}
	var h *Histogram
	h.Observe(1)
	if h.Count() != 0 || h.Sum() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("nil histogram has state")
	}
	var r *Registry
	if r.Counter("x", "") != nil || r.Gauge("x", "") != nil || r.Histogram("x", "", nil) != nil {
		t.Fatal("nil registry returned non-nil handles")
	}
	r.GaugeFunc("x", "", func() float64 { return 1 })
	r.Trace().Add(TraceEvent{})
	if err := r.WritePrometheus(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
}

func TestRegistryIdempotentRegistration(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("gqosm_test_total", "help", "op", "x")
	b := r.Counter("gqosm_test_total", "help", "op", "x")
	if a != b {
		t.Fatal("same name+labels returned distinct counters")
	}
	c := r.Counter("gqosm_test_total", "help", "op", "y")
	if a == c {
		t.Fatal("distinct labels shared a counter")
	}
	h1 := r.Histogram("gqosm_lat", "", []float64{1, 2})
	h2 := r.Histogram("gqosm_lat", "", []float64{99})
	if h1 != h2 {
		t.Fatal("histogram registration not idempotent")
	}
}

// TestHistogramBucketBoundaries pins the le <= v convention: an
// observation exactly on a bound lands in that bound's bucket.
func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("b", "", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 1.0001, 10, 99, 100, 101} {
		h.Observe(v)
	}
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`b_bucket{le="1"} 2`,   // 0.5, 1
		`b_bucket{le="10"} 4`,  // + 1.0001, 10
		`b_bucket{le="100"} 6`, // + 99, 100
		`b_bucket{le="+Inf"} 7`,
		`b_count 7`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	if h.Count() != 7 {
		t.Fatalf("count = %d", h.Count())
	}
	if got := h.Sum(); math.Abs(got-312.5001) > 1e-9 {
		t.Fatalf("sum = %v", got)
	}
}

func TestHistogramQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("q", "", []float64{10, 20, 30})
	// 10 observations uniformly in (0,10]: p50 interpolates to ~5.
	for i := 0; i < 10; i++ {
		h.Observe(5)
	}
	if got := h.Quantile(0.5); math.Abs(got-5) > 1e-9 {
		t.Fatalf("p50 = %v, want 5", got)
	}
	// Push 10 more into (20,30]; p95 must land in the top bucket.
	for i := 0; i < 10; i++ {
		h.Observe(25)
	}
	if got := h.Quantile(0.95); got <= 20 || got > 30 {
		t.Fatalf("p95 = %v, want in (20,30]", got)
	}
	// Observations beyond the last bound clamp to it.
	h2 := r.Histogram("q2", "", []float64{1})
	h2.Observe(50)
	if got := h2.Quantile(0.99); got != 1 {
		t.Fatalf("overflow quantile = %v, want clamp to 1", got)
	}
}

func TestCounterConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("gqosm_conc_total", "")
	g := r.Gauge("gqosm_conc_gauge", "")
	h := r.Histogram("gqosm_conc_lat", "", nil)
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i%100) * 1e-6)
			}
		}(w)
	}
	// Concurrent scrapes must be race-free too.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			var sb strings.Builder
			_ = r.WritePrometheus(&sb)
		}
	}()
	wg.Wait()
	<-done
	if c.Value() != workers*per {
		t.Fatalf("counter = %d, want %d", c.Value(), workers*per)
	}
	if g.Value() != workers*per {
		t.Fatalf("gauge = %v, want %d", g.Value(), workers*per)
	}
	if h.Count() != workers*per {
		t.Fatalf("hist count = %d, want %d", h.Count(), workers*per)
	}
}

func TestExpositionFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("gqosm_ops_total", "operations", "event", "accept").Add(3)
	r.Gauge("gqosm_load", "load").Set(0.5)
	r.GaugeFunc("gqosm_fn", "computed", func() float64 { return 42 }, "pool", "G")
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# HELP gqosm_ops_total operations",
		"# TYPE gqosm_ops_total counter",
		`gqosm_ops_total{event="accept"} 3`,
		"# TYPE gqosm_load gauge",
		"gqosm_load 0.5",
		`gqosm_fn{pool="G"} 42`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	// Families appear in registration order.
	if strings.Index(out, "gqosm_ops_total") > strings.Index(out, "gqosm_load") {
		t.Fatal("families out of registration order")
	}
}

func TestTraceWraparound(t *testing.T) {
	tr := NewTrace(4)
	for i := 0; i < 10; i++ {
		tr.Add(TraceEvent{Session: fmt.Sprintf("s%d", i), At: time.Unix(int64(i), 0)})
	}
	if tr.Total() != 10 {
		t.Fatalf("total = %d", tr.Total())
	}
	evs := tr.Events()
	if len(evs) != 4 {
		t.Fatalf("retained %d events, want 4", len(evs))
	}
	for i, ev := range evs {
		if want := fmt.Sprintf("s%d", 6+i); ev.Session != want {
			t.Fatalf("event %d = %q, want %q (oldest-first)", i, ev.Session, want)
		}
	}
}

func TestTracePartialFill(t *testing.T) {
	tr := NewTrace(8)
	tr.Add(TraceEvent{Session: "a"})
	tr.Add(TraceEvent{Session: "b"})
	evs := tr.Events()
	if len(evs) != 2 || evs[0].Session != "a" || evs[1].Session != "b" {
		t.Fatalf("events = %+v", evs)
	}
}

func TestTraceConcurrent(t *testing.T) {
	tr := NewTrace(16)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				tr.Add(TraceEvent{Session: "x"})
				_ = tr.Events()
			}
		}()
	}
	wg.Wait()
	if tr.Total() != 2000 {
		t.Fatalf("total = %d", tr.Total())
	}
}

func TestHandlerServesText(t *testing.T) {
	r := NewRegistry()
	r.Counter("gqosm_h_total", "").Inc()
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if !strings.Contains(rec.Body.String(), "gqosm_h_total 1") {
		t.Fatalf("handler body:\n%s", rec.Body.String())
	}
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Fatalf("content-type %q", ct)
	}
}
