package obs

import (
	"sync"
	"time"
)

// DefTraceCapacity bounds the lifecycle trace ring. 1024 events cover
// several minutes of heavy broker traffic while keeping the ring under
// ~100KB.
const DefTraceCapacity = 1024

// TraceEvent is one structured lifecycle event: a session moved
// between SLA states (or was created/destroyed), with the capacity
// delta that move applied to the partition pools and why.
type TraceEvent struct {
	At      time.Time `json:"at"`
	Session string    `json:"session"`
	From    string    `json:"from"`
	To      string    `json:"to"`
	Delta   string    `json:"delta,omitempty"`
	Reason  string    `json:"reason,omitempty"`
}

// Trace is a bounded ring buffer of TraceEvents. When full, new events
// overwrite the oldest. All methods are safe for concurrent use and
// safe on a nil receiver.
type Trace struct {
	mu    sync.Mutex
	buf   []TraceEvent
	next  int   // index the next event is written to
	total int64 // events ever added
}

// NewTrace returns a ring holding up to capacity events (minimum 1).
func NewTrace(capacity int) *Trace {
	if capacity < 1 {
		capacity = 1
	}
	return &Trace{buf: make([]TraceEvent, 0, capacity)}
}

// Add appends an event, evicting the oldest when full. Safe on a nil
// receiver.
func (t *Trace) Add(ev TraceEvent) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.buf) < cap(t.buf) {
		t.buf = append(t.buf, ev)
	} else {
		t.buf[t.next] = ev
	}
	t.next = (t.next + 1) % cap(t.buf)
	t.total++
}

// Events returns the retained events, oldest first. Safe on a nil
// receiver.
func (t *Trace) Events() []TraceEvent {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]TraceEvent, 0, len(t.buf))
	if len(t.buf) < cap(t.buf) {
		return append(out, t.buf...)
	}
	out = append(out, t.buf[t.next:]...)
	return append(out, t.buf[:t.next]...)
}

// Total returns how many events were ever added, including evicted
// ones. Safe on a nil receiver.
func (t *Trace) Total() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}
