// Package obs is a dependency-free metrics layer: atomic counters,
// gauges, callback gauges, and fixed-bucket latency histograms, with
// Prometheus text-format (0.0.4) exposition. It exists so the broker's
// adaptation scheme — admissions, degradations, promotions, optimizer
// wins — is observable in production without pulling in a client
// library the paper-era stack never had.
//
// All metric handles are nil-safe: calling Inc/Add/Set/Observe on a
// nil handle is a no-op, so components can be instrumented
// unconditionally and pay nothing when no registry is attached.
package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// DefLatencyBuckets spans 1µs .. ~10s in roughly 3x steps — broker
// operations are in-memory (microseconds) but RM adapters may do real
// I/O (milliseconds to seconds).
var DefLatencyBuckets = []float64{
	1e-6, 3e-6, 1e-5, 3e-5, 1e-4, 3e-4, 1e-3, 3e-3,
	1e-2, 3e-2, 1e-1, 3e-1, 1, 3, 10,
}

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Inc adds one. Safe on a nil receiver.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n. Safe on a nil receiver.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count. Safe on a nil receiver.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic float64 that can go up and down.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v. Safe on a nil receiver.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adds d. Safe on a nil receiver.
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value. Safe on a nil receiver.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket histogram of float64 observations
// (by convention, seconds).
type Histogram struct {
	bounds []float64 // upper bounds, ascending; implicit +Inf last
	counts []atomic.Int64
	count  atomic.Int64
	sum    Gauge
}

// Observe records v. Safe on a nil receiver.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the number of observations. Safe on a nil receiver.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observations. Safe on a nil receiver.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum.Value()
}

// Quantile estimates the q-th quantile (0 < q <= 1) by linear
// interpolation within the bucket containing the target rank. Returns
// 0 when empty. Observations in the +Inf bucket clamp to the top
// finite bound. Safe on a nil receiver.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum int64
	for i := range h.counts {
		n := h.counts[i].Load()
		if n == 0 {
			continue
		}
		cum += n
		if float64(cum) < rank {
			continue
		}
		if i >= len(h.bounds) { // +Inf bucket
			return h.bounds[len(h.bounds)-1]
		}
		lower := 0.0
		if i > 0 {
			lower = h.bounds[i-1]
		}
		frac := (rank - float64(cum-n)) / float64(n)
		return lower + (h.bounds[i]-lower)*frac
	}
	return h.bounds[len(h.bounds)-1]
}

// metricKind discriminates series stored in a family.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindGaugeFunc
	kindHistogram
)

func (k metricKind) promType() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindHistogram:
		return "histogram"
	default:
		return "gauge"
	}
}

type series struct {
	labels string // rendered `{k="v",...}` or ""
	ctr    *Counter
	gauge  *Gauge
	fn     func() float64
	hist   *Histogram
}

type family struct {
	name  string
	help  string
	kind  metricKind
	order []string
	by    map[string]*series
}

// Registry holds an ordered set of metric families plus the lifecycle
// trace ring. The zero-value-adjacent constructor is NewRegistry; a
// nil *Registry is safe to call and returns nil (no-op) handles.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	order    []string
	trace    *Trace
}

// NewRegistry returns an empty registry with a lifecycle trace ring of
// DefTraceCapacity events.
func NewRegistry() *Registry {
	return &Registry{
		families: make(map[string]*family),
		trace:    NewTrace(DefTraceCapacity),
	}
}

// Trace returns the registry's lifecycle trace ring. Safe on a nil
// receiver (returns nil, whose Add is a no-op).
func (r *Registry) Trace() *Trace {
	if r == nil {
		return nil
	}
	return r.trace
}

// renderLabels turns ("k","v","k2","v2") pairs into `{k="v",k2="v2"}`.
// Odd trailing names are dropped.
func renderLabels(pairs []string) string {
	if len(pairs) < 2 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i := 0; i+1 < len(pairs); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", pairs[i], pairs[i+1])
	}
	b.WriteByte('}')
	return b.String()
}

// getSeries returns the series for name+labels, creating family and
// series as needed. Registration is idempotent: asking again for the
// same name and labels returns the original series.
func (r *Registry) getSeries(name, help string, kind metricKind, labels []string) *series {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind, by: make(map[string]*series)}
		r.families[name] = f
		r.order = append(r.order, name)
	}
	key := renderLabels(labels)
	s := f.by[key]
	if s == nil {
		s = &series{labels: key}
		f.by[key] = s
		f.order = append(f.order, key)
	}
	return s
}

// Counter registers (or retrieves) a counter series. labels are
// alternating name/value pairs baked into the series identity.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	s := r.getSeries(name, help, kindCounter, labels)
	if s == nil {
		return nil
	}
	if s.ctr == nil {
		s.ctr = &Counter{}
	}
	return s.ctr
}

// Gauge registers (or retrieves) a gauge series.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	s := r.getSeries(name, help, kindGauge, labels)
	if s == nil {
		return nil
	}
	if s.gauge == nil {
		s.gauge = &Gauge{}
	}
	return s.gauge
}

// GaugeFunc registers a gauge whose value is computed by fn at scrape
// time — zero hot-path cost for values derivable from existing state.
// fn must be safe to call from any goroutine.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...string) {
	s := r.getSeries(name, help, kindGaugeFunc, labels)
	if s == nil {
		return
	}
	s.fn = fn
}

// Histogram registers (or retrieves) a histogram series with the given
// ascending upper bounds (nil means DefLatencyBuckets). Bounds of an
// existing series are not changed.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...string) *Histogram {
	s := r.getSeries(name, help, kindHistogram, labels)
	if s == nil {
		return nil
	}
	if s.hist == nil {
		if bounds == nil {
			bounds = DefLatencyBuckets
		}
		h := &Histogram{bounds: append([]float64(nil), bounds...)}
		h.counts = make([]atomic.Int64, len(h.bounds)+1)
		s.hist = h
	}
	return s.hist
}

// fmtValue renders a sample value the way Prometheus expects.
func fmtValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return fmtFloat(v)
}

func fmtFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// WritePrometheus writes every family in registration order in the
// Prometheus text exposition format (version 0.0.4).
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	names := append([]string(nil), r.order...)
	fams := make([]*family, len(names))
	for i, n := range names {
		fams[i] = r.families[n]
	}
	// Snapshot series lists under the lock; sample reads below are
	// atomic and need no lock.
	type snap struct {
		fam    *family
		series []*series
	}
	snaps := make([]snap, len(fams))
	for i, f := range fams {
		ss := make([]*series, 0, len(f.order))
		for _, k := range f.order {
			ss = append(ss, f.by[k])
		}
		snaps[i] = snap{fam: f, series: ss}
	}
	r.mu.Unlock()

	for _, sn := range snaps {
		f := sn.fam
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind.promType()); err != nil {
			return err
		}
		for _, s := range sn.series {
			if err := writeSeries(w, f, s); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeSeries(w io.Writer, f *family, s *series) error {
	switch f.kind {
	case kindCounter:
		_, err := fmt.Fprintf(w, "%s%s %d\n", f.name, s.labels, s.ctr.Value())
		return err
	case kindGauge:
		_, err := fmt.Fprintf(w, "%s%s %s\n", f.name, s.labels, fmtValue(s.gauge.Value()))
		return err
	case kindGaugeFunc:
		v := 0.0
		if s.fn != nil {
			v = s.fn()
		}
		_, err := fmt.Fprintf(w, "%s%s %s\n", f.name, s.labels, fmtValue(v))
		return err
	case kindHistogram:
		h := s.hist
		var cum int64
		for i, bound := range h.bounds {
			cum += h.counts[i].Load()
			if err := writeBucket(w, f.name, s.labels, fmtValue(bound), cum); err != nil {
				return err
			}
		}
		cum += h.counts[len(h.bounds)].Load()
		if err := writeBucket(w, f.name, s.labels, "+Inf", cum); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", f.name, s.labels, fmtValue(h.Sum())); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count%s %d\n", f.name, s.labels, h.Count())
		return err
	}
	return nil
}

// writeBucket emits one cumulative `_bucket` sample, splicing the le
// label into any existing label set.
func writeBucket(w io.Writer, name, labels, le string, cum int64) error {
	if labels == "" {
		_, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, le, cum)
		return err
	}
	spliced := labels[:len(labels)-1] + fmt.Sprintf(",le=%q}", le)
	_, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, spliced, cum)
	return err
}

// Handler returns an http.Handler serving the registry in Prometheus
// text format.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}
