package core

// Hot-path tests and benchmarks: the discovery cache (hits, generation
// invalidation, lease expiry, FIFO eviction, error passthrough), the
// lock-free allocator view, Events() snapshot reuse, and the
// deterministic allocation gates that keep the admission path lean.

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"gqosm/internal/clockx"
	"gqosm/internal/gara"
	"gqosm/internal/registry"
	"gqosm/internal/resource"
	"gqosm/internal/sla"
)

// simulationProps is the property set every test service advertises.
func simulationProps() []registry.Property {
	return []registry.Property{
		registry.NumProp("cpu-nodes", 26),
		registry.NumProp("memory-mb", 10240),
		registry.NumProp("disk-gb", 200),
		registry.NumProp("bandwidth-mbps", 1000),
	}
}

// miniBroker builds the smallest broker that can run discover and
// requestService: a compute-only GARA over a private pool, no GRAM/NRM.
func miniBroker(tb testing.TB, clock *clockx.Manual, finder Finder, disable bool) *Broker {
	tb.Helper()
	pool := resource.NewPool("mini", resource.Capacity{CPU: 64, MemoryMB: 65536, DiskGB: 1024, BandwidthMbps: 10000})
	g := gara.NewSystem()
	g.RegisterManager(gara.NewComputeManager(pool))
	b, err := NewBroker(Config{
		Domain: "mini",
		Clock:  clock,
		Plan: CapacityPlan{
			Guaranteed: resource.Capacity{CPU: 40, MemoryMB: 40960, DiskGB: 640, BandwidthMbps: 6000},
			Adaptive:   resource.Capacity{CPU: 12, MemoryMB: 12288, DiskGB: 192, BandwidthMbps: 2000},
			BestEffort: resource.Capacity{CPU: 12, MemoryMB: 12288, DiskGB: 192, BandwidthMbps: 2000},
		},
		Registry:      finder,
		GARA:          g,
		DisableCaches: disable,
		ConfirmWindow: 2 * time.Minute,
	})
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(b.Close)
	return b
}

// miniRequest is a compute-only guaranteed request against the
// "simulation" service.
func miniRequest() Request {
	return Request{
		Service: "simulation",
		Client:  "hotpath-client",
		Class:   sla.ClassGuaranteed,
		Spec: sla.NewSpec(
			sla.Exact(resource.CPU, 2),
			sla.Exact(resource.MemoryMB, 512),
		),
		Start: t0,
		End:   t5,
	}
}

func TestDiscoverCacheHit(t *testing.T) {
	clock := clockx.NewManual(t0)
	reg := registry.New(clock)
	key, err := reg.Register(registry.Service{Name: "simulation", Provider: "site-a", Properties: simulationProps()})
	if err != nil {
		t.Fatal(err)
	}
	b := miniBroker(t, clock, reg, false)
	if b.dcache == nil {
		t.Fatal("discovery cache not engaged for the in-process registry")
	}
	req := miniRequest()
	floor := req.Spec.Floor()

	for i := 0; i < 3; i++ {
		got, err := b.discover(req, floor)
		if err != nil {
			t.Fatalf("discover %d: %v", i, err)
		}
		if got != key {
			t.Fatalf("discover %d returned %q, want %q", i, got, key)
		}
	}
	if m := b.dcache.misses.Value(); m != 1 {
		t.Errorf("misses = %d, want 1 (only the first call fills)", m)
	}
	if h := b.dcache.hits.Value(); h != 2 {
		t.Errorf("hits = %d, want 2", h)
	}
}

func TestDiscoverCacheDisabled(t *testing.T) {
	clock := clockx.NewManual(t0)
	reg := registry.New(clock)
	if _, err := reg.Register(registry.Service{Name: "simulation", Provider: "site-a", Properties: simulationProps()}); err != nil {
		t.Fatal(err)
	}
	b := miniBroker(t, clock, reg, true)
	if b.dcache != nil {
		t.Fatal("DisableCaches did not disable the discovery cache")
	}
	if _, err := b.discover(miniRequest(), miniRequest().Spec.Floor()); err != nil {
		t.Fatal(err)
	}
}

// TestDiscoverCacheMutationInvalidation deregisters the cached service
// and registers a replacement: the very next discover must return the
// replacement's key, never the stale one.
func TestDiscoverCacheMutationInvalidation(t *testing.T) {
	clock := clockx.NewManual(t0)
	reg := registry.New(clock)
	oldKey, err := reg.Register(registry.Service{Name: "simulation", Provider: "site-a", Properties: simulationProps()})
	if err != nil {
		t.Fatal(err)
	}
	b := miniBroker(t, clock, reg, false)
	req := miniRequest()
	floor := req.Spec.Floor()

	if got, err := b.discover(req, floor); err != nil || got != oldKey {
		t.Fatalf("warm discover = %q, %v; want %q", got, err, oldKey)
	}
	genBefore := reg.Generation()
	if err := reg.Deregister(oldKey); err != nil {
		t.Fatal(err)
	}
	newKey, err := reg.Register(registry.Service{Name: "simulation", Provider: "site-b", Properties: simulationProps()})
	if err != nil {
		t.Fatal(err)
	}
	if g := reg.Generation(); g <= genBefore {
		t.Fatalf("generation %d not bumped past %d by mutations", g, genBefore)
	}
	got, err := b.discover(req, floor)
	if err != nil {
		t.Fatal(err)
	}
	if got == oldKey {
		t.Fatal("discover returned the deregistered service (stale cache entry)")
	}
	if got != newKey {
		t.Fatalf("discover = %q, want replacement %q", got, newKey)
	}
}

// TestDiscoverCacheLeaseExpiry lets the cached service's lease lapse
// without any registry mutation: the generation is unchanged, but the
// hit must be refused and discovery must fail like an uncached Find.
func TestDiscoverCacheLeaseExpiry(t *testing.T) {
	clock := clockx.NewManual(t0)
	reg := registry.New(clock)
	if _, err := reg.Register(registry.Service{
		Name: "simulation", Provider: "site-a",
		Properties: simulationProps(),
		LeaseUntil: t0.Add(time.Hour),
	}); err != nil {
		t.Fatal(err)
	}
	b := miniBroker(t, clock, reg, false)
	req := miniRequest()
	floor := req.Spec.Floor()

	if _, err := b.discover(req, floor); err != nil {
		t.Fatalf("warm discover: %v", err)
	}
	if _, err := b.discover(req, floor); err != nil {
		t.Fatalf("cached discover: %v", err)
	}
	gen := reg.Generation()
	clock.Advance(2 * time.Hour)
	if g := reg.Generation(); g != gen {
		t.Fatalf("clock advance changed the generation (%d -> %d)", gen, g)
	}
	_, err := b.discover(req, floor)
	if !errors.Is(err, ErrNoService) {
		t.Fatalf("discover after lease expiry = %v, want ErrNoService", err)
	}
	if n := b.dcache.len(); n != 0 {
		// The failed refill must not have cached the empty result; the
		// stale entry may linger but only this key existed.
		t.Logf("cache still holds %d entr(ies) after failed refill", n)
	}
	// The failure is not sticky: re-registering makes discovery succeed.
	if _, err := reg.Register(registry.Service{Name: "simulation", Provider: "site-c", Properties: simulationProps()}); err != nil {
		t.Fatal(err)
	}
	if _, err := b.discover(req, floor); err != nil {
		t.Fatalf("discover after re-register: %v", err)
	}
}

// badFilterFinder injects a malformed numeric filter value ahead of
// every Find, standing in for a corrupted query. It still implements
// Generation, so the cache layer engages.
type badFilterFinder struct{ inner *registry.Registry }

func (f badFilterFinder) Find(q registry.Query) ([]*registry.Service, error) {
	q.Filters = append([]registry.Filter{
		{Name: "cpu-nodes", Op: registry.OpGe, Value: "not-a-number"},
	}, q.Filters...)
	return f.inner.Find(q)
}
func (f badFilterFinder) Generation() uint64 { return f.inner.Generation() }

// TestDiscoverMalformedFilterIdentical is the regression test for the
// query-hoisting bugfix: a malformed filter value must fail with the
// same error on the cached and uncached paths, on every call, and the
// error must never be cached.
func TestDiscoverMalformedFilterIdentical(t *testing.T) {
	clock := clockx.NewManual(t0)
	reg := registry.New(clock)
	if _, err := reg.Register(registry.Service{Name: "simulation", Provider: "site-a", Properties: simulationProps()}); err != nil {
		t.Fatal(err)
	}
	finder := badFilterFinder{inner: reg}
	cached := miniBroker(t, clock, finder, false)
	uncached := miniBroker(t, clock, finder, true)
	if cached.dcache == nil {
		t.Fatal("cache did not engage on the Generation-capable wrapper")
	}
	req := miniRequest()
	floor := req.Spec.Floor()

	_, wantErr := uncached.discover(req, floor)
	if !errors.Is(wantErr, registry.ErrBadProperty) {
		t.Fatalf("uncached discover error = %v, want ErrBadProperty", wantErr)
	}
	for i := 0; i < 2; i++ {
		_, err := cached.discover(req, floor)
		if err == nil {
			t.Fatalf("cached discover %d succeeded, want error", i)
		}
		if !errors.Is(err, registry.ErrBadProperty) {
			t.Fatalf("cached discover %d error = %v, want ErrBadProperty", i, err)
		}
		if err.Error() != wantErr.Error() {
			t.Errorf("cached discover %d error %q differs from uncached %q", i, err, wantErr)
		}
	}
	if n := cached.dcache.len(); n != 0 {
		t.Errorf("error outcome was cached: %d entries", n)
	}
	if h := cached.dcache.hits.Value(); h != 0 {
		t.Errorf("hits = %d, want 0", h)
	}
	if m := cached.dcache.misses.Value(); m != 2 {
		t.Errorf("misses = %d, want 2 (errors fall through every time)", m)
	}
}

// TestDiscoveryCacheFIFOEviction checks that the bounded cache evicts
// oldest-first, deterministically, and counts evictions.
func TestDiscoveryCacheFIFOEviction(t *testing.T) {
	clock := clockx.NewManual(t0)
	reg := registry.New(clock)
	b := miniBroker(t, clock, reg, false)
	c := b.dcache
	c.cap = 2

	entry := func(name string) *discoveryEntry {
		return &discoveryEntry{key: registry.Key(name), name: name, gen: reg.Generation(), epoch: reg.Epoch()}
	}
	k1 := discoveryKey{service: "s1"}
	k2 := discoveryKey{service: "s2"}
	k3 := discoveryKey{service: "s3"}
	c.store(k1, entry("svc-1"))
	c.store(k2, entry("svc-2"))
	c.store(k3, entry("svc-3")) // evicts k1
	if n := c.len(); n != 2 {
		t.Fatalf("len = %d, want 2", n)
	}
	if ev := c.evictions.Value(); ev != 1 {
		t.Errorf("evictions = %d, want 1", ev)
	}
	if _, ok := c.lookup(k1, t0); ok {
		t.Error("k1 survived eviction")
	}
	if key, ok := c.lookup(k2, t0); !ok || key != "svc-2" {
		t.Errorf("k2 lookup = %q, %v", key, ok)
	}
	// Refilling an existing key keeps its FIFO position: k2 is still the
	// oldest, so the next new key evicts it, not k3.
	c.store(k2, entry("svc-2b"))
	c.store(discoveryKey{service: "s4"}, entry("svc-4"))
	if _, ok := c.lookup(k2, t0); ok {
		t.Error("k2 survived; refill must not refresh FIFO position")
	}
	if key, ok := c.lookup(k3, t0); !ok || key != "svc-3" {
		t.Errorf("k3 lookup = %q, %v", key, ok)
	}
}

// TestDiscoverConcurrentMutation hammers discover from several
// goroutines while the registry churns. The base service has the
// lowest key, so every discover — cached or not — must select it;
// run under -race this also proves the cache's synchronization.
func TestDiscoverConcurrentMutation(t *testing.T) {
	clock := clockx.NewManual(t0)
	reg := registry.New(clock)
	baseKey, err := reg.Register(registry.Service{Name: "simulation", Provider: "site-a", Properties: simulationProps()})
	if err != nil {
		t.Fatal(err)
	}
	b := miniBroker(t, clock, reg, false)
	req := miniRequest()
	floor := req.Spec.Floor()

	stop := make(chan struct{})
	var mutators sync.WaitGroup
	mutators.Add(1)
	go func() {
		defer mutators.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			k, err := reg.Register(registry.Service{Name: "simulation", Provider: "churn", Properties: simulationProps()})
			if err != nil {
				t.Error(err)
				return
			}
			if err := reg.Deregister(k); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	var readers sync.WaitGroup
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for i := 0; i < 2000; i++ {
				got, err := b.discover(req, floor)
				if err != nil {
					t.Errorf("discover: %v", err)
					return
				}
				if got != baseKey {
					t.Errorf("discover returned %q, want stable base %q", got, baseKey)
					return
				}
			}
		}()
	}
	readers.Wait()
	close(stop)
	mutators.Wait()

	if got, err := b.discover(req, floor); err != nil || got != baseKey {
		t.Fatalf("final discover = %q, %v; want %q", got, err, baseKey)
	}
}

// TestDiscoverHitAllocs is the deterministic allocation gate for the
// discovery hot path: a cache hit performs no allocations.
func TestDiscoverHitAllocs(t *testing.T) {
	clock := clockx.NewManual(t0)
	reg := registry.New(clock)
	if _, err := reg.Register(registry.Service{Name: "simulation", Provider: "site-a", Properties: simulationProps()}); err != nil {
		t.Fatal(err)
	}
	b := miniBroker(t, clock, reg, false)
	req := miniRequest()
	floor := req.Spec.Floor()
	if _, err := b.discover(req, floor); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := b.discover(req, floor); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("discovery cache hit allocates %.1f objects per call, want 0", allocs)
	}
}

// TestAllocatorViewConsistency replays a mutation sequence and, after
// every step, recomputes each published read value from the
// authoritative locked state. The two must match exactly — the view is
// a full recomputation, not an approximation.
func TestAllocatorViewConsistency(t *testing.T) {
	plan := CapacityPlan{
		Guaranteed: resource.Capacity{CPU: 15, MemoryMB: 6144, DiskGB: 120, BandwidthMbps: 700},
		Adaptive:   resource.Capacity{CPU: 6, MemoryMB: 2048, DiskGB: 40, BandwidthMbps: 200},
		BestEffort: resource.Capacity{CPU: 5, MemoryMB: 2048, DiskGB: 40, BandwidthMbps: 200},
	}
	a, err := NewAllocator(plan)
	if err != nil {
		t.Fatal(err)
	}

	check := func(step string) {
		t.Helper()
		a.mu.Lock()
		gEff := a.effectiveGLocked()
		demand := a.gDemandLocked()
		bound := a.gBoundLocked()
		be := a.beUsedLocked()
		beAvail := a.beAvailableLocked()
		adaptive := a.adaptiveUsedLocked()
		offline := a.offline
		a.mu.Unlock()

		if got := a.Offline(); !got.Equal(offline) {
			t.Errorf("%s: Offline = %v, want %v", step, got, offline)
		}
		if got, want := a.AdmissionBound(), bound; !got.Equal(want) {
			t.Errorf("%s: AdmissionBound = %v, want %v", step, got, want)
		}
		if got, want := a.AvailableGuaranteed(), bound.Sub(demand).ClampMin(resource.Capacity{}); !got.Equal(want) {
			t.Errorf("%s: AvailableGuaranteed = %v, want %v", step, got, want)
		}
		if got, want := a.AvailableBestEffort(), beAvail.Sub(be).ClampMin(resource.Capacity{}); !got.Equal(want) {
			t.Errorf("%s: AvailableBestEffort = %v, want %v", step, got, want)
		}
		load := 0.0
		for _, k := range resource.Kinds {
			if bk := bound.Get(k); bk > resource.Epsilon {
				if f := demand.Get(k) / bk; f > load {
					load = f
				}
			}
		}
		if got := a.LoadFactor(); got != load {
			t.Errorf("%s: LoadFactor = %v, want %v", step, got, load)
		}
		online := plan.Total().Sub(offline)
		used := demand.Add(be)
		var wantU resource.Capacity
		for _, k := range resource.Kinds {
			if online.Get(k) > resource.Epsilon {
				wantU = wantU.With(k, used.Get(k)/online.Get(k))
			}
		}
		if got := a.Utilization(); !got.Equal(wantU) {
			t.Errorf("%s: Utilization = %v, want %v", step, got, wantU)
		}
		snap := a.Snapshot()
		if len(snap) != 3 {
			t.Fatalf("%s: snapshot has %d pools", step, len(snap))
		}
		gSum := snap[0].Guaranteed.Add(snap[1].Guaranteed).Add(snap[2].Guaranteed)
		if want := demand.Min(gEff).Add(adaptive); !gSum.Equal(want) {
			t.Errorf("%s: snapshot guaranteed sum = %v, want %v", step, gSum, want)
		}
		beSum := snap[0].BestEffort.Add(snap[1].BestEffort).Add(snap[2].BestEffort)
		if !beSum.Equal(be) {
			t.Errorf("%s: snapshot best-effort sum = %v, want %v", step, beSum, be)
		}
	}

	check("idle")
	if _, err := a.AllocateGuaranteed("g1", resource.Capacity{CPU: 10, MemoryMB: 2048}, resource.Capacity{CPU: 5, MemoryMB: 1024}); err != nil {
		t.Fatal(err)
	}
	check("after guaranteed grant")
	if err := a.AllocateBestEffort("b1", resource.Capacity{CPU: 8, MemoryMB: 2048}); err != nil {
		t.Fatal(err)
	}
	check("after best-effort grant")
	a.SetOffline(resource.Capacity{CPU: 8, MemoryMB: 1024})
	check("after failure")
	if _, err := a.AllocateGuaranteed("g2", resource.Capacity{CPU: 5, MemoryMB: 2048}, resource.Capacity{CPU: 2, MemoryMB: 512}); err != nil {
		t.Fatal(err)
	}
	check("after second grant under failure")
	a.SetOffline(resource.Capacity{})
	check("after recovery")
	if err := a.ReleaseBestEffort("b1"); err != nil {
		t.Fatal(err)
	}
	check("after best-effort release")
	if err := a.ReleaseGuaranteed("g1"); err != nil {
		t.Fatal(err)
	}
	if err := a.ReleaseGuaranteed("g2"); err != nil {
		t.Fatal(err)
	}
	check("after drain")
	if !a.Utilization().IsZero() {
		t.Errorf("drained allocator utilization = %v, want zero", a.Utilization())
	}
}

// TestAllocatorViewRace runs mutators against lock-free readers; its
// value is under -race, proving the atomic publication is sound.
func TestAllocatorViewRace(t *testing.T) {
	plan := CapacityPlan{
		Guaranteed: resource.Capacity{CPU: 32, MemoryMB: 8192},
		Adaptive:   resource.Capacity{CPU: 8, MemoryMB: 2048},
		BestEffort: resource.Capacity{CPU: 8, MemoryMB: 2048},
	}
	a, err := NewAllocator(plan)
	if err != nil {
		t.Fatal(err)
	}
	var writers sync.WaitGroup
	for w := 0; w < 4; w++ {
		writers.Add(1)
		go func(id int) {
			defer writers.Done()
			user := fmt.Sprintf("user-%d", id)
			req := resource.Capacity{CPU: 2, MemoryMB: 256}
			for i := 0; i < 300; i++ {
				if _, err := a.AllocateGuaranteed(user, req, req); err == nil {
					_ = a.ReleaseGuaranteed(user)
				}
				if err := a.AllocateBestEffort(user, resource.Capacity{CPU: 1}); err == nil {
					_ = a.ReleaseBestEffort(user)
				}
			}
		}(w)
	}
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				_ = a.Snapshot()
				_ = a.Utilization()
				_ = a.LoadFactor()
				_ = a.AvailableGuaranteed()
				_ = a.AdmissionBound()
				_ = a.AvailableBestEffort()
				_ = a.Coverage()
				_ = a.Offline()
			}
		}()
	}
	writers.Wait()
	close(stop)
	readers.Wait()
	if !a.Utilization().IsZero() {
		t.Errorf("drained allocator utilization = %v, want zero", a.Utilization())
	}
}

// TestEventsSnapshotReuse checks the Events() snapshot contract:
// repeated calls with no new events share one backing array; a new
// event produces a fresh snapshot without disturbing the old one.
func TestEventsSnapshotReuse(t *testing.T) {
	clock := clockx.NewManual(t0)
	reg := registry.New(clock)
	if _, err := reg.Register(registry.Service{Name: "simulation", Provider: "site-a", Properties: simulationProps()}); err != nil {
		t.Fatal(err)
	}
	b := miniBroker(t, clock, reg, false)
	b.logf("test", "", "event %d", 1)
	b.logf("test", "", "event %d", 2)

	e1 := b.Events()
	e2 := b.Events()
	if len(e1) == 0 {
		t.Fatal("no events logged")
	}
	if &e1[0] != &e2[0] {
		t.Error("idle Events() calls rebuilt the snapshot; expected reuse")
	}
	lastMsg := e1[len(e1)-1].Msg

	b.logf("test", "", "event %d", 3)
	e3 := b.Events()
	if len(e3) != len(e1)+1 {
		t.Fatalf("after new event len = %d, want %d", len(e3), len(e1)+1)
	}
	if &e3[0] == &e1[0] {
		t.Error("new event did not produce a fresh snapshot")
	}
	if e1[len(e1)-1].Msg != lastMsg {
		t.Error("old snapshot mutated by later logging")
	}
	if !strings.Contains(e3[len(e3)-1].Msg, "event 3") {
		t.Errorf("latest event = %q", e3[len(e3)-1].Msg)
	}
}

// TestEventsRingWrapSnapshot checks snapshot correctness across ring
// eviction: oldest-first order, bounded length, accurate total.
func TestEventsRingWrapSnapshot(t *testing.T) {
	clock := clockx.NewManual(t0)
	pool := resource.NewPool("mini", resource.Capacity{CPU: 4})
	g := gara.NewSystem()
	g.RegisterManager(gara.NewComputeManager(pool))
	b, err := NewBroker(Config{
		Domain:      "mini",
		Clock:       clock,
		Plan:        CapacityPlan{Guaranteed: resource.Capacity{CPU: 4}},
		GARA:        g,
		EventLogCap: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(b.Close)

	for i := 1; i <= 6; i++ {
		b.logf("test", "", "event %d", i)
		// Each snapshot taken between writes must stay internally
		// consistent even while the ring wraps.
		ev := b.Events()
		if len(ev) > 4 {
			t.Fatalf("snapshot len %d exceeds cap 4", len(ev))
		}
	}
	ev := b.Events()
	if len(ev) != 4 {
		t.Fatalf("len = %d, want 4", len(ev))
	}
	for i, e := range ev {
		want := fmt.Sprintf("event %d", i+3) // events 3..6 survive
		if e.Msg != want {
			t.Errorf("ev[%d].Msg = %q, want %q", i, e.Msg, want)
		}
	}
	if total := b.EventsTotal(); total != 6 {
		t.Errorf("EventsTotal = %d, want 6", total)
	}
}

func BenchmarkDiscovery(b *testing.B) {
	clock := clockx.NewManual(t0)
	reg := registry.New(clock)
	if _, err := reg.Register(registry.Service{Name: "simulation", Provider: "site-a", Properties: simulationProps()}); err != nil {
		b.Fatal(err)
	}
	br := miniBroker(b, clock, reg, false)
	req := miniRequest()
	floor := req.Spec.Floor()
	if _, err := br.discover(req, floor); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := br.discover(req, floor); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDiscoveryUncached(b *testing.B) {
	clock := clockx.NewManual(t0)
	reg := registry.New(clock)
	if _, err := reg.Register(registry.Service{Name: "simulation", Provider: "site-a", Properties: simulationProps()}); err != nil {
		b.Fatal(err)
	}
	br := miniBroker(b, clock, reg, true)
	req := miniRequest()
	floor := req.Spec.Floor()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := br.discover(req, floor); err != nil {
			b.Fatal(err)
		}
	}
}
