package core

import (
	"errors"
	"net/http/httptest"
	"strings"
	"testing"

	"gqosm/internal/resource"
	"gqosm/internal/sla"
	"gqosm/internal/soapx"
)

// TestFigure5Testbed runs the Fig. 5 architecture end to end: a client
// speaking SOAP over HTTP to the AQoS broker, exercising all four Fig. 7
// client actions (request with QoS properties, accept offer, verification
// test, terminate).
func TestFigure5Testbed(t *testing.T) {
	h := newHarness(t)
	mux := soapx.NewMux()
	h.broker.Mount(mux)
	srv := httptest.NewServer(mux)
	defer srv.Close()
	client := NewClient(srv.URL)

	// (a) Request a service with QoS properties.
	offer, err := client.RequestService(guaranteedRequest())
	if err != nil {
		t.Fatalf("remote RequestService: %v", err)
	}
	if offer.Price <= 0 || offer.SLA.SLAID == "" {
		t.Fatalf("offer = %+v", offer)
	}
	if !strings.Contains(offer.SLA.Class, "Guaranteed") {
		t.Errorf("offer class = %q", offer.SLA.Class)
	}
	id := sla.ID(offer.SLA.SLAID)

	// (b) Accept the SLA offer.
	if _, err := client.Act(id, "accept", ""); err != nil {
		t.Fatalf("remote accept: %v", err)
	}
	doc, err := h.broker.Session(id)
	if err != nil || doc.State != sla.StateEstablished {
		t.Fatalf("after remote accept: %v %v", doc, err)
	}

	// Invoke over the wire.
	detail, err := client.Act(id, "invoke", "")
	if err != nil {
		t.Fatalf("remote invoke: %v", err)
	}
	if !strings.Contains(detail, "pid") {
		t.Errorf("invoke detail = %q", detail)
	}

	// (d) Explicit SLA verification test returns the Table-3 document.
	levels, err := client.Verify(id)
	if err != nil {
		t.Fatalf("remote verify: %v", err)
	}
	if levels.SLAID != string(id) || !levels.Conforms {
		t.Errorf("QoS_Levels = %+v", levels)
	}
	if levels.Network == nil || !strings.Contains(levels.Network.Bandwidth, "Mbps") {
		t.Errorf("network levels = %+v", levels.Network)
	}

	// Terminate over the wire.
	if _, err := client.Act(id, "terminate", "done"); err != nil {
		t.Fatalf("remote terminate: %v", err)
	}
	doc, _ = h.broker.Session(id)
	if doc.State != sla.StateTerminated {
		t.Errorf("state = %v", doc.State)
	}
}

func TestTransportReject(t *testing.T) {
	h := newHarness(t)
	mux := soapx.NewMux()
	h.broker.Mount(mux)
	srv := httptest.NewServer(mux)
	defer srv.Close()
	client := NewClient(srv.URL)

	offer, err := client.RequestService(guaranteedRequest())
	if err != nil {
		t.Fatal(err)
	}
	// (c) Reject the SLA offer.
	if _, err := client.Act(sla.ID(offer.SLA.SLAID), "reject", "too pricey"); err != nil {
		t.Fatalf("remote reject: %v", err)
	}
	if got := h.pool.InUse(t0).CPU; got != 0 {
		t.Errorf("pool holds %g CPU after remote reject", got)
	}
}

func TestTransportBestEffort(t *testing.T) {
	h := newHarness(t)
	mux := soapx.NewMux()
	h.broker.Mount(mux)
	srv := httptest.NewServer(mux)
	defer srv.Close()
	client := NewClient(srv.URL)

	if err := client.BestEffort("student", resource.Nodes(4), false); err != nil {
		t.Fatalf("remote best effort: %v", err)
	}
	if got, ok := h.broker.Allocator().BestEffortAllocation("student"); !ok || got.CPU != 4 {
		t.Errorf("allocation = %v, %v", got, ok)
	}
	if err := client.BestEffort("student", resource.Capacity{}, true); err != nil {
		t.Fatalf("remote release: %v", err)
	}
	if _, ok := h.broker.Allocator().BestEffortAllocation("student"); ok {
		t.Error("allocation survived release")
	}
}

func TestTransportFaults(t *testing.T) {
	h := newHarness(t)
	mux := soapx.NewMux()
	h.broker.Mount(mux)
	srv := httptest.NewServer(mux)
	defer srv.Close()
	client := NewClient(srv.URL)

	// Unknown SLA surfaces as a fault.
	var fault *soapx.Fault
	if _, err := client.Act("ghost", "accept", ""); !errors.As(err, &fault) {
		t.Errorf("err = %v, want fault", err)
	}
	// Unknown action.
	if _, err := client.Act("ghost", "dance", ""); !errors.As(err, &fault) {
		t.Errorf("err = %v, want fault", err)
	}
	// A request no registered service can satisfy.
	bad := guaranteedRequest()
	bad.Service = "nothing"
	if _, err := client.RequestService(bad); !errors.As(err, &fault) {
		t.Errorf("err = %v, want fault", err)
	}
	if !strings.Contains(fault.String, "no service") {
		t.Errorf("fault = %+v", fault)
	}
	// Bad class is rejected at decode.
	req := guaranteedRequest()
	req.Class = sla.Class(42)
	if _, err := client.RequestService(req); err == nil {
		t.Error("bad class accepted")
	}
}

func TestTransportRangeAndListSpecs(t *testing.T) {
	h := newHarness(t)
	mux := soapx.NewMux()
	h.broker.Mount(mux)
	srv := httptest.NewServer(mux)
	defer srv.Close()
	client := NewClient(srv.URL)

	req := controlledRequest("remote-cl")
	req.Spec.Params[resource.DiskGB] = sla.List(resource.DiskGB, 10, 20, 40)
	offer, err := client.RequestService(req)
	if err != nil {
		t.Fatalf("remote controlled-load request: %v", err)
	}
	doc, err := h.broker.Session(sla.ID(offer.SLA.SLAID))
	if err != nil {
		t.Fatal(err)
	}
	p, ok := doc.Spec.Param(resource.DiskGB)
	if !ok || p.Form != sla.FormList || len(p.Values) != 3 {
		t.Errorf("list param lost in transport: %+v", p)
	}
	p, ok = doc.Spec.Param(resource.CPU)
	if !ok || p.Form != sla.FormRange || p.Min != 2 || p.Max != 8 {
		t.Errorf("range param lost in transport: %+v", p)
	}
}
