package core

// Durability tests: crash the broker at interesting lifecycle points,
// Recover from the WAL directory against the surviving substrates, and
// check the rebuilt broker matches the dead one exactly — sessions,
// allocator book, best-effort table, ledger aggregates — then keeps
// operating (terminate drains the pool, re-armed confirm timers fire).

import (
	"encoding/json"
	"sync"
	"testing"
	"time"

	"gqosm/internal/clockx"
	"gqosm/internal/faultx"
	"gqosm/internal/gara"
	"gqosm/internal/gram"
	"gqosm/internal/mds"
	"gqosm/internal/nrm"
	"gqosm/internal/obs"
	"gqosm/internal/pricing"
	"gqosm/internal/registry"
	"gqosm/internal/resource"
	"gqosm/internal/sla"
)

// durableHarness is newHarness plus a WAL directory and the Config kept
// around so tests can Crash the broker and Recover a replacement against
// the same (surviving) substrates.
type durableHarness struct {
	clock  *clockx.Manual
	cfg    Config
	broker *Broker
	pool   *resource.Pool
	g      *gara.System
	netMgr *nrm.Manager
	reg    *registry.Registry
	inj    *faultx.Injector
}

func newDurableHarness(t *testing.T, snapshotEvery int, mods ...func(*Config)) *durableHarness {
	t.Helper()
	clock := clockx.NewManual(t0)
	inj := faultx.New(1, clock)

	pool := resource.NewPool("sgi", resource.Capacity{CPU: 26, MemoryMB: 10240, DiskGB: 200, BandwidthMbps: 1100})
	topo := nrm.NewTopology()
	for _, d := range []struct{ name, cidr string }{
		{"site-a", "192.200.168.0/24"},
		{"site-c", "10.10.0.0/16"},
	} {
		if err := topo.AddDomain(d.name, d.cidr); err != nil {
			t.Fatal(err)
		}
	}
	if err := topo.AddLink("site-a", "site-c", 100); err != nil {
		t.Fatal(err)
	}
	netMgr := nrm.NewManager("site-a", topo)

	g := gara.NewSystem()
	g.RegisterManager(gara.NewComputeManager(pool))
	g.RegisterManager(gara.NewNetworkManager(netMgr))

	reg := registry.New(clock)
	if _, err := reg.Register(registry.Service{
		Name:     "simulation",
		Provider: "site-a",
		Properties: []registry.Property{
			registry.NumProp("cpu-nodes", 26),
			registry.NumProp("memory-mb", 10240),
			registry.NumProp("disk-gb", 200),
			registry.NumProp("bandwidth-mbps", 1000),
		},
	}); err != nil {
		t.Fatal(err)
	}

	dir := mds.NewDirectory()
	if err := dir.Register("sgi", func() mds.Attributes {
		return mds.Attributes{"cpu-free": "26"}
	}); err != nil {
		t.Fatal(err)
	}

	gramM := gram.NewManager(clock)
	t.Cleanup(gramM.Close)

	cfg := Config{
		Domain: "site-a",
		Clock:  clock,
		Plan: CapacityPlan{
			Guaranteed: resource.Capacity{CPU: 15, MemoryMB: 6144, DiskGB: 120, BandwidthMbps: 700},
			Adaptive:   resource.Capacity{CPU: 6, MemoryMB: 2048, DiskGB: 40, BandwidthMbps: 200},
			BestEffort: resource.Capacity{CPU: 5, MemoryMB: 2048, DiskGB: 40, BandwidthMbps: 200},
		},
		Registry:      reg,
		GARA:          g,
		GRAM:          gramM,
		NRM:           netMgr,
		MDS:           dir,
		ConfirmWindow: 2 * time.Minute,
		Faults:        inj,
		RMPolicy:      RetryPolicy{Attempts: 2},
		Durability:    DurabilityConfig{Dir: t.TempDir(), SnapshotEvery: snapshotEvery},
	}
	for _, mod := range mods {
		mod(&cfg)
	}
	broker, err := NewBroker(cfg)
	if err != nil {
		t.Fatal(err)
	}
	h := &durableHarness{clock: clock, cfg: cfg, broker: broker, pool: pool, g: g, netMgr: netMgr, reg: reg, inj: inj}
	t.Cleanup(func() { h.broker.Close() })
	return h
}

// crashAndRecover kills the live broker and rebuilds its replacement
// from the WAL directory.
func (h *durableHarness) crashAndRecover(t *testing.T) *RecoverStats {
	t.Helper()
	h.broker.Crash()
	b, stats, err := Recover(h.cfg)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	h.broker = b
	return stats
}

// brokerDigest is the comparable state image used to assert the
// recovered broker matches the dead one.
type brokerDigest struct {
	Sessions []SessionInfo
	Ledger   pricing.State
}

func digest(b *Broker) brokerDigest {
	var st pricing.State
	b.Ledger().ExportWith(func(s pricing.State) { st = s })
	return brokerDigest{Sessions: b.SessionInfos(), Ledger: st}
}

func mustJSON(t *testing.T, v any) string {
	t.Helper()
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// TestRecoverRoundTrip: a broker with an active session, an accepted
// session, a still-open proposal and a best-effort grant crashes; the
// recovered broker carries identical state and keeps operating — the
// active session terminates cleanly and the re-armed confirm timer
// expires the proposal on schedule.
func TestRecoverRoundTrip(t *testing.T) {
	h := newDurableHarness(t, 0)
	b := h.broker

	// Session 1: all the way to Active.
	o1, err := b.RequestService(guaranteedRequest())
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Accept(o1.SLA.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Invoke(o1.SLA.ID); err != nil {
		t.Fatal(err)
	}
	// Session 2: Established.
	o2, err := b.RequestService(controlledRequest("site-b-lab"))
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Accept(o2.SLA.ID); err != nil {
		t.Fatal(err)
	}
	// Session 3: still Proposed when the broker dies.
	o3, err := b.RequestService(controlledRequest("site-c-students"))
	if err != nil {
		t.Fatal(err)
	}
	// Best-effort grant.
	if err := b.BestEffortRequest("be-user", resource.Capacity{CPU: 2}); err != nil {
		t.Fatal(err)
	}
	// Half of session 3's confirm window elapses before the crash.
	h.clock.Advance(time.Minute)

	pre := digest(b)
	preUse := h.pool.InUse(h.clock.Now())

	stats := h.crashAndRecover(t)
	b = h.broker
	if stats.Sessions != 3 {
		t.Fatalf("recovered %d sessions, want 3", stats.Sessions)
	}
	if stats.Adopted != 0 || stats.Refunded != 0 {
		t.Errorf("clean crash reconciled adopt=%d refund=%d, want 0/0", stats.Adopted, stats.Refunded)
	}
	if got, want := mustJSON(t, digest(b)), mustJSON(t, pre); got != want {
		t.Fatalf("recovered digest differs:\n got %s\nwant %s", got, want)
	}
	if got := h.pool.InUse(h.clock.Now()); !got.Equal(preUse) {
		t.Errorf("pool in use after recovery = %v, want %v", got, preUse)
	}

	// The recovered broker keeps operating: terminate the active session.
	if err := b.Terminate(o1.SLA.ID, "done"); err != nil {
		t.Fatalf("Terminate after recovery: %v", err)
	}
	doc, _ := b.Session(o1.SLA.ID)
	if doc.State != sla.StateTerminated {
		t.Errorf("state after terminate = %v", doc.State)
	}
	if err := b.Terminate(o2.SLA.ID, "done"); err != nil {
		t.Fatalf("Terminate session 2 after recovery: %v", err)
	}
	// The best-effort grant survived and releases cleanly.
	if err := b.BestEffortRelease("be-user"); err != nil {
		t.Errorf("BestEffortRelease after recovery: %v", err)
	}
	// The proposal's confirm timer was re-armed with the REMAINING
	// window: one of its two minutes elapsed pre-crash, so one more
	// minute expires it (a full-window re-arm would need two).
	h.clock.Advance(time.Minute + time.Second)
	doc, err = b.Session(o3.SLA.ID)
	if err != nil {
		t.Fatal(err)
	}
	if doc.State != sla.StateTerminated {
		t.Errorf("proposal state after confirm window = %v, want Terminated", doc.State)
	}
	if got := h.pool.InUse(h.clock.Now()).CPU; got != 0 {
		t.Errorf("pool CPU after full drain = %g, want 0", got)
	}
}

// TestRecoverLedgerAggregatesExact is the double-billing regression
// (satellite 2): with a snapshot landing mid-workload, ledger entries
// recorded before the snapshot appear in BOTH the snapshot image and the
// log suffix written earlier. Replay must apply an entry exactly once —
// the recovered aggregates are byte-identical to the crashed broker's.
func TestRecoverLedgerAggregatesExact(t *testing.T) {
	h := newDurableHarness(t, 6) // snapshot every 6 records: lands mid-workload
	b := h.broker

	ids := make([]sla.ID, 0, 3)
	for _, client := range []string{"c1", "c2", "c3"} {
		o, err := b.RequestService(controlledRequest(client))
		if err != nil {
			t.Fatal(err)
		}
		if err := b.Accept(o.SLA.ID); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, o.SLA.ID)
	}
	// A refund entry too: terminate one session.
	if err := b.Terminate(ids[0], "early exit"); err != nil {
		t.Fatal(err)
	}
	if _, _, snaps := b.WALStats(); snaps == 0 {
		t.Fatal("test needs a snapshot mid-workload; none landed — lower SnapshotEvery")
	}

	var pre pricing.State
	b.Ledger().ExportWith(func(s pricing.State) { pre = s })
	if len(pre.Entries) < 4 {
		t.Fatalf("workload produced %d ledger entries, want >= 4", len(pre.Entries))
	}

	h.crashAndRecover(t)
	var post pricing.State
	h.broker.Ledger().ExportWith(func(s pricing.State) { post = s })
	if got, want := mustJSON(t, post), mustJSON(t, pre); got != want {
		t.Fatalf("ledger state after recovery differs (double/dropped billing):\n got %s\nwant %s", got, want)
	}
}

// TestReconcileGatedDuringRecovery is the monitor-race regression
// (satellite 3): the broker crashes with a parked teardown outstanding;
// a monitor tick that fires mid-recovery (between state install and the
// recovery sweep) must not race the sweep — ReconcileReservations
// returns 0 until recovery completes, and the recovery sweep itself
// clears the parked cancel exactly once.
func TestReconcileGatedDuringRecovery(t *testing.T) {
	h := newDurableHarness(t, 0)
	b := h.broker

	o, err := b.RequestService(guaranteedRequest())
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Accept(o.SLA.ID); err != nil {
		t.Fatal(err)
	}
	// Terminate against an unavailable RM: the cancel parks.
	h.inj.SetPlan("gara.cancel", faultx.Plan{Rate: 1, Kinds: []faultx.Kind{faultx.KindError}})
	if err := b.Terminate(o.SLA.ID, "client done"); err != nil {
		t.Fatal(err)
	}
	if live := liveReservations(h.g); live != 1 {
		t.Fatalf("parked teardown should leave 1 live reservation, have %d", live)
	}
	// RM comes back before the restart.
	h.inj.SetPlan("gara.cancel", faultx.Plan{})

	ticked := false
	recoverTestHook = func(rb *Broker) {
		ticked = true
		if n := rb.ReconcileReservations(); n != 0 {
			t.Errorf("ReconcileReservations mid-recovery cleared %d, want 0 (gated)", n)
		}
	}
	defer func() { recoverTestHook = nil }()

	stats := h.crashAndRecover(t)
	if !ticked {
		t.Fatal("recovery hook never ran")
	}
	if stats.ParkedCleared != 1 {
		t.Errorf("recovery sweep cleared %d parked cancel(s), want 1", stats.ParkedCleared)
	}
	if live := liveReservations(h.g); live != 0 {
		t.Errorf("%d live reservation(s) after recovery sweep, want 0", live)
	}
	// The gate lifts with recovery: a normal tick works again.
	if n := h.broker.ReconcileReservations(); n != 0 {
		t.Errorf("post-recovery reconcile cleared %d, want 0 (nothing parked)", n)
	}
}

func liveReservations(g *gara.System) int {
	n := 0
	for _, r := range g.Reservations() {
		if r.Status != gara.StatusCanceled {
			n++
		}
	}
	return n
}

// TestRecoverRefundsOrphanReservation: a reservation committed to the
// GARA under this domain's SLA tag with no journaled session (the
// broker died between the RM commit and the WAL append) is refunded by
// the reconcile sweep; the live session's reservation is untouched.
func TestRecoverRefundsOrphanReservation(t *testing.T) {
	h := newDurableHarness(t, 0)
	b := h.broker

	o, err := b.RequestService(guaranteedRequest())
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Accept(o.SLA.ID); err != nil {
		t.Fatal(err)
	}
	b.Crash()

	// The half-committed orphan: tagged like this domain's SLAs, but no
	// session ever journaled for it.
	orphan, err := h.g.Create(`&(reservation-type="compute")(count=2)`, t0, t5, "site-a-sla-9999")
	if err != nil {
		t.Fatal(err)
	}
	// A foreign-domain reservation must NOT be touched.
	foreign, err := h.g.Create(`&(reservation-type="compute")(count=1)`, t0, t5, "site-b-sla-0001")
	if err != nil {
		t.Fatal(err)
	}

	nb, stats, err := Recover(h.cfg)
	if err != nil {
		t.Fatal(err)
	}
	h.broker = nb
	if stats.Refunded != 1 {
		t.Errorf("refunded = %d, want 1", stats.Refunded)
	}
	if r, _ := h.g.Get(orphan); r.Status != gara.StatusCanceled {
		t.Errorf("orphan status = %v, want canceled", r.Status)
	}
	if r, _ := h.g.Get(foreign); r.Status == gara.StatusCanceled {
		t.Error("foreign-domain reservation was refunded")
	}
	// The live session's reservation survived and still tears down.
	if err := nb.Terminate(o.SLA.ID, "done"); err != nil {
		t.Fatal(err)
	}
	if live := liveReservations(h.g); live != 1 { // only the foreign one
		t.Errorf("live reservations after drain = %d, want 1 (foreign)", live)
	}
}

// TestRecoverAdoptsCommittedReservation: the session's journaled handle
// no longer names a live reservation (it was canceled RM-side and the
// RM re-committed under the same tag — the late-side-effect shape the
// tag-adoption path exists for). Recovery re-attaches the live
// reservation by SLA tag so teardown releases real capacity.
func TestRecoverAdoptsCommittedReservation(t *testing.T) {
	h := newDurableHarness(t, 0)
	b := h.broker

	o, err := b.RequestService(guaranteedRequest())
	if err != nil {
		t.Fatal(err)
	}
	id := o.SLA.ID
	if err := b.Accept(id); err != nil {
		t.Fatal(err)
	}
	doc, _ := b.Session(id)
	b.Crash()

	// Simulate the RM-side swap: the journaled handle dies, a
	// replacement committed under the same tag lives on.
	var oldHandle gara.Handle
	for _, r := range h.g.Reservations() {
		if r.Tag == string(id) && r.Status != gara.StatusCanceled {
			oldHandle = r.Handle
		}
	}
	if oldHandle == "" {
		t.Fatal("no live reservation for the session")
	}
	if err := h.g.Cancel(oldHandle); err != nil {
		t.Fatal(err)
	}
	replacement, err := h.g.Create(`&(reservation-type="compute")(count=10)`, doc.Start, doc.End, string(id))
	if err != nil {
		t.Fatal(err)
	}

	nb, stats, err := Recover(h.cfg)
	if err != nil {
		t.Fatal(err)
	}
	h.broker = nb
	if stats.Adopted != 1 {
		t.Errorf("adopted = %d, want 1", stats.Adopted)
	}
	// Teardown must cancel the ADOPTED handle.
	if err := nb.Terminate(id, "done"); err != nil {
		t.Fatal(err)
	}
	if r, _ := h.g.Get(replacement); r.Status != gara.StatusCanceled {
		t.Errorf("adopted reservation not canceled on terminate: %v", r.Status)
	}
}

// TestRecoverRejectsOccupiedDirOnNewBroker: NewBroker refuses a WAL
// directory that already holds state — silently journaling over a dead
// broker's log would orphan its sessions.
func TestRecoverRejectsOccupiedDirOnNewBroker(t *testing.T) {
	h := newDurableHarness(t, 0)
	if _, err := h.broker.RequestService(guaranteedRequest()); err != nil {
		t.Fatal(err)
	}
	h.broker.Crash()
	if _, err := NewBroker(h.cfg); err == nil {
		t.Fatal("NewBroker accepted a WAL directory with existing state")
	}
	if _, _, err := Recover(h.cfg); err != nil {
		t.Fatalf("Recover on the same directory: %v", err)
	}
}

// switchableFinder stands in for a registry endpoint whose backing
// process restarts: Find/Generation/Epoch delegate to whichever
// *registry.Registry is currently installed.
type switchableFinder struct {
	mu sync.Mutex
	r  *registry.Registry
}

func (s *switchableFinder) swap(r *registry.Registry) {
	s.mu.Lock()
	s.r = r
	s.mu.Unlock()
}

func (s *switchableFinder) current() *registry.Registry {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.r
}

func (s *switchableFinder) Find(q registry.Query) ([]*registry.Service, error) {
	return s.current().Find(q)
}
func (s *switchableFinder) Generation() uint64 { return s.current().Generation() }
func (s *switchableFinder) Epoch() uint64      { return s.current().Epoch() }

// TestDiscoveryCacheMissesAfterRegistryRestart is the stale-cache
// regression (satellite 1): a restarted registry starts a fresh
// generation counter, which can COLLIDE with the old registry's value —
// the generation check alone then serves stale services that no longer
// exist. The per-instance epoch breaks the collision.
func TestDiscoveryCacheMissesAfterRegistryRestart(t *testing.T) {
	clock := clockx.NewManual(t0)
	regA := registry.New(clock)
	if _, err := regA.Register(registry.Service{
		Name: "simulation", Provider: "site-a",
		Properties: []registry.Property{registry.NumProp("cpu-nodes", 26)},
	}); err != nil {
		t.Fatal(err)
	}

	finder := &switchableFinder{r: regA}
	c := newDiscoveryCache(finder, obs.NewRegistry())

	// Fill the cache exactly as discover() does: stamp before the Find,
	// store the selected service.
	k := discoveryKeyFor("simulation", resource.Capacity{})
	epoch, gen := c.stamp()
	q := c.queryFor(k)
	svcs, err := finder.Find(q)
	if err != nil || len(svcs) != 1 {
		t.Fatalf("Find = %v, %v", svcs, err)
	}
	c.store(k, &discoveryEntry{query: q, key: svcs[0].Key, name: svcs[0].Name, epoch: epoch, gen: gen})
	if _, ok := c.lookup(k, clock.Now()); !ok {
		t.Fatal("warm lookup missed")
	}
	if hits := c.hits.Value(); hits != 1 {
		t.Fatalf("warm-up hits = %d, want 1", hits)
	}

	// The registry restarts. The replacement also has exactly one
	// registration, so its generation counter holds the SAME value as
	// the dead registry's — the collision that made the generation-only
	// check serve stale entries. The restarted registry does NOT know
	// "simulation" anymore.
	regB := registry.New(clock)
	if _, err := regB.Register(registry.Service{
		Name: "render", Provider: "site-a",
		Properties: []registry.Property{registry.NumProp("cpu-nodes", 4)},
	}); err != nil {
		t.Fatal(err)
	}
	if regA.Generation() != regB.Generation() {
		t.Fatalf("test premise broken: generations %d vs %d must collide",
			regA.Generation(), regB.Generation())
	}
	finder.swap(regB)

	if stale, ok := c.lookup(k, clock.Now()); ok {
		t.Fatalf("lookup after registry restart served stale entry %q; epoch check must force a miss", stale)
	}
	if hits := c.hits.Value(); hits != 1 {
		t.Errorf("hits after restart = %d, want still 1", hits)
	}
}

// TestCrashPointMatrix (satellite 4, core slice): inject a WAL fault at
// each journaling site in turn, drive the workload until the log seals
// (the modeled crash point), then Crash + Recover and check the
// recovered broker is internally coherent — every recovered non-terminal
// session's allocation matches its document and teardown drains the
// pool. The sim-level matrix runs the full invariant oracle; this one
// covers the wal.append/wal.sync sites at unit scope.
func TestCrashPointMatrix(t *testing.T) {
	for _, site := range []string{"wal.append", "wal.sync"} {
		for _, after := range []int{0, 3, 7} {
			t.Run(site+"/"+string(rune('0'+after)), func(t *testing.T) {
				h := newDurableHarness(t, 4)
				b := h.broker
				clients := []string{"c1", "c2", "c3", "c4"}
				var ids []sla.ID
				step := 0
				for _, c := range clients {
					if step == after {
						h.inj.SetPlan(site, faultx.Plan{Rate: 1, Kinds: []faultx.Kind{faultx.KindError}})
					}
					step++
					o, err := b.RequestService(controlledRequest(c))
					if err != nil {
						continue
					}
					ids = append(ids, o.SLA.ID)
					if err := b.Accept(o.SLA.ID); err != nil {
						t.Fatal(err)
					}
				}
				if after < len(clients) && !b.durable.Sealed() {
					t.Fatal("fault plan never sealed the log")
				}
				h.inj.SetPlan(site, faultx.Plan{})

				stats := h.crashAndRecover(t)
				nb := h.broker
				// Every recovered session is coherent: doc state legal,
				// terminal sessions hold nothing.
				for _, info := range nb.SessionInfos() {
					doc, err := nb.Session(info.ID)
					if err != nil {
						t.Fatalf("recovered session %s unreadable: %v", info.ID, err)
					}
					if doc.State == sla.StateProposed && info.ProposedAt.IsZero() {
						t.Errorf("%s proposed without a timestamp", info.ID)
					}
				}
				// Recovery reconciles capacity: drain everything and the
				// pool must return to empty (adopted/refunded handles
				// included).
				for _, info := range nb.SessionInfos() {
					doc, _ := nb.Session(info.ID)
					if doc.State.Terminal() {
						continue
					}
					if doc.State == sla.StateProposed {
						if err := nb.Reject(info.ID); err != nil {
							t.Fatalf("reject %s: %v", info.ID, err)
						}
					} else if err := nb.Terminate(info.ID, "drain"); err != nil {
						t.Fatalf("terminate %s: %v", info.ID, err)
					}
				}
				nb.ReconcileReservations()
				if live := liveReservations(h.g); live != 0 {
					t.Errorf("crash@%s after %d ops: %d reservation(s) leaked (stats %+v, sessions %v)",
						site, after, live, stats, ids)
				}
				if use := h.pool.InUse(h.clock.Now()); use.CPU != 0 {
					t.Errorf("pool CPU after drain = %g, want 0", use.CPU)
				}
			})
		}
	}
}
