package core

import (
	"errors"
	"math"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"gqosm/internal/nrm"
	"gqosm/internal/pricing"
	"gqosm/internal/resource"
	"gqosm/internal/sla"
	"gqosm/internal/soapx"
)

func establishGuaranteed(t *testing.T, h *harness, nodes float64) sla.ID {
	t.Helper()
	req := guaranteedRequest()
	req.Spec = sla.NewSpec(sla.Exact(resource.CPU, nodes))
	offer, err := h.broker.RequestService(req)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.broker.Accept(offer.SLA.ID); err != nil {
		t.Fatal(err)
	}
	return offer.SLA.ID
}

func TestRenegotiateUpgrade(t *testing.T) {
	h := newHarness(t)
	id := establishGuaranteed(t, h, 6)
	revBefore := h.broker.Ledger().NetRevenue()

	res, err := h.broker.Renegotiate(id, sla.NewSpec(sla.Exact(resource.CPU, 12)))
	if err != nil {
		t.Fatalf("Renegotiate: %v", err)
	}
	if !res.New.Equal(resource.Nodes(12)) || !res.Old.Equal(resource.Nodes(6)) {
		t.Errorf("result = %+v", res)
	}
	if res.PriceDelta <= 0 {
		t.Errorf("upgrade delta = %g, want > 0", res.PriceDelta)
	}
	doc, _ := h.broker.Session(id)
	if !doc.Allocated.Equal(resource.Nodes(12)) {
		t.Errorf("allocated = %v", doc.Allocated)
	}
	if p, _ := doc.Spec.Param(resource.CPU); p.Exact != 12 {
		t.Errorf("spec not replaced: %+v", p)
	}
	// The GARA reservation followed.
	if got := h.pool.InUse(t0).CPU; got != 12 {
		t.Errorf("pool CPU = %g, want 12", got)
	}
	// The upgrade was charged.
	gain := h.broker.Ledger().NetRevenue() - revBefore
	if math.Abs(gain-res.PriceDelta) > 1e-9 {
		t.Errorf("revenue gain %g != delta %g", gain, res.PriceDelta)
	}
}

func TestRenegotiateDowngradeRefunds(t *testing.T) {
	h := newHarness(t)
	id := establishGuaranteed(t, h, 12)
	revBefore := h.broker.Ledger().NetRevenue()
	res, err := h.broker.Renegotiate(id, sla.NewSpec(sla.Exact(resource.CPU, 4)))
	if err != nil {
		t.Fatal(err)
	}
	if res.PriceDelta >= 0 {
		t.Errorf("downgrade delta = %g, want < 0", res.PriceDelta)
	}
	if got := h.broker.Ledger().NetRevenue() - revBefore; math.Abs(got-res.PriceDelta) > 1e-9 {
		t.Errorf("revenue change %g != delta %g", got, res.PriceDelta)
	}
	if got := h.pool.InUse(t0).CPU; got != 4 {
		t.Errorf("pool CPU = %g, want 4", got)
	}
}

func TestRenegotiateControlledLoadClampsToHeadroom(t *testing.T) {
	h := newHarness(t)
	// A guaranteed session holds 10 of C_G=15.
	_ = establishGuaranteed(t, h, 10)
	// A controlled-load session with range [2,4].
	cl := controlledRequest("cl")
	cl.Spec = sla.NewSpec(sla.Range(resource.CPU, 2, 4))
	offer, err := h.broker.RequestService(cl)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.broker.Accept(offer.SLA.ID); err != nil {
		t.Fatal(err)
	}
	// Renegotiate to range [2,20]: only 15−10−held is free, so the new
	// allocation clamps to held(4) + headroom(1) = 5.
	res, err := h.broker.Renegotiate(offer.SLA.ID, sla.NewSpec(sla.Range(resource.CPU, 2, 20)))
	if err != nil {
		t.Fatal(err)
	}
	if res.New.CPU != 5 {
		t.Errorf("renegotiated to %v, want 5 (held 4 + headroom 1)", res.New)
	}
	doc, _ := h.broker.Session(offer.SLA.ID)
	if !doc.Spec.Accepts(doc.Allocated) {
		t.Errorf("allocation %v outside renegotiated spec", doc.Allocated)
	}
}

func TestRenegotiateWithCompensation(t *testing.T) {
	h := newHarness(t)
	// A willing controlled-load session fills most of the pool.
	volunteer := controlledRequest("volunteer")
	volunteer.Spec = sla.NewSpec(sla.Range(resource.CPU, 2, 10))
	vOffer, err := h.broker.RequestService(volunteer)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.broker.Accept(vOffer.SLA.ID); err != nil {
		t.Fatal(err)
	}
	id := establishGuaranteed(t, h, 5) // 10 + 5 = 15 full

	// Upgrading to 12 exceeds free capacity; the volunteer is degraded.
	res, err := h.broker.Renegotiate(id, sla.NewSpec(sla.Exact(resource.CPU, 12)))
	if err != nil {
		t.Fatalf("Renegotiate with compensation: %v", err)
	}
	if !res.Compensated {
		t.Error("not marked compensated")
	}
	vDoc, _ := h.broker.Session(vOffer.SLA.ID)
	if !vDoc.Allocated.Equal(vDoc.Spec.Floor()) {
		t.Errorf("volunteer = %v, want floor", vDoc.Allocated)
	}
}

func TestRenegotiateFailureKeepsOldAgreement(t *testing.T) {
	h := newHarness(t)
	// Fill the pool with an unwilling session.
	blocker := guaranteedRequest()
	blocker.Spec = sla.NewSpec(sla.Exact(resource.CPU, 10))
	bOffer, err := h.broker.RequestService(blocker)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.broker.Accept(bOffer.SLA.ID); err != nil {
		t.Fatal(err)
	}
	id := establishGuaranteed(t, h, 5)

	if _, err := h.broker.Renegotiate(id, sla.NewSpec(sla.Exact(resource.CPU, 12))); err == nil {
		t.Fatal("oversized renegotiation succeeded")
	}
	doc, _ := h.broker.Session(id)
	if !doc.Allocated.Equal(resource.Nodes(5)) {
		t.Errorf("allocation after failed renegotiation = %v, want 5", doc.Allocated)
	}
	if p, _ := doc.Spec.Param(resource.CPU); p.Exact != 5 {
		t.Errorf("spec mutated by failed renegotiation: %+v", p)
	}
	if got := h.pool.InUse(t0).CPU; got != 15 {
		t.Errorf("pool CPU = %g, want 15", got)
	}
}

func TestRenegotiateValidation(t *testing.T) {
	h := newHarness(t)
	id := establishGuaranteed(t, h, 5)
	if _, err := h.broker.Renegotiate("ghost", sla.NewSpec(sla.Exact(resource.CPU, 1))); !errors.Is(err, ErrUnknownSession) {
		t.Errorf("ghost err = %v", err)
	}
	if _, err := h.broker.Renegotiate(id, sla.Spec{}); err == nil {
		t.Error("empty spec accepted")
	}
	if _, err := h.broker.Renegotiate(id, sla.NewSpec(sla.Exact(resource.CPU, -1))); err == nil {
		t.Error("invalid spec accepted")
	}
	// Proposed sessions cannot renegotiate.
	offer, err := h.broker.RequestService(guaranteedRequest())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.broker.Renegotiate(offer.SLA.ID, sla.NewSpec(sla.Exact(resource.CPU, 1))); !errors.Is(err, ErrBadState) {
		t.Errorf("proposed err = %v", err)
	}
}

func TestRenegotiateNetworkInheritsEndpoints(t *testing.T) {
	h := newHarness(t)
	offer, err := h.broker.RequestService(guaranteedRequest()) // has a 45 Mbps flow
	if err != nil {
		t.Fatal(err)
	}
	id := offer.SLA.ID
	if err := h.broker.Accept(id); err != nil {
		t.Fatal(err)
	}
	// Renegotiate bandwidth only; endpoints come from the old spec.
	res, err := h.broker.Renegotiate(id, sla.NewSpec(
		sla.Exact(resource.CPU, 10),
		sla.Exact(resource.MemoryMB, 2048),
		sla.Exact(resource.DiskGB, 15),
		sla.Exact(resource.BandwidthMbps, 80),
	))
	if err != nil {
		t.Fatalf("Renegotiate: %v", err)
	}
	if res.New.BandwidthMbps != 80 {
		t.Errorf("bandwidth = %g", res.New.BandwidthMbps)
	}
	flows := h.netMgr.Flows()
	if len(flows) != 1 || flows[0].Mbps != 80 {
		t.Fatalf("flows = %+v", flows)
	}
	if flows[0].SourceIP != "10.10.3.4" {
		t.Errorf("endpoints lost: %+v", flows[0])
	}
	doc, _ := h.broker.Session(id)
	if doc.Spec.SourceIP != "10.10.3.4" {
		t.Errorf("spec endpoints lost: %q", doc.Spec.SourceIP)
	}
}

func TestRenegotiateOverSOAP(t *testing.T) {
	h := newHarness(t)
	mux := soapx.NewMux()
	h.broker.Mount(mux)
	srv := httptest.NewServer(mux)
	defer srv.Close()
	client := NewClient(srv.URL)

	id := establishGuaranteed(t, h, 6)
	detail, err := client.Renegotiate(id, sla.NewSpec(sla.Exact(resource.CPU, 9)))
	if err != nil {
		t.Fatalf("remote Renegotiate: %v", err)
	}
	if !strings.Contains(detail, "cpu=9") {
		t.Errorf("detail = %q", detail)
	}
	doc, _ := h.broker.Session(id)
	if doc.Allocated.CPU != 9 {
		t.Errorf("allocated = %v", doc.Allocated)
	}
	// Faults propagate.
	if _, err := client.Renegotiate("ghost", sla.NewSpec(sla.Exact(resource.CPU, 1))); err == nil {
		t.Error("remote ghost renegotiation succeeded")
	}
}

func TestMonitorDrivesPeriodicManagement(t *testing.T) {
	h := newHarness(t)
	b := h.broker
	offer, err := b.RequestService(guaranteedRequest())
	if err != nil {
		t.Fatal(err)
	}
	id := offer.SLA.ID
	if err := b.Accept(id); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Invoke(id); err != nil {
		t.Fatal(err)
	}

	mon := NewMonitor(b, 10*time.Minute)
	mon.Start()
	mon.Start() // idempotent
	defer mon.Stop()

	// Congest the link: the next tick's NRM check must notify the broker
	// without any explicit Verify call.
	if err := h.topo.SetCongestion("site-a", "site-c", nrm.Congestion{BandwidthFactor: 0.3}); err != nil {
		t.Fatal(err)
	}
	h.clock.Advance(10 * time.Minute)
	if mon.Ticks() != 1 {
		t.Fatalf("ticks = %d, want 1", mon.Ticks())
	}
	if b.Violations(id) == 0 {
		t.Error("monitor tick did not surface the degradation")
	}

	// Recovery, then expiry: the monitor clears the session when its
	// window lapses.
	if err := h.topo.SetCongestion("site-a", "site-c", nrm.Congestion{}); err != nil {
		t.Fatal(err)
	}
	h.clock.Advance(6 * time.Hour)
	doc, _ := b.Session(id)
	if !doc.State.Terminal() {
		t.Errorf("state after expiry ticks = %v, want terminal", doc.State)
	}
	if mon.Ticks() < 30 {
		t.Errorf("ticks = %d, want ~36 over 6h", mon.Ticks())
	}

	mon.Stop()
	before := mon.Ticks()
	h.clock.Advance(time.Hour)
	if mon.Ticks() != before {
		t.Error("monitor ticked after Stop")
	}
	mon.Start() // Start after Stop stays stopped
	h.clock.Advance(time.Hour)
	if mon.Ticks() != before {
		t.Error("monitor restarted after Stop")
	}
}

func TestViolationChargesPenalty(t *testing.T) {
	h := newHarness(t)
	req := guaranteedRequest()
	req.Penalty = sla.Penalty{PerViolation: 25}
	offer, err := h.broker.RequestService(req)
	if err != nil {
		t.Fatal(err)
	}
	id := offer.SLA.ID
	if err := h.broker.Accept(id); err != nil {
		t.Fatal(err)
	}
	if _, err := h.broker.Invoke(id); err != nil {
		t.Fatal(err)
	}
	revBefore := h.broker.Ledger().NetRevenue()
	if err := h.topo.SetCongestion("site-a", "site-c", nrm.Congestion{BandwidthFactor: 0.2}); err != nil {
		t.Fatal(err)
	}
	h.netMgr.CheckAll(h.clock.Now())
	violations := h.broker.Violations(id)
	if violations == 0 {
		t.Fatal("no violation recorded")
	}
	// Each violation cost the provider the agreed 25.
	want := revBefore - float64(violations)*25
	if got := h.broker.Ledger().NetRevenue(); math.Abs(got-want) > 1e-9 {
		t.Errorf("revenue = %g, want %g after %d violation(s)", got, want, violations)
	}
	// The penalty appears in the ledger with the right kind.
	found := false
	for _, e := range h.broker.Ledger().Entries() {
		if e.Kind == pricing.EntryPenalty && e.SLA == id {
			found = true
		}
	}
	if !found {
		t.Error("no penalty entry in the ledger")
	}
}

func TestCompensationTerminationDoesNotSelfDefeat(t *testing.T) {
	// A degraded volunteer plus a terminable victim: compensating a new
	// request by terminating the victim must not immediately restore the
	// volunteer with the freed capacity (which would starve the new
	// request).
	h := newHarness(t)
	b := h.broker

	volunteer := controlledRequest("volunteer")
	volunteer.Spec = sla.NewSpec(sla.Range(resource.CPU, 2, 8))
	vo, err := b.RequestService(volunteer)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Accept(vo.SLA.ID); err != nil {
		t.Fatal(err)
	}

	victim := controlledRequest("victim")
	victim.Spec = sla.NewSpec(sla.Range(resource.CPU, 7, 7))
	victim.AcceptDegradation = false
	victim.AcceptTermination = true
	victim.PromotionOptIn = false
	vi, err := b.RequestService(victim)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Accept(vi.SLA.ID); err != nil {
		t.Fatal(err)
	}

	// New guaranteed request for 12: volunteer degrades 8→2, victim (7)
	// terminates; 15 − 2 = 13 ≥ 12.
	req := guaranteedRequest()
	req.Spec = sla.NewSpec(sla.Exact(resource.CPU, 12))
	offer, err := b.RequestService(req)
	if err != nil {
		t.Fatalf("compensated request: %v", err)
	}
	if !offer.Compensated {
		t.Error("not marked compensated")
	}
	if !offer.SLA.Allocated.Equal(resource.Nodes(12)) {
		t.Errorf("allocated = %v, want 12", offer.SLA.Allocated)
	}
	vDoc, _ := b.Session(vi.SLA.ID)
	if vDoc.State != sla.StateTerminated {
		t.Errorf("victim state = %v", vDoc.State)
	}
	volDoc, _ := b.Session(vo.SLA.ID)
	if !volDoc.Spec.Accepts(volDoc.Allocated) {
		t.Errorf("volunteer allocation %v outside SLA", volDoc.Allocated)
	}
}

func TestScenario3AlternativeQoSSwitchOnControlledLoad(t *testing.T) {
	// A controlled-load session running at its best bandwidth degrades;
	// the broker switches it to the negotiated alternative (its floor) —
	// the scenario-3(b) rung.
	h := newHarness(t)
	b := h.broker
	spec := sla.NewSpec(sla.Range(resource.BandwidthMbps, 10, 45))
	spec.SourceIP, spec.DestIP = "10.10.3.4", "192.200.168.33"
	offer, err := b.RequestService(Request{
		Service: "simulation", Client: "stream", Class: sla.ClassControlledLoad,
		Spec:  spec,
		Start: t0, End: t5,
		AcceptDegradation: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	id := offer.SLA.ID
	if err := b.Accept(id); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Invoke(id); err != nil {
		t.Fatal(err)
	}
	if offer.SLA.Allocated.BandwidthMbps != 45 {
		t.Fatalf("allocated = %v, want best 45", offer.SLA.Allocated)
	}

	// Mild congestion: above the floor but below the agreed level.
	if err := h.topo.SetCongestion("site-a", "site-c", nrm.Congestion{BandwidthFactor: 0.6}); err != nil {
		t.Fatal(err)
	}
	h.netMgr.CheckAll(h.clock.Now())
	doc, _ := b.Session(id)
	if !doc.Allocated.Equal(doc.Adapt.AlternativeQoS) {
		t.Errorf("allocation = %v, want alternative %v (scenario 3b)",
			doc.Allocated, doc.Adapt.AlternativeQoS)
	}
	if doc.State != sla.StateDegraded {
		t.Errorf("state = %v, want degraded", doc.State)
	}
	// Recovery restores the original quality via scenario 2a.
	if err := h.topo.SetCongestion("site-a", "site-c", nrm.Congestion{}); err != nil {
		t.Fatal(err)
	}
	b.afterRelease()
	doc, _ = b.Session(id)
	if doc.Allocated.BandwidthMbps != 45 {
		t.Errorf("allocation after recovery = %v, want 45", doc.Allocated)
	}
}

func TestExpireDueMultiple(t *testing.T) {
	h := newHarness(t)
	b := h.broker
	var ids []sla.ID
	for i := 0; i < 3; i++ {
		req := guaranteedRequest()
		req.Spec = sla.NewSpec(sla.Exact(resource.CPU, 3))
		req.Client = "multi-" + string(rune('a'+i))
		offer, err := b.RequestService(req)
		if err != nil {
			t.Fatal(err)
		}
		if err := b.Accept(offer.SLA.ID); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, offer.SLA.ID)
	}
	h.clock.Advance(6 * time.Hour)
	due := b.ExpireDue()
	if len(due) != 3 {
		t.Fatalf("ExpireDue = %v, want 3", due)
	}
	for i := 1; i < len(due); i++ {
		if due[i-1] >= due[i] {
			t.Fatal("ExpireDue not sorted")
		}
	}
	for _, id := range ids {
		doc, _ := b.Session(id)
		if doc.State != sla.StateExpired {
			t.Errorf("%s state = %v", id, doc.State)
		}
	}
}
