package core

import (
	"testing"
	"time"

	"gqosm/internal/clockx"
	"gqosm/internal/dsrt"
	"gqosm/internal/gara"
	"gqosm/internal/registry"
	"gqosm/internal/resource"
	"gqosm/internal/sla"
)

func TestDSRTAdapterBoostsShares(t *testing.T) {
	sched := dsrt.New(dsrt.Config{Processors: 2}, nil)
	a := NewDSRTAdapter(sched)
	pid, err := sched.Register(dsrt.Contract{Class: dsrt.PeriodicVariable, Share: 0.4})
	if err != nil {
		t.Fatal(err)
	}
	a.Attach("s1", pid)

	doc := &sla.Document{
		ID: "s1", Class: sla.ClassGuaranteed,
		Spec: sla.NewSpec(sla.Exact(resource.CPU, 10)),
	}
	// The session measures 6 of 10 required CPU: a 40% deficit.
	if !a.TryRectify("s1", doc, resource.Nodes(6)) {
		t.Fatal("TryRectify = false with scheduler slack")
	}
	p, err := sched.Get(pid)
	if err != nil {
		t.Fatal(err)
	}
	if p.Contract.Share <= 0.4 {
		t.Errorf("share after rectify = %g, want > 0.4", p.Contract.Share)
	}
	// Approximately 0.4 × 1.4 = 0.56.
	if p.Contract.Share < 0.5 || p.Contract.Share > 0.6 {
		t.Errorf("share = %g, want ≈ 0.56", p.Contract.Share)
	}
}

func TestDSRTAdapterRefusals(t *testing.T) {
	sched := dsrt.New(dsrt.Config{Processors: 1}, nil)
	a := NewDSRTAdapter(sched)
	doc := &sla.Document{
		ID: "s1", Class: sla.ClassGuaranteed,
		Spec: sla.NewSpec(sla.Exact(resource.CPU, 10)),
	}

	// No attached processes.
	if a.TryRectify("s1", doc, resource.Nodes(6)) {
		t.Error("rectified with no processes")
	}

	pid, err := sched.Register(dsrt.Contract{Class: dsrt.PeriodicVariable, Share: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	a.Attach("s1", pid)

	// CPU not degraded: not an RM-level concern.
	if a.TryRectify("s1", doc, resource.Nodes(10)) {
		t.Error("rectified a healthy session")
	}
	// No CPU parameter at all (network-only SLA).
	netDoc := &sla.Document{
		ID: "s1", Class: sla.ClassGuaranteed,
		Spec: sla.NewSpec(sla.Exact(resource.BandwidthMbps, 45)),
	}
	if a.TryRectify("s1", netDoc, resource.Bandwidth(10)) {
		t.Error("rectified a network degradation at the CPU scheduler")
	}

	// Scheduler full: the boost is refused and TryRectify reports false.
	if _, err := sched.Register(dsrt.Contract{Class: dsrt.PeriodicConstant, Share: 0.5}); err != nil {
		t.Fatal(err)
	}
	if a.TryRectify("s1", doc, resource.Nodes(6)) {
		t.Error("rectified despite a full scheduler")
	}

	// Detach removes the association.
	a.Detach("s1")
	if a.TryRectify("s1", doc, resource.Nodes(6)) {
		t.Error("rectified after Detach")
	}
}

// TestRMAdaptationTriedBeforeAQoSLevel wires a recording adapter into a
// broker and checks the §3.2 ordering: a degradation the RM rectifies
// never reaches AQoS-level adaptation (no violation, no alternative-QoS
// switch).
func TestRMAdaptationTriedBeforeAQoSLevel(t *testing.T) {
	clock := clockx.NewManual(t0)
	pool := resource.NewPool("p", resource.Capacity{CPU: 26, MemoryMB: 10240, DiskGB: 200})
	g := gara.NewSystem()
	g.RegisterManager(gara.NewComputeManager(pool))
	reg := registry.New(clock)
	if _, err := reg.Register(registry.Service{
		Name:       "simulation",
		Properties: []registry.Property{registry.NumProp("cpu-nodes", 26)},
	}); err != nil {
		t.Fatal(err)
	}

	rm := &recordingRM{rectify: true}
	b, err := NewBroker(Config{
		Domain: "site-a",
		Clock:  clock,
		Plan: CapacityPlan{
			Guaranteed: resource.Capacity{CPU: 15, MemoryMB: 6144},
			Adaptive:   resource.Capacity{CPU: 6, MemoryMB: 2048},
			BestEffort: resource.Capacity{CPU: 5, MemoryMB: 2048},
		},
		Registry:      reg,
		GARA:          g,
		RM:            rm,
		ConfirmWindow: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	offer, err := b.RequestService(Request{
		Service: "simulation", Client: "c", Class: sla.ClassGuaranteed,
		Spec:  sla.NewSpec(sla.Exact(resource.CPU, 10)),
		Start: t0, End: t5,
	})
	if err != nil {
		t.Fatal(err)
	}
	id := offer.SLA.ID
	if err := b.Accept(id); err != nil {
		t.Fatal(err)
	}

	// Report a below-floor measurement directly (the monitor path).
	b.handleDegradation(id, resource.Nodes(6))
	if rm.calls != 1 {
		t.Fatalf("RM adapter calls = %d, want 1", rm.calls)
	}
	if got := b.Violations(id); got != 0 {
		t.Errorf("violations = %d after RM-level rectification, want 0", got)
	}
	doc, _ := b.Session(id)
	if doc.State != sla.StateEstablished {
		t.Errorf("state = %v, want untouched established", doc.State)
	}

	// When the RM cannot rectify, the AQoS level takes over and records
	// the violation.
	rm.rectify = false
	b.handleDegradation(id, resource.Nodes(6))
	if rm.calls != 2 {
		t.Fatalf("RM adapter calls = %d, want 2", rm.calls)
	}
	if got := b.Violations(id); got == 0 {
		t.Error("no violation recorded after RM-level failure")
	}
}

type recordingRM struct {
	calls   int
	rectify bool
}

func (r *recordingRM) TryRectify(sla.ID, *sla.Document, resource.Capacity) bool {
	r.calls++
	return r.rectify
}
