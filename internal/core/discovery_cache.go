package core

import (
	"sync"
	"time"

	"gqosm/internal/obs"
	"gqosm/internal/registry"
	"gqosm/internal/resource"
)

// This file is the discovery cache: a read-mostly, generation-stamped
// cache over Broker.discover. Every admission used to pay a full
// registry Find — a locked map walk with per-filter float parsing, a
// clone of every match and a sort — for a query that is almost always
// identical to the previous one (same service name, same QoS floor).
// The cache keys entries on (service pattern, floor fingerprint) and
// remembers the selected service; a hit skips the registry entirely.
//
// Correctness argument. An entry is valid only while
//
//  1. the registry's mutation generation still equals the one read
//     *before* the entry's Find ran (Register/Deregister/Renew/Sweep
//     all bump it), and
//  2. the cached service's lease is still current on the broker's
//     clock (lease expiry changes Find results without a mutation).
//
// Under those two conditions the uncached Find would select the same
// service: with the generation unchanged the registered set is exactly
// as it was, time can only *remove* candidates (expire leases), and
// the cached service — first by key among the non-expired matches at
// fill time — survives by (2), so it is still the first match. A hit
// concurrent with a mutation is serializable as the admission ordered
// before the mutation, exactly as an uncached Find that won the race
// would be. Errors and empty result sets are never cached, so a
// malformed query fails identically on both paths, every time.
//
// Eviction is deterministic (FIFO by insertion order, bounded by cap)
// so runs that exercise the cache — the chaos harness in particular —
// stay byte-identical per seed.

// generationFinder is the optional Finder extension that makes
// discovery results cacheable. The in-process *registry.Registry
// implements it; remote finders (registry.Client over SOAP) do not,
// and stay uncached — the broker cannot observe their mutations.
type generationFinder interface {
	Finder
	Generation() uint64
}

// epochFinder is the further optional extension that makes cache
// entries safe across finder *restarts*. Generations restart from zero
// when a registry restarts, so a generation check alone can validate a
// pre-restart entry against a post-restart registry whose counter
// happens to have climbed back to the stamped value — serving a service
// key the new instance may never have registered. An epoch names the
// instance itself; entries stamped with a dead instance's epoch can
// never validate. Finders without an epoch get epoch 0 throughout,
// which degrades to the historical generation-only check.
type epochFinder interface {
	Epoch() uint64
}

// defDiscoveryCacheCap bounds the cache: larger than any realistic
// number of distinct (service, floor) shapes in flight, small enough
// that the FIFO order slice stays cheap.
const defDiscoveryCacheCap = 1024

// discoveryKey fingerprints a query without allocating: the service
// pattern plus the four floor dimensions that become filters.
type discoveryKey struct {
	service             string
	cpu, mem, disk, bwd float64
}

// discoveryEntry is an immutable cache record: once stored it is never
// mutated, so readers may use it after dropping the cache lock.
type discoveryEntry struct {
	// query is the prebuilt registry.Query for this key — including the
	// trimFloat rendering of every filter value — hoisted here so a
	// refill after invalidation reuses it instead of rebuilding.
	query registry.Query
	// key/name identify the selected service (Find's first match).
	key  registry.Key
	name string
	// leaseUntil is the selected service's lease at fill time (zero =
	// no lease); a hit requires it to still be current.
	leaseUntil time.Time
	// gen is the registry generation read before the fill's Find.
	gen uint64
	// epoch is the finder instance's epoch at the same point (0 when
	// the finder has no epoch).
	epoch uint64
}

type discoveryCache struct {
	finder generationFinder
	// epochOf reads the finder's instance epoch (constant 0 for finders
	// without one), resolved once here to keep the hot path assert-free.
	epochOf func() uint64
	cap     int

	hits      *obs.Counter
	misses    *obs.Counter
	evictions *obs.Counter

	mu      sync.RWMutex
	entries map[discoveryKey]*discoveryEntry
	order   []discoveryKey // insertion order, for deterministic FIFO eviction
}

func newDiscoveryCache(f generationFinder, reg *obs.Registry) *discoveryCache {
	epochOf := func() uint64 { return 0 }
	if ef, ok := f.(epochFinder); ok {
		epochOf = ef.Epoch
	}
	return &discoveryCache{
		finder:  f,
		epochOf: epochOf,
		cap:     defDiscoveryCacheCap,
		hits: reg.Counter("gqosm_discovery_cache_hits_total",
			"Discovery queries answered from the generation-stamped cache"),
		misses: reg.Counter("gqosm_discovery_cache_misses_total",
			"Discovery queries that fell through to a registry Find"),
		evictions: reg.Counter("gqosm_discovery_cache_evictions_total",
			"Discovery cache entries evicted by the FIFO bound"),
		entries: make(map[discoveryKey]*discoveryEntry),
	}
}

func discoveryKeyFor(service string, floor resource.Capacity) discoveryKey {
	return discoveryKey{
		service: service,
		cpu:     floor.CPU,
		mem:     floor.MemoryMB,
		disk:    floor.DiskGB,
		bwd:     floor.BandwidthMbps,
	}
}

// buildDiscoveryQuery renders the registry query for a key: the name
// pattern plus one ≥ filter per positive floor dimension.
func buildDiscoveryQuery(k discoveryKey) registry.Query {
	q := registry.Query{NamePattern: k.service}
	for _, pair := range [...]struct {
		prop string
		v    float64
	}{
		{"cpu-nodes", k.cpu},
		{"memory-mb", k.mem},
		{"disk-gb", k.disk},
		{"bandwidth-mbps", k.bwd},
	} {
		if pair.v > 0 {
			q.Filters = append(q.Filters, registry.Filter{
				Name: pair.prop, Op: registry.OpGe, Value: trimFloat(pair.v),
			})
		}
	}
	return q
}

// lookup returns the cached selection for k when it is still valid:
// same finder instance (epoch), registry generation unchanged since the
// fill, and the selected service's lease current at now.
func (c *discoveryCache) lookup(k discoveryKey, now time.Time) (registry.Key, bool) {
	epoch := c.epochOf()
	gen := c.finder.Generation()
	c.mu.RLock()
	e, ok := c.entries[k]
	c.mu.RUnlock()
	if !ok || e.epoch != epoch || e.gen != gen ||
		(!e.leaseUntil.IsZero() && !now.Before(e.leaseUntil)) {
		c.misses.Inc()
		return "", false
	}
	c.hits.Inc()
	return e.key, true
}

// queryFor returns the prebuilt query for k when a (possibly stale)
// entry holds one, building it otherwise. Queries are immutable once
// built — Find only reads them — so sharing across refills is safe.
func (c *discoveryCache) queryFor(k discoveryKey) registry.Query {
	c.mu.RLock()
	e, ok := c.entries[k]
	c.mu.RUnlock()
	if ok {
		return e.query
	}
	return buildDiscoveryQuery(k)
}

// stamp reads the finder's instance epoch and mutation counter. Callers
// filling the cache must read both BEFORE running Find: a mutation (or
// restart) between the read and the Find stores a stale stamp and the
// next lookup misses (safe); reading after the Find could stamp stale
// data current.
func (c *discoveryCache) stamp() (epoch, gen uint64) {
	return c.epochOf(), c.finder.Generation()
}

// store records the Find outcome for k. Refilling an existing key
// replaces the entry in place (keeping its FIFO position); a new key
// may evict the oldest entry.
func (c *discoveryCache) store(k discoveryKey, e *discoveryEntry) {
	c.mu.Lock()
	if _, exists := c.entries[k]; !exists {
		if len(c.order) >= c.cap {
			oldest := c.order[0]
			copy(c.order, c.order[1:])
			c.order = c.order[:len(c.order)-1]
			delete(c.entries, oldest)
			c.evictions.Inc()
		}
		c.order = append(c.order, k)
	}
	c.entries[k] = e
	c.mu.Unlock()
}

// len reports the number of live entries (tests).
func (c *discoveryCache) len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.entries)
}
