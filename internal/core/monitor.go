package core

import (
	"sync"
	"time"

	"gqosm/internal/clockx"
)

// Monitor drives the broker's periodic QoS-management work (the Active
// phase of Fig. 3): each tick it asks the NRM to check all flows (firing
// degradation notifications), expires sessions whose validity window
// elapsed, and runs the §5.3 optimizer ("executed periodically by the AQoS
// broker"). The paper's broker "does not constantly monitor the QoS levels
// of the allocated resources; rather it relies on the SLA-Verif
// component" — the tick interval is therefore coarse by default.
type Monitor struct {
	broker   *Broker
	clock    clockx.Clock
	interval time.Duration

	mu      sync.Mutex
	timer   clockx.Timer
	stopped bool
	ticks   int
}

// NewMonitor returns a monitor ticking at the given interval (default 5
// minutes). Call Start to begin.
func NewMonitor(b *Broker, interval time.Duration) *Monitor {
	if interval <= 0 {
		interval = 5 * time.Minute
	}
	return &Monitor{broker: b, clock: b.clock, interval: interval}
}

// Start schedules the first tick. It is idempotent.
func (m *Monitor) Start() {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.timer != nil || m.stopped {
		return
	}
	m.timer = m.clock.AfterFunc(m.interval, m.tick)
}

// Stop cancels future ticks. A tick in flight completes.
func (m *Monitor) Stop() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.stopped = true
	if m.timer != nil {
		m.timer.Stop()
		m.timer = nil
	}
}

// Ticks reports how many ticks have run.
func (m *Monitor) Ticks() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.ticks
}

func (m *Monitor) tick() {
	// Re-arm from a defer so that a panic anywhere in the management
	// work cannot kill the loop: one poisoned session or a faulty RM
	// callback would otherwise silently end all future adaptation. The
	// re-arm decision and the tick count share m.mu with Stop, so a tick
	// racing Stop observes the stopped flag and never re-arms.
	defer func() {
		if r := recover(); r != nil {
			m.broker.met.monitorPanics.Inc()
			m.broker.logf("monitor", "", "tick panic recovered: %v", r)
		}
		m.mu.Lock()
		m.ticks++
		if !m.stopped {
			m.timer = m.clock.AfterFunc(m.interval, m.tick)
		}
		m.mu.Unlock()
	}()
	m.broker.met.monitorTicks.Inc()

	// The NRM check fires degradation notifications into the broker's
	// scenario-3 handler.
	if m.broker.cfg.NRM != nil {
		m.broker.cfg.NRM.CheckAll(m.clock.Now())
	}
	m.broker.ExpireDue()
	_, _ = m.broker.RunOptimizer()
	// Retry reservation cancels that exhausted their budget while an RM
	// was down: teardown parks them, the monitor keeps sweeping.
	m.broker.ReconcileReservations()
}
