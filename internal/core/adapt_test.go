package core

import (
	"errors"
	"math/rand"
	"strconv"
	"testing"

	"gqosm/internal/resource"
)

// paperPlan is the §5.6 partition of the 26 Grid-visible SGI processors:
// C_G = 15, C_A = 6, C_B = 5.
func paperPlan() CapacityPlan {
	return CapacityPlan{
		Guaranteed: resource.Nodes(15),
		Adaptive:   resource.Nodes(6),
		BestEffort: resource.Nodes(5),
	}
}

func newPaperAllocator(t *testing.T) *Allocator {
	t.Helper()
	a, err := NewAllocator(paperPlan())
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestCapacityPlan(t *testing.T) {
	p := paperPlan()
	if !p.Total().Equal(resource.Nodes(26)) {
		t.Errorf("Total = %v", p.Total())
	}
	if err := p.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
	if err := (CapacityPlan{}).Validate(); err == nil {
		t.Error("empty plan accepted")
	}
	bad := CapacityPlan{Guaranteed: resource.Nodes(-1), Adaptive: resource.Nodes(2)}
	if err := bad.Validate(); err == nil {
		t.Error("negative plan accepted")
	}
	if _, err := NewAllocator(CapacityPlan{}); err == nil {
		t.Error("NewAllocator accepted empty plan")
	}
}

func TestPlanForFailureRate(t *testing.T) {
	p, err := PlanForFailureRate(resource.Nodes(100), 0.2, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Adaptive.Equal(resource.Nodes(20)) || !p.BestEffort.Equal(resource.Nodes(10)) ||
		!p.Guaranteed.Equal(resource.Nodes(70)) {
		t.Errorf("plan = %+v", p)
	}
	for _, bad := range [][2]float64{{-0.1, 0.1}, {0.5, 0.5}, {0.2, -0.1}} {
		if _, err := PlanForFailureRate(resource.Nodes(10), bad[0], bad[1]); err == nil {
			t.Errorf("PlanForFailureRate(%v) accepted", bad)
		}
	}
}

func TestAllocateGuaranteedWithinG(t *testing.T) {
	a := newPaperAllocator(t)
	res, err := a.AllocateGuaranteed("sla3", resource.Nodes(10), resource.Nodes(10))
	if err != nil {
		t.Fatalf("AllocateGuaranteed: %v", err)
	}
	if !res.Granted.Equal(resource.Nodes(10)) || res.AdaptiveUsed || !res.Shortfall.IsZero() {
		t.Errorf("result = %+v", res)
	}
	if got := a.AvailableGuaranteed(); !got.Equal(resource.Nodes(5)) {
		t.Errorf("AvailableGuaranteed = %v, want 5 (admission bound is nominal C_G)", got)
	}
}

func TestAllocateGuaranteedUsesAdaptOnFailureShortfall(t *testing.T) {
	a := newPaperAllocator(t)
	if _, err := a.AllocateGuaranteed("u1", resource.Nodes(12), resource.Nodes(12)); err != nil {
		t.Fatal(err)
	}
	// Admission never eats the reserve: 12 + 6 = 18 > C_G = 15.
	if _, err := a.AllocateGuaranteed("u2", resource.Nodes(6), resource.Nodes(6)); !errors.Is(err, ErrCannotHonor) {
		t.Fatalf("admission into reserve: err = %v, want ErrCannotHonor", err)
	}
	// With 3 nodes failed (C_G_eff = 12), new demand within nominal C_G
	// is still admitted and the shortfall is covered from C_A: Adapt().
	a.SetOffline(resource.Nodes(3))
	res, err := a.AllocateGuaranteed("u2", resource.Nodes(3), resource.Nodes(3))
	if err != nil {
		t.Fatal(err)
	}
	if !res.AdaptiveUsed {
		t.Error("AdaptiveUsed = false, want true (demand 15 > C_G_eff 12)")
	}
	if !res.Granted.Equal(resource.Nodes(3)) {
		t.Errorf("Granted = %v", res.Granted)
	}
}

func TestAllocateGuaranteedFloorFallback(t *testing.T) {
	a := newPaperAllocator(t)
	if _, err := a.AllocateGuaranteed("u1", resource.Nodes(12), resource.Nodes(12)); err != nil {
		t.Fatal(err)
	}
	// Request 8 (floor 3): 12+8 > C_G=15, but 12+3 = 15 fits → only g(u).
	res, err := a.AllocateGuaranteed("u2", resource.Nodes(8), resource.Nodes(3))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Granted.Equal(resource.Nodes(3)) {
		t.Errorf("Granted = %v, want floor 3", res.Granted)
	}
	if !res.Shortfall.Equal(resource.Nodes(5)) {
		t.Errorf("Shortfall = %v, want 5", res.Shortfall)
	}
	// Even the floor cannot be honored now.
	if _, err := a.AllocateGuaranteed("u3", resource.Nodes(2), resource.Nodes(1)); !errors.Is(err, ErrCannotHonor) {
		t.Errorf("err = %v, want ErrCannotHonor", err)
	}
}

func TestAllocateGuaranteedValidation(t *testing.T) {
	a := newPaperAllocator(t)
	if _, err := a.AllocateGuaranteed("u", resource.Nodes(2), resource.Nodes(5)); err == nil {
		t.Error("floor > request accepted")
	}
	if _, err := a.AllocateGuaranteed("u", resource.Nodes(-2), resource.Nodes(-2)); err == nil {
		t.Error("negative request accepted")
	}
}

func TestReallocateReplacesGrant(t *testing.T) {
	a := newPaperAllocator(t)
	if _, err := a.AllocateGuaranteed("u", resource.Nodes(10), resource.Nodes(4)); err != nil {
		t.Fatal(err)
	}
	if _, err := a.AllocateGuaranteed("u", resource.Nodes(14), resource.Nodes(4)); err != nil {
		t.Fatalf("re-allocate: %v", err)
	}
	got, ok := a.GuaranteedAllocation("u")
	if !ok || !got.Equal(resource.Nodes(14)) {
		t.Errorf("allocation = %v, %v", got, ok)
	}
	// A failed re-allocation keeps the old grant.
	if _, err := a.AllocateGuaranteed("u", resource.Nodes(30), resource.Nodes(30)); !errors.Is(err, ErrCannotHonor) {
		t.Fatalf("err = %v", err)
	}
	got, _ = a.GuaranteedAllocation("u")
	if !got.Equal(resource.Nodes(14)) {
		t.Errorf("allocation after failed realloc = %v", got)
	}
}

func TestBestEffortBorrowsIdleCapacity(t *testing.T) {
	a := newPaperAllocator(t)
	// Nothing running: best effort may use all 26 nodes.
	if got := a.AvailableBestEffort(); !got.Equal(resource.Nodes(26)) {
		t.Errorf("AvailableBestEffort = %v, want 26", got)
	}
	if err := a.AllocateBestEffort("be1", resource.Nodes(11)); err != nil {
		t.Fatalf("AllocateBestEffort: %v", err)
	}
	if err := a.AllocateBestEffort("be2", resource.Nodes(16)); !errors.Is(err, ErrBestEffortFull) {
		t.Fatalf("over-allocate err = %v", err)
	}
	if err := a.AllocateBestEffort("be2", resource.Nodes(15)); err != nil {
		t.Fatal(err)
	}
	if got := a.AvailableBestEffort(); !got.IsZero() {
		t.Errorf("AvailableBestEffort = %v, want 0", got)
	}
}

func TestBestEffortValidation(t *testing.T) {
	a := newPaperAllocator(t)
	if err := a.AllocateBestEffort("be", resource.Capacity{}); err == nil {
		t.Error("zero best-effort request accepted")
	}
	if err := a.AllocateBestEffort("be", resource.Nodes(-1)); err == nil {
		t.Error("negative best-effort request accepted")
	}
	if err := a.ReleaseBestEffort("ghost"); !errors.Is(err, ErrUnknownUser) {
		t.Errorf("release ghost err = %v", err)
	}
	if err := a.ReleaseGuaranteed("ghost"); !errors.Is(err, ErrUnknownUser) {
		t.Errorf("release ghost err = %v", err)
	}
}

func TestGuaranteedPreemptsBestEffortBorrowers(t *testing.T) {
	a := newPaperAllocator(t)
	// Best effort borrows heavily: 20 nodes (5 B + 6 A + 9 G).
	if err := a.AllocateBestEffort("be1", resource.Nodes(12)); err != nil {
		t.Fatal(err)
	}
	if err := a.AllocateBestEffort("be2", resource.Nodes(8)); err != nil {
		t.Fatal(err)
	}
	// A guaranteed request for 10 must reclaim borrowed capacity: after
	// it, best effort may hold only 26 − 10 = 16.
	res, err := a.AllocateGuaranteed("sla3", resource.Nodes(10), resource.Nodes(10))
	if err != nil {
		t.Fatalf("AllocateGuaranteed: %v", err)
	}
	if len(res.Preempted) == 0 {
		t.Fatal("no preemptions reported")
	}
	// LIFO: be2 (newest) loses first — 4 of its 8.
	p := res.Preempted[0]
	if p.User != "be2" || !p.After.Equal(resource.Nodes(4)) || p.Evicted {
		t.Errorf("preemption = %+v", p)
	}
	be1, _ := a.BestEffortAllocation("be1")
	be2, _ := a.BestEffortAllocation("be2")
	if !be1.Add(be2).Equal(resource.Nodes(16)) {
		t.Errorf("best effort total = %v, want 16", be1.Add(be2))
	}
}

func TestBestEffortFloorNeverTakenByGuaranteed(t *testing.T) {
	a := newPaperAllocator(t)
	// Guaranteed saturates its admission bound C_G = 15 nodes.
	if _, err := a.AllocateGuaranteed("g1", resource.Nodes(15), resource.Nodes(15)); err != nil {
		t.Fatal(err)
	}
	// Guaranteed demand beyond that is rejected — C_B is untouchable.
	if _, err := a.AllocateGuaranteed("g2", resource.Nodes(1), resource.Nodes(1)); !errors.Is(err, ErrCannotHonor) {
		t.Fatalf("err = %v", err)
	}
	// Best-effort users still get their full minimum capacity C_B = 5.
	if err := a.AllocateBestEffort("be", resource.Nodes(5)); err != nil {
		t.Fatalf("best-effort floor unavailable: %v", err)
	}
}

func TestSetOfflineTriggersAdaptation(t *testing.T) {
	// The §5.6 t2 event: SLA3 holds 10 nodes; three C_G processors fail;
	// the guarantee survives by drawing on the adaptive pool.
	a := newPaperAllocator(t)
	if _, err := a.AllocateGuaranteed("sla3", resource.Nodes(14), resource.Nodes(14)); err != nil {
		t.Fatal(err)
	}
	if err := a.AllocateBestEffort("be", resource.Nodes(12)); err != nil {
		t.Fatal(err)
	}
	pre := a.SetOffline(resource.Nodes(3))
	// Guaranteed stays whole.
	g, _ := a.GuaranteedAllocation("sla3")
	if !g.Equal(resource.Nodes(14)) {
		t.Errorf("guaranteed after failure = %v", g)
	}
	// Best effort gives back exactly the lost 3 nodes.
	be, _ := a.BestEffortAllocation("be")
	if !be.Equal(resource.Nodes(9)) {
		t.Errorf("best effort after failure = %v, want 9", be)
	}
	if len(pre) != 1 || !pre[0].Before.Sub(pre[0].After).Equal(resource.Nodes(3)) {
		t.Errorf("preemptions = %+v", pre)
	}
	snap := a.Snapshot()
	if !snap[0].Offline.Equal(resource.Nodes(3)) {
		t.Errorf("G offline = %v", snap[0].Offline)
	}
	// G holds 12 of guaranteed demand, A the spilled 2.
	if !snap[0].Guaranteed.Equal(resource.Nodes(12)) || !snap[1].Guaranteed.Equal(resource.Nodes(2)) {
		t.Errorf("snapshot G/A guaranteed = %v / %v", snap[0].Guaranteed, snap[1].Guaranteed)
	}

	// Recovery at t3: capacity returns; best effort can re-grow.
	if got := a.SetOffline(resource.Capacity{}); len(got) != 0 {
		t.Errorf("recovery preempted %v", got)
	}
	if err := a.AllocateBestEffort("be-extra", resource.Nodes(3)); err != nil {
		t.Errorf("re-grow after recovery: %v", err)
	}
}

func TestOfflineClampedToG(t *testing.T) {
	a := newPaperAllocator(t)
	a.SetOffline(resource.Nodes(40))
	if got := a.Offline(); !got.Equal(resource.Nodes(15)) {
		t.Errorf("Offline = %v, want clamped to C_G=15", got)
	}
	// With all of C_G down, guaranteed can still get C_A = 6.
	if _, err := a.AllocateGuaranteed("u", resource.Nodes(6), resource.Nodes(6)); err != nil {
		t.Errorf("AllocateGuaranteed under total G failure: %v", err)
	}
	if _, err := a.AllocateGuaranteed("u2", resource.Nodes(1), resource.Nodes(1)); !errors.Is(err, ErrCannotHonor) {
		t.Errorf("err = %v", err)
	}
}

func TestSnapshotAccounting(t *testing.T) {
	a := newPaperAllocator(t)
	if _, err := a.AllocateGuaranteed("g", resource.Nodes(10), resource.Nodes(10)); err != nil {
		t.Fatal(err)
	}
	if err := a.AllocateBestEffort("be", resource.Nodes(11)); err != nil {
		t.Fatal(err)
	}
	snap := a.Snapshot()
	// The §5.6 t0 pattern: best-effort 11 = 5 in B, 5 in idle G, 1 in A.
	if !snap[2].BestEffort.Equal(resource.Nodes(5)) {
		t.Errorf("B best effort = %v", snap[2].BestEffort)
	}
	if !snap[0].BestEffort.Equal(resource.Nodes(5)) {
		t.Errorf("G best effort = %v", snap[0].BestEffort)
	}
	if !snap[1].BestEffort.Equal(resource.Nodes(1)) {
		t.Errorf("A best effort = %v", snap[1].BestEffort)
	}
	if !snap[0].Guaranteed.Equal(resource.Nodes(10)) {
		t.Errorf("G guaranteed = %v", snap[0].Guaranteed)
	}
	if !snap[0].Free().IsZero() {
		t.Errorf("G free = %v", snap[0].Free())
	}
	if !snap[1].Free().Equal(resource.Nodes(5)) {
		t.Errorf("A free = %v", snap[1].Free())
	}
	util := a.Utilization()
	if util.CPU < 0.8 || util.CPU > 0.81 {
		t.Errorf("Utilization = %v, want 21/26", util)
	}
}

func TestReleaseRestoresCapacity(t *testing.T) {
	a := newPaperAllocator(t)
	if _, err := a.AllocateGuaranteed("g", resource.Nodes(15), resource.Nodes(15)); err != nil {
		t.Fatal(err)
	}
	if err := a.ReleaseGuaranteed("g"); err != nil {
		t.Fatal(err)
	}
	if got := a.AvailableGuaranteed(); !got.Equal(resource.Nodes(15)) {
		t.Errorf("AvailableGuaranteed after release = %v", got)
	}
	if users := a.GuaranteedUsers(); len(users) != 0 {
		t.Errorf("GuaranteedUsers = %v", users)
	}
}

// Property: under random traffic the Algorithm-1 invariants hold:
// (1) total allocation never exceeds online capacity;
// (2) guaranteed demand never exceeds C_G_eff + C_A;
// (3) best-effort usage never exceeds C_B + idle A + idle G;
// (4) the snapshot's per-pool usage sums to the per-class totals.
func TestAllocatorInvariantsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(56))
	a := newPaperAllocator(t)
	gUsers := map[string]bool{}
	beUsers := map[string]bool{}
	for step := 0; step < 4000; step++ {
		switch rng.Intn(6) {
		case 0, 1:
			u := "g" + strconv.Itoa(rng.Intn(8))
			req := float64(1 + rng.Intn(12))
			floor := float64(1 + rng.Intn(int(req)))
			if _, err := a.AllocateGuaranteed(u, resource.Nodes(req), resource.Nodes(floor)); err == nil {
				gUsers[u] = true
			}
		case 2:
			u := "be" + strconv.Itoa(rng.Intn(8))
			if err := a.AllocateBestEffort(u, resource.Nodes(float64(1+rng.Intn(10)))); err == nil {
				beUsers[u] = true
			}
		case 3:
			for u := range gUsers {
				_ = a.ReleaseGuaranteed(u)
				delete(gUsers, u)
				break
			}
		case 4:
			for u := range beUsers {
				_ = a.ReleaseBestEffort(u)
				delete(beUsers, u)
				break
			}
		case 5:
			a.SetOffline(resource.Nodes(float64(rng.Intn(7))))
		}

		snap := a.Snapshot()
		var gTotal, beTotal, online resource.Capacity
		for _, s := range snap {
			gTotal = gTotal.Add(s.Guaranteed)
			beTotal = beTotal.Add(s.BestEffort)
			online = online.Add(s.Capacity.Sub(s.Offline))
		}
		if !gTotal.Add(beTotal).FitsIn(online) {
			t.Fatalf("step %d: allocated %v exceeds online %v", step, gTotal.Add(beTotal), online)
		}
		plan := a.Plan()
		gEff := plan.Guaranteed.Sub(a.Offline())
		if !gTotal.FitsIn(gEff.Add(plan.Adaptive)) {
			t.Fatalf("step %d: guaranteed %v exceeds C_G_eff+C_A", step, gTotal)
		}
		// Per-pool usage must fit the pool.
		for _, s := range snap {
			if !s.Guaranteed.Add(s.BestEffort).FitsIn(s.Capacity.Sub(s.Offline)) {
				t.Fatalf("step %d: pool %s overfull: %+v", step, s.Pool, s)
			}
		}
	}
}

func TestCoverage(t *testing.T) {
	a := newPaperAllocator(t)
	// No demand: full coverage.
	full := resource.Capacity{CPU: 1, MemoryMB: 1, DiskGB: 1, BandwidthMbps: 1}
	if got := a.Coverage(); !got.Equal(full) {
		t.Errorf("idle Coverage = %v", got)
	}
	if _, err := a.AllocateGuaranteed("u", resource.Nodes(15), resource.Nodes(15)); err != nil {
		t.Fatal(err)
	}
	// Failure within the reserve: still fully covered.
	a.SetOffline(resource.Nodes(6))
	if got := a.Coverage(); got.CPU != 1 {
		t.Errorf("Coverage with covered failure = %v", got)
	}
	// Failure past the reserve: 9 eff + 6 A = 15... still 1. Push further.
	a.SetOffline(resource.Nodes(12))
	got := a.Coverage()
	want := (15.0 - 12 + 6) / 15 // deliverable 9 of 15
	if got.CPU < want-1e-9 || got.CPU > want+1e-9 {
		t.Errorf("Coverage = %v, want CPU %g", got, want)
	}
	// Other dimensions (no demand) stay at 1.
	if got.MemoryMB != 1 {
		t.Errorf("memory coverage = %g", got.MemoryMB)
	}
}
