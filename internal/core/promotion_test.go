package core

import (
	"errors"
	"testing"
	"time"

	"gqosm/internal/clockx"
	"gqosm/internal/gara"
	"gqosm/internal/gram"
	"gqosm/internal/nrm"
	"gqosm/internal/registry"
	"gqosm/internal/resource"
	"gqosm/internal/sla"
)

// promoHarness builds a broker whose optimizer threshold is prohibitively
// high, so scenario-2(b) upgrades are skipped and scenario-2(c) promotion
// offers are the only upgrade path — making promotions deterministic.
func promoHarness(t *testing.T) *harness {
	t.Helper()
	h := newHarness(t)
	clock := clockx.NewManual(t0)
	pool := resource.NewPool("sgi", resource.Capacity{CPU: 26, MemoryMB: 10240, DiskGB: 200})
	g := gara.NewSystem()
	g.RegisterManager(gara.NewComputeManager(pool))
	reg := registry.New(clock)
	if _, err := reg.Register(registry.Service{
		Name:       "simulation",
		Properties: []registry.Property{registry.NumProp("cpu-nodes", 26)},
	}); err != nil {
		t.Fatal(err)
	}
	gramM := gram.NewManager(clock)
	t.Cleanup(gramM.Close)
	broker, err := NewBroker(Config{
		Domain: "site-a",
		Clock:  clock,
		Plan: CapacityPlan{
			Guaranteed: resource.Capacity{CPU: 15, MemoryMB: 6144},
			Adaptive:   resource.Capacity{CPU: 6, MemoryMB: 2048},
			BestEffort: resource.Capacity{CPU: 5, MemoryMB: 2048},
		},
		Registry:         reg,
		GARA:             g,
		GRAM:             gramM,
		ConfirmWindow:    time.Hour,
		MinOptimizerGain: 1e9, // optimizer never applies
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(broker.Close)
	h.broker = broker
	h.clock = clock
	h.pool = pool
	return h
}

// establishPromotionScene leaves one opted-in controlled-load tenant below
// its best quality with free headroom and an open promotion offer.
func establishPromotionScene(t *testing.T, h *harness) sla.ID {
	t.Helper()
	b := h.broker
	// Burst occupies 13 of C_G = 15.
	burst, err := b.RequestService(Request{
		Service: "simulation", Client: "burst", Class: sla.ClassGuaranteed,
		Spec:  sla.NewSpec(sla.Exact(resource.CPU, 13)),
		Start: t0, End: t5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Accept(burst.SLA.ID); err != nil {
		t.Fatal(err)
	}
	// Tenant gets the remaining 2 nodes (floor), below its best of 8.
	tenant, err := b.RequestService(Request{
		Service: "simulation", Client: "tenant", Class: sla.ClassControlledLoad,
		Spec:  sla.NewSpec(sla.Range(resource.CPU, 2, 8)),
		Start: t0, End: t5,
		PromotionOptIn: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Accept(tenant.SLA.ID); err != nil {
		t.Fatal(err)
	}
	doc, _ := b.Session(tenant.SLA.ID)
	if doc.Allocated.CPU != 2 {
		t.Fatalf("tenant allocated %v, want floor 2", doc.Allocated)
	}
	// Burst ends; with the optimizer disabled, a promotion offer is the
	// only upgrade channel.
	if err := b.Terminate(burst.SLA.ID, "done"); err != nil {
		t.Fatal(err)
	}
	return tenant.SLA.ID
}

func TestPromotionOfferedWhenOptimizerSkips(t *testing.T) {
	h := promoHarness(t)
	id := establishPromotionScene(t, h)

	promos := h.broker.Promotions()
	if len(promos) != 1 {
		t.Fatalf("promotions = %+v, want 1", promos)
	}
	offer := promos[0]
	if offer.SLA != id {
		t.Errorf("offer for %s, want %s", offer.SLA, id)
	}
	if offer.To.CPU != 8 {
		t.Errorf("offer target = %v, want best 8", offer.To)
	}
	if offer.OfferPrice >= offer.ListPrice {
		t.Errorf("offer %g not discounted from list %g", offer.OfferPrice, offer.ListPrice)
	}
	// No duplicate offers on subsequent scenario-2 passes.
	h.broker.afterRelease()
	if got := len(h.broker.Promotions()); got != 1 {
		t.Errorf("promotions after second pass = %d", got)
	}
}

func TestAcceptPromotionUpgradesAndCharges(t *testing.T) {
	h := promoHarness(t)
	id := establishPromotionScene(t, h)
	offer := h.broker.Promotions()[0]
	before, _ := h.broker.Session(id)
	revBefore := h.broker.Ledger().NetRevenue()

	if err := h.broker.AcceptPromotion(id); err != nil {
		t.Fatalf("AcceptPromotion: %v", err)
	}
	after, _ := h.broker.Session(id)
	if !after.Allocated.Equal(offer.To) {
		t.Errorf("allocated = %v, want %v", after.Allocated, offer.To)
	}
	if after.Price <= before.Price {
		t.Errorf("price did not grow: %g -> %g", before.Price, after.Price)
	}
	gain := h.broker.Ledger().NetRevenue() - revBefore
	if gain != offer.OfferPrice {
		t.Errorf("revenue gain = %g, want offer price %g", gain, offer.OfferPrice)
	}
	// Offer consumed.
	if len(h.broker.Promotions()) != 0 {
		t.Error("offer still open")
	}
	if err := h.broker.AcceptPromotion(id); !errors.Is(err, ErrUnknownSession) {
		t.Errorf("double accept err = %v", err)
	}
}

func TestAcceptPromotionExpired(t *testing.T) {
	h := promoHarness(t)
	id := establishPromotionScene(t, h)
	h.clock.Advance(2 * time.Hour) // past the confirm-window-based expiry
	if err := h.broker.AcceptPromotion(id); !errors.Is(err, ErrBadState) {
		t.Fatalf("expired promotion err = %v", err)
	}
	if len(h.broker.Promotions()) != 0 {
		t.Error("expired offer not cleaned up")
	}
}

func TestAcceptPromotionCapacityRace(t *testing.T) {
	// Capacity vanishes between offer and acceptance: the promotion is
	// refused and the previous grant stands.
	h := promoHarness(t)
	id := establishPromotionScene(t, h)
	// A competitor takes the freed capacity first.
	comp, err := h.broker.RequestService(Request{
		Service: "simulation", Client: "competitor", Class: sla.ClassGuaranteed,
		Spec:  sla.NewSpec(sla.Exact(resource.CPU, 13)),
		Start: t0, End: t5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := h.broker.Accept(comp.SLA.ID); err != nil {
		t.Fatal(err)
	}
	if err := h.broker.AcceptPromotion(id); err == nil {
		t.Fatal("promotion accepted without capacity")
	}
	doc, _ := h.broker.Session(id)
	if doc.Allocated.CPU != 2 {
		t.Errorf("allocation after failed promotion = %v, want unchanged 2", doc.Allocated)
	}
}

func TestPromotionClearedOnTermination(t *testing.T) {
	h := promoHarness(t)
	id := establishPromotionScene(t, h)
	if err := h.broker.Terminate(id, "client left"); err != nil {
		t.Fatal(err)
	}
	if len(h.broker.Promotions()) != 0 {
		t.Error("promotion survived session termination")
	}
	if err := h.broker.AcceptPromotion(id); !errors.Is(err, ErrUnknownSession) {
		t.Errorf("err = %v", err)
	}
}

func TestSessionsFilter(t *testing.T) {
	h := promoHarness(t)
	_ = establishPromotionScene(t, h)
	all := h.broker.Sessions(nil)
	if len(all) != 2 { // burst (terminated) + tenant
		t.Fatalf("Sessions = %d", len(all))
	}
	active := h.broker.Sessions(func(d *sla.Document) bool { return !d.State.Terminal() })
	if len(active) != 1 || active[0].Client != "tenant" {
		t.Fatalf("active Sessions = %+v", active)
	}
	for i := 1; i < len(all); i++ {
		if all[i-1].ID >= all[i].ID {
			t.Fatal("Sessions not sorted")
		}
	}
}

func TestVerifyAfterNetworkModify(t *testing.T) {
	// Verify's flow lookup must survive a GARA Modify that re-issued the
	// flow under a new ID (the tag-matching fallback in measureFlow).
	h := newHarness(t)
	b := h.broker
	req := guaranteedRequest()
	offer, err := b.RequestService(req)
	if err != nil {
		t.Fatal(err)
	}
	id := offer.SLA.ID
	if err := b.Accept(id); err != nil {
		t.Fatal(err)
	}
	// Force a network-part modify through the degradation/restore cycle:
	// degrade to floor (same bandwidth — exact spec, so use GARA
	// directly via the broker's alternative path is moot). Instead,
	// modify through GARA by hand to simulate an adapted flow.
	sess, err := b.Session(id)
	if err != nil {
		t.Fatal(err)
	}
	_ = sess
	// Locate the session's reservation by its idempotency tag (the RSL
	// string itself is tag-free so identical asks share a cached parse).
	handle, ok := h.broker.cfg.GARA.FindByTag(string(id))
	if !ok {
		t.Fatal("no reservation found")
	}
	if err := h.broker.cfg.GARA.Modify(handle,
		`&(reservation-type="network")(bandwidth=45)`); err != nil {
		t.Fatalf("modify: %v", err)
	}
	rep, err := b.Verify(id)
	if err != nil {
		t.Fatalf("Verify after modify: %v", err)
	}
	if rep.XML.Network == nil {
		t.Fatal("network levels missing after modify (tag fallback broken)")
	}
	if !rep.Conforms {
		t.Errorf("healthy modified flow does not conform: %+v", rep)
	}
}

func TestHandleDegradationWithoutAlternativeViolates(t *testing.T) {
	// A guaranteed session with no negotiated alternative: repeated
	// degradation escalates to violation and then termination (3c).
	h := newHarness(t)
	b := h.broker
	req := guaranteedRequest()
	req.AcceptDegradation = false
	offer, err := b.RequestService(req)
	if err != nil {
		t.Fatal(err)
	}
	id := offer.SLA.ID
	if err := b.Accept(id); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Invoke(id); err != nil {
		t.Fatal(err)
	}
	if err := h.topo.SetCongestion("site-a", "site-c", nrm.Congestion{BandwidthFactor: 0.2}); err != nil {
		t.Fatal(err)
	}
	h.netMgr.CheckAll(h.clock.Now())
	doc, _ := b.Session(id)
	if doc.State != sla.StateViolated && doc.State != sla.StateDegraded {
		t.Fatalf("state = %v, want violated/degraded", doc.State)
	}
	if b.Violations(id) == 0 {
		t.Error("no violation recorded")
	}
	// Unknown session: Violations is zero, degradation ignored.
	if b.Violations("ghost") != 0 {
		t.Error("Violations(ghost) != 0")
	}
}

func TestExpireErrors(t *testing.T) {
	h := newHarness(t)
	if err := h.broker.Expire("ghost"); !errors.Is(err, ErrUnknownSession) {
		t.Errorf("Expire ghost err = %v", err)
	}
	offer, err := h.broker.RequestService(guaranteedRequest())
	if err != nil {
		t.Fatal(err)
	}
	if err := h.broker.Accept(offer.SLA.ID); err != nil {
		t.Fatal(err)
	}
	if err := h.broker.Expire(offer.SLA.ID); err != nil {
		t.Fatal(err)
	}
	if err := h.broker.Expire(offer.SLA.ID); !errors.Is(err, ErrBadState) {
		t.Errorf("double Expire err = %v", err)
	}
	if err := h.broker.Terminate(offer.SLA.ID, "x"); !errors.Is(err, ErrBadState) {
		t.Errorf("Terminate after Expire err = %v", err)
	}
}

func TestInvokeErrors(t *testing.T) {
	h := newHarness(t)
	if _, err := h.broker.Invoke("ghost"); !errors.Is(err, ErrUnknownSession) {
		t.Errorf("Invoke ghost err = %v", err)
	}
	offer, err := h.broker.RequestService(guaranteedRequest())
	if err != nil {
		t.Fatal(err)
	}
	// Invoke before accept is a state error.
	if _, err := h.broker.Invoke(offer.SLA.ID); !errors.Is(err, ErrBadState) {
		t.Errorf("Invoke proposed err = %v", err)
	}
	// Verify on a proposed session is a state error too.
	if _, err := h.broker.Verify(offer.SLA.ID); !errors.Is(err, ErrBadState) {
		t.Errorf("Verify proposed err = %v", err)
	}
	if _, err := h.broker.Verify("ghost"); !errors.Is(err, ErrUnknownSession) {
		t.Errorf("Verify ghost err = %v", err)
	}
}
