package core

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"time"

	"gqosm/internal/gara"
	"gqosm/internal/registry"
	"gqosm/internal/resource"
	"gqosm/internal/sla"
)

// Request is a client's service request with QoS requirements (the
// service_request of Fig. 7): "a client contacts the AQoS broker with its
// service information and QoS requirements, such as reservation time and
// budget constraints" (§2.1).
type Request struct {
	Service string
	Client  string
	Class   sla.Class
	Spec    sla.Spec
	// Start and End bound the reservation.
	Start, End time.Time
	// Budget caps the session price; 0 means unconstrained.
	Budget float64
	// AcceptDegradation / AcceptTermination / PromotionOptIn are the
	// adaptation options the client is willing to record in the SLA
	// (§5.2).
	AcceptDegradation bool
	AcceptTermination bool
	PromotionOptIn    bool
	// Penalty records the SLA-violation penalty terms (§5.2 lists "SLA
	// violation penalties" among the agreed terms); zero means no
	// penalty clause.
	Penalty sla.Penalty
	// ShardHint pins placement to a shard (1-based index; 0 lets the
	// placement layer pick the least-loaded shard). The fallback chain
	// across the remaining shards still applies on capacity errors.
	// Ignored by single-shard brokers.
	ShardHint int
}

// Validate checks the request.
func (r Request) Validate() error {
	if r.Service == "" {
		return fmt.Errorf("core: request needs a service name")
	}
	if r.Class != sla.ClassGuaranteed && r.Class != sla.ClassControlledLoad {
		return fmt.Errorf("core: negotiated requests must be guaranteed or controlled-load, got %v", r.Class)
	}
	if len(r.Spec.Params) == 0 {
		return fmt.Errorf("core: request needs QoS parameters")
	}
	if err := r.Spec.Validate(); err != nil {
		return err
	}
	if !r.End.After(r.Start) {
		return fmt.Errorf("core: end %v not after start %v", r.End, r.Start)
	}
	if r.PromotionOptIn && r.Class != sla.ClassControlledLoad {
		return fmt.Errorf("core: promotion offers require the controlled-load class")
	}
	return nil
}

// Offer is the broker's response to a request: a proposed SLA with
// temporarily reserved resources, valid until Expires (§3.1: "resources
// are temporarily reserved during the discovery phase until the client and
// the AQoS conclude a SLA").
type Offer struct {
	SLA     *sla.Document
	Price   float64
	Expires time.Time
	// ServiceKey is the discovered registry entry backing the offer.
	ServiceKey registry.Key
	// Compensated reports that scenario-1 adaptation (degrading willing
	// SLAs) was needed to make room.
	Compensated bool
}

// RequestService runs the discovery and negotiation phases: find matching
// services, verify resource availability (adapting active sessions if
// necessary — scenario 1), temporarily reserve, and return a priced offer.
func (b *Broker) RequestService(req Request) (*Offer, error) {
	// Admission latency is wall-clock (time.Now, not b.clock): the
	// injected clock measures simulated time, while the histogram
	// measures how long the broker actually works.
	started := time.Now()
	offer, err := b.requestService(req)
	b.met.admitSeconds.Observe(time.Since(started).Seconds())
	if err != nil {
		b.met.requestErrors.Inc()
		return nil, err
	}
	b.met.requests.Inc()
	b.trace(offer.SLA.ID, noState, sla.StateProposed, offer.SLA.Allocated, "offer proposed")
	return offer, nil
}

func (b *Broker) requestService(req Request) (*Offer, error) {
	defer b.debugCheck("request")
	if err := req.Validate(); err != nil {
		return nil, err
	}
	if b.closed.Load() {
		return nil, ErrClosed
	}
	if b.recovering.Load() {
		// Mid-Recover the session table and allocators are still being
		// installed; refuse with the transient gate so federated callers
		// retry or re-route instead of treating this broker as dead.
		return nil, ErrPeerUnavailable
	}
	// The floor is read by discovery, placement and admission; compute it
	// once here instead of re-deriving it from the spec at every layer.
	floor := req.Spec.Floor()
	b.logf("discovery", "", "client %q requests %q class=%s spec floor %v",
		req.Client, req.Service, req.Class, floor)

	key, err := b.discover(req, floor)
	if err != nil {
		return nil, err
	}

	// Placement: try shards least-loaded first (honoring any hint) and
	// fall back across them on capacity refusals — the intra-domain
	// mirror of the federation's capacity-error forwarding. The SLA ID is
	// issued lazily by the first attempt that needs one, so ID sequences
	// match the single-shard broker exactly (budget refusals never burn
	// an ID).
	var id sla.ID
	ensureID := func() sla.ID {
		if id == "" {
			id = b.newSLAID()
		}
		return id
	}
	order := b.placementOrder(req.ShardHint, floor)
	var lastErr error
	for _, sh := range order {
		offer, err := b.requestOnShard(sh, req, key, floor, ensureID)
		if err == nil {
			return offer, nil
		}
		lastErr = err
		if !errors.Is(err, ErrCannotHonor) {
			// Non-capacity refusals (budget, reservation, shutdown) are
			// final: no other shard would decide differently.
			return nil, err
		}
	}
	if len(b.shards) == 1 {
		return nil, lastErr
	}
	return nil, fmt.Errorf("core: %d shard(s) tried, none can honor: %w", len(order), lastErr)
}

// requestOnShard runs the negotiation phase against one shard: quality
// clamp against the shard's headroom, budget check, Algorithm-1 admission
// with scenario-1 compensation on the shard's own sessions, GARA
// reservation, and session registration under the shard lock. ensureID
// issues the global SLA ID on first use.
func (b *Broker) requestOnShard(sh *shard, req Request, key registry.Key, floor resource.Capacity, ensureID func() sla.ID) (*Offer, error) {
	// Choose the proposed quality: guaranteed gets the exact request;
	// controlled-load gets the best level currently free, never below
	// the floor.
	quality := req.Spec.Best()
	if req.Class == sla.ClassControlledLoad {
		// Offer the best level the shard's headroom carries; Clamp
		// raises below-floor dimensions back to the floor, in which case
		// admission relies on scenario-1 compensation below.
		quality = req.Spec.Clamp(quality.Min(sh.alloc.AvailableGuaranteed()))
		quality = quality.Max(floor)
	}

	// Budget: degrade controlled-load quality toward the floor until the
	// price fits.
	price := b.prices.Cost(req.Class, quality)
	if req.Budget > 0 && price > req.Budget {
		if req.Class == sla.ClassGuaranteed {
			return nil, fmt.Errorf("%w: price %.2f > budget %.2f", ErrOverBudget, price, req.Budget)
		}
		quality = floor
		price = b.prices.Cost(req.Class, quality)
		if price > req.Budget {
			return nil, fmt.Errorf("%w: floor price %.2f > budget %.2f", ErrOverBudget, price, req.Budget)
		}
	}

	id := ensureID()

	// Capacity admission via Algorithm 1, with scenario-1 compensation
	// on failure.
	compensated := false
	grant, err := sh.alloc.AllocateGuaranteed(string(id), quality, floor)
	if err != nil {
		freed, cerr := b.compensate(sh, floor)
		if cerr != nil {
			return nil, fmt.Errorf("request %s: %w (compensation: %v)", id, err, cerr)
		}
		compensated = freed
		grant, err = sh.alloc.AllocateGuaranteed(string(id), quality, floor)
		if err != nil {
			return nil, fmt.Errorf("request %s after compensation: %w", id, err)
		}
	}
	allocated := grant.Granted
	if !grant.Shortfall.IsZero() {
		// Only the floor was granted; reprice at what is delivered.
		quality = allocated
		price = b.prices.Cost(req.Class, quality)
	}

	// Mechanism: temporary GARA reservation, created idempotently: a
	// retry after a lost reply adopts the reservation already committed
	// under this SLA's tag instead of double-committing it.
	spec := reservationRSL(req.Spec, allocated)
	handle, err := b.pol.callCreate("gara.create", string(id), func() (gara.Handle, error) {
		return b.cfg.GARA.Create(spec, req.Start, req.End, string(id))
	})
	if err != nil {
		_ = sh.alloc.ReleaseGuaranteed(string(id))
		// A timed-out or partially-failed attempt may still have
		// committed the reservation; park it so the reconciliation
		// sweep cancels it rather than leaking it.
		if h, ok := b.cfg.GARA.FindByTag(string(id)); ok {
			b.parkCancel(id, h)
		}
		// The failed admission may have preempted best-effort grants;
		// journal the shard's post-rollback aux or replay resurrects them.
		b.journalShardAux("rollback", sh)
		return nil, fmt.Errorf("core: reservation: %w", err)
	}

	doc := &sla.Document{
		ID:       id,
		Service:  req.Service,
		Client:   req.Client,
		Provider: b.cfg.Domain,
		Class:    req.Class,
		Spec:     req.Spec.Clone(),
		Adapt: sla.AdaptationOptions{
			AcceptDegradation: req.AcceptDegradation,
			AcceptTermination: req.AcceptTermination,
			PromotionOffers:   req.PromotionOptIn,
			AlternativeQoS:    floor,
			HasAlternative:    req.AcceptDegradation || req.Class == sla.ClassControlledLoad,
		},
		Penalty:   req.Penalty,
		Start:     req.Start,
		End:       req.End,
		Price:     price,
		Allocated: allocated,
		State:     sla.StateProposed,
	}
	expires := b.clock.Now().Add(b.cfg.ConfirmWindow)
	sess := &session{doc: doc, handle: handle, original: allocated, proposedAt: b.clock.Now()}

	// Install the route before the session: the confirm timer's expiry
	// callback resolves the shard through it.
	b.routeMu.Lock()
	b.route[id] = sh
	b.routeMu.Unlock()

	sh.mu.Lock()
	if b.closed.Load() {
		// The broker shut down while this request was negotiating; undo
		// the reservation rather than leak it into a closed broker.
		sh.mu.Unlock()
		b.routeMu.Lock()
		delete(b.route, id)
		b.routeMu.Unlock()
		_ = sh.alloc.ReleaseGuaranteed(string(id))
		_ = b.cfg.GARA.Cancel(handle)
		b.journalShardAux("rollback", sh)
		return nil, ErrClosed
	}
	sh.sessions[id] = sess
	// Schedule the auto-cancel only after the session is registered: the
	// clock may fire the callback the instant it is armed (a concurrent
	// Advance past the window), and an expiry that finds no session would
	// silently leave the offer un-expirable. Timer scheduling never fires
	// callbacks synchronously under the clock's lock, so arming it under
	// sh.mu cannot deadlock.
	sess.confirm = b.clock.AfterFunc(b.cfg.ConfirmWindow, func() {
		b.expireOffer(id)
	})
	b.logLocked("offer", id, "proposed %v at price %.2f (expires %s)",
		allocated, price, expires.Format("15:04:05"))
	// Snapshot the offer document before releasing the lock: once the
	// confirm timer is armed, a concurrent clock advance can expire the
	// offer and mutate doc at any moment.
	offered := doc.Clone()
	sh.mu.Unlock()

	// Proposal is the one lifecycle step that never reaches persist —
	// journal it explicitly: the proposed session holds an allocator
	// grant and a GARA reservation that recovery must account for.
	b.journal("propose", id)

	return &Offer{
		SLA:         offered,
		Price:       price,
		Expires:     expires,
		ServiceKey:  key,
		Compensated: compensated,
	}, nil
}

// discover queries the registry for services matching the request's name
// and QoS floor (the UDDIe property search of §2.1). With no registry
// configured the request is accepted as-is. When the discovery cache is
// live a repeated (service, floor) query is answered from it — skipping
// the registry Find and the per-request Query rebuild (including the
// trimFloat rendering of every filter value) entirely; errors and empty
// result sets always fall through, so they behave identically on the
// cached and uncached paths.
func (b *Broker) discover(req Request, floor resource.Capacity) (registry.Key, error) {
	if b.cfg.Registry == nil {
		return "", nil
	}
	dk := discoveryKeyFor(req.Service, floor)
	var (
		q          registry.Query
		epoch, gen uint64
	)
	if b.dcache != nil {
		if key, ok := b.dcache.lookup(dk, b.clock.Now()); ok {
			return key, nil
		}
		// Miss: reuse the prebuilt query of any stale entry, and read the
		// epoch+generation stamp before the Find (see discoveryCache.stamp).
		q = b.dcache.queryFor(dk)
		epoch, gen = b.dcache.stamp()
	} else {
		q = buildDiscoveryQuery(dk)
	}
	matches, err := b.cfg.Registry.Find(q)
	if err != nil {
		return "", fmt.Errorf("core: discovery: %w", err)
	}
	if len(matches) == 0 {
		return "", fmt.Errorf("%w: %q with %v", ErrNoService, req.Service, floor)
	}
	if b.dcache != nil {
		b.dcache.store(dk, &discoveryEntry{
			query:      q,
			key:        matches[0].Key,
			name:       matches[0].Name,
			leaseUntil: matches[0].LeaseUntil,
			gen:        gen,
			epoch:      epoch,
		})
	}
	b.logf("discovery", "", "registry returned %d matching service(s); selected %q",
		len(matches), matches[0].Name)
	return matches[0].Key, nil
}

// compensate implements scenario 1: "adaptation can be used to free
// resources to accommodate the new request by adjusting resource
// allocations of active services while still satisfying their SLAs. …
// The list is filtered to include only those services whose SLAs indicate
// willingness to accept a degraded QoS and/or termination of service."
// It degrades willing active sessions to their floors, then (if still
// needed) terminates willing-to-terminate sessions, cheapest first. It
// reports whether anything was freed. Compensation is shard-local: only
// sessions admitted on sh can return capacity to sh's partition.
func (b *Broker) compensate(sh *shard, needed resource.Capacity) (bool, error) {
	sh.mu.Lock()
	// Snapshot everything the ladder ordering reads while sh.mu is held:
	// the documents stay owned by the shard and may be mutated (price,
	// state) by concurrent lifecycle calls once the lock is released.
	var degradable, terminable []LadderTarget
	for id, s := range sh.sessions {
		if s.doc.State != sla.StateActive && s.doc.State != sla.StateEstablished {
			continue
		}
		floor := s.doc.Spec.Floor()
		if s.doc.Adapt.AcceptDegradation && !s.doc.Allocated.Sub(floor).ClampMin(resource.Capacity{}).IsZero() {
			degradable = append(degradable, LadderTarget{ID: id, Price: s.doc.Price, Recovered: s.doc.Allocated.Sub(floor)})
		}
		if s.doc.Adapt.AcceptTermination {
			terminable = append(terminable, LadderTarget{ID: id, Price: s.doc.Price, Recovered: s.doc.Allocated})
		}
	}
	sh.mu.Unlock()

	if len(degradable) == 0 && len(terminable) == 0 {
		return false, fmt.Errorf("core: no active SLA accepts degradation or termination")
	}

	// The policy decides the victim order (the paper's: cheapest first by
	// (price, id), minimizing provider impact). The shadow candidate sorts
	// its own copy of the pre-sort ladder so the comparison is
	// order-independent and side-effect-free.
	sortTargets := func(ts []LadderTarget) {
		if b.shadowPol != nil && len(ts) > 1 {
			cand := append([]LadderTarget(nil), ts...)
			b.shadowPol.CompensationOrder(cand)
			b.policy.CompensationOrder(ts)
			b.recordShadow("ladder", !sameLadderOrder(ts, cand))
			return
		}
		b.policy.CompensationOrder(ts)
	}
	sortTargets(degradable)
	sortTargets(terminable)

	freed := false
	for _, t := range degradable {
		if needed.FitsIn(sh.alloc.AvailableGuaranteed()) {
			break
		}
		if err := b.degradeToFloor(t.ID); err == nil {
			freed = true
		}
	}
	for _, t := range terminable {
		if needed.FitsIn(sh.alloc.AvailableGuaranteed()) {
			break
		}
		// Tear down without the scenario-2 hook: running it here would
		// restore the volunteers degraded above and hand the freed
		// capacity straight back.
		if err := b.terminateForCompensation(t.ID); err == nil {
			freed = true
		}
	}
	if freed {
		b.met.compensations.Inc()
	}
	if !needed.FitsIn(sh.alloc.AvailableGuaranteed()) {
		return freed, fmt.Errorf("core: compensation freed insufficient capacity for %v", needed)
	}
	return freed, nil
}

// degradeToFloor shrinks an active session to its SLA floor (still
// satisfying the SLA) and records it as degraded.
func (b *Broker) degradeToFloor(id sla.ID) error {
	sh := b.shardFor(id)
	if sh == nil {
		return fmt.Errorf("%w: %s", ErrUnknownSession, id)
	}
	sh.mu.Lock()
	s, ok := sh.sessions[id]
	if !ok {
		sh.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrUnknownSession, id)
	}
	doc := s.doc
	floor := doc.Spec.Floor()
	if doc.Allocated.Equal(floor) {
		sh.mu.Unlock()
		return nil
	}
	prevAlloc := doc.Allocated
	prevState := doc.State
	handle := s.handle
	spec := doc.Spec.Clone()
	sh.mu.Unlock()

	if _, err := b.allocateLive(id, floor, floor); err != nil {
		return err
	}
	if err := b.applyAllocation(id, handle, spec, floor, true); err != nil {
		return fmt.Errorf("core: degrade %s: %w", id, err)
	}

	sh.mu.Lock()
	s.degraded = true
	if s.doc.State == sla.StateActive {
		_ = s.doc.Transition(sla.StateDegraded)
	}
	newState := s.doc.State
	b.logLocked("adapt", id, "degraded to floor %v (scenario 1 compensation)", floor)
	sh.mu.Unlock()
	b.met.degraded.Inc()
	b.trace(id, prevState, newState, floor.Sub(prevAlloc), "degraded to floor (scenario 1)")
	b.persist(id)
	return nil
}

// Accept confirms a proposed offer: the SLA is established, the temporary
// reservation committed, and the client charged.
func (b *Broker) Accept(id sla.ID) error {
	defer b.debugCheck("accept")
	sh := b.shardFor(id)
	if sh == nil {
		return fmt.Errorf("%w: %s", ErrUnknownSession, id)
	}
	sh.mu.Lock()
	s, ok := sh.sessions[id]
	if !ok {
		sh.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrUnknownSession, id)
	}
	if s.doc.State != sla.StateProposed {
		sh.mu.Unlock()
		return fmt.Errorf("%w: %s is %s", ErrBadState, id, s.doc.State)
	}
	if s.confirm != nil {
		s.confirm.Stop()
		s.confirm = nil
	}
	if err := s.doc.Transition(sla.StateEstablished); err != nil {
		sh.mu.Unlock()
		return err
	}
	price := s.doc.Price
	b.logLocked("sla", id, "established; resources committed; charged %.2f", price)
	sh.mu.Unlock()

	b.met.accepted.Inc()
	b.trace(id, sla.StateProposed, sla.StateEstablished, resource.Capacity{}, "offer accepted")
	b.ledger.Charge(id, price, b.clock.Now(), "session charge")
	b.persist(id)
	return nil
}

// Reject declines a proposed offer, releasing the temporary reservation.
// The proposed-state check is evaluated atomically with the teardown so a
// concurrent Accept cannot establish the session in between and have it
// torn down anyway.
func (b *Broker) Reject(id sla.ID) error {
	defer b.debugCheck("reject")
	err := b.teardownIf(id, sla.StateTerminated, "offer rejected by client",
		func(s *session) bool { return s.doc.State == sla.StateProposed })
	if err == nil {
		b.met.rejected.Inc()
	}
	return err
}

// expireOffer is the §3.1 auto-cancel: "if the RS does not receive such
// confirmation within the pre-defined period of time, it instructs GARA to
// cancel the reservation." Gated on the proposed state atomically with the
// teardown: an Accept racing the confirmation deadline either establishes
// the session (and the expiry is a no-op) or loses cleanly.
func (b *Broker) expireOffer(id sla.ID) {
	err := b.teardownIf(id, sla.StateTerminated,
		"confirmation window elapsed; reservation canceled",
		func(s *session) bool { return s.doc.State == sla.StateProposed })
	if err == nil {
		b.met.expired.Inc()
	}
}

// BestEffortRequest asks for best-effort capacity — no SLA, no
// negotiation: "any suitable resources found are returned to the user"
// (§5.1). The grant is immediate or refused. A client's best-effort
// allocations are pinned to the shard of its first grant so repeated
// grants and the final release balance on one partition; the first grant
// picks a shard in placement order, falling back on ErrBestEffortFull.
func (b *Broker) BestEffortRequest(client string, amount resource.Capacity) error {
	defer b.debugCheck("best-effort")
	if b.closed.Load() {
		return ErrClosed
	}
	b.beMu.Lock()
	if sh, pinned := b.beRoute[client]; pinned {
		if err := sh.alloc.AllocateBestEffort(client, amount); err != nil {
			b.beMu.Unlock()
			b.logf("best-effort", "", "denied %v to %q: %v", amount, client, err)
			return err
		}
		b.journalBELocked("be-grant", sh)
		b.beMu.Unlock()
		b.maybeSnapshot()
		b.logf("best-effort", "", "granted %v to %q", amount, client)
		return nil
	}
	var lastErr error
	for _, sh := range b.placementOrder(0, resource.Capacity{}) {
		err := sh.alloc.AllocateBestEffort(client, amount)
		if err == nil {
			b.beRoute[client] = sh
			b.journalBELocked("be-grant", sh)
			b.beMu.Unlock()
			b.maybeSnapshot()
			b.logf("best-effort", "", "granted %v to %q", amount, client)
			return nil
		}
		lastErr = err
		if !errors.Is(err, ErrBestEffortFull) {
			break
		}
	}
	b.beMu.Unlock()
	b.logf("best-effort", "", "denied %v to %q: %v", amount, client, lastErr)
	return lastErr
}

// BestEffortRelease returns a best-effort client's capacity.
func (b *Broker) BestEffortRelease(client string) error {
	defer b.debugCheck("best-effort-release")
	b.beMu.Lock()
	sh, pinned := b.beRoute[client]
	if !pinned {
		sh = b.shards[0]
	}
	err := sh.alloc.ReleaseBestEffort(client)
	if err == nil || errors.Is(err, ErrUnknownUser) {
		// An evicted borrower's pin is stale; drop it either way.
		delete(b.beRoute, client)
		b.journalBELocked("be-release", sh)
	}
	b.beMu.Unlock()
	b.maybeSnapshot()
	if err != nil {
		return err
	}
	b.logf("best-effort", "", "released all capacity of %q", client)
	b.afterRelease()
	return nil
}

func (b *Broker) newSLAID() sla.ID {
	return sla.ID(fmt.Sprintf("%s-sla-%04d",
		strings.ToLower(nonEmpty(b.cfg.Domain, "aqos")), b.nextID.Add(1)))
}

// reservationRSL renders the GARA request for a spec at the allocated
// capacity: a compute part for CPU/memory/disk and a network part for
// bandwidth, combined into a multirequest when both are present.
//
// The string is a pure function of (spec shape, allocation) — the
// session's idempotency tag travels as Create's explicit tag argument,
// never inside the RSL. That keeps identical asks rendering identical
// strings, so rsl.ParseCached hits on every repeat admission instead of
// parsing a unique string per session.
func reservationRSL(spec sla.Spec, alloc resource.Capacity) string {
	_, hasCPU := spec.Params[resource.CPU]
	_, hasMem := spec.Params[resource.MemoryMB]
	_, hasDisk := spec.Params[resource.DiskGB]
	compute := hasCPU || hasMem || hasDisk
	_, network := spec.Params[resource.BandwidthMbps]
	if !compute && !network {
		return "+" // empty multirequest; specs are validated before this
	}
	multi := compute && network

	// One preallocated buffer, appended in place: this renders on every
	// admission, renegotiation, and compensation, so it must not pay for
	// fmt's reflection or intermediate part strings.
	buf := make([]byte, 0, 160)
	if multi {
		buf = append(buf, '+', '(')
	}
	if compute {
		buf = append(buf, `&(reservation-type="compute")`...)
		if hasCPU {
			buf = append(buf, "(count="...)
			buf = strconv.AppendFloat(buf, alloc.CPU, 'f', -1, 64)
			buf = append(buf, ')')
		}
		if hasMem {
			buf = append(buf, "(memory="...)
			buf = strconv.AppendFloat(buf, alloc.MemoryMB, 'f', -1, 64)
			buf = append(buf, ')')
		}
		if hasDisk {
			buf = append(buf, "(disk="...)
			buf = strconv.AppendFloat(buf, alloc.DiskGB, 'f', -1, 64)
			buf = append(buf, ')')
		}
		if multi {
			buf = append(buf, ')', '(')
		}
	}
	if network {
		buf = append(buf, `&(reservation-type="network")(source-ip=`...)
		buf = strconv.AppendQuote(buf, spec.SourceIP)
		buf = append(buf, ")(dest-ip="...)
		buf = strconv.AppendQuote(buf, spec.DestIP)
		buf = append(buf, ")(bandwidth="...)
		buf = strconv.AppendFloat(buf, alloc.BandwidthMbps, 'f', -1, 64)
		buf = append(buf, ')')
	}
	if multi {
		buf = append(buf, ')')
	}
	return string(buf)
}

func nonEmpty(s, def string) string {
	if s == "" {
		return def
	}
	return s
}

// trimFloat formats a float without trailing zeros for RSL and registry
// filter values.
func trimFloat(f float64) string {
	return strconv.FormatFloat(f, 'f', -1, 64)
}
