package core

// This file is the broker's side of the durability layer: what gets
// journaled, when, and under which locks. The wal package owns framing
// and files; this file owns capture.
//
// Journaling model. Every mutating lifecycle operation ends by
// journaling the *absolute post-state* of the session it touched (full
// SLA document plus the broker-internal fields), together with the
// owning shard's auxiliary allocator state. Capture and append happen
// while holding the session's shard lock, so the per-session record
// order in the log is exactly the order the states became current —
// replay is a last-write-wins sweep with no delta arithmetic. Ledger
// entries are the one delta-shaped record: the pricing ledger's
// observer journals each entry at the end of Record, under the ledger
// lock, so the journal order equals the aggregate-update order and the
// snapshot's LedgerSeq fence (captured under the same lock) cleanly
// splits "in the snapshot" from "replay me".
//
// Lock order. The WAL mutex is a leaf below every broker lock:
// sh.mu → sh.alloc.mu → wal.mu, beMu → wal.mu, pcMu → wal.mu and
// l.mu → wal.mu all occur; wal never calls back out. Snapshots need
// those same locks for capture, so an append never snapshots inline —
// Append sets a due flag that maybeSnapshot consumes with no locks
// held.
//
// Failure semantics. Every append is fsynced before it returns; a
// failed append (injected via the "wal.append"/"wal.sync" faultx sites
// or real) rolls the in-flight record back and seals the log — the
// simulated process died at that commit point. The in-memory broker
// may run on, but the durable state ends at the last acknowledged
// record; the crash-point matrix kills the broker there and recovers.
//
// Promotion offers are intentionally not journaled: they are ephemeral
// price quotes that expire within the confirm window, and a recovered
// broker simply re-issues them from the optimizer.

import (
	"sort"

	"gqosm/internal/pricing"
	"gqosm/internal/sla"
	"gqosm/internal/wal"
)

// DurabilityConfig enables the broker's write-ahead lifecycle log.
type DurabilityConfig struct {
	// Dir is the WAL directory; empty disables durability entirely.
	Dir string
	// SnapshotEvery is the snapshot cadence in journaled records
	// (default wal.DefSnapshotEvery).
	SnapshotEvery int
}

// walOptions renders the WAL options for this broker's config.
func (b *Broker) walOptions() wal.Options {
	return wal.Options{
		Dir:           b.cfg.Durability.Dir,
		SnapshotEvery: b.cfg.Durability.SnapshotEvery,
		Faults:        b.cfg.Faults,
	}
}

// attachDurability arms journaling on an open log: every ledger entry
// and lifecycle operation from here on is journaled.
func (b *Broker) attachDurability(log *wal.Log) {
	b.durable = log
	b.ledger.SetObserver(b.journalLedger)
}

// Durable reports whether the broker journals to a WAL.
func (b *Broker) Durable() bool { return b.durable != nil }

// HasWALState reports whether dir already holds journal state from a
// previous broker — the caller should Recover instead of NewBroker.
func HasWALState(dir string) bool { return wal.HasState(dir) }

// WALStats reports journaled records, fsyncs and snapshots (zeros when
// durability is off).
func (b *Broker) WALStats() (appends, syncs, snapshots int64) {
	if b.durable == nil {
		return 0, 0, 0
	}
	return b.durable.Stats()
}

// Crash simulates the broker process dying: no graceful teardown, no
// final journal record. The log is sealed (everything acknowledged is
// already fsynced), confirmation timers are stopped — a dead process
// fires no timers, and on the shared manual clock they would otherwise
// cancel reservations the recovered broker has adopted — and further
// requests are refused. Substrate state (GARA, pools, registry) is
// untouched: it survives the broker, which is exactly what recovery
// reconciles against.
func (b *Broker) Crash() {
	if !b.closed.CompareAndSwap(false, true) {
		return
	}
	if b.intake != nil {
		// A dead process resolves nothing: queued admissions simply never
		// happened (they were not yet journaled), so their tickets fail.
		b.intake.close(ErrClosed)
	}
	for _, sh := range b.shards {
		sh.mu.Lock()
		for _, s := range sh.sessions {
			if s.confirm != nil {
				s.confirm.Stop()
				s.confirm = nil
			}
		}
		sh.mu.Unlock()
	}
	b.ledger.SetObserver(nil)
	if b.durable != nil {
		b.durable.Seal()
	}
}

// walAppend journals one record, counting it and reporting failures to
// the activity log. A failed append means the durable history ended —
// the log is already sealed by the wal layer; the in-memory broker
// carries on (its state past this point is simply not recoverable).
func (b *Broker) walAppend(rec wal.Record) {
	if _, err := b.durable.Append(rec); err != nil {
		b.met.walFailures.Inc()
		b.logf("wal", "", "append failed, durable history sealed: %v", err)
		return
	}
	b.met.walRecords.Inc()
}

// journal captures and appends the absolute post-state of session id
// while holding its shard lock, so per-session record order equals
// state order. It is called with no broker locks held (typically right
// after persist). Unknown ids — pruned or never admitted — journal
// nothing.
func (b *Broker) journal(op string, id sla.ID) {
	if b.durable == nil {
		return
	}
	sh := b.shardFor(id)
	if sh == nil {
		return
	}
	sh.mu.Lock()
	if s, ok := sh.sessions[id]; ok {
		// Append marshals synchronously, so handing it the live doc
		// pointer under sh.mu is safe and clone-free.
		b.walAppend(wal.Record{
			At:      b.clock.Now(),
			Op:      op,
			Session: sessionRecordLocked(sh, id, s),
			Aux:     auxRecord(sh),
			NextID:  b.nextID.Load(),
		})
	}
	sh.mu.Unlock()
	b.maybeSnapshot()
}

// journalBatch journals the absolute post-state of every session a
// group-commit flush installed on sh, as individual per-session records
// landed through one wal.AppendBatch — one fsync for the batch, but
// each record is framed and CRC'd on its own, so replay and the
// crash-point matrix treat them exactly like serial journal records (a
// crash mid-batch recovers the CRC-clean prefix; the RM reconciliation
// sweep refunds the reservations of the unlogged tail, the same
// guarantee an un-journaled serial proposal has).
func (b *Broker) journalBatch(op string, sh *shard, ids []sla.ID) {
	if b.durable == nil || len(ids) == 0 {
		return
	}
	recs := make([]wal.Record, 0, len(ids))
	sh.mu.Lock()
	for _, id := range ids {
		if s, ok := sh.sessions[id]; ok {
			// AppendBatch marshals synchronously under the shard lock, so
			// the live doc pointers are safe and clone-free, as in journal.
			recs = append(recs, wal.Record{
				At:      b.clock.Now(),
				Op:      op,
				Session: sessionRecordLocked(sh, id, s),
				Aux:     auxRecord(sh),
				NextID:  b.nextID.Load(),
			})
		}
	}
	if len(recs) > 0 {
		if _, err := b.durable.AppendBatch(recs); err != nil {
			b.met.walFailures.Inc()
			b.logf("wal", "", "batch append failed, durable history sealed: %v", err)
		} else {
			b.met.walRecords.Add(int64(len(recs)))
		}
	}
	sh.mu.Unlock()
	b.maybeSnapshot()
}

// journalBELocked journals the full best-effort pin table plus the
// touched shard's auxiliary state. The caller holds b.beMu, which is
// what makes the pin-table image and its order authoritative.
func (b *Broker) journalBELocked(op string, sh *shard) {
	if b.durable == nil {
		return
	}
	rec := wal.Record{At: b.clock.Now(), Op: op, BERoute: b.beRouteLocked(), HasBERoute: true}
	if sh != nil {
		rec.Aux = auxRecord(sh)
	}
	b.walAppend(rec)
}

// beRouteLocked renders beRoute as client → shard index (caller holds
// b.beMu).
func (b *Broker) beRouteLocked() map[string]int {
	m := make(map[string]int, len(b.beRoute))
	for u, sh := range b.beRoute {
		m[u] = sh.index
	}
	return m
}

// journalPendingLocked journals the full parked-cancel table (caller
// holds b.pcMu).
func (b *Broker) journalPendingLocked(op string) {
	if b.durable == nil {
		return
	}
	m := make(map[string]string, len(b.pendingCancels))
	for id, h := range b.pendingCancels {
		m[string(id)] = string(h)
	}
	b.walAppend(wal.Record{At: b.clock.Now(), Op: op, Pending: m, HasPending: true})
}

// journalOffline journals every shard's auxiliary state after a
// capacity-failure notification (one record per shard; no session
// changed, only SetOffline results).
func (b *Broker) journalOffline(op string) {
	if b.durable == nil {
		return
	}
	for _, sh := range b.shards {
		b.walAppend(wal.Record{At: b.clock.Now(), Op: op, Aux: auxRecord(sh)})
	}
	b.maybeSnapshot()
}

// journalShardAux journals one shard's auxiliary allocator state on a
// failure-rollback path. A successful AllocateGuaranteed may preempt
// best-effort grants before the enclosing operation fails and walks the
// guaranteed grant back; the preemptions stand (best-effort capacity
// never grows back on its own), so without this record replay would
// resurrect the pre-failure best-effort table.
func (b *Broker) journalShardAux(op string, sh *shard) {
	if b.durable == nil || sh == nil {
		return
	}
	b.walAppend(wal.Record{At: b.clock.Now(), Op: op, Aux: auxRecord(sh)})
	b.maybeSnapshot()
}

// journalPrune journals session removals so replay does not resurrect
// pruned sessions from their earlier records.
func (b *Broker) journalPrune(ids []sla.ID) {
	if b.durable == nil || len(ids) == 0 {
		return
	}
	pruned := make([]string, 0, len(ids))
	for _, id := range ids {
		pruned = append(pruned, string(id))
	}
	sort.Strings(pruned)
	b.walAppend(wal.Record{At: b.clock.Now(), Op: "prune", Prune: pruned})
	b.maybeSnapshot()
}

// journalLedger is the pricing ledger's observer: it runs at the end of
// Ledger.Record while the ledger lock is held, so the journal order is
// exactly the aggregate-update order (see the LedgerSeq fence in
// snapshotNow).
func (b *Broker) journalLedger(e pricing.Entry) {
	if b.durable == nil {
		return
	}
	b.walAppend(wal.Record{
		At: e.At,
		Op: "ledger",
		Ledger: &wal.LedgerEntry{
			Kind:   int(e.Kind),
			SLA:    string(e.SLA),
			Amount: e.Amount,
			At:     e.At,
			Note:   e.Note,
		},
	})
}

// sessionRecordLocked renders a session's absolute state (caller holds
// the owning shard's lock).
func sessionRecordLocked(sh *shard, id sla.ID, s *session) *wal.SessionRecord {
	return &wal.SessionRecord{
		Shard:      sh.index,
		Doc:        s.doc,
		Handle:     string(s.handle),
		Job:        string(s.job),
		Original:   s.original,
		Degraded:   s.degraded,
		Violations: s.violations,
		ProposedAt: s.proposedAt,
	}
}

// auxRecord renders a shard's auxiliary allocator state. ExportAux
// takes the allocator lock itself; callers may hold sh.mu (the
// established sh.mu → alloc.mu order) or no lock at all.
func auxRecord(sh *shard) *wal.ShardAux {
	offline, be, nextSeq := sh.alloc.ExportAux()
	grants := make([]wal.BEGrant, 0, len(be))
	for _, g := range be {
		grants = append(grants, wal.BEGrant{User: g.User, Granted: g.Granted, Seq: g.Seq})
	}
	return &wal.ShardAux{Shard: sh.index, Offline: offline, BestEffort: grants, NextSeq: nextSeq}
}

// maybeSnapshot lands a snapshot when the cadence flag is due. It must
// be called with no broker locks held — capture takes every shard lock,
// the BE and pending leaf locks, and the ledger lock.
func (b *Broker) maybeSnapshot() {
	if b.durable == nil || !b.durable.SnapshotDue() {
		return
	}
	if err := b.snapshotNow(); err != nil {
		b.logf("wal", "", "snapshot failed: %v", err)
	}
}

// snapshotNow captures a consistent broker image and writes it to the
// WAL. BaseSeq is read before capture: any record journaled before the
// read happened under the same lock its state change did, so the
// capture (a later acquisition of that lock) observes it — records
// ≤ BaseSeq are fully contained in the snapshot, records > BaseSeq
// replay over it idempotently. LedgerSeq is read inside the ledger
// export callback, under the ledger lock, making the entry/fence split
// exact (the double-billing guard).
func (b *Broker) snapshotNow() error {
	if b.durable == nil {
		return nil
	}
	snap := &wal.Snapshot{
		BaseSeq: b.durable.LastSeq(),
		At:      b.clock.Now(),
		NextID:  b.nextID.Load(),
	}
	for _, sh := range b.shards {
		sh.mu.Lock()
		ids := make([]sla.ID, 0, len(sh.sessions))
		for id := range sh.sessions {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		ss := wal.ShardSnap{Index: sh.index}
		for _, id := range ids {
			s := sh.sessions[id]
			rec := sessionRecordLocked(sh, id, s)
			// The snapshot is marshaled after the lock drops; clone the
			// live document so later mutations cannot tear it.
			rec.Doc = s.doc.Clone()
			ss.Sessions = append(ss.Sessions, *rec)
		}
		sh.mu.Unlock()
		// Aux outside sh.mu: ExportAux is internally consistent, and any
		// concurrent change journals its own record past BaseSeq.
		ss.Aux = *auxRecord(sh)
		snap.Shards = append(snap.Shards, ss)
	}
	b.beMu.Lock()
	snap.BERoute = b.beRouteLocked()
	b.beMu.Unlock()
	b.pcMu.Lock()
	snap.Pending = make(map[string]string, len(b.pendingCancels))
	for id, h := range b.pendingCancels {
		snap.Pending[string(id)] = string(h)
	}
	b.pcMu.Unlock()
	b.hoMu.Lock()
	snap.Handoffs = make(map[string]string, len(b.handoffs))
	for id, it := range b.handoffs {
		snap.Handoffs[string(id)] = it.encode()
	}
	b.hoMu.Unlock()
	b.ledger.ExportWith(func(st pricing.State) {
		snap.LedgerSeq = b.durable.LastSeq()
		snap.Ledger = ledgerStateOut(st)
	})
	if err := b.durable.WriteSnapshot(snap); err != nil {
		return err
	}
	b.met.walSnapshots.Inc()
	return nil
}

// ledgerStateOut converts pricing ledger state to its WAL image.
func ledgerStateOut(st pricing.State) wal.LedgerState {
	out := wal.LedgerState{
		Entries: make([]wal.LedgerEntry, 0, len(st.Entries)),
		Retain:  st.Retain,
		Evicted: st.Evicted,
		Net:     st.Net,
		Totals:  make(map[int]float64, len(st.Totals)),
	}
	for _, e := range st.Entries {
		out.Entries = append(out.Entries, wal.LedgerEntry{
			Kind: int(e.Kind), SLA: string(e.SLA), Amount: e.Amount, At: e.At, Note: e.Note,
		})
	}
	for k, v := range st.Totals {
		out.Totals[int(k)] = v
	}
	return out
}

// ledgerStateIn converts a WAL ledger image back to pricing state.
func ledgerStateIn(st wal.LedgerState) pricing.State {
	in := pricing.State{
		Entries: make([]pricing.Entry, 0, len(st.Entries)),
		Retain:  st.Retain,
		Evicted: st.Evicted,
		Net:     st.Net,
		Totals:  make(map[pricing.EntryKind]float64, len(st.Totals)),
	}
	for _, e := range st.Entries {
		in.Entries = append(in.Entries, pricing.Entry{
			Kind: pricing.EntryKind(e.Kind), SLA: sla.ID(e.SLA), Amount: e.Amount, At: e.At, Note: e.Note,
		})
	}
	for k, v := range st.Totals {
		in.Totals[pricing.EntryKind(k)] = v
	}
	return in
}
