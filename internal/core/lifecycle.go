package core

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"gqosm/internal/gara"
	"gqosm/internal/gram"
	"gqosm/internal/pricing"
	"gqosm/internal/resource"
	"gqosm/internal/sla"
)

// Invoke launches the Grid service for an established SLA: the job is
// submitted to GRAM and its process bound to the reservation (§3.1: "when
// a Grid service is launched, its process binds to a previously-made
// reservation"). The session enters the Active phase.
func (b *Broker) Invoke(id sla.ID) (gram.Job, error) {
	defer b.debugCheck("invoke")
	if b.cfg.GRAM == nil {
		return gram.Job{}, fmt.Errorf("core: no GRAM configured")
	}
	sh := b.shardFor(id)
	if sh == nil {
		return gram.Job{}, fmt.Errorf("%w: %s", ErrUnknownSession, id)
	}
	sh.mu.Lock()
	s, ok := sh.sessions[id]
	if !ok {
		sh.mu.Unlock()
		return gram.Job{}, fmt.Errorf("%w: %s", ErrUnknownSession, id)
	}
	if s.doc.State != sla.StateEstablished {
		sh.mu.Unlock()
		return gram.Job{}, fmt.Errorf("%w: %s is %s, want established", ErrBadState, id, s.doc.State)
	}
	service := s.doc.Service
	end := s.doc.End
	handle := s.handle
	sh.mu.Unlock()

	duration := end.Sub(b.clock.Now()).Seconds()
	jobRSL := fmt.Sprintf(`&(executable=%q)(duration=%s)(label=%q)`,
		"/grid/services/"+service, trimFloat(maxFloat(duration, 1)), string(id))
	job, err := b.cfg.GRAM.Submit(jobRSL)
	if err != nil {
		return gram.Job{}, fmt.Errorf("core: invoke %s: %w", id, err)
	}
	// Bind is idempotent on the GARA side, so retrying after a lost
	// reply is safe.
	if err := b.pol.call("gara.bind", func() error {
		return b.cfg.GARA.Bind(handle, bindParamFor(job))
	}); err != nil {
		_ = b.cfg.GRAM.Cancel(job.ID)
		return gram.Job{}, fmt.Errorf("core: bind %s: %w", id, err)
	}

	sh.mu.Lock()
	if err := s.doc.Transition(sla.StateActive); err != nil {
		// A concurrent Terminate/Expire won the race after the job was
		// submitted; don't leave it running against a canceled
		// reservation.
		sh.mu.Unlock()
		_ = b.cfg.GRAM.Cancel(job.ID)
		return gram.Job{}, err
	}
	s.job = job.ID
	b.logLocked("invoke", id, "service %q launched as %s (pid %d), reservation claimed", service, job.ID, job.PID)
	sh.mu.Unlock()
	b.trace(id, sla.StateEstablished, sla.StateActive, resource.Capacity{}, "service invoked")
	b.persist(id)
	return job, nil
}

// Terminate clears a session (Fig. 3's Clearing phase): the reservation is
// canceled, capacity released, and scenario-2 upgrades applied to the
// survivors.
func (b *Broker) Terminate(id sla.ID, reason string) error {
	defer b.debugCheck("terminate")
	if b.handoffBlocked(id) {
		// A teardown racing the migration window could leave the target
		// holding a session the source already billed as terminated;
		// CompleteHandoff owns the teardown for draining sessions.
		return fmt.Errorf("%w: %s", ErrHandoffPending, id)
	}
	sh := b.shardFor(id)
	if sh == nil {
		return fmt.Errorf("%w: %s", ErrUnknownSession, id)
	}
	sh.mu.Lock()
	s, ok := sh.sessions[id]
	if !ok {
		sh.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrUnknownSession, id)
	}
	if s.doc.State.Terminal() {
		sh.mu.Unlock()
		return fmt.Errorf("%w: %s already %s", ErrBadState, id, s.doc.State)
	}
	if s.confirm != nil {
		s.confirm.Stop()
		s.confirm = nil
	}
	job := s.job
	sh.mu.Unlock()

	if job != "" && b.cfg.GRAM != nil {
		if j, err := b.cfg.GRAM.Job(job); err == nil && !j.State.Terminal() {
			_ = b.cfg.GRAM.Cancel(job)
		}
	}
	if err := b.teardown(id, sla.StateTerminated, reason); err != nil {
		return err
	}
	b.met.terminated.Inc()
	// Scenario 2: "a service completes successfully, and its resources
	// are released. Adaptation can be used to increase resource
	// allocation for a selected number of existing services."
	b.afterRelease()
	return nil
}

// terminateForCompensation clears a willing session during scenario-1
// compensation: like Terminate, but without the scenario-2 release hook
// (which would re-absorb the capacity being freed).
func (b *Broker) terminateForCompensation(id sla.ID) error {
	sh := b.shardFor(id)
	if sh == nil {
		return fmt.Errorf("%w: %s", ErrUnknownSession, id)
	}
	sh.mu.Lock()
	s, ok := sh.sessions[id]
	var job gram.JobID
	if ok {
		if s.confirm != nil {
			s.confirm.Stop()
			s.confirm = nil
		}
		job = s.job
	}
	sh.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownSession, id)
	}
	if job != "" && b.cfg.GRAM != nil {
		if j, err := b.cfg.GRAM.Job(job); err == nil && !j.State.Terminal() {
			_ = b.cfg.GRAM.Cancel(job)
		}
	}
	err := b.teardown(id, sla.StateTerminated,
		"terminated to compensate for a new request (scenario 1)")
	if err == nil {
		b.met.terminated.Inc()
	}
	return err
}

// Expire marks a session whose validity window elapsed (resource
// reservation expiration, one of the §3 Clearing triggers).
func (b *Broker) Expire(id sla.ID) error {
	defer b.debugCheck("expire")
	if b.handoffBlocked(id) {
		return fmt.Errorf("%w: %s", ErrHandoffPending, id)
	}
	if err := b.teardown(id, sla.StateExpired, "validity period completed"); err != nil {
		return err
	}
	b.met.expired.Inc()
	b.afterRelease()
	return nil
}

// teardown releases a session's allocator grant and GARA reservation and
// moves it to the terminal state.
func (b *Broker) teardown(id sla.ID, final sla.State, reason string) error {
	return b.teardownIf(id, final, reason, nil)
}

// teardownIf is teardown gated on pred, evaluated atomically with the
// terminal transition: concurrent paths (auto-expiry racing Accept, Reject
// racing Accept) use it so a session observed in one state cannot be torn
// down after another goroutine has already moved it on.
func (b *Broker) teardownIf(id sla.ID, final sla.State, reason string, pred func(*session) bool) error {
	started := time.Now()
	sh := b.shardFor(id)
	if sh == nil {
		return fmt.Errorf("%w: %s", ErrUnknownSession, id)
	}
	sh.mu.Lock()
	s, ok := sh.sessions[id]
	if !ok {
		sh.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrUnknownSession, id)
	}
	if s.doc.State.Terminal() {
		sh.mu.Unlock()
		return fmt.Errorf("%w: %s already %s", ErrBadState, id, s.doc.State)
	}
	if pred != nil && !pred(s) {
		sh.mu.Unlock()
		return fmt.Errorf("%w: %s is %s", ErrBadState, id, s.doc.State)
	}
	prevState := s.doc.State
	released := s.doc.Allocated
	if err := s.doc.Transition(final); err != nil {
		sh.mu.Unlock()
		return err
	}
	if s.confirm != nil {
		s.confirm.Stop()
		s.confirm = nil
	}
	handle := s.handle
	delete(sh.promotions, id)
	b.logLocked("clearing", id, "%s: %s", final, reason)
	// Release the grant while still holding sh.mu: the terminal
	// transition and the release must be atomic, or a concurrent re-grant
	// path (restore, optimizer, promotion) could slip between them and
	// leave a terminal session holding capacity. Lock order sh.mu →
	// sh.alloc.mu is safe — the allocator never calls back into the
	// broker.
	_ = sh.alloc.ReleaseGuaranteed(string(id))
	sh.mu.Unlock()

	if err := b.pol.call("gara.cancel", func() error {
		return b.cfg.GARA.Cancel(handle)
	}); err != nil {
		if errors.Is(err, ErrRMUnavailable) {
			// The RM stayed down through the whole retry budget: park the
			// handle so the reconciliation sweep keeps trying. The session
			// itself is already terminal and its grant released.
			b.parkCancel(id, handle)
		} else {
			b.logf("clearing", id, "reservation cancel: %v", err)
		}
	}
	b.met.teardownSeconds.Observe(time.Since(started).Seconds())
	b.trace(id, prevState, final, released.Scale(-1), reason)
	b.persist(id)
	return nil
}

// allocateLive re-grants allocator capacity for a session only while it is
// still live, atomically with respect to teardown: the liveness check and
// the allocator call happen under the session's shard lock, so a
// concurrent terminal transition (which releases the grant under the same
// lock) can never interleave and leave a terminal session holding
// capacity.
func (b *Broker) allocateLive(id sla.ID, requested, floor resource.Capacity) (GrantResult, error) {
	sh := b.shardFor(id)
	if sh == nil {
		return GrantResult{}, fmt.Errorf("%w: %s", ErrUnknownSession, id)
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	s, ok := sh.sessions[id]
	if !ok || s.doc.State.Terminal() {
		return GrantResult{}, fmt.Errorf("%w: %s", ErrUnknownSession, id)
	}
	return sh.alloc.AllocateGuaranteed(string(id), requested, floor)
}

// afterRelease applies scenario 2 to the released capacity: (a) restore
// previously degraded services; (b) upgrade below-best controlled-load
// services via the optimizer; (c) issue promotion offers to opted-in
// services.
func (b *Broker) afterRelease() {
	// (a) Restore degraded sessions to their pre-degradation quality,
	// oldest SLA first across the whole domain. Shards are visited in
	// index order, one lock at a time; the restore pass itself runs
	// lock-free on the collected IDs.
	var degraded []sla.ID
	for _, sh := range b.shards {
		sh.mu.Lock()
		for id, s := range sh.sessions {
			if s.degraded && !s.doc.State.Terminal() {
				degraded = append(degraded, id)
			}
		}
		sh.mu.Unlock()
	}
	sort.Slice(degraded, func(i, j int) bool { return degraded[i] < degraded[j] })
	for _, id := range degraded {
		_ = b.restore(id)
	}

	// (b) Upgrade below-best services where profitable.
	if out, err := b.RunOptimizer(); err == nil && out.Applied {
		b.logf("adapt", "", "scenario-2 optimizer upgrade: profit %+.2f", out.Gain)
	}

	// (c) Promotion offers for opted-in, below-best sessions.
	b.issuePromotions()
}

// restore returns a degraded session to its original quality when
// capacity allows (scenario 2a and scenario-3 recovery).
func (b *Broker) restore(id sla.ID) error {
	sh := b.shardFor(id)
	if sh == nil {
		return fmt.Errorf("%w: degraded %s", ErrUnknownSession, id)
	}
	sh.mu.Lock()
	s, ok := sh.sessions[id]
	if !ok || !s.degraded {
		sh.mu.Unlock()
		return fmt.Errorf("%w: degraded %s", ErrUnknownSession, id)
	}
	target := s.original
	prevAlloc := s.doc.Allocated
	prevState := s.doc.State
	floor := s.doc.Spec.Floor()
	handle := s.handle
	spec := s.doc.Spec.Clone()
	sh.mu.Unlock()

	grant, err := b.allocateLive(id, target, floor)
	if err != nil || !grant.Shortfall.IsZero() {
		if err == nil {
			// Partial restoration is possible but we keep the grant we
			// got; stay degraded until full restoration.
			_ = b.applyAllocation(id, handle, spec, grant.Granted, true)
		}
		return fmt.Errorf("core: restore %s: insufficient capacity", id)
	}
	if err := b.applyAllocation(id, handle, spec, target, true); err != nil {
		return err
	}
	sh.mu.Lock()
	s.degraded = false
	if s.doc.State == sla.StateDegraded {
		_ = s.doc.Transition(sla.StateActive)
	}
	newState := s.doc.State
	b.logLocked("adapt", id, "restored to %v (scenario 2a)", target)
	sh.mu.Unlock()
	b.met.restored.Inc()
	b.trace(id, prevState, newState, target.Sub(prevAlloc), "restored (scenario 2a)")
	b.persist(id)
	return nil
}

// applyAllocation pushes a changed allocation to GARA and the document.
// With bill set, the price difference between the old and new quality is
// charged (upgrade) or refunded (degradation) — services are "traded
// against cost" (§1.1), so delivered quality and billing move together.
// Promotion acceptance bills separately at the discounted offer price and
// passes bill=false.
func (b *Broker) applyAllocation(id sla.ID, handle gara.Handle, spec sla.Spec, c resource.Capacity, bill bool) error {
	if err := b.pol.call("gara.modify", func() error {
		return b.cfg.GARA.Modify(handle, reservationRSL(spec, c))
	}); err != nil {
		// The caller already moved the allocator to c; with the modify
		// refused, the document (and billing) will keep the old quality,
		// so the allocator must be walked back too or the books skew.
		b.rollbackAllocation(id, c, bill)
		return fmt.Errorf("core: apply allocation %s: %w", id, err)
	}
	var delta float64
	if sh := b.shardFor(id); sh != nil {
		sh.mu.Lock()
		// A session torn down since the grant was issued keeps its final
		// document: no billing, no allocation rewrite.
		if s, ok := sh.sessions[id]; ok && !s.doc.State.Terminal() {
			if bill {
				delta = b.prices.Cost(s.doc.Class, c) - b.prices.Cost(s.doc.Class, s.doc.Allocated)
				s.doc.Price += delta
			}
			s.doc.Allocated = c
		}
		sh.mu.Unlock()
	}
	switch {
	case delta > 0:
		b.ledger.Charge(id, delta, b.clock.Now(), "quality upgrade")
	case delta < 0:
		b.ledger.Record(pricing.Entry{
			Kind: pricing.EntryRefund, SLA: id, Amount: -delta,
			At: b.clock.Now(), Note: "quality degradation refund",
		})
	}
	b.persist(id)
	return nil
}

// rollbackAllocation undoes the caller's allocateLive after a failed
// GARA modify: the allocator holds c while the document kept the
// previous quality. The documented quality is re-granted; if its
// capacity was snapped up in the meantime (the failed change was a
// degradation and another session took the freed headroom) the
// allocator keeps c and the document is moved to match instead, with
// billing following the delivered quality. Either way document and
// allocator agree again; the reservation spec may be stale until the
// next successful modify or teardown, which is logged, not silent.
func (b *Broker) rollbackAllocation(id sla.ID, c resource.Capacity, bill bool) {
	sh := b.shardFor(id)
	if sh == nil {
		return
	}
	sh.mu.Lock()
	s, ok := sh.sessions[id]
	if !ok || s.doc.State.Terminal() {
		sh.mu.Unlock()
		return
	}
	prev := s.doc.Allocated
	sh.mu.Unlock()
	// floor == requested: the re-grant either fully succeeds or leaves
	// the existing grant (c) untouched — never a partial fallback.
	if _, err := b.allocateLive(id, prev, prev); err == nil {
		// Document and allocator agree again, but the failed grant (and
		// this re-grant) may have preempted best-effort users.
		b.journalShardAux("rollback", sh)
		return
	}
	var delta float64
	sh.mu.Lock()
	if s, ok := sh.sessions[id]; ok && !s.doc.State.Terminal() {
		if bill {
			delta = b.prices.Cost(s.doc.Class, c) - b.prices.Cost(s.doc.Class, s.doc.Allocated)
			s.doc.Price += delta
		}
		s.doc.Allocated = c
		b.logLocked("adapt", id, "failed modify: allocator kept %v, reservation spec stale", c)
	}
	sh.mu.Unlock()
	switch {
	case delta > 0:
		b.ledger.Charge(id, delta, b.clock.Now(), "quality upgrade")
	case delta < 0:
		b.ledger.Record(pricing.Entry{
			Kind: pricing.EntryRefund, SLA: id, Amount: -delta,
			At: b.clock.Now(), Note: "quality degradation refund",
		})
	}
	b.persist(id)
}

// issuePromotions creates scenario-2(c) promotion offers for active
// controlled-load sessions that opted in and run below their best quality.
// Each shard's candidates are offered against that shard's own headroom.
func (b *Broker) issuePromotions() {
	type cand struct {
		id   sla.ID
		doc  *sla.Document
		best resource.Capacity
	}
	for _, sh := range b.shards {
		sh.mu.Lock()
		var cands []cand
		for id, s := range sh.sessions {
			if s.doc.State != sla.StateActive && s.doc.State != sla.StateEstablished {
				continue
			}
			if !s.doc.Adapt.PromotionOffers {
				continue
			}
			if _, open := sh.promotions[id]; open {
				continue
			}
			best := s.doc.Spec.Best()
			if best.Sub(s.doc.Allocated).ClampMin(resource.Capacity{}).IsZero() {
				continue
			}
			cands = append(cands, cand{id: id, doc: s.doc.Clone(), best: best})
		}
		sh.mu.Unlock()
		sort.Slice(cands, func(i, j int) bool { return cands[i].id < cands[j].id })

		for _, c := range cands {
			// Offer only what currently fits on the session's shard.
			headroom := sh.alloc.AvailableGuaranteed()
			target := c.doc.Spec.Clamp(c.doc.Allocated.Add(headroom).Min(c.best))
			if target.Sub(c.doc.Allocated).ClampMin(resource.Capacity{}).IsZero() {
				continue
			}
			offer, ok := b.prices.Promotion(c.doc, target, b.clock.Now().Add(b.cfg.ConfirmWindow))
			if !ok {
				continue
			}
			sh.mu.Lock()
			sh.promotions[c.id] = offer
			b.logLocked("promotion", c.id, "offered upgrade %v -> %v at %.2f (list %.2f)",
				offer.From, offer.To, offer.OfferPrice, offer.ListPrice)
			sh.mu.Unlock()
		}
	}
}

// Promotions returns the open promotion offers, ordered by SLA ID.
func (b *Broker) Promotions() []pricing.PromotionOffer {
	var out []pricing.PromotionOffer
	for _, sh := range b.shards {
		sh.mu.Lock()
		for _, o := range sh.promotions {
			out = append(out, o)
		}
		sh.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].SLA < out[j].SLA })
	return out
}

// AcceptPromotion applies an open promotion offer: the session is upgraded
// and the discounted increment charged.
func (b *Broker) AcceptPromotion(id sla.ID) error {
	defer b.debugCheck("promotion")
	sh := b.shardFor(id)
	if sh == nil {
		return fmt.Errorf("%w: no open promotion for %s", ErrUnknownSession, id)
	}
	sh.mu.Lock()
	offer, ok := sh.promotions[id]
	if !ok {
		sh.mu.Unlock()
		return fmt.Errorf("%w: no open promotion for %s", ErrUnknownSession, id)
	}
	if b.clock.Now().After(offer.Expires) {
		delete(sh.promotions, id)
		sh.mu.Unlock()
		return fmt.Errorf("%w: promotion for %s expired", ErrBadState, id)
	}
	s, ok := sh.sessions[id]
	if !ok || s.doc.State.Terminal() {
		delete(sh.promotions, id)
		sh.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrUnknownSession, id)
	}
	floor := s.doc.Spec.Floor()
	handle := s.handle
	spec := s.doc.Spec.Clone()
	delete(sh.promotions, id)
	sh.mu.Unlock()

	grant, err := b.allocateLive(id, offer.To, floor)
	if err != nil {
		return fmt.Errorf("core: promotion %s: %w", id, err)
	}
	if !grant.Shortfall.IsZero() {
		// Capacity changed since the offer; roll back to the previous
		// grant and refuse.
		_, _ = b.allocateLive(id, offer.From, floor)
		b.journalShardAux("rollback", sh)
		return fmt.Errorf("%w: promotion capacity no longer available", ErrBadState)
	}
	if err := b.applyAllocation(id, handle, spec, offer.To, false); err != nil {
		return err
	}
	sh.mu.Lock()
	s.original = offer.To
	s.doc.Price += offer.OfferPrice
	state := s.doc.State
	b.logLocked("promotion", id, "accepted: upgraded to %v for %.2f", offer.To, offer.OfferPrice)
	sh.mu.Unlock()
	b.met.promoted.Inc()
	b.trace(id, state, state, offer.To.Sub(offer.From), "promotion accepted (scenario 2c)")
	b.ledger.Record(pricing.Entry{
		Kind: pricing.EntryPromotion, SLA: id, Amount: offer.OfferPrice,
		At: b.clock.Now(), Note: "promotion accepted",
	})
	b.persist(id)
	return nil
}

// OptimizeOutcome reports a RunOptimizer pass.
type OptimizeOutcome struct {
	// Considered is the number of controlled-load sessions in the
	// problem.
	Considered int
	// Gain is the profit improvement of the best assignment over the
	// current one.
	Gain float64
	// Applied reports whether the reallocation was pushed to the
	// resource managers (Gain ≥ MinOptimizerGain).
	Applied bool
	// Changed counts sessions whose allocation changed.
	Changed int
}

// RunOptimizer executes the §5.3 heuristic over active controlled-load
// sessions: "the optimization heuristic is executed periodically by the
// AQoS broker; if there is a considerable gain in terms of benefits to the
// Grid Service provider, resources allocation is accordingly modified."
// Each shard's sessions form an independent optimization problem over that
// shard's capacity; the outcome aggregates all shards (for the default
// single-shard broker this is exactly the classic whole-domain pass).
func (b *Broker) RunOptimizer() (OptimizeOutcome, error) {
	defer b.debugCheck("optimize")
	b.met.optimizerRuns.Inc()
	var out OptimizeOutcome
	for _, sh := range b.shards {
		shardOut, err := b.optimizeShard(sh)
		if err != nil {
			return out, err
		}
		out.Considered += shardOut.Considered
		out.Gain += shardOut.Gain
		out.Changed += shardOut.Changed
	}
	out.Applied = out.Changed > 0
	if out.Applied {
		b.met.optimizerApplied.Inc()
		b.logf("optimize", "", "reallocated %d/%d controlled-load sessions, profit gain %.2f",
			out.Changed, out.Considered, out.Gain)
	}
	return out, nil
}

// optimizeShard runs one shard's §5.3 problem: its live controlled-load
// sessions compete for what they hold plus the shard's headroom. The gain
// threshold applies per shard — each shard's reallocation must clear
// MinOptimizerGain on its own.
func (b *Broker) optimizeShard(sh *shard) (OptimizeOutcome, error) {
	type entry struct {
		id     sla.ID
		spec   sla.Spec
		alloc  resource.Capacity
		handle gara.Handle
	}
	sh.mu.Lock()
	var entries []entry
	for id, s := range sh.sessions {
		if s.doc.Class != sla.ClassControlledLoad {
			continue
		}
		if s.doc.State != sla.StateActive && s.doc.State != sla.StateEstablished {
			continue
		}
		if s.degraded {
			continue // scenario-3/1 victims are restored explicitly
		}
		entries = append(entries, entry{id: id, spec: s.doc.Spec.Clone(), alloc: s.doc.Allocated, handle: s.handle})
	}
	sh.mu.Unlock()
	sort.Slice(entries, func(i, j int) bool { return entries[i].id < entries[j].id })

	out := OptimizeOutcome{Considered: len(entries)}
	if len(entries) == 0 {
		return out, nil
	}

	// Capacity available to these sessions: what they hold now plus the
	// shard's guaranteed-side headroom.
	capacity := sh.alloc.AvailableGuaranteed()
	currentProfit := 0.0
	problem := OptProblem{}
	for _, e := range entries {
		capacity = capacity.Add(e.alloc)
		rates := b.prices.ClassRates(sla.ClassControlledLoad)
		currentProfit += rates.Cost(e.alloc)
		problem.Services = append(problem.Services, OptService{
			ID: e.id, Spec: e.spec, Rates: rates, RangeSteps: b.cfg.RangeSteps,
		})
	}
	problem.Capacity = capacity

	res, err := b.policy.Optimize(problem)
	if b.shadowPol != nil {
		// The shadow candidate solves a deep clone: a solver that mutated
		// its problem (specs, service list) must not reach the live copies
		// the apply loop below still reads.
		sres, serr := b.shadowPol.Optimize(problem.Clone())
		b.recordShadow("optimize", !sameAssignment(res, err, sres, serr))
	}
	if err != nil {
		return out, err
	}
	out.Gain = res.Profit - currentProfit
	if out.Gain < b.cfg.MinOptimizerGain {
		return out, nil
	}

	// The assignment fits the pool jointly, but it is applied one
	// session at a time: an upgrade applied before the downsizes that
	// fund it transiently over-demands the pool and collapses to a
	// floor grant. Downsizes first keeps every intermediate state
	// within capacity (stable sort preserves the id order within each
	// half, so the pass stays deterministic).
	sort.SliceStable(entries, func(i, j int) bool {
		di := res.Assignment[entries[i].id].FitsIn(entries[i].alloc)
		dj := res.Assignment[entries[j].id].FitsIn(entries[j].alloc)
		return di && !dj
	})
	for _, e := range entries {
		target := res.Assignment[e.id]
		if target.Equal(e.alloc) {
			continue
		}
		grant, err := b.allocateLive(e.id, target, e.spec.Floor())
		if err != nil {
			continue // skip this session; others may still improve
		}
		applied := target
		if !grant.Shortfall.IsZero() {
			// The pool moved between solve and apply (a concurrent
			// admission took the headroom) and only the floor was
			// granted. AllocateGuaranteed has already replaced the
			// session's grant, so the document must follow it — billing
			// tracks delivered quality, exactly as in restore().
			applied = grant.Granted
			b.logf("optimize", e.id, "partial grant %v for target %v, document follows", applied, target)
		}
		if err := b.applyAllocation(e.id, e.handle, e.spec, applied, true); err != nil {
			continue
		}
		sh.mu.Lock()
		if s, ok := sh.sessions[e.id]; ok {
			s.original = applied
		}
		sh.mu.Unlock()
		// applyAllocation journaled via persist, but s.original changed
		// after that; journal the final state.
		b.journal("optimize", e.id)
		if !applied.Equal(e.alloc) {
			out.Changed++
		}
	}
	out.Applied = out.Changed > 0
	return out, nil
}

// persist writes the session's document to the repository and journals
// the session's post-operation state — every mutating lifecycle path
// funnels through here, so the WAL sees every committed state change.
func (b *Broker) persist(id sla.ID) {
	sh := b.shardFor(id)
	if sh == nil {
		return
	}
	sh.mu.Lock()
	s, ok := sh.sessions[id]
	var doc *sla.Document
	if ok {
		doc = s.doc.Clone()
	}
	sh.mu.Unlock()
	if doc == nil {
		return
	}
	if err := b.repo.Put(doc); err != nil {
		b.logf("repo", id, "persist: %v", err)
	}
	b.journal("persist", id)
}

func bindParamFor(job gram.Job) gara.BindParam {
	return gara.BindParam{PID: job.PID}
}

// entryRefund builds a refund ledger entry.
func entryRefund(id sla.ID, amount float64, b *Broker) pricing.Entry {
	return pricing.Entry{
		Kind: pricing.EntryRefund, SLA: id, Amount: amount,
		At: b.clock.Now(), Note: "renegotiation refund",
	}
}

func maxFloat(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
