package core

// This file is the pluggable adaptation-policy layer: the three decision
// families the paper hard-codes — Algorithm-1 partition grants, the §5.3
// optimizer pass, and the scenario-1 degradation-ladder ordering — plus
// intra-domain shard placement, extracted behind one interface so
// candidate heuristics can be swapped in (or consulted in shadow mode,
// see Config.ShadowPolicy) without touching the broker. The registered
// "paper" policy reproduces the historical heuristics bit-for-bit; the
// candidates prove the interface carries weight: "revenue-greedy" admits
// guaranteed demand into half the adaptive reserve, "upgrade-last" orders
// compensation ladders by recovered capacity instead of price.
//
// Safety: a policy proposes, the allocator disposes. Whatever a
// PartitionGrant answers, the allocator clamps the grant to the hard
// ceiling C_G_eff + C_A (the invariant oracle's guaranteed-overcommit
// bound), so a reckless policy can at worst refuse admissible work —
// never over-commit the partition.

import (
	"fmt"
	"sort"
	"sync"

	"gqosm/internal/resource"
	"gqosm/internal/sla"
)

// GrantKind is a partition policy's admission answer.
type GrantKind int

const (
	// GrantRefuse declines the request outright (ErrCannotHonor).
	GrantRefuse GrantKind = iota
	// GrantFloor grants only the SLA floor g(u), reporting the shortfall.
	GrantFloor
	// GrantRequested grants the full requested capacity c(u,t).
	GrantRequested
)

func (k GrantKind) String() string {
	switch k {
	case GrantRequested:
		return "requested"
	case GrantFloor:
		return "floor"
	}
	return "refuse"
}

// PartitionView is the side-effect-free snapshot of one allocator's
// Algorithm-1 state a partition policy decides over. All fields are
// values — a policy cannot reach live allocator state through it.
type PartitionView struct {
	// Plan is the shard's capacity partition.
	Plan CapacityPlan
	// Offline is the currently failed capacity (charged against C_G).
	Offline resource.Capacity
	// Demand is current guaranteed demand Σ c(u,t), excluding any
	// previous grant held by the requester being (re)admitted.
	Demand resource.Capacity
	// EffectiveG is C_G minus failed capacity.
	EffectiveG resource.Capacity
	// Bound is the paper's admission bound min(C_G, C_G_eff + C_A).
	Bound resource.Capacity
}

// LadderTarget is one candidate rung of a scenario-1 compensation ladder:
// a session willing to be degraded (or terminated) and what degrading it
// recovers.
type LadderTarget struct {
	ID sla.ID
	// Price is the session's current revenue.
	Price float64
	// Recovered is the capacity freed by taking this rung.
	Recovered resource.Capacity
}

// PlacementView describes one shard to a placement policy.
type PlacementView struct {
	Index      int
	LoadFactor float64
	// Bound is the shard's admission ceiling; a floor that does not fit
	// it can never be admitted there.
	Bound resource.Capacity
}

// Policy is one coherent set of adaptation heuristics. Implementations
// must be stateless or internally synchronized (one instance serves every
// shard concurrently), and must treat every argument as read-only except
// the ladder slice CompensationOrder sorts in place.
type Policy interface {
	// Name is the registry key ("paper", "revenue-greedy", …).
	Name() string
	// PartitionGrant answers an Algorithm-1 admission: full request,
	// floor only, or refusal. The allocator clamps the answer to the
	// hard ceiling C_G_eff + C_A before applying it.
	PartitionGrant(v PartitionView, requested, floor resource.Capacity) GrantKind
	// Optimize solves a §5.3 reallocation problem.
	Optimize(p OptProblem) (OptResult, error)
	// CompensationOrder sorts a scenario-1 ladder into the order victims
	// are taken (first element degraded/terminated first). The order
	// must be total and deterministic.
	CompensationOrder(ts []LadderTarget)
	// Place ranks the shards a new admission should try, most attractive
	// first, dropping shards whose bound can never fit floor. The broker
	// applies hint-first and all-hopeless fallback structurally around
	// the ranking.
	Place(views []PlacementView, floor resource.Capacity) []int
}

var (
	policyMu  sync.RWMutex
	policyReg = make(map[string]Policy)
)

// RegisterPolicy adds a policy to the registry; registering a name twice
// is an error so two packages cannot silently fight over it.
func RegisterPolicy(p Policy) error {
	if p == nil || p.Name() == "" {
		return fmt.Errorf("core: policy must have a name")
	}
	policyMu.Lock()
	defer policyMu.Unlock()
	if _, dup := policyReg[p.Name()]; dup {
		return fmt.Errorf("core: policy %q already registered", p.Name())
	}
	policyReg[p.Name()] = p
	return nil
}

// LookupPolicy resolves a registered policy by name.
func LookupPolicy(name string) (Policy, bool) {
	policyMu.RLock()
	defer policyMu.RUnlock()
	p, ok := policyReg[name]
	return p, ok
}

// PolicyNames lists the registered policies, sorted.
func PolicyNames() []string {
	policyMu.RLock()
	defer policyMu.RUnlock()
	out := make([]string, 0, len(policyReg))
	for name := range policyReg {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

func init() {
	for _, p := range []Policy{paperPolicy{}, revenueGreedyPolicy{}, upgradeLastPolicy{}} {
		if err := RegisterPolicy(p); err != nil {
			panic(err)
		}
	}
}

// defaultPolicy is the policy every allocator starts with.
var defaultPolicy Policy = paperPolicy{}

// paperPolicy is the paper's own heuristics, verbatim: admission against
// min(C_G, C_G_eff + C_A), Greedy for §5.3, compensation cheapest-first
// by (price, id), placement least-loaded with index tie-break.
type paperPolicy struct{}

func (paperPolicy) Name() string { return "paper" }

func (paperPolicy) PartitionGrant(v PartitionView, requested, floor resource.Capacity) GrantKind {
	switch {
	case v.Demand.Add(requested).FitsIn(v.Bound):
		return GrantRequested
	case v.Demand.Add(floor).FitsIn(v.Bound):
		return GrantFloor
	}
	return GrantRefuse
}

func (paperPolicy) Optimize(p OptProblem) (OptResult, error) { return Greedy(p) }

func (paperPolicy) CompensationOrder(ts []LadderTarget) {
	sort.Slice(ts, func(i, j int) bool {
		if ts[i].Price != ts[j].Price {
			return ts[i].Price < ts[j].Price
		}
		return ts[i].ID < ts[j].ID
	})
}

func (paperPolicy) Place(views []PlacementView, floor resource.Capacity) []int {
	ranked := append([]PlacementView(nil), views...)
	sort.SliceStable(ranked, func(i, j int) bool {
		if ranked[i].LoadFactor != ranked[j].LoadFactor {
			return ranked[i].LoadFactor < ranked[j].LoadFactor
		}
		return ranked[i].Index < ranked[j].Index
	})
	out := make([]int, 0, len(ranked))
	for _, v := range ranked {
		if !floor.FitsIn(v.Bound) {
			continue
		}
		out = append(out, v.Index)
	}
	return out
}

// revenueGreedyPolicy trades failure cushion for admissions: where the
// paper refuses to let NEW agreements consume the adaptive reserve,
// revenue-greedy admits guaranteed demand into half of it — more sessions
// and more revenue in calm weather, less C_A left to absorb failures.
// Always within the allocator's hard ceiling C_G_eff + C_A, so it is
// invariant-clean as an active policy. Everything else is the paper's.
type revenueGreedyPolicy struct{ paperPolicy }

func (revenueGreedyPolicy) Name() string { return "revenue-greedy" }

func (revenueGreedyPolicy) PartitionGrant(v PartitionView, requested, floor resource.Capacity) GrantKind {
	bound := v.EffectiveG.Add(v.Plan.Adaptive.Scale(0.5))
	switch {
	case v.Demand.Add(requested).FitsIn(bound):
		return GrantRequested
	case v.Demand.Add(floor).FitsIn(bound):
		return GrantFloor
	}
	return GrantRefuse
}

// upgradeLastPolicy reorders compensation ladders: take the rungs that
// recover the MOST capacity first, so fewer sessions are degraded per
// compensation — the clients who negotiated the largest upgrades lose
// them last-in-first-out, hence the name. Ties fall back to the paper's
// (price, id) order. Everything else is the paper's.
type upgradeLastPolicy struct{ paperPolicy }

func (upgradeLastPolicy) Name() string { return "upgrade-last" }

func (upgradeLastPolicy) CompensationOrder(ts []LadderTarget) {
	sort.Slice(ts, func(i, j int) bool {
		ri, rj := capacityScalar(ts[i].Recovered), capacityScalar(ts[j].Recovered)
		if ri != rj {
			return ri > rj
		}
		if ts[i].Price != ts[j].Price {
			return ts[i].Price < ts[j].Price
		}
		return ts[i].ID < ts[j].ID
	})
}

// capacityScalar collapses a capacity to one comparable magnitude (the
// sum over dimensions) for ladder ordering.
func capacityScalar(c resource.Capacity) float64 {
	var sum float64
	for _, k := range resource.Kinds {
		sum += c.Get(k)
	}
	return sum
}

// Clone deep-copies the problem so a shadow policy can solve (and even
// mutate) it without reaching the live specs the active pass holds. The
// Services slice and each service's Spec are copied; Rates is a plain
// value.
func (p OptProblem) Clone() OptProblem {
	out := OptProblem{Capacity: p.Capacity}
	if p.Services != nil {
		out.Services = make([]OptService, len(p.Services))
		for i, s := range p.Services {
			s.Spec = s.Spec.Clone()
			out.Services[i] = s
		}
	}
	return out
}

// sameAssignment reports whether two optimizer answers agree: identical
// error disposition and, when both succeeded, identical per-session
// assignments.
func sameAssignment(a OptResult, aerr error, b OptResult, berr error) bool {
	if (aerr != nil) != (berr != nil) {
		return false
	}
	if aerr != nil {
		return true
	}
	if len(a.Assignment) != len(b.Assignment) {
		return false
	}
	for id, c := range a.Assignment {
		if got, ok := b.Assignment[id]; !ok || !got.Equal(c) {
			return false
		}
	}
	return true
}

// sameLadderOrder reports whether two sorted ladders take victims in the
// same sequence.
func sameLadderOrder(a, b []LadderTarget) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].ID != b[i].ID {
			return false
		}
	}
	return true
}

// sameOrder reports whether two placement rankings agree.
func sameOrder(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
