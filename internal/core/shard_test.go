package core

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"gqosm/internal/clockx"
	"gqosm/internal/gara"
	"gqosm/internal/registry"
	"gqosm/internal/resource"
	"gqosm/internal/sla"
)

// shardedBroker builds a CPU-only broker with the given shard count:
// nodes total capacity split 60/20/20 like domainBroker, but with Shards
// (and optionally EventLogCap) set.
func shardedBroker(t *testing.T, shards int, nodes float64, tweak func(*Config)) *Broker {
	t.Helper()
	clock := clockx.NewManual(t0)
	pool := resource.NewPool("sharded", resource.Nodes(nodes))
	g := gara.NewSystem()
	g.RegisterManager(gara.NewComputeManager(pool))
	reg := registry.New(clock)
	if _, err := reg.Register(registry.Service{
		Name:       "solver",
		Provider:   "sharded",
		Properties: []registry.Property{registry.NumProp("cpu-nodes", nodes)},
	}); err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Domain: "sharded",
		Clock:  clock,
		Plan: CapacityPlan{
			Guaranteed: resource.Nodes(nodes * 0.6),
			Adaptive:   resource.Nodes(nodes * 0.2),
			BestEffort: resource.Nodes(nodes * 0.2),
		},
		Registry:      reg,
		GARA:          g,
		Shards:        shards,
		ConfirmWindow: time.Hour,
	}
	if tweak != nil {
		tweak(&cfg)
	}
	b, err := NewBroker(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(b.Close)
	return b
}

func TestCapacityPlanSplitExact(t *testing.T) {
	plan := CapacityPlan{
		Guaranteed: resource.Capacity{CPU: 15, MemoryMB: 6144, DiskGB: 121},
		Adaptive:   resource.Capacity{CPU: 7, MemoryMB: 2048, DiskGB: 41},
		BestEffort: resource.Capacity{CPU: 5, MemoryMB: 2049, DiskGB: 40},
	}
	for _, n := range []int{1, 2, 3, 4, 7} {
		parts := plan.Split(n)
		if len(parts) != n {
			t.Fatalf("Split(%d) returned %d parts", n, len(parts))
		}
		var g, a, be resource.Capacity
		for _, p := range parts {
			g = g.Add(p.Guaranteed)
			a = a.Add(p.Adaptive)
			be = be.Add(p.BestEffort)
		}
		// The shares must sum back to the plan exactly — the last shard
		// takes the remainder, so no capacity is lost to rounding.
		if !g.Equal(plan.Guaranteed) || !a.Equal(plan.Adaptive) || !be.Equal(plan.BestEffort) {
			t.Errorf("Split(%d) sums to G=%v A=%v B=%v, want the original plan", n, g, a, be)
		}
	}
}

func TestShardedBrokerSpreadsLoad(t *testing.T) {
	// 4 shards of 6 guaranteed CPU each; four 4-CPU sessions should land
	// on four distinct shards under least-loaded placement.
	b := shardedBroker(t, 4, 40, nil)
	if b.ShardCount() != 4 {
		t.Fatalf("ShardCount = %d", b.ShardCount())
	}
	seen := map[int]bool{}
	for i := 0; i < 4; i++ {
		offer, err := b.RequestService(Request{
			Service: "solver",
			Client:  fmt.Sprintf("spread-%d", i),
			Class:   sla.ClassGuaranteed,
			Spec:    sla.NewSpec(sla.Exact(resource.CPU, 4)),
			Start:   t0, End: t5,
		})
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		if err := b.Accept(offer.SLA.ID); err != nil {
			t.Fatalf("accept %d: %v", i, err)
		}
		si := b.ShardOf(offer.SLA.ID)
		if si < 0 || si > 3 {
			t.Fatalf("ShardOf = %d", si)
		}
		if seen[si] {
			t.Errorf("request %d landed on already-loaded shard %d: placement not least-loaded", i, si)
		}
		seen[si] = true
	}
	counts := b.ShardSessionCounts()
	for si, n := range counts {
		if n != 1 {
			t.Errorf("shard %d holds %d sessions, want 1 (%v)", si, n, counts)
		}
	}
	// Every session's grant lives on exactly one allocator.
	for _, doc := range b.Sessions(nil) {
		holders := 0
		for _, a := range b.Allocators() {
			if _, held := a.GuaranteedAllocation(string(doc.ID)); held {
				holders++
			}
		}
		if holders != 1 {
			t.Errorf("session %s held by %d allocators", doc.ID, holders)
		}
	}
}

func TestShardHintAndCrossShardFallback(t *testing.T) {
	// 2 shards of 6 guaranteed CPU each. Pin a 5-CPU session to shard 0
	// via the 1-based hint, then pin a second 5-CPU request there too: it
	// cannot fit and must fall back to shard 1.
	b := shardedBroker(t, 2, 20, nil)
	req := func(client string, cpus float64, hint int) (*Offer, error) {
		return b.RequestService(Request{
			Service: "solver",
			Client:  client,
			Class:   sla.ClassGuaranteed,
			Spec:    sla.NewSpec(sla.Exact(resource.CPU, cpus)),
			Start:   t0, End: t5,
			ShardHint: hint,
		})
	}
	first, err := req("pinned", 5, 1)
	if err != nil {
		t.Fatalf("hinted request: %v", err)
	}
	if si := b.ShardOf(first.SLA.ID); si != 0 {
		t.Fatalf("hinted session on shard %d, want 0", si)
	}
	second, err := req("fallback", 5, 1)
	if err != nil {
		t.Fatalf("fallback request: %v", err)
	}
	if si := b.ShardOf(second.SLA.ID); si != 1 {
		t.Errorf("fallback session on shard %d, want 1", si)
	}
	// An out-of-range hint is ignored, not an error.
	third, err := req("bad-hint", 1, 99)
	if err != nil {
		t.Fatalf("out-of-range hint: %v", err)
	}
	if si := b.ShardOf(third.SLA.ID); si < 0 {
		t.Errorf("bad-hint session unrouted")
	}
}

func TestShardedDeclineWrapsCapacityError(t *testing.T) {
	// No shard's bound (6 guaranteed + 2 adaptive CPU) can hold 10 CPU,
	// so the request is hopeless everywhere; the decline still satisfies
	// errors.Is(…, ErrCannotHonor) like the monolithic broker's.
	b := shardedBroker(t, 2, 20, nil)
	_, err := b.RequestService(Request{
		Service: "solver",
		Client:  "too-big",
		Class:   sla.ClassGuaranteed,
		Spec:    sla.NewSpec(sla.Exact(resource.CPU, 10)),
		Start:   t0, End: t5,
	})
	if !errors.Is(err, ErrCannotHonor) {
		t.Fatalf("err = %v, want ErrCannotHonor", err)
	}
}

func TestSingleShardDefault(t *testing.T) {
	b := shardedBroker(t, 0, 20, nil)
	if b.ShardCount() != 1 {
		t.Fatalf("ShardCount = %d, want 1 for Shards=0", b.ShardCount())
	}
	if allocs := b.Allocators(); len(allocs) != 1 || allocs[0] != b.Allocator() {
		t.Fatal("Allocator()/Allocators() disagree for the single-shard broker")
	}
}

func TestEventRingWraparound(t *testing.T) {
	const cap = 16
	b := shardedBroker(t, 1, 20, func(cfg *Config) { cfg.EventLogCap = cap })

	// Each request logs at least one discovery event; push well past the
	// ring capacity.
	for i := 0; i < 3*cap; i++ {
		_, _ = b.RequestService(Request{
			Service: "solver",
			Client:  fmt.Sprintf("ring-%03d", i),
			Class:   sla.ClassGuaranteed,
			Spec:    sla.NewSpec(sla.Exact(resource.CPU, 200)), // always declined
			Start:   t0, End: t5,
		})
	}
	events := b.Events()
	if len(events) != cap {
		t.Fatalf("len(Events()) = %d, want the ring capacity %d", len(events), cap)
	}
	if total := b.EventsTotal(); total <= cap {
		t.Errorf("EventsTotal = %d, want > %d after wraparound", total, cap)
	}
	// The ring is oldest-first and holds only the newest cap events: the
	// earliest surviving client index must exceed the evicted range, the
	// last event must be the most recent, and timestamps must not go
	// backwards.
	if strings.Contains(events[0].Msg, "ring-000") {
		t.Error("oldest event survived wraparound; eviction broken")
	}
	if !strings.Contains(events[len(events)-1].Msg, fmt.Sprintf("ring-%03d", 3*cap-1)) {
		t.Errorf("last event is not the newest: %q", events[len(events)-1].Msg)
	}
	for i := 1; i < len(events); i++ {
		if events[i].At.Before(events[i-1].At) {
			t.Fatalf("events out of order at %d", i)
		}
	}
}
