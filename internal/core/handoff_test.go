package core

// Hand-off and cluster-satellite regression tests: peer dedupe, the
// recovery-gated transient refusal on the fan-out path, and the
// crash-mid-migration interleavings (source killed after the target
// committed; target killed mid-import) recovered from the WAL.

import (
	"errors"
	"strings"
	"testing"
	"time"

	"gqosm/internal/clockx"
	"gqosm/internal/gara"
	"gqosm/internal/registry"
	"gqosm/internal/resource"
	"gqosm/internal/sla"
)

// handoffSide is one durable broker of a two-broker migration pair: its
// own pool, GARA and registry (exactly what a separate aqosd process
// owns) plus the Config kept around so tests can Crash and Recover it.
type handoffSide struct {
	broker *Broker
	cfg    Config
	g      *gara.System
}

func newHandoffSide(t *testing.T, domain string, nodes float64) *handoffSide {
	t.Helper()
	clock := clockx.NewManual(t0)
	pool := resource.NewPool(domain, resource.Nodes(nodes))
	g := gara.NewSystem()
	g.RegisterManager(gara.NewComputeManager(pool))
	reg := registry.New(clock)
	if _, err := reg.Register(registry.Service{
		Name:       "solver",
		Provider:   domain,
		Properties: []registry.Property{registry.NumProp("cpu-nodes", nodes)},
	}); err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Domain: domain,
		Clock:  clock,
		Plan: CapacityPlan{
			Guaranteed: resource.Nodes(nodes * 0.6),
			Adaptive:   resource.Nodes(nodes * 0.2),
			BestEffort: resource.Nodes(nodes * 0.2),
		},
		Registry:      reg,
		GARA:          g,
		ConfirmWindow: time.Hour,
		Durability:    DurabilityConfig{Dir: t.TempDir()},
	}
	b, err := NewBroker(cfg)
	if err != nil {
		t.Fatal(err)
	}
	h := &handoffSide{broker: b, cfg: cfg, g: g}
	t.Cleanup(func() { h.broker.Close() })
	return h
}

// recoverSide crashes the side's broker and rebuilds it from the WAL.
func (h *handoffSide) recoverSide(t *testing.T) *RecoverStats {
	t.Helper()
	h.broker.Crash()
	b, stats, err := Recover(h.cfg)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	h.broker = b
	return stats
}

// establishedSession admits and accepts one n-node guaranteed session.
func establishedSession(t *testing.T, b *Broker, n float64) sla.ID {
	t.Helper()
	offer, err := b.RequestService(nodeRequest("solver", n))
	if err != nil {
		t.Fatalf("RequestService: %v", err)
	}
	if err := b.Accept(offer.SLA.ID); err != nil {
		t.Fatalf("Accept: %v", err)
	}
	return offer.SLA.ID
}

// TestAddPeerDuplicateDomain: registering the same peer domain twice —
// or the home domain itself — is refused, so the fan-out never queries
// one broker twice nor double-retracts a losing offer.
func TestAddPeerDuplicateDomain(t *testing.T) {
	home := domainBroker(t, "domain1", "solver", 20)
	fed := NewFederation(home)

	if err := fed.AddPeer(newFakePeer("domain2", 0, nil, ErrCannotHonor)); err != nil {
		t.Fatalf("first AddPeer: %v", err)
	}
	if err := fed.AddPeer(newFakePeer("domain2", 0, nil, ErrCannotHonor)); !errors.Is(err, ErrDuplicatePeer) {
		t.Fatalf("duplicate domain: err = %v, want ErrDuplicatePeer", err)
	}
	if err := fed.AddPeer(newFakePeer("domain1", 0, nil, ErrCannotHonor)); !errors.Is(err, ErrDuplicatePeer) {
		t.Fatalf("home domain as peer: err = %v, want ErrDuplicatePeer", err)
	}
	if got := fed.Peers(); len(got) != 1 || got[0] != "domain2" {
		t.Fatalf("Peers = %v, want exactly [domain2]", got)
	}
}

// TestFederationRecoveringPeerReroutes: a recovering peer's transient
// refusal must not poison the fan-out — an earlier-registered recovering
// peer is skipped and a later healthy one serves the request.
func TestFederationRecoveringPeerReroutes(t *testing.T) {
	if !retryable(ErrPeerUnavailable) {
		t.Fatal("ErrPeerUnavailable must be retryable, or the front tier treats a recovering broker as dead")
	}

	home := domainBroker(t, "home", "solver", 10)
	healthy := domainBroker(t, "healthy", "solver", 200)
	fed := NewFederation(home)
	fed.AddPeer(newFakePeer("rebooting", 0, nil, ErrPeerUnavailable))
	fed.AddPeer(healthy)

	offer, err := fed.RequestService(nodeRequest("solver", 100)) // over home capacity
	if err != nil {
		t.Fatalf("RequestService: %v", err)
	}
	if offer.Domain != "healthy" || !offer.Forwarded {
		t.Fatalf("offer = %+v, want re-route to the healthy peer", offer)
	}

	// With ONLY recovering peers the aggregate decline names the transient
	// refusal, so a front tier can tell "retry soon" from "nobody ever can".
	lonely := NewFederation(domainBroker(t, "lonely", "solver", 10))
	lonely.AddPeer(newFakePeer("rebooting", 0, nil, ErrPeerUnavailable))
	_, err = lonely.RequestService(nodeRequest("solver", 100))
	if !errors.Is(err, ErrNoDomainCanServe) {
		t.Fatalf("err = %v, want ErrNoDomainCanServe", err)
	}
	if !strings.Contains(err.Error(), peerUnavailableMsg) {
		t.Errorf("aggregate decline does not carry the transient marker: %v", err)
	}
}

// TestFederationRestartDuringFanout: a fan-out that reaches a broker
// mid-WAL-replay gets the recovery-gated ErrPeerUnavailable, and the
// same federation serves the request once recovery lands.
func TestFederationRestartDuringFanout(t *testing.T) {
	home := domainBroker(t, "home", "solver", 10)
	side := newHandoffSide(t, "peerdom", 200)
	side.broker.Crash()

	var midErr error
	recoverTestHook = func(rb *Broker) {
		fed := NewFederation(home)
		fed.AddPeer(rb)
		_, midErr = fed.RequestService(nodeRequest("solver", 100))
	}
	defer func() { recoverTestHook = nil }()

	rb, _, err := Recover(side.cfg)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	t.Cleanup(rb.Close)

	if !errors.Is(midErr, ErrNoDomainCanServe) {
		t.Fatalf("mid-recovery fan-out err = %v, want ErrNoDomainCanServe", midErr)
	}
	if !strings.Contains(midErr.Error(), peerUnavailableMsg) {
		t.Errorf("mid-recovery decline lost the transient marker: %v", midErr)
	}

	fed := NewFederation(home)
	fed.AddPeer(rb)
	offer, err := fed.RequestService(nodeRequest("solver", 100))
	if err != nil {
		t.Fatalf("post-recovery RequestService: %v", err)
	}
	if offer.Domain != "peerdom" || !offer.Forwarded {
		t.Fatalf("offer = %+v, want the recovered peer to serve", offer)
	}
}

// TestHandoffSourceCrashAfterTargetCommit is the satellite-3
// interleaving at the unit level: the source broker dies after the
// target committed the import; recovery replays the outbound intent,
// the reconcile completes it, and exactly one owner remains with no
// leaked reservation or capacity on the source.
func TestHandoffSourceCrashAfterTargetCommit(t *testing.T) {
	src := newHandoffSide(t, "srcdom", 40)
	dst := domainBroker(t, "dstdom", "solver", 40)

	freeBefore := src.broker.Allocator().AvailableGuaranteed()
	id := establishedSession(t, src.broker, 5)

	st, err := src.broker.BeginHandoff(id, "dstdom")
	if err != nil {
		t.Fatalf("BeginHandoff: %v", err)
	}
	if err := dst.ImportSession(st); err != nil {
		t.Fatalf("ImportSession: %v", err)
	}
	if doc, err := dst.Session(id); err != nil || doc.State.Terminal() || doc.Provider != "dstdom" {
		t.Fatalf("target copy = %+v, %v; want a live session re-stamped to dstdom", doc, err)
	}

	// Kill the source AFTER the target committed, before CompleteHandoff.
	src.recoverSide(t)

	if ho := src.broker.HandoffsOut(); ho[id] != "dstdom" {
		t.Fatalf("HandoffsOut = %v, want the out-intent toward dstdom to survive the crash", ho)
	}
	// The draining session still refuses ordinary teardown.
	if err := src.broker.Terminate(id, "client asks"); !errors.Is(err, ErrHandoffPending) {
		t.Fatalf("Terminate during hand-off: err = %v, want ErrHandoffPending", err)
	}

	// The front tier's reconcile sees the target live and completes.
	if err := src.broker.CompleteHandoff(id); err != nil {
		t.Fatalf("CompleteHandoff: %v", err)
	}

	srcDoc, err := src.broker.Session(id)
	if err != nil || !srcDoc.State.Terminal() {
		t.Fatalf("source copy = %+v, %v; want terminal", srcDoc, err)
	}
	dstDoc, err := dst.Session(id)
	if err != nil || dstDoc.State.Terminal() {
		t.Fatalf("target copy = %+v, %v; want the single surviving owner", dstDoc, err)
	}
	if _, ok := src.g.FindByTag(string(id)); ok {
		t.Error("source reservation survived the completed hand-off")
	}
	if got := src.broker.Allocator().AvailableGuaranteed(); !got.Equal(freeBefore) {
		t.Errorf("source guaranteed headroom = %v, want %v back after the drain", got, freeBefore)
	}
	if ho := src.broker.HandoffsOut(); len(ho) != 0 {
		t.Errorf("open intents after completion: %v", ho)
	}
}

// TestHandoffTargetCrashMidImport: the target dies inside ImportSession
// (after journaling the inbound intent, before installing the session).
// Target recovery resolves the dangling intent, the source aborts and
// remains the sole owner, and its lifecycle is unblocked again.
func TestHandoffTargetCrashMidImport(t *testing.T) {
	src := domainBroker(t, "srcdom", "solver", 40)
	dst := newHandoffSide(t, "dstdom", 40)

	id := establishedSession(t, src, 5)
	st, err := src.BeginHandoff(id, "dstdom")
	if err != nil {
		t.Fatalf("BeginHandoff: %v", err)
	}

	importTestHook = func(b *Broker) { b.Crash() }
	defer func() { importTestHook = nil }()
	if err := dst.broker.ImportSession(st); err == nil {
		t.Fatal("ImportSession on a crashing broker succeeded")
	}
	importTestHook = nil

	stats := dst.recoverSide(t)
	if stats.HandoffsResolved != 1 {
		t.Fatalf("HandoffsResolved = %d, want 1", stats.HandoffsResolved)
	}
	if _, err := dst.broker.Session(id); err == nil {
		t.Error("half-imported session resurrected on the target")
	}
	if _, ok := dst.g.FindByTag(string(id)); ok {
		t.Error("half-imported reservation leaked on the target")
	}

	if err := src.AbortHandoff(id); err != nil {
		t.Fatalf("AbortHandoff: %v", err)
	}
	if doc, err := src.Session(id); err != nil || doc.State.Terminal() {
		t.Fatalf("source copy = %+v, %v; want the source to remain owner", doc, err)
	}
	if err := src.Terminate(id, "after abort"); err != nil {
		t.Fatalf("Terminate after abort: %v", err)
	}
}

// TestRecoverReclaimsHalfImportedReservation: the narrow window where
// the import already committed its GARA reservation but not the session.
// The tag carries the SOURCE domain's prefix, so only the inbound-intent
// sweep — not the regular orphan sweep — can know to reclaim it.
func TestRecoverReclaimsHalfImportedReservation(t *testing.T) {
	dst := newHandoffSide(t, "dstdom", 40)
	b := dst.broker

	id := sla.ID("srcdom-sla-0001")
	spec := sla.NewSpec(sla.Exact(resource.CPU, 5))
	alloc := resource.Nodes(5)

	b.hoMu.Lock()
	b.handoffs[id] = handoffIntent{dir: "in", peer: "srcdom"}
	b.journalHandoffsLocked("handoff-import")
	b.hoMu.Unlock()
	if _, err := dst.g.Create(reservationRSL(spec, alloc), t0, t5, string(id)); err != nil {
		t.Fatalf("Create: %v", err)
	}

	stats := dst.recoverSide(t)
	if stats.HandoffsResolved != 1 {
		t.Fatalf("HandoffsResolved = %d, want 1", stats.HandoffsResolved)
	}
	if h, ok := dst.g.FindByTag(string(id)); ok {
		t.Errorf("half-imported reservation %s still live after recovery", h)
	}
	if ho := b.HandoffsOut(); len(ho) != 0 {
		t.Errorf("intents left open: %v", ho)
	}
}
