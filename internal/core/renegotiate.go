package core

import (
	"fmt"
	"time"

	"gqosm/internal/resource"
	"gqosm/internal/sla"
)

// This file implements the QoS Re-negotiation function of the Active phase
// (Fig. 3, and the phase-5 interaction of Fig. 4): a client renegotiates a
// running session's QoS specification. The pricing component "plays a
// major role" (§1.1): the new quality is re-priced and the difference
// charged or refunded. Upward renegotiation may trigger scenario-1
// compensation exactly like a new request.

// RenegotiationResult reports the outcome of a Renegotiate call.
type RenegotiationResult struct {
	SLA sla.ID
	// Old and New are the allocations before and after.
	Old, New resource.Capacity
	// PriceDelta is the charge (positive) or refund (negative) applied.
	PriceDelta float64
	// Compensated reports that scenario-1 adaptation ran to make room.
	Compensated bool
}

// Renegotiate replaces a live session's QoS specification with newSpec,
// reallocating to the best level the new specification and current
// capacity allow (guaranteed class: the exact new values). The session
// keeps its identity, reservation handle and validity window; only
// quality and price change. On failure the previous agreement stands.
func (b *Broker) Renegotiate(id sla.ID, newSpec sla.Spec) (*RenegotiationResult, error) {
	started := time.Now()
	defer func() { b.met.renegSeconds.Observe(time.Since(started).Seconds()) }()
	defer b.debugCheck("renegotiate")
	if err := newSpec.Validate(); err != nil {
		return nil, err
	}
	if len(newSpec.Params) == 0 {
		return nil, fmt.Errorf("core: renegotiation needs QoS parameters")
	}

	sh := b.shardFor(id)
	if sh == nil {
		return nil, fmt.Errorf("%w: %s", ErrUnknownSession, id)
	}
	sh.mu.Lock()
	s, ok := sh.sessions[id]
	if !ok {
		sh.mu.Unlock()
		return nil, fmt.Errorf("%w: %s", ErrUnknownSession, id)
	}
	if s.doc.State.Terminal() || s.doc.State == sla.StateProposed {
		sh.mu.Unlock()
		return nil, fmt.Errorf("%w: %s is %s", ErrBadState, id, s.doc.State)
	}
	class := s.doc.Class
	oldSpec := s.doc.Spec.Clone()
	oldAlloc := s.doc.Allocated
	handle := s.handle
	sh.mu.Unlock()

	// Network endpoints cannot move mid-session (the flow is pinned);
	// inherit them when absent.
	if newSpec.SourceIP == "" {
		newSpec.SourceIP = oldSpec.SourceIP
	}
	if newSpec.DestIP == "" {
		newSpec.DestIP = oldSpec.DestIP
	}

	// Target quality: the best level the new spec allows within current
	// headroom plus what the session already holds.
	target := newSpec.Best()
	if class == sla.ClassControlledLoad {
		room := sh.alloc.AvailableGuaranteed().Add(oldAlloc)
		target = newSpec.Clamp(target.Min(room)).Max(newSpec.Floor())
	}
	floor := newSpec.Floor()

	res := &RenegotiationResult{SLA: id, Old: oldAlloc}
	grant, err := b.allocateLive(id, target, floor)
	if err != nil {
		// Scenario-1 compensation on the session's own shard, then retry
		// once. The session's current hold is being replaced, so only the
		// increment beyond it must be freed.
		needed := floor.Sub(oldAlloc).ClampMin(resource.Capacity{})
		freed, cerr := b.compensate(sh, needed)
		if cerr != nil {
			return nil, fmt.Errorf("core: renegotiate %s: %w (compensation: %v)", id, err, cerr)
		}
		res.Compensated = freed
		grant, err = b.allocateLive(id, target, floor)
		if err != nil {
			// Restore the previous grant before reporting failure.
			_, _ = b.allocateLive(id, oldAlloc, oldSpec.Floor())
			b.journalShardAux("rollback", sh)
			return nil, fmt.Errorf("core: renegotiate %s after compensation: %w", id, err)
		}
	}
	granted := grant.Granted

	// Push the new reservation; on failure roll the allocator back.
	if err := b.pol.call("gara.modify", func() error {
		return b.cfg.GARA.Modify(handle, reservationRSL(newSpec, granted))
	}); err != nil {
		_, _ = b.allocateLive(id, oldAlloc, oldSpec.Floor())
		b.journalShardAux("rollback", sh)
		return nil, fmt.Errorf("core: renegotiate %s: %w", id, err)
	}

	// Commit: new spec, allocation, price; re-derive the alternative
	// QoS fallback from the new floor.
	delta := b.prices.Cost(class, granted) - b.prices.Cost(class, oldAlloc)
	sh.mu.Lock()
	if s.doc.State.Terminal() {
		// Torn down while the new reservation was being pushed; the
		// teardown already released the grant and canceled the handle, so
		// the terminal document must stand untouched.
		sh.mu.Unlock()
		return nil, fmt.Errorf("%w: %s terminated during renegotiation", ErrBadState, id)
	}
	s.doc.Spec = newSpec.Clone()
	s.doc.Allocated = granted
	s.doc.Price += delta
	s.doc.Adapt.AlternativeQoS = floor
	s.original = granted
	s.degraded = false
	if s.doc.State == sla.StateDegraded {
		_ = s.doc.Transition(sla.StateActive)
	}
	b.logLocked("renegotiate", id, "QoS renegotiated %v -> %v (price %+.2f)", oldAlloc, granted, delta)
	sh.mu.Unlock()

	switch {
	case delta > 0:
		b.ledger.Charge(id, delta, b.clock.Now(), "renegotiation upgrade")
	case delta < 0:
		b.ledger.Record(entryRefund(id, -delta, b))
	}
	b.persist(id)

	res.New = granted
	res.PriceDelta = delta
	return res, nil
}
