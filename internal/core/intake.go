package core

// This file is the group-commit admission intake: a bounded per-shard
// queue that coalesces compatible admissions and commits them in one
// allocator pass. The direct path (RequestService) pays per request for
// a lock acquisition, an allocator rebalance + view publication, two
// activity-log fmt.Sprintf renders and a WAL fsync; the intake pays each
// of those once per BATCH and keeps everything else — quality clamping,
// budget checks, ID issue order, GARA reservation, per-session confirm
// timers, per-session WAL records — identical to the direct path, so a
// batch of size 1 produces byte-identical broker state.
//
// Flush discipline. Flushes are driven three ways, all deterministic on
// the manual clock: (1) a queue reaching MaxBatch is flushed inline by
// the submitter that filled it; (2) FlushIntake drains every shard in
// index order — the serial harnesses' quiesce primitive; (3) when
// FlushEvery > 0, an idle timer armed on first enqueue flushes whatever
// accumulated (it re-arms on the next enqueue, never free-runs, so a
// 72-hour drain Advance fires it at most once). Concurrent callers use
// SubmitWait: the first waiter to take the shard's flush mutex becomes
// the group-commit leader and drains everything queued behind it —
// batches form naturally under contention, exactly like a WAL group
// commit.
//
// Failure semantics. Each member of a batch is individually atomic: it
// either installs completely (grant + reservation + session + route +
// journal record) or is rolled back completely and its ticket fails —
// a flushed batch never leaves a partially installed admission (the
// invariant oracle's proposed-no-reservation rule checks this). Members
// the batch allocator pass refuses fall back to the direct per-request
// chain (scenario-1 compensation on the chosen shard, then the
// cross-shard placement loop), so intake admission decisions equal
// direct-path decisions. The batch's WAL append is one fsync over
// per-session records; a crash mid-batch preserves a CRC-clean prefix,
// so recovery semantics are unchanged (see wal.AppendBatch).

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"gqosm/internal/clockx"
	"gqosm/internal/gara"
	"gqosm/internal/obs"
	"gqosm/internal/registry"
	"gqosm/internal/resource"
	"gqosm/internal/sla"
)

// ErrIntakeFull is the intake's backpressure signal: the target shard's
// queue is at capacity. Callers shed load or retry after a flush; the
// JSON transport maps it to 429.
var ErrIntakeFull = errors.New("core: intake queue full")

// errIntakeDisabled is returned by Submit on a broker built without
// Config.Intake.Enabled.
var errIntakeDisabled = errors.New("core: intake not enabled")

// IntakeConfig enables and sizes the group-commit admission intake.
type IntakeConfig struct {
	// Enabled turns the intake on. Off (the zero value) keeps the
	// historical broker: Submit fails and RequestService is the only
	// admission path.
	Enabled bool
	// MaxBatch caps how many queued admissions one flush drains into a
	// single allocator pass (default 32). A queue reaching MaxBatch is
	// flushed inline by the submitter that filled it.
	MaxBatch int
	// Depth bounds each shard's queue; a Submit beyond it is refused
	// with ErrIntakeFull (default 256).
	Depth int
	// FlushEvery, when > 0, bounds how long a queued admission can wait
	// for company: a timer armed on the first enqueue after an idle
	// period flushes whatever accumulated. 0 (the default) relies on
	// size-triggered flushes, SubmitWait leaders and explicit
	// FlushIntake calls only.
	FlushEvery time.Duration
}

func (c IntakeConfig) withDefaults() IntakeConfig {
	if c.MaxBatch <= 0 {
		c.MaxBatch = 32
	}
	if c.Depth <= 0 {
		c.Depth = 256
	}
	return c
}

// IntakeTicket is a submitted admission's future. Exactly one of
// (offer, err) is set when done closes.
type IntakeTicket struct {
	done  chan struct{}
	offer *Offer
	err   error
	shard int
}

// Wait blocks until the admission is flushed (or the broker shuts
// down) and returns its outcome.
func (t *IntakeTicket) Wait() (*Offer, error) {
	<-t.done
	return t.offer, t.err
}

// Resolved reports whether the ticket's outcome is already available.
func (t *IntakeTicket) Resolved() bool {
	select {
	case <-t.done:
		return true
	default:
		return false
	}
}

func (t *IntakeTicket) fulfill(o *Offer) { t.offer = o; close(t.done) }
func (t *IntakeTicket) fail(err error)   { t.err = err; close(t.done) }

// intakeEntry is one queued admission with its submit-time discovery
// result, so the flush never re-runs discovery.
type intakeEntry struct {
	req    Request
	floor  resource.Capacity
	key    registry.Key
	ticket *IntakeTicket
}

// shardQueue is one shard's bounded intake queue.
type shardQueue struct {
	mu    sync.Mutex
	queue []*intakeEntry
}

func (q *shardQueue) depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.queue)
}

// intake is the broker-side machinery; nil on brokers built without it.
type intake struct {
	b   *Broker
	cfg IntakeConfig

	queues []*shardQueue
	// flushMu serializes flushes per shard — the group-commit leader
	// lock. A waiter blocked on it becomes the next leader and drains
	// everything queued meanwhile. It is held across the allocator,
	// GARA and install stages but never while blocking on a queue's mu,
	// so submitters keep enqueueing under a running flush.
	flushMu []sync.Mutex

	// timerMu guards the single idle-flush timer (armed only when
	// FlushEvery > 0 and at most one pending at a time, so a long
	// manual-clock Advance fires it once, not once per period).
	timerMu sync.Mutex
	timer   clockx.Timer

	submitted    *obs.Counter
	rejectedFull *obs.Counter
	flushes      *obs.Counter
	batchSize    *obs.Histogram
}

func newIntake(b *Broker, cfg IntakeConfig, reg *obs.Registry) *intake {
	in := &intake{
		b:       b,
		cfg:     cfg.withDefaults(),
		queues:  make([]*shardQueue, len(b.shards)),
		flushMu: make([]sync.Mutex, len(b.shards)),
		submitted: reg.Counter("gqosm_intake_submitted_total",
			"Admissions accepted into the intake queues"),
		rejectedFull: reg.Counter("gqosm_intake_rejected_total",
			"Admissions refused with ErrIntakeFull (queue backpressure)"),
		flushes: reg.Counter("gqosm_intake_flushes_total",
			"Group-commit flushes executed"),
		batchSize: reg.Histogram("gqosm_intake_batch_size",
			"Admissions per group-commit flush",
			[]float64{1, 2, 4, 8, 16, 32, 64}),
	}
	for i := range in.queues {
		in.queues[i] = &shardQueue{}
		q := in.queues[i]
		reg.GaugeFunc("gqosm_intake_queue_depth",
			"Queued admissions awaiting a group-commit flush, per shard",
			func() float64 { return float64(q.depth()) },
			"shard", shardLabel(i))
	}
	return in
}

// IntakeEnabled reports whether the group-commit intake is on.
func (b *Broker) IntakeEnabled() bool { return b.intake != nil }

// IntakePending counts admissions sitting in the intake queues (0 when
// the intake is disabled). Harness quiesce points require it to be 0 —
// every submitted admission was flushed.
func (b *Broker) IntakePending() int {
	if b.intake == nil {
		return 0
	}
	n := 0
	for _, q := range b.intake.queues {
		n += q.depth()
	}
	return n
}

// Submit enqueues an admission on its placement shard's intake queue
// and returns a ticket for the outcome. Validation, the closed /
// recovering gates and discovery run inline (their failures are
// immediate, exactly as on the direct path); the allocator pass, GARA
// reservation and session install happen at the next flush. A full
// queue refuses with ErrIntakeFull — the backpressure contract.
func (b *Broker) Submit(req Request) (*IntakeTicket, error) {
	in := b.intake
	if in == nil {
		return nil, errIntakeDisabled
	}
	if err := req.Validate(); err != nil {
		b.met.requestErrors.Inc()
		return nil, err
	}
	if b.closed.Load() {
		b.met.requestErrors.Inc()
		return nil, ErrClosed
	}
	if b.recovering.Load() {
		b.met.requestErrors.Inc()
		return nil, ErrPeerUnavailable
	}
	floor := req.Spec.Floor()
	key, err := b.discover(req, floor)
	if err != nil {
		b.met.requestErrors.Inc()
		return nil, err
	}

	// Placement at submit time against the published load views; the
	// flush commits on this shard and the fallback chain still covers
	// capacity refusals, mirroring the direct path's order.
	si := b.placementOrder(req.ShardHint, floor)[0].index
	t := &IntakeTicket{done: make(chan struct{}), shard: si}
	q := in.queues[si]
	q.mu.Lock()
	if len(q.queue) >= in.cfg.Depth {
		q.mu.Unlock()
		in.rejectedFull.Inc()
		b.met.requestErrors.Inc()
		return nil, fmt.Errorf("%w: shard %d at depth %d", ErrIntakeFull, si, in.cfg.Depth)
	}
	q.queue = append(q.queue, &intakeEntry{req: req, floor: floor, key: key, ticket: t})
	depth := len(q.queue)
	q.mu.Unlock()
	in.submitted.Inc()

	if b.closed.Load() {
		// The broker shut down between the gate check and the enqueue;
		// drain so the ticket cannot hang (idempotent with close()).
		in.failQueued(ErrClosed)
		return t, nil
	}
	if depth >= in.cfg.MaxBatch {
		in.flushShard(si)
	} else {
		in.armTimer()
	}
	return t, nil
}

// SubmitWait is the concurrent transport's admission call: enqueue,
// then either ride a running flush or become the group-commit leader.
// Under contention the first waiter into the flush mutex drains every
// entry queued behind the running flush — one allocator pass for all of
// them. With no contention it degenerates to a batch of 1 with direct-
// path outcomes.
func (b *Broker) SubmitWait(req Request) (*Offer, error) {
	t, err := b.Submit(req)
	if err != nil {
		return nil, err
	}
	if !t.Resolved() {
		b.intake.flushShard(t.shard)
	}
	return t.Wait()
}

// FlushIntake drains every shard's intake queue now, in shard index
// order — the deterministic flush the serial harnesses and the idle
// timer use.
func (b *Broker) FlushIntake() {
	if b.intake == nil {
		return
	}
	for si := range b.intake.queues {
		b.intake.flushShard(si)
	}
}

// flushShard takes the shard's leader lock and drains its queue in
// MaxBatch slices until empty.
func (in *intake) flushShard(si int) {
	in.flushMu[si].Lock()
	defer in.flushMu[si].Unlock()
	for {
		q := in.queues[si]
		q.mu.Lock()
		n := len(q.queue)
		if n == 0 {
			q.mu.Unlock()
			return
		}
		if n > in.cfg.MaxBatch {
			n = in.cfg.MaxBatch
		}
		batch := append([]*intakeEntry(nil), q.queue[:n]...)
		rest := copy(q.queue, q.queue[n:])
		for i := rest; i < len(q.queue); i++ {
			q.queue[i] = nil
		}
		q.queue = q.queue[:rest]
		q.mu.Unlock()

		in.flushes.Inc()
		in.batchSize.Observe(float64(len(batch)))
		in.b.admitBatch(in.b.shards[si], batch)
	}
}

// armTimer arms the idle-flush timer if FlushEvery is configured and no
// timer is already pending.
func (in *intake) armTimer() {
	if in.cfg.FlushEvery <= 0 {
		return
	}
	in.timerMu.Lock()
	if in.timer == nil && !in.b.closed.Load() {
		in.timer = in.b.clock.AfterFunc(in.cfg.FlushEvery, in.onTimer)
	}
	in.timerMu.Unlock()
}

func (in *intake) onTimer() {
	in.timerMu.Lock()
	in.timer = nil
	in.timerMu.Unlock()
	in.b.FlushIntake()
	if in.b.IntakePending() > 0 {
		// Entries raced in behind the flush; cover them too.
		in.armTimer()
	}
}

// close stops the idle timer and fails every queued ticket with err.
// Called from Close and Crash after the closed flag flips; a flush
// already in flight rolls its own batch back against the closed gate.
func (in *intake) close(err error) {
	in.timerMu.Lock()
	if in.timer != nil {
		in.timer.Stop()
		in.timer = nil
	}
	in.timerMu.Unlock()
	in.failQueued(err)
}

// failQueued drains every queue, failing the removed tickets with err.
func (in *intake) failQueued(err error) {
	for _, q := range in.queues {
		q.mu.Lock()
		entries := q.queue
		q.queue = nil
		q.mu.Unlock()
		for _, e := range entries {
			e.ticket.fail(err)
			in.b.met.requestErrors.Inc()
		}
	}
}

// admitBatch is the group commit: one allocator critical section, one
// shard-lock install pass, one activity-log line and one WAL fsync for
// the whole batch; per-member quality/budget/ID/reservation semantics
// identical to requestOnShard.
func (b *Broker) admitBatch(sh *shard, entries []*intakeEntry) {
	defer b.debugCheck("intake-flush")
	started := time.Now()
	if b.closed.Load() {
		for _, e := range entries {
			e.ticket.fail(ErrClosed)
			b.met.requestErrors.Inc()
		}
		return
	}

	// Stage 1 — price and identify. Quality is clamped against the
	// shard's published headroom (the same advisory view the direct
	// path's pre-clamp reads; the allocator re-validates under its
	// lock). Budget refusals are final and never burn an SLA ID, so ID
	// sequences match the direct path exactly.
	type member struct {
		e       *intakeEntry
		id      sla.ID
		quality resource.Capacity
		price   float64
		grant   GrantResult
		handle  gara.Handle
		offer   *Offer
	}
	members := make([]member, 0, len(entries))
	asks := make([]GuaranteedAsk, 0, len(entries))
	for _, e := range entries {
		quality := e.req.Spec.Best()
		if e.req.Class == sla.ClassControlledLoad {
			quality = e.req.Spec.Clamp(quality.Min(sh.alloc.AvailableGuaranteed()))
			quality = quality.Max(e.floor)
		}
		price := b.prices.Cost(e.req.Class, quality)
		if e.req.Budget > 0 && price > e.req.Budget {
			if e.req.Class == sla.ClassGuaranteed {
				e.ticket.fail(fmt.Errorf("%w: price %.2f > budget %.2f", ErrOverBudget, price, e.req.Budget))
				b.met.requestErrors.Inc()
				continue
			}
			quality = e.floor
			price = b.prices.Cost(e.req.Class, quality)
			if price > e.req.Budget {
				e.ticket.fail(fmt.Errorf("%w: floor price %.2f > budget %.2f", ErrOverBudget, price, e.req.Budget))
				b.met.requestErrors.Inc()
				continue
			}
		}
		id := b.newSLAID()
		members = append(members, member{e: e, id: id, quality: quality, price: price})
		asks = append(asks, GuaranteedAsk{User: string(id), Requested: quality, Floor: e.floor})
	}
	if len(members) == 0 {
		return
	}

	// Stage 2 — ONE allocator pass for the whole batch. Refused members
	// fall back to the direct per-request chain below, which retries
	// this shard with scenario-1 compensation and then walks the
	// placement order — intake admission decisions equal direct ones.
	grants, errs, _ := sh.alloc.AllocateGuaranteedBatch(asks)
	installees := members[:0]
	var fallbacks []member
	for i := range members {
		if errs[i] != nil {
			if errors.Is(errs[i], ErrCannotHonor) {
				fallbacks = append(fallbacks, members[i])
			} else {
				members[i].e.ticket.fail(errs[i])
				b.met.requestErrors.Inc()
			}
			continue
		}
		members[i].grant = grants[i]
		installees = append(installees, members[i])
	}

	// Stage 3 — per-member GARA reservation (idempotent create, same
	// rollback as the direct path). A reservation failure is final for
	// that member only; the rest of the batch proceeds.
	kept := installees[:0]
	for i := range installees {
		m := &installees[i]
		allocated := m.grant.Granted
		if !m.grant.Shortfall.IsZero() {
			m.quality = allocated
			m.price = b.prices.Cost(m.e.req.Class, m.quality)
		}
		spec := reservationRSL(m.e.req.Spec, allocated)
		handle, err := b.pol.callCreate("gara.create", string(m.id), func() (gara.Handle, error) {
			return b.cfg.GARA.Create(spec, m.e.req.Start, m.e.req.End, string(m.id))
		})
		if err != nil {
			_ = sh.alloc.ReleaseGuaranteed(string(m.id))
			if h, ok := b.cfg.GARA.FindByTag(string(m.id)); ok {
				b.parkCancel(m.id, h)
			}
			b.journalShardAux("rollback", sh)
			m.e.ticket.fail(fmt.Errorf("core: reservation: %w", err))
			b.met.requestErrors.Inc()
			continue
		}
		m.handle = handle
		kept = append(kept, *m)
	}
	installees = kept

	// Stage 4 — install every surviving member under ONE route-lock and
	// ONE shard-lock acquisition, with per-session confirm timers (so
	// Accept / Close / prune semantics stay identical) and one activity-
	// log line for the batch.
	if len(installees) > 0 {
		ids := make([]sla.ID, 0, len(installees))
		b.routeMu.Lock()
		for i := range installees {
			b.route[installees[i].id] = sh
			ids = append(ids, installees[i].id)
		}
		b.routeMu.Unlock()

		now := b.clock.Now()
		expires := now.Add(b.cfg.ConfirmWindow)
		sh.mu.Lock()
		if b.closed.Load() {
			sh.mu.Unlock()
			b.routeMu.Lock()
			for _, id := range ids {
				delete(b.route, id)
			}
			b.routeMu.Unlock()
			for i := range installees {
				m := &installees[i]
				_ = sh.alloc.ReleaseGuaranteed(string(m.id))
				_ = b.cfg.GARA.Cancel(m.handle)
				m.e.ticket.fail(ErrClosed)
				b.met.requestErrors.Inc()
			}
			b.journalShardAux("rollback", sh)
			return
		}
		for i := range installees {
			m := &installees[i]
			id := m.id
			allocated := m.grant.Granted
			doc := &sla.Document{
				ID:       id,
				Service:  m.e.req.Service,
				Client:   m.e.req.Client,
				Provider: b.cfg.Domain,
				Class:    m.e.req.Class,
				Spec:     m.e.req.Spec.Clone(),
				Adapt: sla.AdaptationOptions{
					AcceptDegradation: m.e.req.AcceptDegradation,
					AcceptTermination: m.e.req.AcceptTermination,
					PromotionOffers:   m.e.req.PromotionOptIn,
					AlternativeQoS:    m.e.floor,
					HasAlternative:    m.e.req.AcceptDegradation || m.e.req.Class == sla.ClassControlledLoad,
				},
				Penalty:   m.e.req.Penalty,
				Start:     m.e.req.Start,
				End:       m.e.req.End,
				Price:     m.price,
				Allocated: allocated,
				State:     sla.StateProposed,
			}
			sess := &session{doc: doc, handle: m.handle, original: allocated, proposedAt: now}
			sh.sessions[id] = sess
			sess.confirm = b.clock.AfterFunc(b.cfg.ConfirmWindow, func() {
				b.expireOffer(id)
			})
			m.offer = &Offer{
				SLA:        doc.Clone(),
				Price:      m.price,
				Expires:    expires,
				ServiceKey: m.e.key,
			}
		}
		b.logLocked("offer", "", "group-commit: %d offer(s) proposed in one batch (shard %d)",
			len(installees), sh.index)
		sh.mu.Unlock()

		// Stage 5 — one WAL append (one fsync) carrying a per-session
		// record for every member, so replay is unchanged.
		b.journalBatch("propose", sh, ids)

		// Stage 6 — resolve tickets and record per-admission telemetry.
		for i := range installees {
			m := &installees[i]
			b.met.requests.Inc()
			b.trace(m.id, noState, sla.StateProposed, m.grant.Granted, "offer proposed")
			m.e.ticket.fulfill(m.offer)
		}
	}

	// Fallback chain for members the batch pass could not honor: the
	// full direct placement loop with the already-issued ID, including
	// scenario-1 compensation on this shard.
	for i := range fallbacks {
		m := &fallbacks[i]
		id := m.id
		ensure := func() sla.ID { return id }
		order := b.placementOrder(m.e.req.ShardHint, m.e.floor)
		var offer *Offer
		var lastErr error
		for _, sh2 := range order {
			o, err := b.requestOnShard(sh2, m.e.req, m.e.key, m.e.floor, ensure)
			if err == nil {
				offer = o
				break
			}
			lastErr = err
			if !errors.Is(err, ErrCannotHonor) {
				break
			}
		}
		switch {
		case offer != nil:
			b.met.requests.Inc()
			b.trace(offer.SLA.ID, noState, sla.StateProposed, offer.SLA.Allocated, "offer proposed")
			m.e.ticket.fulfill(offer)
		case len(b.shards) > 1 && errors.Is(lastErr, ErrCannotHonor):
			m.e.ticket.fail(fmt.Errorf("core: %d shard(s) tried, none can honor: %w", len(order), lastErr))
			b.met.requestErrors.Inc()
		default:
			m.e.ticket.fail(lastErr)
			b.met.requestErrors.Inc()
		}
	}

	// Admission latency parity: the direct path observes one wall-clock
	// sample per request; the batch observes the amortized per-member
	// share, so histogram quantiles report what each admission cost.
	per := time.Since(started) / time.Duration(len(entries))
	for range entries {
		b.met.admitSeconds.Observe(per.Seconds())
	}
}
