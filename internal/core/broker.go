package core

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"gqosm/internal/clockx"
	"gqosm/internal/gara"
	"gqosm/internal/gram"
	"gqosm/internal/mds"
	"gqosm/internal/nrm"
	"gqosm/internal/obs"
	"gqosm/internal/pricing"
	"gqosm/internal/registry"
	"gqosm/internal/resource"
	"gqosm/internal/sla"
)

// Broker errors.
var (
	// ErrNoService is returned when discovery finds no matching service.
	ErrNoService = errors.New("core: no service matches the request")
	// ErrOverBudget is returned when even the floor quality exceeds the
	// client's budget.
	ErrOverBudget = errors.New("core: request exceeds client budget")
	// ErrUnknownSession is returned for operations on unknown SLA IDs.
	ErrUnknownSession = errors.New("core: unknown session")
	// ErrBadState is returned when an operation does not apply to the
	// session's lifecycle state.
	ErrBadState = errors.New("core: operation invalid in current session state")
	// ErrClosed is returned after the broker shuts down.
	ErrClosed = errors.New("core: broker closed")
)

// Finder is the discovery dependency (satisfied by *registry.Registry and
// *registry.Client).
type Finder interface {
	Find(q registry.Query) ([]*registry.Service, error)
}

// Config assembles a Broker.
type Config struct {
	// Domain names the administrative domain the broker serves.
	Domain string
	// Clock drives timeouts and timestamps; defaults to the real clock.
	Clock clockx.Clock
	// Plan is the Algorithm-1 capacity partition (required).
	Plan CapacityPlan
	// Registry performs service discovery; nil skips discovery (the
	// request's Service name is taken at face value).
	Registry Finder
	// GARA performs resource reservations (required).
	GARA *gara.System
	// GRAM runs services; nil disables Invoke.
	GRAM *gram.Manager
	// NRM provides network measurements and degradation notifications;
	// optional.
	NRM *nrm.Manager
	// MDS provides CPU status for conformance tests; optional.
	MDS *mds.Directory
	// RM is the resource-manager-level adaptation hook tried before any
	// AQoS-level adaptation on degradation (§3.2); optional.
	RM RMAdapter
	// Repo stores established SLAs; defaults to an in-memory repository.
	Repo sla.Repository
	// Prices is the cost model; defaults to
	// pricing.NewModel(pricing.DefaultRates).
	Prices *pricing.Model
	// Ledger records accounting; defaults to a fresh ledger.
	Ledger *pricing.Ledger
	// ConfirmWindow is how long a proposed SLA's temporary reservation
	// is held before automatic cancellation (§3.1); default 2 minutes.
	ConfirmWindow time.Duration
	// MinOptimizerGain is the "considerable gain" threshold: the
	// optimizer's reallocation is applied only when it improves profit
	// by at least this amount (default 1.0).
	MinOptimizerGain float64
	// RangeSteps discretizes controlled-load ranges for the optimizer
	// (default 4).
	RangeSteps int
	// Obs receives the broker's metrics and lifecycle traces. Nil
	// creates a private registry, so instrumentation is always live and
	// reachable through Broker.Obs().
	Obs *obs.Registry
}

// Event is one entry of the broker activity log (the Fig. 6 console).
type Event struct {
	At   time.Time
	Kind string
	SLA  sla.ID
	Msg  string
}

// String renders the event as a log line.
func (e Event) String() string {
	if e.SLA != "" {
		return fmt.Sprintf("%s [%s] (%s) %s", e.At.Format("15:04:05"), e.Kind, e.SLA, e.Msg)
	}
	return fmt.Sprintf("%s [%s] %s", e.At.Format("15:04:05"), e.Kind, e.Msg)
}

// session is the broker's live state for one SLA.
type session struct {
	doc     *sla.Document
	handle  gara.Handle
	confirm clockx.Timer // pending auto-cancel while proposed
	job     gram.JobID
	// original is the allocation before any degradation, for scenario-3
	// restoration and scenario-2(a) upgrades.
	original resource.Capacity
	// degraded marks sessions running below their negotiated quality.
	degraded bool
	// violations counts detected SLA violations.
	violations int
}

// Broker is the AQoS broker: "the main focus of the system … required to
// interact with clients, RMs, NRMs and neighboring AQoSs. The AQoS also
// negotiates SLAs with clients and communicates parameters associated with
// an SLA to the corresponding resource manager. The AQoS is responsible
// for ensuring SLA conformance to allocated resources, and provides
// support for parameter adaptation when a SLA violation is detected"
// (§2.1). All methods are safe for concurrent use.
//
// Lock order: b.mu → alloc.mu → (clock, ledger, pool, NRM). b.mu is the
// session-table lock; the allocator, the activity log (evMu) and the SLA
// counter (nextID) each have their own synchronization so hot paths touch
// b.mu only for session-state transitions. Components the broker calls
// while holding b.mu (allocator, clock timer scheduling) never call back
// into the broker; components that do call back (NRM degradation
// callbacks, clock timer callbacks) always fire with no broker lock held.
type Broker struct {
	cfg    Config
	alloc  *Allocator
	clock  clockx.Clock
	prices *pricing.Model
	ledger *pricing.Ledger
	repo   sla.Repository
	obs    *obs.Registry
	met    brokerMetrics
	nextID atomic.Int64

	mu       sync.Mutex
	closed   bool
	sessions map[sla.ID]*session
	// promotions holds open scenario-2(c) offers by SLA.
	promotions map[sla.ID]pricing.PromotionOffer

	// evMu guards the activity log. It is a leaf lock: safe to take with
	// or without b.mu held, never held while acquiring another lock.
	evMu   sync.Mutex
	events []Event

	// debugMu guards debugHook, the optional post-operation invariant
	// check installed by SetDebugHook.
	debugMu   sync.Mutex
	debugHook func(*Broker) error
}

// NewBroker assembles a broker from the config.
func NewBroker(cfg Config) (*Broker, error) {
	if cfg.GARA == nil {
		return nil, errors.New("core: Config.GARA is required")
	}
	alloc, err := NewAllocator(cfg.Plan)
	if err != nil {
		return nil, err
	}
	if cfg.Clock == nil {
		cfg.Clock = clockx.Real()
	}
	if cfg.Repo == nil {
		cfg.Repo = sla.NewMemoryRepository()
	}
	if cfg.Prices == nil {
		cfg.Prices = pricing.NewModel(pricing.DefaultRates)
	}
	if cfg.Ledger == nil {
		cfg.Ledger = pricing.NewLedger()
	}
	if cfg.ConfirmWindow <= 0 {
		cfg.ConfirmWindow = 2 * time.Minute
	}
	if cfg.MinOptimizerGain <= 0 {
		cfg.MinOptimizerGain = 1.0
	}
	if cfg.RangeSteps <= 0 {
		cfg.RangeSteps = 4
	}
	if cfg.Obs == nil {
		cfg.Obs = obs.NewRegistry()
	}
	b := &Broker{
		cfg:        cfg,
		alloc:      alloc,
		clock:      cfg.Clock,
		prices:     cfg.Prices,
		ledger:     cfg.Ledger,
		repo:       cfg.Repo,
		sessions:   make(map[sla.ID]*session),
		promotions: make(map[sla.ID]pricing.PromotionOffer),
		obs:        cfg.Obs,
	}
	b.met = newBrokerMetrics(b.obs)
	b.registerGauges(b.obs)
	if cfg.NRM != nil {
		cfg.NRM.Subscribe(b.onNetworkDegradation)
	}
	return b, nil
}

// Close cancels every pending confirmation timer and refuses further
// requests. Established sessions and their reservations are left intact
// (the broker does not own the resource managers' lifecycles).
func (b *Broker) Close() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	b.closed = true
	for _, s := range b.sessions {
		if s.confirm != nil {
			s.confirm.Stop()
			s.confirm = nil
		}
	}
}

// Allocator exposes the Algorithm-1 engine (read-mostly: experiments
// snapshot pool usage through it).
func (b *Broker) Allocator() *Allocator { return b.alloc }

// Ledger exposes the accounting ledger.
func (b *Broker) Ledger() *pricing.Ledger { return b.ledger }

// Repo exposes the SLA repository.
func (b *Broker) Repo() sla.Repository { return b.repo }

// Events returns a copy of the activity log.
func (b *Broker) Events() []Event {
	b.evMu.Lock()
	defer b.evMu.Unlock()
	return append([]Event(nil), b.events...)
}

// SetDebugHook installs fn to run after every mutating broker operation
// (nil removes it). It is meant for invariant checking in tests and
// simulations: fn receives the broker with no locks held and any error it
// returns is recorded as an "invariant" event. The cross-component
// invariants fn typically checks (session ↔ allocator consistency) only
// hold when no other operation is in flight, so the hook is reliable only
// under serial use; concurrent harnesses should check at quiesce points
// instead.
func (b *Broker) SetDebugHook(fn func(*Broker) error) {
	b.debugMu.Lock()
	b.debugHook = fn
	b.debugMu.Unlock()
}

// debugCheck runs the debug hook, if any, after operation op.
func (b *Broker) debugCheck(op string) {
	b.debugMu.Lock()
	fn := b.debugHook
	b.debugMu.Unlock()
	if fn == nil {
		return
	}
	if err := fn(b); err != nil {
		b.logf("invariant", "", "after %s: %v", op, err)
	}
}

// DebugViolations returns the "invariant" events recorded by the debug
// hook.
func (b *Broker) DebugViolations() []Event {
	var out []Event
	for _, e := range b.Events() {
		if e.Kind == "invariant" {
			out = append(out, e)
		}
	}
	return out
}

// Session returns a copy of the SLA document for the given session.
func (b *Broker) Session(id sla.ID) (*sla.Document, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	s, ok := b.sessions[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownSession, id)
	}
	return s.doc.Clone(), nil
}

// Sessions returns copies of all session documents matching the filter
// (nil matches all), ordered by ID.
func (b *Broker) Sessions(filter func(*sla.Document) bool) []*sla.Document {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]*sla.Document, 0, len(b.sessions))
	for _, s := range b.sessions {
		if filter == nil || filter(s.doc) {
			out = append(out, s.doc.Clone())
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// logf appends to the activity log. The log has its own leaf mutex, so
// this is safe with or without b.mu held.
func (b *Broker) logf(kind string, id sla.ID, format string, args ...any) {
	e := Event{At: b.clock.Now(), Kind: kind, SLA: id, Msg: fmt.Sprintf(format, args...)}
	b.evMu.Lock()
	b.events = append(b.events, e)
	b.evMu.Unlock()
}

// logLocked appends to the activity log from inside a b.mu critical
// section (same leaf lock as logf; the name records the calling context).
func (b *Broker) logLocked(kind string, id sla.ID, format string, args ...any) {
	b.logf(kind, id, format, args...)
}
