package core

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"gqosm/internal/clockx"
	"gqosm/internal/faultx"
	"gqosm/internal/gara"
	"gqosm/internal/gram"
	"gqosm/internal/mds"
	"gqosm/internal/nrm"
	"gqosm/internal/obs"
	"gqosm/internal/pricing"
	"gqosm/internal/registry"
	"gqosm/internal/resource"
	"gqosm/internal/sla"
	"gqosm/internal/wal"
)

// Broker errors.
var (
	// ErrNoService is returned when discovery finds no matching service.
	ErrNoService = errors.New("core: no service matches the request")
	// ErrOverBudget is returned when even the floor quality exceeds the
	// client's budget.
	ErrOverBudget = errors.New("core: request exceeds client budget")
	// ErrUnknownSession is returned for operations on unknown SLA IDs.
	ErrUnknownSession = errors.New("core: unknown session")
	// ErrBadState is returned when an operation does not apply to the
	// session's lifecycle state.
	ErrBadState = errors.New("core: operation invalid in current session state")
	// ErrClosed is returned after the broker shuts down.
	ErrClosed = errors.New("core: broker closed")
)

// Finder is the discovery dependency (satisfied by *registry.Registry and
// *registry.Client).
type Finder interface {
	Find(q registry.Query) ([]*registry.Service, error)
}

// DefEventLogCap bounds the broker activity log when Config.EventLogCap
// is unset: enough to hold the recent history of a busy domain while
// keeping the ring's footprint fixed.
const DefEventLogCap = 8192

// Config assembles a Broker.
type Config struct {
	// Domain names the administrative domain the broker serves.
	Domain string
	// Clock drives timeouts and timestamps; defaults to the real clock.
	Clock clockx.Clock
	// Plan is the Algorithm-1 capacity partition (required).
	Plan CapacityPlan
	// Shards partitions the domain into that many independent
	// plan/allocator/session shards (see shard.go); 0 or 1 keeps the
	// classic single-shard broker. The plan is split evenly across
	// shards.
	Shards int
	// Registry performs service discovery; nil skips discovery (the
	// request's Service name is taken at face value).
	Registry Finder
	// DisableCaches turns the hot-path discovery cache off, restoring a
	// registry Find on every admission. The cache only engages when
	// Registry implements Generation() uint64 (the in-process registry
	// does; the SOAP client does not), so this is a diagnostic/benchmark
	// switch, not a correctness one.
	DisableCaches bool
	// GARA performs resource reservations (required).
	GARA *gara.System
	// GRAM runs services; nil disables Invoke.
	GRAM *gram.Manager
	// NRM provides network measurements and degradation notifications;
	// optional.
	NRM *nrm.Manager
	// MDS provides CPU status for conformance tests; optional.
	MDS *mds.Directory
	// RM is the resource-manager-level adaptation hook tried before any
	// AQoS-level adaptation on degradation (§3.2); optional.
	RM RMAdapter
	// Repo stores established SLAs; defaults to an in-memory repository.
	Repo sla.Repository
	// Prices is the cost model; defaults to
	// pricing.NewModel(pricing.DefaultRates).
	Prices *pricing.Model
	// Ledger records accounting; defaults to a fresh ledger.
	Ledger *pricing.Ledger
	// ConfirmWindow is how long a proposed SLA's temporary reservation
	// is held before automatic cancellation (§3.1); default 2 minutes.
	ConfirmWindow time.Duration
	// MinOptimizerGain is the "considerable gain" threshold: the
	// optimizer's reallocation is applied only when it improves profit
	// by at least this amount (default 1.0).
	MinOptimizerGain float64
	// RangeSteps discretizes controlled-load ranges for the optimizer
	// (default 4).
	RangeSteps int
	// EventLogCap bounds the activity log ring (default DefEventLogCap).
	// When the ring is full the oldest events are evicted;
	// Broker.EventsTotal reports how many were ever logged.
	EventLogCap int
	// Obs receives the broker's metrics and lifecycle traces. Nil
	// creates a private registry, so instrumentation is always live and
	// reachable through Broker.Obs().
	Obs *obs.Registry
	// Faults injects failures at the broker's RM-facing call sites
	// ("gara.create", "gara.modify", "gara.cancel", "gara.bind",
	// "rm.rectify", "peer.request"); nil injects nothing.
	Faults *faultx.Injector
	// RMPolicy bounds RM-facing calls (retries, per-attempt timeout,
	// backoff). The zero value is a single attempt with no deadline —
	// the historical direct-call behavior.
	RMPolicy RetryPolicy
	// Durability enables the write-ahead lifecycle log (see durable.go).
	// The zero value keeps the historical in-memory-only broker.
	Durability DurabilityConfig
	// Intake enables the batched group-commit admission pipeline (see
	// intake.go). The zero value keeps RequestService as the only
	// admission path.
	Intake IntakeConfig
	// Policy names the registered adaptation policy (see adaptpolicy.go)
	// driving partition grants, optimizer passes, compensation ladders
	// and shard placement. Empty selects "paper", the heuristics from
	// the source paper.
	Policy string
	// ShadowPolicy, when set, names a registered candidate policy
	// consulted at every decision point against the same side-effect-free
	// view the active policy sees. Divergence is counted in
	// gqosm_shadow_divergence_total{family}; live decisions are never
	// affected.
	ShadowPolicy string
}

// Event is one entry of the broker activity log (the Fig. 6 console).
type Event struct {
	At   time.Time
	Kind string
	SLA  sla.ID
	Msg  string
}

// String renders the event as a log line.
func (e Event) String() string {
	if e.SLA != "" {
		return fmt.Sprintf("%s [%s] (%s) %s", e.At.Format("15:04:05"), e.Kind, e.SLA, e.Msg)
	}
	return fmt.Sprintf("%s [%s] %s", e.At.Format("15:04:05"), e.Kind, e.Msg)
}

// session is the broker's live state for one SLA.
type session struct {
	doc     *sla.Document
	handle  gara.Handle
	confirm clockx.Timer // pending auto-cancel while proposed
	job     gram.JobID
	// original is the allocation before any degradation, for scenario-3
	// restoration and scenario-2(a) upgrades.
	original resource.Capacity
	// degraded marks sessions running below their negotiated quality.
	degraded bool
	// violations counts detected SLA violations.
	violations int
	// proposedAt is when the offer was made; the lifecycle oracle's
	// stale-proposal rule checks it against the confirm window.
	proposedAt time.Time
}

// Broker is the AQoS broker: "the main focus of the system … required to
// interact with clients, RMs, NRMs and neighboring AQoSs. The AQoS also
// negotiates SLAs with clients and communicates parameters associated with
// an SLA to the corresponding resource manager. The AQoS is responsible
// for ensuring SLA conformance to allocated resources, and provides
// support for parameter adaptation when a SLA violation is detected"
// (§2.1). All methods are safe for concurrent use.
//
// The broker is a coordinator over one or more shards (see shard.go).
// Per-session operations route through the shard that admitted the SLA
// (sh.mu → sh.alloc.mu → leaf locks); the coordinator itself owns only
// the global SLA counter (nextID), the routing table (routeMu), the
// best-effort pin table (beMu), the activity log ring (evMu) and the
// debug hook (debugMu) — all leaf locks, each with its own
// synchronization, so hot paths on different shards never contend.
// Components the broker calls while holding a shard lock (allocator,
// clock timer scheduling) never call back into the broker; components
// that do call back (NRM degradation callbacks, clock timer callbacks)
// always fire with no broker lock held.
type Broker struct {
	cfg    Config
	clock  clockx.Clock
	prices *pricing.Model
	ledger *pricing.Ledger
	repo   sla.Repository
	obs    *obs.Registry
	met    brokerMetrics
	nextID atomic.Int64
	closed atomic.Bool

	// shards are the domain's Algorithm-1 partitions, indexed by shard.
	shards []*shard

	// routeMu guards route: SLA ID → admitting shard. Routes are
	// installed at admission and never removed (terminal sessions stay
	// queryable), so lookups are read-mostly.
	routeMu sync.RWMutex
	route   map[sla.ID]*shard

	// beMu guards beRoute: best-effort client → shard holding its
	// allocations. A client's best-effort capacity is pinned to one
	// shard so repeated grants and the final release balance.
	beMu    sync.Mutex
	beRoute map[string]*shard

	// evMu guards the activity log ring. It is a leaf lock: safe to take
	// with or without a shard lock held, never held while acquiring
	// another lock.
	evMu    sync.Mutex
	evBuf   []Event
	evNext  int   // index the next event is written to
	evTotal int64 // events ever logged, including evicted ones
	// evSnap caches the flattened, oldest-first snapshot Events() built
	// last time, valid while evTotal == evSnapTotal. It is immutable once
	// built — logf never writes into it, only into evBuf — so Events()
	// can hand it out shared instead of copying the whole ring on every
	// call (the invariant oracle reads it after every mutating op).
	evSnap      []Event
	evSnapTotal int64

	// debugMu guards debugHook, the optional post-operation invariant
	// check installed by SetDebugHook.
	debugMu   sync.Mutex
	debugHook func(*Broker) error

	// pol applies Config.RMPolicy (and fault injection) to RM-facing
	// calls; see policy.go.
	pol *policyRunner

	// pcMu guards pendingCancels: reservations whose cancel exhausted
	// its retry budget, kept for ReconcileReservations. A leaf lock.
	pcMu           sync.Mutex
	pendingCancels map[sla.ID]gara.Handle

	// hoMu guards handoffs: the journaled session hand-off intent table
	// (see handoff.go). A leaf lock, safe under a shard lock.
	hoMu     sync.Mutex
	handoffs map[sla.ID]handoffIntent

	// dcache is the generation-stamped discovery cache (see
	// discovery_cache.go); nil when discovery is uncacheable (no
	// registry, a registry without a generation counter, or
	// Config.DisableCaches).
	dcache *discoveryCache

	// durable is the write-ahead lifecycle log; nil keeps every journal
	// site a no-op (the historical in-memory broker). See durable.go.
	durable *wal.Log

	// intake is the batched group-commit admission pipeline; nil on
	// brokers built without Config.Intake.Enabled. See intake.go.
	intake *intake

	// recovering is true from the start of Recover until its RM
	// reconciliation sweep has finished. It gates the public
	// ReconcileReservations so a monitor that re-arms early cannot race
	// the recovery sweep (see recover.go).
	recovering atomic.Bool

	// policy is the active adaptation policy (never nil); shadowPol is
	// the shadow candidate, nil unless Config.ShadowPolicy named one.
	// Both are resolved once in newBroker and immutable afterwards.
	policy    Policy
	shadowPol Policy

	// shadowEvals / shadowDiv count shadow consultations and divergences
	// by decision family; registered only when a shadow policy is
	// configured so brokers without one expose exactly the historical
	// metric set.
	shadowEvals *obs.Counter
	shadowDiv   map[string]*obs.Counter
}

// ShadowFamilies are the instrumented decision families, the label values
// of gqosm_shadow_divergence_total.
var ShadowFamilies = []string{"ladder", "optimize", "partition", "placement"}

// Help strings for the shadow counters, shared with ShadowCounts so a
// post-run reader resolves the identical metric.
const (
	shadowEvalsHelp = "Shadow policy consultations at live decision points"
	shadowDivHelp   = "Shadow decisions diverging from the active policy, by decision family"
)

// ShadowCounts reads the shadow consultation counters back out of a
// registry after a run (reading a counter that never incremented yields
// zero — the obs registry creates on first touch).
func ShadowCounts(reg *obs.Registry) (evals int64, divergence map[string]int64) {
	evals = reg.Counter("gqosm_shadow_evaluations_total", shadowEvalsHelp).Value()
	divergence = make(map[string]int64, len(ShadowFamilies))
	for _, fam := range ShadowFamilies {
		divergence[fam] = reg.Counter("gqosm_shadow_divergence_total", shadowDivHelp, "family", fam).Value()
	}
	return evals, divergence
}

// NewBroker assembles a broker from the config. When durability is
// enabled the WAL directory must not already hold state — a directory
// with history belongs to Recover, and silently starting fresh over it
// would fork the journal.
func NewBroker(cfg Config) (*Broker, error) {
	b, err := newBroker(cfg)
	if err != nil {
		return nil, err
	}
	if cfg.Durability.Dir != "" {
		if wal.HasState(cfg.Durability.Dir) {
			return nil, fmt.Errorf("core: WAL directory %s already holds state; use Recover", cfg.Durability.Dir)
		}
		log, _, err := wal.Open(b.walOptions())
		if err != nil {
			return nil, err
		}
		b.attachDurability(log)
	}
	return b, nil
}

// newBroker assembles the in-memory broker without touching any WAL
// state; NewBroker and Recover both build on it.
func newBroker(cfg Config) (*Broker, error) {
	if cfg.GARA == nil {
		return nil, errors.New("core: Config.GARA is required")
	}
	if err := cfg.Plan.Validate(); err != nil {
		return nil, err
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 1
	}
	if cfg.Clock == nil {
		cfg.Clock = clockx.Real()
	}
	if cfg.Repo == nil {
		cfg.Repo = sla.NewMemoryRepository()
	}
	if cfg.Prices == nil {
		cfg.Prices = pricing.NewModel(pricing.DefaultRates)
	}
	if cfg.Ledger == nil {
		cfg.Ledger = pricing.NewLedger()
	}
	if cfg.ConfirmWindow <= 0 {
		cfg.ConfirmWindow = 2 * time.Minute
	}
	if cfg.MinOptimizerGain <= 0 {
		cfg.MinOptimizerGain = 1.0
	}
	if cfg.RangeSteps <= 0 {
		cfg.RangeSteps = 4
	}
	if cfg.EventLogCap <= 0 {
		cfg.EventLogCap = DefEventLogCap
	}
	if cfg.Obs == nil {
		cfg.Obs = obs.NewRegistry()
	}
	policyName := cfg.Policy
	if policyName == "" {
		policyName = "paper"
	}
	policy, ok := LookupPolicy(policyName)
	if !ok {
		return nil, fmt.Errorf("core: unknown policy %q (registered: %s)", policyName, strings.Join(PolicyNames(), ", "))
	}
	var shadowPol Policy
	if cfg.ShadowPolicy != "" {
		shadowPol, ok = LookupPolicy(cfg.ShadowPolicy)
		if !ok {
			return nil, fmt.Errorf("core: unknown shadow policy %q (registered: %s)", cfg.ShadowPolicy, strings.Join(PolicyNames(), ", "))
		}
	}
	b := &Broker{
		cfg:            cfg,
		clock:          cfg.Clock,
		prices:         cfg.Prices,
		ledger:         cfg.Ledger,
		repo:           cfg.Repo,
		route:          make(map[sla.ID]*shard),
		beRoute:        make(map[string]*shard),
		evBuf:          make([]Event, 0, cfg.EventLogCap),
		obs:            cfg.Obs,
		pendingCancels: make(map[sla.ID]gara.Handle),
		handoffs:       make(map[sla.ID]handoffIntent),
		policy:         policy,
		shadowPol:      shadowPol,
	}
	if b.shadowPol != nil {
		b.shadowEvals = b.obs.Counter("gqosm_shadow_evaluations_total", shadowEvalsHelp)
		b.shadowDiv = make(map[string]*obs.Counter, len(ShadowFamilies))
		for _, fam := range ShadowFamilies {
			b.shadowDiv[fam] = b.obs.Counter("gqosm_shadow_divergence_total", shadowDivHelp, "family", fam)
		}
	}
	b.pol = newPolicyRunner(b, cfg.RMPolicy)
	if !cfg.DisableCaches {
		if gf, ok := cfg.Registry.(generationFinder); ok {
			b.dcache = newDiscoveryCache(gf, cfg.Obs)
		}
	}
	for i, plan := range cfg.Plan.Split(cfg.Shards) {
		alloc, err := NewAllocator(plan)
		if err != nil {
			return nil, fmt.Errorf("core: shard %d: %w", i, err)
		}
		alloc.SetPolicy(b.policy)
		if b.shadowPol != nil {
			alloc.SetShadow(b.shadowPol, b.recordShadow)
		}
		b.shards = append(b.shards, &shard{
			index:      i,
			alloc:      alloc,
			sessions:   make(map[sla.ID]*session),
			promotions: make(map[sla.ID]pricing.PromotionOffer),
		})
	}
	b.met = newBrokerMetrics(b.obs)
	b.registerGauges(b.obs)
	b.obs.GaugeFunc("gqosm_broker_pending_cancels",
		"Reservations awaiting a cancel retry after budget exhaustion",
		func() float64 { return float64(b.PendingCancels()) })
	if cfg.NRM != nil {
		cfg.NRM.Subscribe(b.onNetworkDegradation)
	}
	if cfg.Intake.Enabled {
		b.intake = newIntake(b, cfg.Intake, b.obs)
	}
	return b, nil
}

// Close cancels every pending confirmation timer and refuses further
// requests. Established sessions and their reservations are left intact
// (the broker does not own the resource managers' lifecycles). Shards are
// swept in index order, one lock at a time.
func (b *Broker) Close() {
	if !b.closed.CompareAndSwap(false, true) {
		return
	}
	if b.intake != nil {
		b.intake.close(ErrClosed)
	}
	for _, sh := range b.shards {
		sh.mu.Lock()
		for _, s := range sh.sessions {
			if s.confirm != nil {
				s.confirm.Stop()
				s.confirm = nil
			}
		}
		sh.mu.Unlock()
	}
	if b.durable != nil {
		// Every acknowledged append was already fsynced; sealing just
		// closes the segment. Recovery replays it like any other.
		b.durable.Seal()
	}
}

// Allocator exposes the Algorithm-1 engine of shard 0 (read-mostly:
// experiments snapshot pool usage through it). Single-shard brokers — the
// default — have exactly one; multi-shard callers use Allocators.
func (b *Broker) Allocator() *Allocator { return b.shards[0].alloc }

// recordShadow counts one shadow consultation in the given decision
// family. It is called with allocator or shard locks held, so it only
// touches atomic counters. Nil-safe: a broker without a shadow policy
// never registers the counters and the nil *obs.Counter receivers no-op.
func (b *Broker) recordShadow(family string, diverged bool) {
	if b.shadowEvals == nil {
		return
	}
	b.shadowEvals.Inc()
	if diverged {
		if c, ok := b.shadowDiv[family]; ok {
			c.Inc()
		}
	}
}

// PolicyName reports the active adaptation policy.
func (b *Broker) PolicyName() string { return b.policy.Name() }

// ShadowPolicyName reports the shadow candidate, or "" when shadowing is
// off.
func (b *Broker) ShadowPolicyName() string {
	if b.shadowPol == nil {
		return ""
	}
	return b.shadowPol.Name()
}

// PolicyReport describes the broker's policy configuration for the
// management API (qosctl policies).
type PolicyReport struct {
	Active   string   `json:"active"`
	Shadow   string   `json:"shadow,omitempty"`
	Policies []string `json:"policies"`
}

// Policies returns the active/shadow policy names plus the full registry.
func (b *Broker) Policies() PolicyReport {
	return PolicyReport{
		Active:   b.PolicyName(),
		Shadow:   b.ShadowPolicyName(),
		Policies: PolicyNames(),
	}
}

// Domain returns the administrative domain the broker serves.
func (b *Broker) Domain() string { return b.cfg.Domain }

// Recovering reports whether a Recover is still installing state and
// reconciling against the RMs; admissions are refused with
// ErrPeerUnavailable while it is true.
func (b *Broker) Recovering() bool { return b.recovering.Load() }

// LoadReport is a broker's self-report for front-tier placement: how
// loaded its guaranteed partitions are and how many sessions it hosts.
type LoadReport struct {
	// Domain names the reporting broker.
	Domain string `json:"domain"`
	// Sessions counts resident sessions (any state; terminal sessions
	// linger until pruned, so this tracks working-set size, not live
	// demand).
	Sessions int `json:"sessions"`
	// Load is the mean of the shards' guaranteed-partition load factors
	// (0 idle, ≥ 1 when saturated).
	Load float64 `json:"load"`
	// Recovering is true while a Recover is still in flight; the front
	// tier skips recovering members when placing admissions.
	Recovering bool `json:"recovering,omitempty"`
}

// LoadReport snapshots the broker's placement-relevant load. It reads
// only the allocators' published views and per-shard session counts, so
// it is cheap enough for the front tier to call on every admission.
func (b *Broker) LoadReport() LoadReport {
	r := LoadReport{Domain: b.cfg.Domain, Recovering: b.recovering.Load()}
	var sum float64
	for _, sh := range b.shards {
		sum += sh.alloc.LoadFactor()
		sh.mu.Lock()
		r.Sessions += len(sh.sessions)
		sh.mu.Unlock()
	}
	r.Load = sum / float64(len(b.shards))
	return r
}

// Ledger exposes the accounting ledger.
func (b *Broker) Ledger() *pricing.Ledger { return b.ledger }

// Repo exposes the SLA repository.
func (b *Broker) Repo() sla.Repository { return b.repo }

// Events returns the retained activity log, oldest first. The log is a
// bounded ring (Config.EventLogCap): under sustained load the oldest
// entries are evicted; EventsTotal reports how many were ever logged.
// The returned slice is a shared immutable snapshot — callers must not
// modify it. Repeated calls with no intervening events return the same
// snapshot without copying the ring again.
func (b *Broker) Events() []Event {
	b.evMu.Lock()
	defer b.evMu.Unlock()
	if b.evSnap != nil && b.evSnapTotal == b.evTotal {
		return b.evSnap
	}
	out := make([]Event, 0, len(b.evBuf))
	if len(b.evBuf) < cap(b.evBuf) {
		out = append(out, b.evBuf...)
	} else {
		out = append(out, b.evBuf[b.evNext:]...)
		out = append(out, b.evBuf[:b.evNext]...)
	}
	b.evSnap = out
	b.evSnapTotal = b.evTotal
	return out
}

// EventsTotal returns how many activity-log events were ever logged,
// including those evicted from the ring.
func (b *Broker) EventsTotal() int64 {
	b.evMu.Lock()
	defer b.evMu.Unlock()
	return b.evTotal
}

// SetDebugHook installs fn to run after every mutating broker operation
// (nil removes it). It is meant for invariant checking in tests and
// simulations: fn receives the broker with no locks held and any error it
// returns is recorded as an "invariant" event. The cross-component
// invariants fn typically checks (session ↔ allocator consistency) only
// hold when no other operation is in flight, so the hook is reliable only
// under serial use; concurrent harnesses should check at quiesce points
// instead.
func (b *Broker) SetDebugHook(fn func(*Broker) error) {
	b.debugMu.Lock()
	b.debugHook = fn
	b.debugMu.Unlock()
}

// debugCheck runs the debug hook, if any, after operation op.
func (b *Broker) debugCheck(op string) {
	b.debugMu.Lock()
	fn := b.debugHook
	b.debugMu.Unlock()
	if fn == nil {
		return
	}
	if err := fn(b); err != nil {
		b.logf("invariant", "", "after %s: %v", op, err)
	}
}

// DebugViolations returns the "invariant" events recorded by the debug
// hook.
func (b *Broker) DebugViolations() []Event {
	var out []Event
	for _, e := range b.Events() {
		if e.Kind == "invariant" {
			out = append(out, e)
		}
	}
	return out
}

// Session returns a copy of the SLA document for the given session.
func (b *Broker) Session(id sla.ID) (*sla.Document, error) {
	sh := b.shardFor(id)
	if sh == nil {
		return nil, fmt.Errorf("%w: %s", ErrUnknownSession, id)
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	s, ok := sh.sessions[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownSession, id)
	}
	return s.doc.Clone(), nil
}

// Sessions returns copies of all session documents matching the filter
// (nil matches all), ordered by ID. Shards are visited in index order,
// one lock at a time.
func (b *Broker) Sessions(filter func(*sla.Document) bool) []*sla.Document {
	var out []*sla.Document
	for _, sh := range b.shards {
		sh.mu.Lock()
		for _, s := range sh.sessions {
			if filter == nil || filter(s.doc) {
				out = append(out, s.doc.Clone())
			}
		}
		sh.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// SessionInfo is a snapshot of broker-internal session state, exposed
// for invariant checking (reservation leaks, missing refunds) and
// reconciliation.
type SessionInfo struct {
	ID         sla.ID
	State      sla.State
	Degraded   bool
	Violations int
	Handle     gara.Handle
	// ProposedAt is when the offer was made (zero for sessions that
	// predate the field's stamping site).
	ProposedAt time.Time
}

// SessionInfos returns a snapshot of every session's internal state,
// ordered by ID. Shards are visited in index order, one lock at a
// time.
func (b *Broker) SessionInfos() []SessionInfo {
	var out []SessionInfo
	for _, sh := range b.shards {
		sh.mu.Lock()
		for id, s := range sh.sessions {
			out = append(out, SessionInfo{
				ID:         id,
				State:      s.doc.State,
				Degraded:   s.degraded,
				Violations: s.violations,
				Handle:     s.handle,
				ProposedAt: s.proposedAt,
			})
		}
		sh.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// PruneTerminal removes terminal sessions — their shard map entries,
// unclaimed promotion offers, routing-table rows and repository documents
// — and returns how many it removed. Terminal sessions are normally kept
// so they stay queryable; the soak harness calls this at quiesce points
// so multi-million-op runs hold a bounded working set. Reservations
// parked in pendingCancels are keyed independently, so reconciliation is
// unaffected; pruned IDs simply become unknown to Session/SessionInfos.
func (b *Broker) PruneTerminal() int {
	pruned := 0
	for _, sh := range b.shards {
		sh.mu.Lock()
		var ids []sla.ID
		for id, s := range sh.sessions {
			if s.doc.State.Terminal() {
				ids = append(ids, id)
			}
		}
		for _, id := range ids {
			s := sh.sessions[id]
			if s.confirm != nil {
				s.confirm.Stop()
			}
			delete(sh.sessions, id)
			delete(sh.promotions, id)
		}
		sh.mu.Unlock()
		if len(ids) == 0 {
			continue
		}
		b.routeMu.Lock()
		for _, id := range ids {
			delete(b.route, id)
		}
		b.routeMu.Unlock()
		for _, id := range ids {
			_ = b.repo.Delete(id)
		}
		b.journalPrune(ids)
		pruned += len(ids)
	}
	return pruned
}

// logf appends to the activity log ring, evicting the oldest entry when
// full. The log has its own leaf mutex, so this is safe with or without a
// shard lock held.
func (b *Broker) logf(kind string, id sla.ID, format string, args ...any) {
	e := Event{At: b.clock.Now(), Kind: kind, SLA: id, Msg: fmt.Sprintf(format, args...)}
	b.evMu.Lock()
	if len(b.evBuf) < cap(b.evBuf) {
		b.evBuf = append(b.evBuf, e)
	} else {
		b.evBuf[b.evNext] = e
	}
	b.evNext = (b.evNext + 1) % cap(b.evBuf)
	b.evTotal++
	b.evMu.Unlock()
}

// logLocked appends to the activity log from inside a shard critical
// section (same leaf lock as logf; the name records the calling context).
func (b *Broker) logLocked(kind string, id sla.ID, format string, args ...any) {
	b.logf(kind, id, format, args...)
}
