package core

import (
	"errors"
	"math"
	"math/rand"
	"strconv"
	"testing"

	"gqosm/internal/pricing"
	"gqosm/internal/resource"
	"gqosm/internal/sla"
)

var stdRates = pricing.Rates{PerCPUNode: 4, PerMemoryMB: 0.005, PerDiskGB: 0.2, PerMbps: 0.05}

func optSvc(id string, params ...sla.Param) OptService {
	return OptService{ID: sla.ID(id), Spec: sla.NewSpec(params...), Rates: stdRates}
}

func TestGreedySingleServiceTakesBest(t *testing.T) {
	p := OptProblem{
		Services: []OptService{optSvc("a", sla.Range(resource.CPU, 4, 10))},
		Capacity: resource.Nodes(26),
	}
	res, err := Greedy(p)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Assignment["a"]; !got.Equal(resource.Nodes(10)) {
		t.Errorf("assignment = %v, want best quality 10", got)
	}
	if math.Abs(res.Profit-40) > 1e-9 {
		t.Errorf("profit = %g, want 40", res.Profit)
	}
}

func TestGreedyRespectsCapacity(t *testing.T) {
	p := OptProblem{
		Services: []OptService{
			optSvc("a", sla.List(resource.CPU, 4, 8, 12)),
			optSvc("b", sla.List(resource.CPU, 4, 8, 12)),
		},
		Capacity: resource.Nodes(16),
	}
	res, err := Greedy(p)
	if err != nil {
		t.Fatal(err)
	}
	total := res.Assignment["a"].Add(res.Assignment["b"])
	if !total.FitsIn(resource.Nodes(16)) {
		t.Fatalf("assignment %v exceeds capacity", total)
	}
	// Optimum is 12+4 or 8+8 or 4+12 = 16 nodes → profit 64.
	if math.Abs(res.Profit-64) > 1e-9 {
		t.Errorf("profit = %g, want 64", res.Profit)
	}
	for id, c := range res.Assignment {
		var svc OptService
		for _, s := range p.Services {
			if s.ID == id {
				svc = s
			}
		}
		if !svc.Spec.Accepts(c) {
			t.Errorf("assignment %v for %s not acceptable", c, id)
		}
	}
}

func TestGreedyInfeasibleFloors(t *testing.T) {
	p := OptProblem{
		Services: []OptService{
			optSvc("a", sla.Exact(resource.CPU, 20)),
			optSvc("b", sla.Exact(resource.CPU, 20)),
		},
		Capacity: resource.Nodes(26),
	}
	if _, err := Greedy(p); !errors.Is(err, ErrInfeasible) {
		t.Errorf("err = %v, want ErrInfeasible", err)
	}
	if _, err := Exact(p); !errors.Is(err, ErrInfeasible) {
		t.Errorf("Exact err = %v, want ErrInfeasible", err)
	}
	if _, err := BaselineMinimum(p); !errors.Is(err, ErrInfeasible) {
		t.Errorf("BaselineMinimum err = %v", err)
	}
	if _, err := BaselineFirstFit(p); !errors.Is(err, ErrInfeasible) {
		t.Errorf("BaselineFirstFit err = %v", err)
	}
}

func TestExactSmallOracle(t *testing.T) {
	// Hand-checkable: capacity 10, two services with lists {2,6} and
	// {2,8}. Feasible combos: (2,2)=16, (2,8)=40, (6,2)=32 → optimum 40.
	p := OptProblem{
		Services: []OptService{
			optSvc("a", sla.List(resource.CPU, 2, 6)),
			optSvc("b", sla.List(resource.CPU, 2, 8)),
		},
		Capacity: resource.Nodes(10),
	}
	res, err := Exact(p)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Profit-40) > 1e-9 {
		t.Errorf("Exact profit = %g, want 40", res.Profit)
	}
	if !res.Assignment["a"].Equal(resource.Nodes(2)) || !res.Assignment["b"].Equal(resource.Nodes(8)) {
		t.Errorf("assignment = %v", res.Assignment)
	}
}

func TestExactRejectsHugeInstances(t *testing.T) {
	p := OptProblem{Capacity: resource.Nodes(1000)}
	for i := 0; i < exactLimit+1; i++ {
		p.Services = append(p.Services, optSvc("s"+strconv.Itoa(i), sla.Exact(resource.CPU, 1)))
	}
	if _, err := Exact(p); err == nil {
		t.Error("oversized Exact accepted")
	}
}

func TestMultiDimensionalCoupling(t *testing.T) {
	// CPU-rich/memory-poor: the optimizer must trade dimensions
	// independently per service but respect both constraints.
	p := OptProblem{
		Services: []OptService{
			optSvc("a", sla.Range(resource.CPU, 2, 10), sla.List(resource.MemoryMB, 512, 2048)),
			optSvc("b", sla.Range(resource.CPU, 2, 10), sla.List(resource.MemoryMB, 512, 2048)),
		},
		Capacity: resource.Capacity{CPU: 12, MemoryMB: 2560},
	}
	exact, err := Exact(p)
	if err != nil {
		t.Fatal(err)
	}
	var cpu, mem float64
	for _, c := range exact.Assignment {
		cpu += c.CPU
		mem += c.MemoryMB
	}
	if cpu > 12+1e-9 || mem > 2560+1e-9 {
		t.Fatalf("exact violates capacity: cpu=%g mem=%g", cpu, mem)
	}
	greedy, err := Greedy(p)
	if err != nil {
		t.Fatal(err)
	}
	if greedy.Profit > exact.Profit+1e-9 {
		t.Fatalf("greedy %g beat exact %g", greedy.Profit, exact.Profit)
	}
	if greedy.Profit < 0.9*exact.Profit {
		t.Errorf("greedy %g below 90%% of exact %g", greedy.Profit, exact.Profit)
	}
}

// Property: on random small instances, Greedy is feasible and within 85%
// of Exact; baselines never beat Exact; ordering
// minimum ≤ {first-fit, greedy} ≤ exact holds.
func TestOptimizerOrderingProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for trial := 0; trial < 60; trial++ {
		n := 2 + rng.Intn(4)
		p := OptProblem{Capacity: resource.Capacity{
			CPU:      float64(10 + rng.Intn(30)),
			MemoryMB: float64(1024 + rng.Intn(4096)),
		}}
		for i := 0; i < n; i++ {
			minCPU := float64(1 + rng.Intn(3))
			maxCPU := minCPU + float64(rng.Intn(8))
			minMem := float64(128 * (1 + rng.Intn(3)))
			svc := OptService{
				ID: sla.ID("s" + strconv.Itoa(i)),
				Spec: sla.NewSpec(
					sla.Range(resource.CPU, minCPU, maxCPU),
					sla.List(resource.MemoryMB, minMem, minMem*2),
				),
				Rates:      stdRates,
				RangeSteps: 3,
			}
			p.Services = append(p.Services, svc)
		}

		exact, errE := Exact(p)
		greedy, errG := Greedy(p)
		min, errM := BaselineMinimum(p)
		ff, errF := BaselineFirstFit(p)
		if errE != nil {
			// Infeasible floors: everyone must agree.
			if errG == nil || errM == nil || errF == nil {
				t.Fatalf("trial %d: feasibility disagreement", trial)
			}
			continue
		}
		if errG != nil || errM != nil || errF != nil {
			t.Fatalf("trial %d: heuristics failed on feasible instance: %v %v %v", trial, errG, errM, errF)
		}
		if min.Profit > exact.Profit+1e-6 || ff.Profit > exact.Profit+1e-6 || greedy.Profit > exact.Profit+1e-6 {
			t.Fatalf("trial %d: a heuristic beat exact (min=%g ff=%g greedy=%g exact=%g)",
				trial, min.Profit, ff.Profit, greedy.Profit, exact.Profit)
		}
		if greedy.Profit < min.Profit-1e-6 {
			t.Fatalf("trial %d: greedy %g below minimum baseline %g", trial, greedy.Profit, min.Profit)
		}
		if greedy.Profit < 0.85*exact.Profit {
			t.Fatalf("trial %d: greedy %g below 85%% of exact %g", trial, greedy.Profit, exact.Profit)
		}
		// Feasibility and acceptability of every assignment.
		for _, res := range []OptResult{exact, greedy, min, ff} {
			var sum resource.Capacity
			for _, s := range p.Services {
				c := res.Assignment[s.ID]
				if !s.Spec.Accepts(c) {
					t.Fatalf("trial %d: unacceptable assignment %v", trial, c)
				}
				sum = sum.Add(c)
			}
			if !sum.FitsIn(p.Capacity) {
				t.Fatalf("trial %d: assignment exceeds capacity", trial)
			}
		}
	}
}

func TestBaselineMinimumIsFloors(t *testing.T) {
	p := OptProblem{
		Services: []OptService{optSvc("a", sla.Range(resource.CPU, 4, 10))},
		Capacity: resource.Nodes(26),
	}
	res, err := BaselineMinimum(p)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Assignment["a"].Equal(resource.Nodes(4)) {
		t.Errorf("minimum baseline = %v", res.Assignment["a"])
	}
}

func TestBaselineFirstFitOrderDependence(t *testing.T) {
	// First-fit gives the first arrival its best level; the optimizer
	// would share. Capacity 12; both want {4, 10}. First-fit: a=10, b
	// stays 4 → total 14 > 12? No: floors reserved first (4+4=8), then a
	// upgrades to 10 needs +6 > 12-8=4 → a stays 4; b same. So first-fit
	// = 8 nodes, profit 32. Greedy finds the same here; with levels
	// {4,8} first-fit upgrades a to 8 (+4 fits) and not b.
	p := OptProblem{
		Services: []OptService{
			optSvc("a", sla.List(resource.CPU, 4, 8)),
			optSvc("b", sla.List(resource.CPU, 4, 8)),
		},
		Capacity: resource.Nodes(12),
	}
	res, err := BaselineFirstFit(p)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Assignment["a"].Equal(resource.Nodes(8)) || !res.Assignment["b"].Equal(resource.Nodes(4)) {
		t.Errorf("first-fit = %v", res.Assignment)
	}
}

func TestOptServiceChoicesDefaultSteps(t *testing.T) {
	s := optSvc("a", sla.Range(resource.CPU, 0, 9))
	levels := s.choices()[resource.CPU]
	if len(levels) != 4 || levels[0] != 0 || levels[3] != 9 {
		t.Errorf("default choices = %v", levels)
	}
}

// Regression: the optimizer's reallocation plan fits the pool jointly,
// but it can only be applied if downsizes land before the upgrades they
// fund. Applying an upgrade first transiently over-demands the pool;
// AllocateGuaranteed then replaces the session's existing grant with
// its floor, and skipping the document update on that partial grant
// left allocator and document disagreeing (doc-allocator-skew).
func TestOptimizerApplyKeepsDocAndAllocatorConsistent(t *testing.T) {
	h := newHarness(t)
	b := h.broker

	admit := func(req Request) sla.ID {
		t.Helper()
		offer, err := b.RequestService(req)
		if err != nil {
			t.Fatal(err)
		}
		if err := b.Accept(offer.SLA.ID); err != nil {
			t.Fatal(err)
		}
		return offer.SLA.ID
	}
	cl := func(client string, lo, hi float64) Request {
		return Request{
			Service: "simulation", Client: client,
			Class:             sla.ClassControlledLoad,
			Spec:              sla.NewSpec(sla.Range(resource.CPU, lo, hi)),
			Start:             t0,
			End:               t5,
			AcceptDegradation: true,
		}
	}

	// The guaranteed pool admits 15 CPU. The filler pins 3 of them.
	filler := admit(Request{
		Service: "simulation", Client: "filler",
		Class: sla.ClassGuaranteed,
		Spec:  sla.NewSpec(sla.Exact(resource.CPU, 3)),
		Start: t0, End: t5,
	})
	// "narrow" is admitted at its best (4); "wide" takes the rest (8).
	narrow := admit(cl("narrow", 2, 4))
	wide := admit(cl("wide", 2, 8))

	// Widen narrow's spec with zero headroom: its allocation stays at 4
	// while the spec now reaches 14, so the next optimizer pass will
	// want to upgrade it well past what is free.
	res, err := b.Renegotiate(narrow, sla.NewSpec(sla.Range(resource.CPU, 2, 14)))
	if err != nil {
		t.Fatal(err)
	}
	if res.New.CPU != 4 {
		t.Fatalf("setup: renegotiated allocation = %v, want CPU 4", res.New)
	}

	// Terminating the filler frees 3 CPU and runs the scenario-2
	// optimizer. Its plan: narrow 4→10, wide 8→4 — narrow's upgrade
	// only fits after wide's downsize funds it.
	if err := b.Terminate(filler, "done"); err != nil {
		t.Fatal(err)
	}

	for _, id := range []sla.ID{narrow, wide} {
		doc, err := b.Session(id)
		if err != nil {
			t.Fatal(err)
		}
		got, held := b.Allocator().GuaranteedAllocation(string(id))
		if !held {
			t.Fatalf("%s: live session has no allocator grant", id)
		}
		if !got.Equal(doc.Allocated) {
			t.Errorf("%s: document says %v, allocator says %v", id, doc.Allocated, got)
		}
	}
	// The reallocation itself must have gone through.
	doc, _ := b.Session(narrow)
	if doc.Allocated.CPU != 10 {
		t.Errorf("narrow allocation = %v, want CPU 10", doc.Allocated)
	}
	doc, _ = b.Session(wide)
	if doc.Allocated.CPU != 4 {
		t.Errorf("wide allocation = %v, want CPU 4", doc.Allocated)
	}
}
