package core

import (
	"encoding/xml"
	"fmt"
	"time"

	"gqosm/internal/gara"
	"gqosm/internal/nrm"
	"gqosm/internal/pricing"
	"gqosm/internal/resource"
	"gqosm/internal/sla"
)

// This file is the SLA-Verif component (§3.2): on-demand SLA conformance
// tests producing the Table-3 <QoS_Levels> reply, plus scenario-3
// degradation handling fed by NRM notifications.

// QoSLevelsXML mirrors Table 3: the XML message after a SLA conformance
// test showing measured QoS levels.
type QoSLevelsXML struct {
	XMLName  xml.Name            `xml:"QoS_Levels"`
	SLAID    string              `xml:"SLA-ID"`
	Network  *MeasuredNetworkXML `xml:"Measured_Network_QoS,omitempty"`
	Compute  *MeasuredComputeXML `xml:"Measured_Computation_QoS,omitempty"`
	Conforms bool                `xml:"Conforms"`
}

// MeasuredNetworkXML is the <Measured_Network_QoS> element of Table 3.
type MeasuredNetworkXML struct {
	SourceIP   string `xml:"Source_IP"`
	DestIP     string `xml:"Dest_IP"`
	Bandwidth  string `xml:"Bandwidth"`
	PacketLoss string `xml:"Packet_Loss,omitempty"`
	Delay      string `xml:"Delay,omitempty"`
}

// MeasuredComputeXML reports the delivered computation QoS.
type MeasuredComputeXML struct {
	CPU    string `xml:"CPU-QoS,omitempty"`
	Memory string `xml:"Memory-QoS,omitempty"`
	Disk   string `xml:"Disk-QoS,omitempty"`
}

// ConformanceReport is the result of a Verify call.
type ConformanceReport struct {
	SLA      sla.ID
	At       time.Time
	Measured resource.Capacity
	// Conforms reports whether every measured dimension satisfies the
	// SLA (within its acceptable levels).
	Conforms bool
	// Degraded lists the dimensions delivering below the agreed
	// allocation.
	Degraded []resource.Kind
	// XML is the Table-3 wire document.
	XML QoSLevelsXML
}

// Verify runs an SLA conformance test "on an explicit request by the
// client/application" (§3.2): it gathers measured QoS levels from the NRM
// (network) and MDS (computation), compares them against the SLA, and
// returns the Table-3 reply. A non-conformant result triggers scenario-3
// adaptation.
func (b *Broker) Verify(id sla.ID) (*ConformanceReport, error) {
	sh := b.shardFor(id)
	if sh == nil {
		return nil, fmt.Errorf("%w: %s", ErrUnknownSession, id)
	}
	sh.mu.Lock()
	s, ok := sh.sessions[id]
	if !ok {
		sh.mu.Unlock()
		return nil, fmt.Errorf("%w: %s", ErrUnknownSession, id)
	}
	if s.doc.State.Terminal() || s.doc.State == sla.StateProposed {
		sh.mu.Unlock()
		return nil, fmt.Errorf("%w: %s is %s", ErrBadState, id, s.doc.State)
	}
	doc := s.doc.Clone()
	handle := s.handle
	sh.mu.Unlock()

	now := b.clock.Now()
	report := &ConformanceReport{
		SLA:      id,
		At:       now,
		Measured: doc.Allocated,
		Conforms: true,
		XML:      QoSLevelsXML{SLAID: string(id)},
	}

	// Network: measure the session's flow through the NRM.
	if _, wantNet := doc.Spec.Params[resource.BandwidthMbps]; wantNet && b.cfg.NRM != nil {
		meas, err := b.measureFlow(id, handle, now)
		if err == nil {
			report.Measured.BandwidthMbps = meas.BandwidthMbps
			report.XML.Network = &MeasuredNetworkXML{
				SourceIP:  doc.Spec.SourceIP,
				DestIP:    doc.Spec.DestIP,
				Bandwidth: fmt.Sprintf("%s Mbps", trimFloat(meas.BandwidthMbps)),
				Delay:     fmt.Sprintf("%sms", trimFloat(meas.DelayMS)),
			}
			if doc.Spec.MaxPacketLossPct > 0 {
				report.XML.Network.PacketLoss = fmt.Sprintf("LessThan %s%%", trimFloat(doc.Spec.MaxPacketLossPct))
				if meas.LossPct > doc.Spec.MaxPacketLossPct {
					report.XML.Network.PacketLoss = fmt.Sprintf("%s%%", trimFloat(meas.LossPct))
					report.Conforms = false
					report.Degraded = append(report.Degraded, resource.BandwidthMbps)
				}
			}
			if meas.BandwidthMbps < doc.Allocated.BandwidthMbps*0.99 {
				report.Conforms = false
				report.Degraded = appendKind(report.Degraded, resource.BandwidthMbps)
			}
		}
	}

	// Computation: the delivered level is the allocation scaled by the
	// allocator's coverage — below 1 only when failures exceed the
	// adaptive reserve (the §5.6 t2 condition taken past its limit).
	if hasComputeParams(doc.Spec) {
		coverage := sh.alloc.Coverage()
		report.Measured.CPU = doc.Allocated.CPU * coverage.CPU
		report.Measured.MemoryMB = doc.Allocated.MemoryMB * coverage.MemoryMB
		report.Measured.DiskGB = doc.Allocated.DiskGB * coverage.DiskGB
		report.XML.Compute = &MeasuredComputeXML{}
		if _, ok := doc.Spec.Params[resource.CPU]; ok {
			report.XML.Compute.CPU = fmt.Sprintf("%s CPU", trimFloat(report.Measured.CPU))
		}
		if _, ok := doc.Spec.Params[resource.MemoryMB]; ok {
			report.XML.Compute.Memory = fmt.Sprintf("%sMB", trimFloat(report.Measured.MemoryMB))
		}
		if _, ok := doc.Spec.Params[resource.DiskGB]; ok {
			report.XML.Compute.Disk = fmt.Sprintf("%sGB", trimFloat(report.Measured.DiskGB))
		}
	}

	// The SLA floor is the violation threshold.
	floor := doc.Spec.Floor()
	for _, k := range doc.Spec.Kinds() {
		if report.Measured.Get(k) < floor.Get(k)-resource.Epsilon {
			report.Conforms = false
			report.Degraded = appendKind(report.Degraded, k)
		}
	}
	report.XML.Conforms = report.Conforms

	b.logf("verify", id, "conformance test: conforms=%v measured=%v", report.Conforms, report.Measured)
	if !report.Conforms {
		b.handleDegradation(id, report.Measured)
	}
	return report, nil
}

// measureFlow resolves the session's network reservation to its NRM flow
// and measures it. Reservations are tagged with the SLA ID at creation,
// so when Modify has re-issued the flow under a new ID the lookup falls
// back to tag matching.
func (b *Broker) measureFlow(id sla.ID, handle gara.Handle, now time.Time) (nrm.Measurement, error) {
	res, err := b.cfg.GARA.Get(handle)
	if err != nil {
		return nrm.Measurement{}, err
	}
	token, ok := res.Parts[gara.TypeNetwork]
	if !ok {
		return nrm.Measurement{}, fmt.Errorf("core: reservation holds no network part")
	}
	if m, err := b.cfg.NRM.Measure(nrm.FlowID(token), now); err == nil {
		return m, nil
	}
	for _, f := range b.cfg.NRM.Flows() {
		if f.Tag == string(id) {
			return b.cfg.NRM.Measure(f.ID, now)
		}
	}
	return nrm.Measurement{}, fmt.Errorf("core: no flow for reservation %s", handle)
}

// onNetworkDegradation is the NRM's notification hook (§3.2: "when the
// network QoS degrades, the NRM notifies the SLA-Verif system").
func (b *Broker) onNetworkDegradation(flow nrm.Flow, m nrm.Measurement) {
	if b.closed.Load() {
		// The NRM has no unsubscribe: a crashed/closed broker stays on
		// the notification list, and reacting here would mutate state a
		// recovered successor now owns.
		return
	}
	id := sla.ID(flow.Tag)
	sh := b.shardFor(id)
	if sh == nil {
		return
	}
	sh.mu.Lock()
	_, ok := sh.sessions[id]
	sh.mu.Unlock()
	if !ok {
		return
	}
	b.logf("degradation", id, "NRM reports %s delivering %s/%s Mbps",
		flow.ID, trimFloat(m.BandwidthMbps), trimFloat(flow.Mbps))
	measured := resource.Capacity{BandwidthMbps: m.BandwidthMbps}
	b.handleDegradation(id, measured)
}

// handleDegradation implements scenario 3: "QoS falls below the specified
// QoS level in the SLA. … Adaptation is used, if possible, to restore the
// degraded QoS to an acceptable QoS as defined in the SLA." The response
// ladder (§4): (a) restore the agreed QoS; (b) re-negotiate to the
// alternative QoS in the SLA; (c) terminate on major degradation.
func (b *Broker) handleDegradation(id sla.ID, measured resource.Capacity) {
	sh := b.shardFor(id)
	if sh == nil {
		return
	}
	sh.mu.Lock()
	s, ok := sh.sessions[id]
	if !ok || s.doc.State.Terminal() {
		sh.mu.Unlock()
		return
	}
	doc := s.doc.Clone()
	sh.mu.Unlock()

	floor := doc.Spec.Floor()

	// RM level first (§3.2): "the underlying resource manager attempts
	// to rectify the problem by applying adaptation techniques at the
	// resource management level"; only when that fails does the AQoS
	// adapt. The probe runs under the per-attempt timeout with no
	// retries — a hung or unreachable RM must not stall the monitor
	// loop, and a second probe has no value: either way the ladder
	// continues as if the RM could not help.
	if b.cfg.RM != nil {
		rectified := false
		err := b.pol.callOnce("rm.rectify", func() error {
			rectified = b.cfg.RM.TryRectify(id, doc, measured)
			return nil
		})
		if err != nil {
			b.logf("adapt", id, "RM rectify probe failed (%v); continuing adaptation ladder", err)
		} else if rectified {
			b.logf("adapt", id, "degradation rectified at the resource-manager level")
			return
		}
	}

	// (a) Restore: if the allocator has headroom, re-grant the agreed
	// quality (covers compute failures absorbed by the adaptive pool —
	// the grant itself already survives; restoration applies when we
	// were previously degraded).
	sh.mu.Lock()
	wasDegraded := s.degraded
	sh.mu.Unlock()
	if wasDegraded {
		if err := b.restore(id); err == nil {
			b.logf("adapt", id, "restored agreed QoS (scenario 3a)")
			return
		}
	}

	// Determine how bad the degradation is on the measured dimensions.
	violated := false
	for _, k := range doc.Spec.Kinds() {
		mv := measured.Get(k)
		if mv == 0 && k != resource.BandwidthMbps {
			continue // dimension not measured
		}
		if mv < floor.Get(k)-resource.Epsilon {
			violated = true
		}
	}

	if violated {
		b.recordViolation(id)
	}

	// (b) Re-negotiate to the alternative QoS when the SLA carries one
	// and we are not already there.
	if doc.Adapt.HasAlternative && !doc.Allocated.Equal(doc.Adapt.AlternativeQoS) &&
		doc.Adapt.AlternativeQoS.FitsIn(doc.Allocated) {
		sh.mu.Lock()
		handle := s.handle
		spec := s.doc.Spec.Clone()
		sh.mu.Unlock()
		alt := doc.Adapt.AlternativeQoS
		if _, err := b.allocateLive(id, alt, alt.Min(floor)); err == nil {
			if err := b.applyAllocation(id, handle, spec, alt, true); err == nil {
				sh.mu.Lock()
				s.degraded = true
				prevState := s.doc.State
				if s.doc.State == sla.StateActive {
					_ = s.doc.Transition(sla.StateDegraded)
				} else if s.doc.State == sla.StateViolated {
					_ = s.doc.Transition(sla.StateDegraded)
				}
				newState := s.doc.State
				b.logLocked("adapt", id, "switched to alternative QoS %v (scenario 3b)", alt)
				sh.mu.Unlock()
				b.met.degraded.Inc()
				b.trace(id, prevState, newState, alt.Sub(doc.Allocated), "alternative QoS (scenario 3b)")
				b.persist(id)
				return
			}
		}
	}

	// (c) Major degradation with no recourse: alert, and terminate after
	// repeated violations.
	sh.mu.Lock()
	violations := s.violations
	sh.mu.Unlock()
	if violated && violations >= 3 {
		_ = b.Terminate(id, "terminated due to major QoS degradation (scenario 3c)")
	}
}

// recordViolation marks the session violated and charges the penalty.
func (b *Broker) recordViolation(id sla.ID) {
	sh := b.shardFor(id)
	if sh == nil {
		return
	}
	sh.mu.Lock()
	s, ok := sh.sessions[id]
	if !ok {
		sh.mu.Unlock()
		return
	}
	s.violations++
	prevState := s.doc.State
	if s.doc.State == sla.StateActive || s.doc.State == sla.StateDegraded {
		_ = s.doc.Transition(sla.StateViolated)
	}
	newState := s.doc.State
	pen := s.doc.Penalty
	count := s.violations
	b.logLocked("violation", id, "SLA violation #%d detected", count)
	sh.mu.Unlock()
	b.met.violations.Inc()
	b.trace(id, prevState, newState, resource.Capacity{}, fmt.Sprintf("SLA violation #%d", count))

	if amount := pricing.PenaltyFor(pen, 0); amount > 0 {
		b.ledger.Penalize(id, amount, b.clock.Now(), "SLA violation")
	}
	b.persist(id)
}

// Violations reports the violation count for a session.
func (b *Broker) Violations(id sla.ID) int {
	sh := b.shardFor(id)
	if sh == nil {
		return 0
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if s, ok := sh.sessions[id]; ok {
		return s.violations
	}
	return 0
}

// ExpireDue transitions every session whose validity window has elapsed
// (the Clearing trigger "resource reservation expiration"), returning the
// expired IDs.
func (b *Broker) ExpireDue() []sla.ID {
	now := b.clock.Now()
	var due []sla.ID
	for _, sh := range b.shards {
		sh.mu.Lock()
		for id, s := range sh.sessions {
			if s.doc.State.Terminal() || s.doc.State == sla.StateProposed {
				continue
			}
			if !s.doc.End.IsZero() && !now.Before(s.doc.End) {
				due = append(due, id)
			}
		}
		sh.mu.Unlock()
	}
	sortIDs(due)
	for _, id := range due {
		_ = b.Expire(id)
	}
	return due
}

// NotifyFailure informs the broker of failed capacity (the §5.6 t2
// event): the allocator adapts, preempting best-effort borrowers, and the
// event is logged. Recovery is signalled with the zero capacity. The
// failure is split evenly across shards — each absorbs its share through
// its own adaptive reserve — and the preemptions are concatenated in
// shard order.
func (b *Broker) NotifyFailure(offline resource.Capacity) []Preemption {
	defer b.debugCheck("failure")
	if !offline.IsZero() {
		b.met.failures.Inc()
	}
	share := offline
	if n := len(b.shards); n > 1 {
		share = offline.Scale(1 / float64(n))
	}
	var pre []Preemption
	for _, sh := range b.shards {
		pre = append(pre, sh.alloc.SetOffline(share)...)
	}
	b.journalOffline("offline")
	if offline.IsZero() {
		b.logf("failure", "", "capacity recovered; adaptive reserve replenished")
	} else {
		b.logf("failure", "", "capacity %v inaccessible; adaptive pool covering, %d best-effort preemption(s)",
			offline, len(pre))
	}
	return pre
}

func hasComputeParams(s sla.Spec) bool {
	for _, k := range []resource.Kind{resource.CPU, resource.MemoryMB, resource.DiskGB} {
		if _, ok := s.Params[k]; ok {
			return true
		}
	}
	return false
}

func appendKind(ks []resource.Kind, k resource.Kind) []resource.Kind {
	for _, existing := range ks {
		if existing == k {
			return ks
		}
	}
	return append(ks, k)
}

func sortIDs(ids []sla.ID) {
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
}
