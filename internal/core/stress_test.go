package core_test

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"gqosm/internal/core"
	"gqosm/internal/invariant"
	"gqosm/internal/resource"
	"gqosm/internal/sim"
	"gqosm/internal/sla"
)

// This file is the concurrency-correctness suite for the admission
// pipeline: goroutine clients hammer a shared broker through the full
// lifecycle while the invariant oracle watches for lost or double-spent
// capacity. Run with -race; the schedules are deterministic per client
// (sim.RunParallel) or tight enough to hit the historical races
// (Accept vs offer expiry, Terminate vs re-grant) in a few thousand
// iterations.

func stressCluster(t *testing.T) *sim.Cluster {
	t.Helper()
	c, err := sim.NewCluster(sim.ClusterConfig{Plan: sim.DefaultParallelPlan()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

// TestParallelLifecycleStress10K is the acceptance run: 8 clients, 10k
// operations, invariant.CheckAll at all 10 quiesce points plus the final
// drain, and exact capacity restoration at the end.
func TestParallelLifecycleStress10K(t *testing.T) {
	if testing.Short() {
		t.Skip("10k-op stress skipped in -short mode")
	}
	res, err := sim.RunParallel(sim.ParallelConfig{
		Clients: 8, Ops: 10000, Phases: 10, Seed: 1955,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Checks != 11 {
		t.Fatalf("checks = %d, want 11", res.Checks)
	}
	if res.Admitted == 0 || res.Terminated == 0 {
		t.Fatalf("degenerate run: %+v", res)
	}
}

// TestConcurrentAdmissionNoDoubleSpend churns request/accept/terminate
// cycles from 8 goroutines with no clock movement, then verifies the
// guaranteed partition drains back to exactly the configured plan.
func TestConcurrentAdmissionNoDoubleSpend(t *testing.T) {
	c := stressCluster(t)
	b := c.Broker
	now := c.Clock.Now()

	const goroutines = 8
	const cycles = 200
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < cycles; i++ {
				offer, err := b.RequestService(core.Request{
					Service: "simulation",
					Client:  fmt.Sprintf("spend-%d-%d", g, i),
					Class:   sla.ClassGuaranteed,
					Spec:    sla.NewSpec(sla.Exact(resource.CPU, float64(1+g%4))),
					Start:   now,
					End:     now.Add(2 * time.Hour),
				})
				if err != nil {
					continue // partition full right now; other goroutines hold it
				}
				if err := b.Accept(offer.SLA.ID); err != nil {
					continue
				}
				_ = b.Terminate(offer.SLA.ID, "cycle done")
			}
		}(g)
	}
	wg.Wait()

	if err := invariant.CheckAll(b, c.Clock.Now(), c.Pool); err != nil {
		t.Fatal(err)
	}
	alloc := b.Allocator()
	if users := alloc.GuaranteedUsers(); len(users) != 0 {
		t.Fatalf("grants leaked after churn: %v", users)
	}
	plan := alloc.Plan()
	if got := alloc.AvailableGuaranteed(); !got.Equal(plan.Guaranteed) {
		t.Fatalf("guaranteed headroom %v after churn, want %v", got, plan.Guaranteed)
	}
}

// TestConcurrentAcceptVsExpiry races Accept calls against the confirm
// window elapsing. Whichever side wins, the end state must be coherent:
// Established sessions hold their grant, Terminated ones hold none.
func TestConcurrentAcceptVsExpiry(t *testing.T) {
	c := stressCluster(t)
	b := c.Broker

	const rounds = 50
	for round := 0; round < rounds; round++ {
		now := c.Clock.Now()
		offer, err := b.RequestService(core.Request{
			Service: "simulation",
			Client:  fmt.Sprintf("racer-%d", round),
			Class:   sla.ClassGuaranteed,
			Spec:    sla.NewSpec(sla.Exact(resource.CPU, 2)),
			Start:   now,
			End:     now.Add(3 * time.Hour),
		})
		if err != nil {
			t.Fatalf("round %d: request: %v", round, err)
		}
		id := offer.SLA.ID

		var wg sync.WaitGroup
		var acceptErr error
		wg.Add(2)
		go func() {
			defer wg.Done()
			acceptErr = b.Accept(id)
		}()
		go func() {
			defer wg.Done()
			c.Clock.Advance(2 * time.Hour) // past the confirm window
			b.ExpireDue()
		}()
		wg.Wait()

		doc, err := b.Session(id)
		if err != nil {
			t.Fatalf("round %d: session: %v", round, err)
		}
		_, held := b.Allocator().GuaranteedAllocation(string(id))
		switch {
		case acceptErr == nil:
			// Accept won: the session is live and must hold its grant;
			// the expiry sweep must NOT have torn it down.
			if doc.State.Terminal() {
				t.Fatalf("round %d: accepted session was expired to %s", round, doc.State)
			}
			if !held {
				t.Fatalf("round %d: established session lost its grant", round)
			}
			if err := b.Terminate(id, "round done"); err != nil {
				t.Fatalf("round %d: terminate: %v", round, err)
			}
		default:
			// Expiry won: the offer is gone and no capacity is retained.
			if !doc.State.Terminal() {
				t.Fatalf("round %d: accept failed (%v) but session is %s", round, acceptErr, doc.State)
			}
			if held {
				t.Fatalf("round %d: expired offer still holds capacity", round)
			}
		}
		if err := invariant.CheckAll(b, c.Clock.Now(), c.Pool); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
}

// benchCluster builds the benchmark stack without testing.T cleanup.
func benchCluster(b *testing.B) *sim.Cluster {
	b.Helper()
	c, err := sim.NewCluster(sim.ClusterConfig{Plan: sim.DefaultParallelPlan()})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(c.Close)
	return c
}

// admissionCycle runs one request/reject pair — the full admission path
// (discovery, Algorithm-1 allocation, pricing, GARA reservation) followed
// by an immediate release so capacity never exhausts across iterations.
func admissionCycle(c *sim.Cluster, client string) error {
	now := c.Clock.Now()
	offer, err := c.Broker.RequestService(core.Request{
		Service: "simulation",
		Client:  client,
		Class:   sla.ClassGuaranteed,
		Spec:    sla.NewSpec(sla.Exact(resource.CPU, 2)),
		Start:   now,
		End:     now.Add(time.Hour),
	})
	if err != nil {
		return err
	}
	return c.Broker.Reject(offer.SLA.ID)
}

// BenchmarkSerialAdmission measures the admission path single-threaded.
func BenchmarkSerialAdmission(b *testing.B) {
	c := benchCluster(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := admissionCycle(c, "bench-serial"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkParallelAdmission measures admission contention across
// GOMAXPROCS goroutines sharing one broker.
func BenchmarkParallelAdmission(b *testing.B) {
	c := benchCluster(b)
	var clientID atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		client := fmt.Sprintf("bench-par-%d", clientID.Add(1))
		for pb.Next() {
			if err := admissionCycle(c, client); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// TestConcurrentTerminateVsAdaptation races Terminate against the
// failure/recovery sweep that re-grants capacity to degraded sessions —
// the historical terminated-session-regrant race. A terminal session must
// never come out of it holding a grant.
func TestConcurrentTerminateVsAdaptation(t *testing.T) {
	c := stressCluster(t)
	b := c.Broker

	const rounds = 50
	for round := 0; round < rounds; round++ {
		now := c.Clock.Now()
		offer, err := b.RequestService(core.Request{
			Service:           "simulation",
			Client:            fmt.Sprintf("adapt-%d", round),
			Class:             sla.ClassControlledLoad,
			Spec:              sla.NewSpec(sla.Range(resource.CPU, 2, 8)),
			Start:             now,
			End:               now.Add(3 * time.Hour),
			AcceptDegradation: true,
		})
		if err != nil {
			t.Fatalf("round %d: request: %v", round, err)
		}
		id := offer.SLA.ID
		if err := b.Accept(id); err != nil {
			t.Fatalf("round %d: accept: %v", round, err)
		}

		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			b.NotifyFailure(resource.Nodes(10))  // degrade
			b.NotifyFailure(resource.Capacity{}) // recover: re-grants degraded sessions
		}()
		go func() {
			defer wg.Done()
			_ = b.Terminate(id, "racing teardown")
		}()
		wg.Wait()
		_ = b.Terminate(id, "cleanup") // idempotent if the race already ended it

		doc, err := b.Session(id)
		if err != nil {
			t.Fatalf("round %d: session: %v", round, err)
		}
		if got, held := b.Allocator().GuaranteedAllocation(string(id)); doc.State.Terminal() && held {
			t.Fatalf("round %d: terminal session re-granted %v by adaptation sweep", round, got)
		}
		if err := invariant.CheckAll(b, c.Clock.Now(), c.Pool); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
}
