package core

import (
	"errors"
	"testing"
	"time"

	"gqosm/internal/sla"
)

// PruneTerminal is the soak harness's working-set bound: terminal
// sessions leave the shard maps, the routing table and the repository,
// while live sessions — and the capacity they hold — are untouched.
func TestPruneTerminal(t *testing.T) {
	h := newHarness(t)
	b := h.broker

	// One live session.
	live, err := b.RequestService(controlledRequest("tenant-live"))
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Accept(live.SLA.ID); err != nil {
		t.Fatal(err)
	}

	// One terminated session and one expired offer.
	done, err := b.RequestService(controlledRequest("tenant-done"))
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Accept(done.SLA.ID); err != nil {
		t.Fatal(err)
	}
	if err := b.Terminate(done.SLA.ID, "finished"); err != nil {
		t.Fatal(err)
	}
	stale, err := b.RequestService(controlledRequest("tenant-stale"))
	if err != nil {
		t.Fatal(err)
	}
	h.clock.Advance(3 * time.Minute) // past the confirm window
	b.ExpireDue()

	if got := b.PruneTerminal(); got != 2 {
		t.Fatalf("PruneTerminal = %d, want 2", got)
	}
	if got := b.PruneTerminal(); got != 0 {
		t.Fatalf("second PruneTerminal = %d, want 0", got)
	}

	// Pruned IDs are gone everywhere.
	for _, id := range []sla.ID{done.SLA.ID, stale.SLA.ID} {
		if _, err := b.Session(id); !errors.Is(err, ErrUnknownSession) {
			t.Errorf("Session(%s) after prune: %v, want ErrUnknownSession", id, err)
		}
		if _, err := b.Repo().Get(id); !errors.Is(err, sla.ErrNotFound) {
			t.Errorf("Repo.Get(%s) after prune: %v, want ErrNotFound", id, err)
		}
	}

	// The live session is untouched: queryable, still holding its grant.
	doc, err := b.Session(live.SLA.ID)
	if err != nil || doc.State != sla.StateEstablished {
		t.Fatalf("live session after prune: %v, %v", doc, err)
	}
	if err := b.Terminate(live.SLA.ID, "done"); err != nil {
		t.Fatalf("Terminate after prune: %v", err)
	}
}

func TestSessionInfosCarryProposedAt(t *testing.T) {
	h := newHarness(t)
	offer, err := h.broker.RequestService(controlledRequest("tenant-a"))
	if err != nil {
		t.Fatal(err)
	}
	infos := h.broker.SessionInfos()
	if len(infos) != 1 {
		t.Fatalf("SessionInfos = %d entries", len(infos))
	}
	if !infos[0].ProposedAt.Equal(t0) {
		t.Errorf("ProposedAt = %v, want %v", infos[0].ProposedAt, t0)
	}
	_ = offer
}
