package core

import (
	"errors"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"gqosm/internal/sla"
	"gqosm/internal/soapx"
)

// fakePeer is a scriptable Peer for fan-out tests: it sleeps, then
// returns a canned offer or error, and records retractions.
type fakePeer struct {
	domain   string
	delay    time.Duration
	offer    *Offer
	err      error
	requests atomic.Int64
	rejected chan sla.ID
}

func newFakePeer(domain string, delay time.Duration, offer *Offer, err error) *fakePeer {
	return &fakePeer{domain: domain, delay: delay, offer: offer, err: err,
		rejected: make(chan sla.ID, 4)}
}

func (p *fakePeer) PeerDomain() string { return p.domain }

func (p *fakePeer) PeerRequest(Request) (*Offer, error) {
	p.requests.Add(1)
	if p.delay > 0 {
		time.Sleep(p.delay)
	}
	return p.offer, p.err
}

func (p *fakePeer) PeerReject(id sla.ID) error {
	p.rejected <- id
	return nil
}

func fakeOffer(id string) *Offer {
	return &Offer{SLA: &sla.Document{ID: sla.ID(id), State: sla.StateProposed}}
}

// TestFederationFanOutConcurrent: N slow peers must be queried in
// parallel — the aggregate decline returns in roughly one peer's latency,
// not the sum of all of them.
func TestFederationFanOutConcurrent(t *testing.T) {
	home := domainBroker(t, "home", "solver", 10)
	fed := NewFederation(home)
	const peerDelay = 100 * time.Millisecond
	for i := 0; i < 4; i++ {
		fed.AddPeer(newFakePeer(fmt.Sprintf("slow-%d", i), peerDelay, nil, ErrCannotHonor))
	}

	start := time.Now()
	_, err := fed.RequestService(nodeRequest("solver", 100)) // over home capacity
	elapsed := time.Since(start)
	if !errors.Is(err, ErrNoDomainCanServe) {
		t.Fatalf("err = %v, want ErrNoDomainCanServe", err)
	}
	// Serialized, four peers would take ≥ 400ms; concurrent fan-out takes
	// ~one delay. The generous bound keeps slow CI machines green.
	if elapsed >= 3*peerDelay {
		t.Errorf("4 slow peers took %v — fan-out appears serialized", elapsed)
	}
}

// TestFederationFanOutRegistrationOrderWins: a slow early-registered peer
// beats a fast later one, preserving the sequential loop's preference
// order, and the loser's offer is retracted.
func TestFederationFanOutRegistrationOrderWins(t *testing.T) {
	home := domainBroker(t, "home", "solver", 10)
	fed := NewFederation(home)
	slow := newFakePeer("first-slow", 80*time.Millisecond, fakeOffer("sla-first"), nil)
	fast := newFakePeer("second-fast", 0, fakeOffer("sla-second"), nil)
	fed.AddPeer(slow)
	fed.AddPeer(fast)

	offer, err := fed.RequestService(nodeRequest("solver", 100))
	if err != nil {
		t.Fatalf("RequestService: %v", err)
	}
	if offer.Domain != "first-slow" || !offer.Forwarded {
		t.Fatalf("offer = %+v, want the first-registered peer to win", offer)
	}
	// The fast loser's offer must be retracted in the background.
	select {
	case id := <-fast.rejected:
		if id != "sla-second" {
			t.Errorf("retracted %q, want sla-second", id)
		}
	case <-time.After(2 * time.Second):
		t.Error("losing peer's offer never retracted")
	}
}

// TestFederationFanOutEarlyWinnerNoWait: when the first-registered peer
// answers fast, the caller does not wait out a slow later peer; the slow
// peer's eventual offer is still retracted.
func TestFederationFanOutEarlyWinnerNoWait(t *testing.T) {
	home := domainBroker(t, "home", "solver", 10)
	fed := NewFederation(home)
	fast := newFakePeer("fast", 0, fakeOffer("sla-fast"), nil)
	slow := newFakePeer("slow", 150*time.Millisecond, fakeOffer("sla-slow"), nil)
	fed.AddPeer(fast)
	fed.AddPeer(slow)

	start := time.Now()
	offer, err := fed.RequestService(nodeRequest("solver", 100))
	elapsed := time.Since(start)
	if err != nil {
		t.Fatalf("RequestService: %v", err)
	}
	if offer.Domain != "fast" {
		t.Fatalf("offer from %q, want fast", offer.Domain)
	}
	if elapsed >= 100*time.Millisecond {
		t.Errorf("fast winner still waited %v on the slow peer", elapsed)
	}
	select {
	case id := <-slow.rejected:
		if id != "sla-slow" {
			t.Errorf("retracted %q, want sla-slow", id)
		}
	case <-time.After(2 * time.Second):
		t.Error("slow loser's offer never retracted")
	}
}

// TestFederationPeerConnectionRefused: a SOAP peer whose endpoint is down
// (connection refused) degrades into the aggregate decline; the home
// broker's own state is untouched.
func TestFederationPeerConnectionRefused(t *testing.T) {
	home := domainBroker(t, "home", "solver", 10)
	headroomBefore := home.Allocator().AvailableGuaranteed()

	dead := httptest.NewServer(nil)
	deadURL := dead.URL
	dead.Close() // nothing listens here any more

	fed := NewFederation(home)
	fed.AddPeer(&PeerClient{Domain: "unreachable", Client: NewClient(deadURL)})

	_, err := fed.RequestService(nodeRequest("solver", 100))
	if !errors.Is(err, ErrNoDomainCanServe) {
		t.Fatalf("err = %v, want ErrNoDomainCanServe", err)
	}
	if !strings.Contains(err.Error(), "unreachable") {
		t.Errorf("aggregate error does not name the dead peer: %v", err)
	}
	if got := home.Allocator().AvailableGuaranteed(); !got.Equal(headroomBefore) {
		t.Errorf("home headroom changed: %v -> %v", headroomBefore, got)
	}
	if docs := home.Sessions(nil); len(docs) != 0 {
		t.Errorf("home gained %d session(s) from a failed federation", len(docs))
	}
}

// TestFederationPeerSOAPFault: a reachable SOAP peer that declines (a
// SOAP fault on the wire) also lands in the aggregate decline, and both
// failure shapes — fault and refused connection — coexist in one error.
func TestFederationPeerSOAPFault(t *testing.T) {
	home := domainBroker(t, "home", "solver", 10)
	headroomBefore := home.Allocator().AvailableGuaranteed()

	// The remote broker is up but far too small: it answers with a SOAP
	// fault carrying its admission error.
	remote := domainBroker(t, "tiny", "solver", 2)
	mux := soapx.NewMux()
	remote.Mount(mux)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	dead := httptest.NewServer(nil)
	deadURL := dead.URL
	dead.Close()

	fed := NewFederation(home)
	fed.AddPeer(&PeerClient{Domain: "tiny", Client: NewClient(srv.URL)})
	fed.AddPeer(&PeerClient{Domain: "gone", Client: NewClient(deadURL)})

	_, err := fed.RequestService(nodeRequest("solver", 100))
	if !errors.Is(err, ErrNoDomainCanServe) {
		t.Fatalf("err = %v, want ErrNoDomainCanServe", err)
	}
	for _, domain := range []string{"tiny", "gone"} {
		if !strings.Contains(err.Error(), domain) {
			t.Errorf("aggregate error missing peer %q: %v", domain, err)
		}
	}
	if got := home.Allocator().AvailableGuaranteed(); !got.Equal(headroomBefore) {
		t.Errorf("home headroom changed: %v -> %v", headroomBefore, got)
	}
	if docs := home.Sessions(nil); len(docs) != 0 {
		t.Errorf("home gained %d session(s) from a failed federation", len(docs))
	}
	// The remote broker holds no half-open session either.
	if docs := remote.Sessions(nil); len(docs) != 0 {
		for _, d := range docs {
			if !d.State.Terminal() && d.State != sla.StateProposed {
				t.Errorf("remote session %s in state %s after decline", d.ID, d.State)
			}
		}
	}
}
