package core

import (
	"math"
	"sort"
	"sync"

	"gqosm/internal/dsrt"
	"gqosm/internal/resource"
	"gqosm/internal/sla"
)

// This file implements the resource-manager-level adaptation stage of
// §3.2: "In the case of QoS degradation the underlying resource manager
// attempts to rectify the problem by applying adaptation techniques at the
// resource management level, as outlined in [Chu & Nahrstedt]. If these
// adaptation techniques do not eliminate QoS degradation, then the AQoS
// applies adaptation techniques at the AQoS level."

// RMAdapter is the hook through which the broker asks the resource-manager
// layer to rectify a degradation before escalating to AQoS-level
// adaptation (alternative QoS, violation, termination).
type RMAdapter interface {
	// TryRectify attempts an RM-level fix for the session's degradation
	// on the measured capacity. It reports whether the degradation was
	// eliminated.
	TryRectify(id sla.ID, doc *sla.Document, measured resource.Capacity) bool
}

// DSRTAdapter rectifies CPU-side degradation through the DSRT scheduler:
// the session's processes get their contracted share boosted within the
// scheduler's admission bound — the "system-initiated adaptation" of the
// SRT work, driven here on the broker's demand. It is safe for concurrent
// use.
type DSRTAdapter struct {
	sched *dsrt.Scheduler

	mu sync.Mutex
	// procs maps a session to the DSRT processes running its service.
	procs map[sla.ID][]dsrt.PID
}

// NewDSRTAdapter returns an adapter over the scheduler.
func NewDSRTAdapter(s *dsrt.Scheduler) *DSRTAdapter {
	return &DSRTAdapter{sched: s, procs: make(map[sla.ID][]dsrt.PID)}
}

// Attach associates a session with a DSRT process (called by deployments
// that run service processes under DSRT).
func (a *DSRTAdapter) Attach(id sla.ID, pid dsrt.PID) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.procs[id] = append(a.procs[id], pid)
}

// Detach removes a session's processes.
func (a *DSRTAdapter) Detach(id sla.ID) {
	a.mu.Lock()
	defer a.mu.Unlock()
	delete(a.procs, id)
}

// TryRectify implements RMAdapter: when the degradation is on the CPU
// dimension and the scheduler has slack, the session's process shares are
// raised toward the deficit. Network-side degradations are not an RM-level
// concern here and report false.
func (a *DSRTAdapter) TryRectify(id sla.ID, doc *sla.Document, measured resource.Capacity) bool {
	want := doc.Spec.Floor().CPU
	if want <= 0 {
		return false // not a CPU degradation
	}
	have := measured.CPU
	if have >= want-resource.Epsilon {
		return false // CPU is fine; degradation is elsewhere
	}
	a.mu.Lock()
	pids := append([]dsrt.PID(nil), a.procs[id]...)
	a.mu.Unlock()
	if len(pids) == 0 {
		return false
	}
	sort.Slice(pids, func(i, j int) bool { return pids[i] < pids[j] })

	// Deficit as a fraction of the session's CPU requirement, spread
	// over its processes.
	deficitFrac := (want - have) / want
	rectified := false
	for _, pid := range pids {
		p, err := a.sched.Get(pid)
		if err != nil {
			continue
		}
		target := math.Min(1.0, p.Contract.Share*(1+deficitFrac))
		if target <= p.Contract.Share+1e-9 {
			continue
		}
		if err := a.sched.SetShare(pid, target); err == nil {
			rectified = true
		}
	}
	return rectified
}

var _ RMAdapter = (*DSRTAdapter)(nil)
