package core_test

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"gqosm/internal/core"
	"gqosm/internal/invariant"
	"gqosm/internal/obs"
	"gqosm/internal/pricing"
	"gqosm/internal/resource"
	"gqosm/internal/sim"
	"gqosm/internal/sla"
)

// mutatorPolicy is a deliberately hostile shadow candidate: it scribbles
// on every argument it receives and answers nonsense. If the broker ever
// handed a shadow policy live state instead of a side-effect-free view
// (the state-leak class the shadow-inertness rule exists for), running it
// in shadow would corrupt sessions and the twin-state tests below would
// fail. It is registered only inside this test binary.
type mutatorPolicy struct{}

func (mutatorPolicy) Name() string { return "test-mutator" }

func (mutatorPolicy) PartitionGrant(v core.PartitionView, requested, floor resource.Capacity) core.GrantKind {
	v.Plan.Guaranteed = resource.Capacity{}
	v.Demand = v.Demand.Add(resource.Nodes(1e9))
	return core.GrantRequested
}

func (mutatorPolicy) Optimize(p core.OptProblem) (core.OptResult, error) {
	// The regression that motivated OptProblem.Clone: a shadow optimizer
	// mutating the problem's specs must not reach the live session specs
	// the active pass (and every later lifecycle step) reads.
	for i := range p.Services {
		p.Services[i].ID = "mutated"
		p.Services[i].Rates = pricing.Rates{}
		for k := range p.Services[i].Spec.Params {
			p.Services[i].Spec.Params[k] = sla.Exact(k, 1e9)
		}
	}
	p.Capacity = resource.Capacity{}
	return core.OptResult{}, errors.New("mutator refuses to optimize")
}

func (mutatorPolicy) CompensationOrder(ts []core.LadderTarget) {
	for i := range ts {
		ts[i].ID = "mutated"
		ts[i].Price = -1
		ts[i].Recovered = resource.Capacity{}
	}
	for i, j := 0, len(ts)-1; i < j; i, j = i+1, j-1 {
		ts[i], ts[j] = ts[j], ts[i]
	}
}

func (mutatorPolicy) Place(views []core.PlacementView, floor resource.Capacity) []int {
	for i := range views {
		views[i].LoadFactor = -1
		views[i].Bound = resource.Capacity{}
	}
	return nil // refuse every shard
}

func init() {
	if err := core.RegisterPolicy(mutatorPolicy{}); err != nil {
		panic(err)
	}
}

func TestPolicyRegistry(t *testing.T) {
	names := core.PolicyNames()
	for _, want := range []string{"paper", "revenue-greedy", "upgrade-last"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("PolicyNames() = %v, missing %q", names, want)
		}
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Errorf("PolicyNames() not sorted: %v", names)
		}
	}
	if p, ok := core.LookupPolicy("paper"); !ok || p.Name() != "paper" {
		t.Fatalf("LookupPolicy(paper) = %v, %v", p, ok)
	}
	if _, ok := core.LookupPolicy("no-such-policy"); ok {
		t.Fatal("LookupPolicy(no-such-policy) unexpectedly resolved")
	}
	if err := core.RegisterPolicy(nil); err == nil {
		t.Fatal("RegisterPolicy(nil) did not fail")
	}
	paper, _ := core.LookupPolicy("paper")
	if err := core.RegisterPolicy(paper); err == nil {
		t.Fatal("duplicate RegisterPolicy(paper) did not fail")
	}
}

func TestGrantKindString(t *testing.T) {
	for kind, want := range map[core.GrantKind]string{
		core.GrantRefuse:    "refuse",
		core.GrantFloor:     "floor",
		core.GrantRequested: "requested",
	} {
		if got := kind.String(); got != want {
			t.Errorf("GrantKind(%d).String() = %q, want %q", kind, got, want)
		}
	}
}

// TestPaperPartitionGrant pins the Algorithm-1 admission answers: full
// request within the bound, floor fallback, refusal.
func TestPaperPartitionGrant(t *testing.T) {
	paper, _ := core.LookupPolicy("paper")
	view := func(demand float64) core.PartitionView {
		return core.PartitionView{
			Plan: core.CapacityPlan{
				Guaranteed: resource.Nodes(10),
				Adaptive:   resource.Nodes(4),
			},
			Demand:     resource.Nodes(demand),
			EffectiveG: resource.Nodes(10),
			Bound:      resource.Nodes(10), // min(C_G, C_G_eff + C_A)
		}
	}
	cases := []struct {
		name             string
		demand           float64
		requested, floor float64
		want             core.GrantKind
	}{
		{"full-fit", 5, 5, 2, core.GrantRequested},
		{"exact-boundary", 5, 5.0, 5.0, core.GrantRequested},
		{"floor-only", 7, 5, 2, core.GrantFloor},
		{"refuse", 9, 5, 2, core.GrantRefuse},
		{"empty-partition-full", 0, 10, 1, core.GrantRequested},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := paper.PartitionGrant(view(tc.demand), resource.Nodes(tc.requested), resource.Nodes(tc.floor))
			if got != tc.want {
				t.Errorf("PartitionGrant(demand=%v, req=%v, floor=%v) = %v, want %v",
					tc.demand, tc.requested, tc.floor, got, tc.want)
			}
		})
	}
}

// TestRevenueGreedyAdmitsIntoReserve pins the candidate's defining move:
// where the paper's bound (C_G) already refuses, revenue-greedy admits
// guaranteed demand into half the adaptive reserve — and no further.
func TestRevenueGreedyAdmitsIntoReserve(t *testing.T) {
	paper, _ := core.LookupPolicy("paper")
	greedy, _ := core.LookupPolicy("revenue-greedy")
	v := core.PartitionView{
		Plan: core.CapacityPlan{
			Guaranteed: resource.Nodes(10),
			Adaptive:   resource.Nodes(4),
		},
		Demand:     resource.Nodes(9),
		EffectiveG: resource.Nodes(10),
		Bound:      resource.Nodes(10),
	}
	req, floor := resource.Nodes(2), resource.Nodes(1)

	// 9 + 2 = 11 > 10: the paper falls back to the floor (9 + 1 = 10).
	if got := paper.PartitionGrant(v, req, floor); got != core.GrantFloor {
		t.Fatalf("paper grant = %v, want floor", got)
	}
	// revenue-greedy's bound is C_G_eff + C_A/2 = 12, so 11 fits.
	if got := greedy.PartitionGrant(v, req, floor); got != core.GrantRequested {
		t.Fatalf("revenue-greedy grant = %v, want requested", got)
	}
	// But only HALF the reserve: demand past 12 is refused even though
	// the hard ceiling (C_G_eff + C_A = 14) would still tolerate it.
	v.Demand = resource.Nodes(10.5)
	if got := greedy.PartitionGrant(v, req, floor); got != core.GrantFloor {
		t.Fatalf("revenue-greedy grant over half-reserve = %v, want floor", got)
	}
	v.Demand = resource.Nodes(13)
	if got := greedy.PartitionGrant(v, req, floor); got != core.GrantRefuse {
		t.Fatalf("revenue-greedy grant past half-reserve = %v, want refuse", got)
	}
}

// TestCompensationOrders pins both ladder orderings: the paper takes the
// cheapest session first (price, then ID); upgrade-last takes the rung
// recovering the most capacity first, falling back to the paper's order
// on ties.
func TestCompensationOrders(t *testing.T) {
	ladder := func() []core.LadderTarget {
		return []core.LadderTarget{
			{ID: "a", Price: 5, Recovered: resource.Nodes(1)},
			{ID: "c", Price: 2, Recovered: resource.Nodes(3)},
			{ID: "b", Price: 1, Recovered: resource.Nodes(3)},
			{ID: "d", Price: 9, Recovered: resource.Capacity{CPU: 2, MemoryMB: 2}},
		}
	}
	order := func(ts []core.LadderTarget) string {
		ids := make([]string, len(ts))
		for i, t := range ts {
			ids[i] = string(t.ID)
		}
		return strings.Join(ids, ",")
	}

	paper, _ := core.LookupPolicy("paper")
	ts := ladder()
	paper.CompensationOrder(ts)
	if got, want := order(ts), "b,c,a,d"; got != want {
		t.Errorf("paper ladder order = %s, want %s", got, want)
	}

	// upgrade-last: d recovers scalar 4, b and c recover 3 (tie broken by
	// price: b before c), a recovers 1.
	last, _ := core.LookupPolicy("upgrade-last")
	ts = ladder()
	last.CompensationOrder(ts)
	if got, want := order(ts), "d,b,c,a"; got != want {
		t.Errorf("upgrade-last ladder order = %s, want %s", got, want)
	}
}

// TestPaperPlace pins the placement ranking: least-loaded first, index
// tie-break, hopeless shards (floor exceeds bound) dropped.
func TestPaperPlace(t *testing.T) {
	paper, _ := core.LookupPolicy("paper")
	views := []core.PlacementView{
		{Index: 0, LoadFactor: 0.5, Bound: resource.Nodes(10)},
		{Index: 1, LoadFactor: 0.2, Bound: resource.Nodes(10)},
		{Index: 2, LoadFactor: 0.2, Bound: resource.Nodes(10)},
		{Index: 3, LoadFactor: 0.0, Bound: resource.Nodes(1)}, // hopeless for floor 2
	}
	got := paper.Place(views, resource.Nodes(2))
	want := []int{1, 2, 0}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("Place = %v, want %v", got, want)
	}
}

// TestOptProblemCloneDeepCopies is the state-leak regression for shadow
// optimization: mutating a clone's services, specs, or capacity must
// leave the original untouched.
func TestOptProblemCloneDeepCopies(t *testing.T) {
	orig := core.OptProblem{
		Services: []core.OptService{{
			ID:   "s1",
			Spec: sla.NewSpec(sla.Range(resource.CPU, 1, 4)),
		}},
		Capacity: resource.Nodes(8),
	}
	clone := orig.Clone()
	clone.Services[0].ID = "mutated"
	clone.Services[0].Spec.Params[resource.CPU] = sla.Exact(resource.CPU, 1e9)
	clone.Capacity = resource.Capacity{}

	if orig.Services[0].ID != "s1" {
		t.Errorf("clone mutation leaked into original service ID: %q", orig.Services[0].ID)
	}
	p := orig.Services[0].Spec.Params[resource.CPU]
	if p.Form != sla.FormRange || p.Min != 1 || p.Max != 4 {
		t.Errorf("clone mutation leaked into original spec param: %+v", p)
	}
	if !orig.Capacity.Equal(resource.Nodes(8)) {
		t.Errorf("clone mutation leaked into original capacity: %v", orig.Capacity)
	}
}

// --- shadow-inertness twin-state tests -------------------------------

// twinLog drives one cluster with the decoded op stream (driveOps's
// 2-byte encoding on 1 shard, driveShardedOps's 3-byte encoding
// otherwise), recording every externally visible outcome and running the
// invariant oracle after each step. Two clusters differing only in
// ShadowPolicy must produce identical logs and fingerprints.
func twinLog(t *testing.T, shadow string, shards int, data []byte) []string {
	t.Helper()
	cluster, err := sim.NewCluster(sim.ClusterConfig{
		Plan:         sim.DefaultParallelPlan(),
		Shards:       shards,
		ShadowPolicy: shadow,
		Obs:          obs.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	b := cluster.Broker
	clock := cluster.Clock

	var log []string
	var proposed, active []sla.ID
	pop := func(ids *[]sla.ID, arg byte) (sla.ID, bool) {
		if len(*ids) == 0 {
			return "", false
		}
		i := int(arg) % len(*ids)
		id := (*ids)[i]
		*ids = append((*ids)[:i], (*ids)[i+1:]...)
		return id, true
	}
	record := func(format string, args ...any) {
		log = append(log, fmt.Sprintf(format, args...))
	}

	width := 2
	if shards > 1 {
		width = 3
	}
	for step := 0; step+width-1 < len(data); step += width {
		op, arg := data[step]%11, data[step+1]
		hint := 0
		if width == 3 {
			hint = int(data[step+2]) % (shards + 1)
		}
		switch {
		case op <= 2:
			now := clock.Now()
			cpu := float64(1 + (arg>>1)&7)
			end := now.Add(time.Duration(1+(arg>>4)&7) * time.Hour)
			var req core.Request
			if arg&1 == 0 {
				req = core.Request{
					Service: "simulation", Client: "twin-g" + fmt.Sprint(step),
					Class: sla.ClassGuaranteed,
					Spec:  sla.NewSpec(sla.Exact(resource.CPU, cpu)),
					Start: now, End: end, ShardHint: hint,
				}
			} else {
				req = core.Request{
					Service: "simulation", Client: "twin-c" + fmt.Sprint(step),
					Class: sla.ClassControlledLoad,
					Spec:  sla.NewSpec(sla.Range(resource.CPU, cpu, cpu+float64((arg>>4)&7))),
					Start: now, End: end,
					AcceptDegradation: arg&0x80 != 0, ShardHint: hint,
				}
			}
			offer, err := b.RequestService(req)
			if err == nil {
				proposed = append(proposed, offer.SLA.ID)
				record("request %d -> %s", step, offer.SLA.ID)
			} else {
				record("request %d -> err %v", step, err)
			}
		case op == 3:
			if id, ok := pop(&proposed, arg); ok {
				err := b.Accept(id)
				if err == nil {
					active = append(active, id)
				}
				record("accept %s -> %v", id, err)
			}
		case op == 4:
			if id, ok := pop(&proposed, arg); ok {
				record("reject %s -> %v", id, b.Reject(id))
			}
		case op == 5:
			if len(active) > 0 {
				id := active[int(arg)%len(active)]
				_, err := b.Invoke(id)
				record("invoke %s -> %v", id, err)
			}
		case op == 6:
			if id, ok := pop(&active, arg); ok {
				record("terminate %s -> %v", id, b.Terminate(id, "twin"))
			}
		case op == 7:
			clock.Advance(time.Duration(10+int(arg)) * time.Minute)
			b.ExpireDue()
			record("advance %d", arg)
		case op == 8:
			if arg&1 == 0 {
				b.NotifyFailure(resource.Nodes(float64((arg >> 1) & 7)))
			} else {
				b.NotifyFailure(resource.Capacity{})
			}
			record("failure %d", arg)
		case op == 9:
			client := "twin-be" + fmt.Sprint(int(arg)%4)
			if arg&4 == 0 {
				record("be-req %s -> %v", client, b.BestEffortRequest(client, resource.Nodes(float64(1+(arg>>3)&7))))
			} else {
				record("be-rel %s -> %v", client, b.BestEffortRelease(client))
			}
			out, err := b.RunOptimizer()
			record("optimize -> %d %v %v %v", out.Considered, out.Applied, out.Gain, err)
		case op == 10:
			if len(active) > 0 {
				id := active[int(arg)%len(active)]
				hi := 1 + float64((arg>>4)&7)
				_, err := b.Renegotiate(id, sla.NewSpec(sla.Range(resource.CPU, 1, hi)))
				record("reneg %s -> %v", id, err)
			}
		}
		if err := invariant.CheckAll(b, clock.Now(), cluster.Pool); err != nil {
			t.Fatalf("shadow=%q step %d (op %d): %v", shadow, step/width, op, err)
		}
	}

	// Final-state fingerprint: per-shard capacity accounting and grants.
	for i, a := range b.Allocators() {
		record("shard %d availG=%v util=%v users=%v", i,
			a.AvailableGuaranteed(), a.Utilization(), a.GuaranteedUsers())
	}
	return log
}

// driveTwin runs the same op stream with shadowing off and on and fails
// on the first diverging outcome — the executable form of the
// shadow-inertness invariant at broker level.
func driveTwin(t *testing.T, candidate string, shards int, data []byte) {
	t.Helper()
	off := twinLog(t, "", shards, data)
	on := twinLog(t, candidate, shards, data)
	if len(off) != len(on) {
		t.Fatalf("shadow %q changed outcome count: off=%d on=%d", candidate, len(off), len(on))
	}
	for i := range off {
		if off[i] != on[i] {
			t.Fatalf("shadow %q diverged at outcome %d:\n  off: %s\n  on:  %s",
				candidate, i, off[i], on[i])
		}
	}
}

// TestShadowPolicyIsInert drives the deterministic seed-1955 stream with
// each candidate — including the hostile mutator — consulted in shadow,
// and requires byte-identical outcomes to the shadow-off run.
func TestShadowPolicyIsInert(t *testing.T) {
	for _, candidate := range []string{"revenue-greedy", "upgrade-last", "test-mutator"} {
		candidate := candidate
		t.Run(candidate, func(t *testing.T) {
			driveTwin(t, candidate, 1, seedStream(1955, 300))
		})
	}
}

// TestShadowPolicyIsInertSharded repeats the twin drive on a 3-shard
// broker so the placement decision family is exercised too.
func TestShadowPolicyIsInertSharded(t *testing.T) {
	for _, candidate := range []string{"revenue-greedy", "test-mutator"} {
		candidate := candidate
		t.Run(candidate, func(t *testing.T) {
			driveTwin(t, candidate, 3, seedStream(1955, 300))
		})
	}
}

// TestBrokerPolicyWiring covers Config resolution and the management
// accessors: defaulting to "paper", rejecting unknown names, and the
// PolicyReport surface qosctl reads.
func TestBrokerPolicyWiring(t *testing.T) {
	cluster, err := sim.NewCluster(sim.ClusterConfig{Plan: sim.DefaultParallelPlan()})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	if got := cluster.Broker.PolicyName(); got != "paper" {
		t.Errorf("default PolicyName = %q, want paper", got)
	}
	if got := cluster.Broker.ShadowPolicyName(); got != "" {
		t.Errorf("default ShadowPolicyName = %q, want empty", got)
	}
	rep := cluster.Broker.Policies()
	if rep.Active != "paper" || rep.Shadow != "" || len(rep.Policies) < 3 {
		t.Errorf("Policies() = %+v", rep)
	}

	if _, err := sim.NewCluster(sim.ClusterConfig{
		Plan: sim.DefaultParallelPlan(), Policy: "no-such-policy",
	}); err == nil {
		t.Error("unknown Policy did not fail broker construction")
	}
	if _, err := sim.NewCluster(sim.ClusterConfig{
		Plan: sim.DefaultParallelPlan(), ShadowPolicy: "no-such-policy",
	}); err == nil {
		t.Error("unknown ShadowPolicy did not fail broker construction")
	}

	shadowed, err := sim.NewCluster(sim.ClusterConfig{
		Plan: sim.DefaultParallelPlan(), Policy: "revenue-greedy", ShadowPolicy: "upgrade-last",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer shadowed.Close()
	rep = shadowed.Broker.Policies()
	if rep.Active != "revenue-greedy" || rep.Shadow != "upgrade-last" {
		t.Errorf("Policies() = %+v", rep)
	}
}

// TestShadowCounters drives a shadow-on cluster and checks the
// divergence accounting: evaluations flow, and the divergence map keys
// exactly the published families.
func TestShadowCounters(t *testing.T) {
	reg := obs.NewRegistry()
	cluster, err := sim.NewCluster(sim.ClusterConfig{
		Plan: sim.DefaultParallelPlan(), ShadowPolicy: "revenue-greedy", Obs: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	b := cluster.Broker
	now := cluster.Clock.Now()
	for i := 0; i < 20; i++ {
		req := core.Request{
			Service: "simulation", Client: fmt.Sprintf("ctr-%d", i),
			Class: sla.ClassGuaranteed,
			Spec:  sla.NewSpec(sla.Exact(resource.CPU, 2)),
			Start: now, End: now.Add(time.Hour),
		}
		if offer, err := b.RequestService(req); err == nil {
			_ = b.Accept(offer.SLA.ID)
		}
	}
	evals, div := core.ShadowCounts(reg)
	if evals <= 0 {
		t.Fatalf("shadow evaluations = %d, want > 0", evals)
	}
	if len(div) != len(core.ShadowFamilies) {
		t.Fatalf("divergence families = %v, want %v", div, core.ShadowFamilies)
	}
	var total int64
	for _, fam := range core.ShadowFamilies {
		n, ok := div[fam]
		if !ok {
			t.Errorf("divergence map missing family %q", fam)
		}
		total += n
	}
	// 20 guaranteed admissions against C_G=15 saturate the paper bound;
	// revenue-greedy keeps admitting into the reserve, so the partition
	// family must have diverged.
	if div["partition"] <= 0 {
		t.Errorf("partition divergence = %d, want > 0 (map %v)", div["partition"], div)
	}
	if total > evals {
		t.Errorf("divergence total %d exceeds evaluations %d", total, evals)
	}
}
